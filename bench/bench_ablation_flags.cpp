//===--- bench_ablation_flags.cpp - Checking-policy ablations ------------------===//
//
// Part of memlint. See DESIGN.md.
//
// Ablates the design choices the paper calls out as policy, measuring their
// effect on anomaly counts over the corpus:
//
//  * implied temp parameters ("An unqualified formal parameter is assumed
//    to be temp storage", Section 6) — off means unqualified parameters
//    carry no allocation assumption;
//  * implicit only on returns/globals/fields (the Section 6 -allimponly
//    discussion) — on means unannotated allocators are assumed only;
//  * gcmode ("flags can be used to adjust checking so only those errors
//    relevant in a garbage-collected environment are reported", Section 3);
//  * strictindexalias ("compile-time unknown array indexes ... are either
//    all the same element of the array or independent elements", Section 2);
//  * illegalfree (the footnote-8 improvement).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

namespace {

unsigned countWith(const Program &P, const char *Flag, bool Value) {
  CheckOptions Options;
  if (Flag)
    Options.Flags.set(Flag, Value);
  return Checker::checkFiles(P.Files, P.MainFiles, Options).anomalyCount();
}

void printReproduction() {
  printf("==============================================================\n");
  printf(" Ablation: checking-policy flags vs anomaly counts\n");
  printf("==============================================================\n");

  Program Bare = employeeDb(DbVersion::Unannotated);
  Program NullStage = employeeDb(DbVersion::NullAdded);
  Program Leaky = employeeDb(DbVersion::OnlyAdded);
  Program Fixed = employeeDb(DbVersion::Fixed);

  struct Ablation {
    const char *Flag;
    bool Value;
    const char *Note;
  };
  const Ablation Ablations[] = {
      {nullptr, false, "defaults (the paper's configuration)"},
      {"gcmode", true, "garbage-collected: no release obligations"},
      {"impliedtempparams", false, "no implied temp on parameters"},
      {"implicitonlyret", true, "returns implicitly only (+allimponly)"},
      {"implicitonlyglob", true, "globals implicitly only"},
      {"implicitonlyfield", true, "fields implicitly only"},
      {"strictindexalias", false, "independent array elements"},
      {"illegalfree", true, "offset/static free checking (footnote 8)"},
  };

  printf("%-22s %-6s %-6s %-6s %-6s  %s\n", "configuration", "bare", "null",
         "leaky", "fixed", "note");
  for (const Ablation &A : Ablations) {
    printf("%-22s %-6u %-6u %-6u %-6u  %s\n",
           A.Flag ? (std::string(A.Value ? "+" : "-") + A.Flag).c_str()
                  : "(defaults)",
           countWith(Bare, A.Flag, A.Value),
           countWith(NullStage, A.Flag, A.Value),
           countWith(Leaky, A.Flag, A.Value),
           countWith(Fixed, A.Flag, A.Value), A.Note);
  }

  // The headline interactions the paper reports:
  printf("\nkey observations\n");
  printf("  gcmode removes the six driver leaks (they are only leaks when "
         "memory is\n  explicitly managed): leaky %u -> %u\n",
         countWith(Leaky, nullptr, false), countWith(Leaky, "gcmode", true));
  printf("  implicit only on returns finds the driver leaks without "
         "explicit annotations\n  (paper: \"these six errors would have "
         "been found directly\"): null-stage %u -> %u\n",
         countWith(NullStage, nullptr, false),
         countWith(NullStage, "implicitonlyret", true));
  printf("\n");
}

void BM_AblationCheck(benchmark::State &State) {
  static const char *const Flags[] = {"gcmode", "impliedtempparams",
                                      "implicitonlyret", "strictindexalias"};
  Program P = employeeDb(DbVersion::Fixed);
  CheckOptions Options;
  Options.Flags.set(Flags[State.range(0)], State.range(1) != 0);
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
}
BENCHMARK(BM_AblationCheck)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}});

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
