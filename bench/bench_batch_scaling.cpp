//===--- bench_batch_scaling.cpp - Batch driver worker-pool scaling ------------===//
//
// Part of memlint. See DESIGN.md (section 6c).
//
// Measures the batch driver over a 120-file synthetic corpus:
//
//   1. scaling — wall clock at -j1 vs -j2/-j4/-j8. Each file carries a
//      fixed synthetic stall (BatchOptions::TestStallMs) modeling I/O or
//      preprocessing latency, which is what a multi-file lint run spends
//      most of its time on; the driver should overlap those stalls, so
//      -j8 is expected >= 3x faster than -j1 even on a single core.
//   2. journal overhead — the same -j8 run with and without the run
//      journal enabled; one fflush'ed append per file should cost < 5%.
//
// The "speedup_vs_j1" and "journal_overhead_pct" counters report the two
// acceptance numbers directly.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace memlint;

namespace {

constexpr unsigned CorpusFiles = 120;
constexpr unsigned StallMs = 4;

void buildCorpus(VFS &Files, std::vector<std::string> &Names) {
  for (unsigned I = 0; I < CorpusFiles; ++I) {
    std::string Name = "file" + std::to_string(I) + ".c";
    std::string Source;
    if (I % 3 == 0)
      Source = "#include <stdlib.h>\n"
               "void leak" +
               std::to_string(I) + "(void) { char *p = (char *)malloc(8); }\n";
    else
      Source = "int id" + std::to_string(I) + "(int x) { return x + " +
               std::to_string(I) + "; }\n";
    Files.add(Name, Source);
    Names.push_back(Name);
  }
}

double runBatch(unsigned Jobs, const std::string &JournalPath) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names);
  BatchOptions Options;
  Options.Jobs = Jobs;
  Options.JournalPath = JournalPath;
  Options.TestStallMs = [](const std::string &) { return StallMs; };
  BatchDriver Driver(Options);
  BatchResult R = Driver.run(Files, Names);
  return R.WallMs;
}

/// Scaling across job counts; j1 is re-measured inside each run so the
/// speedup counter compares like with like.
void BM_BatchScaling(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  double Sequential = 0, Parallel = 0;
  for (auto _ : State) {
    Parallel += runBatch(Jobs, "");
    State.PauseTiming();
    Sequential += runBatch(1, "");
    State.ResumeTiming();
  }
  State.counters["wall_ms"] = Parallel / State.iterations();
  State.counters["speedup_vs_j1"] = Sequential / Parallel;
}
BENCHMARK(BM_BatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The cost of the append-only journal at -j8.
void BM_BatchJournalOverhead(benchmark::State &State) {
  const std::string Path = "/tmp/memlint_bench_journal.jsonl";
  double Plain = 0, Journaled = 0;
  for (auto _ : State) {
    std::remove(Path.c_str());
    Journaled += runBatch(8, Path);
    State.PauseTiming();
    Plain += runBatch(8, "");
    State.ResumeTiming();
  }
  std::remove(Path.c_str());
  State.counters["journal_overhead_pct"] = (Journaled / Plain - 1.0) * 100.0;
}
BENCHMARK(BM_BatchJournalOverhead)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
