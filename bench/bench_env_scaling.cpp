//===--- bench_env_scaling.cpp - Environment split/merge scaling ---------------===//
//
// Part of memlint. See DESIGN.md.
//
// The analysis forks the abstract state at every predicate ("any predicate
// may be true or false", paper Section 2), so environment copies dominate
// checking of branch-heavy functions. This bench pits the interned COW
// environment against an in-bench replica of the previous representation
// (std::map<RefPath, SVal> plus std::set alias lists, deep-copied at every
// split) on the two workloads the ISSUE calls out: deep branch nests and
// wide structs with many tracked references.
//
// Besides the human-readable report it emits machine-readable JSON to
// BENCH_env_scaling.json (current directory) so the perf trajectory has
// data points; ci.sh validates the file's shape.
//
//===----------------------------------------------------------------------===//

#include "analysis/Env.h"
#include "ast/AST.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace memlint;

namespace {

//===----------------------------------------------------------------------===//
// The pre-change environment, replicated for comparison
//===----------------------------------------------------------------------===//

/// Replica of the std::map-based Env this PR replaced: splits deep-copy the
/// whole table, merges walk the union of keys. Merge semantics match
/// Env::mergeFrom so both sides do identical abstract work.
struct LegacyEnv {
  std::map<RefPath, SVal> Values;
  std::map<RefPath, std::set<RefPath>> Aliases;
  bool Unreachable = false;

  const SVal *find(const RefPath &Ref) const {
    auto It = Values.find(Ref);
    return It == Values.end() ? nullptr : &It->second;
  }
  SVal lookup(const RefPath &Ref, const Env::DefaultFn &Default) const {
    if (const SVal *V = find(Ref))
      return *V;
    return Default(Ref);
  }
  void set(const RefPath &Ref, SVal Val) { Values[Ref] = std::move(Val); }
  void addAlias(const RefPath &A, const RefPath &B) {
    if (A == B)
      return;
    Aliases[A].insert(B);
    Aliases[B].insert(A);
  }

  void mergeFrom(const LegacyEnv &Other, const Env::DefaultFn &Default) {
    if (Other.Unreachable)
      return;
    if (Unreachable) {
      *this = Other;
      return;
    }
    std::set<RefPath> Keys;
    for (const auto &KV : Values)
      Keys.insert(KV.first);
    for (const auto &KV : Other.Values)
      Keys.insert(KV.first);
    for (const RefPath &Ref : Keys) {
      SVal Ours = lookup(Ref, Default);
      SVal Theirs = Other.lookup(Ref, Default);
      AllocState OursAlloc = Ours.Alloc;
      AllocState TheirsAlloc = Theirs.Alloc;
      DefState OursDef = Ours.Def;
      DefState TheirsDef = Theirs.Def;
      if (Ours.Null == NullState::DefinitelyNull) {
        OursAlloc = AllocState::Null;
        if (TheirsDef == DefState::Dead)
          OursDef = DefState::Dead;
      }
      if (Theirs.Null == NullState::DefinitelyNull) {
        TheirsAlloc = AllocState::Null;
        if (OursDef == DefState::Dead)
          TheirsDef = DefState::Dead;
      }
      bool DefConflict = false, AllocConflict = false;
      SVal Merged;
      Merged.Def = mergeDef(OursDef, TheirsDef, DefConflict);
      Merged.Null = mergeNull(Ours.Null, Theirs.Null);
      Merged.Alloc = mergeAlloc(OursAlloc, TheirsAlloc, AllocConflict);
      Merged.NullLoc = Ours.mayBeNull()
                           ? Ours.NullLoc
                           : (Theirs.mayBeNull() ? Theirs.NullLoc
                                                 : Ours.NullLoc);
      Merged.AllocLoc =
          Ours.AllocLoc.isValid() ? Ours.AllocLoc : Theirs.AllocLoc;
      Merged.FreeLoc = Ours.FreeLoc.isValid() ? Ours.FreeLoc : Theirs.FreeLoc;
      Merged.DefLoc =
          Ours.Def != DefState::Defined ? Ours.DefLoc : Theirs.DefLoc;
      Values[Ref] = std::move(Merged);
    }
    for (const auto &KV : Other.Aliases)
      for (const RefPath &Alias : KV.second)
        Aliases[KV.first].insert(Alias);
  }
};

//===----------------------------------------------------------------------===//
// Workload construction
//===----------------------------------------------------------------------===//

struct Fixture {
  ASTContext Ctx;
  std::vector<RefPath> Refs;

  /// Builds \p Count tracked references shaped like real analysis state:
  /// a few pointer roots, each a wide struct with many pointer fields
  /// (root, *root, root->f_i).
  explicit Fixture(size_t Count) {
    size_t Roots = Count / 16 + 1;
    size_t Fields = 14;
    std::vector<FieldDecl *> FieldDecls;
    for (size_t F = 0; F < Fields; ++F)
      FieldDecls.push_back(Ctx.create<FieldDecl>(
          "f" + std::to_string(F), SourceLocation("b.c", 1, 1),
          Ctx.pointerTo(Ctx.charTy()), Annotations(),
          static_cast<unsigned>(F)));
    for (size_t R = 0; R < Roots && Refs.size() < Count; ++R) {
      VarDecl *VD = Ctx.create<VarDecl>(
          "r" + std::to_string(R), SourceLocation("b.c", 1, 1),
          Ctx.pointerTo(Ctx.charTy()), Annotations(), StorageClass::None,
          /*Global=*/false);
      RefPath Root = RefPath::var(VD);
      Refs.push_back(Root);
      PathElem Deref;
      Deref.K = PathElem::Kind::Deref;
      RefPath Star = Root.child(Deref);
      if (Refs.size() < Count)
        Refs.push_back(Star);
      for (size_t F = 0; F < Fields && Refs.size() < Count; ++F) {
        PathElem Dot;
        Dot.K = PathElem::Kind::Dot;
        Dot.Field = FieldDecls[F];
        Dot.FieldName = FieldDecls[F]->name();
        Refs.push_back(Star.child(Dot));
      }
    }
  }
};

SVal mkVal(unsigned I) {
  SVal V;
  V.Def = I % 7 == 0 ? DefState::Undefined : DefState::Defined;
  V.Null = I % 5 == 0 ? NullState::PossiblyNull : NullState::NotNull;
  V.Alloc = I % 3 == 0 ? AllocState::Only : AllocState::Unqualified;
  V.AllocLoc = SourceLocation("b.c", 10 + I % 90, 1);
  V.DefLoc = SourceLocation("b.c", 10 + I % 90, 5);
  if (V.Null == NullState::PossiblyNull)
    V.NullLoc = SourceLocation("b.c", 10 + I % 90, 9);
  return V;
}

SVal defaultVal(const RefPath &) {
  SVal V;
  V.Def = DefState::Defined;
  V.Null = NullState::NotNull;
  return V;
}

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The split-heavy loop: every iteration forks the state twice (the two
/// arms of a predicate), writes one reference on the true arm, and merges —
/// exactly FunctionChecker::execIf's environment traffic.
template <typename EnvT, typename MakeFn>
double splitWriteMergeMs(MakeFn Make, const std::vector<RefPath> &Refs,
                         unsigned Iters) {
  EnvT Base = Make();
  for (size_t I = 0; I < Refs.size(); ++I)
    Base.set(Refs[I], mkVal(static_cast<unsigned>(I)));
  // A couple of alias links so the alias table takes part.
  Base.addAlias(Refs[0], Refs[Refs.size() / 2]);
  Base.addAlias(Refs[1 % Refs.size()], Refs[Refs.size() - 1]);

  double T0 = nowMs();
  for (unsigned I = 0; I < Iters; ++I) {
    EnvT TrueEnv = Base;
    EnvT FalseEnv = Base;
    TrueEnv.set(Refs[I % Refs.size()], mkVal(I));
    TrueEnv.mergeFrom(FalseEnv, defaultVal);
    Base = std::move(TrueEnv);
  }
  double Ms = nowMs() - T0;
  benchmark::DoNotOptimize(Base.find(Refs[0]));
  return Ms;
}

/// The deep-branch-nest stress: a nest of D two-armed predicates, each arm
/// writing one reference, merged on the way back out (2^k env pairs at
/// depth k are avoided by merging eagerly, like the checker does).
template <typename EnvT, typename MakeFn>
double deepBranchNestMs(MakeFn Make, const std::vector<RefPath> &Refs,
                        unsigned Depth, unsigned Repeat) {
  EnvT Base = Make();
  for (size_t I = 0; I < Refs.size(); ++I)
    Base.set(Refs[I], mkVal(static_cast<unsigned>(I)));

  double T0 = nowMs();
  for (unsigned R = 0; R < Repeat; ++R) {
    EnvT S = Base;
    for (unsigned D = 0; D < Depth; ++D) {
      EnvT TrueEnv = S;
      EnvT FalseEnv = S;
      TrueEnv.set(Refs[D % Refs.size()], mkVal(D + R));
      FalseEnv.set(Refs[(D + 1) % Refs.size()], mkVal(D + R + 1));
      TrueEnv.mergeFrom(FalseEnv, defaultVal);
      S = std::move(TrueEnv);
    }
    benchmark::DoNotOptimize(S.find(Refs[0]));
  }
  double Ms = nowMs() - T0;
  return Ms;
}

struct Row {
  const char *Workload;
  size_t Refs;
  unsigned Iters;
  double LegacyMs;
  double CowMs;
  double speedup() const { return LegacyMs / (CowMs > 0 ? CowMs : 1e-9); }
};

Row runSplitRow(size_t RefCount, unsigned Iters) {
  Fixture F(RefCount);
  auto MakeLegacy = [] { return LegacyEnv(); };
  double LegacyMs =
      splitWriteMergeMs<LegacyEnv>(MakeLegacy, F.Refs, Iters);
  auto Interner = std::make_shared<RefInterner>();
  auto MakeCow = [&Interner] { return Env(Interner); };
  double CowMs = splitWriteMergeMs<Env>(MakeCow, F.Refs, Iters);
  return {"split_write_merge", RefCount, Iters, LegacyMs, CowMs};
}

Row runNestRow(size_t RefCount, unsigned Depth, unsigned Repeat) {
  Fixture F(RefCount);
  auto MakeLegacy = [] { return LegacyEnv(); };
  double LegacyMs =
      deepBranchNestMs<LegacyEnv>(MakeLegacy, F.Refs, Depth, Repeat);
  auto Interner = std::make_shared<RefInterner>();
  auto MakeCow = [&Interner] { return Env(Interner); };
  double CowMs = deepBranchNestMs<Env>(MakeCow, F.Refs, Depth, Repeat);
  return {"deep_branch_nest", RefCount, Depth * Repeat, LegacyMs, CowMs};
}

void writeJson(const std::vector<Row> &Rows, double GeoMean, double MinSpeed,
               bool Pass) {
  FILE *F = fopen("BENCH_env_scaling.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_env_scaling.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"env_scaling\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    fprintf(F,
            "    {\"name\": \"%s\", \"tracked_refs\": %zu, "
            "\"iterations\": %u, \"legacy_ms\": %.3f, \"cow_ms\": %.3f, "
            "\"speedup\": %.2f}%s\n",
            R.Workload, R.Refs, R.Iters, R.LegacyMs, R.CowMs, R.speedup(),
            I + 1 < Rows.size() ? "," : "");
  }
  fprintf(F, "  ],\n");
  fprintf(F, "  \"split_speedup_geomean\": %.2f,\n", GeoMean);
  fprintf(F, "  \"split_speedup_min\": %.2f,\n", MinSpeed);
  fprintf(F, "  \"acceptance_min_speedup\": 3.0,\n");
  fprintf(F, "  \"acceptance_pass\": %s\n", Pass ? "true" : "false");
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_env_scaling.json\n");
}

void printReproduction() {
  printf("=============================================================\n");
  printf(" Environment split/merge scaling: legacy map vs interned COW\n");
  printf(" (split = 2 env copies + 1 write + 1 merge, as in execIf)\n");
  printf("=============================================================\n");
  printf("%-18s %-8s %-8s %-12s %-12s %s\n", "workload", "refs", "iters",
         "legacy(ms)", "cow(ms)", "speedup");

  std::vector<Row> Rows;
  Rows.push_back(runSplitRow(16, 4000));
  Rows.push_back(runSplitRow(64, 2000));
  Rows.push_back(runSplitRow(256, 1000));
  Rows.push_back(runSplitRow(1024, 400));
  Rows.push_back(runNestRow(64, 24, 60));
  Rows.push_back(runNestRow(256, 24, 25));

  double LogSum = 0, MinSpeed = 1e9;
  for (const Row &R : Rows) {
    printf("%-18s %-8zu %-8u %-12.2f %-12.2f %.2fx\n", R.Workload, R.Refs,
           R.Iters, R.LegacyMs, R.CowMs, R.speedup());
    LogSum += std::log(R.speedup());
    if (R.speedup() < MinSpeed)
      MinSpeed = R.speedup();
  }
  double GeoMean = std::exp(LogSum / Rows.size());
  bool Pass = MinSpeed >= 3.0;
  printf("\nsplit-throughput speedup: geomean %.2fx, min %.2fx "
         "(acceptance: >= 3x) => %s\n\n",
         GeoMean, MinSpeed, Pass ? "PASS" : "FAIL");
  writeJson(Rows, GeoMean, MinSpeed, Pass);
}

//===----------------------------------------------------------------------===//
// Google-benchmark timings for the new representation
//===----------------------------------------------------------------------===//

void BM_EnvSplitWriteMerge(benchmark::State &State) {
  Fixture F(static_cast<size_t>(State.range(0)));
  auto Interner = std::make_shared<RefInterner>();
  Env Base(Interner);
  for (size_t I = 0; I < F.Refs.size(); ++I)
    Base.set(F.Refs[I], mkVal(static_cast<unsigned>(I)));
  unsigned I = 0;
  for (auto _ : State) {
    Env TrueEnv = Base;
    Env FalseEnv = Base;
    TrueEnv.set(F.Refs[I % F.Refs.size()], mkVal(I + 1));
    ++I;
    TrueEnv.mergeFrom(FalseEnv, defaultVal);
    benchmark::DoNotOptimize(TrueEnv.find(F.Refs[0]));
  }
  State.counters["splits/s"] =
      benchmark::Counter(2.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EnvSplitWriteMerge)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EnvCopyOnly(benchmark::State &State) {
  Fixture F(static_cast<size_t>(State.range(0)));
  auto Interner = std::make_shared<RefInterner>();
  Env Base(Interner);
  for (size_t I = 0; I < F.Refs.size(); ++I)
    Base.set(F.Refs[I], mkVal(static_cast<unsigned>(I)));
  for (auto _ : State) {
    Env Copy = Base;
    benchmark::DoNotOptimize(Copy.size());
  }
}
BENCHMARK(BM_EnvCopyOnly)->Arg(64)->Arg(1024);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
