//===--- bench_fig5_listaddh.cpp - Figures 5-6 reproduction --------------------===//
//
// Part of memlint. See DESIGN.md (experiments F5, F6).
//
// Regenerates the analysis of the buggy list_addh (Figure 5): the kept/only
// confluence anomaly and the incomplete-definition anomaly, and prints the
// function's control-flow graph in the Figure 6 style (acyclic, loop
// without a back edge).
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

namespace {

void printReproduction() {
  Program P = listAddh();
  printf("=======================================================\n");
  printf(" Experiment F5: list_addh anomalies (paper Figure 5)\n");
  printf("=======================================================\n");
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  printf("%s\n", R.render().c_str());
  bool HasConfluence = R.contains("kept on one branch, only on the other");
  bool HasIncomplete = R.contains("l->next->next is undefined");
  printf("paper expects: 2 anomalies (confluence on e at point 10, "
         "incomplete\n               definition of argl->next->next at "
         "point 11)\n");
  printf("ours: %u anomalies, confluence=%s, incomplete=%s -> %s\n\n",
         R.anomalyCount(), HasConfluence ? "yes" : "NO",
         HasIncomplete ? "yes" : "NO",
         (R.anomalyCount() == 2 && HasConfluence && HasIncomplete)
             ? "REPRODUCED"
             : "MISMATCH");

  printf("=======================================================\n");
  printf(" Experiment F6: control-flow graph (paper Figure 6)\n");
  printf("=======================================================\n");
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  std::unique_ptr<CFG> G = CFG::build(TU->findFunction("list_addh"));
  printf("%s", G->print().c_str());
  printf("\nacyclic (no loop back edge): %s; %zu blocks (paper shows 11 "
         "execution points)\n\n",
         G->isAcyclic() ? "yes" : "NO", G->blocks().size());
}

void BM_CheckListAddh(benchmark::State &State) {
  Program P = listAddh();
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
}
BENCHMARK(BM_CheckListAddh);

void BM_BuildCfg(benchmark::State &State) {
  Program P = listAddh();
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  const FunctionDecl *FD = TU->findFunction("list_addh");
  for (auto _ : State) {
    std::unique_ptr<CFG> G = CFG::build(FD);
    benchmark::DoNotOptimize(G->blocks().size());
  }
}
BENCHMARK(BM_BuildCfg);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
