//===--- bench_figures_sample.cpp - Figures 1-4 reproduction ------------------===//
//
// Part of memlint. See DESIGN.md (experiments F1-F4).
//
// Regenerates the paper's Figures 1-4 outputs: the four sample.c variants
// and the anomalies each produces, plus checking throughput on the
// smallest programs the paper shows.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

namespace {

void printReproduction() {
  printf("=======================================================\n");
  printf(" Experiment F1-F4: sample.c (paper Figures 1-4)\n");
  printf("=======================================================\n");
  struct Row {
    int Version;
    const char *What;
    unsigned PaperAnomalies;
  };
  const Row Rows[] = {
      {1, "no annotations", 0},
      {2, "null on pname", 1},
      {3, "truenull guard", 0},
      {4, "only gname + temp pname", 2},
  };
  printf("%-3s %-28s %-8s %-8s %s\n", "fig", "variant", "paper", "ours",
         "match");
  bool AllMatch = true;
  for (const Row &R : Rows) {
    Program P = sampleFigure(R.Version);
    CheckResult Res = Checker::checkFiles(P.Files, P.MainFiles);
    bool Match = Res.anomalyCount() == R.PaperAnomalies;
    AllMatch = AllMatch && Match;
    printf("%-3d %-28s %-8u %-8u %s\n", R.Version, R.What, R.PaperAnomalies,
           Res.anomalyCount(), Match ? "yes" : "NO");
  }
  printf("\nFigure 2 message (paper output, regenerated):\n");
  printf("%s", Checker::checkFiles(sampleFigure(2).Files, {"sample.c"})
                   .render()
                   .c_str());
  printf("\nFigure 4 messages (paper output, regenerated):\n");
  printf("%s", Checker::checkFiles(sampleFigure(4).Files, {"sample.c"})
                   .render()
                   .c_str());
  printf("\noverall: %s\n\n", AllMatch ? "REPRODUCED" : "MISMATCH");
}

void BM_CheckSampleVariant(benchmark::State &State) {
  Program P = sampleFigure(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
}
BENCHMARK(BM_CheckSampleVariant)->DenseRange(1, 4);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
