//===--- bench_frontend_reuse.cpp - Shared front-end speedup ----------------===//
//
// Part of memlint. See DESIGN.md §5c.
//
// A batch run re-lexes and re-preprocesses the same text over and over: the
// annotated-library prelude plus every common header, once per translation
// unit. The shared front end memoizes those expansions during a warmup pass
// and replays them in every worker. This bench measures exactly that axis —
// front-end (lex + pp) milliseconds across a shared-header corpus, cache on
// vs off — and verifies the contract while at it: byte-identical
// diagnostics and a cache that actually hits.
//
// ci.sh gates on the JSON this writes: speedup >= 2x under release-lto.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/BatchDriver.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace memlint;
using namespace memlint::corpus;

namespace {

Program frontEndCorpus() {
  GenOptions O;
  O.Modules = 48;
  O.FunctionsPerModule = 6;
  O.SharedHeaders = 8;
  O.Seed = 7;
  return syntheticProgram(O);
}

struct FrontendRun {
  double FrontendMs = 0; ///< phase.lex + phase.pp, warmup included
  unsigned long long CacheHits = 0;
  unsigned long long BytesSaved = 0;
  unsigned long long InternHits = 0;
  std::string Rendered;
  unsigned Anomalies = 0;
};

double timer(const MetricsSnapshot &M, const std::string &K) {
  auto It = M.TimersMs.find(K);
  return It == M.TimersMs.end() ? 0 : It->second;
}

unsigned long long counter(const MetricsSnapshot &M, const std::string &K) {
  auto It = M.Counters.find(K);
  return It == M.Counters.end() ? 0 : It->second;
}

FrontendRun runOnce(const Program &P, bool Shared) {
  BatchOptions Opts;
  Opts.Jobs = 1; // single-threaded: timers sum cleanly, no scheduler noise
  Opts.SharedFrontend = Shared;
  Opts.Check.FrontendCache = Shared;
  Opts.CollectMetrics = true;
  BatchDriver Driver(Opts);
  BatchResult R = Driver.run(P.Files, P.MainFiles);
  FrontendRun Out;
  Out.FrontendMs = timer(R.Metrics, "phase.lex") +
                   timer(R.Metrics, "phase.pp") +
                   timer(R.Metrics, "warmup.phase.lex") +
                   timer(R.Metrics, "warmup.phase.pp");
  Out.CacheHits = counter(R.Metrics, "pp.include_cache.hit");
  Out.BytesSaved = counter(R.Metrics, "pp.include_cache.bytes_saved");
  Out.InternHits = counter(R.Metrics, "lex.intern.hit");
  Out.Rendered = R.render();
  Out.Anomalies = R.TotalAnomalies;
  return Out;
}

void writeJson(double OffMs, double OnMs, double Speedup,
               const FrontendRun &On, bool ByteIdentical, unsigned Files,
               unsigned Lines) {
  FILE *F = fopen("BENCH_frontend_reuse.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_frontend_reuse.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"frontend_reuse\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"corpus\": {\"files\": %u, \"lines\": %u},\n", Files, Lines);
  fprintf(F, "  \"frontend_ms_off\": %.2f,\n", OffMs);
  fprintf(F, "  \"frontend_ms_on\": %.2f,\n", OnMs);
  fprintf(F, "  \"speedup\": %.2f,\n", Speedup);
  fprintf(F, "  \"include_cache_hits\": %llu,\n", On.CacheHits);
  fprintf(F, "  \"include_cache_bytes_saved\": %llu,\n", On.BytesSaved);
  fprintf(F, "  \"intern_hits\": %llu,\n", On.InternHits);
  fprintf(F, "  \"byte_identical\": %s,\n", ByteIdentical ? "true" : "false");
  fprintf(F, "  \"reproduced\": %s\n",
          (Speedup >= 2.0 && ByteIdentical) ? "true" : "false");
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_frontend_reuse.json\n\n");
}

void printReproduction() {
  Program P = frontEndCorpus();
  const unsigned Lines = totalLines(P);
  printf("=============================================================\n");
  printf(" Front-end reuse: memoized #include expansion (DESIGN §5c)\n");
  printf(" corpus: %zu files, %u lines (%u shared headers per module)\n",
         P.Files.names().size(), Lines, 8u);
  printf("=============================================================\n");

  // Best-of-N on each side: front-end time is small, so take the minimum
  // over repeats to shed scheduler noise before forming the ratio.
  const int Reps = 5;
  FrontendRun Off, On;
  double OffMs = 0, OnMs = 0;
  for (int I = 0; I < Reps; ++I) {
    FrontendRun R = runOnce(P, false);
    if (I == 0 || R.FrontendMs < OffMs) {
      OffMs = R.FrontendMs;
      Off = R;
    }
  }
  for (int I = 0; I < Reps; ++I) {
    FrontendRun R = runOnce(P, true);
    if (I == 0 || R.FrontendMs < OnMs) {
      OnMs = R.FrontendMs;
      On = R;
    }
  }

  const bool ByteIdentical = Off.Rendered == On.Rendered;
  const double Speedup = OnMs > 0 ? OffMs / OnMs : 0;
  printf("front-end (lex+pp, warmup incl.):  off %.2f ms   on %.2f ms\n",
         OffMs, OnMs);
  printf("speedup: %.2fx   include-cache hits: %llu (%.1f KB of header "
         "text replayed)\n",
         Speedup, On.CacheHits, On.BytesSaved / 1024.0);
  printf("interned spelling hits: %llu\n", On.InternHits);
  printf("diagnostics byte-identical: %s (off: %u anomalies, on: %u)\n",
         ByteIdentical ? "yes" : "NO", Off.Anomalies, On.Anomalies);
  if (On.CacheHits == 0)
    printf("!! cache never hit — the shared front end is not engaging\n");
  printf("verdict: %s\n\n",
         (Speedup >= 2.0 && ByteIdentical && On.CacheHits > 0)
             ? "REPRODUCED (>= 2x)"
             : "MISMATCH");

  writeJson(OffMs, OnMs, Speedup, On, ByteIdentical,
            static_cast<unsigned>(P.Files.names().size()), Lines);
}

void BM_BatchFrontend(benchmark::State &State) {
  Program P = frontEndCorpus();
  const bool Shared = State.range(0) != 0;
  for (auto _ : State) {
    FrontendRun R = runOnce(P, Shared);
    benchmark::DoNotOptimize(R.Rendered.size());
  }
  State.SetLabel(Shared ? "shared-frontend" : "cold-frontend");
}
BENCHMARK(BM_BatchFrontend)->Arg(0)->Arg(1);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
