//===--- bench_incremental.cpp - Warm vs cold check service -------------------===//
//
// Part of memlint. See DESIGN.md §6f.
//
// The check service's incremental-reuse acceptance: over a Section 7
// synthetic corpus of 400 modules, a warm re-check after editing ONE
// module must be more than 50x faster than the cold run — and every
// served answer must be byte-identical to what a cold check of the same
// content produces. Exactly one module may recompute; the other 399 must
// be cache hits.
//
// Writes BENCH_incremental.json (cold_ms, warm_ms, speedup, hit counts,
// byte_identical, acceptance_pass) for the CI gate.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "service/CheckService.h"
#include "support/MonotonicTime.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace memlint;

namespace {

constexpr unsigned Modules = 400;
constexpr unsigned FunctionsPerModule = 25;
constexpr double AcceptanceMinSpeedup = 50.0;

struct Outcome {
  double ColdMs = 0;
  double WarmMs = 0;
  unsigned CacheHits = 0;
  unsigned Recomputed = 0;
  bool ByteIdentical = true;
  bool StatusesSettled = true; // every check ended ok/degraded
  unsigned Loc = 0;
  size_t Files = 0;

  double speedup() const { return WarmMs > 0 ? ColdMs / WarmMs : 0; }
  bool pass() const {
    return ByteIdentical && StatusesSettled && Recomputed == 1 &&
           speedup() > AcceptanceMinSpeedup;
  }
};

Outcome runScenario() {
  corpus::GenOptions Gen;
  Gen.Modules = Modules;
  Gen.FunctionsPerModule = FunctionsPerModule;
  corpus::Program P = corpus::syntheticProgram(Gen);

  // The editable "disk" the service reads through.
  std::map<std::string, std::string> Disk;
  for (const std::string &Name : P.Files.names())
    Disk[Name] = *P.Files.read(Name);

  Outcome Out;
  Out.Loc = corpus::totalLines(P);
  Out.Files = Disk.size();

  ServiceOptions O;
  O.FileSource = [&Disk](const std::string &Name)
      -> std::optional<std::string> {
    auto It = Disk.find(Name);
    if (It == Disk.end())
      return std::nullopt;
    return It->second;
  };
  CheckService Service(O);

  auto CheckAll = [&] {
    std::vector<ServiceReply> Replies;
    Replies.reserve(P.MainFiles.size());
    for (const std::string &File : P.MainFiles) {
      ServiceRequest Req;
      Req.Kind = ServiceRequestKind::Check;
      Req.File = File;
      Replies.push_back(Service.handle(Req));
    }
    return Replies;
  };

  double Start = monotonicNowMs();
  std::vector<ServiceReply> Cold = CheckAll();
  Out.ColdMs = monotonicNowMs() - Start;

  // Edit exactly one module (appending a declaration changes its content
  // hash and its diagnostics line numbers stay put).
  const std::string Edited = P.MainFiles[Modules / 2];
  Disk[Edited] += "\nint bench_incremental_edit(int x) { return x; }\n";

  Start = monotonicNowMs();
  std::vector<ServiceReply> Warm = CheckAll();
  Out.WarmMs = monotonicNowMs() - Start;

  for (size_t I = 0; I < P.MainFiles.size(); ++I) {
    const ServiceReply &C = Cold[I];
    const ServiceReply &W = Warm[I];
    if (C.Status != "ok" && C.Status != "degraded")
      Out.StatusesSettled = false;
    if (W.CacheHit) {
      ++Out.CacheHits;
      // A warm answer must replay the cold answer byte for byte.
      if (W.Diagnostics != C.Diagnostics || W.Status != C.Status ||
          W.Anomalies != C.Anomalies || W.Suppressed != C.Suppressed)
        Out.ByteIdentical = false;
    } else {
      ++Out.Recomputed;
      if (P.MainFiles[I] != Edited)
        Out.ByteIdentical = false; // an unedited file recomputed: stale drop
    }
  }
  return Out;
}

void writeJson(const Outcome &Out) {
  FILE *F = fopen("BENCH_incremental.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_incremental.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"incremental\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"modules\": %u,\n", Modules);
  fprintf(F, "  \"functions_per_module\": %u,\n", FunctionsPerModule);
  fprintf(F, "  \"files\": %zu,\n", Out.Files);
  fprintf(F, "  \"loc\": %u,\n", Out.Loc);
  fprintf(F, "  \"cold_ms\": %.1f,\n", Out.ColdMs);
  fprintf(F, "  \"warm_ms\": %.1f,\n", Out.WarmMs);
  fprintf(F, "  \"cache_hits\": %u,\n", Out.CacheHits);
  fprintf(F, "  \"recomputed\": %u,\n", Out.Recomputed);
  fprintf(F, "  \"speedup\": %.1f,\n", Out.speedup());
  fprintf(F, "  \"byte_identical\": %s,\n",
          Out.ByteIdentical ? "true" : "false");
  fprintf(F, "  \"acceptance_min_speedup\": %.1f,\n", AcceptanceMinSpeedup);
  fprintf(F, "  \"acceptance_pass\": %s\n", Out.pass() ? "true" : "false");
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_incremental.json\n");
}

} // namespace

int main() {
  printf("=============================================================\n");
  printf(" Incremental reuse: warm service re-check after a 1-module\n");
  printf(" edit vs a cold check of the full %u-module corpus\n", Modules);
  printf("=============================================================\n");

  Outcome Out = runScenario();

  printf("corpus: %u modules, %zu files, %u lines\n", Modules, Out.Files,
         Out.Loc);
  printf("cold:   %.1f ms (%u checks)\n", Out.ColdMs, Modules);
  printf("warm:   %.1f ms (%u hits, %u recomputed)\n", Out.WarmMs,
         Out.CacheHits, Out.Recomputed);
  printf("\nincremental speedup: %.1fx (acceptance: > %.0fx, byte-identical "
         "replay, exactly 1 recompute) => %s\n",
         Out.speedup(), AcceptanceMinSpeedup, Out.pass() ? "PASS" : "FAIL");
  writeJson(Out);
  return Out.pass() ? 0 : 1;
}
