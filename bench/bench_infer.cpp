//===--- bench_infer.cpp - Inferred vs hand-annotated parity ------------------===//
//
// Part of memlint. See DESIGN.md §6h.
//
// The annotation-inference acceptance: strip every annotation from the
// module sources of a Section 7 synthetic corpus, run the checker with
// -infer, and compare the findings against the hand-annotated baseline.
// The inferred interfaces must reproduce at least 95% of the baseline's
// findings (the annotated corpus checks clean, so parity means the
// inferred run is clean too), introduce ZERO findings the baseline does
// not have, and render byte-identically whether inferred at -j1 or -j8.
//
// Writes BENCH_infer.json (parity, new false positives, suppressed bare
// anomalies, annotations added, timings, byte_identical, acceptance_pass)
// for the CI gate.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "driver/BatchDriver.h"
#include "support/MonotonicTime.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace memlint;

namespace {

constexpr unsigned Modules = 40;
constexpr unsigned FunctionsPerModule = 25;
constexpr double AcceptanceMinParity = 95.0;

struct Outcome {
  unsigned BaselineFindings = 0;  ///< hand-annotated anomalies (expect 0)
  unsigned BareFindings = 0;      ///< anomalies with annotations stripped
  unsigned InferredFindings = 0;  ///< anomalies after -infer recovery
  unsigned NewFalsePositives = 0; ///< inferred findings absent from baseline
  unsigned MissedFindings = 0;    ///< baseline findings absent from inferred
  unsigned long long AnnotationsAdded = 0;
  unsigned long long Rejected = 0;
  double BaselineMs = 0;
  double InferMs = 0;
  bool ByteIdentical = true; ///< -j1 vs -j8 combined header bytes
  unsigned Loc = 0;
  size_t Files = 0;

  double parity() const {
    if (BaselineFindings == 0)
      return MissedFindings == 0 && InferredFindings == NewFalsePositives
                 ? 100.0
                 : 0.0;
    return 100.0 *
           static_cast<double>(BaselineFindings - MissedFindings) /
           static_cast<double>(BaselineFindings);
  }
  bool pass() const {
    return parity() >= AcceptanceMinParity && NewFalsePositives == 0 &&
           ByteIdentical && BareFindings > InferredFindings;
  }
};

std::set<std::string> findingKeys(const CheckResult &R) {
  std::set<std::string> Keys;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Sev == Severity::Anomaly)
      Keys.insert(D.str());
  return Keys;
}

std::string batchHeader(const corpus::Program &P, unsigned Jobs) {
  BatchOptions Options;
  Options.Check.Infer = true;
  Options.Jobs = Jobs;
  BatchDriver Driver(Options);
  BatchResult R = Driver.run(P.Files, P.MainFiles);
  std::string Header;
  for (const FileOutcome &O : R.Outcomes)
    Header += O.Inferred;
  return Header;
}

Outcome runScenario() {
  corpus::GenOptions Gen;
  Gen.Modules = Modules;
  Gen.FunctionsPerModule = FunctionsPerModule;
  corpus::Program Annotated = corpus::syntheticProgram(Gen);
  Gen.UnannotatedModules = true;
  corpus::Program Stripped = corpus::syntheticProgram(Gen);

  Outcome Out;
  Out.Loc = corpus::totalLines(Stripped);
  Out.Files = Stripped.Files.names().size();

  CheckOptions Plain;
  CheckOptions Infer;
  Infer.Infer = true;
  Infer.CollectMetrics = true;

  std::set<std::string> Baseline, Inferred;
  double Start = monotonicNowMs();
  for (const std::string &Main : Annotated.MainFiles) {
    CheckResult R = Checker::checkFiles(Annotated.Files, {Main}, Plain);
    Out.BaselineFindings += R.anomalyCount();
    for (const std::string &Key : findingKeys(R))
      Baseline.insert(Key);
  }
  Out.BaselineMs = monotonicNowMs() - Start;

  for (const std::string &Main : Stripped.MainFiles)
    Out.BareFindings +=
        Checker::checkFiles(Stripped.Files, {Main}, Plain).anomalyCount();

  Start = monotonicNowMs();
  for (const std::string &Main : Stripped.MainFiles) {
    CheckResult R = Checker::checkFiles(Stripped.Files, {Main}, Infer);
    Out.InferredFindings += R.anomalyCount();
    for (const std::string &Key : findingKeys(R))
      Inferred.insert(Key);
    auto It = R.Metrics.Counters.find("infer.annotations");
    if (It != R.Metrics.Counters.end())
      Out.AnnotationsAdded += It->second;
    It = R.Metrics.Counters.find("infer.rejected");
    if (It != R.Metrics.Counters.end())
      Out.Rejected += It->second;
  }
  Out.InferMs = monotonicNowMs() - Start;

  for (const std::string &Key : Inferred)
    if (!Baseline.count(Key))
      ++Out.NewFalsePositives;
  for (const std::string &Key : Baseline)
    if (!Inferred.count(Key))
      ++Out.MissedFindings;

  Out.ByteIdentical = batchHeader(Stripped, 1) == batchHeader(Stripped, 8);
  return Out;
}

void writeJson(const Outcome &Out) {
  FILE *F = fopen("BENCH_infer.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_infer.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"infer\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"modules\": %u,\n", Modules);
  fprintf(F, "  \"functions_per_module\": %u,\n", FunctionsPerModule);
  fprintf(F, "  \"files\": %zu,\n", Out.Files);
  fprintf(F, "  \"loc\": %u,\n", Out.Loc);
  fprintf(F, "  \"baseline_findings\": %u,\n", Out.BaselineFindings);
  fprintf(F, "  \"bare_findings\": %u,\n", Out.BareFindings);
  fprintf(F, "  \"inferred_findings\": %u,\n", Out.InferredFindings);
  fprintf(F, "  \"new_false_positives\": %u,\n", Out.NewFalsePositives);
  fprintf(F, "  \"missed_findings\": %u,\n", Out.MissedFindings);
  fprintf(F, "  \"annotations_added\": %llu,\n", Out.AnnotationsAdded);
  fprintf(F, "  \"annotations_rejected\": %llu,\n", Out.Rejected);
  fprintf(F, "  \"baseline_ms\": %.1f,\n", Out.BaselineMs);
  fprintf(F, "  \"infer_ms\": %.1f,\n", Out.InferMs);
  fprintf(F, "  \"parity_pct\": %.1f,\n", Out.parity());
  fprintf(F, "  \"byte_identical\": %s,\n",
          Out.ByteIdentical ? "true" : "false");
  fprintf(F, "  \"acceptance_min_parity_pct\": %.1f,\n", AcceptanceMinParity);
  fprintf(F, "  \"acceptance_pass\": %s\n", Out.pass() ? "true" : "false");
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_infer.json\n");
}

} // namespace

int main() {
  printf("=============================================================\n");
  printf(" Annotation inference: stripped %u-module corpus re-checked\n",
         Modules);
  printf(" with -infer vs the hand-annotated baseline\n");
  printf("=============================================================\n");

  Outcome Out = runScenario();

  printf("corpus: %u modules, %zu files, %u lines\n", Modules, Out.Files,
         Out.Loc);
  printf("baseline (hand-annotated): %u findings in %.1f ms\n",
         Out.BaselineFindings, Out.BaselineMs);
  printf("bare (annotations stripped): %u findings\n", Out.BareFindings);
  printf("inferred (-infer): %u findings in %.1f ms "
         "(%llu annotations added, %llu rejected)\n",
         Out.InferredFindings, Out.InferMs, Out.AnnotationsAdded,
         Out.Rejected);
  printf("new false positives: %u, missed findings: %u\n",
         Out.NewFalsePositives, Out.MissedFindings);
  printf("-j1 vs -j8 header: %s\n",
         Out.ByteIdentical ? "byte-identical" : "DIFFER");
  printf("\nfinding parity: %.1f%% (acceptance: >= %.0f%%, zero new false "
         "positives, byte-identical headers) => %s\n",
         Out.parity(), AcceptanceMinParity, Out.pass() ? "PASS" : "FAIL");
  writeJson(Out);
  return Out.pass() ? 0 : 1;
}
