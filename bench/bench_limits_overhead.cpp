//===--- bench_limits_overhead.cpp - Cost of the containment layer -------------===//
//
// Part of memlint. See DESIGN.md (section 6b).
//
// The resource-budget layer (support/Limits.h) charges counters on every
// preprocessed token, parsed nesting level, analyzed statement, and
// environment split. This bench verifies two properties:
//
//   1. default budgets cost (approximately) nothing on clean input —
//      checking with the stock ResourceBudget matches checking with every
//      limit disabled (0 = unlimited);
//   2. tight budgets actually bound work — a degraded run over the same
//      input finishes faster, not slower.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

using namespace memlint;
using namespace memlint::corpus;

namespace {

Program benchProgram() {
  GenOptions O;
  O.Modules = 8;
  O.FunctionsPerModule = 25;
  return syntheticProgram(O);
}

void BM_DefaultBudgets(benchmark::State &State) {
  Program P = benchProgram();
  CheckOptions Options; // stock ResourceBudget
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_DefaultBudgets);

void BM_UnlimitedBudgets(benchmark::State &State) {
  Program P = benchProgram();
  CheckOptions Options;
  Options.Flags.limits() = ResourceBudget{0, 0, 0, 0, 0, 0};
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_UnlimitedBudgets);

void BM_TightBudgetsDegrade(benchmark::State &State) {
  Program P = benchProgram();
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 2;
  Options.Flags.limits().MaxEnvSplitsPerFunction = 2;
  unsigned DegradedRuns = 0;
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    if (R.Status == CheckStatus::Degraded)
      ++DegradedRuns;
    benchmark::DoNotOptimize(R.Status);
  }
  State.counters["degraded"] = DegradedRuns;
}
BENCHMARK(BM_TightBudgetsDegrade);

} // namespace

BENCHMARK_MAIN();
