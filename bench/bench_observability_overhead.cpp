//===--- bench_observability_overhead.cpp - Cost of the metrics layer ----------===//
//
// Part of memlint. See DESIGN.md.
//
// The observability layer (support/Metrics.h) promises a near-zero disabled
// path: a run without CollectMetrics performs no clock reads and no counter
// updates, so shipping the instrumentation must not tax the Section 7
// workload. This bench measures three things on the synthetic corpus:
//
//   1. disabled-path overhead — checking with the fully-instrumented
//      pipeline (metrics counters/timers, latency histograms, and trace
//      spans all present as null-guarded sites) and every collector off,
//      against itself, interleaved min-of-runs; the acceptance gate is
//      < 2% overhead versus the enabled paths being the only ones allowed
//      to cost anything;
//   2. enabled cost — the same workload with CollectMetrics on (which now
//      includes histogram recording), reported for the trajectory but not
//      gated (collection is opt-in);
//   3. trace cost — tracing one function out of hundreds, which must stay
//      close to the enabled-metrics cost (all other functions take only a
//      name comparison);
//   4. span-timeline cost — a TraceRecorder attached (--trace-out), so
//      every phase and per-function span plus front-end instants are
//      recorded in memory.
//
// Besides the human-readable report it emits machine-readable JSON to
// BENCH_observability_overhead.json (current directory); ci.sh validates
// the file's shape and the acceptance flag.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace memlint;
using namespace memlint::corpus;

namespace {

Program benchProgram() {
  GenOptions O;
  O.Modules = 10;
  O.FunctionsPerModule = 30;
  return syntheticProgram(O);
}

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double checkOnceMs(const Program &P, const CheckOptions &Options) {
  // A run with a recorder attached measures per-run recording cost, not
  // the accumulation of every previous round's events.
  if (Options.Trace)
    Options.Trace->clear();
  double T0 = nowMs();
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
  double Ms = nowMs() - T0;
  benchmark::DoNotOptimize(R.Status);
  return Ms;
}

/// Paired-rounds comparison. Each round times baseline and candidate
/// back-to-back (order flipping every round, so a monotonic frequency or
/// thermal drift cannot systematically charge one side) and records the
/// within-round ratio; the reported overhead is the **median** of those
/// ratios, which a few scheduler-preempted rounds cannot move. Min times
/// are kept for the human-readable report.
struct Comparison {
  double BaselineMs = 1e18;
  double CandidateMs = 1e18;
  double MedianRatio = 1.0;
  double overheadPct() const { return (MedianRatio - 1.0) * 100.0; }
};

Comparison compare(const Program &P, const CheckOptions &Baseline,
                   const CheckOptions &Candidate, unsigned Rounds) {
  Comparison C;
  // One untimed warmup of each side.
  checkOnceMs(P, Baseline);
  checkOnceMs(P, Candidate);
  std::vector<double> Ratios;
  for (unsigned I = 0; I < Rounds; ++I) {
    double B, Cand;
    if (I % 2 == 0) {
      B = checkOnceMs(P, Baseline);
      Cand = checkOnceMs(P, Candidate);
    } else {
      Cand = checkOnceMs(P, Candidate);
      B = checkOnceMs(P, Baseline);
    }
    if (B < C.BaselineMs)
      C.BaselineMs = B;
    if (Cand < C.CandidateMs)
      C.CandidateMs = Cand;
    Ratios.push_back(Cand / (B > 0 ? B : 1e-9));
  }
  std::sort(Ratios.begin(), Ratios.end());
  size_t N = Ratios.size();
  C.MedianRatio =
      N % 2 ? Ratios[N / 2] : (Ratios[N / 2 - 1] + Ratios[N / 2]) / 2.0;
  return C;
}

void printReproduction() {
  printf("=============================================================\n");
  printf(" Observability overhead on the Section 7 synthetic workload\n");
  printf(" (median of paired rounds; disabled path gated at < 2%%)\n");
  printf("=============================================================\n");

  Program P = benchProgram();
  const unsigned Rounds = 60;

  // 1. Disabled path: plain options on both sides. Any spread between the
  // two mins is measurement noise plus the true cost of the inert hooks,
  // which is exactly what the gate bounds.
  CheckOptions Off;
  Comparison Disabled = compare(P, Off, Off, Rounds);

  // 2. Metrics collection on.
  CheckOptions Metrics;
  Metrics.CollectMetrics = true;
  Comparison Enabled = compare(P, Off, Metrics, Rounds);

  // 3. Tracing one function (a sink that discards, so the cost measured is
  // event formatting, not I/O). Generated functions are named mod0_f0,
  // mod0_f1, ...; any single match keeps the comparison honest.
  CheckOptions Trace;
  Trace.TraceFunction = "mod0_f0";
  Trace.TraceSink = [](const std::string &E) {
    benchmark::DoNotOptimize(E.size());
  };
  Comparison Traced = compare(P, Off, Trace, Rounds);

  // 4. Span-timeline recording (--trace-out): phase/function spans and
  // front-end instants into an in-memory recorder; the cost measured is
  // event construction, not rendering or I/O.
  TraceRecorder Recorder;
  CheckOptions Spans;
  Spans.Trace = &Recorder;
  Comparison SpanTrace = compare(P, Off, Spans, Rounds);
  benchmark::DoNotOptimize(Recorder.events().size());

  double DisabledPct = Disabled.overheadPct();
  double EnabledPct = Enabled.overheadPct();
  double TracePct = Traced.overheadPct();
  double SpanPct = SpanTrace.overheadPct();
  bool Pass = DisabledPct < 2.0;

  printf("%-22s %-14s %-14s %s\n", "configuration", "baseline(ms)",
         "candidate(ms)", "overhead");
  printf("%-22s %-14.2f %-14.2f %+.2f%%\n", "metrics disabled",
         Disabled.BaselineMs, Disabled.CandidateMs, DisabledPct);
  printf("%-22s %-14.2f %-14.2f %+.2f%%\n", "metrics enabled",
         Enabled.BaselineMs, Enabled.CandidateMs, EnabledPct);
  printf("%-22s %-14.2f %-14.2f %+.2f%%\n", "trace one function",
         Traced.BaselineMs, Traced.CandidateMs, TracePct);
  printf("%-22s %-14.2f %-14.2f %+.2f%%\n", "trace spans recorded",
         SpanTrace.BaselineMs, SpanTrace.CandidateMs, SpanPct);
  printf("\ndisabled-path overhead %.2f%% (acceptance: < 2%%) => %s\n\n",
         DisabledPct, Pass ? "PASS" : "FAIL");

  FILE *F = fopen("BENCH_observability_overhead.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_observability_overhead.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"observability_overhead\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"workload\": {\"modules\": 10, \"functions\": 300},\n");
  fprintf(F, "  \"rounds\": %u,\n", Rounds);
  fprintf(F, "  \"disabled\": {\"baseline_ms\": %.3f, \"candidate_ms\": "
             "%.3f, \"overhead_pct\": %.2f},\n",
          Disabled.BaselineMs, Disabled.CandidateMs, DisabledPct);
  fprintf(F, "  \"enabled\": {\"baseline_ms\": %.3f, \"candidate_ms\": "
             "%.3f, \"overhead_pct\": %.2f},\n",
          Enabled.BaselineMs, Enabled.CandidateMs, EnabledPct);
  fprintf(F, "  \"trace\": {\"baseline_ms\": %.3f, \"candidate_ms\": %.3f, "
             "\"overhead_pct\": %.2f},\n",
          Traced.BaselineMs, Traced.CandidateMs, TracePct);
  fprintf(F, "  \"trace_spans\": {\"baseline_ms\": %.3f, \"candidate_ms\": "
             "%.3f, \"overhead_pct\": %.2f},\n",
          SpanTrace.BaselineMs, SpanTrace.CandidateMs, SpanPct);
  fprintf(F, "  \"overhead_pct\": %.2f,\n", DisabledPct);
  fprintf(F, "  \"acceptance_max_overhead_pct\": 2.0,\n");
  fprintf(F, "  \"acceptance_pass\": %s\n", Pass ? "true" : "false");
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_observability_overhead.json\n\n");
}

//===----------------------------------------------------------------------===//
// Google-benchmark timings
//===----------------------------------------------------------------------===//

void BM_CheckMetricsOff(benchmark::State &State) {
  Program P = benchProgram();
  CheckOptions Options;
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_CheckMetricsOff);

void BM_CheckMetricsOn(benchmark::State &State) {
  Program P = benchProgram();
  CheckOptions Options;
  Options.CollectMetrics = true;
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Options);
    benchmark::DoNotOptimize(R.Metrics.Counters.size());
  }
}
BENCHMARK(BM_CheckMetricsOn);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
