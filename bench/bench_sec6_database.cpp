//===--- bench_sec6_database.cpp - Section 6 reproduction ----------------------===//
//
// Part of memlint. See DESIGN.md (experiments F7, F8, T1, T4).
//
// Regenerates Section 6 on the reconstructed employee database: the
// iterative annotation ladder with anomaly counts, the erc_create /
// erc_choose null anomalies (Figure 7), the employee_setName unique-alias
// anomaly (Figure 8), the six driver leaks, the 15-annotation summary, and
// suppression economics (T4). Also measures whole-program checking time on
// the ~1000-line database, the paper's "under 10 seconds for a 5000-line
// module" datum scaled to today's hardware.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

namespace {

void printLadder() {
  printf("=============================================================\n");
  printf(" Experiment T1: the Section 6 annotation ladder\n");
  printf("=============================================================\n");
  struct Stage {
    DbVersion V;
    const char *Name;
    const char *PaperDatum;
  };
  const Stage Stages[] = {
      {DbVersion::Unannotated, "no annotations",
       "\"begin finding errors ... without annotations\""},
      {DbVersion::NullAdded, "null pass done",
       "7 alloc anomalies + propagation + Fig.8 alias"},
      {DbVersion::OnlyAdded, "only/out pass done",
       "\"Six memory leaks are detected in the test driver\""},
      {DbVersion::Fixed, "leaks fixed",
       "clean (spurious messages suppressed, cf. the 75)"},
  };
  printf("%-18s %-6s %-10s %-11s %s\n", "stage", "lines", "annotations",
         "anomalies", "suppressed");
  for (const Stage &S : Stages) {
    Program P = employeeDb(S.V);
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    printf("%-18s %-6u %-10u %-11u %u\n", S.Name, totalLines(P),
           countAnnotations(P), R.anomalyCount(), R.SuppressedCount);
  }
  printf("\n");

  // The leak stage in detail: exactly six anomalies, all in drive.c.
  CheckResult Leaks = Checker::checkFiles(
      employeeDb(DbVersion::OnlyAdded).Files,
      employeeDb(DbVersion::OnlyAdded).MainFiles);
  printf("driver leaks (paper: 6): %u, all in drive.c: %s\n",
         Leaks.anomalyCount(),
         [&] {
           for (const Diagnostic &D : Leaks.Diagnostics)
             if (D.Loc.file() != "drive.c")
               return "NO";
           return "yes";
         }());

  // The annotation summary (paper: 15 = 1 null + 1 out + 13 only).
  Program Fixed = employeeDb(DbVersion::Fixed);
  unsigned Only = 0, Out = 0, Null = 0, Unique = 0;
  for (const std::string &Name : Fixed.Files.names()) {
    const std::string Text = *Fixed.Files.read(Name);
    for (size_t Pos = 0; (Pos = Text.find("/*@", Pos)) != std::string::npos;
         Pos += 3) {
      if (Text.compare(Pos, 10, "/*@only@*/") == 0) ++Only;
      if (Text.compare(Pos, 9, "/*@out@*/") == 0) ++Out;
      if (Text.compare(Pos, 10, "/*@null@*/") == 0) ++Null;
      if (Text.compare(Pos, 12, "/*@unique@*/") == 0) ++Unique;
    }
  }
  printf("annotation summary   paper: 13 only, 1 out, 1 null (field)\n");
  printf("                     ours : %u only, %u out, %u null "
         "(incl. pre-existing typedef nulls), %u unique\n\n",
         Only, Out, Null, Unique);

  // The paper's program shape: source plus interface specifications.
  Program Spec = employeeDbSpecMode();
  CheckResult SpecR = Checker::checkFiles(Spec.Files, Spec.MainFiles);
  unsigned SpecLines = 0;
  for (const std::string &Name : Spec.Files.names())
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".lcl") == 0)
      for (char C : *Spec.Files.read(Name))
        if (C == '\n')
          ++SpecLines;
  printf("specification mode   paper: 1000 lines C + 300 lines LCL\n");
  printf("                     ours : %u lines C + %u lines LCL, %u "
         "anomalies (%u suppressed)\n\n",
         totalLines(Spec) - SpecLines, SpecLines, SpecR.anomalyCount(),
         SpecR.SuppressedCount);
}

void printFigures78() {
  printf("=============================================================\n");
  printf(" Experiments F7/F8: the null and aliasing anomalies\n");
  printf("=============================================================\n");
  Program Bare = employeeDb(DbVersion::Unannotated);
  CheckResult RBare = Checker::checkFiles(Bare.Files, Bare.MainFiles);
  printf("Figure 7 (unannotated erc_create):\n");
  for (const Diagnostic &D : RBare.Diagnostics)
    if (D.Message.find("derivable from return value") != std::string::npos)
      printf("  %s\n", D.str().c_str());

  Program NullStage = employeeDb(DbVersion::NullAdded);
  CheckResult RNull = Checker::checkFiles(NullStage.Files,
                                          NullStage.MainFiles);
  printf("Figure 8 (employee_setName aliasing):\n");
  for (const Diagnostic &D : RNull.Diagnostics)
    if (D.Id == CheckId::UniqueAlias)
      printf("  %s\n", D.str().c_str());
  printf("\n");
}

void printSuppression() {
  printf("=============================================================\n");
  printf(" Experiment T4: suppression economics (paper: 75 stylized\n");
  printf(" comments on the 100k-line LCLint; scaled to our 1k lines)\n");
  printf("=============================================================\n");
  Program Fixed = employeeDb(DbVersion::Fixed);
  CheckResult R = Checker::checkFiles(Fixed.Files, Fixed.MainFiles);
  unsigned Controls = 0;
  for (const std::string &Name : Fixed.Files.names()) {
    const std::string Text = *Fixed.Files.read(Name);
    for (size_t Pos = 0; (Pos = Text.find("/*@-", Pos)) != std::string::npos;
         Pos += 4)
      ++Controls;
  }
  printf("control comments in the clean program: %u (suppressing %u "
         "messages)\n",
         Controls, R.SuppressedCount);
  printf("anomalies remaining: %u\n\n", R.anomalyCount());
}

void BM_CheckDatabase(benchmark::State &State) {
  Program P = employeeDb(static_cast<DbVersion>(State.range(0)));
  unsigned Lines = totalLines(P);
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
  State.counters["lines"] = Lines;
  State.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(Lines) * State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckDatabase)->DenseRange(0, 3);

} // namespace

int main(int argc, char **argv) {
  printLadder();
  printFigures78();
  printSuppression();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
