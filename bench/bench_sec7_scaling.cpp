//===--- bench_sec7_scaling.cpp - Section 7 performance reproduction -----------===//
//
// Part of memlint. See DESIGN.md (experiment T2).
//
// The paper: "it is essential that the checking be efficient and scale
// approximately linearly with the size of the program" (Section 2); "It
// takes less than four minutes (on a DEC 3000/500) to check the entire
// [100k-line] program ... a representative 5000 line module is checked in
// under 10 seconds" (Section 7).
//
// We regenerate the series on synthetic programs from ~500 to ~100k lines
// and verify the two shape claims: time grows linearly with LOC, and a
// single module checks much faster than the whole program.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

using namespace memlint;
using namespace memlint::corpus;

namespace {

struct SeriesPoint {
  unsigned Modules;
  unsigned Lines;
  double Ms;
  double PerKloc;
};

/// Machine-readable mirror of the reproduction table for ci.sh and the
/// perf trajectory; written to the current directory.
void writeJson(const std::vector<SeriesPoint> &Series, double Ratio,
               bool Reproduced, unsigned WholeLines, double WholeMs,
               unsigned ModuleLines, double ModuleMs) {
  FILE *F = fopen("BENCH_sec7_scaling.json", "w");
  if (!F) {
    fprintf(stderr, "cannot write BENCH_sec7_scaling.json\n");
    return;
  }
  fprintf(F, "{\n");
  fprintf(F, "  \"bench\": \"sec7_scaling\",\n");
  fprintf(F, "  \"unit\": \"ms\",\n");
  fprintf(F, "  \"series\": [\n");
  for (size_t I = 0; I < Series.size(); ++I) {
    const SeriesPoint &P = Series[I];
    fprintf(F,
            "    {\"modules\": %u, \"lines\": %u, \"ms\": %.1f, "
            "\"ms_per_kloc\": %.2f}%s\n",
            P.Modules, P.Lines, P.Ms, P.PerKloc,
            I + 1 < Series.size() ? "," : "");
  }
  fprintf(F, "  ],\n");
  fprintf(F, "  \"linearity_ratio\": %.2f,\n", Ratio);
  fprintf(F, "  \"linearity_reproduced\": %s,\n",
          Reproduced ? "true" : "false");
  fprintf(F, "  \"whole_program\": {\"lines\": %u, \"ms\": %.1f},\n",
          WholeLines, WholeMs);
  fprintf(F, "  \"one_module\": {\"lines\": %u, \"ms\": %.1f},\n", ModuleLines,
          ModuleMs);
  fprintf(F, "  \"modular_speedup\": %.1f\n",
          WholeMs / (ModuleMs > 0 ? ModuleMs : 1));
  fprintf(F, "}\n");
  fclose(F);
  printf("wrote BENCH_sec7_scaling.json\n\n");
}

double checkMillis(const Program &P) {
  // Best-of-3: single samples at the 100 kLOC point swing by 30% or more
  // on a loaded machine, and both the checked-in record and the ci.sh
  // ms/kLOC gate read this number.
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    auto T1 = std::chrono::steady_clock::now();
    if (R.anomalyCount() != 0)
      printf("  !! unexpected anomalies: %u\n", R.anomalyCount());
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (Rep == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

void printReproduction() {
  printf("=============================================================\n");
  printf(" Experiment T2: checking-time scaling (paper Section 2/7)\n");
  printf(" paper: ~linear; 100 kLOC < 4 min, 5 kLOC module < 10 s\n");
  printf("         (DEC 3000/500, 1996)\n");
  printf("=============================================================\n");
  printf("%-8s %-10s %-12s %s\n", "modules", "lines", "time(ms)",
         "ms per kLOC");

  double FirstPerKloc = 0, LastPerKloc = 0;
  std::vector<SeriesPoint> Series;
  unsigned Sizes[] = {2, 8, 20, 60, 160, 400};
  for (unsigned M : Sizes) {
    GenOptions O;
    O.Modules = M;
    O.FunctionsPerModule = 25;
    Program P = syntheticProgram(O);
    unsigned Lines = totalLines(P);
    double Ms = checkMillis(P);
    double PerKloc = Ms * 1000.0 / Lines;
    if (FirstPerKloc == 0)
      FirstPerKloc = PerKloc;
    LastPerKloc = PerKloc;
    Series.push_back({M, Lines, Ms, PerKloc});
    printf("%-8u %-10u %-12.1f %.2f\n", M, Lines, Ms, PerKloc);
  }
  double Ratio = LastPerKloc / FirstPerKloc;
  printf("\nlinearity: ms/kLOC ratio largest/smallest = %.2f "
         "(1.0 = perfectly linear; paper claims ~linear)\n",
         Ratio);
  printf("shape %s\n\n", Ratio < 3.0 ? "REPRODUCED" : "MISMATCH");

  // Whole program vs one module (the paper's modular-checking datum).
  GenOptions Whole;
  Whole.Modules = 20;
  Whole.FunctionsPerModule = 25;
  Program WholeP = syntheticProgram(Whole);
  GenOptions Module;
  Module.Modules = 1;
  Module.FunctionsPerModule = 25;
  Program ModuleP = syntheticProgram(Module);
  double WholeMs = checkMillis(WholeP);
  double ModuleMs = checkMillis(ModuleP);
  printf("whole program (%u lines): %.1f ms; one module (%u lines): %.1f "
         "ms; speedup %.1fx\n",
         totalLines(WholeP), WholeMs, totalLines(ModuleP), ModuleMs,
         WholeMs / (ModuleMs > 0 ? ModuleMs : 1));
  printf("(paper: 4 min whole program vs <10 s per 5k module => ~24x)\n\n");

  writeJson(Series, Ratio, Ratio < 3.0, totalLines(WholeP), WholeMs,
            totalLines(ModuleP), ModuleMs);
}

void BM_CheckSynthetic(benchmark::State &State) {
  GenOptions O;
  O.Modules = static_cast<unsigned>(State.range(0));
  O.FunctionsPerModule = 25;
  Program P = syntheticProgram(O);
  unsigned Lines = totalLines(P);
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
  State.counters["lines"] = Lines;
  State.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(Lines) * State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckSynthetic)->Arg(2)->Arg(8)->Arg(20)->Arg(60);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
