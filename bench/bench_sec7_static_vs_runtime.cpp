//===--- bench_sec7_static_vs_runtime.cpp - Section 7 experience ---------------===//
//
// Part of memlint. See DESIGN.md (experiment T3).
//
// Regenerates the experience-section comparison: which defect classes the
// static checker catches without running tests, which the run-time
// baseline catches when the buggy path executes, and the classes the 1996
// tool is documented to have missed (offset-pointer frees, static frees,
// global-reachable storage unfreed at exit) — plus the effect of the
// later "illegalfree" improvement the paper's footnote 8 mentions.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

namespace {

bool staticDetects(const Program &P, const CheckOptions &Options) {
  return Checker::checkFiles(P.Files, P.MainFiles, Options).anomalyCount() >
         0;
}

bool runtimeDetects(const Program &P) {
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  Interpreter I(*TU);
  return !I.run().Errors.empty();
}

void printReproduction() {
  printf("==============================================================="
         "===\n");
  printf(" Experiment T3: static checker vs run-time baseline by bug "
         "class\n");
  printf(" (paper Section 7 experience; runtime = dmalloc/Purify "
         "substitute)\n");
  printf("==============================================================="
         "===\n");
  printf("%-22s %-8s %-8s %-9s %-9s %s\n", "bug class", "static", "runtime",
         "paper-st", "paper-rt", "match");

  CheckOptions Default;
  bool AllMatch = true;
  for (BugKind Kind : allBugKinds()) {
    Program P = seededBug(Kind);
    bool Static = staticDetects(P, Default);
    bool Runtime = runtimeDetects(P);
    bool PaperStatic = staticallyDetectable(Kind);
    bool PaperRuntime = dynamicallyDetectable(Kind);
    bool Match = Static == PaperStatic && Runtime == PaperRuntime;
    AllMatch = AllMatch && Match;
    printf("%-22s %-8s %-8s %-9s %-9s %s\n", bugKindName(Kind),
           Static ? "yes" : "no", Runtime ? "yes" : "no",
           PaperStatic ? "yes" : "no", PaperRuntime ? "yes" : "no",
           Match ? "yes" : "NO");
  }
  printf("\nshape %s\n", AllMatch ? "REPRODUCED" : "MISMATCH");

  // Footnote 8: "LCLint has since been improved to detect freeing offset
  // pointers and static storage."
  CheckOptions Later;
  Later.Flags.set("illegalfree", true);
  printf("\nwith +illegalfree (the later improvement):\n");
  for (BugKind Kind : {BugKind::OffsetFree, BugKind::StaticFree})
    printf("  %-20s static: %s\n", bugKindName(Kind),
           staticDetects(seededBug(Kind), Later) ? "yes" : "no");

  // The database epilogue: run-time tools find the global-reachable
  // storage the static tool cannot.
  Program Db = employeeDb(DbVersion::Fixed);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(Db.Files, Db.MainFiles);
  Interpreter I(*TU);
  RunResult R = I.run();
  unsigned GlobalLeaks = 0;
  for (const RuntimeError &E : R.Errors)
    if (E.K == RuntimeError::Kind::LeakAtExit)
      ++GlobalLeaks;
  printf("\nstatically-clean database under the run-time baseline:\n");
  printf("  leaks reachable from statics at exit: %u (paper: \"several "
         "were detected,\n  relating to storage reachable from global and "
         "static variables\")\n\n",
         GlobalLeaks);
}

void BM_StaticCheckSeededBug(benchmark::State &State) {
  Program P = seededBug(allBugKinds()[State.range(0)]);
  for (auto _ : State) {
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
    benchmark::DoNotOptimize(R.Diagnostics.size());
  }
}
BENCHMARK(BM_StaticCheckSeededBug)->DenseRange(0, 7);

void BM_RuntimeExecuteSeededBug(benchmark::State &State) {
  Program P = seededBug(allBugKinds()[State.range(0)]);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  for (auto _ : State) {
    Interpreter I(*TU);
    RunResult R = I.run();
    benchmark::DoNotOptimize(R.Errors.size());
  }
}
BENCHMARK(BM_RuntimeExecuteSeededBug)->DenseRange(0, 7);

void BM_RuntimeExecuteDatabase(benchmark::State &State) {
  Program P = employeeDb(DbVersion::Fixed);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  for (auto _ : State) {
    Interpreter I(*TU);
    RunResult R = I.run();
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_RuntimeExecuteDatabase);

} // namespace

int main(int argc, char **argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
