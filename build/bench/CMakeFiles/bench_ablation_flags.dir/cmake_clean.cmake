file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flags.dir/bench_ablation_flags.cpp.o"
  "CMakeFiles/bench_ablation_flags.dir/bench_ablation_flags.cpp.o.d"
  "bench_ablation_flags"
  "bench_ablation_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
