# Empty compiler generated dependencies file for bench_ablation_flags.
# This may be replaced when dependencies are built.
