
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_listaddh.cpp" "bench/CMakeFiles/bench_fig5_listaddh.dir/bench_fig5_listaddh.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_listaddh.dir/bench_fig5_listaddh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/memlint_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/memlint_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/memlint_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/memlint_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/memlint_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/memlint_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/memlint_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/memlint_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/lcl/CMakeFiles/memlint_lcl.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/memlint_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/memlint_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
