file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_listaddh.dir/bench_fig5_listaddh.cpp.o"
  "CMakeFiles/bench_fig5_listaddh.dir/bench_fig5_listaddh.cpp.o.d"
  "bench_fig5_listaddh"
  "bench_fig5_listaddh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_listaddh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
