file(REMOVE_RECURSE
  "CMakeFiles/bench_figures_sample.dir/bench_figures_sample.cpp.o"
  "CMakeFiles/bench_figures_sample.dir/bench_figures_sample.cpp.o.d"
  "bench_figures_sample"
  "bench_figures_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figures_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
