# Empty compiler generated dependencies file for bench_figures_sample.
# This may be replaced when dependencies are built.
