file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_database.dir/bench_sec6_database.cpp.o"
  "CMakeFiles/bench_sec6_database.dir/bench_sec6_database.cpp.o.d"
  "bench_sec6_database"
  "bench_sec6_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
