# Empty dependencies file for bench_sec7_scaling.
# This may be replaced when dependencies are built.
