file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_static_vs_runtime.dir/bench_sec7_static_vs_runtime.cpp.o"
  "CMakeFiles/bench_sec7_static_vs_runtime.dir/bench_sec7_static_vs_runtime.cpp.o.d"
  "bench_sec7_static_vs_runtime"
  "bench_sec7_static_vs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_static_vs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
