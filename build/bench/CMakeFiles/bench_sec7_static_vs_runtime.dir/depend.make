# Empty dependencies file for bench_sec7_static_vs_runtime.
# This may be replaced when dependencies are built.
