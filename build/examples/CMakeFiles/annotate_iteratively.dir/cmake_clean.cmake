file(REMOVE_RECURSE
  "CMakeFiles/annotate_iteratively.dir/annotate_iteratively.cpp.o"
  "CMakeFiles/annotate_iteratively.dir/annotate_iteratively.cpp.o.d"
  "annotate_iteratively"
  "annotate_iteratively.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_iteratively.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
