# Empty dependencies file for annotate_iteratively.
# This may be replaced when dependencies are built.
