file(REMOVE_RECURSE
  "CMakeFiles/memlint_tool.dir/memlint_tool.cpp.o"
  "CMakeFiles/memlint_tool.dir/memlint_tool.cpp.o.d"
  "memlint"
  "memlint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
