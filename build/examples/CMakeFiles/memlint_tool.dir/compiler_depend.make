# Empty compiler generated dependencies file for memlint_tool.
# This may be replaced when dependencies are built.
