file(REMOVE_RECURSE
  "CMakeFiles/spec_driven.dir/spec_driven.cpp.o"
  "CMakeFiles/spec_driven.dir/spec_driven.cpp.o.d"
  "spec_driven"
  "spec_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
