file(REMOVE_RECURSE
  "CMakeFiles/static_vs_runtime.dir/static_vs_runtime.cpp.o"
  "CMakeFiles/static_vs_runtime.dir/static_vs_runtime.cpp.o.d"
  "static_vs_runtime"
  "static_vs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_vs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
