# Empty compiler generated dependencies file for static_vs_runtime.
# This may be replaced when dependencies are built.
