# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lex")
subdirs("pp")
subdirs("ast")
subdirs("lcl")
subdirs("parse")
subdirs("sema")
subdirs("cfg")
subdirs("analysis")
subdirs("checker")
subdirs("corpus")
subdirs("interp")
