
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Env.cpp" "src/analysis/CMakeFiles/memlint_analysis.dir/Env.cpp.o" "gcc" "src/analysis/CMakeFiles/memlint_analysis.dir/Env.cpp.o.d"
  "/root/repo/src/analysis/FunctionChecker.cpp" "src/analysis/CMakeFiles/memlint_analysis.dir/FunctionChecker.cpp.o" "gcc" "src/analysis/CMakeFiles/memlint_analysis.dir/FunctionChecker.cpp.o.d"
  "/root/repo/src/analysis/LibrarySpec.cpp" "src/analysis/CMakeFiles/memlint_analysis.dir/LibrarySpec.cpp.o" "gcc" "src/analysis/CMakeFiles/memlint_analysis.dir/LibrarySpec.cpp.o.d"
  "/root/repo/src/analysis/RefPath.cpp" "src/analysis/CMakeFiles/memlint_analysis.dir/RefPath.cpp.o" "gcc" "src/analysis/CMakeFiles/memlint_analysis.dir/RefPath.cpp.o.d"
  "/root/repo/src/analysis/StorageModel.cpp" "src/analysis/CMakeFiles/memlint_analysis.dir/StorageModel.cpp.o" "gcc" "src/analysis/CMakeFiles/memlint_analysis.dir/StorageModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/memlint_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
