file(REMOVE_RECURSE
  "CMakeFiles/memlint_analysis.dir/Env.cpp.o"
  "CMakeFiles/memlint_analysis.dir/Env.cpp.o.d"
  "CMakeFiles/memlint_analysis.dir/FunctionChecker.cpp.o"
  "CMakeFiles/memlint_analysis.dir/FunctionChecker.cpp.o.d"
  "CMakeFiles/memlint_analysis.dir/LibrarySpec.cpp.o"
  "CMakeFiles/memlint_analysis.dir/LibrarySpec.cpp.o.d"
  "CMakeFiles/memlint_analysis.dir/RefPath.cpp.o"
  "CMakeFiles/memlint_analysis.dir/RefPath.cpp.o.d"
  "CMakeFiles/memlint_analysis.dir/StorageModel.cpp.o"
  "CMakeFiles/memlint_analysis.dir/StorageModel.cpp.o.d"
  "libmemlint_analysis.a"
  "libmemlint_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
