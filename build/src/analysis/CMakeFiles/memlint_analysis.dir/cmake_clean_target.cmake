file(REMOVE_RECURSE
  "libmemlint_analysis.a"
)
