# Empty dependencies file for memlint_analysis.
# This may be replaced when dependencies are built.
