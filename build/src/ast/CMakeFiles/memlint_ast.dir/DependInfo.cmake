
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/AST.cpp" "src/ast/CMakeFiles/memlint_ast.dir/AST.cpp.o" "gcc" "src/ast/CMakeFiles/memlint_ast.dir/AST.cpp.o.d"
  "/root/repo/src/ast/ASTPrinter.cpp" "src/ast/CMakeFiles/memlint_ast.dir/ASTPrinter.cpp.o" "gcc" "src/ast/CMakeFiles/memlint_ast.dir/ASTPrinter.cpp.o.d"
  "/root/repo/src/ast/Annotations.cpp" "src/ast/CMakeFiles/memlint_ast.dir/Annotations.cpp.o" "gcc" "src/ast/CMakeFiles/memlint_ast.dir/Annotations.cpp.o.d"
  "/root/repo/src/ast/Type.cpp" "src/ast/CMakeFiles/memlint_ast.dir/Type.cpp.o" "gcc" "src/ast/CMakeFiles/memlint_ast.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/memlint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
