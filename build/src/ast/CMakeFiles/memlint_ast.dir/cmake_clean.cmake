file(REMOVE_RECURSE
  "CMakeFiles/memlint_ast.dir/AST.cpp.o"
  "CMakeFiles/memlint_ast.dir/AST.cpp.o.d"
  "CMakeFiles/memlint_ast.dir/ASTPrinter.cpp.o"
  "CMakeFiles/memlint_ast.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/memlint_ast.dir/Annotations.cpp.o"
  "CMakeFiles/memlint_ast.dir/Annotations.cpp.o.d"
  "CMakeFiles/memlint_ast.dir/Type.cpp.o"
  "CMakeFiles/memlint_ast.dir/Type.cpp.o.d"
  "libmemlint_ast.a"
  "libmemlint_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
