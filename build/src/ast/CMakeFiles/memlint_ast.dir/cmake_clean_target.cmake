file(REMOVE_RECURSE
  "libmemlint_ast.a"
)
