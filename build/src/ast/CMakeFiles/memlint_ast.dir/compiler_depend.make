# Empty compiler generated dependencies file for memlint_ast.
# This may be replaced when dependencies are built.
