file(REMOVE_RECURSE
  "CMakeFiles/memlint_cfg.dir/CFG.cpp.o"
  "CMakeFiles/memlint_cfg.dir/CFG.cpp.o.d"
  "libmemlint_cfg.a"
  "libmemlint_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
