file(REMOVE_RECURSE
  "libmemlint_cfg.a"
)
