# Empty dependencies file for memlint_cfg.
# This may be replaced when dependencies are built.
