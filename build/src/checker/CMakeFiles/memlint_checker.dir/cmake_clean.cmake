file(REMOVE_RECURSE
  "CMakeFiles/memlint_checker.dir/Checker.cpp.o"
  "CMakeFiles/memlint_checker.dir/Checker.cpp.o.d"
  "CMakeFiles/memlint_checker.dir/Frontend.cpp.o"
  "CMakeFiles/memlint_checker.dir/Frontend.cpp.o.d"
  "libmemlint_checker.a"
  "libmemlint_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
