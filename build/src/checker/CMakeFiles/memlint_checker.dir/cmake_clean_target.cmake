file(REMOVE_RECURSE
  "libmemlint_checker.a"
)
