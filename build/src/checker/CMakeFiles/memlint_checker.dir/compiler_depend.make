# Empty compiler generated dependencies file for memlint_checker.
# This may be replaced when dependencies are built.
