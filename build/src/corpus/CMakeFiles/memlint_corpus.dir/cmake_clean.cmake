file(REMOVE_RECURSE
  "CMakeFiles/memlint_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/memlint_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/memlint_corpus.dir/DbCorpus.cpp.o"
  "CMakeFiles/memlint_corpus.dir/DbCorpus.cpp.o.d"
  "libmemlint_corpus.a"
  "libmemlint_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
