file(REMOVE_RECURSE
  "libmemlint_corpus.a"
)
