# Empty dependencies file for memlint_corpus.
# This may be replaced when dependencies are built.
