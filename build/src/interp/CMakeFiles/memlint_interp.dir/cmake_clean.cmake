file(REMOVE_RECURSE
  "CMakeFiles/memlint_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/memlint_interp.dir/Interpreter.cpp.o.d"
  "libmemlint_interp.a"
  "libmemlint_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
