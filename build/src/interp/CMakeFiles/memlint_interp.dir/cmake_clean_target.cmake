file(REMOVE_RECURSE
  "libmemlint_interp.a"
)
