# Empty dependencies file for memlint_interp.
# This may be replaced when dependencies are built.
