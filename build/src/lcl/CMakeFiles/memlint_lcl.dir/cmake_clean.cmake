file(REMOVE_RECURSE
  "CMakeFiles/memlint_lcl.dir/LclReader.cpp.o"
  "CMakeFiles/memlint_lcl.dir/LclReader.cpp.o.d"
  "libmemlint_lcl.a"
  "libmemlint_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
