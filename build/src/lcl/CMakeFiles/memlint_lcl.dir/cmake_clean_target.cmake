file(REMOVE_RECURSE
  "libmemlint_lcl.a"
)
