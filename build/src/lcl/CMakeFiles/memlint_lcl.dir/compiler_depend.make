# Empty compiler generated dependencies file for memlint_lcl.
# This may be replaced when dependencies are built.
