file(REMOVE_RECURSE
  "CMakeFiles/memlint_lex.dir/Lexer.cpp.o"
  "CMakeFiles/memlint_lex.dir/Lexer.cpp.o.d"
  "libmemlint_lex.a"
  "libmemlint_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
