file(REMOVE_RECURSE
  "libmemlint_lex.a"
)
