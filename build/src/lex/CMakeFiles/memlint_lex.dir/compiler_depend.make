# Empty compiler generated dependencies file for memlint_lex.
# This may be replaced when dependencies are built.
