file(REMOVE_RECURSE
  "CMakeFiles/memlint_parse.dir/Parser.cpp.o"
  "CMakeFiles/memlint_parse.dir/Parser.cpp.o.d"
  "libmemlint_parse.a"
  "libmemlint_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
