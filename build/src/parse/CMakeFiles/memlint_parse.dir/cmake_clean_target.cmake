file(REMOVE_RECURSE
  "libmemlint_parse.a"
)
