# Empty dependencies file for memlint_parse.
# This may be replaced when dependencies are built.
