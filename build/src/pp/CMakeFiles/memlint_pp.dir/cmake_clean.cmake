file(REMOVE_RECURSE
  "CMakeFiles/memlint_pp.dir/Preprocessor.cpp.o"
  "CMakeFiles/memlint_pp.dir/Preprocessor.cpp.o.d"
  "libmemlint_pp.a"
  "libmemlint_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
