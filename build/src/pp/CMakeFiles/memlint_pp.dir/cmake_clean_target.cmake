file(REMOVE_RECURSE
  "libmemlint_pp.a"
)
