# Empty dependencies file for memlint_pp.
# This may be replaced when dependencies are built.
