file(REMOVE_RECURSE
  "CMakeFiles/memlint_sema.dir/Sema.cpp.o"
  "CMakeFiles/memlint_sema.dir/Sema.cpp.o.d"
  "libmemlint_sema.a"
  "libmemlint_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
