file(REMOVE_RECURSE
  "libmemlint_sema.a"
)
