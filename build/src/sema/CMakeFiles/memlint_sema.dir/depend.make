# Empty dependencies file for memlint_sema.
# This may be replaced when dependencies are built.
