file(REMOVE_RECURSE
  "CMakeFiles/memlint_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/memlint_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/memlint_support.dir/Flags.cpp.o"
  "CMakeFiles/memlint_support.dir/Flags.cpp.o.d"
  "CMakeFiles/memlint_support.dir/VFS.cpp.o"
  "CMakeFiles/memlint_support.dir/VFS.cpp.o.d"
  "libmemlint_support.a"
  "libmemlint_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlint_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
