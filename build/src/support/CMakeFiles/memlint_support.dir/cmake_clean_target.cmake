file(REMOVE_RECURSE
  "libmemlint_support.a"
)
