# Empty dependencies file for memlint_support.
# This may be replaced when dependencies are built.
