
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisAliasTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisAliasTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisAliasTest.cpp.o.d"
  "/root/repo/tests/AnalysisAllocTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisAllocTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisAllocTest.cpp.o.d"
  "/root/repo/tests/AnalysisDefTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisDefTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisDefTest.cpp.o.d"
  "/root/repo/tests/AnalysisEdgeTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisEdgeTest.cpp.o.d"
  "/root/repo/tests/AnalysisInteractionTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisInteractionTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisInteractionTest.cpp.o.d"
  "/root/repo/tests/AnalysisNullTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnalysisNullTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnalysisNullTest.cpp.o.d"
  "/root/repo/tests/AnnotationsTest.cpp" "tests/CMakeFiles/memlint_tests.dir/AnnotationsTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/AnnotationsTest.cpp.o.d"
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/memlint_tests.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/CheckerFiguresTest.cpp" "tests/CMakeFiles/memlint_tests.dir/CheckerFiguresTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/CheckerFiguresTest.cpp.o.d"
  "/root/repo/tests/CorpusAndFlagsTest.cpp" "tests/CMakeFiles/memlint_tests.dir/CorpusAndFlagsTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/CorpusAndFlagsTest.cpp.o.d"
  "/root/repo/tests/EnvTest.cpp" "tests/CMakeFiles/memlint_tests.dir/EnvTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/EnvTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/memlint_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/LclReaderTest.cpp" "tests/CMakeFiles/memlint_tests.dir/LclReaderTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/LclReaderTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/memlint_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/MessageGoldenTest.cpp" "tests/CMakeFiles/memlint_tests.dir/MessageGoldenTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/MessageGoldenTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/memlint_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PreprocessorTest.cpp" "tests/CMakeFiles/memlint_tests.dir/PreprocessorTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/PreprocessorTest.cpp.o.d"
  "/root/repo/tests/RefCountTest.cpp" "tests/CMakeFiles/memlint_tests.dir/RefCountTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/RefCountTest.cpp.o.d"
  "/root/repo/tests/RobustnessTest.cpp" "tests/CMakeFiles/memlint_tests.dir/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/RobustnessTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/memlint_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/memlint_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/memlint_tests.dir/SupportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/memlint_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/memlint_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/memlint_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/memlint_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/lcl/CMakeFiles/memlint_lcl.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/memlint_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/memlint_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/memlint_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/memlint_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/memlint_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/memlint_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlint_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
