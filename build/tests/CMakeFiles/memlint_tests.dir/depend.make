# Empty dependencies file for memlint_tests.
# This may be replaced when dependencies are built.
