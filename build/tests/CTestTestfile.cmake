# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/memlint_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_annotate_iteratively "/root/repo/build/examples/annotate_iteratively")
set_tests_properties(example_annotate_iteratively PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_static_vs_runtime "/root/repo/build/examples/static_vs_runtime")
set_tests_properties(example_static_vs_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_spec_driven "/root/repo/build/examples/spec_driven")
set_tests_properties(example_spec_driven PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_lists_flags "/root/repo/build/examples/memlint" "--flags")
set_tests_properties(tool_lists_flags PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
