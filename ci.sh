#!/bin/sh
# CI entry point: build and test in the plain release configuration, then
# again under AddressSanitizer + UndefinedBehaviorSanitizer. The sanitizer
# pass is what backs the robustness guarantees: the hostile-input suite
# (RobustnessTest, LimitsTest) must run with zero sanitizer reports.
# Every ctest invocation carries a per-test timeout (CMakePresets.json,
# execution.timeout) so a hang fails CI instead of wedging it.
set -eu

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

echo "== release build =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --preset release

echo "== batch driver smoke =="
# End-to-end through the installed CLI: a small corpus with one leaking
# file and one crashing file, checked at -j4 with a deadline and a journal;
# then the journal is torn mid-line (as a kill would leave it) and the run
# is resumed. Diagnostics must match the uninterrupted run byte for byte,
# and the exit status must count only real findings.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
MEMLINT=$PWD/build/examples/memlint
i=0
while [ "$i" -lt 10 ]; do
  printf 'int f%s(int x) { return x + %s; }\n' "$i" "$i" > "$SMOKE/f$i.c"
  i=$((i + 1))
done
printf '#include <stdlib.h>\nvoid leak(void) { char *p = (char *)malloc(8); }\n' \
  > "$SMOKE/leak.c"
printf '#pragma memlint crash\nint g(void) { return 0; }\n' > "$SMOKE/bad.c"
CORPUS="f0.c f1.c f2.c f3.c f4.c leak.c f5.c bad.c f6.c f7.c f8.c f9.c"

st=0
(cd "$SMOKE" && "$MEMLINT" -j4 -file-deadline-ms=5000 --journal run.jsonl \
  $CORPUS > full.out 2> /dev/null) || st=$?
[ "$st" -eq 1 ] || { echo "batch smoke: expected exit 1, got $st"; exit 1; }
grep -q 'Fresh storage' "$SMOKE/full.out" || \
  { echo "batch smoke: leak diagnostic missing"; exit 1; }
grep -q 'bad.c: crash (internal-error) after 2 attempt(s)' "$SMOKE/full.out" || \
  { echo "batch smoke: crash was not contained and retried"; exit 1; }

# Sequential run must be byte-identical to the -j4 run.
st=0
(cd "$SMOKE" && "$MEMLINT" -j1 $CORPUS > seq.out 2> /dev/null) || st=$?
cmp -s "$SMOKE/full.out" "$SMOKE/seq.out" || \
  { echo "batch smoke: -j4 output differs from -j1"; exit 1; }

# Tear the journal's last line and resume: completed files are replayed,
# not re-checked, and the diagnostics still match (the summary trailer
# legitimately differs — it reports the resumed count).
size=$(wc -c < "$SMOKE/run.jsonl")
dd if="$SMOKE/run.jsonl" of="$SMOKE/torn.jsonl" bs=1 count=$((size - 20)) \
  2> /dev/null
mv "$SMOKE/torn.jsonl" "$SMOKE/run.jsonl"
st=0
(cd "$SMOKE" && "$MEMLINT" -j4 -file-deadline-ms=5000 --resume run.jsonl \
  $CORPUS > resumed.out 2> /dev/null) || st=$?
[ "$st" -eq 1 ] || { echo "batch smoke: resume expected exit 1, got $st"; exit 1; }
grep -v '^-- batch:' "$SMOKE/full.out" > "$SMOKE/full.diag"
grep -v '^-- batch:' "$SMOKE/resumed.out" > "$SMOKE/resumed.diag"
cmp -s "$SMOKE/full.diag" "$SMOKE/resumed.diag" || \
  { echo "batch smoke: resumed diagnostics differ from the full run"; exit 1; }
if grep '^-- batch:' "$SMOKE/resumed.out" | grep -q '(0 resumed'; then
  echo "batch smoke: resume did not skip completed files"; exit 1
fi
echo "batch smoke ok"

echo "== observability smoke =="
# Structured findings output through the CLI: the SARIF document must have
# the schema/version/tool spine and balanced braces, JSONL must be one
# object per line, and --metrics-out must produce a metrics JSON whose
# counters are identical across -j1 and -j4 (timers legitimately differ).
printf '#include <stdlib.h>\nvoid leak(void) { char *p = (char *)malloc(8); }\n' \
  > "$SMOKE/obs.c"
st=0
(cd "$SMOKE" && "$MEMLINT" -format=sarif obs.c > obs.sarif 2> /dev/null) || st=$?
[ "$st" -eq 1 ] || { echo "obs smoke: sarif run expected exit 1, got $st"; exit 1; }
for needle in '"$schema"' '"version": "2.1.0"' '"name": "memlint"' \
  '"ruleId": "mustfree"' '"level": "warning"' '"uri": "obs.c"'; do
  grep -q "$needle" "$SMOKE/obs.sarif" || \
    { echo "obs smoke: SARIF lacks $needle"; exit 1; }
done
opens=$(tr -cd '{' < "$SMOKE/obs.sarif" | wc -c)
closes=$(tr -cd '}' < "$SMOKE/obs.sarif" | wc -c)
[ "$opens" -eq "$closes" ] || \
  { echo "obs smoke: SARIF braces unbalanced ($opens vs $closes)"; exit 1; }

st=0
(cd "$SMOKE" && "$MEMLINT" -format=jsonl obs.c > obs.jsonl 2> /dev/null) || st=$?
[ "$st" -eq 1 ] || { echo "obs smoke: jsonl run expected exit 1, got $st"; exit 1; }
bad=$(grep -cv '^{.*}$' "$SMOKE/obs.jsonl" || true)
[ "$bad" -eq 0 ] || { echo "obs smoke: JSONL has non-object lines"; exit 1; }
grep -q '"check":"mustfree"' "$SMOKE/obs.jsonl" || \
  { echo "obs smoke: JSONL lacks the mustfree finding"; exit 1; }

(cd "$SMOKE" && "$MEMLINT" -j1 --metrics-out=m1.json $CORPUS \
  > /dev/null 2>&1) || true
(cd "$SMOKE" && "$MEMLINT" -j4 --metrics-out=m4.json $CORPUS \
  > /dev/null 2>&1) || true
for f in m1.json m4.json; do
  [ -s "$SMOKE/$f" ] || { echo "obs smoke: $f missing or empty"; exit 1; }
done
sed -n '/"counters"/,/}/p' "$SMOKE/m1.json" > "$SMOKE/m1.counters"
sed -n '/"counters"/,/}/p' "$SMOKE/m4.json" > "$SMOKE/m4.counters"
cmp -s "$SMOKE/m1.counters" "$SMOKE/m4.counters" || \
  { echo "obs smoke: metrics counters differ between -j1 and -j4"; exit 1; }
grep -q '"batch.files": 12' "$SMOKE/m1.counters" || \
  { echo "obs smoke: metrics lack batch.files count"; exit 1; }
# The shared front end must engage on a multi-file batch: every worker
# after the warmup replays the memoized prelude expansion at least.
if ! grep -q '"pp.include_cache.hit": [1-9]' "$SMOKE/m1.counters"; then
  echo "obs smoke: shared front end never hit (pp.include_cache.hit)"; exit 1
fi
# Latency histograms ride in the metrics summary with exact bucket counts;
# the distribution keys and observation counts must be present.
for needle in '"hist.batch.file"' '"hist.check.function"' '"count":' \
  '"p50_ms":' '"buckets":'; do
  grep -q "$needle" "$SMOKE/m1.json" || \
    { echo "obs smoke: metrics lack histogram field $needle"; exit 1; }
done

# Trace timeline: --trace-out must emit Chrome trace-event JSON with the
# pid/tid/ts/ph spine and the batch/frontend/check categories, and the
# (cat, name, args) span set must be identical across -j1 and -j4 once
# the wall-clock/scheduling fields (tid, ts, dur) are normalized away.
(cd "$SMOKE" && "$MEMLINT" -j1 --trace-out=t1.json $CORPUS \
  > /dev/null 2>&1) || true
(cd "$SMOKE" && "$MEMLINT" -j4 --trace-out=t4.json $CORPUS \
  > /dev/null 2>&1) || true
for f in t1.json t4.json; do
  [ -s "$SMOKE/$f" ] || { echo "obs smoke: $f missing or empty"; exit 1; }
done
for needle in '"traceEvents"' '"pid": 1' '"tid": ' '"ts": ' '"ph": "X"' \
  '"cat": "batch"' '"cat": "frontend"' '"cat": "check"' \
  '"name": "file"' '"outcome"'; do
  grep -q "$needle" "$SMOKE/t1.json" || \
    { echo "obs smoke: trace lacks $needle"; exit 1; }
done
opens=$(tr -cd '{' < "$SMOKE/t1.json" | wc -c)
closes=$(tr -cd '}' < "$SMOKE/t1.json" | wc -c)
[ "$opens" -eq "$closes" ] || \
  { echo "obs smoke: trace braces unbalanced ($opens vs $closes)"; exit 1; }
for f in t1 t4; do
  sed -e 's/"tid": [0-9]*/"tid": T/' -e 's/"ts": [0-9]*/"ts": T/' \
      -e 's/"dur": [0-9]*/"dur": D/' "$SMOKE/$f.json" | \
    grep '"ph"' | sort > "$SMOKE/$f.norm"
done
cmp -s "$SMOKE/t1.norm" "$SMOKE/t4.norm" || \
  { echo "obs smoke: trace span set differs between -j1 and -j4"; exit 1; }
spans=$(grep -c '"name": "file"' "$SMOKE/t1.json" || true)
[ "$spans" -eq 12 ] || \
  { echo "obs smoke: expected 12 per-file spans, got $spans"; exit 1; }
echo "observability smoke ok"

echo "== differential fuzz smoke =="
# A fixed-seed 500-program campaign at -j4 with fault injection armed on
# every fourth program. Gates: the campaign must exit 0 (no detectability
# misclassification, no crash-freedom violation, no containment escape),
# the ratchet JSON must be well-formed with both safety rates at exactly
# 1.0, and a program regenerated from its seed alone must be byte-identical
# run to run (the --fuzz-repro guarantee).
st=0
(cd "$SMOKE" && "$MEMLINT" --fuzz -fuzz-count=500 -fuzz-seed=1 -j4 \
  -fuzz-out=fuzz.json > fuzz.out 2> /dev/null) || st=$?
[ "$st" -eq 0 ] || { echo "fuzz smoke: campaign expected exit 0, got $st"; exit 1; }
for needle in '"memlint_bench": "differential"' '"campaign_seed": 1' \
  '"programs": 500' '"crash_freedom": 1.0' '"containment": 1.0' \
  '"misclassified": 0' '"crash_freedom_violations": 0' \
  '"containment_violations": 0' '"per_kind"' '"precision"' \
  '"cache_checked": 500' '"warm_cold_divergence": 0'; do
  grep -q "$needle" "$SMOKE/fuzz.json" || \
    { echo "fuzz smoke: ratchet JSON lacks $needle"; exit 1; }
done
# The rotation must actually exercise the cache fault kinds (CacheCorrupt,
# CacheTornWrite, StaleEntry); a zero count means the warm-vs-cold gate
# above was vacuous.
if grep -q '"cache_injected": 0,' "$SMOKE/fuzz.json"; then
  echo "fuzz smoke: no cache faults were injected"; exit 1
fi
grep -q '^}$' "$SMOKE/fuzz.json" || \
  { echo "fuzz smoke: ratchet JSON is truncated (no closing brace)"; exit 1; }
opens=$(tr -cd '{' < "$SMOKE/fuzz.json" | wc -c)
closes=$(tr -cd '}' < "$SMOKE/fuzz.json" | wc -c)
[ "$opens" -eq "$closes" ] || \
  { echo "fuzz smoke: ratchet JSON braces unbalanced ($opens vs $closes)"; exit 1; }

# Seed-addressable repro: two regenerations of the same program must agree
# byte for byte (source, static verdict, and oracle verdict).
(cd "$SMOKE" && "$MEMLINT" --fuzz-repro=0x1172fcfadbb5e516 > repro1.out \
  2> /dev/null) || { echo "fuzz smoke: repro run failed"; exit 1; }
(cd "$SMOKE" && "$MEMLINT" --fuzz-repro=0x1172fcfadbb5e516 > repro2.out \
  2> /dev/null) || { echo "fuzz smoke: repro rerun failed"; exit 1; }
[ -s "$SMOKE/repro1.out" ] || { echo "fuzz smoke: repro output empty"; exit 1; }
cmp -s "$SMOKE/repro1.out" "$SMOKE/repro2.out" || \
  { echo "fuzz smoke: repro is not byte-identical across runs"; exit 1; }
echo "differential fuzz smoke ok"

echo "== check service smoke =="
# The persistent service end to end: generate a Section 7 corpus, start a
# --serve daemon, check every module cold, re-check warm (all cache hits,
# byte-identical), kill -9 the daemon, tear the persisted cache's tail the
# way an interrupted append would, restart on the same cache file, and
# verify recovery: the torn entry is dropped and counted, intact entries
# still hit, and every answer stays byte-identical to the cold run.
"$MEMLINT" --gen-sec7="$SMOKE/svc" -gen-modules=8 > /dev/null 2>&1
printf '#include <stdlib.h>\nvoid leak(void) { char *p = (char *)malloc(8); }\n' \
  > "$SMOKE/svc/leak.c"
echo leak.c >> "$SMOKE/svc/MANIFEST"
SOCK=$SMOKE/ml.sock

svc_start() {
  # --metrics-out turns on collection, so stats replies expose the latency
  # histograms and gauges asserted below.
  (cd "$SMOKE/svc" && exec "$MEMLINT" --serve --socket="$SOCK" \
    --cache="$SMOKE/cache.jsonl" \
    --metrics-out="$SMOKE/svc_metrics.json" 2> "$1") &
  SRV=$!
  n=0
  while [ ! -S "$SOCK" ] && [ "$n" -lt 100 ]; do sleep 0.1; n=$((n + 1)); done
  [ -S "$SOCK" ] || { echo "service smoke: daemon never bound $SOCK"; exit 1; }
}
svc_check_all() { # $1 = stdout capture, $2 = stderr capture
  : > "$1"
  : > "$2"
  while read -r f; do
    "$MEMLINT" --request --socket="$SOCK" check "$f" >> "$1" 2>> "$2" || true
  done < "$SMOKE/svc/MANIFEST"
}

svc_start "$SMOKE/serve1.log"
svc_check_all "$SMOKE/svc_cold.out" "$SMOKE/svc_cold.log"
grep -q 'Fresh storage' "$SMOKE/svc_cold.out" || \
  { echo "service smoke: leak diagnostic missing from cold pass"; exit 1; }
if grep -q 'cache hit' "$SMOKE/svc_cold.log"; then
  echo "service smoke: cold pass reported cache hits"; exit 1
fi

svc_check_all "$SMOKE/svc_warm.out" "$SMOKE/svc_warm.log"
cmp -s "$SMOKE/svc_cold.out" "$SMOKE/svc_warm.out" || \
  { echo "service smoke: warm answers differ from cold"; exit 1; }
hits=$(grep -c 'cache hit' "$SMOKE/svc_warm.log" || true)
[ "$hits" -eq 9 ] || \
  { echo "service smoke: expected 9 warm hits, got $hits"; exit 1; }

# Crash containment: kill -9 skips the drain and the compacting flush; the
# torn append is what a crash mid-write leaves behind.
kill -9 "$SRV" 2> /dev/null || true
wait "$SRV" 2> /dev/null || true
rm -f "$SOCK"
printf '{"file":"torn.c","content":"12' >> "$SMOKE/cache.jsonl"

svc_start "$SMOKE/serve2.log"
svc_check_all "$SMOKE/svc_warm2.out" "$SMOKE/svc_warm2.log"
cmp -s "$SMOKE/svc_cold.out" "$SMOKE/svc_warm2.out" || \
  { echo "service smoke: post-crash answers differ from cold"; exit 1; }
hits=$(grep -c 'cache hit' "$SMOKE/svc_warm2.log" || true)
[ "$hits" -eq 9 ] || \
  { echo "service smoke: expected 9 hits after restart, got $hits"; exit 1; }
"$MEMLINT" --request --socket="$SOCK" stats > "$SMOKE/svc_stats.out" \
  2> /dev/null
grep -q '"cache.corrupt_recovered":1' "$SMOKE/svc_stats.out" || \
  { echo "service smoke: torn tail was not counted as recovered"; exit 1; }
# After the warm pass (9 queued checks through the socket) the stats
# exposition must carry the full observability surface: queue-depth and
# uptime/RSS gauges plus the queue-wait and check-latency distributions
# with derived quantiles.
for needle in '"service.queue_depth":' '"service.uptime_ms":' \
  '"mem.peak_rss_kb":' '"hist.service.queue_wait":' \
  '"hist.service.check":' '"p50_ms":' '"p99_ms":'; do
  grep -q "$needle" "$SMOKE/svc_stats.out" || \
    { echo "service smoke: stats lack $needle"; exit 1; }
done

"$MEMLINT" --request --socket="$SOCK" shutdown > /dev/null 2>&1 || true
n=0
while kill -0 "$SRV" 2> /dev/null && [ "$n" -lt 100 ]; do
  sleep 0.1; n=$((n + 1))
done
if kill -0 "$SRV" 2> /dev/null; then
  echo "service smoke: daemon did not drain after shutdown"
  kill -9 "$SRV"; exit 1
fi
if grep -q 'torn.c' "$SMOKE/cache.jsonl"; then
  echo "service smoke: torn tail survived the shutdown compaction"; exit 1
fi

# Resuming a journal under a different checking policy must be rejected
# with a precise message, never silently mis-replayed.
(cd "$SMOKE/svc" && "$MEMLINT" --journal j.jsonl mod0.c mod1.c \
  > /dev/null 2>&1) || true
st=0
(cd "$SMOKE/svc" && "$MEMLINT" --resume j.jsonl -annot mod0.c mod1.c \
  > /dev/null 2> policy.err) || st=$?
[ "$st" -eq 126 ] || \
  { echo "service smoke: policy-mismatch resume expected 126, got $st"; exit 1; }
grep -q 'rejected: journal' "$SMOKE/svc/policy.err" || \
  { echo "service smoke: rejection message missing"; exit 1; }
echo "check service smoke ok"

echo "== inference smoke =="
# The -infer acceptance end to end: strip every annotation from a Section 7
# corpus's module sources, infer them back, and re-check each module against
# the inferred interface. The hand-annotated corpus checks clean, so the
# ">= 95% finding parity with zero new false positives" gate reduces to the
# inferred runs being clean too; the combined header must be byte-identical
# at -j1 and -j4; and an unwritable --infer-out must be rejected with a
# precise per-flag message before any checking starts.
"$MEMLINT" --gen-sec7="$SMOKE/inf" -gen-modules=6 -gen-unannotated \
  > /dev/null 2>&1
st=0
(cd "$SMOKE/inf" && "$MEMLINT" mod0.c > /dev/null 2>&1) || st=$?
[ "$st" -gt 0 ] || \
  { echo "inference smoke: stripped module unexpectedly clean"; exit 1; }
(cd "$SMOKE/inf" && "$MEMLINT" -j1 -infer --infer-out=inferred1.h \
  $(cat MANIFEST) > /dev/null 2>&1) || \
  { echo "inference smoke: -j1 infer run reported findings"; exit 1; }
(cd "$SMOKE/inf" && "$MEMLINT" -j4 -infer --infer-out=inferred4.h \
  $(cat MANIFEST) > /dev/null 2>&1) || \
  { echo "inference smoke: -j4 infer run reported findings"; exit 1; }
cmp -s "$SMOKE/inf/inferred1.h" "$SMOKE/inf/inferred4.h" || \
  { echo "inference smoke: -j1 vs -j4 headers differ"; exit 1; }
[ -s "$SMOKE/inf/inferred1.h" ] || \
  { echo "inference smoke: inferred header is empty"; exit 1; }
while read -r f; do
  (cd "$SMOKE/inf" && "$MEMLINT" "$f" inferred1.h > /dev/null 2>&1) || \
    { echo "inference smoke: $f not clean under inferred header"; exit 1; }
done < "$SMOKE/inf/MANIFEST"
st=0
(cd "$SMOKE/inf" && "$MEMLINT" -infer --infer-out=/nonexistent-dir/x.h \
  mod0.c > /dev/null 2> preflight.err) || st=$?
[ "$st" -eq 126 ] || \
  { echo "inference smoke: bad --infer-out expected 126, got $st"; exit 1; }
grep -q -- "--infer-out" "$SMOKE/inf/preflight.err" || \
  { echo "inference smoke: preflight error does not name the flag"; exit 1; }
echo "inference smoke ok"

rm -rf "$SMOKE"
trap - EXIT

echo "== bench smoke (release-lto) =="
# Build the two trajectory benchmarks under the LTO preset and run them
# briefly: each must produce a well-formed BENCH_*.json (the machine-readable
# perf record checked into the repo). Malformed or missing output fails CI.
cmake --preset release-lto
cmake --build --preset release-lto -j "$JOBS" \
  --target bench_env_scaling bench_sec7_scaling bench_observability_overhead \
  bench_incremental bench_frontend_reuse bench_infer

BENCHDIR=$PWD/build-lto/bench
# Benchmarks write BENCH_*.json into the working directory; run them there.
(cd "$BENCHDIR" && ./bench_env_scaling --benchmark_list_tests > /dev/null)
(cd "$BENCHDIR" && ./bench_sec7_scaling --benchmark_list_tests > /dev/null)
(cd "$BENCHDIR" && ./bench_observability_overhead --benchmark_list_tests \
  > /dev/null)

check_json() {
  file=$1; shift
  [ -s "$file" ] || { echo "bench smoke: $file missing or empty"; exit 1; }
  # Shape check without a JSON tool: the closing brace and every
  # required key must be present.
  grep -q '^}$' "$file" || \
    { echo "bench smoke: $file is truncated (no closing brace)"; exit 1; }
  for key in "$@"; do
    grep -q "\"$key\"" "$file" || \
      { echo "bench smoke: $file lacks required key '$key'"; exit 1; }
  done
}
check_json "$BENCHDIR/BENCH_env_scaling.json" \
  bench workloads speedup split_speedup_min acceptance_pass
check_json "$BENCHDIR/BENCH_sec7_scaling.json" \
  bench series linearity_ratio modular_speedup
# Per-run include memoization keeps the big-corpus point under 4.5 ms/kLOC
# (it was 4.55 before the front-end cache).
awk '/"modules": 400/ {
       if (match($0, /"ms_per_kloc": [0-9.]+/)) {
         v = substr($0, RSTART + 15, RLENGTH - 15) + 0
         if (v >= 4.5) exit 1
         found = 1
       }
     }
     END { exit found ? 0 : 1 }' "$BENCHDIR/BENCH_sec7_scaling.json" || \
  { echo "bench smoke: 400-module point missing or >= 4.5 ms/kLOC"; exit 1; }
grep -q '"acceptance_pass": true' "$BENCHDIR/BENCH_env_scaling.json" || \
  { echo "bench smoke: env split-throughput acceptance failed"; exit 1; }
check_json "$BENCHDIR/BENCH_observability_overhead.json" \
  bench disabled enabled trace trace_spans overhead_pct acceptance_pass
grep -q '"acceptance_pass": true' \
  "$BENCHDIR/BENCH_observability_overhead.json" || \
  { echo "bench smoke: metrics disabled-path overhead exceeds 2%"; exit 1; }

# The shared front-end gate: on a shared-header corpus the memoized
# #include expansion must cut front-end (lex+pp) time by at least 2x with
# byte-identical diagnostics and a cache that actually hits ("reproduced"
# covers all three).
(cd "$BENCHDIR" && ./bench_frontend_reuse --benchmark_list_tests > /dev/null)
check_json "$BENCHDIR/BENCH_frontend_reuse.json" \
  bench frontend_ms_off frontend_ms_on speedup include_cache_hits \
  byte_identical reproduced
grep -q '"byte_identical": true' "$BENCHDIR/BENCH_frontend_reuse.json" || \
  { echo "bench smoke: shared front end changed diagnostics"; exit 1; }
grep -q '"reproduced": true' "$BENCHDIR/BENCH_frontend_reuse.json" || \
  { echo "bench smoke: front-end reuse speedup below 2x"; exit 1; }

# The incremental-reuse gate: a warm service re-check of the 400-module
# Section 7 corpus after a 1-module edit must beat the cold run by > 50x
# with byte-identical replay and exactly one recompute (the bench exits
# nonzero on its own when the acceptance fails).
(cd "$BENCHDIR" && ./bench_incremental > /dev/null)
check_json "$BENCHDIR/BENCH_incremental.json" \
  bench cold_ms warm_ms speedup cache_hits recomputed byte_identical \
  acceptance_min_speedup acceptance_pass
grep -q '"acceptance_pass": true' "$BENCHDIR/BENCH_incremental.json" || \
  { echo "bench smoke: incremental warm-reuse acceptance failed"; exit 1; }

# The annotation-inference gate: inferred interfaces on the stripped
# Section 7 corpus must reproduce >= 95% of the hand-annotated findings
# with zero new false positives and a -j1/-j8-identical header (the bench
# exits nonzero on its own when the acceptance fails).
(cd "$BENCHDIR" && ./bench_infer > /dev/null)
check_json "$BENCHDIR/BENCH_infer.json" \
  bench baseline_findings bare_findings inferred_findings \
  new_false_positives parity_pct byte_identical acceptance_min_parity_pct \
  acceptance_pass
grep -q '"acceptance_pass": true' "$BENCHDIR/BENCH_infer.json" || \
  { echo "bench smoke: inference parity acceptance failed"; exit 1; }
echo "bench smoke ok"

echo "== asan+ubsan build =="
cmake --preset asan
cmake --build --preset asan -j "$JOBS"
ctest --preset asan

echo "== ci passed =="
