#!/bin/sh
# CI entry point: build and test in the plain release configuration, then
# again under AddressSanitizer + UndefinedBehaviorSanitizer. The sanitizer
# pass is what backs the robustness guarantees: the hostile-input suite
# (RobustnessTest, LimitsTest) must run with zero sanitizer reports.
set -eu

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

echo "== release build =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --preset release

echo "== asan+ubsan build =="
cmake --preset asan
cmake --build --preset asan -j "$JOBS"
ctest --preset asan

echo "== ci passed =="
