//===--- annotate_iteratively.cpp - The Section 6 workflow -------------------===//
//
// Part of memlint. See DESIGN.md.
//
// Walks the paper's Section 6 process on the reconstructed employee
// database: start with no annotations, run the checker, add the
// annotations the anomalies call for, repeat. "Adding annotations is an
// iterative process. With each iteration, LCLint detects some anomalies,
// annotations are added or discovered bugs are fixed, and LCLint is run
// again to propagate the new annotations up the call chain."
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

static void stage(const char *Title, const char *Commentary, DbVersion V) {
  Program P = employeeDb(V);
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  printf("== %s ==\n", Title);
  printf("   %s\n", Commentary);
  printf("   %u lines, %u annotations, %u anomalies (%u suppressed)\n",
         totalLines(P), countAnnotations(P), R.anomalyCount(),
         R.SuppressedCount);
  unsigned Shown = 0;
  for (const Diagnostic &D : R.Diagnostics) {
    printf("   | %s\n", D.str().c_str());
    if (++Shown == 8 && R.Diagnostics.size() > 9) {
      printf("   | ... and %zu more\n", R.Diagnostics.size() - Shown);
      break;
    }
  }
  printf("\n");
}

int main() {
  printf("The Section 6 annotation process on the employee database\n");
  printf("=========================================================\n\n");

  stage("iteration 0: no annotations",
        "the starting program; only implicit interpretations apply",
        DbVersion::Unannotated);

  stage("iteration 1: the null-pointer pass",
        "a null annotation on erc's vals field plus defensive assertions "
        "resolve the null anomalies; allocation anomalies remain",
        DbVersion::NullAdded);

  stage("iteration 2: the allocation pass",
        "13 only annotations and one out annotation propagate through the "
        "call chain; what remains are six real leaks in the test driver",
        DbVersion::OnlyAdded);

  stage("iteration 3: the bugs fixed",
        "six free calls added in drive.c; the program now checks cleanly "
        "(a few spurious messages are suppressed with control comments, as "
        "the paper describes doing 75 times on LCLint itself)",
        DbVersion::Fixed);

  // The paper's summary: "A total of 15 annotations were needed ... one
  // null annotation on a structure field, one out annotation on a
  // parameter ..., and 13 only annotations."
  Program Bare = employeeDb(DbVersion::Unannotated);
  Program Fixed = employeeDb(DbVersion::Fixed);
  printf("annotations added overall: %u (paper: 15 + aliasing uniques)\n",
         countAnnotations(Fixed) - countAnnotations(Bare));
  return 0;
}
