//===--- memlint_tool.cpp - Command-line checker -----------------------------===//
//
// Part of memlint. See DESIGN.md.
//
// An LCLint-style command-line driver:
//
//   memlint [+flag|-flag]... file.c [file2.c ...]
//   memlint --cfg file.c        print each function's control-flow graph
//                               (the paper's Figure 6 view)
//   memlint --run file.c        execute with the run-time checking baseline
//   memlint --flags             list the known flags
//
// Batch mode (enabled by any of the options below) checks every file as an
// independent run on a worker pool, with per-file deadlines, one retry
// with halved limits for files that time out or crash, and a resumable
// run journal:
//
//   memlint -j8 file1.c file2.c ...             8 worker threads
//   memlint -j4 -file-deadline-ms=2000 ...      2s wall clock per file
//   memlint -j4 --journal run.jsonl ...         record outcomes
//   memlint -j4 --resume run.jsonl ...          skip files already done
//
// Observability (see DESIGN.md):
//
//   memlint -format=sarif file.c        findings as a SARIF 2.1.0 document
//   memlint -format=jsonl file.c        findings as JSON Lines
//   memlint -trace-states=fn file.c     trace fn's state transitions (stderr)
//   memlint --metrics-out=m.json ...    phase timings + counters + latency
//                                       histograms to a file
//   memlint --trace-out=t.json ...      span timeline as Chrome trace-event
//                                       JSON (chrome://tracing, Perfetto)
//
// Annotation inference (see DESIGN.md §6h):
//
//   memlint -infer file.c               derive candidate annotations
//                                       bottom-up over the call graph and
//                                       print the inferred header
//   memlint -infer --infer-out=i.h ...  write the header atomically instead;
//                                       composes with batch mode (-jN,
//                                       --journal/--resume) — the combined
//                                       header is byte-identical across job
//                                       counts and resumes
//   memlint --gen-sec7=DIR -gen-unannotated
//                                       inference workload: module sources
//                                       stripped of annotations, headers kept
//
// The persistent check service (see DESIGN.md §6f):
//
//   memlint --serve --socket=/tmp/ml.sock --cache=ml.cache.jsonl
//       daemon: accept check/invalidate/stats/shutdown requests over a
//       Unix socket, reusing cached results keyed by content hash; SIGTERM
//       drains the queue and flushes the cache compacted
//   memlint --serve ... -serve-deadline-ms=5000 -serve-queue=64 -cache-max=0
//       per-request deadline, pending-queue bound (beyond it requests are
//       shed with an "overloaded" reply), cache entry bound (LRU)
//   memlint --request --socket=/tmp/ml.sock check file.c
//   memlint --request --socket=/tmp/ml.sock invalidate file.c
//   memlint --request --socket=/tmp/ml.sock stats
//   memlint --request --socket=/tmp/ml.sock shutdown
//       one-shot client; a check prints its diagnostics verbatim on stdout
//       (byte-identical whether served warm or cold)
//   memlint --gen-sec7=DIR -gen-modules=400
//       write a Section 7 synthetic corpus to DIR (plus a MANIFEST listing
//       the main files in order) for service/bench smoke tests
//
// Differential fuzzing (memlint-fuzz mode, see DESIGN.md §6e):
//
//   memlint --fuzz -fuzz-count=10000 -fuzz-seed=1 -j8
//       run a seed-addressable generator fleet through the checker and the
//       interpreter oracle; write BENCH_differential.json (via -fuzz-out)
//   memlint --fuzz ... -fuzz-faults=4 -fuzz-regress-dir=DIR
//       arm deterministic faults in ~1/4 of the fleet; write minimized
//       regression seeds for any violation
//   memlint --fuzz-repro=SEEDHEX
//       regenerate one program from its seed (byte-identical) and show
//       both tools' verdicts
//
// Diagnostics are flushed in input order, so batch output is byte-identical
// across -jN; timing goes to stderr to keep stdout deterministic.
//
// Exit status is the number of anomalies (capped at 125), mirroring lint
// conventions; in batch mode timeouts and contained crashes do not count —
// only real check findings do. -fail-on=degraded|internal turns a clean-
// findings run that degraded (or contained an internal error) into exit
// 123, for CI policies that treat partial analysis as failure. Fuzz
// campaigns exit 0 when clean, 2 on any crash-freedom/containment/
// misclassification violation.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "driver/BatchDriver.h"
#include "fuzz/Fuzzer.h"
#include "interp/Interpreter.h"
#include "service/CheckService.h"
#include "service/ServiceSocket.h"
#include "support/FindingsOutput.h"
#include "support/Journal.h"
#include "support/Trace.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>

using namespace memlint;

namespace {

/// Parses the digits of a "-j8" / "-file-deadline-ms=2000" style value.
/// \returns false on empty or non-numeric text.
bool parseCount(const std::string &Text, unsigned &Out) {
  if (Text.empty())
    return false;
  unsigned long Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<unsigned long>(C - '0');
    if (Value > 0xFFFFFFFFul)
      return false;
  }
  Out = static_cast<unsigned>(Value);
  return true;
}

/// Parses a campaign/program seed: decimal, or hex with an 0x prefix (the
/// form --fuzz-repro prints). \returns false on malformed text.
bool parseSeed(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty())
    return false;
  const char *Begin = Text.c_str();
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Begin, &End, 0);
  if (End != Begin + Text.size())
    return false;
  Out = Value;
  return true;
}

/// SIGTERM/SIGINT flip this; the serve accept loop polls it every tick, so
/// the daemon drains and flushes within ~100ms of the signal.
std::atomic<bool> GServiceStop{false};

void serviceStopSignal(int) { GServiceStop.store(true); }

} // namespace

int main(int argc, char **argv) {
  CheckOptions Options;
  std::vector<std::string> Files;
  bool PrintCfg = false;
  bool RunProgram = false;
  bool BatchMode = false;
  BatchOptions Batch;
  std::string Format = "text";
  std::string MetricsOut;
  std::string TraceOut;
  bool FuzzMode = false;
  fuzz::FuzzOptions Fuzz;
  std::string FuzzOut;
  bool HaveRepro = false;
  std::uint64_t ReproSeed = 0;
  std::string FailOn;
  bool ServeMode = false;
  bool RequestMode = false;
  std::string SocketPath;
  ServiceOptions Serve;
  std::string GenDir;
  unsigned GenModules = 3;
  unsigned GenSharedHeaders = 0;
  bool GenUnannotated = false;
  std::string InferOut;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--flags") {
      for (const std::string &Name : Options.Flags.knownFlags()) {
        // Limit flags carry a numeric value ("-limittokens=N"); check
        // toggles carry their on/off state.
        if (Options.Flags.isLimit(Name))
          printf("-%s=%u\n", Name.c_str(), Options.Flags.getLimit(Name));
        else
          printf("%c%s\n", Options.Flags.get(Name) ? '+' : '-', Name.c_str());
      }
      return 0;
    }
    if (Arg == "--cfg") {
      PrintCfg = true;
      continue;
    }
    if (Arg == "--run") {
      RunProgram = true;
      continue;
    }
    if (Arg == "--fuzz") {
      FuzzMode = true;
      continue;
    }
    if (Arg == "--serve") {
      ServeMode = true;
      continue;
    }
    if (Arg == "--request") {
      RequestMode = true;
      continue;
    }
    if (Arg == "--socket" || Arg.compare(0, 9, "--socket=") == 0 ||
        Arg == "--cache" || Arg.compare(0, 8, "--cache=") == 0) {
      const bool IsSocket = Arg.compare(0, 8, "--socket") == 0;
      std::string Path;
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos)
        Path = Arg.substr(Eq + 1);
      else if (I + 1 < argc)
        Path = argv[++I];
      if (Path.empty()) {
        fprintf(stderr, "memlint: %s needs a path\n",
                Arg.substr(0, Arg.find('=')).c_str());
        return 126;
      }
      (IsSocket ? SocketPath : Serve.CachePath) = Path;
      continue;
    }
    if (Arg.compare(0, 18, "-serve-deadline-ms") == 0 &&
        (Arg.size() == 18 || Arg[18] == '=')) {
      if (Arg.size() < 20 || !parseCount(Arg.substr(19),
                                         Serve.RequestDeadlineMs)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-serve-deadline-ms=N (0 disables the deadline)\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 12, "-serve-queue") == 0 &&
        (Arg.size() == 12 || Arg[12] == '=')) {
      unsigned Limit = 0;
      if (Arg.size() < 14 || !parseCount(Arg.substr(13), Limit) ||
          Limit == 0) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-serve-queue=N with N >= 1\n",
                Arg.c_str());
        return 126;
      }
      Serve.QueueLimit = Limit;
      continue;
    }
    if (Arg.compare(0, 10, "-cache-max") == 0 &&
        (Arg.size() == 10 || Arg[10] == '=')) {
      unsigned Max = 0;
      if (Arg.size() < 12 || !parseCount(Arg.substr(11), Max)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-cache-max=N (0 = unbounded)\n",
                Arg.c_str());
        return 126;
      }
      Serve.CacheMaxEntries = Max;
      continue;
    }
    if (Arg == "--gen-sec7" || Arg.compare(0, 11, "--gen-sec7=") == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos)
        GenDir = Arg.substr(Eq + 1);
      else if (I + 1 < argc)
        GenDir = argv[++I];
      if (GenDir.empty()) {
        fprintf(stderr, "memlint: --gen-sec7 needs a directory\n");
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 13, "-gen-modules=") == 0) {
      if (!parseCount(Arg.substr(13), GenModules) || GenModules == 0) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-gen-modules=N with N >= 1\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 20, "-gen-shared-headers=") == 0) {
      if (!parseCount(Arg.substr(20), GenSharedHeaders)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-gen-shared-headers=N (headers every module "
                        "includes; 0 disables)\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg == "-gen-unannotated") {
      GenUnannotated = true;
      continue;
    }
    if (Arg == "-infer") {
      Options.Infer = true;
      continue;
    }
    if (Arg == "--infer-out" || Arg.compare(0, 12, "--infer-out=") == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos)
        InferOut = Arg.substr(Eq + 1);
      else if (I + 1 < argc)
        InferOut = argv[++I];
      if (InferOut.empty()) {
        fprintf(stderr, "memlint: --infer-out needs an output path\n");
        return 126;
      }
      Options.Infer = true; // --infer-out implies -infer
      continue;
    }
    if (Arg.compare(0, 16, "-frontend-cache=") == 0) {
      std::string Value = Arg.substr(16);
      if (Value != "on" && Value != "off") {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-frontend-cache=on|off\n",
                Arg.c_str());
        return 126;
      }
      Options.FrontendCache = Value == "on";
      Batch.SharedFrontend = Options.FrontendCache;
      continue;
    }
    if (Arg == "--fuzz-repro" || Arg.compare(0, 13, "--fuzz-repro=") == 0) {
      std::string Value;
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos)
        Value = Arg.substr(Eq + 1);
      else if (I + 1 < argc)
        Value = argv[++I];
      if (!parseSeed(Value, ReproSeed)) {
        fprintf(stderr, "memlint: --fuzz-repro needs a program seed "
                        "(decimal or 0xHEX)\n");
        return 126;
      }
      HaveRepro = true;
      continue;
    }
    if (Arg.compare(0, 12, "-fuzz-count=") == 0) {
      if (!parseCount(Arg.substr(12), Fuzz.Count) || Fuzz.Count == 0) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-fuzz-count=N with N >= 1\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 11, "-fuzz-seed=") == 0) {
      if (!parseSeed(Arg.substr(11), Fuzz.Seed)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-fuzz-seed=N\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 13, "-fuzz-faults=") == 0) {
      if (!parseCount(Arg.substr(13), Fuzz.FaultEvery)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-fuzz-faults=N (inject in ~1/N programs; 0 "
                        "disables)\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 13, "-fuzz-mutate=") == 0) {
      if (!parseCount(Arg.substr(13), Fuzz.MutatedPercent) ||
          Fuzz.MutatedPercent > 100) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-fuzz-mutate=PERCENT (0..100)\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 10, "-fuzz-out=") == 0) {
      FuzzOut = Arg.substr(10);
      if (FuzzOut.empty()) {
        fprintf(stderr, "memlint: -fuzz-out= needs an output path\n");
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 18, "-fuzz-regress-dir=") == 0) {
      Fuzz.RegressDir = Arg.substr(18);
      if (Fuzz.RegressDir.empty()) {
        fprintf(stderr, "memlint: -fuzz-regress-dir= needs a directory\n");
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 9, "-fail-on=") == 0) {
      FailOn = Arg.substr(9);
      if (FailOn != "degraded" && FailOn != "internal") {
        fprintf(stderr, "memlint: unknown policy '%s': expected "
                        "-fail-on=degraded|internal\n",
                FailOn.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.size() > 2 && Arg.compare(0, 2, "-j") == 0) {
      if (!parseCount(Arg.substr(2), Batch.Jobs) || Batch.Jobs == 0) {
        fprintf(stderr, "memlint: malformed job count '%s': expected -jN "
                        "with N >= 1\n",
                Arg.c_str());
        return 126;
      }
      BatchMode = true;
      continue;
    }
    if (Arg.compare(0, 18, "-file-deadline-ms=") == 0) {
      if (!parseCount(Arg.substr(18), Batch.FileDeadlineMs)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-file-deadline-ms=N (0 disables the deadline)\n",
                Arg.c_str());
        return 126;
      }
      BatchMode = true;
      continue;
    }
    if (Arg == "--journal" || Arg == "--resume" ||
        Arg.compare(0, 10, "--journal=") == 0 ||
        Arg.compare(0, 9, "--resume=") == 0) {
      std::string Path;
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Path = Arg.substr(Eq + 1);
      } else if (I + 1 < argc) {
        Path = argv[++I];
      }
      if (Path.empty()) {
        fprintf(stderr, "memlint: %s needs a journal path\n",
                Arg.substr(0, Arg.find('=')).c_str());
        return 126;
      }
      Batch.JournalPath = Path;
      Batch.Resume = Arg.compare(0, 8, "--resume") == 0;
      BatchMode = true;
      continue;
    }
    if (Arg.compare(0, 8, "-format=") == 0) {
      Format = Arg.substr(8);
      if (Format != "text" && Format != "sarif" && Format != "jsonl") {
        fprintf(stderr, "memlint: unknown output format '%s': expected "
                        "-format=text|sarif|jsonl\n",
                Format.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 14, "-trace-states=") == 0) {
      Options.TraceFunction = Arg.substr(14);
      if (Options.TraceFunction.empty()) {
        fprintf(stderr, "memlint: -trace-states= needs a function name\n");
        return 126;
      }
      continue;
    }
    if (Arg == "--metrics-out" || Arg.compare(0, 14, "--metrics-out=") == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        MetricsOut = Arg.substr(Eq + 1);
      } else if (I + 1 < argc) {
        MetricsOut = argv[++I];
      }
      if (MetricsOut.empty()) {
        fprintf(stderr, "memlint: --metrics-out needs an output path\n");
        return 126;
      }
      continue;
    }
    if (Arg == "--trace-out" || Arg.compare(0, 12, "--trace-out=") == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        TraceOut = Arg.substr(Eq + 1);
      } else if (I + 1 < argc) {
        TraceOut = argv[++I];
      }
      if (TraceOut.empty()) {
        fprintf(stderr, "memlint: --trace-out needs an output path\n");
        return 126;
      }
      continue;
    }
    if (!Arg.empty() && (Arg[0] == '+' || Arg[0] == '-')) {
      std::string Error;
      if (!Options.Flags.parse(Arg, Error)) {
        fprintf(stderr, "memlint: %s\n", Error.c_str());
        return 126;
      }
      continue;
    }
    Files.push_back(Arg);
  }

  //===--- output-path preflight -------------------------------------------===//

  // Fail fast on unwritable output destinations: probe each output flag's
  // path before anything is checked, so a long run cannot complete only to
  // lose its report at the final write. The probe creates and removes a
  // sibling temp file exactly where the later atomic write will place its
  // own, without touching existing contents (a --resume journal survives).
  {
    const struct {
      const char *Flag;
      const std::string &Path;
    } Outs[] = {
        {"--metrics-out", MetricsOut},
        {"--trace-out", TraceOut},
        {"--infer-out", InferOut},
        {"-fuzz-out", FuzzOut},
        {Batch.Resume ? "--resume" : "--journal", Batch.JournalPath},
    };
    for (const auto &O : Outs)
      if (!O.Path.empty() && !preflightWritePath(O.Path)) {
        fprintf(stderr,
                "memlint: cannot write to '%s' (from %s): directory missing "
                "or not writable\n",
                O.Path.c_str(), O.Flag);
        return 126;
      }
  }

  //===--- corpus generation (service/bench smoke input) ------------------===//

  if (!GenDir.empty()) {
    corpus::GenOptions Gen;
    Gen.Modules = GenModules;
    Gen.SharedHeaders = GenSharedHeaders;
    Gen.UnannotatedModules = GenUnannotated;
    corpus::Program P = corpus::syntheticProgram(Gen);
    ::mkdir(GenDir.c_str(), 0755); // fine if it already exists
    for (const std::string &Name : P.Files.names()) {
      if (!writeFileText(GenDir + "/" + Name, *P.Files.read(Name))) {
        fprintf(stderr, "memlint: cannot write '%s/%s'\n", GenDir.c_str(),
                Name.c_str());
        return 126;
      }
    }
    // The MANIFEST preserves main-file order so scripts check the corpus
    // in the same sequence every time (deterministic diffable output).
    std::string Manifest;
    for (const std::string &Main : P.MainFiles)
      Manifest += Main + "\n";
    if (!writeFileText(GenDir + "/MANIFEST", Manifest)) {
      fprintf(stderr, "memlint: cannot write '%s/MANIFEST'\n", GenDir.c_str());
      return 126;
    }
    printf("-- gen: %u module(s), %zu file(s), %u line(s) -> %s\n",
           GenModules, P.Files.names().size(), corpus::totalLines(P),
           GenDir.c_str());
    return 0;
  }

  //===--- service daemon and client --------------------------------------===//

  if (ServeMode || RequestMode) {
    if (SocketPath.empty()) {
      fprintf(stderr, "memlint: %s needs --socket=PATH\n",
              ServeMode ? "--serve" : "--request");
      return 126;
    }
    if (ServeMode && RequestMode) {
      fprintf(stderr, "memlint: --serve and --request are mutually "
                      "exclusive\n");
      return 126;
    }
    if (PrintCfg || RunProgram || FuzzMode || Format != "text" ||
        !Options.TraceFunction.empty() || !FailOn.empty() || BatchMode ||
        Options.Infer) {
      fprintf(stderr, "memlint: --serve/--request cannot be combined with "
                      "--cfg, --run, --fuzz, batch options, -format, "
                      "-trace-states, -fail-on, or -infer\n");
      return 126;
    }
  }

  if (ServeMode) {
    if (!Files.empty()) {
      fprintf(stderr, "memlint: --serve takes no input files; clients name "
                      "them per request\n");
      return 126;
    }
    Serve.Check = Options;
    Serve.CollectMetrics = !MetricsOut.empty();
    Serve.CollectTrace = !TraceOut.empty();
    std::signal(SIGTERM, serviceStopSignal);
    std::signal(SIGINT, serviceStopSignal);
    CheckService Service(Serve);
    if (!Service.cacheLoadedClean())
      fprintf(stderr, "-- cache: '%s' discarded (format or policy "
                      "mismatch); starting cold\n",
              Serve.CachePath.c_str());
    ServiceSocket Socket;
    std::string Error;
    if (!Socket.listenOn(SocketPath, Error)) {
      fprintf(stderr, "memlint: %s\n", Error.c_str());
      return 126;
    }
    fprintf(stderr, "-- serve: listening on %s (policy %s)\n",
            SocketPath.c_str(), checkOptionsFingerprint(Options).c_str());
    unsigned long Served = Socket.serve(Service, GServiceStop);
    Socket.close();
    Service.stop(); // graceful drain + compacted cache flush
    if (!MetricsOut.empty() &&
        !writeFileTextAtomic(MetricsOut, Service.metrics().json() + "\n")) {
      fprintf(stderr, "memlint: cannot write metrics to '%s'\n",
              MetricsOut.c_str());
      return 126;
    }
    if (!TraceOut.empty() &&
        !writeFileTextAtomic(TraceOut, renderChromeTrace(Service.trace()))) {
      fprintf(stderr, "memlint: cannot write trace to '%s'\n",
              TraceOut.c_str());
      return 126;
    }
    fprintf(stderr, "-- serve: drained after %lu connection(s)\n", Served);
    return 0;
  }

  if (RequestMode) {
    ServiceRequest Req;
    if (Files.empty()) {
      fprintf(stderr, "memlint: --request needs an operation: check FILE | "
                      "invalidate FILE | stats | shutdown\n");
      return 126;
    }
    const std::string &Op = Files[0];
    if (Op == "check" || Op == "invalidate") {
      // Exactly one file operand: a missing target and a stray extra one
      // get distinct messages so scripted callers see what went wrong.
      if (Files.size() < 2) {
        fprintf(stderr, "memlint: --request %s needs a FILE operand\n",
                Op.c_str());
        return 126;
      }
      if (Files.size() > 2) {
        fprintf(stderr, "memlint: --request %s takes exactly one FILE "
                        "operand (unexpected '%s')\n",
                Op.c_str(), Files[2].c_str());
        return 126;
      }
      Req.Kind = Op == "check" ? ServiceRequestKind::Check
                               : ServiceRequestKind::Invalidate;
      Req.File = Files[1];
    } else if (Op == "stats" || Op == "shutdown") {
      if (Files.size() != 1) {
        fprintf(stderr, "memlint: --request %s takes no file operand "
                        "(unexpected '%s')\n",
                Op.c_str(), Files[1].c_str());
        return 126;
      }
      Req.Kind = Op == "stats" ? ServiceRequestKind::Stats
                               : ServiceRequestKind::Shutdown;
    } else {
      fprintf(stderr, "memlint: --request operation '%s' is not one of: "
                      "check FILE | invalidate FILE | stats | shutdown\n",
              Op.c_str());
      return 126;
    }
    std::string Error;
    std::optional<std::string> ReplyLine =
        serviceRoundTrip(SocketPath, serviceRequestLine(Req), Error);
    if (!ReplyLine) {
      fprintf(stderr, "memlint: %s\n", Error.c_str());
      return 126;
    }
    ServiceReply Reply;
    if (!parseServiceReplyLine(*ReplyLine, Reply)) {
      fprintf(stderr, "memlint: malformed reply from service: %s\n",
              ReplyLine->c_str());
      return 126;
    }
    // Diagnostics verbatim on stdout so a warm reply can be byte-compared
    // against a cold one; service health goes to stderr.
    printf("%s", Reply.Diagnostics.c_str());
    if (Req.Kind == ServiceRequestKind::Check &&
        (Reply.Status == "ok" || Reply.Status == "degraded"))
      printf("-- %u anomaly(ies), %u suppressed\n", Reply.Anomalies,
             Reply.Suppressed);
    if (Req.Kind == ServiceRequestKind::Stats)
      printf("%s\n", Reply.Note.c_str());
    fprintf(stderr, "-- service: %s%s\n", Reply.Status.c_str(),
            Reply.CacheHit ? " (cache hit)" : "");
    if (!Reply.Note.empty() && Req.Kind != ServiceRequestKind::Stats)
      fprintf(stderr, "-- note: %s\n", Reply.Note.c_str());
    if (Reply.Status == "error" || Reply.Status == "overloaded" ||
        Reply.Status == "stopping")
      return 126;
    if (Reply.Status == "timeout" || Reply.Status == "crash")
      return 123; // partial analysis, as with -fail-on
    if (Req.Kind == ServiceRequestKind::Check)
      return Reply.Anomalies > 125 ? 125 : static_cast<int>(Reply.Anomalies);
    return 0;
  }

  //===--- fuzz modes (no input files) ------------------------------------===//

  if (FuzzMode || HaveRepro) {
    if (!Files.empty() || PrintCfg || RunProgram || Format != "text" ||
        !MetricsOut.empty() || !TraceOut.empty() ||
        !Options.TraceFunction.empty() || !FailOn.empty() || Options.Infer) {
      fprintf(stderr, "memlint: --fuzz/--fuzz-repro run a generated fleet; "
                      "they cannot be combined with input files, --cfg, "
                      "--run, -format, -trace-states, --metrics-out, "
                      "--trace-out, -fail-on, or -infer\n");
      return 126;
    }
  }

  if (HaveRepro) {
    // Regenerate the program from its seed (byte-identical to the
    // campaign's copy) and show both tools' verdicts.
    fuzz::FuzzProgram P = fuzz::generateFuzzProgram(ReproSeed, 0, Fuzz);
    printf("-- fuzz repro seed 0x%016llx\n",
           static_cast<unsigned long long>(P.Seed));
    printf("-- base: %s%s\n",
           P.HasExpectedBug ? corpus::bugKindName(P.ExpectedBug)
                            : "clean-synthetic",
           P.Mutated ? (std::string(", mutated: ") +
                        fuzz::mutationKindName(P.Mutation))
                           .c_str()
                     : "");
    if (P.Injected)
      printf("-- fault: %s at checkpoint %lu\n", faultKindName(P.Fault),
             P.FireAt);
    printf("---- source ----\n%s---- end source ----\n", P.Source.c_str());

    FaultInjector Injector(P.Fault, P.FireAt);
    CheckOptions Repro;
    if (P.Injected)
      Repro.Faults = &Injector;
    CheckResult CR = Checker::checkSource(P.Source, Repro, P.Name);
    printf("%s", CR.render().c_str());
    std::string Reasons;
    for (const std::string &Reason : CR.DegradationReasons)
      Reasons += (Reasons.empty() ? "" : ", ") + Reason;
    printf("-- static: %s%s%s, %u anomaly(ies)\n",
           checkStatusName(CR.Status), Reasons.empty() ? "" : " — ",
           Reasons.c_str(), CR.anomalyCount());

    Frontend FE;
    TranslationUnit *TU = FE.parseSource(P.Source, P.Name);
    Interpreter Interp(*TU, frontendDegraded(FE.diags()));
    RunResult RR = Interp.run("main", Fuzz.MaxOracleSteps);
    printf("-- oracle: %s, exit code %ld\n",
           RR.NotExecutable ? "refused (degraded parse)"
           : RR.Completed   ? "completed"
                            : "aborted",
           RR.ExitCode);
    for (const RuntimeError &E : RR.Errors)
      printf("%s\n", E.str().c_str());
    return 0;
  }

  if (FuzzMode) {
    if (BatchMode)
      Fuzz.Jobs = Batch.Jobs;
    if (Batch.FileDeadlineMs != 0)
      Fuzz.FileDeadlineMs = Batch.FileDeadlineMs;
    Fuzz.JournalPath = Batch.JournalPath;
    Fuzz.Resume = Batch.Resume;
    fuzz::FuzzResult R = fuzz::runFuzzCampaign(Fuzz);
    printf("-- fuzz: %s\n", R.summary().c_str());
    for (const std::string &Note : R.ViolationNotes)
      printf("-- violation: %s\n", Note.c_str());
    for (const fuzz::Regression &Reg : R.Regressions)
      printf("-- regression: %s (%s), repro seed 0x%016llx\n",
             Reg.Name.c_str(), Reg.Why.c_str(),
             static_cast<unsigned long long>(Reg.Seed));
    const std::string Json = fuzz::renderBenchDifferentialJson(R, Fuzz);
    if (FuzzOut.empty()) {
      printf("%s", Json.c_str());
    } else if (!writeFileText(FuzzOut, Json)) {
      fprintf(stderr, "memlint: cannot write '%s'\n", FuzzOut.c_str());
      return 126;
    }
    fprintf(stderr, "-- fuzz wall clock: %.1f ms at -j%u\n", R.WallMs,
            Fuzz.Jobs);
    return R.clean() ? 0 : 2;
  }

  if (Files.empty()) {
    fprintf(stderr, "usage: memlint [+flag|-flag]... [--cfg] [--run] [-jN] "
                    "[-file-deadline-ms=N] [--journal FILE] [--resume FILE] "
                    "[-format=text|sarif|jsonl] [-trace-states=FN] "
                    "[--metrics-out FILE] [--trace-out FILE] "
                    "[-fail-on=degraded|internal] "
                    "[-frontend-cache=on|off] [-infer] [--infer-out FILE] "
                    "file.c...\n"
                    "       memlint --fuzz [-fuzz-count=N] [-fuzz-seed=N] "
                    "[-fuzz-faults=N] [-fuzz-mutate=PCT] [-fuzz-out=FILE] "
                    "[-fuzz-regress-dir=DIR] [-jN]\n"
                    "       memlint --fuzz-repro=SEED\n"
                    "       memlint --serve --socket=PATH [--cache=FILE] "
                    "[-serve-deadline-ms=N] [-serve-queue=N] [-cache-max=N] "
                    "[--metrics-out FILE] [--trace-out FILE]\n"
                    "       memlint --request --socket=PATH check FILE\n"
                    "       memlint --request --socket=PATH invalidate FILE\n"
                    "       memlint --request --socket=PATH stats\n"
                    "       memlint --request --socket=PATH shutdown\n"
                    "       memlint --gen-sec7=DIR [-gen-modules=N] "
                    "[-gen-shared-headers=N] [-gen-unannotated]\n");
    return 126;
  }
  if (BatchMode && (PrintCfg || RunProgram)) {
    fprintf(stderr, "memlint: batch options cannot be combined with --cfg "
                    "or --run\n");
    return 126;
  }
  if (BatchMode && Format != "text") {
    // Batch workers stream rendered text through the journal; structured
    // findings come from the single-run path (-format without -jN) or from
    // the journal itself.
    fprintf(stderr, "memlint: -format=%s cannot be combined with batch "
                    "options; run without -jN/--journal for structured "
                    "output\n",
            Format.c_str());
    return 126;
  }
  if (BatchMode && !Options.TraceFunction.empty()) {
    fprintf(stderr, "memlint: -trace-states= cannot be combined with batch "
                    "options; trace a single run\n");
    return 126;
  }
  if ((PrintCfg || RunProgram) &&
      (Format != "text" || !MetricsOut.empty() || !TraceOut.empty() ||
       !Options.TraceFunction.empty() || Options.Infer)) {
    fprintf(stderr, "memlint: observability options apply to checking, not "
                    "--cfg or --run\n");
    return 126;
  }
  if (Options.Infer && Format != "text" && InferOut.empty()) {
    // Structured stdout must stay machine-parsable; route the header to a
    // file instead of interleaving it with the findings document.
    fprintf(stderr, "memlint: -infer with -format=%s needs --infer-out "
                    "FILE (stdout carries the findings document)\n",
            Format.c_str());
    return 126;
  }
  if (!MetricsOut.empty()) {
    Options.CollectMetrics = true;
    Batch.CollectMetrics = true;
  }
  if (!TraceOut.empty())
    Batch.CollectTrace = true;
  if (!Options.TraceFunction.empty())
    Options.TraceSink = [](const std::string &Event) {
      fprintf(stderr, "-- trace %s\n", Event.c_str());
    };

  VFS Vfs;
  for (const std::string &File : Files) {
    if (!Vfs.addFromDisk(File)) {
      fprintf(stderr, "memlint: cannot read '%s'\n", File.c_str());
      return 126;
    }
  }
  // Pre-materialize quoted #include dependencies from disk (as-is, then
  // next to the includer), transitively. Doing it up front keeps the VFS a
  // plain map — no loader — so batch workers can share it without locking.
  // Names that resolve nowhere are left to the preprocessor, which
  // tolerates unknown headers (the standard library specs are built in).
  {
    std::vector<std::string> Work = Files;
    while (!Work.empty()) {
      std::string Name = Work.back();
      Work.pop_back();
      std::optional<std::string> Text = Vfs.read(Name);
      if (!Text)
        continue;
      size_t Pos = 0;
      while ((Pos = Text->find("#include", Pos)) != std::string::npos) {
        size_t Open = Text->find('"', Pos + 8);
        size_t Line = Text->find('\n', Pos + 8);
        Pos += 8;
        if (Open == std::string::npos || (Line != std::string::npos &&
                                          Open > Line))
          continue;
        size_t Close = Text->find('"', Open + 1);
        if (Close == std::string::npos || (Line != std::string::npos &&
                                           Close > Line))
          continue;
        std::string Inc = Text->substr(Open + 1, Close - Open - 1);
        if (Inc.empty() || Vfs.exists(Inc))
          continue;
        std::optional<std::string> OnDisk = readFileText(Inc);
        if (!OnDisk) {
          size_t Slash = Name.rfind('/');
          if (Slash != std::string::npos)
            OnDisk = readFileText(Name.substr(0, Slash + 1) + Inc);
        }
        if (OnDisk) {
          Vfs.add(Inc, std::move(*OnDisk));
          Work.push_back(Inc);
        }
      }
    }
  }

  if (BatchMode) {
    Batch.Check = Options;
    // Stream each file's diagnostics as soon as everything before it has
    // flushed: stdout stays in input order and byte-identical across -jN.
    Batch.OnFileOutcome = [](const FileOutcome &O) {
      printf("%s", O.Diagnostics.c_str());
      if (O.Kind != FileOutcomeKind::Ok) {
        std::string Reasons;
        for (const std::string &Reason : O.Reasons)
          Reasons += (Reasons.empty() ? "" : ", ") + Reason;
        printf("-- %s: %s (%s) after %u attempt(s); results are partial\n",
               O.File.c_str(), fileOutcomeName(O.Kind), Reasons.c_str(),
               O.Attempts);
      }
    };
    BatchDriver Driver(Batch);
    BatchResult R = Driver.run(Vfs, Files);
    printf("-- batch: %s\n", R.summary().c_str());
    // Timing and journal health are real but nondeterministic; they go to
    // stderr so stdout can be diffed across job counts and resumes.
    fprintf(stderr, "-- batch wall clock: %.1f ms at -j%u\n", R.WallMs,
            Batch.Jobs);
    if (!R.JournalNote.empty())
      fprintf(stderr, "-- journal: %s\n", R.JournalNote.c_str());
    if (R.JournalCorruptLines != 0)
      fprintf(stderr, "-- journal: %u corrupt line(s) discarded on resume\n",
              R.JournalCorruptLines);
    if (R.JournalRejected)
      // Nothing was checked: the journal records a different corpus or
      // checking policy (the precise mismatch went to stderr above). 126
      // groups this with usage errors — the invocation itself is wrong.
      return 126;
    if (!MetricsOut.empty() &&
        !writeFileTextAtomic(MetricsOut, R.Metrics.json() + "\n")) {
      fprintf(stderr, "memlint: cannot write metrics to '%s'\n",
              MetricsOut.c_str());
      return 126;
    }
    if (!TraceOut.empty() &&
        !writeFileTextAtomic(TraceOut, renderChromeTrace(R.Trace))) {
      fprintf(stderr, "memlint: cannot write trace to '%s'\n",
              TraceOut.c_str());
      return 126;
    }
    if (Options.Infer) {
      // Per-file fragments concatenate in input order, so the combined
      // header is byte-identical across -jN and under --resume.
      std::string Header;
      for (const FileOutcome &O : R.Outcomes)
        Header += O.Inferred;
      if (!InferOut.empty()) {
        if (!writeFileTextAtomic(InferOut, Header)) {
          fprintf(stderr, "memlint: cannot write inferred header to '%s'\n",
                  InferOut.c_str());
          return 126;
        }
      } else {
        printf("-- inferred interface:\n%s", Header.c_str());
      }
    }
    unsigned Count = R.TotalAnomalies;
    if (Count == 0 && !FailOn.empty()) {
      // CI exit-status policy: a batch with no findings still fails when
      // any file fell short of full analysis (-fail-on=degraded) or hit a
      // contained internal error (-fail-on=internal). 123 is distinct from
      // both the anomaly-count range (0..125) and usage errors (126).
      const bool Internal = R.CrashCount != 0;
      const bool Partial =
          Internal || R.DegradedCount != 0 || R.TimeoutCount != 0;
      if (FailOn == "internal" ? Internal : Partial)
        return 123;
    }
    return Count > 125 ? 125 : static_cast<int>(Count);
  }

  if (PrintCfg || RunProgram) {
    Frontend FE;
    TranslationUnit *TU = FE.parseProgram(Vfs, Files);
    if (!FE.diags().empty())
      printf("%s", FE.diags().str().c_str());
    if (PrintCfg) {
      for (const FunctionDecl *FD : TU->definedFunctions())
        if (auto G = CFG::build(FD))
          printf("%s\n", G->print().c_str());
    }
    if (RunProgram) {
      Interpreter Interp(*TU, frontendDegraded(FE.diags()));
      RunResult R = Interp.run();
      printf("%s", R.Output.c_str());
      printf("-- run %s, exit code %ld, %lu steps\n",
             R.NotExecutable ? "refused (degraded parse)"
             : R.Completed   ? "completed"
                             : "aborted",
             R.ExitCode, R.Steps);
      for (const RuntimeError &E : R.Errors)
        printf("%s\n", E.str().c_str());
      return R.Errors.empty() ? 0 : 1;
    }
    return 0;
  }

  TraceRecorder SingleRunTrace;
  if (!TraceOut.empty())
    Options.Trace = &SingleRunTrace;
  CheckResult R = Checker::checkFiles(Vfs, Files, Options);
  std::string DegradedNote;
  if (R.Status != CheckStatus::Ok) {
    std::string Reasons;
    for (const std::string &Reason : R.DegradationReasons)
      Reasons += (Reasons.empty() ? "" : ", ") + Reason;
    DegradedNote = std::string("-- check ") + checkStatusName(R.Status) +
                   " (" + Reasons + "); results are partial\n";
  }
  if (Format == "sarif") {
    // Stdout is the SARIF document and nothing else; run health goes to
    // stderr so the output stays machine-parsable.
    printf("%s", renderSarif(R.Diagnostics).c_str());
    fprintf(stderr, "%s", DegradedNote.c_str());
  } else if (Format == "jsonl") {
    printf("%s", renderJsonl(R.Diagnostics).c_str());
    fprintf(stderr, "%s", DegradedNote.c_str());
  } else {
    printf("%s", R.render().c_str());
    printf("-- %u anomaly(ies), %u suppressed\n", R.anomalyCount(),
           R.SuppressedCount);
    printf("%s", DegradedNote.c_str());
  }
  if (!MetricsOut.empty() &&
      !writeFileTextAtomic(MetricsOut, R.Metrics.json() + "\n")) {
    fprintf(stderr, "memlint: cannot write metrics to '%s'\n",
            MetricsOut.c_str());
    return 126;
  }
  if (!TraceOut.empty() &&
      !writeFileTextAtomic(TraceOut,
                           renderChromeTrace(SingleRunTrace.events()))) {
    fprintf(stderr, "memlint: cannot write trace to '%s'\n",
            TraceOut.c_str());
    return 126;
  }
  if (Options.Infer) {
    if (!InferOut.empty()) {
      if (!writeFileTextAtomic(InferOut, R.InferredHeader)) {
        fprintf(stderr, "memlint: cannot write inferred header to '%s'\n",
                InferOut.c_str());
        return 126;
      }
    } else {
      printf("-- inferred interface:\n%s", R.InferredHeader.c_str());
    }
  }
  unsigned Count = R.anomalyCount();
  if (Count == 0 && !FailOn.empty()) {
    const bool Internal = R.Status == CheckStatus::InternalError;
    const bool Partial = Internal || R.Status == CheckStatus::Degraded;
    if (FailOn == "internal" ? Internal : Partial)
      return 123;
  }
  return Count > 125 ? 125 : static_cast<int>(Count);
}
