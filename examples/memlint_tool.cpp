//===--- memlint_tool.cpp - Command-line checker -----------------------------===//
//
// Part of memlint. See DESIGN.md.
//
// An LCLint-style command-line driver:
//
//   memlint [+flag|-flag]... file.c [file2.c ...]
//   memlint --cfg file.c        print each function's control-flow graph
//                               (the paper's Figure 6 view)
//   memlint --run file.c        execute with the run-time checking baseline
//   memlint --flags             list the known flags
//
// Multiple files are checked as one program; exit status is the number of
// anomalies (capped at 125), mirroring lint conventions.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "interp/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace memlint;

int main(int argc, char **argv) {
  CheckOptions Options;
  std::vector<std::string> Files;
  bool PrintCfg = false;
  bool RunProgram = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--flags") {
      for (const std::string &Name : Options.Flags.knownFlags()) {
        // Limit flags carry a numeric value ("-limittokens=N"); check
        // toggles carry their on/off state.
        if (Options.Flags.isLimit(Name))
          printf("-%s=%u\n", Name.c_str(), Options.Flags.getLimit(Name));
        else
          printf("%c%s\n", Options.Flags.get(Name) ? '+' : '-', Name.c_str());
      }
      return 0;
    }
    if (Arg == "--cfg") {
      PrintCfg = true;
      continue;
    }
    if (Arg == "--run") {
      RunProgram = true;
      continue;
    }
    if (!Arg.empty() && (Arg[0] == '+' || Arg[0] == '-')) {
      if (!Options.Flags.parse(Arg)) {
        fprintf(stderr, "memlint: unknown flag '%s' (try --flags)\n",
                Arg.c_str());
        return 126;
      }
      continue;
    }
    Files.push_back(Arg);
  }

  if (Files.empty()) {
    fprintf(stderr,
            "usage: memlint [+flag|-flag]... [--cfg] [--run] file.c...\n");
    return 126;
  }

  VFS Vfs;
  for (const std::string &File : Files) {
    if (!Vfs.addFromDisk(File)) {
      fprintf(stderr, "memlint: cannot read '%s'\n", File.c_str());
      return 126;
    }
  }

  if (PrintCfg || RunProgram) {
    Frontend FE;
    TranslationUnit *TU = FE.parseProgram(Vfs, Files);
    if (!FE.diags().empty())
      printf("%s", FE.diags().str().c_str());
    if (PrintCfg) {
      for (const FunctionDecl *FD : TU->definedFunctions())
        if (auto G = CFG::build(FD))
          printf("%s\n", G->print().c_str());
    }
    if (RunProgram) {
      Interpreter Interp(*TU);
      RunResult R = Interp.run();
      printf("%s", R.Output.c_str());
      printf("-- run %s, exit code %ld, %lu steps\n",
             R.Completed ? "completed" : "aborted", R.ExitCode, R.Steps);
      for (const RuntimeError &E : R.Errors)
        printf("%s\n", E.str().c_str());
      return R.Errors.empty() ? 0 : 1;
    }
    return 0;
  }

  CheckResult R = Checker::checkFiles(Vfs, Files, Options);
  printf("%s", R.render().c_str());
  printf("-- %u anomaly(ies), %u suppressed\n", R.anomalyCount(),
         R.SuppressedCount);
  if (R.Status != CheckStatus::Ok) {
    std::string Reasons;
    for (const std::string &Reason : R.DegradationReasons)
      Reasons += (Reasons.empty() ? "" : ", ") + Reason;
    printf("-- check %s (%s); results are partial\n",
           checkStatusName(R.Status), Reasons.c_str());
  }
  unsigned Count = R.anomalyCount();
  return Count > 125 ? 125 : static_cast<int>(Count);
}
