//===--- memlint_tool.cpp - Command-line checker -----------------------------===//
//
// Part of memlint. See DESIGN.md.
//
// An LCLint-style command-line driver:
//
//   memlint [+flag|-flag]... file.c [file2.c ...]
//   memlint --cfg file.c        print each function's control-flow graph
//                               (the paper's Figure 6 view)
//   memlint --run file.c        execute with the run-time checking baseline
//   memlint --flags             list the known flags
//
// Batch mode (enabled by any of the options below) checks every file as an
// independent run on a worker pool, with per-file deadlines, one retry
// with halved limits for files that time out or crash, and a resumable
// run journal:
//
//   memlint -j8 file1.c file2.c ...             8 worker threads
//   memlint -j4 -file-deadline-ms=2000 ...      2s wall clock per file
//   memlint -j4 --journal run.jsonl ...         record outcomes
//   memlint -j4 --resume run.jsonl ...          skip files already done
//
// Observability (see DESIGN.md):
//
//   memlint -format=sarif file.c        findings as a SARIF 2.1.0 document
//   memlint -format=jsonl file.c        findings as JSON Lines
//   memlint -trace-states=fn file.c     trace fn's state transitions (stderr)
//   memlint --metrics-out=m.json ...    phase timings + counters to a file
//
// Diagnostics are flushed in input order, so batch output is byte-identical
// across -jN; timing goes to stderr to keep stdout deterministic.
//
// Exit status is the number of anomalies (capped at 125), mirroring lint
// conventions; in batch mode timeouts and contained crashes do not count —
// only real check findings do.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "driver/BatchDriver.h"
#include "interp/Interpreter.h"
#include "support/FindingsOutput.h"
#include "support/Journal.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace memlint;

namespace {

/// Parses the digits of a "-j8" / "-file-deadline-ms=2000" style value.
/// \returns false on empty or non-numeric text.
bool parseCount(const std::string &Text, unsigned &Out) {
  if (Text.empty())
    return false;
  unsigned long Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<unsigned long>(C - '0');
    if (Value > 0xFFFFFFFFul)
      return false;
  }
  Out = static_cast<unsigned>(Value);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  CheckOptions Options;
  std::vector<std::string> Files;
  bool PrintCfg = false;
  bool RunProgram = false;
  bool BatchMode = false;
  BatchOptions Batch;
  std::string Format = "text";
  std::string MetricsOut;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--flags") {
      for (const std::string &Name : Options.Flags.knownFlags()) {
        // Limit flags carry a numeric value ("-limittokens=N"); check
        // toggles carry their on/off state.
        if (Options.Flags.isLimit(Name))
          printf("-%s=%u\n", Name.c_str(), Options.Flags.getLimit(Name));
        else
          printf("%c%s\n", Options.Flags.get(Name) ? '+' : '-', Name.c_str());
      }
      return 0;
    }
    if (Arg == "--cfg") {
      PrintCfg = true;
      continue;
    }
    if (Arg == "--run") {
      RunProgram = true;
      continue;
    }
    if (Arg.size() > 2 && Arg.compare(0, 2, "-j") == 0) {
      if (!parseCount(Arg.substr(2), Batch.Jobs) || Batch.Jobs == 0) {
        fprintf(stderr, "memlint: malformed job count '%s': expected -jN "
                        "with N >= 1\n",
                Arg.c_str());
        return 126;
      }
      BatchMode = true;
      continue;
    }
    if (Arg.compare(0, 18, "-file-deadline-ms=") == 0) {
      if (!parseCount(Arg.substr(18), Batch.FileDeadlineMs)) {
        fprintf(stderr, "memlint: malformed value in '%s': expected "
                        "-file-deadline-ms=N (0 disables the deadline)\n",
                Arg.c_str());
        return 126;
      }
      BatchMode = true;
      continue;
    }
    if (Arg == "--journal" || Arg == "--resume" ||
        Arg.compare(0, 10, "--journal=") == 0 ||
        Arg.compare(0, 9, "--resume=") == 0) {
      std::string Path;
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Path = Arg.substr(Eq + 1);
      } else if (I + 1 < argc) {
        Path = argv[++I];
      }
      if (Path.empty()) {
        fprintf(stderr, "memlint: %s needs a journal path\n",
                Arg.substr(0, Arg.find('=')).c_str());
        return 126;
      }
      Batch.JournalPath = Path;
      Batch.Resume = Arg.compare(0, 8, "--resume") == 0;
      BatchMode = true;
      continue;
    }
    if (Arg.compare(0, 8, "-format=") == 0) {
      Format = Arg.substr(8);
      if (Format != "text" && Format != "sarif" && Format != "jsonl") {
        fprintf(stderr, "memlint: unknown output format '%s': expected "
                        "-format=text|sarif|jsonl\n",
                Format.c_str());
        return 126;
      }
      continue;
    }
    if (Arg.compare(0, 14, "-trace-states=") == 0) {
      Options.TraceFunction = Arg.substr(14);
      if (Options.TraceFunction.empty()) {
        fprintf(stderr, "memlint: -trace-states= needs a function name\n");
        return 126;
      }
      continue;
    }
    if (Arg == "--metrics-out" || Arg.compare(0, 14, "--metrics-out=") == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        MetricsOut = Arg.substr(Eq + 1);
      } else if (I + 1 < argc) {
        MetricsOut = argv[++I];
      }
      if (MetricsOut.empty()) {
        fprintf(stderr, "memlint: --metrics-out needs an output path\n");
        return 126;
      }
      continue;
    }
    if (!Arg.empty() && (Arg[0] == '+' || Arg[0] == '-')) {
      std::string Error;
      if (!Options.Flags.parse(Arg, Error)) {
        fprintf(stderr, "memlint: %s\n", Error.c_str());
        return 126;
      }
      continue;
    }
    Files.push_back(Arg);
  }

  if (Files.empty()) {
    fprintf(stderr, "usage: memlint [+flag|-flag]... [--cfg] [--run] [-jN] "
                    "[-file-deadline-ms=N] [--journal FILE] [--resume FILE] "
                    "[-format=text|sarif|jsonl] [-trace-states=FN] "
                    "[--metrics-out FILE] file.c...\n");
    return 126;
  }
  if (BatchMode && (PrintCfg || RunProgram)) {
    fprintf(stderr, "memlint: batch options cannot be combined with --cfg "
                    "or --run\n");
    return 126;
  }
  if (BatchMode && Format != "text") {
    // Batch workers stream rendered text through the journal; structured
    // findings come from the single-run path (-format without -jN) or from
    // the journal itself.
    fprintf(stderr, "memlint: -format=%s cannot be combined with batch "
                    "options; run without -jN/--journal for structured "
                    "output\n",
            Format.c_str());
    return 126;
  }
  if (BatchMode && !Options.TraceFunction.empty()) {
    fprintf(stderr, "memlint: -trace-states= cannot be combined with batch "
                    "options; trace a single run\n");
    return 126;
  }
  if ((PrintCfg || RunProgram) &&
      (Format != "text" || !MetricsOut.empty() ||
       !Options.TraceFunction.empty())) {
    fprintf(stderr, "memlint: observability options apply to checking, not "
                    "--cfg or --run\n");
    return 126;
  }
  if (!MetricsOut.empty()) {
    Options.CollectMetrics = true;
    Batch.CollectMetrics = true;
  }
  if (!Options.TraceFunction.empty())
    Options.TraceSink = [](const std::string &Event) {
      fprintf(stderr, "-- trace %s\n", Event.c_str());
    };

  VFS Vfs;
  for (const std::string &File : Files) {
    if (!Vfs.addFromDisk(File)) {
      fprintf(stderr, "memlint: cannot read '%s'\n", File.c_str());
      return 126;
    }
  }

  if (BatchMode) {
    Batch.Check = Options;
    // Stream each file's diagnostics as soon as everything before it has
    // flushed: stdout stays in input order and byte-identical across -jN.
    Batch.OnFileOutcome = [](const FileOutcome &O) {
      printf("%s", O.Diagnostics.c_str());
      if (O.Kind != FileOutcomeKind::Ok) {
        std::string Reasons;
        for (const std::string &Reason : O.Reasons)
          Reasons += (Reasons.empty() ? "" : ", ") + Reason;
        printf("-- %s: %s (%s) after %u attempt(s); results are partial\n",
               O.File.c_str(), fileOutcomeName(O.Kind), Reasons.c_str(),
               O.Attempts);
      }
    };
    BatchDriver Driver(Batch);
    BatchResult R = Driver.run(Vfs, Files);
    printf("-- batch: %s\n", R.summary().c_str());
    // Timing and journal health are real but nondeterministic; they go to
    // stderr so stdout can be diffed across job counts and resumes.
    fprintf(stderr, "-- batch wall clock: %.1f ms at -j%u\n", R.WallMs,
            Batch.Jobs);
    if (!R.JournalNote.empty())
      fprintf(stderr, "-- journal: %s\n", R.JournalNote.c_str());
    if (R.JournalCorruptLines != 0)
      fprintf(stderr, "-- journal: %u corrupt line(s) discarded on resume\n",
              R.JournalCorruptLines);
    if (!MetricsOut.empty() &&
        !writeFileText(MetricsOut, R.Metrics.json() + "\n")) {
      fprintf(stderr, "memlint: cannot write metrics to '%s'\n",
              MetricsOut.c_str());
      return 126;
    }
    unsigned Count = R.TotalAnomalies;
    return Count > 125 ? 125 : static_cast<int>(Count);
  }

  if (PrintCfg || RunProgram) {
    Frontend FE;
    TranslationUnit *TU = FE.parseProgram(Vfs, Files);
    if (!FE.diags().empty())
      printf("%s", FE.diags().str().c_str());
    if (PrintCfg) {
      for (const FunctionDecl *FD : TU->definedFunctions())
        if (auto G = CFG::build(FD))
          printf("%s\n", G->print().c_str());
    }
    if (RunProgram) {
      Interpreter Interp(*TU);
      RunResult R = Interp.run();
      printf("%s", R.Output.c_str());
      printf("-- run %s, exit code %ld, %lu steps\n",
             R.Completed ? "completed" : "aborted", R.ExitCode, R.Steps);
      for (const RuntimeError &E : R.Errors)
        printf("%s\n", E.str().c_str());
      return R.Errors.empty() ? 0 : 1;
    }
    return 0;
  }

  CheckResult R = Checker::checkFiles(Vfs, Files, Options);
  std::string DegradedNote;
  if (R.Status != CheckStatus::Ok) {
    std::string Reasons;
    for (const std::string &Reason : R.DegradationReasons)
      Reasons += (Reasons.empty() ? "" : ", ") + Reason;
    DegradedNote = std::string("-- check ") + checkStatusName(R.Status) +
                   " (" + Reasons + "); results are partial\n";
  }
  if (Format == "sarif") {
    // Stdout is the SARIF document and nothing else; run health goes to
    // stderr so the output stays machine-parsable.
    printf("%s", renderSarif(R.Diagnostics).c_str());
    fprintf(stderr, "%s", DegradedNote.c_str());
  } else if (Format == "jsonl") {
    printf("%s", renderJsonl(R.Diagnostics).c_str());
    fprintf(stderr, "%s", DegradedNote.c_str());
  } else {
    printf("%s", R.render().c_str());
    printf("-- %u anomaly(ies), %u suppressed\n", R.anomalyCount(),
           R.SuppressedCount);
    printf("%s", DegradedNote.c_str());
  }
  if (!MetricsOut.empty() &&
      !writeFileText(MetricsOut, R.Metrics.json() + "\n")) {
    fprintf(stderr, "memlint: cannot write metrics to '%s'\n",
            MetricsOut.c_str());
    return 126;
  }
  unsigned Count = R.anomalyCount();
  return Count > 125 ? 125 : static_cast<int>(Count);
}
