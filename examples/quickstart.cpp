//===--- quickstart.cpp - First steps with the memlint library --------------===//
//
// Part of memlint. See DESIGN.md.
//
// Checks the paper's Figure 2 program with the library's one-call API and
// prints the resulting anomaly, then shows how a truenull guard (Figure 3)
// silences it. This is the 60-second introduction to the public API:
//
//   CheckOptions Options;                 // flags, defaults per the paper
//   CheckResult R = Checker::checkSource(Source);
//   for (const Diagnostic &D : R.Diagnostics) ... D.str() ...
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include <cstdio>

using namespace memlint;

int main() {
  // Figure 2 of the paper: the null annotation documents that setName may
  // be called with a null pointer; assigning it to the non-null global
  // gname is an anomaly at the function's exit point.
  const char *Figure2 = R"(extern char *gname;

void setName (/*@null@*/ char *pname)
{
  gname = pname;
}
)";

  printf("== checking sample.c (Figure 2) ==\n");
  CheckResult R = Checker::checkSource(Figure2, CheckOptions(), "sample.c");
  printf("%s", R.render().c_str());
  printf("-> %u anomaly(ies)\n\n", R.anomalyCount());

  // Figure 3: guarding the assignment with a truenull test function fixes
  // the anomaly — the analysis understands the guard.
  const char *Figure3 = R"(extern char *gname;
extern /*@truenull@*/ int isNull (/*@null@*/ char *x);

void setName (/*@null@*/ char *pname)
{
  if (!isNull (pname))
    {
      gname = pname;
    }
}
)";

  printf("== checking the guarded version (Figure 3) ==\n");
  CheckResult Fixed = Checker::checkSource(Figure3, CheckOptions(),
                                           "sample.c");
  printf("%s", Fixed.render().c_str());
  printf("-> %u anomaly(ies)\n\n", Fixed.anomalyCount());

  // Flags adjust the checking policy, e.g. for garbage-collected programs
  // release obligations are not enforced (paper Section 3).
  const char *Leaky = R"(int keepTwo(void)
{
  char *p = (char *) malloc(10);
  p = (char *) malloc(20);
  return p == NULL;
}
)";
  CheckOptions GC;
  GC.Flags.set("gcmode", true);
  printf("== gcmode: leak checking off ==\n");
  printf("default flags: %u anomaly(ies); gcmode: %u anomaly(ies)\n",
         Checker::checkSource(Leaky).anomalyCount(),
         Checker::checkSource(Leaky, GC).anomalyCount());
  return 0;
}
