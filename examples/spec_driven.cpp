//===--- spec_driven.cpp - Checking against an LCL specification --------------===//
//
// Part of memlint. See DESIGN.md.
//
// The paper's other annotation vehicle: "We can use annotations in LCL
// specifications, or directly in the source code as syntactic comments."
// This example writes an interface specification in (minimal) LCL, then
// checks two candidate implementations against it — one correct, one that
// violates the specification's memory contract.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include <cstdio>

using namespace memlint;

int main() {
  // The specification: a string-table interface. Annotation words appear
  // bare, as in the paper's "null out only void *malloc (size_t size)".
  const char *Spec = R"(imports stdlib;

only char *table_format(temp char *name, int value);

void table_store(only char *entry);

int table_lookup(temp char *name) {
  requires wellFormed(name);
}
)";

  const char *GoodImpl = R"(/* interface comes from table.lcl, checked first */

static /*@null@*/ /*@only@*/ char *lastEntry = NULL;

char *table_format(char *name, int value)
{
  char *buf = (char *) malloc(64);
  if (buf == NULL)
    {
      exit(EXIT_FAILURE);
    }
  strcpy(buf, name);
  return buf;
}

void table_store(char *entry)
{
  if (lastEntry != NULL)
    {
      free((void *) lastEntry);
    }
  lastEntry = entry;
}

int table_lookup(char *name)
{
  if (lastEntry == NULL)
    {
      return FALSE;
    }
  return strcmp(lastEntry, name) == 0;
}
)";

  // The bad implementation drops table_format's result obligation (the
  // buffer is overwritten before the first is released) and keeps using
  // entry storage after handing it to free.
  const char *BadImpl = R"(/* interface comes from table.lcl, checked first */

char *table_format(char *name, int value)
{
  char *buf = (char *) malloc(64);
  if (buf == NULL)
    {
      exit(EXIT_FAILURE);
    }
  strcpy(buf, name);
  buf = (char *) malloc(64);
  if (buf == NULL)
    {
      exit(EXIT_FAILURE);
    }
  strcpy(buf, name);
  return buf;
}

void table_store(char *entry)
{
  free((void *) entry);
  entry[0] = '\0';
}

int table_lookup(char *name)
{
  return 0;
}
)";

  auto run = [&](const char *Title, const char *Impl) {
    VFS Files;
    Files.add("table.lcl", Spec);
    Files.add("table.c", Impl);
    CheckResult R = Checker::checkFiles(Files, {"table.lcl", "table.c"});
    printf("== %s ==\n%s-> %u anomaly(ies)\n\n", Title, R.render().c_str(),
           R.anomalyCount());
  };

  printf("Interface specification (table.lcl):\n%s\n", Spec);
  run("conforming implementation", GoodImpl);
  run("violating implementation", BadImpl);
  return 0;
}
