//===--- static_vs_runtime.cpp - Section 7's two worlds ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
// Demonstrates the paper's experience-section comparison: the static
// checker finds annotation-visible bugs without running a single test,
// while the run-time baseline (our stand-in for dmalloc/Purify) catches
// the classes the 1996 checker missed — freeing offset pointers, freeing
// static storage, and global-reachable storage never released before exit
// — but only when the right path executes.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace memlint;
using namespace memlint::corpus;

int main() {
  printf("%-22s | %-16s | %-16s\n", "seeded bug class", "static checker",
         "run-time baseline");
  printf("%-22s-+-%-16s-+-%-16s\n", "----------------------",
         "----------------", "-----------------");

  for (BugKind Kind : allBugKinds()) {
    Program P = seededBug(Kind);

    // Static: check without executing.
    CheckResult Static = Checker::checkFiles(P.Files, P.MainFiles);

    // Dynamic: parse and execute under the tracking interpreter.
    Frontend FE;
    TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
    Interpreter Interp(*TU);
    RunResult Run = Interp.run();

    printf("%-22s | %-16s | %-16s\n", bugKindName(Kind),
           Static.anomalyCount() ? "DETECTED" : "missed",
           Run.Errors.empty() ? "missed" : "DETECTED");
  }

  printf("\nWith the later 'illegalfree' improvement the static checker "
         "catches two more classes:\n");
  CheckOptions Later;
  Later.Flags.set("illegalfree", true);
  for (BugKind Kind : {BugKind::OffsetFree, BugKind::StaticFree}) {
    Program P = seededBug(Kind);
    CheckResult R = Checker::checkFiles(P.Files, P.MainFiles, Later);
    printf("  %-20s -> %s\n", bugKindName(Kind),
           R.anomalyCount() ? "DETECTED" : "missed");
  }

  printf("\nAnd the full employee database runs cleanly under the baseline "
         "except for the\npool storage reachable from statics — the exact "
         "class the paper says run-time\ntools found after static checking "
         "was done:\n");
  Program Db = employeeDb(DbVersion::Fixed);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(Db.Files, Db.MainFiles);
  Interpreter Interp(*TU);
  RunResult Run = Interp.run();
  for (const RuntimeError &E : Run.Errors)
    printf("  %s\n", E.str().c_str());
  return 0;
}
