//===--- AnnotationInfer.cpp - Bottom-up annotation inference --------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnnotationInfer.h"

#include "analysis/CallGraph.h"
#include "support/Casting.h"
#include "support/MonotonicTime.h"

#include <algorithm>
#include <map>
#include <set>

using namespace memlint;

namespace {

//===----------------------------------------------------------------------===//
// Observation
//===----------------------------------------------------------------------===//

/// Collects the per-parameter and per-return facts of one function check.
class InferObserver : public CheckObserver {
public:
  std::set<unsigned> Consumed;   ///< param indices passed as only/keep
  std::set<unsigned> NullTested; ///< param indices tested against null
  std::set<unsigned> Derefed;    ///< param indices dereferenced
  std::set<unsigned> Returned;   ///< param indices the result may alias
  bool RetHoldsObligation = false;
  bool RetMayBeNull = false;
  bool RetNullConst = false;

  void observeParamConsumed(const ParmVarDecl *P) override {
    Consumed.insert(P->index());
  }
  void observeParamNullTested(const ParmVarDecl *P) override {
    NullTested.insert(P->index());
  }
  void observeParamDeref(const ParmVarDecl *P) override {
    Derefed.insert(P->index());
  }
  void observeReturn(const ReturnFact &Fact) override {
    RetHoldsObligation |= Fact.HoldsObligation;
    RetMayBeNull |= Fact.MayBeNull;
    RetNullConst |= Fact.IsNullConst;
    if (Fact.ReturnedParam)
      Returned.insert(Fact.ReturnedParam->index());
  }
};

/// One proposed annotation word; Slot is a parameter index or -1 for the
/// return value.
struct Candidate {
  int Slot;
  const char *Word;
};

/// Saved annotation state of one function, for revert.
struct Saved {
  Annotations Return;
  std::vector<Annotations> Params;
};

Saved snapshot(const FunctionDecl *FD) {
  Saved S;
  S.Return = FD->returnAnnotations();
  for (const ParmVarDecl *P : FD->params())
    S.Params.push_back(P->declAnnotations());
  return S;
}

void restore(const FunctionDecl *FD, const Saved &S) {
  const_cast<FunctionDecl *>(FD)->setReturnAnnotations(S.Return);
  for (size_t I = 0; I < FD->params().size(); ++I)
    FD->params()[I]->setAnnotations(S.Params[I]);
}

/// Applies one candidate word; returns false if it cannot be added (the
/// category filled up since derivation — only possible mid-fallback).
bool applyCandidate(const FunctionDecl *FD, const Candidate &C) {
  if (C.Slot < 0) {
    Annotations A = FD->returnAnnotations();
    if (!A.addWord(C.Word))
      return false;
    const_cast<FunctionDecl *>(FD)->setReturnAnnotations(A);
    return true;
  }
  ParmVarDecl *P = FD->params()[static_cast<size_t>(C.Slot)];
  Annotations A = P->declAnnotations();
  if (!A.addWord(C.Word))
    return false;
  P->setAnnotations(A);
  return true;
}

//===----------------------------------------------------------------------===//
// Syntactic truenull/falsenull matching
//===----------------------------------------------------------------------===//

const Expr *stripParensCasts(const Expr *E) {
  while (true) {
    E = E->ignoreParens();
    if (const auto *CE = dyn_cast<CastExpr>(E)) {
      E = CE->sub();
      continue;
    }
    return E;
  }
}

bool isNullConstExpr(const Expr *E) {
  E = stripParensCasts(E);
  const auto *IL = dyn_cast<IntegerLiteralExpr>(E);
  return IL && IL->value() == 0;
}

/// +1: E is "P is null" (p == NULL, !p). -1: E is "P is non-null"
/// (p != NULL, bare p). 0: neither.
int nullTestPolarity(const Expr *E, const ParmVarDecl *P) {
  E = stripParensCasts(E);
  auto refersToParam = [&](const Expr *X) {
    const auto *DR = dyn_cast<DeclRefExpr>(stripParensCasts(X));
    return DR && DR->decl() == P;
  };
  if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
    if (UE->op() == UnaryOp::Not && refersToParam(UE->sub()))
      return +1;
    return 0;
  }
  if (const auto *BE = dyn_cast<BinaryExpr>(E)) {
    if (!isEqualityOp(BE->op()))
      return 0;
    const Expr *Tested = nullptr;
    if (isNullConstExpr(BE->rhs()))
      Tested = BE->lhs();
    else if (isNullConstExpr(BE->lhs()))
      Tested = BE->rhs();
    if (!Tested || !refersToParam(Tested))
      return 0;
    return BE->op() == BinaryOp::EQ ? +1 : -1;
  }
  return 0;
}

void collectReturns(const Stmt *S, std::vector<const ReturnStmt *> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      collectReturns(Sub, Out);
    return;
  case Stmt::StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    collectReturns(IS->thenStmt(), Out);
    collectReturns(IS->elseStmt(), Out);
    return;
  }
  case Stmt::StmtKind::While:
    collectReturns(cast<WhileStmt>(S)->body(), Out);
    return;
  case Stmt::StmtKind::Do:
    collectReturns(cast<DoStmt>(S)->body(), Out);
    return;
  case Stmt::StmtKind::For:
    collectReturns(cast<ForStmt>(S)->body(), Out);
    return;
  case Stmt::StmtKind::Switch:
    for (const SwitchStmt::CaseSection &Sec :
         cast<SwitchStmt>(S)->sections())
      for (const Stmt *Sub : Sec.Body)
        collectReturns(Sub, Out);
    return;
  case Stmt::StmtKind::Return:
    Out.push_back(cast<ReturnStmt>(S));
    return;
  default:
    return;
  }
}

/// Detects a null-test predicate: an int-returning function with exactly
/// one pointer parameter whose every return value is the same-polarity
/// syntactic null test of that parameter. \returns "truenull", "falsenull",
/// or null.
const char *detectNullPredicate(const FunctionDecl *FD) {
  if (FD->returnType().isPointer() || FD->returnType().isVoid())
    return nullptr;
  const ParmVarDecl *PtrParam = nullptr;
  for (const ParmVarDecl *P : FD->params()) {
    if (!P->type().isPointer())
      continue;
    if (PtrParam)
      return nullptr; // more than one pointer parameter: ambiguous
    PtrParam = P;
  }
  if (!PtrParam)
    return nullptr;
  std::vector<const ReturnStmt *> Returns;
  collectReturns(FD->body(), Returns);
  if (Returns.empty())
    return nullptr;
  int Polarity = 0;
  for (const ReturnStmt *RS : Returns) {
    if (!RS->value())
      return nullptr;
    int P = nullTestPolarity(RS->value(), PtrParam);
    if (P == 0 || (Polarity != 0 && P != Polarity))
      return nullptr;
    Polarity = P;
  }
  return Polarity > 0 ? "truenull" : "falsenull";
}

//===----------------------------------------------------------------------===//
// Anomaly keys
//===----------------------------------------------------------------------===//

std::set<std::string> anomalyKeys(const DiagnosticEngine &Diags) {
  std::set<std::string> Keys;
  for (const Diagnostic &D : Diags.diagnostics())
    Keys.insert(std::string(checkIdFlagName(D.Id)) + "|" + D.Loc.str() +
                "|" + D.Message);
  return Keys;
}

bool introducesNewKey(const std::set<std::string> &After,
                      const std::set<std::string> &Baseline) {
  for (const std::string &K : After)
    if (!Baseline.count(K))
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Derivation and verification
//===----------------------------------------------------------------------===//

bool AnnotationInfer::inferFunction(const FunctionDecl *FD,
                                    InferStats &Stats) {
  // Observe the function's transfer behavior under its current annotations
  // (callees already carry inferred interfaces, bottom-up). The same run
  // yields the anomaly baseline the verification step compares against.
  InferObserver Obs;
  DiagnosticEngine BaseDiags;
  std::set<std::string> Baseline;
  try {
    FunctionChecker FC(TU, Flags, BaseDiags, Budget);
    FC.setObserver(&Obs);
    FC.checkFunction(FD);
    Baseline = anomalyKeys(BaseDiags);
  } catch (const std::exception &) {
    ++Stats.Errors;
    return false;
  }

  // Derive candidates for categories the user (or an earlier inference
  // pass) left unspecified.
  std::vector<Candidate> Candidates;
  for (const ParmVarDecl *P : FD->params()) {
    if (!P->type().isPointer())
      continue;
    const unsigned I = P->index();
    Annotations Eff = P->effectiveAnnotations();
    if (Eff.Alloc == AllocAnn::Unspecified) {
      if (Obs.Consumed.count(I))
        Candidates.push_back({static_cast<int>(I), "only"});
      else
        Candidates.push_back({static_cast<int>(I), "temp"});
    }
    if (Eff.Null == NullAnn::Unspecified) {
      if (Obs.NullTested.count(I))
        Candidates.push_back({static_cast<int>(I), "null"});
      else if (Obs.Derefed.count(I))
        Candidates.push_back({static_cast<int>(I), "notnull"});
    }
    if (!Eff.Returned && Obs.Returned.count(I))
      Candidates.push_back({static_cast<int>(I), "returned"});
  }
  if (FD->returnType().isPointer()) {
    Annotations REff = FD->effectiveReturnAnnotations();
    if (REff.Alloc == AllocAnn::Unspecified && Obs.RetHoldsObligation)
      Candidates.push_back({-1, "only"});
    if (REff.Null == NullAnn::Unspecified &&
        (Obs.RetNullConst || Obs.RetMayBeNull))
      Candidates.push_back({-1, "null"});
  } else {
    Annotations REff = FD->effectiveReturnAnnotations();
    if (!REff.TrueNull && !REff.FalseNull)
      if (const char *Word = detectNullPredicate(FD))
        Candidates.push_back({-1, Word});
  }
  if (Candidates.empty())
    return false;

  // Verify: re-check with the candidates applied; any anomaly the plain
  // function did not produce rejects them (then retry one word at a time,
  // keeping the subset that stays anomaly-free).
  Saved Before = snapshot(FD);
  auto verifies = [&]() {
    DiagnosticEngine After;
    FunctionChecker FC(TU, Flags, After, Budget);
    FC.checkFunction(FD);
    return !introducesNewKey(anomalyKeys(After), Baseline);
  };

  try {
    for (const Candidate &C : Candidates)
      applyCandidate(FD, C);
    if (verifies()) {
      Stats.AnnotationsAdded += static_cast<unsigned>(Candidates.size());
      return true;
    }
    restore(FD, Before);
    bool Any = false;
    for (const Candidate &C : Candidates) {
      Saved Step = snapshot(FD);
      if (!applyCandidate(FD, C))
        continue;
      if (verifies()) {
        ++Stats.AnnotationsAdded;
        Any = true;
      } else {
        restore(FD, Step);
        ++Stats.Rejected;
      }
    }
    return Any;
  } catch (const std::exception &) {
    restore(FD, Before);
    ++Stats.Errors;
    return false;
  }
}

InferStats AnnotationInfer::run() {
  InferStats Stats;
  CallGraph CG(TU);
  Stats.SCCs = static_cast<unsigned>(CG.bottomUpSCCs().size());
  for (const auto &SCC : CG.bottomUpSCCs()) {
    Stats.MaxSCCSize =
        std::max(Stats.MaxSCCSize, static_cast<unsigned>(SCC.size()));
    Stats.Functions += static_cast<unsigned>(SCC.size());
    // Recursive SCCs iterate to a fixpoint: a member's inferred interface
    // changes what its co-members observe. The derivation is monotone
    // (only unspecified categories are ever filled), so the iteration
    // count is bounded by the number of annotation slots; the cap is a
    // safety net.
    const bool Recursive = SCC.size() > 1 || CG.isRecursive(SCC.front());
    const unsigned MaxIterations = Recursive ? 4 : 1;
    for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
      ++Stats.Iterations;
      bool Changed = false;
      for (const FunctionDecl *FD : SCC) {
        const double StartMs = Metrics ? monotonicNowMs() : 0;
        Changed = inferFunction(FD, Stats) || Changed;
        if (Metrics) {
          const double Ms = monotonicNowMs() - StartMs;
          Metrics->addTimeMs("infer.function", Ms);
          Metrics->recordLatencyMs("hist.infer.function", Ms);
        }
      }
      if (!Changed)
        break;
    }
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// Header rendering
//===----------------------------------------------------------------------===//

std::string AnnotationInfer::renderDecl(const FunctionDecl *FD) {
  std::string Out =
      FD->storageClass() == StorageClass::Static ? "static " : "extern ";
  const std::string RA = FD->returnAnnotations().str();
  if (!RA.empty())
    Out += RA + " ";
  const std::string RT = FD->returnType().str();
  Out += RT;
  if (!RT.empty() && RT.back() != '*')
    Out += " ";
  Out += FD->name() + "(";
  if (FD->params().empty() && !FD->isVariadic())
    Out += "void";
  for (size_t I = 0; I < FD->params().size(); ++I) {
    if (I)
      Out += ", ";
    const ParmVarDecl *P = FD->params()[I];
    const std::string PA = P->declAnnotations().str();
    if (!PA.empty())
      Out += PA + " ";
    const std::string PT = P->type().str();
    Out += PT;
    if (!P->name().empty()) {
      if (!PT.empty() && PT.back() != '*')
        Out += " ";
      Out += P->name();
    }
  }
  if (FD->isVariadic())
    Out += FD->params().empty() ? "..." : ", ...";
  Out += ");";
  return Out;
}

std::string AnnotationInfer::renderHeader() const {
  std::string Out;
  for (const FunctionDecl *FD : TU.definedFunctions()) {
    Out += renderDecl(FD);
    Out += "\n";
  }
  return Out;
}
