//===--- AnnotationInfer.h - Bottom-up annotation inference -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up inference of interface annotations (DESIGN.md §6h). The paper's
/// adoption cost is hand-writing /*@only@*/, /*@null@*/ etc.; this pass
/// recovers candidate parameter and return annotations from each function's
/// observed transfer behavior in the storage model:
///
///   param only      — storage rooted in the parameter was passed as an
///                     only/keep parameter of a callee (obligation left)
///   param null      — the parameter was tested against null
///   param notnull   — dereferenced and never null-tested (explicit default)
///   param temp      — pointer parameter neither consumed nor annotated
///                     (explicit default)
///   param returned  — the result may alias the parameter
///   return only     — a returned value carried a release obligation
///   return null     — a null constant (or possibly-null value) is returned
///   truenull /      — an int-returning one-pointer-parameter function whose
///   falsenull         every return is the syntactic null test of that param
///
/// The worklist runs in bottom-up SCC order over the call graph (callees
/// first) with fixpoint iteration inside recursive SCCs, so callers are
/// observed after their callees already carry inferred interfaces.
///
/// Every candidate set is verified before it sticks: the function is
/// re-checked with the candidates applied, and if any anomaly appears that
/// the un-inferred function did not produce, the candidates are rejected
/// (falling back to accepting the largest per-word subset that stays
/// anomaly-free). Inference therefore never introduces a new false
/// positive on the code it ran on. Only annotation categories the user
/// left unspecified are ever filled in.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_ANNOTATIONINFER_H
#define MEMLINT_ANALYSIS_ANNOTATIONINFER_H

#include "analysis/FunctionChecker.h"
#include "ast/AST.h"
#include "support/Diagnostics.h"
#include "support/Flags.h"
#include "support/Limits.h"

#include <string>

namespace memlint {

/// Counters describing one inference run (folded into metrics as infer.*).
struct InferStats {
  unsigned Functions = 0;        ///< defined functions visited
  unsigned SCCs = 0;             ///< strongly connected components
  unsigned MaxSCCSize = 0;       ///< largest SCC
  unsigned Iterations = 0;       ///< total worklist passes over SCCs
  unsigned AnnotationsAdded = 0; ///< annotation words accepted
  unsigned Rejected = 0;         ///< candidate words rejected by verification
  unsigned Errors = 0;           ///< functions skipped on internal error
};

/// Runs bottom-up annotation inference over a parsed translation unit,
/// mutating parameter/return annotations of defined functions in place so a
/// subsequent FunctionChecker::checkAll sees them as if user-written.
class AnnotationInfer {
public:
  AnnotationInfer(const TranslationUnit &TU, const FlagSet &Flags,
                  BudgetState *Budget = nullptr)
      : TU(TU), Flags(Flags), Budget(Budget) {}

  /// Attaches a metrics registry: run() then accumulates the per-function
  /// inference time into the "infer.function" timer and the
  /// "hist.infer.function" latency histogram. Null (the default) keeps the
  /// pass free of clock reads.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

  /// Runs inference to fixpoint. Safe to call once per instance.
  InferStats run();

  /// Renders the inferred interface of every defined function as an
  /// annotated header (one extern declaration per function, source order).
  /// Deterministic: depends only on the post-run AST. Intended to be
  /// re-checked together with (after) the sources that produced it, so
  /// typedef names are already in scope.
  std::string renderHeader() const;

  /// Renders one function's declaration line (no trailing newline).
  static std::string renderDecl(const FunctionDecl *FD);

  /// Version tag mixed into the check-options fingerprint so cached results
  /// can never mix inferred and plain runs. Bump on any change to the
  /// derivation rules or header rendering.
  static const char *version() { return "infer-v1"; }

private:
  bool inferFunction(const FunctionDecl *FD, InferStats &Stats);

  const TranslationUnit &TU;
  const FlagSet &Flags;
  BudgetState *Budget;
  MetricsRegistry *Metrics = nullptr;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_ANNOTATIONINFER_H
