//===--- CallGraph.cpp - Inter-procedural call graph and SCCs --------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "support/Casting.h"

#include <algorithm>

using namespace memlint;

CallGraph::CallGraph(const TranslationUnit &TU) {
  for (const FunctionDecl *FD : TU.definedFunctions()) {
    Nodes.push_back(FD);
    Callees[FD]; // materialize so callees() is total over nodes
  }
  for (const FunctionDecl *FD : Nodes)
    collectCalls(FD, FD->body());
  computeSCCs();
}

const std::vector<const FunctionDecl *> &
CallGraph::callees(const FunctionDecl *FD) const {
  static const std::vector<const FunctionDecl *> Empty;
  auto It = Callees.find(FD);
  return It == Callees.end() ? Empty : It->second;
}

const std::vector<const FunctionDecl *> &
CallGraph::callers(const FunctionDecl *FD) const {
  static const std::vector<const FunctionDecl *> Empty;
  auto It = Callers.find(FD);
  return It == Callers.end() ? Empty : It->second;
}

bool CallGraph::isRecursive(const FunctionDecl *FD) const {
  auto It = SCCIndex.find(FD);
  if (It == SCCIndex.end())
    return false;
  if (SCCs[It->second].size() > 1)
    return true;
  const auto &Out = callees(FD);
  return std::find(Out.begin(), Out.end(), FD) != Out.end();
}

void CallGraph::addEdge(const FunctionDecl *Caller,
                        const FunctionDecl *Callee) {
  std::vector<const FunctionDecl *> &Out = Callees[Caller];
  if (std::find(Out.begin(), Out.end(), Callee) != Out.end())
    return;
  Out.push_back(Callee);
  Callers[Callee].push_back(Caller);
}

void CallGraph::collectCallsExpr(const FunctionDecl *Caller, const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::ExprKind::Paren:
    collectCallsExpr(Caller, cast<ParenExpr>(E)->sub());
    return;
  case Expr::ExprKind::Unary:
    collectCallsExpr(Caller, cast<UnaryExpr>(E)->sub());
    return;
  case Expr::ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    collectCallsExpr(Caller, BE->lhs());
    collectCallsExpr(Caller, BE->rhs());
    return;
  }
  case Expr::ExprKind::Call: {
    const auto *CE = cast<CallExpr>(E);
    if (const FunctionDecl *Callee = CE->directCallee())
      addEdge(Caller, Callee);
    else
      collectCallsExpr(Caller, CE->callee());
    for (const Expr *A : CE->args())
      collectCallsExpr(Caller, A);
    return;
  }
  case Expr::ExprKind::Member:
    collectCallsExpr(Caller, cast<MemberExpr>(E)->base());
    return;
  case Expr::ExprKind::ArraySubscript: {
    const auto *AE = cast<ArraySubscriptExpr>(E);
    collectCallsExpr(Caller, AE->base());
    collectCallsExpr(Caller, AE->index());
    return;
  }
  case Expr::ExprKind::Cast:
    collectCallsExpr(Caller, cast<CastExpr>(E)->sub());
    return;
  case Expr::ExprKind::Sizeof:
    collectCallsExpr(Caller, cast<SizeofExpr>(E)->argExpr());
    return;
  case Expr::ExprKind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    collectCallsExpr(Caller, CE->cond());
    collectCallsExpr(Caller, CE->trueExpr());
    collectCallsExpr(Caller, CE->falseExpr());
    return;
  }
  case Expr::ExprKind::InitList:
    for (const Expr *I : cast<InitListExpr>(E)->inits())
      collectCallsExpr(Caller, I);
    return;
  default:
    return; // leaves: literals, DeclRef
  }
}

void CallGraph::collectCalls(const FunctionDecl *Caller, const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      collectCalls(Caller, Sub);
    return;
  case Stmt::StmtKind::Decl:
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls())
      collectCallsExpr(Caller, VD->init());
    return;
  case Stmt::StmtKind::Expr:
    collectCallsExpr(Caller, cast<ExprStmt>(S)->expr());
    return;
  case Stmt::StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    collectCallsExpr(Caller, IS->cond());
    collectCalls(Caller, IS->thenStmt());
    collectCalls(Caller, IS->elseStmt());
    return;
  }
  case Stmt::StmtKind::While: {
    const auto *WS = cast<WhileStmt>(S);
    collectCallsExpr(Caller, WS->cond());
    collectCalls(Caller, WS->body());
    return;
  }
  case Stmt::StmtKind::Do: {
    const auto *DS = cast<DoStmt>(S);
    collectCalls(Caller, DS->body());
    collectCallsExpr(Caller, DS->cond());
    return;
  }
  case Stmt::StmtKind::For: {
    const auto *FS = cast<ForStmt>(S);
    collectCalls(Caller, FS->init());
    collectCallsExpr(Caller, FS->cond());
    collectCallsExpr(Caller, FS->inc());
    collectCalls(Caller, FS->body());
    return;
  }
  case Stmt::StmtKind::Return:
    collectCallsExpr(Caller, cast<ReturnStmt>(S)->value());
    return;
  case Stmt::StmtKind::Switch: {
    const auto *SS = cast<SwitchStmt>(S);
    collectCallsExpr(Caller, SS->cond());
    for (const SwitchStmt::CaseSection &Sec : SS->sections()) {
      for (const Expr *L : Sec.Labels)
        collectCallsExpr(Caller, L);
      for (const Stmt *Sub : Sec.Body)
        collectCalls(Caller, Sub);
    }
    return;
  }
  case Stmt::StmtKind::Break:
  case Stmt::StmtKind::Continue:
  case Stmt::StmtKind::Null:
    return;
  }
}

void CallGraph::computeSCCs() {
  // Iterative Tarjan over the defined-function subgraph; edges to callees
  // without a body are skipped (they cannot be on a cycle we can observe).
  struct NodeState {
    unsigned Index = 0;
    unsigned LowLink = 0;
    bool Visited = false;
    bool OnStack = false;
  };
  std::map<const FunctionDecl *, NodeState> State;
  std::vector<const FunctionDecl *> Stack;
  unsigned NextIndex = 0;
  std::map<const FunctionDecl *, size_t> SourceOrder;
  for (size_t I = 0; I < Nodes.size(); ++I)
    SourceOrder[Nodes[I]] = I;

  struct Frame {
    const FunctionDecl *Node;
    size_t ChildIdx;
  };

  for (const FunctionDecl *Root : Nodes) {
    if (State[Root].Visited)
      continue;
    std::vector<Frame> Frames;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      NodeState &NS = State[F.Node];
      if (!NS.Visited) {
        NS.Visited = true;
        NS.Index = NS.LowLink = NextIndex++;
        NS.OnStack = true;
        Stack.push_back(F.Node);
      }
      const auto &Out = callees(F.Node);
      bool Descended = false;
      while (F.ChildIdx < Out.size()) {
        const FunctionDecl *Child = Out[F.ChildIdx];
        ++F.ChildIdx;
        if (!Child->isDefinition())
          continue;
        NodeState &CS = State[Child];
        if (!CS.Visited) {
          Frames.push_back({Child, 0});
          Descended = true;
          break;
        }
        if (CS.OnStack)
          NS.LowLink = std::min(NS.LowLink, CS.Index);
      }
      if (Descended)
        continue;
      // All children done: pop an SCC if this is its root, then propagate
      // the lowlink to the parent frame.
      if (NS.LowLink == NS.Index) {
        std::vector<const FunctionDecl *> SCC;
        while (true) {
          const FunctionDecl *Member = Stack.back();
          Stack.pop_back();
          State[Member].OnStack = false;
          SCC.push_back(Member);
          if (Member == F.Node)
            break;
        }
        // Keep members in source order for deterministic worklists.
        std::sort(SCC.begin(), SCC.end(),
                  [&](const FunctionDecl *A, const FunctionDecl *B) {
                    return SourceOrder[A] < SourceOrder[B];
                  });
        for (const FunctionDecl *Member : SCC)
          SCCIndex[Member] = static_cast<unsigned>(SCCs.size());
        SCCs.push_back(std::move(SCC));
      }
      const FunctionDecl *Done = F.Node;
      Frames.pop_back();
      if (!Frames.empty()) {
        NodeState &PS = State[Frames.back().Node];
        PS.LowLink = std::min(PS.LowLink, State[Done].LowLink);
      }
    }
  }
}
