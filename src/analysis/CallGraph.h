//===--- CallGraph.h - Inter-procedural call graph and SCCs -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inter-procedural call graph over a translation unit's function
/// definitions, with Tarjan strongly-connected components and a bottom-up
/// (callee-first) worklist order. Annotation inference (DESIGN.md §6h)
/// drives its funcQueue in this order so a function's callees carry their
/// inferred interfaces before the function itself is observed.
///
/// Edges point from caller to callee and only direct calls are recorded
/// (calls through function pointers have no static callee). Callees without
/// a body (library functions, externs defined elsewhere) appear in callee
/// lists but not in the SCC order — they have no observable body, so the
/// worklist has nothing to infer from them.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_CALLGRAPH_H
#define MEMLINT_ANALYSIS_CALLGRAPH_H

#include "ast/AST.h"

#include <map>
#include <vector>

namespace memlint {

class CallGraph {
public:
  /// Builds the graph from every function definition in \p TU by walking
  /// bodies for direct calls.
  explicit CallGraph(const TranslationUnit &TU);

  /// Direct callees of \p FD, in first-call source order, deduplicated.
  const std::vector<const FunctionDecl *> &
  callees(const FunctionDecl *FD) const;

  /// Direct callers of \p FD, in discovery order, deduplicated.
  const std::vector<const FunctionDecl *> &
  callers(const FunctionDecl *FD) const;

  /// Strongly connected components in bottom-up order: every SCC appears
  /// after all SCCs it calls into (Tarjan emits components in reverse
  /// topological order of the caller→callee edges, which is exactly the
  /// callee-first worklist order). Members within an SCC keep source
  /// order. Only defined functions are included.
  const std::vector<std::vector<const FunctionDecl *>> &bottomUpSCCs() const {
    return SCCs;
  }

  /// True if \p FD is in an SCC with more than one member or calls itself
  /// (fixpoint iteration is then required).
  bool isRecursive(const FunctionDecl *FD) const;

  unsigned nodeCount() const { return static_cast<unsigned>(Nodes.size()); }

private:
  void addEdge(const FunctionDecl *Caller, const FunctionDecl *Callee);
  void collectCalls(const FunctionDecl *Caller, const Stmt *S);
  void collectCallsExpr(const FunctionDecl *Caller, const Expr *E);
  void computeSCCs();

  std::vector<const FunctionDecl *> Nodes; ///< defined functions, source order
  std::map<const FunctionDecl *, std::vector<const FunctionDecl *>> Callees;
  std::map<const FunctionDecl *, std::vector<const FunctionDecl *>> Callers;
  std::map<const FunctionDecl *, unsigned> SCCIndex; ///< node → SCC position
  std::vector<std::vector<const FunctionDecl *>> SCCs;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_CALLGRAPH_H
