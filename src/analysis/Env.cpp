//===--- Env.cpp - Dataflow environment with may-alias sets ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/Env.h"

using namespace memlint;

const SVal *Env::find(const RefPath &Ref) const {
  auto It = Values.find(Ref);
  return It == Values.end() ? nullptr : &It->second;
}

SVal Env::lookup(const RefPath &Ref, const DefaultFn &Default) const {
  if (const SVal *V = find(Ref))
    return *V;
  return Default(Ref);
}

void Env::eraseDescendants(const RefPath &Ref) {
  for (auto It = Values.begin(); It != Values.end();) {
    if (It->first != Ref && It->first.hasPrefix(Ref))
      It = Values.erase(It);
    else
      ++It;
  }
}

void Env::forget(const RefPath &Ref) {
  for (auto It = Values.begin(); It != Values.end();) {
    if (It->first.hasPrefix(Ref))
      It = Values.erase(It);
    else
      ++It;
  }
  for (auto It = Aliases.begin(); It != Aliases.end();) {
    if (It->first.hasPrefix(Ref)) {
      It = Aliases.erase(It);
      continue;
    }
    for (auto SIt = It->second.begin(); SIt != It->second.end();) {
      if (SIt->hasPrefix(Ref))
        SIt = It->second.erase(SIt);
      else
        ++SIt;
    }
    if (It->second.empty())
      It = Aliases.erase(It);
    else
      ++It;
  }
}

void Env::clearAliases(const RefPath &Ref) {
  auto It = Aliases.find(Ref);
  if (It == Aliases.end())
    return;
  for (const RefPath &Other : It->second) {
    auto OtherIt = Aliases.find(Other);
    if (OtherIt != Aliases.end()) {
      OtherIt->second.erase(Ref);
      if (OtherIt->second.empty())
        Aliases.erase(OtherIt);
    }
  }
  Aliases.erase(It);
}

void Env::addAlias(const RefPath &A, const RefPath &B) {
  if (A == B)
    return;
  Aliases[A].insert(B);
  Aliases[B].insert(A);
}

std::set<RefPath> Env::aliasesOf(const RefPath &Ref) const {
  auto It = Aliases.find(Ref);
  if (It == Aliases.end())
    return {};
  return It->second;
}

std::vector<RefPath> Env::expansions(const RefPath &Ref,
                                     size_t MaxDepth) const {
  std::set<RefPath> Seen;
  Seen.insert(Ref);
  // Substitute each aliased prefix once. One substitution round suffices for
  // the paper's model (aliases are discovered within a single loop
  // "iteration"); deeper chains are cut off by MaxDepth anyway.
  RefPath Prefix(Ref.rootKind(), Ref.root());
  std::vector<RefPath> Prefixes;
  Prefixes.push_back(Prefix);
  for (const PathElem &E : Ref.elems()) {
    Prefix = Prefix.child(E);
    Prefixes.push_back(Prefix);
  }
  for (const RefPath &P : Prefixes) {
    auto It = Aliases.find(P);
    if (It == Aliases.end())
      continue;
    for (const RefPath &Alias : It->second) {
      RefPath Rewritten = Ref.withPrefixReplaced(P, Alias);
      if (Rewritten.depth() <= MaxDepth)
        Seen.insert(std::move(Rewritten));
    }
  }
  return std::vector<RefPath>(Seen.begin(), Seen.end());
}

std::vector<Env::Conflict> Env::mergeFrom(const Env &Other,
                                          const DefaultFn &Default) {
  std::vector<Conflict> Conflicts;
  if (Other.Unreachable)
    return Conflicts; // nothing flows in from an unreachable branch
  if (Unreachable) {
    *this = Other;
    return Conflicts;
  }

  // Union of keys.
  std::set<RefPath> Keys;
  for (const auto &KV : Values)
    Keys.insert(KV.first);
  for (const auto &KV : Other.Values)
    Keys.insert(KV.first);

  for (const RefPath &Ref : Keys) {
    SVal Ours = lookup(Ref, Default);
    SVal Theirs = Other.lookup(Ref, Default);

    // A definitely-null pointer denotes no storage: it cannot disagree
    // about release obligations or deadness (the "if (p != NULL) free(p)"
    // idiom merges cleanly).
    AllocState OursAlloc = Ours.Alloc;
    AllocState TheirsAlloc = Theirs.Alloc;
    DefState OursDef = Ours.Def;
    DefState TheirsDef = Theirs.Def;
    if (Ours.Null == NullState::DefinitelyNull) {
      OursAlloc = AllocState::Null;
      if (TheirsDef == DefState::Dead)
        OursDef = DefState::Dead;
    }
    if (Theirs.Null == NullState::DefinitelyNull) {
      TheirsAlloc = AllocState::Null;
      if (OursDef == DefState::Dead)
        TheirsDef = DefState::Dead;
    }

    bool DefConflict = false, AllocConflict = false;
    SVal Merged;
    Merged.Def = mergeDef(OursDef, TheirsDef, DefConflict);
    Merged.Null = mergeNull(Ours.Null, Theirs.Null);
    Merged.Alloc = mergeAlloc(OursAlloc, TheirsAlloc, AllocConflict);

    // Keep the provenance from whichever side carries the interesting state.
    Merged.NullLoc =
        Ours.mayBeNull() ? Ours.NullLoc
                         : (Theirs.mayBeNull() ? Theirs.NullLoc : Ours.NullLoc);
    Merged.AllocLoc =
        Ours.AllocLoc.isValid() ? Ours.AllocLoc : Theirs.AllocLoc;
    Merged.FreeLoc = Ours.FreeLoc.isValid() ? Ours.FreeLoc : Theirs.FreeLoc;
    Merged.DefLoc =
        Ours.Def != DefState::Defined ? Ours.DefLoc : Theirs.DefLoc;

    if (DefConflict || AllocConflict) {
      Conflict C;
      C.Ref = Ref;
      C.DefConflict = DefConflict;
      C.AllocConflict = AllocConflict;
      C.Ours = Ours;
      C.Theirs = Theirs;
      Conflicts.push_back(std::move(C));
    }
    Values[Ref] = std::move(Merged);
  }

  // "The possible aliases at confluence points is the union of the possible
  // aliases on each branch."
  for (const auto &KV : Other.Aliases)
    for (const RefPath &Alias : KV.second)
      Aliases[KV.first].insert(Alias);

  return Conflicts;
}
