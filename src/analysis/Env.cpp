//===--- Env.cpp - Dataflow environment with may-alias sets ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/Env.h"

#include <algorithm>
#include <set>

using namespace memlint;

//===----------------------------------------------------------------------===//
// Copy-on-write plumbing
//===----------------------------------------------------------------------===//

Env::Table &Env::mutValues() {
  if (!Values) {
    Values = std::make_shared<Table>();
  } else if (Values.use_count() > 1) {
    // Clone the spine only: chunks stay shared until individually written.
    Values = std::make_shared<Table>(*Values);
    if (Stats)
      ++Stats->TableClones;
  }
  // Safe: the table was created non-const and is uniquely owned here.
  return const_cast<Table &>(*Values);
}

Env::Chunk &Env::mutChunk(Table &T, size_t ChunkIdx) {
  std::shared_ptr<const Chunk> &Slot = T.Chunks[ChunkIdx];
  if (!Slot) {
    Slot = std::make_shared<Chunk>();
  } else if (Slot.use_count() > 1) {
    Slot = std::make_shared<Chunk>(*Slot);
    if (Stats) {
      ++Stats->ChunkClones;
      Stats->BytesCopied += sizeof(SVal) * ChunkSize;
    }
  }
  return const_cast<Chunk &>(*Slot);
}

Env::AliasTable &Env::mutAliases() {
  if (!Aliases) {
    Aliases = std::make_shared<AliasTable>();
  } else if (Aliases.use_count() > 1) {
    Aliases = std::make_shared<AliasTable>(*Aliases);
    if (Stats)
      ++Stats->AliasClones;
  }
  return const_cast<AliasTable &>(*Aliases);
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

const SVal *Env::findId(RefId Id) const {
  if (!Values || Id == InvalidRefId)
    return nullptr;
  size_t CI = Id / ChunkSize, SI = Id % ChunkSize;
  if (CI >= Values->Chunks.size())
    return nullptr;
  const Chunk *C = Values->Chunks[CI].get();
  if (!C || !(C->Occupied >> SI & 1))
    return nullptr;
  return &C->Slots[SI];
}

void Env::setId(RefId Id, SVal Val) {
  if (Stats)
    ++Stats->Writes;
  Table &T = mutValues();
  size_t CI = Id / ChunkSize, SI = Id % ChunkSize;
  if (T.Chunks.size() <= CI)
    T.Chunks.resize(CI + 1);
  Chunk &C = mutChunk(T, CI);
  bool Fresh = !(C.Occupied >> SI & 1);
  C.Slots[SI] = std::move(Val);
  C.Occupied |= static_cast<uint16_t>(1u << SI);
  if (C.Slots[SI].Null == NullState::DefinitelyNull)
    C.DefNull |= static_cast<uint16_t>(1u << SI);
  else
    C.DefNull &= static_cast<uint16_t>(~(1u << SI));
  if (Fresh)
    ++T.Count;
}

void Env::eraseId(RefId Id) {
  Table &T = mutValues();
  size_t CI = Id / ChunkSize, SI = Id % ChunkSize;
  Chunk &C = mutChunk(T, CI);
  C.Occupied &= static_cast<uint16_t>(~(1u << SI));
  C.DefNull &= static_cast<uint16_t>(~(1u << SI));
  C.Slots[SI] = SVal(); // drop provenance strings eagerly
  --T.Count;
}

const SVal *Env::find(const RefPath &Ref) const {
  if (Stats)
    ++Stats->Lookups;
  if (!Interner)
    return nullptr;
  return findId(Interner->lookup(Ref));
}

SVal Env::lookup(const RefPath &Ref, const DefaultFn &Default) const {
  if (const SVal *V = find(Ref))
    return *V;
  return Default(Ref);
}

void Env::set(const RefPath &Ref, SVal Val) {
  bind();
  setId(Interner->intern(Ref), std::move(Val));
}

void Env::eraseDescendants(const RefPath &Ref) {
  if (!Interner || !Values)
    return;
  RefId Id = Interner->lookup(Ref);
  if (Id == InvalidRefId)
    return;
  Interner->forEachDescendant(Id, [&](RefId D) {
    if (findId(D))
      eraseId(D);
  });
}

void Env::forget(const RefPath &Ref) {
  if (!Interner)
    return;
  RefId Id = Interner->lookup(Ref);
  if (Id == InvalidRefId)
    return; // never interned: nothing can be tracked under it
  if (Values) {
    if (findId(Id))
      eraseId(Id);
    Interner->forEachDescendant(Id, [&](RefId D) {
      if (findId(D))
        eraseId(D);
    });
  }
  if (!Aliases)
    return;
  // Scan first so an unaffected (common) alias table is never cloned.
  auto Affected = [&](const AliasEntry &E) {
    if (Interner->hasPrefix(E.Id, Id))
      return true;
    for (size_t I = 0, N = E.List.size(); I < N; ++I)
      if (Interner->hasPrefix(E.List.at(I), Id))
        return true;
    return false;
  };
  bool Any = false;
  for (const AliasEntry &E : Aliases->Entries)
    if (Affected(E)) {
      Any = true;
      break;
    }
  if (!Any)
    return;
  AliasTable &AT = mutAliases();
  std::vector<AliasEntry> Kept;
  Kept.reserve(AT.Entries.size());
  for (AliasEntry &E : AT.Entries) {
    if (Interner->hasPrefix(E.Id, Id))
      continue;
    AliasList NewL;
    for (size_t I = 0, N = E.List.size(); I < N; ++I)
      if (!Interner->hasPrefix(E.List.at(I), Id))
        NewL.add(E.List.at(I));
    if (NewL.empty())
      continue;
    E.List = std::move(NewL);
    Kept.push_back(std::move(E));
  }
  AT.Entries = std::move(Kept);
}

//===----------------------------------------------------------------------===//
// Aliases
//===----------------------------------------------------------------------===//

const Env::AliasList *Env::findAliasList(RefId Id) const {
  if (!Aliases || Id == InvalidRefId)
    return nullptr;
  const auto &E = Aliases->Entries;
  auto It = std::lower_bound(
      E.begin(), E.end(), Id,
      [](const AliasEntry &A, RefId B) { return A.Id < B; });
  if (It == E.end() || It->Id != Id)
    return nullptr;
  return &It->List;
}

void Env::addAliasId(RefId Id, RefId Alias) {
  if (const AliasList *Existing = findAliasList(Id))
    if (Existing->contains(Alias))
      return;
  AliasTable &AT = mutAliases();
  auto It = std::lower_bound(
      AT.Entries.begin(), AT.Entries.end(), Id,
      [](const AliasEntry &A, RefId B) { return A.Id < B; });
  if (It == AT.Entries.end() || It->Id != Id) {
    AliasEntry E;
    E.Id = Id;
    It = AT.Entries.insert(It, std::move(E));
  }
  // Keep each list ordered by RefPath so alias iteration matches the order
  // the previous std::set-based representation emitted diagnostics in.
  AliasList &L = It->List;
  const RefPath &AP = Interner->path(Alias);
  size_t Pos = 0;
  while (Pos < L.size() && Interner->path(L.at(Pos)) < AP)
    ++Pos;
  L.insertAt(Pos, Alias);
}

void Env::addAlias(const RefPath &A, const RefPath &B) {
  if (A == B)
    return;
  bind();
  RefId IA = Interner->intern(A);
  RefId IB = Interner->intern(B);
  addAliasId(IA, IB);
  addAliasId(IB, IA);
}

void Env::clearAliases(const RefPath &Ref) {
  if (!Interner || !Aliases)
    return;
  RefId Id = Interner->lookup(Ref);
  const AliasList *L = findAliasList(Id);
  if (!L)
    return;
  std::vector<RefId> Others;
  Others.reserve(L->size());
  for (size_t I = 0, N = L->size(); I < N; ++I)
    Others.push_back(L->at(I));
  AliasTable &AT = mutAliases();
  auto Find = [&AT](RefId K) {
    return std::lower_bound(
        AT.Entries.begin(), AT.Entries.end(), K,
        [](const AliasEntry &A, RefId B) { return A.Id < B; });
  };
  for (RefId O : Others) {
    auto It = Find(O);
    if (It == AT.Entries.end() || It->Id != O)
      continue;
    It->List.remove(Id);
    if (It->List.empty())
      AT.Entries.erase(It);
  }
  auto It = Find(Id);
  if (It != AT.Entries.end() && It->Id == Id)
    AT.Entries.erase(It);
}

Env::AliasView Env::aliasesOf(const RefPath &Ref) const {
  if (!Interner)
    return {};
  return AliasView(findAliasList(Interner->lookup(Ref)), Interner.get());
}

std::vector<RefPath> Env::expansions(const RefPath &Ref,
                                     size_t MaxDepth) const {
  std::set<RefPath> Seen;
  Seen.insert(Ref);
  // Substitute each aliased prefix once. One substitution round suffices for
  // the paper's model (aliases are discovered within a single loop
  // "iteration"); deeper chains are cut off by MaxDepth anyway.
  //
  // Only interned prefixes can carry aliases (addAlias interns both sides),
  // so walk the interned prefix chain instead of materializing prefix paths.
  if (Interner && Aliases && !Aliases->Entries.empty()) {
    std::vector<RefId> Prefixes;
    RefId P = Interner->rootLookup(Ref.rootKind(), Ref.root());
    if (P != InvalidRefId) {
      Prefixes.push_back(P);
      for (const PathElem &E : Ref.elems()) {
        P = Interner->childLookup(P, E);
        if (P == InvalidRefId)
          break;
        Prefixes.push_back(P);
      }
    }
    for (RefId PId : Prefixes) {
      const AliasList *L = findAliasList(PId);
      if (!L)
        continue;
      const RefPath &Prefix = Interner->path(PId);
      for (size_t I = 0, N = L->size(); I < N; ++I) {
        const RefPath &Alias = Interner->path(L->at(I));
        RefPath Rewritten = Ref.withPrefixReplaced(Prefix, Alias);
        if (MaxDepth == 0 || Rewritten.depth() <= MaxDepth)
          Seen.insert(std::move(Rewritten));
      }
    }
  }
  return std::vector<RefPath>(Seen.begin(), Seen.end());
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

std::vector<std::pair<const RefPath *, const SVal *>> Env::items() const {
  std::vector<std::pair<const RefPath *, const SVal *>> Out;
  if (!Values || !Values->Count)
    return Out;
  Out.reserve(Values->Count);
  for (size_t CI = 0, NC = Values->Chunks.size(); CI < NC; ++CI) {
    const Chunk *C = Values->Chunks[CI].get();
    if (!C || !C->Occupied)
      continue;
    for (size_t SI = 0; SI < ChunkSize; ++SI)
      if (C->Occupied >> SI & 1)
        Out.emplace_back(
            &Interner->path(static_cast<RefId>(CI * ChunkSize + SI)),
            &C->Slots[SI]);
  }
  // Diagnostics iterate tracked refs in RefPath order (the old std::map
  // order); ids are assigned in first-intern order, so sort.
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return *A.first < *B.first; });
  return Out;
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

void Env::mergeSlot(RefId Id, const SVal &Ours, const SVal &Theirs,
                    std::vector<Conflict> &Conflicts) {
  // A definitely-null pointer denotes no storage: it cannot disagree
  // about release obligations or deadness (the "if (p != NULL) free(p)"
  // idiom merges cleanly).
  AllocState OursAlloc = Ours.Alloc;
  AllocState TheirsAlloc = Theirs.Alloc;
  DefState OursDef = Ours.Def;
  DefState TheirsDef = Theirs.Def;
  if (Ours.Null == NullState::DefinitelyNull) {
    OursAlloc = AllocState::Null;
    if (TheirsDef == DefState::Dead)
      OursDef = DefState::Dead;
  }
  if (Theirs.Null == NullState::DefinitelyNull) {
    TheirsAlloc = AllocState::Null;
    if (OursDef == DefState::Dead)
      TheirsDef = DefState::Dead;
  }

  bool DefConflict = false, AllocConflict = false;
  SVal Merged;
  Merged.Def = mergeDef(OursDef, TheirsDef, DefConflict);
  Merged.Null = mergeNull(Ours.Null, Theirs.Null);
  Merged.Alloc = mergeAlloc(OursAlloc, TheirsAlloc, AllocConflict);

  // Keep the provenance from whichever side carries the interesting state.
  Merged.NullLoc =
      Ours.mayBeNull() ? Ours.NullLoc
                       : (Theirs.mayBeNull() ? Theirs.NullLoc : Ours.NullLoc);
  Merged.AllocLoc = Ours.AllocLoc.isValid() ? Ours.AllocLoc : Theirs.AllocLoc;
  Merged.FreeLoc = Ours.FreeLoc.isValid() ? Ours.FreeLoc : Theirs.FreeLoc;
  Merged.DefLoc = Ours.Def != DefState::Defined ? Ours.DefLoc : Theirs.DefLoc;

  if (DefConflict || AllocConflict) {
    Conflict C;
    C.Ref = Interner->path(Id);
    C.DefConflict = DefConflict;
    C.AllocConflict = AllocConflict;
    C.Ours = Ours;
    C.Theirs = Theirs;
    Conflicts.push_back(std::move(C));
  }
  if (Stats)
    ++Stats->MergedSlots;
  setId(Id, std::move(Merged));
}

std::vector<Env::Conflict> Env::mergeFrom(const Env &Other,
                                          const DefaultFn &Default) {
  std::vector<Conflict> Conflicts;
  if (Other.Unreachable)
    return Conflicts; // nothing flows in from an unreachable branch
  if (Unreachable) {
    *this = Other;
    return Conflicts;
  }

  // A default-constructed env adopts the interner of the first bound env
  // merged into it (the switch-result pattern).
  if (!Interner && Other.Interner)
    Interner = Other.Interner;

  // Envs from different interners cannot share ids; re-intern the other
  // side into ours and merge that. Robustness path: the checker always
  // shares one interner per function, so this never triggers in analysis.
  if (Other.Interner && Interner != Other.Interner) {
    Env Tmp(Interner, MaxExpand, Stats);
    for (const auto &KV : Other.items())
      Tmp.set(*KV.first, *KV.second);
    if (Other.Aliases)
      for (const AliasEntry &E : Other.Aliases->Entries)
        for (size_t I = 0, N = E.List.size(); I < N; ++I)
          Tmp.addAlias(Other.Interner->path(E.Id),
                       Other.Interner->path(E.List.at(I)));
    return mergeFrom(Tmp, Default);
  }

  if (Stats)
    ++Stats->Merges;

  size_t NChunks =
      std::max(Values ? Values->Chunks.size() : 0,
               Other.Values ? Other.Values->Chunks.size() : 0);
  for (size_t CI = 0; CI < NChunks; ++CI) {
    // Hold both chunks alive: writes below may swap ours out of the table.
    std::shared_ptr<const Chunk> OurC =
        Values && CI < Values->Chunks.size() ? Values->Chunks[CI] : nullptr;
    std::shared_ptr<const Chunk> TheirC =
        Other.Values && CI < Other.Values->Chunks.size()
            ? Other.Values->Chunks[CI]
            : nullptr;

    if (OurC == TheirC) {
      // Same chunk on both sides: merge(v, v) is the identity for every
      // slot except definitely-null values, whose normalization erases a
      // leftover allocation state. Skip the chunk wholesale otherwise.
      if (!OurC)
        continue;
      uint16_t Mask = OurC->Occupied & OurC->DefNull;
      if (!Mask) {
        if (Stats)
          ++Stats->SkippedChunks;
        continue;
      }
      for (size_t SI = 0; SI < ChunkSize; ++SI) {
        if (!(Mask >> SI & 1))
          continue;
        const SVal &V = OurC->Slots[SI];
        // Already normalized: merge(v, v) == v, and no conflict is
        // possible (mergeAlloc(Null, Null) / mergeDef(d, d) are clean).
        if (V.Alloc == AllocState::Null)
          continue;
        mergeSlot(static_cast<RefId>(CI * ChunkSize + SI), V, V, Conflicts);
      }
      continue;
    }

    uint16_t Occ = (OurC ? OurC->Occupied : 0) | (TheirC ? TheirC->Occupied : 0);
    for (size_t SI = 0; SI < ChunkSize; ++SI) {
      if (!(Occ >> SI & 1))
        continue;
      RefId Id = static_cast<RefId>(CI * ChunkSize + SI);
      const RefPath &Ref = Interner->path(Id);
      SVal Ours = OurC && (OurC->Occupied >> SI & 1) ? OurC->Slots[SI]
                                                     : Default(Ref);
      SVal Theirs = TheirC && (TheirC->Occupied >> SI & 1) ? TheirC->Slots[SI]
                                                           : Default(Ref);
      mergeSlot(Id, Ours, Theirs, Conflicts);
    }
  }

  // The old representation discovered conflicts in std::map (RefPath)
  // order; chunk order is first-intern order, so sort for identical
  // diagnostic sequences.
  std::stable_sort(
      Conflicts.begin(), Conflicts.end(),
      [](const Conflict &A, const Conflict &B) { return A.Ref < B.Ref; });

  // "The possible aliases at confluence points is the union of the possible
  // aliases on each branch."
  if (Other.Aliases && Aliases != Other.Aliases)
    for (const AliasEntry &E : Other.Aliases->Entries)
      for (size_t I = 0, N = E.List.size(); I < N; ++I)
        addAliasId(E.Id, E.List.at(I));

  return Conflicts;
}
