//===--- Env.h - Dataflow environment with may-alias sets -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-program-point environment: a finite map from tracked references
/// to abstract values (SVal), plus a symmetric may-alias relation. "The
/// possible aliases at confluence points is the union of the possible
/// aliases on each branch" (§5); values merge per the storage model's rules
/// with conflicts surfaced to the caller for reporting.
///
/// Representation: the analysis forks the environment at every predicate
/// ("any predicate may be true or false", §2), so `Env B = A;` is the
/// hottest operation in the checker. Values are keyed by interned RefIds
/// (see RefInterner.h) and stored in a copy-on-write chunked table: the env
/// holds one shared_ptr to an immutable table of shared chunk pointers, so
/// a split is two reference-count bumps and a write after a split clones
/// only the table spine and the one touched chunk. mergeFrom exploits the
/// sharing: a chunk with the same identity on both sides merges to itself
/// and is skipped wholesale (modulo definitely-null normalization, which
/// the merge rules apply even to identical values). The alias relation is
/// a small COW table whose per-reference alias lists store up to two ids
/// inline — the common case — before spilling to the heap.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_ENV_H
#define MEMLINT_ANALYSIS_ENV_H

#include "analysis/RefInterner.h"
#include "analysis/RefPath.h"
#include "analysis/StorageModel.h"

#include <functional>
#include <memory>
#include <vector>

namespace memlint {

/// Opt-in (-stats) observability counters for the environment hot path.
/// One instance is shared by every Env forked from a FunctionChecker run;
/// byte figures are estimates (payload slots, not allocator overhead).
struct EnvStats {
  unsigned long long Copies = 0;       ///< environment copies (splits)
  unsigned long long TableClones = 0;  ///< value-table spines cloned
  unsigned long long ChunkClones = 0;  ///< value chunks cloned for writing
  unsigned long long AliasClones = 0;  ///< alias tables cloned for writing
  unsigned long long BytesShared = 0;  ///< slot bytes shared instead of copied
  unsigned long long BytesCopied = 0;  ///< slot bytes actually copied
  unsigned long long Lookups = 0;      ///< value lookups
  unsigned long long Writes = 0;       ///< value writes
  unsigned long long Merges = 0;       ///< mergeFrom calls that did work
  unsigned long long MergedSlots = 0;  ///< slots merged value-by-value
  unsigned long long SkippedChunks = 0;///< shared chunks skipped at merges
};

/// The abstract state at one program point.
class Env {
public:
  /// Supplies the entry/default value of a reference that has not been
  /// written yet (computed from declarations and annotations).
  using DefaultFn = std::function<SVal(const RefPath &)>;

  /// An unbound environment: it adopts an interner lazily on first write
  /// (or from the first bound environment merged into it).
  Env() = default;

  /// An environment bound to \p Interner. Every env that takes part in one
  /// function's analysis must share the function's interner. \p ExpandDepth
  /// bounds alias-expansion path length (0 = unlimited); \p Stats, when
  /// non-null, receives hot-path counters.
  explicit Env(std::shared_ptr<RefInterner> Interner,
               unsigned ExpandDepth = 6, EnvStats *Stats = nullptr)
      : Interner(std::move(Interner)), MaxExpand(ExpandDepth), Stats(Stats) {}

  Env(const Env &Other)
      : Interner(Other.Interner), Values(Other.Values),
        Aliases(Other.Aliases), Unreachable(Other.Unreachable),
        MaxExpand(Other.MaxExpand), Stats(Other.Stats) {
    noteCopy();
  }
  Env &operator=(const Env &Other) {
    if (this != &Other) {
      Interner = Other.Interner;
      Values = Other.Values;
      Aliases = Other.Aliases;
      Unreachable = Other.Unreachable;
      MaxExpand = Other.MaxExpand;
      Stats = Other.Stats;
      noteCopy();
    }
    return *this;
  }
  Env(Env &&) = default;
  Env &operator=(Env &&) = default;

  /// The interner this environment is bound to (null until first use).
  const std::shared_ptr<RefInterner> &interner() const { return Interner; }

  /// True when this point cannot be reached (after return / exit()).
  bool isUnreachable() const { return Unreachable; }
  void setUnreachable(bool V = true) { Unreachable = V; }

  /// \returns the tracked value, or null if untracked. The pointer stays
  /// valid until this environment is next mutated.
  const SVal *find(const RefPath &Ref) const;

  /// Looks up a value, materializing the default when untracked.
  SVal lookup(const RefPath &Ref, const DefaultFn &Default) const;

  /// Strong update of one reference.
  void set(const RefPath &Ref, SVal Val);

  /// Removes tracked entries that are strict descendants of \p Ref (used
  /// when the reference is bound to new storage).
  void eraseDescendants(const RefPath &Ref);

  /// Removes every trace of \p Ref: its value, its descendants, and all
  /// alias links involving them. Used when a local leaves scope so later
  /// merges do not see phantom states for dead names.
  void forget(const RefPath &Ref);

  /// Removes every alias link of exactly \p Ref (not its descendants).
  void clearAliases(const RefPath &Ref);

  /// Records that \p A and \p B may denote the same storage.
  void addAlias(const RefPath &A, const RefPath &B);

  /// A compact alias list: most references have zero, one or two aliases,
  /// which live inline; larger sets spill to the heap.
  class AliasList {
  public:
    size_t size() const { return N; }
    bool empty() const { return N == 0; }
    RefId at(size_t I) const {
      return I < InlineCap ? Inline[I] : Spill[I - InlineCap];
    }
    bool contains(RefId Id) const {
      for (size_t I = 0; I < N; ++I)
        if (at(I) == Id)
          return true;
      return false;
    }
    void add(RefId Id) {
      if (contains(Id))
        return;
      if (N < InlineCap)
        Inline[N] = Id;
      else
        Spill.push_back(Id);
      ++N;
    }
    /// Inserts \p Id at position \p I, shifting the tail up. The caller
    /// guarantees \p Id is not already present.
    void insertAt(size_t I, RefId Id) {
      if (N >= InlineCap)
        Spill.push_back(InvalidRefId);
      ++N;
      for (size_t J = N - 1; J > I; --J)
        setAt(J, at(J - 1));
      setAt(I, Id);
    }
    void remove(RefId Id) {
      for (size_t I = 0; I < N; ++I) {
        if (at(I) != Id)
          continue;
        // Keep order: shift the tail down one slot.
        for (size_t J = I + 1; J < N; ++J)
          setAt(J - 1, at(J));
        --N;
        if (Spill.size() > (N > InlineCap ? N - InlineCap : 0))
          Spill.pop_back();
        return;
      }
    }

  private:
    void setAt(size_t I, RefId Id) {
      if (I < InlineCap)
        Inline[I] = Id;
      else
        Spill[I - InlineCap] = Id;
    }
    static constexpr size_t InlineCap = 2;
    RefId Inline[InlineCap] = {InvalidRefId, InvalidRefId};
    std::vector<RefId> Spill;
    size_t N = 0;
  };

  /// A read-only view over the direct may-aliases of one reference,
  /// iterable as RefPaths. Valid until the environment is next mutated.
  class AliasView {
  public:
    AliasView() = default;
    AliasView(const AliasList *L, const RefInterner *I) : L(L), I(I) {}

    class iterator {
    public:
      iterator(const AliasView *V, size_t Idx) : V(V), Idx(Idx) {}
      const RefPath &operator*() const { return V->I->path(V->L->at(Idx)); }
      iterator &operator++() {
        ++Idx;
        return *this;
      }
      bool operator!=(const iterator &O) const { return Idx != O.Idx; }

    private:
      const AliasView *V;
      size_t Idx;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, L ? L->size() : 0); }
    size_t size() const { return L ? L->size() : 0; }
    bool empty() const { return size() == 0; }
    bool contains(const RefPath &Ref) const {
      if (!L || !I)
        return false;
      RefId Id = I->lookup(Ref);
      return Id != InvalidRefId && L->contains(Id);
    }

  private:
    const AliasList *L = nullptr;
    const RefInterner *I = nullptr;
  };

  /// Direct may-aliases of \p Ref, as a non-owning view (no per-call set
  /// copy). The view is invalidated by the next mutation of this env.
  AliasView aliasesOf(const RefPath &Ref) const;

  /// All rewrites of \p Ref obtained by substituting an aliased prefix
  /// (always includes \p Ref itself), sorted in RefPath order. Bounded by
  /// the environment's expansion depth (0 = unlimited).
  std::vector<RefPath> expansions(const RefPath &Ref) const {
    return expansions(Ref, MaxExpand);
  }
  std::vector<RefPath> expansions(const RefPath &Ref, size_t MaxDepth) const;

  /// Number of tracked references.
  size_t size() const { return Values ? Values->Count : 0; }

  /// Snapshot of all tracked references with their values, sorted by
  /// RefPath ordering (the stable order diagnostics are emitted in). The
  /// pointers stay valid until this environment is next mutated.
  std::vector<std::pair<const RefPath *, const SVal *>> items() const;

  /// A merge conflict the caller should report as a confluence anomaly.
  struct Conflict {
    RefPath Ref;
    bool DefConflict = false;   ///< released on one path only
    bool AllocConflict = false; ///< obligation disagreement
    SVal Ours;
    SVal Theirs;
  };

  /// Merges \p Other into this environment (confluence point). \p Default
  /// supplies values for references tracked on only one side.
  /// \returns the conflicts discovered, in RefPath order.
  std::vector<Conflict> mergeFrom(const Env &Other, const DefaultFn &Default);

private:
  static constexpr size_t ChunkSize = 16;

  struct Chunk {
    uint16_t Occupied = 0; ///< bit i set: Slots[i] holds a tracked value
    /// Bit i set: Slots[i].Null == DefinitelyNull. Merging a definitely-
    /// null value with itself is not the identity (the merge rules erase
    /// its obligation), so shared chunks with this mask non-zero cannot be
    /// skipped wholesale at confluences.
    uint16_t DefNull = 0;
    SVal Slots[ChunkSize];
  };

  struct Table {
    std::vector<std::shared_ptr<const Chunk>> Chunks;
    size_t Count = 0; ///< occupied slots across all chunks
  };

  struct AliasEntry {
    RefId Id = InvalidRefId;
    AliasList List;
  };
  struct AliasTable {
    std::vector<AliasEntry> Entries; ///< sorted by Id
  };

  void noteCopy() const {
    if (Stats) {
      ++Stats->Copies;
      Stats->BytesShared += (Values ? Values->Count : 0) * sizeof(SVal);
    }
  }
  /// Binds a fresh interner if the env is still unbound.
  void bind() {
    if (!Interner)
      Interner = std::make_shared<RefInterner>();
  }

  const SVal *findId(RefId Id) const;
  void setId(RefId Id, SVal Val);
  void eraseId(RefId Id);

  Table &mutValues();
  Chunk &mutChunk(Table &T, size_t ChunkIdx);
  AliasTable &mutAliases();

  const AliasList *findAliasList(RefId Id) const;
  /// Inserts \p Alias into \p Id's list (one direction only).
  void addAliasId(RefId Id, RefId Alias);

  /// Merges one slot per the storage-model rules; appends to \p Conflicts.
  void mergeSlot(RefId Id, const SVal &OursIn, const SVal &TheirsIn,
                 std::vector<Conflict> &Conflicts);

  std::shared_ptr<RefInterner> Interner;
  std::shared_ptr<const Table> Values;
  std::shared_ptr<const AliasTable> Aliases;
  bool Unreachable = false;
  unsigned MaxExpand = 6;
  EnvStats *Stats = nullptr;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_ENV_H
