//===--- Env.h - Dataflow environment with may-alias sets -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-program-point environment: a finite map from tracked references
/// to abstract values (SVal), plus a symmetric may-alias relation. "The
/// possible aliases at confluence points is the union of the possible
/// aliases on each branch" (§5); values merge per the storage model's rules
/// with conflicts surfaced to the caller for reporting.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_ENV_H
#define MEMLINT_ANALYSIS_ENV_H

#include "analysis/RefPath.h"
#include "analysis/StorageModel.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

namespace memlint {

/// The abstract state at one program point.
class Env {
public:
  /// Supplies the entry/default value of a reference that has not been
  /// written yet (computed from declarations and annotations).
  using DefaultFn = std::function<SVal(const RefPath &)>;

  /// True when this point cannot be reached (after return / exit()).
  bool isUnreachable() const { return Unreachable; }
  void setUnreachable(bool V = true) { Unreachable = V; }

  /// \returns the tracked value, or null if untracked.
  const SVal *find(const RefPath &Ref) const;

  /// Looks up a value, materializing the default when untracked.
  SVal lookup(const RefPath &Ref, const DefaultFn &Default) const;

  /// Strong update of one reference.
  void set(const RefPath &Ref, SVal Val) { Values[Ref] = std::move(Val); }

  /// Removes tracked entries that are strict descendants of \p Ref (used
  /// when the reference is bound to new storage).
  void eraseDescendants(const RefPath &Ref);

  /// Removes every trace of \p Ref: its value, its descendants, and all
  /// alias links involving them. Used when a local leaves scope so later
  /// merges do not see phantom states for dead names.
  void forget(const RefPath &Ref);

  /// Removes every alias link of exactly \p Ref (not its descendants).
  void clearAliases(const RefPath &Ref);

  /// Records that \p A and \p B may denote the same storage.
  void addAlias(const RefPath &A, const RefPath &B);

  /// Direct may-aliases of \p Ref.
  std::set<RefPath> aliasesOf(const RefPath &Ref) const;

  /// All rewrites of \p Ref obtained by substituting an aliased prefix
  /// (always includes \p Ref itself). Bounded by \p MaxDepth path length.
  std::vector<RefPath> expansions(const RefPath &Ref,
                                  size_t MaxDepth = 6) const;

  /// All currently tracked references (sorted by RefPath ordering).
  const std::map<RefPath, SVal> &values() const { return Values; }
  std::map<RefPath, SVal> &values() { return Values; }

  /// A merge conflict the caller should report as a confluence anomaly.
  struct Conflict {
    RefPath Ref;
    bool DefConflict = false;   ///< released on one path only
    bool AllocConflict = false; ///< obligation disagreement
    SVal Ours;
    SVal Theirs;
  };

  /// Merges \p Other into this environment (confluence point). \p Default
  /// supplies values for references tracked on only one side.
  /// \returns the conflicts discovered.
  std::vector<Conflict> mergeFrom(const Env &Other, const DefaultFn &Default);

private:
  std::map<RefPath, SVal> Values;
  std::map<RefPath, std::set<RefPath>> Aliases;
  bool Unreachable = false;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_ENV_H
