//===--- FunctionChecker.cpp - The paper's intraprocedural analysis --------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/FunctionChecker.h"

#include "ast/ASTPrinter.h"

#include <cassert>
#include <exception>

using namespace memlint;

//===----------------------------------------------------------------------===//
// Defaults and derivation
//===----------------------------------------------------------------------===//

namespace {

/// True if the expression is a null pointer constant: 0, possibly wrapped in
/// parens and/or casts ("((void *) 0)", the NULL macro).
bool isNullConstant(const Expr *E) {
  while (true) {
    E = E->ignoreParens();
    if (const auto *CE = dyn_cast<CastExpr>(E)) {
      E = CE->sub();
      continue;
    }
    break;
  }
  const auto *IL = dyn_cast<IntegerLiteralExpr>(E);
  return IL && IL->value() == 0;
}

/// True if a proper prefix of \p Ref is itself tracked as undefined; the
/// completeness checks report only the shallowest undefined reference.
bool hasUndefinedAncestor(const memlint::Env &S, const memlint::RefPath &Ref) {
  memlint::RefPath Cur = Ref;
  while (!Cur.isRoot()) {
    Cur = Cur.parent();
    if (const memlint::SVal *V = S.find(Cur))
      if (V->Def == memlint::DefState::Undefined ||
          V->Def == memlint::DefState::Allocated)
        return true;
  }
  return false;
}

} // namespace

Annotations FunctionChecker::annotationsFor(const RefPath &Ref) const {
  if (Ref.isRoot())
    return Ref.root()->effectiveAnnotations();
  const PathElem &Last = Ref.elems().back();
  if (Last.Field)
    return Last.Field->effectiveAnnotations();
  return Annotations();
}

SVal FunctionChecker::deriveChild(const SVal &Parent,
                                  const PathElem &Elem) const {
  SVal Out;
  Annotations FA =
      Elem.Field ? Elem.Field->effectiveAnnotations() : Annotations();

  // Definition state: dead and undefined parents dominate.
  if (Parent.Def == DefState::Dead) {
    Out.Def = DefState::Dead;
    Out.FreeLoc = Parent.FreeLoc;
  } else if (Parent.Def == DefState::Undefined ||
             Parent.Def == DefState::Allocated) {
    Out.Def = DefState::Undefined;
    Out.DefLoc = Parent.DefLoc;
  } else {
    switch (FA.Def) {
    case DefAnn::Out:
      Out.Def = DefState::Allocated;
      break;
    default:
      Out.Def = DefState::Defined;
      break;
    }
  }

  // Null state from the field's annotations.
  bool IsPointer = Elem.Field && Elem.Field->type().isPointer();
  switch (FA.Null) {
  case NullAnn::Null:
    Out.Null = NullState::PossiblyNull;
    if (Elem.Field)
      Out.NullLoc = Elem.Field->loc();
    break;
  case NullAnn::RelNull:
    Out.Null = NullState::RelNull;
    break;
  case NullAnn::NotNull:
    Out.Null = NullState::NotNull;
    break;
  case NullAnn::Unspecified:
    Out.Null = IsPointer ? NullState::NotNull : NullState::Unknown;
    break;
  }

  // Allocation state from the field's annotations (+ implicit-only flag).
  switch (FA.Alloc) {
  case AllocAnn::Only:
    Out.Alloc = AllocState::Only;
    break;
  case AllocAnn::Owned:
    Out.Alloc = AllocState::Owned;
    break;
  case AllocAnn::Dependent:
    Out.Alloc = AllocState::Dependent;
    break;
  case AllocAnn::Shared:
    Out.Alloc = AllocState::Shared;
    break;
  case AllocAnn::Keep:
  case AllocAnn::Temp:
    Out.Alloc = AllocState::Temp;
    break;
  case AllocAnn::Unspecified:
    Out.Alloc = (IsPointer && Flags.get("implicitonlyfield"))
                    ? AllocState::Only
                    : AllocState::Unqualified;
    break;
  }
  if (Out.Alloc != AllocState::Unqualified && Elem.Field)
    Out.AllocLoc = Elem.Field->loc();
  return Out;
}

SVal FunctionChecker::defaultFor(const RefPath &Ref) const {
  const VarDecl *Root = Ref.root();
  SVal Val;
  Annotations RA = Root->effectiveAnnotations();
  bool IsPointer = Root->type().isPointer();

  if (Ref.rootKind() == RefPath::RootKind::Arg || isa<ParmVarDecl>(Root)) {
    // Parameter defaults (paper §6): completely defined, not null, temp.
    switch (RA.Def) {
    case DefAnn::Out:
      Val.Def = DefState::Allocated;
      break;
    case DefAnn::Partial:
      Val.Def = DefState::Defined; // relaxed: no errors on fields
      break;
    default:
      Val.Def = DefState::Defined;
      break;
    }
    switch (RA.Null) {
    case NullAnn::Null:
      Val.Null = NullState::PossiblyNull;
      Val.NullLoc = Root->loc();
      break;
    case NullAnn::RelNull:
      Val.Null = NullState::RelNull;
      break;
    default:
      Val.Null = IsPointer ? NullState::NotNull : NullState::Unknown;
      break;
    }
    switch (RA.Alloc) {
    case AllocAnn::Only:
      Val.Alloc = AllocState::Only;
      break;
    case AllocAnn::Keep:
      Val.Alloc = AllocState::Keep;
      break;
    case AllocAnn::Owned:
      Val.Alloc = AllocState::Owned;
      break;
    case AllocAnn::Dependent:
      Val.Alloc = AllocState::Dependent;
      break;
    case AllocAnn::Shared:
      Val.Alloc = AllocState::Shared;
      break;
    case AllocAnn::Temp:
      Val.Alloc = AllocState::Temp;
      break;
    case AllocAnn::Unspecified:
      Val.Alloc = (IsPointer && Flags.get("impliedtempparams"))
                      ? AllocState::Temp
                      : AllocState::Unqualified;
      break;
    }
    if (RA.Exposure == ExposureAnn::Observer)
      Val.Alloc = AllocState::Observer;
    Val.AllocLoc = Root->loc();
    Val.DefLoc = Root->loc();
  } else if (Root->isGlobal() || Root->isStaticLocal()) {
    Val.Def = RA.Undef ? DefState::Undefined : DefState::Defined;
    switch (RA.Null) {
    case NullAnn::Null:
      Val.Null = NullState::PossiblyNull;
      Val.NullLoc = Root->loc();
      break;
    case NullAnn::RelNull:
      Val.Null = NullState::RelNull;
      break;
    default:
      Val.Null = IsPointer ? NullState::NotNull : NullState::Unknown;
      break;
    }
    switch (RA.Alloc) {
    case AllocAnn::Only:
      Val.Alloc = AllocState::Only;
      break;
    case AllocAnn::Owned:
      Val.Alloc = AllocState::Owned;
      break;
    case AllocAnn::Dependent:
      Val.Alloc = AllocState::Dependent;
      break;
    case AllocAnn::Shared:
      Val.Alloc = AllocState::Shared;
      break;
    default:
      Val.Alloc = (IsPointer && Flags.get("implicitonlyglob"))
                      ? AllocState::Only
                      : AllocState::Unqualified;
      break;
    }
    Val.AllocLoc = Root->loc();
    Val.DefLoc = Root->loc();
  } else {
    // Local variable before any assignment.
    Val.Def = DefState::Undefined;
    Val.Null = NullState::Unknown;
    Val.Alloc = AllocState::Unqualified;
    Val.DefLoc = Root->loc();
  }

  for (const PathElem &E : Ref.elems())
    Val = deriveChild(Val, E);
  return Val;
}

SVal FunctionChecker::lookupRef(const Env &S, const RefPath &Ref) {
  if (Ref.root()->isGlobal())
    GlobalsUsed.insert(Ref.root());
  if (const SVal *V = S.find(Ref))
    return *V;
  // Derive from the nearest tracked ancestor.
  RefPath Cur = Ref;
  std::vector<PathElem> Pending;
  while (!Cur.isRoot()) {
    Pending.push_back(Cur.elems().back());
    Cur = Cur.parent();
    if (const SVal *V = S.find(Cur)) {
      SVal Val = *V;
      for (auto It = Pending.rbegin(); It != Pending.rend(); ++It)
        Val = deriveChild(Val, *It);
      return Val;
    }
  }
  return defaultFor(Ref);
}

void FunctionChecker::writeRef(Env &S, const RefPath &Ref, const SVal &Val,
                               bool Strong) {
  if (tracing())
    trace("ev=write ref=" + Ref.str() + " state=" + Val.str() +
          (Strong ? " strong=1" : " strong=0"));
  if (Strong)
    S.eraseDescendants(Ref);
  for (const RefPath &Target : S.expansions(Ref))
    S.set(Target, Val);

  // Definition-state propagation to base references (paper §5): assigning
  // incompletely defined storage into l->next makes l partially defined,
  // and defining one field of allocated storage makes its holder partially
  // (no longer merely allocated) defined.
  bool WeakensParent = Val.Def == DefState::Undefined ||
                       Val.Def == DefState::Allocated ||
                       Val.Def == DefState::PartiallyDefined;
  bool StrengthensParent = Val.Def == DefState::Defined;
  if (WeakensParent || StrengthensParent) {
    for (const RefPath &Target : S.expansions(Ref)) {
      RefPath Ancestor = Target;
      while (!Ancestor.isRoot()) {
        Ancestor = Ancestor.parent();
        SVal AV = lookupRef(S, Ancestor);
        if (WeakensParent && AV.Def == DefState::Defined) {
          AV.Def = DefState::PartiallyDefined;
          AV.DefLoc = Val.DefLoc;
          S.set(Ancestor, AV);
        } else if (StrengthensParent && AV.Def == DefState::Allocated) {
          AV.Def = DefState::PartiallyDefined;
          S.set(Ancestor, AV);
        }
      }
    }
  }
}

void FunctionChecker::setNullState(Env &S, const RefPath &Ref, NullState NS,
                                   const SourceLocation &Loc) {
  if (tracing())
    trace("ev=null ref=" + Ref.str() + " null=" + nullStateName(NS) +
          " loc=" + Loc.str());
  for (const RefPath &Target : S.expansions(Ref)) {
    SVal Val = lookupRef(S, Target);
    if (Val.Null == NullState::RelNull && NS == NullState::PossiblyNull)
      continue; // relnull never degrades to an error-producing state
    Val.Null = NS;
    if (NS == NullState::PossiblyNull || NS == NullState::DefinitelyNull)
      Val.NullLoc = Loc;
    S.set(Target, Val);
  }
}

void FunctionChecker::materializeChildren(Env &S, const RefPath &Ref,
                                          QualType PtrTy,
                                          const SourceLocation &Loc) {
  if (Ref.depth() >= 8 || PtrTy.isNull())
    return;
  if (!PtrTy.isPointer() && !PtrTy.isArray())
    return;
  QualType Pointee = PtrTy.pointee().canonical();
  const auto *RT = dyn_cast_or_null<RecordType>(Pointee.type());
  if (!RT || !RT->decl()->isComplete())
    return;
  SVal Parent;
  Parent.Def = DefState::Allocated;
  Parent.DefLoc = Loc;
  PathElem DerefElem;
  DerefElem.K = PathElem::Kind::Deref;
  RefPath PointeeRef = Ref.child(DerefElem);
  for (FieldDecl *F : RT->decl()->fields()) {
    PathElem Elem;
    Elem.K = PathElem::Kind::Dot;
    Elem.Field = F;
    Elem.FieldName = F->name();
    SVal Child = deriveChild(Parent, Elem);
    Child.DefLoc = Loc;
    writeRef(S, PointeeRef.child(Elem), Child, /*Strong=*/false);
  }
}

void FunctionChecker::consumeObligation(Env &S, const RefPath &Ref,
                                        bool MakeDead,
                                        const SourceLocation &Loc) {
  if (tracing())
    trace("ev=consume ref=" + Ref.str() +
          (MakeDead ? " dead=1" : " dead=0") + " loc=" + Loc.str());
  for (const RefPath &Target : S.expansions(Ref)) {
    SVal Val = lookupRef(S, Target);
    Val.Alloc = AllocState::Kept;
    if (MakeDead) {
      Val.Def = DefState::Dead;
      Val.FreeLoc = Loc;
    }
    S.set(Target, Val);
  }
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

void FunctionChecker::checkAll() {
  for (const FunctionDecl *FD : TU.definedFunctions()) {
    // Fault containment: an internal error in one function's analysis must
    // not take down the whole run. Convert it into a diagnostic and keep
    // every result produced so far.
    try {
      checkFunction(FD);
    } catch (const std::exception &E) {
      if (Budget)
        Budget->noteInternalError();
      CurFn = nullptr;
      TraceActive = false;
      Diags.report(CheckId::ParseError, FD->loc(),
                   "internal error while checking function '" + FD->name() +
                       "': " + E.what() +
                       "; results for this function are incomplete",
                   Severity::Error);
    }
  }
}

bool FunctionChecker::takeStmt(const Stmt *St, Env &S) {
  if (Budget)
    Budget->checkCancelled();
  unsigned Max = Budget ? Budget->budget().MaxStmtsPerFunction : 0;
  if ((Budget && Budget->budgetForcedExhausted()) ||
      limitExhausted(StmtCount, Max)) {
    noteBudget("limitstmts", Max, St->loc(),
               "statement budget exceeded in function '" +
                   (CurFn ? CurFn->name() : std::string("?")) +
                   "'; remaining statements not analyzed",
               StmtNoticed);
    S.setUnreachable();
    return false;
  }
  ++StmtCount;
  return true;
}

bool FunctionChecker::takeSplits(unsigned N, const SourceLocation &Loc,
                                 Env &S) {
  if (Budget)
    Budget->checkCancelled();
  unsigned Max = Budget ? Budget->budget().MaxEnvSplitsPerFunction : 0;
  if ((Budget && Budget->budgetForcedExhausted()) ||
      (Max != 0 && SplitCount + N > Max)) {
    noteBudget("limitsplits", Max, Loc,
               "environment split budget exceeded in function '" +
                   (CurFn ? CurFn->name() : std::string("?")) +
                   "'; remaining paths not analyzed",
               SplitNoticed);
    S.setUnreachable();
    return false;
  }
  SplitCount += N;
  return true;
}

void FunctionChecker::noteBudget(const char *Flag, unsigned Limit,
                                 const SourceLocation &Loc,
                                 const std::string &What, bool &Noticed) {
  if (Budget)
    Budget->noteDegradation(Flag);
  if (Noticed)
    return;
  Noticed = true;
  Diags.report(CheckId::ParseError, Loc,
               What + " (" + Flag + "=" + std::to_string(Limit) + ")",
               Severity::Note);
}

void FunctionChecker::checkFunction(const FunctionDecl *FD) {
  if (!FD->body())
    return;
  CurFn = FD;
  TraceActive = TraceSink && !TraceFn.empty() && FD->name() == TraceFn;
  // Records even when the body below throws: the containment path in
  // checkAll still charges this function's time to "check.function" (both
  // the aggregate timer and the latency distribution) and its span.
  ScopedLatency FnTimer(Metrics, "check.function", "hist.check.function");
  ScopedTraceSpan FnSpan(Trace, "check", "check.function");
  FnSpan.arg("fn", FD->name());
  GlobalsUsed.clear();
  LocalScopes.clear();
  Loops.clear();
  StmtCount = SplitCount = EvalDepth = 0;
  StmtNoticed = SplitNoticed = DepthNoticed = false;
  DefaultFn_ = [this](const RefPath &Ref) { return defaultFor(Ref); };
  Interner_ = std::make_shared<RefInterner>();
  EnvStats_ = EnvStats();

  if (tracing())
    trace("ev=enter loc=" + FD->loc().str());

  Env S = makeEnv();
  // Parameters: annotations assumed true at entry; pointer parameters get a
  // caller-visible mirror the local initially aliases (the paper's argl).
  for (const ParmVarDecl *P : FD->params()) {
    if (P->name().empty())
      continue;
    RefPath Local = RefPath::var(P);
    SVal Entry = defaultFor(Local);
    S.set(Local, Entry);
    if (P->type().isPointer()) {
      RefPath Mirror = RefPath::arg(P);
      S.set(Mirror, Entry);
      S.addAlias(Local, Mirror);
      // An out parameter's reachable storage is undefined at entry; track
      // its fields so the must-define-before-return check is precise.
      if (Entry.Def == DefState::Allocated)
        materializeChildren(S, Local, P->type(), P->loc());
    }
  }

  execCompound(FD->body(), S);

  // Fall-off-the-end exit point.
  if (!S.isUnreachable())
    checkExitPoint(S, FD->body()->endLoc());
  if (tracing())
    trace("ev=exit stmts=" + std::to_string(StmtCount) +
          " splits=" + std::to_string(SplitCount));
  if (Flags.get("stats"))
    emitStats(FD);
  if (Metrics)
    recordFunctionMetrics();
  CurFn = nullptr;
  TraceActive = false;
}

void FunctionChecker::recordFunctionMetrics() {
  Metrics->addCounter("check.functions");
  Metrics->addCounter("check.stmts", StmtCount);
  Metrics->addCounter("check.splits", SplitCount);
  // Environment counters are only collected under +stats (see makeEnv);
  // folding zeros in without the flag would misreport the run as measured.
  if (!Flags.get("stats"))
    return;
  const EnvStats &ES = EnvStats_;
  Metrics->addCounter("env.copies", ES.Copies);
  Metrics->addCounter("env.lookups", ES.Lookups);
  Metrics->addCounter("env.writes", ES.Writes);
  Metrics->addCounter("env.merges", ES.Merges);
  Metrics->addCounter("env.merged_slots", ES.MergedSlots);
  Metrics->addCounter("env.skipped_chunks", ES.SkippedChunks);
  Metrics->addCounter("env.bytes_shared", ES.BytesShared);
  Metrics->addCounter("env.bytes_copied", ES.BytesCopied);
  Metrics->addCounter("env.table_clones", ES.TableClones);
  Metrics->addCounter("env.chunk_clones", ES.ChunkClones);
  Metrics->addCounter("env.alias_clones", ES.AliasClones);
}

void FunctionChecker::trace(const std::string &Event) {
  if (!TraceSink)
    return;
  TraceSink("fn=" + (CurFn ? CurFn->name() : std::string("?")) + " " + Event);
}

void FunctionChecker::emitStats(const FunctionDecl *FD) {
  const EnvStats &ES = EnvStats_;
  auto N = [](unsigned long long V) { return std::to_string(V); };
  Diags.report(
      CheckId::ParseError, FD->loc(),
      "stats for function '" + FD->name() + "': env copies " + N(ES.Copies) +
          ", splits " + N(SplitCount) + ", lookups " + N(ES.Lookups) +
          ", writes " + N(ES.Writes) + ", merges " + N(ES.Merges) +
          " (slots " + N(ES.MergedSlots) + ", chunks skipped " +
          N(ES.SkippedChunks) + "), bytes shared " + N(ES.BytesShared) +
          " vs copied " + N(ES.BytesCopied) + " (tables cloned " +
          N(ES.TableClones) + ", chunks " + N(ES.ChunkClones) +
          ", alias tables " + N(ES.AliasClones) + "), interned refs " +
          N(Interner_ ? Interner_->size() : 0),
      Severity::Note);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FunctionChecker::execStmt(const Stmt *St, Env &S) {
  if (!St || S.isUnreachable())
    return;
  if (!takeStmt(St, S))
    return;
  switch (St->kind()) {
  case Stmt::StmtKind::Compound:
    execCompound(cast<CompoundStmt>(St), S);
    return;
  case Stmt::StmtKind::Null:
    return;
  case Stmt::StmtKind::Decl: {
    for (const VarDecl *VD : cast<DeclStmt>(St)->decls())
      execDecl(VD, S, St->loc());
    return;
  }
  case Stmt::StmtKind::Expr:
    evalExpr(cast<ExprStmt>(St)->expr(), S, /*AsRValue=*/false);
    return;
  case Stmt::StmtKind::If:
    execIf(cast<IfStmt>(St), S);
    return;
  case Stmt::StmtKind::While:
    execWhile(cast<WhileStmt>(St), S);
    return;
  case Stmt::StmtKind::Do:
    execDo(cast<DoStmt>(St), S);
    return;
  case Stmt::StmtKind::For:
    execFor(cast<ForStmt>(St), S);
    return;
  case Stmt::StmtKind::Switch:
    execSwitch(cast<SwitchStmt>(St), S);
    return;
  case Stmt::StmtKind::Return:
    execReturn(cast<ReturnStmt>(St), S);
    return;
  case Stmt::StmtKind::Break: {
    if (!Loops.empty())
      Loops.back()->Breaks.push_back(S);
    S.setUnreachable();
    return;
  }
  case Stmt::StmtKind::Continue: {
    // Find the innermost loop (continue skips switch contexts).
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It) {
      if (!(*It)->IsSwitch) {
        (*It)->Continues.push_back(S);
        break;
      }
    }
    S.setUnreachable();
    return;
  }
  }
}

void FunctionChecker::execCompound(const CompoundStmt *CS, Env &S) {
  LocalScopes.emplace_back();
  for (const Stmt *Sub : CS->body())
    execStmt(Sub, S);
  std::vector<const VarDecl *> Locals = std::move(LocalScopes.back());
  LocalScopes.pop_back();
  if (!S.isUnreachable())
    checkScopeExit(S, Locals, CS->endLoc());
  // Out-of-scope names must not contribute phantom states to later merges.
  for (const VarDecl *VD : Locals)
    if (!VD->isStaticLocal())
      S.forget(RefPath::var(VD));
}

void FunctionChecker::execDecl(const VarDecl *VD, Env &S,
                               const SourceLocation &Loc) {
  if (!LocalScopes.empty())
    LocalScopes.back().push_back(VD);

  RefPath Ref = RefPath::var(VD);
  if (VD->isStaticLocal()) {
    // Static locals persist; zero-initialized, treated like annotated
    // globals with a defined initial value.
    SVal Val = defaultFor(Ref);
    Val.Def = DefState::Defined;
    S.set(Ref, Val);
    if (VD->init()) {
      EvalResult R = evalExpr(VD->init(), S, /*AsRValue=*/true);
      assignTo(Ref, VD->effectiveAnnotations(), VD->type(), R, S, VD->loc(),
               VD->name() + " = " + exprToString(VD->init()),
               /*IsInitialization=*/true);
    }
    return;
  }

  if (const Expr *Init = VD->init()) {
    if (isa<InitListExpr>(Init)) {
      // Aggregate initializer: evaluate elements as rvalue uses, then the
      // whole is defined.
      for (const Expr *E : cast<InitListExpr>(Init)->inits()) {
        EvalResult R = evalExpr(E, S, /*AsRValue=*/true);
        (void)R;
      }
      SVal Val;
      Val.Def = DefState::Defined;
      Val.Null = NullState::Unknown;
      Val.DefLoc = VD->loc();
      S.set(Ref, Val);
      return;
    }
    EvalResult R = evalExpr(VD->init(), S, /*AsRValue=*/true);
    assignTo(Ref, VD->effectiveAnnotations(), VD->type(), R, S, VD->loc(),
             VD->name() + " = " + exprToString(VD->init()),
             /*IsInitialization=*/true);
    return;
  }

  // Uninitialized local. Scalars are undefined; arrays and records have
  // valid storage whose contents are undefined (their address is usable),
  // which is exactly the Allocated state.
  SVal Val;
  QualType Canon = VD->type().canonical();
  bool HasStorage = VD->type().isArray() || VD->type().isRecord();
  Val.Def = HasStorage ? DefState::Allocated : DefState::Undefined;
  Val.Null = NullState::Unknown;
  Val.Alloc = AllocState::Unqualified;
  Val.DefLoc = VD->loc();
  (void)Canon;
  // An /*@out@*/ local (unusual but legal) starts allocated.
  if (VD->effectiveAnnotations().Def == DefAnn::Out)
    Val.Def = DefState::Allocated;
  S.set(Ref, Val);
}

void FunctionChecker::reportConflicts(
    const std::vector<Env::Conflict> &Conflicts, const SourceLocation &Loc) {
  for (const Env::Conflict &C : Conflicts) {
    if (C.AllocConflict && checkEnabled(CheckId::BranchState)) {
      Diags
          .report(CheckId::BranchState, Loc,
                  "Storage " + C.Ref.str() + " is " +
                      allocStateName(C.Ours.Alloc) + " on one branch, " +
                      allocStateName(C.Theirs.Alloc) +
                      " on the other (inconsistent obligations at branch "
                      "merge)")
          .note(C.Ours.AllocLoc.isValid() ? C.Ours.AllocLoc
                                          : C.Theirs.AllocLoc,
                "Storage " + C.Ref.str() + " becomes " +
                    allocStateName(holdsObligation(C.Ours.Alloc)
                                       ? C.Theirs.Alloc
                                       : C.Ours.Alloc));
    } else if (C.DefConflict && checkEnabled(CheckId::BranchState)) {
      SourceLocation FreeLoc =
          C.Ours.FreeLoc.isValid() ? C.Ours.FreeLoc : C.Theirs.FreeLoc;
      Diags
          .report(CheckId::BranchState, Loc,
                  "Storage " + C.Ref.str() +
                      " is released on one path but live on the other")
          .note(FreeLoc, "Storage " + C.Ref.str() + " released");
    }
  }
}

void FunctionChecker::execIf(const IfStmt *IS, Env &S) {
  evalExpr(IS->cond(), S, /*AsRValue=*/true);
  if (!takeSplits(2, IS->loc(), S))
    return;
  if (tracing())
    trace("ev=split kind=if loc=" + IS->loc().str());

  Env TrueEnv = S;
  refine(TrueEnv, IS->cond(), true);
  Env FalseEnv = S;
  refine(FalseEnv, IS->cond(), false);

  execStmt(IS->thenStmt(), TrueEnv);
  if (IS->elseStmt())
    execStmt(IS->elseStmt(), FalseEnv);

  std::vector<Env::Conflict> Conflicts =
      TrueEnv.mergeFrom(FalseEnv, DefaultFn_);
  reportConflicts(Conflicts, IS->loc());
  if (tracing())
    trace("ev=merge kind=if loc=" + IS->loc().str() +
          " conflicts=" + std::to_string(Conflicts.size()));
  S = std::move(TrueEnv);
}

void FunctionChecker::execWhile(const WhileStmt *WS, Env &S) {
  evalExpr(WS->cond(), S, /*AsRValue=*/true);
  if (!takeSplits(2, WS->loc(), S))
    return;
  if (tracing())
    trace("ev=split kind=while loc=" + WS->loc().str());

  // Zero executions: condition false.
  Env SkipEnv = S;
  refine(SkipEnv, WS->cond(), false);

  // One execution: condition true, then the body (no back edge).
  Env BodyEnv = S;
  refine(BodyEnv, WS->cond(), true);

  LoopContext Ctx;
  Loops.push_back(&Ctx);
  execStmt(WS->body(), BodyEnv);
  Loops.pop_back();

  for (Env &C : Ctx.Continues)
    reportConflicts(BodyEnv.mergeFrom(C, DefaultFn_), WS->loc());
  reportConflicts(BodyEnv.mergeFrom(SkipEnv, DefaultFn_), WS->loc());
  for (Env &B : Ctx.Breaks)
    reportConflicts(BodyEnv.mergeFrom(B, DefaultFn_), WS->loc());
  if (tracing())
    trace("ev=merge kind=while loc=" + WS->loc().str());
  S = std::move(BodyEnv);
}

void FunctionChecker::execDo(const DoStmt *DS, Env &S) {
  // The body runs exactly once under the paper's model.
  LoopContext Ctx;
  Loops.push_back(&Ctx);
  execStmt(DS->body(), S);
  Loops.pop_back();

  if (!S.isUnreachable())
    evalExpr(DS->cond(), S, /*AsRValue=*/true);
  for (Env &C : Ctx.Continues)
    reportConflicts(S.mergeFrom(C, DefaultFn_), DS->loc());
  for (Env &B : Ctx.Breaks)
    reportConflicts(S.mergeFrom(B, DefaultFn_), DS->loc());
  if (tracing())
    trace("ev=merge kind=do loc=" + DS->loc().str());
}

void FunctionChecker::execFor(const ForStmt *FS, Env &S) {
  LocalScopes.emplace_back();
  execStmt(FS->init(), S);

  if (FS->cond())
    evalExpr(FS->cond(), S, /*AsRValue=*/true);
  if (!takeSplits(2, FS->loc(), S)) {
    LocalScopes.pop_back();
    return;
  }
  if (tracing())
    trace("ev=split kind=for loc=" + FS->loc().str());

  Env SkipEnv = S;
  if (FS->cond())
    refine(SkipEnv, FS->cond(), false);

  Env BodyEnv = S;
  if (FS->cond())
    refine(BodyEnv, FS->cond(), true);

  LoopContext Ctx;
  Loops.push_back(&Ctx);
  execStmt(FS->body(), BodyEnv);
  Loops.pop_back();

  for (Env &C : Ctx.Continues)
    reportConflicts(BodyEnv.mergeFrom(C, DefaultFn_), FS->loc());
  if (!BodyEnv.isUnreachable() && FS->inc())
    evalExpr(FS->inc(), BodyEnv, /*AsRValue=*/false);
  reportConflicts(BodyEnv.mergeFrom(SkipEnv, DefaultFn_), FS->loc());
  for (Env &B : Ctx.Breaks)
    reportConflicts(BodyEnv.mergeFrom(B, DefaultFn_), FS->loc());
  if (tracing())
    trace("ev=merge kind=for loc=" + FS->loc().str());

  std::vector<const VarDecl *> Locals = std::move(LocalScopes.back());
  LocalScopes.pop_back();
  if (!BodyEnv.isUnreachable())
    checkScopeExit(BodyEnv, Locals, FS->loc());
  for (const VarDecl *VD : Locals)
    if (!VD->isStaticLocal())
      BodyEnv.forget(RefPath::var(VD));
  S = std::move(BodyEnv);
}

void FunctionChecker::execSwitch(const SwitchStmt *SS, Env &S) {
  evalExpr(SS->cond(), S, /*AsRValue=*/true);
  if (!takeSplits(static_cast<unsigned>(SS->sections().size()) + 1, SS->loc(),
                  S))
    return;
  if (tracing())
    trace("ev=split kind=switch loc=" + SS->loc().str() +
          " sections=" + std::to_string(SS->sections().size()));

  Env Base = S;
  Env Result = makeEnv();
  Result.setUnreachable();

  LoopContext Ctx;
  Ctx.IsSwitch = true;
  Loops.push_back(&Ctx);

  Env Fallthrough = makeEnv();
  Fallthrough.setUnreachable();
  for (const SwitchStmt::CaseSection &Section : SS->sections()) {
    Env SectionEnv = Base;
    reportConflicts(SectionEnv.mergeFrom(Fallthrough, DefaultFn_),
                    Section.Loc);
    for (const Stmt *Sub : Section.Body)
      execStmt(Sub, SectionEnv);
    Fallthrough = std::move(SectionEnv);
  }
  Loops.pop_back();

  reportConflicts(Result.mergeFrom(Fallthrough, DefaultFn_), SS->loc());
  for (Env &B : Ctx.Breaks)
    reportConflicts(Result.mergeFrom(B, DefaultFn_), SS->loc());
  if (!SS->hasDefault())
    reportConflicts(Result.mergeFrom(Base, DefaultFn_), SS->loc());
  if (tracing())
    trace("ev=merge kind=switch loc=" + SS->loc().str());
  S = std::move(Result);
}

void FunctionChecker::execReturn(const ReturnStmt *RS, Env &S) {
  Annotations RA = CurFn->effectiveReturnAnnotations();
  bool ReturnsPointer = CurFn->returnType().isPointer();

  if (const Expr *Value = RS->value()) {
    EvalResult R = evalExpr(Value, S, /*AsRValue=*/true);
    std::string ValueText = exprToString(Value);

    if (Observer && ReturnsPointer) {
      CheckObserver::ReturnFact Fact;
      Fact.HoldsObligation = holdsObligation(R.Val.Alloc);
      Fact.MayBeNull = R.Val.mayBeNull();
      Fact.IsNullConst = R.IsNullConst;
      if (R.Ref && R.Ref->isRoot())
        Fact.ReturnedParam = dyn_cast<ParmVarDecl>(R.Ref->root());
      for (const RefPath &Alias : R.ResultAliases)
        if (!Fact.ReturnedParam && Alias.isRoot())
          Fact.ReturnedParam = dyn_cast<ParmVarDecl>(Alias.root());
      Observer->observeReturn(Fact);
    }

    // Null state of the returned value.
    if (ReturnsPointer && RA.Null == NullAnn::Unspecified &&
        !R.IsNullConst && R.Val.mayBeNull() &&
        checkEnabled(CheckId::NullReturn)) {
      Diags
          .report(CheckId::NullReturn, RS->loc(),
                  "Possibly null storage returned as non-null: return " +
                      ValueText)
          .note(R.Val.NullLoc,
                "Storage " + (R.Ref ? R.Ref->str() : ValueText) +
                    " may become null");
    }
    if (ReturnsPointer && RA.Null == NullAnn::Unspecified && R.IsNullConst &&
        checkEnabled(CheckId::NullReturn)) {
      Diags.report(CheckId::NullReturn, RS->loc(),
                   "Null value returned as non-null: return " + ValueText);
    }

    // Null storage derivable from the returned reference (Figure 7).
    if (R.Ref && checkEnabled(CheckId::NullReturn)) {
      for (const auto &KV : S.items()) {
        const RefPath &Tracked = *KV.first;
        if (Tracked == *R.Ref || !Tracked.hasPrefix(*R.Ref))
          continue;
        if (!KV.second->mayBeNull())
          continue;
        Annotations ChildAnnots = annotationsFor(Tracked);
        if (ChildAnnots.Null != NullAnn::Unspecified)
          continue; // annotated null/relnull: allowed to be null
        Diags
            .report(CheckId::NullReturn, RS->loc(),
                    "Null storage " + Tracked.str() +
                        " derivable from return value: " + ValueText)
            .note(KV.second->NullLoc,
                  "Storage " + Tracked.str() + " becomes null");
      }
    }

    // Completeness of the returned storage.
    if (R.Ref && RA.Def != DefAnn::Out && RA.Def != DefAnn::Partial &&
        RA.Def != DefAnn::RelDef && checkEnabled(CheckId::CompleteDefine)) {
      for (const auto &KV : S.items()) {
        const RefPath &Tracked = *KV.first;
        if (Tracked == *R.Ref || !Tracked.hasPrefix(*R.Ref))
          continue;
        if (KV.second->Def != DefState::Undefined &&
            KV.second->Def != DefState::Allocated)
          continue;
        if (hasUndefinedAncestor(S, Tracked))
          continue;
        Annotations ChildAnnots = annotationsFor(Tracked);
        if (ChildAnnots.Def == DefAnn::Out ||
            ChildAnnots.Def == DefAnn::Partial ||
            ChildAnnots.Def == DefAnn::RelDef)
          continue;
        Diags.report(CheckId::CompleteDefine, RS->loc(),
                     "Returned storage not completely defined: " +
                         Tracked.str() + " is undefined");
      }
    }

    // Allocation-state transfer through the return value.
    bool GCMode = Flags.get("gcmode");
    if (RA.Alloc == AllocAnn::Only || RA.Alloc == AllocAnn::Owned) {
      switch (R.Val.Alloc) {
      case AllocState::Temp:
        if (checkEnabled(CheckId::AliasTransfer))
          Diags
              .report(CheckId::AliasTransfer, RS->loc(),
                      "Temp storage " + ValueText +
                          " returned as only: return " + ValueText)
              .note(R.Val.AllocLoc,
                    "Storage " + (R.Ref ? R.Ref->str() : ValueText) +
                        " becomes temp");
        break;
      case AllocState::Dependent:
      case AllocState::Shared:
      case AllocState::Observer:
      case AllocState::Kept:
        if (checkEnabled(CheckId::AliasTransfer))
          Diags.report(CheckId::AliasTransfer, RS->loc(),
                       std::string(allocStateName(R.Val.Alloc)) +
                           " storage returned as only: return " + ValueText);
        break;
      default:
        break;
      }
      if (R.Ref)
        consumeObligation(S, *R.Ref, /*MakeDead=*/false, RS->loc());
    } else if (ReturnsPointer && !GCMode &&
               holdsObligation(R.Val.Alloc) &&
               !(R.Ref && R.Ref->isRoot() && R.Ref->root()->isGlobal()) &&
               RA.Exposure != ExposureAnn::Observer &&
               checkEnabled(CheckId::MustFree) && !Flags.get("implicitonlyret")) {
      // (Returning an only global is excluded above: the global remains the
      // owner and the result is merely an alias of it.)
      // Newly allocated storage escapes without an only annotation: the
      // obligation to release is not transferred (paper §6, -allimponly).
      Diags
          .report(CheckId::MustFree, RS->loc(),
                  "Fresh storage returned without only annotation (memory "
                  "leak): return " +
                      ValueText)
          .note(R.Val.AllocLoc,
                "Storage " + (R.Ref ? R.Ref->str() : ValueText) +
                    " becomes " + allocStateName(R.Val.Alloc));
      if (R.Ref)
        consumeObligation(S, *R.Ref, /*MakeDead=*/false, RS->loc());
    } else if (ReturnsPointer && holdsObligation(R.Val.Alloc) && R.Ref) {
      // Implicit-only return or GC mode: the caller takes the obligation.
      consumeObligation(S, *R.Ref, /*MakeDead=*/false, RS->loc());
    }
  }

  checkExitPoint(S, RS->loc());
  S.setUnreachable();
}

//===----------------------------------------------------------------------===//
// Interface checks at exit
//===----------------------------------------------------------------------===//

void FunctionChecker::checkExitPoint(Env &S, const SourceLocation &Loc) {
  bool GCMode = Flags.get("gcmode");

  // Globals used by this function.
  for (const VarDecl *G : GlobalsUsed) {
    RefPath Ref = RefPath::var(G);
    SVal Val = lookupRef(S, Ref);
    Annotations GA = G->effectiveAnnotations();

    if (G->type().isPointer() && GA.Null == NullAnn::Unspecified &&
        Val.mayBeNull() && checkEnabled(CheckId::NullReturn)) {
      Diags
          .report(CheckId::NullReturn, Loc,
                  "Function returns with non-null global " + G->name() +
                      " referencing null storage")
          .note(Val.NullLoc, "Storage " + G->name() + " may become null");
      setNullState(S, Ref, NullState::NotNull, Loc); // avoid cascades
    }

    if (Val.Def == DefState::Dead && checkEnabled(CheckId::GlobalState)) {
      Diags
          .report(CheckId::GlobalState, Loc,
                  "Function returns with global " + G->name() +
                      " referencing released storage")
          .note(Val.FreeLoc, "Storage " + G->name() + " released");
      SVal Poison = Val;
      Poison.Def = DefState::Error;
      S.set(Ref, Poison);
    }

    if ((Val.Def == DefState::Undefined || Val.Def == DefState::Allocated) &&
        !GA.Undef && GA.Def != DefAnn::Out && GA.Def != DefAnn::Partial &&
        checkEnabled(CheckId::GlobalState)) {
      Diags.report(CheckId::GlobalState, Loc,
                   "Function returns with global " + G->name() +
                       " not completely defined");
      SVal Poison = Val;
      Poison.Def = DefState::Error;
      S.set(Ref, Poison);
    }

    // Tracked undefined/null children of annotated-complete globals.
    for (const auto &KV : S.items()) {
      const RefPath &Tracked = *KV.first;
      if (Tracked == Ref || !Tracked.hasPrefix(Ref))
        continue;
      const SVal &TV = *KV.second;
      Annotations ChildAnnots = annotationsFor(Tracked);
      if ((TV.Def == DefState::Undefined || TV.Def == DefState::Allocated) &&
          !hasUndefinedAncestor(S, Tracked) &&
          ChildAnnots.Def == DefAnn::Unspecified &&
          Val.Def != DefState::Dead && Val.Def != DefState::Error &&
          checkEnabled(CheckId::CompleteDefine)) {
        Diags.report(CheckId::CompleteDefine, Loc,
                     "Function returns with global " + G->name() +
                         " referencing incompletely-defined storage (" +
                         Tracked.str() + " is undefined)");
      }
    }
  }

  // Parameters: the caller's view.
  for (const ParmVarDecl *P : CurFn->params()) {
    if (P->name().empty() || !P->type().isPointer())
      continue;
    Annotations PA = P->effectiveAnnotations();
    RefPath Mirror = RefPath::arg(P);
    SVal MirrorVal = lookupRef(S, Mirror);

    // Completeness: an out parameter must be completely defined before
    // return; any parameter's reachable storage must be defined.
    bool DefRelaxed = PA.Def == DefAnn::Partial || PA.Def == DefAnn::RelDef;
    if (!DefRelaxed && checkEnabled(PA.Def == DefAnn::Out
                                        ? CheckId::InterfaceDefine
                                        : CheckId::CompleteDefine)) {
      if (PA.Def == DefAnn::Out &&
          (MirrorVal.Def == DefState::Allocated ||
           MirrorVal.Def == DefState::Undefined)) {
        Diags.report(CheckId::InterfaceDefine, Loc,
                     "Out parameter " + P->name() +
                         " not defined before return");
      }
      if (MirrorVal.Def != DefState::Dead &&
          MirrorVal.Def != DefState::Error) {
        for (const auto &KV : S.items()) {
          const RefPath &Tracked = *KV.first;
          if (Tracked == Mirror || !Tracked.hasPrefix(Mirror))
            continue;
          const SVal &TV = *KV.second;
          if (TV.Def != DefState::Undefined &&
              TV.Def != DefState::Allocated)
            continue;
          if (hasUndefinedAncestor(S, Tracked))
            continue;
          Annotations ChildAnnots = annotationsFor(Tracked);
          if (ChildAnnots.Def != DefAnn::Unspecified)
            continue;
          // Print through the parameter's source name.
          RefPath Printable =
              Tracked.withPrefixReplaced(Mirror, RefPath::var(P));
          CheckId Id = PA.Def == DefAnn::Out ? CheckId::InterfaceDefine
                                             : CheckId::CompleteDefine;
          Diags
              .report(Id, Loc,
                      "Function returns with parameter " + P->name() +
                          " referencing incompletely-defined storage (" +
                          Printable.str() + " is undefined)")
              .note(TV.DefLoc,
                    "Storage " + Printable.str() + " allocated here");
        }
      }
    }

    // Obligation of only/keep parameters must be satisfied.
    if (!GCMode && (PA.Alloc == AllocAnn::Only) &&
        checkEnabled(CheckId::MustFree)) {
      RefPath Local = RefPath::var(P);
      SVal LocalVal = lookupRef(S, Local);
      if (LocalVal.Alloc == AllocState::Only &&
          LocalVal.Def != DefState::Dead &&
          LocalVal.Null != NullState::DefinitelyNull) {
        Diags
            .report(CheckId::MustFree, Loc,
                    "Only storage " + P->name() +
                        " not released before return")
            .note(P->loc(), "Storage " + P->name() + " becomes only");
        consumeObligation(S, Local, /*MakeDead=*/false, Loc);
      }
    }

    // A temp or keep parameter must still be usable by the caller.
    if ((PA.Alloc == AllocAnn::Temp || PA.Alloc == AllocAnn::Keep ||
         PA.Alloc == AllocAnn::Unspecified) &&
        MirrorVal.Def == DefState::Dead &&
        checkEnabled(CheckId::UseReleased)) {
      Diags
          .report(CheckId::UseReleased, Loc,
                  "Function returns with temp parameter " + P->name() +
                      " referencing released storage")
          .note(MirrorVal.FreeLoc, "Storage " + P->name() + " released");
      SVal Poison = MirrorVal;
      Poison.Def = DefState::Error;
      S.set(Mirror, Poison);
    }
  }

  // Locals still in scope holding an obligation.
  if (!GCMode && checkEnabled(CheckId::MustFree)) {
    for (const auto &Scope : LocalScopes) {
      for (const VarDecl *VD : Scope) {
        RefPath Ref = RefPath::var(VD);
        SVal Val = lookupRef(S, Ref);
        if (!holdsObligation(Val.Alloc) || Val.Def == DefState::Dead)
          continue;
        if (Val.Null == NullState::DefinitelyNull)
          continue; // a null pointer holds no storage
        // If an external reference (global, arg mirror, or parameter)
        // aliases it, the obligation has an owner that outlives this
        // reference.
        bool Escapes = false;
        for (const RefPath &Alias : S.aliasesOf(Ref))
          if (Alias.rootKind() == RefPath::RootKind::Arg ||
              Alias.root()->isGlobal() || isa<ParmVarDecl>(Alias.root()))
            Escapes = true;
        if (Escapes)
          continue;
        if (Val.Alloc == AllocState::RefCounted)
          Diags
              .report(CheckId::MustFree, Loc,
                      "New reference " + VD->name() +
                          " not released before return (missing killref)")
              .note(Val.AllocLoc,
                    "Reference " + VD->name() + " created");
        else
          Diags
              .report(CheckId::MustFree, Loc,
                      "Fresh storage " + VD->name() +
                          " not released before return (memory leak)")
              .note(Val.AllocLoc, "Storage " + VD->name() + " allocated");
        consumeObligation(S, Ref, /*MakeDead=*/false, Loc);
      }
    }
  }
}

void FunctionChecker::checkScopeExit(Env &S,
                                     const std::vector<const VarDecl *> &Locals,
                                     const SourceLocation &Loc) {
  if (Flags.get("gcmode") || !checkEnabled(CheckId::MustFree))
    return;
  for (const VarDecl *VD : Locals) {
    if (VD->isStaticLocal())
      continue;
    RefPath Ref = RefPath::var(VD);
    SVal Val = lookupRef(S, Ref);
    if (!holdsObligation(Val.Alloc) || Val.Def == DefState::Dead)
      continue;
    if (Val.Null == NullState::DefinitelyNull)
      continue; // a null pointer holds no storage
    bool Escapes = false;
    for (const RefPath &Alias : S.aliasesOf(Ref))
      if (Alias.rootKind() == RefPath::RootKind::Arg ||
          Alias.root()->isGlobal() || isa<ParmVarDecl>(Alias.root()))
        Escapes = true;
    if (Escapes)
      continue;
    Diags
        .report(CheckId::MustFree, Loc,
                "Fresh storage " + VD->name() +
                    " not released before scope exit (memory leak)")
        .note(Val.AllocLoc, "Storage " + VD->name() + " allocated");
  }
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

void FunctionChecker::checkRValueUse(Env &S, EvalResult &R, const Expr *E) {
  if (!R.Ref)
    return;
  SVal Val = lookupRef(S, *R.Ref);
  if (Val.Def == DefState::Dead && checkEnabled(CheckId::UseReleased)) {
    Diags
        .report(CheckId::UseReleased, E->loc(),
                "Dead storage " + R.Ref->str() + " used: " + exprToString(E))
        .note(Val.FreeLoc, "Storage " + R.Ref->str() + " released");
    Val.Def = DefState::Error; // poison to avoid cascades
    writeRef(S, *R.Ref, Val, /*Strong=*/false);
    R.Val = Val;
    return;
  }
  if (Val.Def == DefState::Undefined) {
    Annotations RA = annotationsFor(*R.Ref);
    bool Relaxed = RA.Def == DefAnn::RelDef || RA.Def == DefAnn::Partial;
    if (!Relaxed && checkEnabled(CheckId::UseUndefined)) {
      Diags
          .report(CheckId::UseUndefined, E->loc(),
                  "Storage " + R.Ref->str() +
                      " used before definition: " + exprToString(E))
          .note(Val.DefLoc, "Storage " + R.Ref->str() + " allocated here");
    }
    Val.Def = DefState::Defined; // poison either way
    writeRef(S, *R.Ref, Val, /*Strong=*/false);
    R.Val = Val;
  }
}

bool FunctionChecker::checkDeref(Env &S, EvalResult &Base, const Expr *Whole,
                                 const char *AccessKind) {
  if (Observer && Base.Ref && Base.Ref->isRoot())
    if (const auto *P = dyn_cast<ParmVarDecl>(Base.Ref->root()))
      Observer->observeParamDeref(P);
  if (Base.IsNullConst) {
    if (checkEnabled(CheckId::NullDeref))
      Diags.report(CheckId::NullDeref, Whole->loc(),
                   std::string(AccessKind) +
                       " access of null constant: " + exprToString(Whole));
    return true;
  }
  if (!Base.Val.mayBeNull())
    return false;
  if (!checkEnabled(CheckId::NullDeref))
    return false;
  std::string BaseText =
      Base.Ref ? Base.Ref->str() : exprToString(Whole);
  Diags
      .report(CheckId::NullDeref, Whole->loc(),
              std::string(AccessKind) + " access from possibly null pointer " +
                  BaseText + ": " + exprToString(Whole))
      .note(Base.Val.NullLoc, "Storage " + BaseText + " may become null");
  // Poison: assume non-null afterwards so one bug is one message.
  if (Base.Ref)
    setNullState(S, *Base.Ref, NullState::NotNull, Whole->loc());
  Base.Val.Null = NullState::NotNull;
  return true;
}

FunctionChecker::EvalResult FunctionChecker::evalExpr(const Expr *E, Env &S,
                                                      bool AsRValue) {
  EvalResult R;
  if (!E)
    return R;
  // Recursion containment: abstract evaluation follows the expression tree;
  // bail out with an unknown value rather than risking the stack on inputs
  // the parser could still represent.
  ++EvalDepth;
  struct DepthScope {
    unsigned &Depth;
    ~DepthScope() { --Depth; }
  } Scope{EvalDepth};
  if (MaxEvalDepth != 0 && EvalDepth > MaxEvalDepth) {
    noteBudget("limitnesting", MaxEvalDepth, E->loc(),
               "expression nesting too deep during analysis; subexpression "
               "not evaluated",
               DepthNoticed);
    return R;
  }
  switch (E->kind()) {
  case Expr::ExprKind::Paren:
    return evalExpr(cast<ParenExpr>(E)->sub(), S, AsRValue);

  case Expr::ExprKind::IntegerLiteral: {
    R.IsNullConst = cast<IntegerLiteralExpr>(E)->value() == 0;
    R.Val.Def = DefState::Defined;
    R.Val.Null = NullState::Unknown;
    return R;
  }
  case Expr::ExprKind::FloatLiteral:
  case Expr::ExprKind::CharLiteral:
    R.Val.Def = DefState::Defined;
    R.Val.Null = NullState::Unknown;
    return R;

  case Expr::ExprKind::StringLiteral:
    R.Val.Def = DefState::Defined;
    R.Val.Null = NullState::NotNull;
    R.Val.Alloc = AllocState::Static;
    R.Val.AllocLoc = E->loc();
    return R;

  case Expr::ExprKind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (const auto *VD = dyn_cast_or_null<VarDecl>(DRE->decl())) {
      R.Ref = RefPath::var(VD);
      R.Val = lookupRef(S, *R.Ref);
      if (AsRValue && !VD->type().isArray())
        checkRValueUse(S, R, E);
      return R;
    }
    // Function designators and enum constants are always defined values.
    R.Val.Def = DefState::Defined;
    R.Val.Null = NullState::NotNull;
    R.Val.Alloc = AllocState::Static;
    return R;
  }

  case Expr::ExprKind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    // A dot access uses the base as an lvalue; only the arrow form reads
    // the base pointer's value.
    EvalResult Base = evalExpr(ME->base(), S, /*AsRValue=*/ME->isArrow());
    PathElem DerefElem;
    DerefElem.K = PathElem::Kind::Deref;
    PathElem FieldElem;
    FieldElem.K = PathElem::Kind::Dot;
    FieldElem.Field = ME->field();
    FieldElem.FieldName = ME->member();
    if (ME->isArrow())
      checkDeref(S, Base, E, "Arrow");
    if (Base.Ref && Base.Ref->depth() < 10) {
      R.Ref = ME->isArrow() ? Base.Ref->child(DerefElem).child(FieldElem)
                            : Base.Ref->child(FieldElem);
      R.Val = lookupRef(S, *R.Ref);
      if (AsRValue)
        checkRValueUse(S, R, E);
    } else {
      SVal Mid = ME->isArrow() ? deriveChild(Base.Val, DerefElem) : Base.Val;
      R.Val = deriveChild(Mid, FieldElem);
    }
    return R;
  }

  case Expr::ExprKind::ArraySubscript: {
    const auto *AE = cast<ArraySubscriptExpr>(E);
    EvalResult Base = evalExpr(AE->base(), S, /*AsRValue=*/true);
    EvalResult Index = evalExpr(AE->index(), S, /*AsRValue=*/true);
    (void)Index;
    checkDeref(S, Base, E, "Index");
    // Under strictindexalias every compile-time-unknown index denotes the
    // same element (§2): p[i] is tracked as *p.
    PathElem Elem;
    Elem.K = PathElem::Kind::Deref;
    if (Base.Ref && Base.Ref->depth() < 10 && Flags.get("strictindexalias")) {
      R.Ref = Base.Ref->child(Elem);
      R.Val = lookupRef(S, *R.Ref);
      if (AsRValue)
        checkRValueUse(S, R, E);
    } else {
      R.Val = deriveChild(Base.Val, Elem);
    }
    return R;
  }

  case Expr::ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    switch (UE->op()) {
    case UnaryOp::Deref: {
      EvalResult Base = evalExpr(UE->sub(), S, /*AsRValue=*/true);
      checkDeref(S, Base, E, "Dereference");
      PathElem Elem;
      Elem.K = PathElem::Kind::Deref;
      if (Base.Ref && Base.Ref->depth() < 10) {
        R.Ref = Base.Ref->child(Elem);
        R.Val = lookupRef(S, *R.Ref);
        if (AsRValue)
          checkRValueUse(S, R, E);
      } else {
        R.Val = deriveChild(Base.Val, Elem);
      }
      return R;
    }
    case UnaryOp::AddrOf: {
      // &x: location used, not the value; no rvalue checks on the operand.
      EvalResult Sub = evalExpr(UE->sub(), S, /*AsRValue=*/false);
      R.Val.Def = DefState::Defined;
      R.Val.Null = NullState::NotNull;
      if (Sub.Ref && Sub.Ref->isRoot()) {
        const VarDecl *VD = Sub.Ref->root();
        R.Val.Alloc = (VD->isGlobal() || VD->isStaticLocal())
                          ? AllocState::Static
                          : AllocState::Stack;
      } else {
        R.Val.Alloc = AllocState::Offset; // interior pointer
      }
      R.Val.AllocLoc = E->loc();
      // The operand's location is now exposed; assume it becomes defined
      // through the pointer (likely-case assumption).
      if (Sub.Ref) {
        SVal Val = lookupRef(S, *Sub.Ref);
        if (Val.Def == DefState::Undefined) {
          Val.Def = DefState::Defined;
          writeRef(S, *Sub.Ref, Val, /*Strong=*/false);
        }
      }
      return R;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      EvalResult Sub = evalExpr(UE->sub(), S, /*AsRValue=*/true);
      if (Sub.Ref && UE->sub()->type().isPointer()) {
        // Pointer arithmetic makes an offset pointer (not freeable).
        SVal Val = lookupRef(S, *Sub.Ref);
        Val.Alloc = AllocState::Offset;
        Val.AllocLoc = E->loc();
        writeRef(S, *Sub.Ref, Val, /*Strong=*/false);
        R.Val = Val;
      } else if (Sub.Ref) {
        SVal Val = lookupRef(S, *Sub.Ref);
        Val.Def = DefState::Defined;
        writeRef(S, *Sub.Ref, Val, /*Strong=*/false);
        R.Val = Val;
      }
      return R;
    }
    case UnaryOp::Not:
    case UnaryOp::BitNot:
    case UnaryOp::Plus:
    case UnaryOp::Minus: {
      evalExpr(UE->sub(), S, /*AsRValue=*/true);
      R.Val.Def = DefState::Defined;
      R.Val.Null = NullState::Unknown;
      return R;
    }
    }
    return R;
  }

  case Expr::ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    if (isAssignmentOp(BE->op()))
      return evalAssign(BE, S);
    switch (BE->op()) {
    case BinaryOp::LAnd: {
      evalExpr(BE->lhs(), S, /*AsRValue=*/true);
      // The right operand only evaluates when the left is true.
      Env RhsEnv = S;
      refine(RhsEnv, BE->lhs(), true);
      evalExpr(BE->rhs(), RhsEnv, /*AsRValue=*/true);
      reportConflicts(S.mergeFrom(RhsEnv, DefaultFn_), E->loc());
      R.Val.Def = DefState::Defined;
      return R;
    }
    case BinaryOp::LOr: {
      evalExpr(BE->lhs(), S, /*AsRValue=*/true);
      Env RhsEnv = S;
      refine(RhsEnv, BE->lhs(), false);
      evalExpr(BE->rhs(), RhsEnv, /*AsRValue=*/true);
      reportConflicts(S.mergeFrom(RhsEnv, DefaultFn_), E->loc());
      R.Val.Def = DefState::Defined;
      return R;
    }
    case BinaryOp::Comma: {
      evalExpr(BE->lhs(), S, /*AsRValue=*/false);
      return evalExpr(BE->rhs(), S, AsRValue);
    }
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      EvalResult L = evalExpr(BE->lhs(), S, /*AsRValue=*/true);
      EvalResult Rt = evalExpr(BE->rhs(), S, /*AsRValue=*/true);
      if (BE->lhs()->type().isPointer() || BE->lhs()->type().isArray() ||
          BE->rhs()->type().isPointer() || BE->rhs()->type().isArray()) {
        // Pointer arithmetic: an offset pointer into the same block.
        const EvalResult &Ptr =
            (BE->lhs()->type().isPointer() || BE->lhs()->type().isArray())
                ? L
                : Rt;
        R.Val = Ptr.Val;
        R.Val.Alloc = AllocState::Offset;
        R.Val.AllocLoc = E->loc();
        return R;
      }
      R.Val.Def = DefState::Defined;
      return R;
    }
    default: {
      evalExpr(BE->lhs(), S, /*AsRValue=*/true);
      evalExpr(BE->rhs(), S, /*AsRValue=*/true);
      R.Val.Def = DefState::Defined;
      R.Val.Null = NullState::Unknown;
      return R;
    }
    }
  }

  case Expr::ExprKind::Call:
    return evalCall(cast<CallExpr>(E), S);

  case Expr::ExprKind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    EvalResult Sub = evalExpr(CE->sub(), S, AsRValue);
    Sub.IsNullConst = Sub.IsNullConst || isNullConstant(E);
    return Sub;
  }

  case Expr::ExprKind::Sizeof:
    // "Except sizeof, which does not need the value of its argument" — the
    // operand is not evaluated and undefined storage may appear in it.
    R.Val.Def = DefState::Defined;
    return R;

  case Expr::ExprKind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    evalExpr(CE->cond(), S, /*AsRValue=*/true);
    Env TrueEnv = S;
    refine(TrueEnv, CE->cond(), true);
    Env FalseEnv = S;
    refine(FalseEnv, CE->cond(), false);
    EvalResult TR = evalExpr(CE->trueExpr(), TrueEnv, /*AsRValue=*/true);
    EvalResult FR = evalExpr(CE->falseExpr(), FalseEnv, /*AsRValue=*/true);
    reportConflicts(TrueEnv.mergeFrom(FalseEnv, DefaultFn_), E->loc());
    S = std::move(TrueEnv);
    bool Unused1 = false, Unused2 = false;
    R.Val.Def = mergeDef(TR.Val.Def, FR.Val.Def, Unused1);
    R.Val.Null = mergeNull(TR.Val.Null, FR.Val.Null);
    R.Val.Alloc = mergeAlloc(TR.Val.Alloc, FR.Val.Alloc, Unused2);
    R.Val.NullLoc = TR.Val.mayBeNull() ? TR.Val.NullLoc : FR.Val.NullLoc;
    if (TR.IsNullConst || FR.IsNullConst) {
      R.Val.Null = NullState::PossiblyNull;
      R.Val.NullLoc = E->loc();
    }
    return R;
  }

  case Expr::ExprKind::InitList: {
    for (const Expr *I : cast<InitListExpr>(E)->inits())
      evalExpr(I, S, /*AsRValue=*/true);
    R.Val.Def = DefState::Defined;
    return R;
  }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Assignment
//===----------------------------------------------------------------------===//

FunctionChecker::EvalResult FunctionChecker::evalAssign(const BinaryExpr *BE,
                                                        Env &S) {
  EvalResult R;
  // Compound assignments read the left side too.
  bool Compound = BE->op() != BinaryOp::Assign;

  EvalResult RHS = evalExpr(BE->rhs(), S, /*AsRValue=*/true);
  EvalResult LHS = evalExpr(BE->lhs(), S, /*AsRValue=*/Compound);

  if (!LHS.Ref) {
    R.Val = RHS.Val;
    return R;
  }

  if (Compound) {
    // x += e: numeric or pointer arithmetic; the reference stays bound to
    // the same storage (possibly offset).
    SVal Val = lookupRef(S, *LHS.Ref);
    Val.Def = DefState::Defined;
    if (BE->lhs()->type().isPointer())
      Val.Alloc = AllocState::Offset;
    writeRef(S, *LHS.Ref, Val, /*Strong=*/false);
    R.Ref = LHS.Ref;
    R.Val = Val;
    return R;
  }

  assignTo(*LHS.Ref, annotationsFor(*LHS.Ref), BE->lhs()->type(), RHS, S,
           BE->loc(),
           exprToString(BE->lhs()) + " = " + exprToString(BE->rhs()),
           /*IsInitialization=*/false);
  R.Ref = LHS.Ref;
  R.Val = lookupRef(S, *LHS.Ref);
  return R;
}

void FunctionChecker::assignTo(const RefPath &LHS,
                               const Annotations &LHSAnnots, QualType LHSTy,
                               EvalResult &RHS, Env &S,
                               const SourceLocation &Loc,
                               const std::string &StmtText,
                               bool IsInitialization) {
  bool IsPointerAssign = LHSTy.isPointer() || LHSTy.isNull();
  bool GCMode = Flags.get("gcmode");

  // Observer storage may not be modified through any base reference.
  if (checkEnabled(CheckId::Observer)) {
    RefPath Prefix(LHS.rootKind(), LHS.root());
    std::vector<RefPath> Prefixes{Prefix};
    for (const PathElem &El : LHS.elems()) {
      Prefix = Prefix.child(El);
      Prefixes.push_back(Prefix);
    }
    Prefixes.pop_back(); // the written ref itself may be reassigned freely
                         // only if it is not itself observer storage
    for (const RefPath &P : Prefixes) {
      SVal PV = lookupRef(S, P);
      if (PV.Alloc == AllocState::Observer) {
        Diags
            .report(CheckId::Observer, Loc,
                    "Observer storage " + P.str() + " modified: " + StmtText)
            .note(PV.AllocLoc, "Storage " + P.str() + " becomes observer");
        break;
      }
    }
  }

  // Losing the last reference to unreleased storage is a leak (paper §3:
  // the owners set becomes empty).
  if (!IsInitialization && !GCMode && checkEnabled(CheckId::MustFree)) {
    SVal Old = lookupRef(S, LHS);
    // Likely-case assumption (paper Â§2): a possibly-null only reference is
    // probably null here (the common "null until first node" pattern), so
    // only definitely-live storage triggers the lost-obligation message.
    if (holdsObligation(Old.Alloc) && Old.Def != DefState::Dead &&
        Old.Def != DefState::Error && Old.Def != DefState::Undefined &&
        Old.Def != DefState::Allocated && !Old.mayBeNull()) {
      bool HasOtherHolder = false;
      for (const RefPath &Alias : S.aliasesOf(LHS))
        if (Alias != LHS)
          HasOtherHolder = true;
      if (!HasOtherHolder) {
        const char *Word = Old.Alloc == AllocState::Fresh ? "Fresh"
                           : Old.Alloc == AllocState::RefCounted
                               ? "Refcounted"
                               : "Only";
        Diags
            .report(CheckId::MustFree, Loc,
                    std::string(Word) + " storage " + LHS.str() +
                        " not released before assignment: " + StmtText)
            .note(Old.AllocLoc, "Storage " + LHS.str() + " becomes " +
                                    allocStateName(Old.Alloc));
      }
    }
  }

  // Compute the new value.
  SVal New;
  if (RHS.IsNullConst && IsPointerAssign) {
    New.Def = DefState::Defined;
    New.Null = NullState::DefinitelyNull;
    New.NullLoc = Loc;
    New.Alloc = AllocState::Null;
  } else {
    New = RHS.Val;
    if (New.Def == DefState::Undefined)
      New.Def = DefState::Defined; // rvalue check already reported
    if (!IsPointerAssign) {
      New.Null = NullState::Unknown;
      New.Alloc = AllocState::Unqualified;
    }
    // The target "becomes null" at the assignment site (Figure 2's note
    // points at the assignment, not the source declaration).
    if (New.mayBeNull())
      New.NullLoc = Loc;
  }
  New.DefLoc = New.DefLoc.isValid() ? New.DefLoc : Loc;

  // Allocation-state transfer per the left side's annotations.
  bool LHSIsExternal = LHS.root()->isGlobal() ||
                       LHS.rootKind() == RefPath::RootKind::Arg ||
                       !LHS.isRoot();
  AllocAnn TargetAlloc = LHSAnnots.Alloc;
  if (TargetAlloc == AllocAnn::Unspecified && IsPointerAssign) {
    if (LHS.isRoot() && LHS.root()->isGlobal() &&
        Flags.get("implicitonlyglob"))
      TargetAlloc = AllocAnn::Only;
    else if (!LHS.isRoot() && LHS.elems().back().Field &&
             Flags.get("implicitonlyfield"))
      TargetAlloc = AllocAnn::Only;
  }

  if (IsPointerAssign && !RHS.IsNullConst) {
    switch (TargetAlloc) {
    case AllocAnn::Only:
    case AllocAnn::Owned: {
      const char *TargetWord =
          TargetAlloc == AllocAnn::Only ? "only" : "owned";
      switch (RHS.Val.Alloc) {
      case AllocState::Temp: {
        if (checkEnabled(CheckId::AliasTransfer)) {
          std::string RhsText = RHS.Ref ? RHS.Ref->str() : StmtText;
          Diags
              .report(CheckId::AliasTransfer, Loc,
                      "Temp storage " + RhsText + " assigned to " +
                          TargetWord + ": " + StmtText)
              .note(RHS.Val.AllocLoc,
                    "Storage " + RhsText + " becomes temp");
        }
        break;
      }
      case AllocState::Dependent:
      case AllocState::Shared:
      case AllocState::Observer:
      case AllocState::Kept:
      case AllocState::Static:
      case AllocState::Stack:
      case AllocState::Offset:
        if (checkEnabled(CheckId::AliasTransfer)) {
          std::string RhsText = RHS.Ref ? RHS.Ref->str() : StmtText;
          Diags.report(CheckId::AliasTransfer, Loc,
                       std::string(allocStateName(RHS.Val.Alloc)) +
                           " storage " + RhsText + " assigned to " +
                           TargetWord + ": " + StmtText);
        }
        break;
      case AllocState::Only:
      case AllocState::Fresh:
      case AllocState::Owned:
      case AllocState::Keep:
        // Obligation transfers to the external only reference; the source
        // reference may no longer be used to release it.
        if (RHS.Ref)
          consumeObligation(S, *RHS.Ref, /*MakeDead=*/false, Loc);
        break;
      default:
        break;
      }
      New.Alloc =
          TargetAlloc == AllocAnn::Only ? AllocState::Only : AllocState::Owned;
      New.AllocLoc = LHS.root()->loc();
      break;
    }
    case AllocAnn::Dependent:
      New.Alloc = AllocState::Dependent;
      New.AllocLoc = LHS.root()->loc();
      break;
    case AllocAnn::Shared:
      New.Alloc = AllocState::Shared;
      New.AllocLoc = LHS.root()->loc();
      break;
    default: {
      // Unannotated target. The release obligation moves with the value
      // only when the source reference has no independent home: a pure
      // rvalue (allocator result) keeps its Fresh state, and assignment
      // between plain locals transfers (the old local keeps a usable,
      // obligation-free view). A derived reference (an only field) or a
      // parameter keeps its own obligation; the target is just an alias.
      if (holdsObligation(RHS.Val.Alloc) && RHS.Ref) {
        bool RhsIsPlainLocal = RHS.Ref->isRoot() &&
                               !RHS.Ref->root()->isGlobal() &&
                               !isa<ParmVarDecl>(RHS.Ref->root());
        if (RhsIsPlainLocal) {
          consumeObligation(S, *RHS.Ref, /*MakeDead=*/false, Loc);
          New.Alloc = RHS.Val.Alloc;
        } else if (RHS.Ref->isRoot()) {
          New.Alloc = RHS.Val.Alloc; // aliased parameter/global view
        } else {
          New.Alloc = AllocState::Dependent; // alias of owned field storage
          New.AllocLoc = Loc;
        }
      }
      // Newly allocated storage stored into an unqualified external
      // reference: the release obligation is not recorded anywhere visible
      // to callers, so a leak is suspected (the paper's four eref_pool
      // messages, fixed by adding only annotations to the fields).
      if (holdsObligation(New.Alloc) && LHSIsExternal && !GCMode &&
          checkEnabled(CheckId::MustFree)) {
        bool RootIsExternal = LHS.root()->isGlobal() ||
                              LHS.rootKind() == RefPath::RootKind::Arg ||
                              isa<ParmVarDecl>(LHS.root());
        if (RootIsExternal)
          Diags
              .report(CheckId::MustFree, Loc,
                      "Fresh storage assigned to unqualified external "
                      "reference (obligation not transferred): " +
                          StmtText)
              .note(New.AllocLoc, "Storage becomes " +
                                      std::string(allocStateName(New.Alloc)));
      }
      break;
    }
    }
  }
  if (RHS.IsNullConst && holdsObligation(lookupRef(S, LHS).Alloc)) {
    // handled by the leak check above; the new value is the null pointer
  }

  // New aliases must be expressed in terms of references that stay stable
  // across the rebinding: expand the source through the *pre-assignment*
  // alias relation and drop rewrites that pass through the target itself
  // (after "l = l->next", l aliases argl->next, not the new l->next).
  std::vector<RefPath> NewAliases;
  if (IsPointerAssign && RHS.Ref && !RHS.IsNullConst) {
    for (const RefPath &Candidate : S.expansions(*RHS.Ref))
      if (!Candidate.hasPrefix(LHS))
        NewAliases.push_back(Candidate);
  }
  for (const RefPath &Alias : RHS.ResultAliases)
    if (!Alias.hasPrefix(LHS))
      NewAliases.push_back(Alias);

  // Bind: strong update of the primary reference.
  S.clearAliases(LHS);
  writeRef(S, LHS, New, /*Strong=*/true);
  for (const RefPath &Alias : NewAliases)
    S.addAlias(LHS, Alias);

  // Newly allocated record storage: materialize its fields as tracked
  // undefined references so completeness checking can enumerate what the
  // body never defines (the paper's l->next->next at point 11).
  if (New.Def == DefState::Allocated)
    materializeChildren(S, LHS, LHSTy, New.DefLoc);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void FunctionChecker::checkCallArg(Env &S, EvalResult &Arg,
                                   const Expr *ArgExpr,
                                   const ParmVarDecl *Parm,
                                   const FunctionDecl *Callee, unsigned Index,
                                   const CallExpr *CE) {
  Annotations PA = Parm->effectiveAnnotations();
  std::string CallText = exprToString(CE);
  std::string ArgText = Arg.Ref ? Arg.Ref->str() : exprToString(ArgExpr);
  bool ParmIsPointer = Parm->type().isPointer();
  bool GCMode = Flags.get("gcmode");

  // Null checking: a possibly-null value may only be passed where a null
  // parameter is expected.
  if (ParmIsPointer && PA.Null == NullAnn::Unspecified &&
      checkEnabled(CheckId::NullPass)) {
    if (Arg.IsNullConst) {
      Diags.report(CheckId::NullPass, ArgExpr->loc(),
                   "Null value passed as non-null param " +
                       std::to_string(Index + 1) + " of " + Callee->name() +
                       ": " + CallText);
    } else if (Arg.Val.mayBeNull()) {
      Diags
          .report(CheckId::NullPass, ArgExpr->loc(),
                  "Possibly null storage " + ArgText +
                      " passed as non-null param " +
                      std::to_string(Index + 1) + " of " + Callee->name() +
                      ": " + CallText)
          .note(Arg.Val.NullLoc, "Storage " + ArgText + " may become null");
      if (Arg.Ref)
        setNullState(S, *Arg.Ref, NullState::NotNull, ArgExpr->loc());
    }
  }

  // Definition checking: actuals must be completely defined, except that an
  // out parameter only requires allocated storage.
  if (PA.Def != DefAnn::Out && PA.Def != DefAnn::Partial &&
      PA.Def != DefAnn::RelDef && checkEnabled(CheckId::CompleteDefine) &&
      !Arg.IsNullConst) {
    if (Arg.Val.Def == DefState::Allocated) {
      Diags
          .report(CheckId::CompleteDefine, ArgExpr->loc(),
                  "Allocated storage " + ArgText +
                      " passed as completely-defined param " +
                      std::to_string(Index + 1) + " of " + Callee->name() +
                      ": " + CallText)
          .note(Arg.Val.DefLoc, "Storage " + ArgText + " allocated here");
      if (Arg.Ref) {
        SVal Val = lookupRef(S, *Arg.Ref);
        Val.Def = DefState::Defined;
        writeRef(S, *Arg.Ref, Val, /*Strong=*/false);
      }
    } else if (Arg.Ref && Arg.Val.Def == DefState::PartiallyDefined) {
      for (const auto &KV : S.items()) {
        const RefPath &Tracked = *KV.first;
        if (Tracked == *Arg.Ref || !Tracked.hasPrefix(*Arg.Ref))
          continue;
        if (KV.second->Def != DefState::Undefined &&
            KV.second->Def != DefState::Allocated)
          continue;
        if (hasUndefinedAncestor(S, Tracked))
          continue;
        Annotations ChildAnnots = annotationsFor(Tracked);
        if (ChildAnnots.Def != DefAnn::Unspecified)
          continue;
        Diags.report(CheckId::CompleteDefine, ArgExpr->loc(),
                     "Storage " + Tracked.str() +
                         " reachable from param " +
                         std::to_string(Index + 1) + " of " +
                         Callee->name() + " is undefined: " + CallText);
      }
    }
  }

  // Reference counting: a killref parameter releases one reference; the
  // argument stays usable (other references keep the storage alive).
  if (PA.KillRef) {
    if (!Arg.IsNullConst && Arg.Val.Alloc != AllocState::RefCounted &&
        Arg.Val.Alloc != AllocState::Unqualified &&
        Arg.Val.Alloc != AllocState::Kept &&
        checkEnabled(CheckId::AliasTransfer)) {
      Diags.report(CheckId::AliasTransfer, ArgExpr->loc(),
                   std::string(allocStateName(Arg.Val.Alloc)) + " storage " +
                       ArgText + " passed as killref param: " + CallText);
    }
    if (Arg.Ref)
      consumeObligation(S, *Arg.Ref, /*MakeDead=*/false, ArgExpr->loc());
    return;
  }
  if (PA.TempRef)
    return; // uses the reference without retaining or releasing it

  // Allocation-state transfer.
  switch (PA.Alloc) {
  case AllocAnn::Only:
  case AllocAnn::Keep: {
    bool IsKeep = PA.Alloc == AllocAnn::Keep;
    if (Arg.IsNullConst)
      break; // free(NULL) is explicitly allowed by the spec used
    switch (Arg.Val.Alloc) {
    case AllocState::Temp: {
      if (!GCMode && checkEnabled(CheckId::AliasTransfer)) {
        // Distinguish explicit temp from the implied-temp default.
        bool Implicit = true;
        if (Arg.Ref) {
          Annotations AA = annotationsFor(*Arg.Ref);
          Implicit = AA.Alloc == AllocAnn::Unspecified;
        }
        Diags
            .report(CheckId::AliasTransfer, ArgExpr->loc(),
                    std::string(Implicit ? "Implicitly temp" : "Temp") +
                        " storage " + ArgText + " passed as only param: " +
                        CallText)
            .note(Arg.Val.AllocLoc,
                  "Storage " + ArgText + " becomes temp");
      }
      break;
    }
    case AllocState::Kept:
      if (!GCMode && checkEnabled(CheckId::AliasTransfer))
        Diags.report(CheckId::AliasTransfer, ArgExpr->loc(),
                     "Kept storage " + ArgText +
                         " passed as only param (obligation already "
                         "transferred): " +
                         CallText);
      break;
    case AllocState::Dependent:
    case AllocState::Shared:
    case AllocState::Observer:
    case AllocState::Exposed:
    case AllocState::RefCounted:
      // Refcounted storage is released through killref, never free.
      if (checkEnabled(CheckId::AliasTransfer))
        Diags.report(CheckId::AliasTransfer, ArgExpr->loc(),
                     std::string(allocStateName(Arg.Val.Alloc)) +
                         " storage " + ArgText +
                         " passed as only param: " + CallText);
      break;
    case AllocState::Static:
    case AllocState::Stack:
    case AllocState::Offset:
      // The 1996 tool missed freeing offset pointers and static storage
      // (§7); the check exists behind a flag, off by default, to reproduce
      // both the paper's misses and the later improvement.
      if (Flags.get("illegalfree") && checkEnabled(CheckId::DoubleFree))
        Diags.report(CheckId::DoubleFree, ArgExpr->loc(),
                     std::string(allocStateName(Arg.Val.Alloc)) +
                         " storage " + ArgText +
                         " passed as only param (not allocated storage): " +
                         CallText);
      break;
    default:
      break;
    }
    if (Arg.Val.Def == DefState::Dead &&
        checkEnabled(CheckId::DoubleFree)) {
      Diags
          .report(CheckId::DoubleFree, ArgExpr->loc(),
                  "Dead storage " + ArgText +
                      " passed as only param (may be released twice): " +
                      CallText)
          .note(Arg.Val.FreeLoc, "Storage " + ArgText + " released");
    }
    // Compound destruction (paper footnote): an out only void* parameter
    // releases the object; live unshared storage reachable from it leaks.
    if (!GCMode && Arg.Ref && PA.Def == DefAnn::Out &&
        Parm->type().isPointer() && Parm->type().pointee().isVoid() &&
        checkEnabled(CheckId::MustFree)) {
      for (const auto &KV : S.items()) {
        const RefPath &Tracked = *KV.first;
        if (Tracked == *Arg.Ref || !Tracked.hasPrefix(*Arg.Ref))
          continue;
        if (!holdsObligation(KV.second->Alloc) ||
            KV.second->Def == DefState::Dead)
          continue;
        Diags.report(CheckId::MustFree, ArgExpr->loc(),
                     "Only storage " + Tracked.str() +
                         " derivable from " + ArgText +
                         " not released before " + Callee->name() + ": " +
                         CallText);
      }
    }
    // After the call: obligation satisfied. For only, the reference is
    // dead; for keep, the caller may still use it.
    if (Arg.Ref) {
      if (Observer && Arg.Ref->isRoot())
        if (const auto *P = dyn_cast<ParmVarDecl>(Arg.Ref->root()))
          Observer->observeParamConsumed(P);
      consumeObligation(S, *Arg.Ref, /*MakeDead=*/!IsKeep, ArgExpr->loc());
    }
    break;
  }
  case AllocAnn::Owned: {
    // Transfer of ownership; the caller's reference becomes dependent.
    if (Arg.Ref) {
      for (const RefPath &Target : S.expansions(*Arg.Ref)) {
        SVal Val = lookupRef(S, Target);
        Val.Alloc = AllocState::Dependent;
        S.set(Target, Val);
      }
    }
    break;
  }
  case AllocAnn::Temp:
  case AllocAnn::Dependent:
  case AllocAnn::Shared:
  case AllocAnn::Unspecified:
    // No transfer; aliases unchanged ("at a call site where a reference is
    // passed as a temp parameter, the aliases ... are the same before and
    // after the call").
    break;
  }

  // After-call definition state: storage passed as out is assumed
  // completely defined afterwards.
  if (PA.Def == DefAnn::Out && Arg.Ref && PA.Alloc != AllocAnn::Only &&
      PA.Alloc != AllocAnn::Keep) {
    S.eraseDescendants(*Arg.Ref);
    SVal Val = lookupRef(S, *Arg.Ref);
    Val.Def = DefState::Defined;
    Val.DefLoc = ArgExpr->loc();
    writeRef(S, *Arg.Ref, Val, /*Strong=*/false);
  }
}

void FunctionChecker::checkUniqueParams(Env &S, const FunctionDecl *Callee,
                                        const std::vector<EvalResult> &Args,
                                        const CallExpr *CE) {
  if (!checkEnabled(CheckId::UniqueAlias))
    return;
  const auto &Params = Callee->params();

  // The paper's rule (Figure 8): storage reachable from distinct external
  // references (unconstrained parameters, globals) MAY be shared unless
  // something proves otherwise â the same root diverging on different
  // fields, a unique annotation in the current function, or locally
  // allocated unshared storage.
  auto isExternalRoot = [&](const RefPath &Ref) {
    const VarDecl *Root = Ref.root();
    if (Root->isGlobal())
      return true;
    if (Ref.rootKind() == RefPath::RootKind::Arg || isa<ParmVarDecl>(Root))
      return !Root->effectiveAnnotations().Unique;
    return false;
  };
  auto mayAliasExternally = [&](const RefPath &A, const RefPath &B) {
    // Explicit may-alias information first.
    for (const RefPath &EA : S.expansions(A))
      for (const RefPath &EB : S.expansions(B))
        if (EA == EB || EA.hasPrefix(EB) || EB.hasPrefix(EA))
          return true;
    if (A.root() == B.root())
      return false; // same root, diverging paths: provably distinct
    if (!isExternalRoot(A) || !isExternalRoot(B))
      return false; // local/unique storage cannot be externally shared
    SVal AV = lookupRef(S, A);
    SVal BV = lookupRef(S, B);
    if (AV.Alloc == AllocState::Fresh || BV.Alloc == AllocState::Fresh)
      return false; // freshly allocated storage is unshared
    return true;
  };

  for (size_t I = 0; I < Params.size() && I < Args.size(); ++I) {
    if (!Params[I]->effectiveAnnotations().Unique || !Args[I].Ref)
      continue;
    for (size_t J = 0; J < Args.size(); ++J) {
      if (J == I || !Args[J].Ref)
        continue;
      if (mayAliasExternally(*Args[I].Ref, *Args[J].Ref)) {
        Diags.report(CheckId::UniqueAlias, CE->loc(),
                     "Parameter " + std::to_string(I + 1) + " (" +
                         Args[I].Ref->str() + ") to function " +
                         Callee->name() +
                         " is declared unique but may be aliased externally "
                         "by parameter " +
                         std::to_string(J + 1) + " (" + Args[J].Ref->str() +
                         ")");
      }
    }
    for (const VarDecl *G : GlobalsUsed) {
      if (!G->type().isPointer() && !G->type().isArray() &&
          !G->type().isRecord())
        continue;
      RefPath GRef = RefPath::var(G);
      if (mayAliasExternally(*Args[I].Ref, GRef))
        Diags.report(CheckId::UniqueAlias, CE->loc(),
                     "Parameter " + std::to_string(I + 1) + " (" +
                         Args[I].Ref->str() + ") to function " +
                         Callee->name() +
                         " is declared unique but may be aliased by global " +
                         G->name());
    }
  }
}

FunctionChecker::EvalResult FunctionChecker::evalCall(const CallExpr *CE,
                                                      Env &S) {
  EvalResult R;
  const FunctionDecl *Callee = CE->directCallee();

  if (!Callee) {
    // Indirect call: evaluate operands as rvalue uses; unknown result.
    evalExpr(CE->callee(), S, /*AsRValue=*/true);
    for (const Expr *A : CE->args())
      evalExpr(A, S, /*AsRValue=*/true);
    R.Val.Def = DefState::Defined;
    return R;
  }

  // assert(cond): evaluate, then refine as if the condition held.
  if (Callee->name() == "assert" && CE->args().size() == 1) {
    evalExpr(CE->args()[0], S, /*AsRValue=*/true);
    refine(S, CE->args()[0], true);
    R.Val.Def = DefState::Defined;
    return R;
  }

  std::vector<EvalResult> Args;
  Args.reserve(CE->args().size());
  for (const Expr *A : CE->args())
    Args.push_back(evalExpr(A, S, /*AsRValue=*/true));

  const auto &Params = Callee->params();
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I < Params.size())
      checkCallArg(S, Args[I], CE->args()[I], Params[I], Callee,
                   static_cast<unsigned>(I), CE);
  }
  checkUniqueParams(S, Callee, Args, CE);

  Annotations RA = Callee->effectiveReturnAnnotations();

  // Functions that never return terminate the path (exit, abort).
  if (RA.Exits) {
    S.setUnreachable();
    R.Val.Def = DefState::Defined;
    return R;
  }

  // The result's state from the return annotations.
  bool ReturnsPointer = Callee->returnType().isPointer();
  R.Val.Def = DefState::Defined;
  if (ReturnsPointer) {
    switch (RA.Null) {
    case NullAnn::Null:
      R.Val.Null = NullState::PossiblyNull;
      R.Val.NullLoc = CE->loc();
      break;
    case NullAnn::RelNull:
      R.Val.Null = NullState::RelNull;
      break;
    default:
      R.Val.Null = NullState::NotNull;
      break;
    }
    if (RA.Def == DefAnn::Out) {
      R.Val.Def = DefState::Allocated;
      R.Val.DefLoc = CE->loc();
    }
    if (RA.NewRef) {
      // A new reference to reference-counted storage: must be released
      // with a killref before the last reference is lost.
      R.Val.Alloc = AllocState::RefCounted;
      R.Val.AllocLoc = CE->loc();
      return R;
    }
    switch (RA.Alloc) {
    case AllocAnn::Only:
      R.Val.Alloc = AllocState::Fresh;
      R.Val.AllocLoc = CE->loc();
      break;
    case AllocAnn::Shared:
      R.Val.Alloc = AllocState::Shared;
      break;
    case AllocAnn::Dependent:
      R.Val.Alloc = AllocState::Dependent;
      break;
    default:
      if (RA.Exposure == ExposureAnn::Observer) {
        R.Val.Alloc = AllocState::Observer;
        R.Val.AllocLoc = CE->loc();
      } else if (RA.Exposure == ExposureAnn::Exposed) {
        R.Val.Alloc = AllocState::Exposed;
        R.Val.AllocLoc = CE->loc();
      } else if (Flags.get("implicitonlyret")) {
        R.Val.Alloc = AllocState::Fresh;
        R.Val.AllocLoc = CE->loc();
      }
      break;
    }
  }

  // returned parameters: the result may alias those arguments.
  for (size_t I = 0; I < Params.size() && I < Args.size(); ++I) {
    if (Params[I]->effectiveAnnotations().Returned && Args[I].Ref)
      R.ResultAliases.push_back(*Args[I].Ref);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Branch refinement
//===----------------------------------------------------------------------===//

namespace {

/// If \p E denotes a pointer-valued reference usable for refinement, return
/// it via evaluation-free syntactic matching (no checks, no state changes).
const Expr *stripRefinementWrappers(const Expr *E) {
  while (true) {
    E = E->ignoreParens();
    if (const auto *CE = dyn_cast<CastExpr>(E)) {
      E = CE->sub();
      continue;
    }
    return E;
  }
}

} // namespace

void FunctionChecker::refine(Env &S, const Expr *Cond, bool Value) {
  if (!Cond || S.isUnreachable())
    return;
  const Expr *E = stripRefinementWrappers(Cond);

  // !e
  if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
    if (UE->op() == UnaryOp::Not)
      refine(S, UE->sub(), !Value);
    return;
  }

  if (const auto *BE = dyn_cast<BinaryExpr>(E)) {
    // e1 && e2: when true, both are true. e1 || e2: when false, both false.
    if (BE->op() == BinaryOp::LAnd && Value) {
      refine(S, BE->lhs(), true);
      refine(S, BE->rhs(), true);
      return;
    }
    if (BE->op() == BinaryOp::LOr && !Value) {
      refine(S, BE->lhs(), false);
      refine(S, BE->rhs(), false);
      return;
    }
    // e == NULL / e != NULL (either side).
    if (isEqualityOp(BE->op())) {
      const Expr *Tested = nullptr;
      if (isNullConstant(BE->rhs()))
        Tested = BE->lhs();
      else if (isNullConstant(BE->lhs()))
        Tested = BE->rhs();
      if (!Tested)
        return;
      bool IsNullWhen = (BE->op() == BinaryOp::EQ) ? Value : !Value;
      // Locate the reference without side effects: a refinement-only eval.
      Env Scratch = S;
      EvalResult R = evalExpr(Tested, Scratch, /*AsRValue=*/false);
      if (R.Ref) {
        if (Observer && R.Ref->isRoot())
          if (const auto *P = dyn_cast<ParmVarDecl>(R.Ref->root()))
            Observer->observeParamNullTested(P);
        setNullState(S, *R.Ref,
                     IsNullWhen ? NullState::DefinitelyNull
                                : NullState::NotNull,
                     Cond->loc());
      }
      return;
    }
    // p = e used as a condition: refine p.
    if (BE->op() == BinaryOp::Assign) {
      Env Scratch = S;
      EvalResult R = evalExpr(BE->lhs(), Scratch, /*AsRValue=*/false);
      if (R.Ref && BE->lhs()->type().isPointer())
        setNullState(S, *R.Ref,
                     Value ? NullState::NotNull : NullState::DefinitelyNull,
                     Cond->loc());
      return;
    }
    return;
  }

  // truenull/falsenull test functions: isNull(p).
  if (const auto *CE = dyn_cast<CallExpr>(E)) {
    const FunctionDecl *Callee = CE->directCallee();
    if (!Callee || CE->args().empty())
      return;
    bool TrueNull = Callee->isTrueNull();
    bool FalseNull = Callee->isFalseNull();
    if (!TrueNull && !FalseNull)
      return;
    // The tested pointer is the first pointer-typed argument.
    const Expr *Tested = nullptr;
    for (const Expr *A : CE->args())
      if (A->type().isPointer()) {
        Tested = A;
        break;
      }
    if (!Tested)
      return;
    Env Scratch = S;
    EvalResult R = evalExpr(Tested, Scratch, /*AsRValue=*/false);
    if (!R.Ref)
      return;
    if (Observer && R.Ref->isRoot())
      if (const auto *P = dyn_cast<ParmVarDecl>(R.Ref->root()))
        Observer->observeParamNullTested(P);
    bool IsNull = TrueNull ? Value : !Value;
    setNullState(S, *R.Ref,
                 IsNull ? NullState::DefinitelyNull : NullState::NotNull,
                 Cond->loc());
    return;
  }

  // A bare pointer used as the condition: if (p) / while (p->next).
  {
    Env Scratch = S;
    EvalResult R = evalExpr(E, Scratch, /*AsRValue=*/false);
    if (R.Ref && E->type().isPointer()) {
      if (Observer && R.Ref->isRoot())
        if (const auto *P = dyn_cast<ParmVarDecl>(R.Ref->root()))
          Observer->observeParamNullTested(P);
      setNullState(S, *R.Ref,
                   Value ? NullState::NotNull : NullState::DefinitelyNull,
                   Cond->loc());
    }
  }
}
