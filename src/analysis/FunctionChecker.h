//===--- FunctionChecker.h - The paper's intraprocedural analysis *- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the paper: each procedure is checked independently using the
/// interface information in annotations (§2, §5).
///
/// - At entry, parameter and global annotations are assumed. Each pointer
///   parameter gets a caller-visible "arg" mirror (the paper's `argl`) that
///   the local parameter initially aliases, so state changes made through
///   derived references propagate to the interface view.
/// - Expressions are evaluated abstractly; every rvalue use, dereference,
///   assignment, and call is checked against the storage model.
/// - Control flow follows the paper's simplifications: any predicate may be
///   true or false, loops execute zero or one time (no back edges), and
///   branch conditions refine null states (including truenull/falsenull
///   test functions and assert()).
/// - At every return point and at the fall-off exit, interface constraints
///   on the return value, parameters, and used globals are verified;
///   unreleased obligations are reported as leaks.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_FUNCTIONCHECKER_H
#define MEMLINT_ANALYSIS_FUNCTIONCHECKER_H

#include "analysis/Env.h"
#include "ast/AST.h"
#include "support/Diagnostics.h"
#include "support/Flags.h"
#include "support/Limits.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <functional>
#include <optional>
#include <set>
#include <vector>

namespace memlint {

/// Observation hooks for annotation inference (DESIGN.md §6h): while a
/// function is being checked, the attached observer is told about the
/// interface-relevant transfer behavior the storage model sees. All hooks
/// fire only for references rooted in a parameter of the function under
/// check (the local parameter or its caller-visible arg mirror). A null
/// observer (the default) costs one pointer test per hook site.
class CheckObserver {
public:
  virtual ~CheckObserver() = default;

  /// Storage rooted in parameter \p P was passed as an only/keep parameter
  /// of a callee: its release obligation transferred out of the function.
  virtual void observeParamConsumed(const ParmVarDecl *P) {}

  /// Parameter \p P was tested against null (branch refinement: an
  /// equality test with NULL, a truenull/falsenull predicate call, or a
  /// bare pointer condition).
  virtual void observeParamNullTested(const ParmVarDecl *P) {}

  /// Parameter \p P was dereferenced (arrow/index/star access).
  virtual void observeParamDeref(const ParmVarDecl *P) {}

  /// Facts about one analyzed return of a pointer-returning function.
  struct ReturnFact {
    bool HoldsObligation = false; ///< value carries a release obligation
    bool MayBeNull = false;       ///< abstract value may be null
    bool IsNullConst = false;     ///< a literal null constant is returned
    const ParmVarDecl *ReturnedParam = nullptr; ///< parameter returned (or
                                                ///< aliased by the result)
  };
  virtual void observeReturn(const ReturnFact &Fact) {}
};

/// Checks function bodies against their interface annotations.
class FunctionChecker {
public:
  /// \p Budget, when given, bounds the per-function work (statements
  /// analyzed, environment splits) and the abstract-evaluation recursion
  /// depth; without one the default ResourceBudget depth still guards the
  /// stack.
  FunctionChecker(const TranslationUnit &TU, const FlagSet &Flags,
                  DiagnosticEngine &Diags, BudgetState *Budget = nullptr)
      : TU(TU), Flags(Flags), Diags(Diags), Budget(Budget),
        MaxEvalDepth(Budget ? Budget->budget().MaxNestingDepth
                            : ResourceBudget().MaxNestingDepth),
        RefDepth(Budget ? Budget->budget().MaxRefAliasDepth
                        : ResourceBudget().MaxRefAliasDepth) {}

  /// Checks one function definition.
  void checkFunction(const FunctionDecl *FD);

  /// Checks every function definition in the translation unit. Each
  /// function is checked in isolation: an internal error escaping one
  /// function's analysis is converted into a diagnostic and checking
  /// proceeds with the next function.
  void checkAll();

  /// Attaches a metrics registry: checkFunction then times each function
  /// ("check.function" timer + "hist.check.function" latency histogram)
  /// and counts functions / statements / splits; under +stats the
  /// environment counters are folded in as "env.*". Null (the default)
  /// keeps the analysis free of clock reads.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

  /// Attaches an observer whose hooks fire on interface-relevant transfer
  /// behavior (see CheckObserver). Null (the default) disables observation.
  void setObserver(CheckObserver *O) { Observer = O; }

  /// Attaches a span recorder: checkFunction then records one
  /// "check.function" span per function with the function name as an arg.
  /// Null (the default) is fully inert.
  void setTraceRecorder(TraceRecorder *R) { Trace = R; }

  /// Enables state-transition tracing for the function named \p Fn. While
  /// that function is being checked, every definition/null/allocation state
  /// write, obligation consumption, environment split, and merge is
  /// reported to \p Sink as one structured "fn=<name> ev=<event> ..." line
  /// (no trailing newline). A null sink disables tracing.
  void setTrace(std::string Fn, std::function<void(const std::string &)> Sink) {
    TraceFn = std::move(Fn);
    TraceSink = std::move(Sink);
  }

private:
  /// The abstract result of evaluating an expression.
  struct EvalResult {
    std::optional<RefPath> Ref; ///< reference the expression denotes, if any
    SVal Val;                   ///< abstract value
    bool IsNullConst = false;   ///< a null pointer constant
    std::vector<RefPath> ResultAliases; ///< call results: refs the value may
                                        ///< alias (returned parameters)
  };

  //===--- evaluation ------------------------------------------------------===//
  EvalResult evalExpr(const Expr *E, Env &S, bool AsRValue);
  EvalResult evalCall(const CallExpr *CE, Env &S);
  EvalResult evalAssign(const BinaryExpr *BE, Env &S);
  /// Shared by assignments and initialized declarations.
  void assignTo(const RefPath &LHS, const Annotations &LHSAnnots,
                QualType LHSTy, EvalResult &RHS, Env &S,
                const SourceLocation &Loc, const std::string &StmtText,
                bool IsInitialization);

  //===--- statements ------------------------------------------------------===//
  void execStmt(const Stmt *S, Env &Env_);
  void execCompound(const CompoundStmt *CS, Env &S);
  void execIf(const IfStmt *IS, Env &S);
  void execWhile(const WhileStmt *WS, Env &S);
  void execDo(const DoStmt *DS, Env &S);
  void execFor(const ForStmt *FS, Env &S);
  void execSwitch(const SwitchStmt *SS, Env &S);
  void execReturn(const ReturnStmt *RS, Env &S);
  void execDecl(const VarDecl *VD, Env &S, const SourceLocation &Loc);

  //===--- refinement ------------------------------------------------------===//
  /// Refines null states assuming \p Cond evaluated to \p Value.
  void refine(Env &S, const Expr *Cond, bool Value);
  void setNullState(Env &S, const RefPath &Ref, NullState NS,
                    const SourceLocation &Loc);

  //===--- state helpers ---------------------------------------------------===//
  /// Entry/default value of a reference from declarations alone.
  SVal defaultFor(const RefPath &Ref) const;
  /// Value of a reference in \p S, deriving through the nearest tracked
  /// ancestor when untracked.
  SVal lookupRef(const Env &S, const RefPath &Ref);
  /// Child value derivation (field annotations + parent definition state).
  SVal deriveChild(const SVal &Parent, const PathElem &Elem) const;
  /// Writes \p Val to \p Ref and all alias expansions; propagates partial
  /// definition to ancestors; \p Strong erases stale descendants of the
  /// primary reference.
  void writeRef(Env &S, const RefPath &Ref, const SVal &Val, bool Strong);
  /// Effective annotations governing a reference (root decl or last field).
  Annotations annotationsFor(const RefPath &Ref) const;
  /// Marks an obligation as consumed on a reference and its expansions.
  void consumeObligation(Env &S, const RefPath &Ref, bool MakeDead,
                         const SourceLocation &Loc);
  /// After \p Ref is bound to allocated-but-undefined record storage, track
  /// each field as explicitly undefined so completeness checks can
  /// enumerate what the body never defines.
  void materializeChildren(Env &S, const RefPath &Ref, QualType PtrTy,
                           const SourceLocation &Loc);

  //===--- checks ----------------------------------------------------------===//
  void checkRValueUse(Env &S, EvalResult &R, const Expr *E);
  /// Checks a dereference (arrow/star/index) of \p Base; returns true if a
  /// null-deref anomaly was reported (state is then poisoned).
  bool checkDeref(Env &S, EvalResult &Base, const Expr *Whole,
                  const char *AccessKind);
  void checkCallArg(Env &S, EvalResult &Arg, const Expr *ArgExpr,
                    const ParmVarDecl *Parm, const FunctionDecl *Callee,
                    unsigned Index, const CallExpr *CE);
  void checkUniqueParams(Env &S, const FunctionDecl *Callee,
                         const std::vector<EvalResult> &Args,
                         const CallExpr *CE);
  /// Interface checks at a return point or the fall-off exit.
  void checkExitPoint(Env &S, const SourceLocation &Loc);
  /// Leak checks for locals leaving scope.
  void checkScopeExit(Env &S, const std::vector<const VarDecl *> &Locals,
                      const SourceLocation &Loc);
  void reportConflicts(const std::vector<Env::Conflict> &Conflicts,
                       const SourceLocation &Loc);

  bool checkEnabled(CheckId Id) const {
    return Flags.get(checkIdFlagName(Id));
  }

  //===--- resource budget --------------------------------------------------===//
  /// Charges the statement budget for \p St. \returns false when the budget
  /// is exhausted; \p S is then marked unreachable so the remainder of the
  /// function is skipped, and (once per function) a degradation notice is
  /// emitted.
  bool takeStmt(const Stmt *St, Env &S);
  /// Charges \p N environment splits at a confluence. Same bail-out
  /// contract as takeStmt.
  bool takeSplits(unsigned N, const SourceLocation &Loc, Env &S);
  /// Records degradation for \p Flag and emits a once-per-function notice.
  void noteBudget(const char *Flag, unsigned Limit, const SourceLocation &Loc,
                  const std::string &What, bool &Noticed);

  //===--- observability ----------------------------------------------------===//
  /// A fresh environment bound to the current function's interner, alias
  /// depth limit and (under +stats) counter sink.
  Env makeEnv() {
    return Env(Interner_, RefDepth, Flags.get("stats") ? &EnvStats_ : nullptr);
  }
  /// Emits the +stats per-function counter block as a note.
  void emitStats(const FunctionDecl *FD);
  /// Folds the current function's counters into the metrics registry.
  void recordFunctionMetrics();
  /// True when the current function is being traced (cheap inline guard so
  /// untraced runs pay one boolean test per hook).
  bool tracing() const { return TraceActive; }
  /// Emits one trace event line, prefixed with the current function name.
  void trace(const std::string &Event);

  //===--- loop / scope bookkeeping ----------------------------------------===//
  struct LoopContext {
    std::vector<Env> Breaks;
    std::vector<Env> Continues;
    bool IsSwitch = false;
  };

  const TranslationUnit &TU;
  const FlagSet &Flags;
  DiagnosticEngine &Diags;
  BudgetState *Budget = nullptr;
  CheckObserver *Observer = nullptr;
  MetricsRegistry *Metrics = nullptr;
  TraceRecorder *Trace = nullptr;
  std::string TraceFn; ///< function name selected for tracing; "" = none
  std::function<void(const std::string &)> TraceSink;
  bool TraceActive = false; ///< tracing the function currently checked
  unsigned MaxEvalDepth = 0;
  unsigned RefDepth = 6;

  // Per-function budget state (reset in checkFunction).
  unsigned StmtCount = 0;
  unsigned SplitCount = 0;
  unsigned EvalDepth = 0;
  bool StmtNoticed = false;
  bool SplitNoticed = false;
  bool DepthNoticed = false;

  // Per-function state.
  const FunctionDecl *CurFn = nullptr;
  /// One interner per checked function: every Env forked during the
  /// function's analysis shares it, making env copies pointer bumps.
  std::shared_ptr<RefInterner> Interner_;
  EnvStats EnvStats_; ///< +stats counters for the current function
  std::set<const VarDecl *> GlobalsUsed;
  std::vector<std::vector<const VarDecl *>> LocalScopes;
  std::vector<LoopContext *> Loops;
  Env::DefaultFn DefaultFn_;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_FUNCTIONCHECKER_H
