//===--- LibrarySpec.cpp - Annotated standard library ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/LibrarySpec.h"

#include "support/Journal.h"

using namespace memlint;

const char *memlint::libraryPreludeName() { return "<stdlib>"; }

const std::string &memlint::librarySpecVersion() {
  static const std::string Version = fnv1aHex({libraryPreludeSource()});
  return Version;
}

const std::string &memlint::libraryPreludeSource() {
  static const std::string Prelude = R"c(
#define NULL ((void *) 0)
#define EXIT_FAILURE 1
#define EXIT_SUCCESS 0
#define TRUE 1
#define FALSE 0
typedef unsigned long size_t;
typedef int bool;

/* Allocation: the paper's specifications, verbatim in annotation form. */
extern /*@null@*/ /*@out@*/ /*@only@*/ void *malloc(size_t size);
extern /*@null@*/ /*@out@*/ /*@only@*/ void *calloc(size_t nmemb,
                                                    size_t size);
extern /*@null@*/ /*@only@*/ void *realloc(/*@null@*/ /*@only@*/ void *ptr,
                                           size_t size);
extern void free(/*@null@*/ /*@out@*/ /*@only@*/ void *ptr);

/* String functions. strcpy's first parameter must be unique storage:
   "char *strcpy (out returned unique char *s1, char *s2)". */
extern char *strcpy(/*@out@*/ /*@returned@*/ /*@unique@*/ char *s1,
                    /*@temp@*/ char *s2);
extern char *strncpy(/*@returned@*/ /*@unique@*/ char *s1,
                     /*@temp@*/ char *s2, size_t n);
extern char *strcat(/*@returned@*/ /*@unique@*/ char *s1,
                    /*@temp@*/ char *s2);
extern int strcmp(/*@temp@*/ char *s1, /*@temp@*/ char *s2);
extern int strncmp(/*@temp@*/ char *s1, /*@temp@*/ char *s2, size_t n);
extern size_t strlen(/*@temp@*/ char *s);
extern /*@null@*/ /*@only@*/ char *strdup(/*@temp@*/ char *s);

/* Memory block functions. */
extern void *memcpy(/*@returned@*/ void *dst, /*@temp@*/ void *src,
                    size_t n);
extern void *memset(/*@returned@*/ void *s, int c, size_t n);
extern int memcmp(/*@temp@*/ void *s1, /*@temp@*/ void *s2, size_t n);

/* stdio (formatted output is variadic; the format string is read-only). */
extern int printf(/*@temp@*/ char *format, ...);
extern int sprintf(char *s, /*@temp@*/ char *format, ...);
extern int puts(/*@temp@*/ char *s);
extern int putchar(int c);
extern int getchar(void);

/* Process control. exits marks functions that never return, so checking
   does not continue past error handlers (erc_create, Figure 7). */
extern /*@exits@*/ void exit(int status);
extern /*@exits@*/ void abort(void);

/* assert is handled specially by the analysis: the asserted condition
   refines the state on the fall-through path. */
extern void assert(int expression);

/* ctype */
extern int isalpha(int c);
extern int isdigit(int c);
extern int isspace(int c);
extern int toupper(int c);
extern int tolower(int c);
)c";
  return Prelude;
}
