//===--- LibrarySpec.h - Annotated standard library -------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The annotated standard library. The paper specifies the allocator and
/// deallocator entirely with the provided annotations:
///
///   null out only void *malloc (size_t size);
///   void free (null out only void *ptr);
///   char *strcpy (out returned unique char *s1, char *s2);
///
/// "There is nothing special about malloc and free; their behavior can be
/// described entirely in terms of the provided annotations." We express the
/// specs as a prelude of C declarations with /*@...@*/ annotations that is
/// preprocessed and parsed ahead of user code, so library knowledge flows
/// through exactly the same interface-annotation machinery as user
/// annotations.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_LIBRARYSPEC_H
#define MEMLINT_ANALYSIS_LIBRARYSPEC_H

#include <string>

namespace memlint {

/// \returns the annotated standard-library prelude source. Parsed under the
/// file name given by libraryPreludeName().
const std::string &libraryPreludeSource();

/// \returns the virtual file name of the prelude ("<stdlib>").
const char *libraryPreludeName();

/// A 16-hex-digit content fingerprint of the prelude source — the
/// LibrarySpec version. Any edit to the annotated standard library changes
/// it, so the check service's cached results (whose key includes this
/// version) can never survive a library-spec change.
const std::string &librarySpecVersion();

} // namespace memlint

#endif // MEMLINT_ANALYSIS_LIBRARYSPEC_H
