//===--- RefInterner.cpp - Dense integer ids for reference paths -----------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/RefInterner.h"

using namespace memlint;

RefId RefInterner::internRoot(RefPath::RootKind RK, const VarDecl *Root) {
  auto Key = std::make_pair(static_cast<int>(RK), Root);
  auto It = Roots.find(Key);
  if (It != Roots.end())
    return It->second;
  RefId Id = static_cast<RefId>(Entries.size());
  Entry E;
  E.Path = RefPath(RK, Root);
  Entries.push_back(std::move(E));
  Roots.emplace(Key, Id);
  return Id;
}

RefId RefInterner::findChild(RefId Parent, const PathElem &Elem) const {
  for (RefId C = Entries[Parent].FirstChild; C != InvalidRefId;
       C = Entries[C].NextSibling)
    if (Entries[C].Elem == Elem)
      return C;
  return InvalidRefId;
}

RefId RefInterner::child(RefId Parent, const PathElem &Elem) {
  if (RefId C = findChild(Parent, Elem); C != InvalidRefId)
    return C;
  RefId Id = static_cast<RefId>(Entries.size());
  Entry E;
  E.Path = Entries[Parent].Path.child(Elem);
  E.Elem = Elem;
  E.Parent = Parent;
  E.Depth = Entries[Parent].Depth + 1;
  E.NextSibling = Entries[Parent].FirstChild;
  Entries.push_back(std::move(E));
  Entries[Parent].FirstChild = Id;
  return Id;
}

RefId RefInterner::childLookup(RefId Parent, const PathElem &Elem) const {
  return findChild(Parent, Elem);
}

RefId RefInterner::intern(const RefPath &Ref) {
  RefId Id = internRoot(Ref.rootKind(), Ref.root());
  for (const PathElem &E : Ref.elems())
    Id = child(Id, E);
  return Id;
}

RefId RefInterner::rootLookup(RefPath::RootKind RK,
                              const VarDecl *Root) const {
  auto It = Roots.find(std::make_pair(static_cast<int>(RK), Root));
  return It == Roots.end() ? InvalidRefId : It->second;
}

RefId RefInterner::lookup(const RefPath &Ref) const {
  RefId Id = rootLookup(Ref.rootKind(), Ref.root());
  if (Id == InvalidRefId)
    return InvalidRefId;
  for (const PathElem &E : Ref.elems()) {
    Id = findChild(Id, E);
    if (Id == InvalidRefId)
      return InvalidRefId;
  }
  return Id;
}
