//===--- RefInterner.h - Dense integer ids for reference paths --*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-function interner mapping each RefPath to a dense RefId (uint32).
/// The interner stores the derivation tree alongside the ids: every entry
/// records its parent id, its last PathElem, its depth, and intrusive
/// first-child/next-sibling links. That turns the queries the dataflow hot
/// path needs — prefix tests, descendant enumeration, parent walks — into
/// arithmetic over interned structure instead of vector-of-string compares,
/// and lets Env key its value store by small dense integers so environment
/// copies can share chunked storage (see Env.h).
///
/// Interning a path interns all of its prefixes, so the parent chain of an
/// interned id is always fully interned. Ids are assigned in first-intern
/// order and are stable for the interner's lifetime; entry storage is a
/// deque so `path(Id)` references never move.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_REFINTERNER_H
#define MEMLINT_ANALYSIS_REFINTERNER_H

#include "analysis/RefPath.h"

#include <cstdint>
#include <deque>
#include <map>
#include <utility>

namespace memlint {

/// Dense id of an interned RefPath. Valid ids index the interner's entry
/// table; InvalidRefId means "never interned".
using RefId = uint32_t;
constexpr RefId InvalidRefId = 0xFFFFFFFFu;

/// Interns RefPaths into dense ids, one instance per analyzed function.
class RefInterner {
public:
  /// Interns \p Ref (and all its prefixes). \returns its id.
  RefId intern(const RefPath &Ref);

  /// \returns the id of \p Ref if it has been interned, else InvalidRefId.
  /// Never allocates.
  RefId lookup(const RefPath &Ref) const;

  /// \returns the id of the root reference (depth 0), or InvalidRefId if it
  /// has never been interned. Never allocates.
  RefId rootLookup(RefPath::RootKind RK, const VarDecl *Root) const;

  /// \returns the interned child of \p Parent through \p Elem, interning it
  /// if needed.
  RefId child(RefId Parent, const PathElem &Elem);

  /// Lookup-only variant of child(); InvalidRefId when not interned.
  RefId childLookup(RefId Parent, const PathElem &Elem) const;

  /// The full path of an interned id. The reference stays valid for the
  /// interner's lifetime.
  const RefPath &path(RefId Id) const { return Entries[Id].Path; }

  /// Parent id, or InvalidRefId for roots.
  RefId parent(RefId Id) const { return Entries[Id].Parent; }

  unsigned depth(RefId Id) const { return Entries[Id].Depth; }

  /// True if \p Prefix is a proper or improper prefix of \p Id: walks
  /// \p Id's parent chain down to \p Prefix's depth and compares ids.
  bool hasPrefix(RefId Id, RefId Prefix) const {
    unsigned PD = Entries[Prefix].Depth;
    while (Entries[Id].Depth > PD)
      Id = Entries[Id].Parent;
    return Id == Prefix;
  }

  /// Calls \p Fn(id) for every interned strict descendant of \p Id, in
  /// derivation-tree preorder.
  template <typename FnT> void forEachDescendant(RefId Id, FnT Fn) const {
    walkChildren(Entries[Id].FirstChild, Fn);
  }

  /// Number of interned paths.
  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    RefPath Path;
    PathElem Elem;              ///< last derivation (meaningless for roots)
    RefId Parent = InvalidRefId;
    RefId FirstChild = InvalidRefId;
    RefId NextSibling = InvalidRefId;
    uint32_t Depth = 0;
  };

  template <typename FnT> void walkChildren(RefId Child, FnT Fn) const {
    while (Child != InvalidRefId) {
      Fn(Child);
      walkChildren(Entries[Child].FirstChild, Fn);
      Child = Entries[Child].NextSibling;
    }
  }

  RefId internRoot(RefPath::RootKind RK, const VarDecl *Root);
  /// Scans \p Parent's sibling chain for \p Elem; InvalidRefId if absent.
  RefId findChild(RefId Parent, const PathElem &Elem) const;

  // Deque: path(Id) references must survive growth.
  std::deque<Entry> Entries;
  std::map<std::pair<int, const VarDecl *>, RefId> Roots;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_REFINTERNER_H
