//===--- RefPath.cpp - References: variables and derived storage -----------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/RefPath.h"

#include <cassert>

using namespace memlint;

bool RefPath::hasPrefix(const RefPath &Prefix) const {
  if (RK != Prefix.RK || Root != Prefix.Root)
    return false;
  if (Prefix.Elems.size() > Elems.size())
    return false;
  for (size_t I = 0; I < Prefix.Elems.size(); ++I)
    if (!(Elems[I] == Prefix.Elems[I]))
      return false;
  return true;
}

RefPath RefPath::withPrefixReplaced(const RefPath &Prefix,
                                    const RefPath &Replacement) const {
  assert(hasPrefix(Prefix) && "not a prefix");
  RefPath Out = Replacement;
  for (size_t I = Prefix.Elems.size(); I < Elems.size(); ++I)
    Out.Elems.push_back(Elems[I]);
  return Out;
}

std::string RefPath::str() const {
  std::string Out = Root ? Root->name() : std::string("<none>");
  // A Deref immediately followed by a Dot renders as an arrow access;
  // leading bare derefs render as prefix stars; others as element access.
  unsigned LeadingStars = 0;
  std::string Suffix;
  for (size_t I = 0; I < Elems.size(); ++I) {
    const PathElem &E = Elems[I];
    if (E.K == PathElem::Kind::Deref) {
      if (I + 1 < Elems.size() && Elems[I + 1].K == PathElem::Kind::Dot) {
        Suffix += "->" + Elems[I + 1].FieldName;
        ++I;
        continue;
      }
      if (Suffix.empty())
        ++LeadingStars;
      else
        Suffix += "[]";
      continue;
    }
    Suffix += "." + E.FieldName;
  }
  Out += Suffix;
  return std::string(LeadingStars, '*') + Out;
}
