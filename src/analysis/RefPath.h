//===--- RefPath.h - References: variables and derived storage --*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "A reference is a variable or a location derived from a variable (e.g.,
/// a field of a structure)." (§3) A RefPath is a root plus a bounded chain
/// of derivations: `l->next->this` is root l with two Arrow elements.
///
/// Roots distinguish the local view of a parameter from the caller-visible
/// actual (the paper's `l` vs `argl`): each pointer parameter gets an Arg
/// mirror root that the local initially aliases; interface checks at
/// function exit run against the Arg roots.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_REFPATH_H
#define MEMLINT_ANALYSIS_REFPATH_H

#include "ast/AST.h"

#include <string>
#include <vector>

namespace memlint {

/// One derivation step from a base reference.
struct PathElem {
  enum class Kind {
    Deref, ///< *p — also models p[i]: all compile-time-unknown indexes
           ///< denote the same element under strictindexalias (§2), so
           ///< p->f, (*p).f and p[i].f are one reference (Deref then Dot).
    Dot,   ///< .field
  };

  Kind K = Kind::Deref;
  const FieldDecl *Field = nullptr; ///< for Dot
  std::string FieldName;            ///< printable even if unresolved

  friend bool operator==(const PathElem &A, const PathElem &B) {
    return A.K == B.K && A.FieldName == B.FieldName;
  }
  friend bool operator<(const PathElem &A, const PathElem &B) {
    if (A.K != B.K)
      return A.K < B.K;
    return A.FieldName < B.FieldName;
  }
};

/// A tracked reference.
class RefPath {
public:
  enum class RootKind {
    Var, ///< a local, parameter or global VarDecl
    Arg, ///< the caller-visible mirror of a parameter ("argl")
  };

  RefPath() = default;
  RefPath(RootKind RK, const VarDecl *Root) : RK(RK), Root(Root) {}

  static RefPath var(const VarDecl *VD) { return RefPath(RootKind::Var, VD); }
  static RefPath arg(const ParmVarDecl *PD) {
    return RefPath(RootKind::Arg, PD);
  }

  bool isValid() const { return Root != nullptr; }
  RootKind rootKind() const { return RK; }
  const VarDecl *root() const { return Root; }
  const std::vector<PathElem> &elems() const { return Elems; }
  bool isRoot() const { return Elems.empty(); }
  size_t depth() const { return Elems.size(); }

  /// \returns this path extended by one derivation.
  RefPath child(PathElem E) const {
    RefPath Out = *this;
    Out.Elems.push_back(std::move(E));
    return Out;
  }

  /// \returns the path without its last element. Asserts !isRoot().
  RefPath parent() const {
    RefPath Out = *this;
    Out.Elems.pop_back();
    return Out;
  }

  /// The declaration (field or root variable) that carries the annotations
  /// governing this reference.
  const FieldDecl *lastField() const {
    for (auto It = Elems.rbegin(); It != Elems.rend(); ++It)
      if (It->Field)
        return It->Field;
    return nullptr;
  }

  /// True if \p Prefix is a proper or improper prefix of this path.
  bool hasPrefix(const RefPath &Prefix) const;

  /// Replaces the prefix \p Prefix of this path with \p Replacement.
  /// Asserts hasPrefix(Prefix).
  RefPath withPrefixReplaced(const RefPath &Prefix,
                             const RefPath &Replacement) const;

  /// Renders like "l->next->this" (Arg roots render with the parameter's
  /// source name, matching the messages a user sees).
  std::string str() const;

  friend bool operator==(const RefPath &A, const RefPath &B) {
    return A.RK == B.RK && A.Root == B.Root && A.Elems == B.Elems;
  }
  friend bool operator!=(const RefPath &A, const RefPath &B) {
    return !(A == B);
  }
  friend bool operator<(const RefPath &A, const RefPath &B) {
    if (A.RK != B.RK)
      return A.RK < B.RK;
    if (A.Root != B.Root)
      return A.Root < B.Root;
    return A.Elems < B.Elems;
  }

private:
  RootKind RK = RootKind::Var;
  const VarDecl *Root = nullptr;
  std::vector<PathElem> Elems;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_REFPATH_H
