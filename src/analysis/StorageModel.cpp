//===--- StorageModel.cpp - The paper's storage state model ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/StorageModel.h"

#include <cassert>

using namespace memlint;

const char *memlint::defStateName(DefState S) {
  switch (S) {
  case DefState::Undefined: return "undefined";
  case DefState::Allocated: return "allocated";
  case DefState::PartiallyDefined: return "partially defined";
  case DefState::Defined: return "defined";
  case DefState::Dead: return "dead";
  case DefState::Error: return "error";
  }
  return "?";
}

const char *memlint::nullStateName(NullState S) {
  switch (S) {
  case NullState::NotNull: return "not null";
  case NullState::PossiblyNull: return "possibly null";
  case NullState::DefinitelyNull: return "null";
  case NullState::RelNull: return "relnull";
  case NullState::Unknown: return "unknown";
  case NullState::Error: return "error";
  }
  return "?";
}

const char *memlint::allocStateName(AllocState S) {
  switch (S) {
  case AllocState::Unqualified: return "unqualified";
  case AllocState::Only: return "only";
  case AllocState::Fresh: return "fresh";
  case AllocState::Keep: return "keep";
  case AllocState::Kept: return "kept";
  case AllocState::Temp: return "temp";
  case AllocState::Owned: return "owned";
  case AllocState::Dependent: return "dependent";
  case AllocState::Shared: return "shared";
  case AllocState::Observer: return "observer";
  case AllocState::Exposed: return "exposed";
  case AllocState::Static: return "static";
  case AllocState::Stack: return "stack";
  case AllocState::Offset: return "offset";
  case AllocState::Null: return "null";
  case AllocState::RefCounted: return "refcounted";
  case AllocState::Error: return "error";
  }
  return "?";
}

DefState memlint::mergeDef(DefState A, DefState B, bool &Conflict) {
  if (A == B)
    return A;
  if (A == DefState::Error || B == DefState::Error)
    return DefState::Error;
  // Released on one path, live on the other: "if storage is deallocated on
  // only one of the paths through an if statement" an error is reported.
  if (A == DefState::Dead || B == DefState::Dead) {
    Conflict = true;
    return DefState::Error;
  }
  auto rank = [](DefState S) {
    switch (S) {
    case DefState::Undefined: return 0;
    case DefState::Allocated: return 1;
    case DefState::PartiallyDefined: return 2;
    case DefState::Defined: return 3;
    default: return 3;
    }
  };
  // The weakest assumption wins outright ("at point 10 ... l->next->next is
  // undefined" even though the other branch had it defined).
  return rank(A) < rank(B) ? A : B;
}

NullState memlint::mergeNull(NullState A, NullState B) {
  if (A == B)
    return A;
  if (A == NullState::Error || B == NullState::Error)
    return NullState::Error;
  if (A == NullState::Unknown)
    return B;
  if (B == NullState::Unknown)
    return A;
  if (A == NullState::RelNull || B == NullState::RelNull)
    return NullState::RelNull;
  // NotNull/DefinitelyNull/PossiblyNull disagreements: may be null.
  return NullState::PossiblyNull;
}

AllocState memlint::mergeAlloc(AllocState A, AllocState B, bool &Conflict) {
  if (A == B)
    return A;
  if (A == AllocState::Error || B == AllocState::Error)
    return AllocState::Error;
  if (A == AllocState::Unqualified)
    return B;
  if (B == AllocState::Unqualified)
    return A;
  if (A == AllocState::Null)
    return B;
  if (B == AllocState::Null)
    return A;

  // Same obligation class merges to the more general member.
  if (holdsObligation(A) && holdsObligation(B)) {
    if (A == AllocState::RefCounted || B == AllocState::RefCounted)
      return AllocState::RefCounted;
    return AllocState::Only;
  }
  bool ANoObligation = !holdsObligation(A);
  bool BNoObligation = !holdsObligation(B);
  if (ANoObligation && BNoObligation) {
    // Both lack an obligation; pick the more restrictive view conservatively.
    if (A == AllocState::Observer || B == AllocState::Observer)
      return AllocState::Observer;
    if (A == AllocState::Temp || B == AllocState::Temp)
      return AllocState::Temp;
    return A;
  }
  // One branch holds the release obligation, the other does not: there is no
  // sensible combination ("one means the storage must be released, and the
  // other means it must not be released", §5).
  Conflict = true;
  return AllocState::Error;
}

std::string SVal::str() const {
  std::string Out = defStateName(Def);
  Out += "/";
  Out += nullStateName(Null);
  Out += "/";
  Out += allocStateName(Alloc);
  return Out;
}
