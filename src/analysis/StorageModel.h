//===--- StorageModel.h - The paper's storage state model -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Three values are associated with each reference: the definition state
/// (defined, partially defined, allocated, etc.), the null state (definitely
/// null, possibly null, not null, etc.), and the allocation state
/// (corresponding to the allocation annotation, e.g., only, temp)." (§5)
///
/// Merge rules at confluence points (§5): definition states combine using
/// the weakest assumption; null states combine to the most uncertain;
/// allocation states that disagree about the release obligation are a
/// confluence anomaly and poison the value with Error.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_ANALYSIS_STORAGEMODEL_H
#define MEMLINT_ANALYSIS_STORAGEMODEL_H

#include "support/SourceLocation.h"

#include <string>

namespace memlint {

/// Definition state of the storage a reference denotes. For a pointer this
/// covers the storage *reachable* from it ("completely defined").
enum class DefState {
  Undefined,        ///< No value assigned.
  Allocated,        ///< Allocated but contents undefined (out storage).
  PartiallyDefined, ///< Some reachable storage is undefined.
  Defined,          ///< Completely defined.
  Dead,             ///< Released; may not be used.
  Error,            ///< Poisoned after a reported anomaly.
};

/// Null state of a pointer value.
enum class NullState {
  NotNull,        ///< Known non-null.
  PossiblyNull,   ///< May be NULL.
  DefinitelyNull, ///< Known NULL (after a guard or assignment).
  RelNull,        ///< relnull: may be NULL but used without checks.
  Unknown,        ///< Not a tracked pointer.
  Error,          ///< Poisoned after a reported anomaly.
};

/// Allocation (obligation/sharing) state, derived from the allocation
/// annotations plus transient states the analysis introduces.
enum class AllocState {
  Unqualified, ///< No constraint known.
  Only,        ///< Holds the obligation to release; unshared.
  Fresh,       ///< Newly allocated in this function; holds the obligation.
  Keep,        ///< Formal view of a keep parameter (obligation, caller keeps
               ///< use).
  Kept,        ///< Obligation has been transferred; still safely usable.
  Temp,        ///< May not be released or given new external aliases.
  Owned,       ///< Holds the obligation; dependents may share.
  Dependent,   ///< Shares owned storage; may not release.
  Shared,      ///< Arbitrarily shared; never released.
  Observer,    ///< Read-only view; may not be modified or released.
  Exposed,     ///< Exposed internal storage; may be modified, not released.
  Static,      ///< Immortal storage (string literals, &global); not freeable.
  Stack,       ///< Address of a local; not freeable.
  Offset,      ///< Pointer into the middle of a block; not freeable.
  Null,        ///< The null pointer itself; no obligation.
  RefCounted,  ///< A live reference to reference-counted storage; must be
               ///< released with a killref, never with free.
  Error,       ///< Poisoned after a reported anomaly.
};

const char *defStateName(DefState S);
const char *nullStateName(NullState S);
const char *allocStateName(AllocState S);

/// \returns true if storage in this allocation state carries an unmet
/// obligation to release.
inline bool holdsObligation(AllocState S) {
  return S == AllocState::Only || S == AllocState::Fresh ||
         S == AllocState::Owned || S == AllocState::Keep ||
         S == AllocState::RefCounted;
}

/// \returns true if releasing storage in this state is an error.
inline bool isUnreleasable(AllocState S) {
  return S == AllocState::Temp || S == AllocState::Dependent ||
         S == AllocState::Shared || S == AllocState::Observer ||
         S == AllocState::Exposed || S == AllocState::Static ||
         S == AllocState::Stack || S == AllocState::Offset ||
         S == AllocState::Kept;
}

/// Merges definition states with the weakest assumption. Sets \p Conflict
/// when one branch released the storage and the other did not (a confluence
/// anomaly per §5 / §2: "storage is deallocated on only one of the paths").
DefState mergeDef(DefState A, DefState B, bool &Conflict);

/// Merges null states to the most uncertain.
NullState mergeNull(NullState A, NullState B);

/// Merges allocation states. Sets \p Conflict when the two states disagree
/// about the release obligation (e.g. kept vs only at the Figure 5 merge).
AllocState mergeAlloc(AllocState A, AllocState B, bool &Conflict);

/// The abstract value of one reference: the three state dimensions plus
/// provenance locations used to attach the paper-style indented notes.
struct SVal {
  DefState Def = DefState::Defined;
  NullState Null = NullState::Unknown;
  AllocState Alloc = AllocState::Unqualified;

  SourceLocation NullLoc;  ///< where the value may have become null
  SourceLocation AllocLoc; ///< where the allocation state was established
  SourceLocation FreeLoc;  ///< where the storage was released
  SourceLocation DefLoc;   ///< where the definition state was established

  bool isDead() const { return Def == DefState::Dead; }
  bool mayBeNull() const {
    return Null == NullState::PossiblyNull ||
           Null == NullState::DefinitelyNull;
  }

  std::string str() const;
};

} // namespace memlint

#endif // MEMLINT_ANALYSIS_STORAGEMODEL_H
