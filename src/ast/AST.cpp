//===--- AST.cpp - Declarations, statements and expressions ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

using namespace memlint;

const Expr *Expr::ignoreParens() const {
  const Expr *E = this;
  while (const auto *PE = dyn_cast<ParenExpr>(E))
    E = PE->sub();
  return E;
}

FunctionDecl *CallExpr::directCallee() const {
  const Expr *C = Callee->ignoreParens();
  if (const auto *DRE = dyn_cast<DeclRefExpr>(C))
    return dyn_cast_or_null<FunctionDecl>(DRE->decl());
  return nullptr;
}

ASTContext::ASTContext() {
  VoidTy = builtin(BuiltinType::Kind::Void);
  CharTy = builtin(BuiltinType::Kind::Char);
  IntTy = builtin(BuiltinType::Kind::Int);
  UnsignedTy = builtin(BuiltinType::Kind::UnsignedInt);
  LongTy = builtin(BuiltinType::Kind::Long);
  UnsignedLongTy = builtin(BuiltinType::Kind::UnsignedLong);
  DoubleTy = builtin(BuiltinType::Kind::Double);
  FloatTy = builtin(BuiltinType::Kind::Float);
  ShortTy = builtin(BuiltinType::Kind::Short);
}

QualType ASTContext::builtin(BuiltinType::Kind K) {
  // Builtins are small; linear search over already-created types keeps them
  // canonical without a separate cache.
  for (const auto &T : OwnedTypes)
    if (const auto *BT = dyn_cast<BuiltinType>(T.get()))
      if (BT->builtinKind() == K)
        return QualType(BT);
  return QualType(createType<BuiltinType>(K));
}

QualType ASTContext::pointerTo(QualType Pointee) {
  // Unique only on unqualified pointees; qualified pointees are rare enough
  // that duplicates are harmless (types compare structurally via canonical()
  // where it matters).
  if (!Pointee.isConst() && !Pointee.isVolatile()) {
    for (const auto &KV : PointerCache)
      if (KV.first == Pointee.type())
        return QualType(KV.second);
  }
  const auto *PT = createType<PointerType>(Pointee);
  if (!Pointee.isConst() && !Pointee.isVolatile())
    PointerCache.push_back({Pointee.type(), PT});
  return QualType(PT);
}

QualType ASTContext::arrayOf(QualType Element, std::optional<long> Size) {
  return QualType(createType<ArrayType>(Element, Size));
}

QualType ASTContext::functionTy(QualType Result, std::vector<QualType> Params,
                                bool Variadic) {
  return QualType(createType<FunctionType>(Result, std::move(Params),
                                           Variadic));
}

QualType ASTContext::recordTy(RecordDecl *D) {
  return QualType(createType<RecordType>(D));
}

QualType ASTContext::enumTy(EnumDecl *D) {
  return QualType(createType<EnumType>(D));
}

QualType ASTContext::typedefTy(TypedefDecl *D) {
  return QualType(createType<TypedefType>(D));
}

std::vector<FunctionDecl *> TranslationUnit::definedFunctions() const {
  std::vector<FunctionDecl *> Out;
  for (Decl *D : Decls)
    if (auto *FD = dyn_cast<FunctionDecl>(D))
      if (FD->isDefinition())
        Out.push_back(FD);
  return Out;
}

std::vector<VarDecl *> TranslationUnit::globals() const {
  std::vector<VarDecl *> Out;
  for (Decl *D : Decls)
    if (auto *VD = dyn_cast<VarDecl>(D))
      if (VD->isGlobal())
        Out.push_back(VD);
  return Out;
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  FunctionDecl *Found = nullptr;
  for (Decl *D : Decls)
    if (auto *FD = dyn_cast<FunctionDecl>(D))
      if (FD->name() == Name) {
        if (FD->isDefinition())
          return FD;
        Found = FD;
      }
  return Found;
}
