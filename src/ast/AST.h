//===--- AST.h - Declarations, statements and expressions -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the checked C subset. Nodes are immutable
/// after construction (except for late-bound fields filled in by sema, such
/// as resolved declarations) and are owned by the ASTContext arena.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_AST_AST_H
#define MEMLINT_AST_AST_H

#include "ast/Annotations.h"
#include "ast/Type.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <vector>

namespace memlint {

class ASTContext;
class CompoundStmt;
class Expr;
class FunctionDecl;
class Stmt;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Base class for all declarations.
class Decl {
public:
  enum class DeclKind {
    Var,
    Parm,
    Function,
    Typedef,
    Record,
    Field,
    Enum,
    EnumConstant,
  };

  DeclKind kind() const { return Kind; }
  const std::string &name() const { return Name; }
  const SourceLocation &loc() const { return Loc; }

  virtual ~Decl() = default;

protected:
  Decl(DeclKind Kind, std::string Name, SourceLocation Loc)
      : Kind(Kind), Name(std::move(Name)), Loc(std::move(Loc)) {}

private:
  const DeclKind Kind;
  std::string Name;
  SourceLocation Loc;
};

/// Storage class of a variable or function.
enum class StorageClass { None, Extern, Static };

/// A variable: global, local, or (via the ParmVarDecl subclass) parameter.
class VarDecl : public Decl {
public:
  VarDecl(std::string Name, SourceLocation Loc, QualType Ty,
          Annotations Annots, StorageClass SC, bool Global)
      : Decl(DeclKind::Var, std::move(Name), std::move(Loc)), Ty(Ty),
        Annots(Annots), SC(SC), Global(Global) {}

  QualType type() const { return Ty; }

  /// Annotations written directly on this declaration.
  const Annotations &declAnnotations() const { return Annots; }

  /// Declaration annotations combined with the typedef chain's (declaration
  /// wins per category).
  Annotations effectiveAnnotations() const {
    return Annotations::overrideWith(typeAnnotations(Ty), Annots);
  }

  StorageClass storageClass() const { return SC; }
  bool isGlobal() const { return Global; }
  bool isStaticLocal() const { return !Global && SC == StorageClass::Static; }

  /// Merges annotations from a redeclaration (e.g. an annotated extern
  /// declaration in a header merged into the defining declaration).
  void mergeAnnotations(const Annotations &Other) {
    Annots = Annotations::overrideWith(Annots, Other);
  }

  /// Replaces the declaration annotations wholesale. Annotation inference
  /// uses this to apply a candidate set and to revert a rejected one.
  void setAnnotations(const Annotations &A) { Annots = A; }

  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::Var || D->kind() == DeclKind::Parm;
  }

protected:
  VarDecl(DeclKind Kind, std::string Name, SourceLocation Loc, QualType Ty,
          Annotations Annots)
      : Decl(Kind, std::move(Name), std::move(Loc)), Ty(Ty), Annots(Annots),
        SC(StorageClass::None), Global(false) {}

private:
  QualType Ty;
  Annotations Annots;
  StorageClass SC;
  bool Global;
  Expr *Init = nullptr;
};

/// A function parameter.
class ParmVarDecl : public VarDecl {
public:
  ParmVarDecl(std::string Name, SourceLocation Loc, QualType Ty,
              Annotations Annots, unsigned Index)
      : VarDecl(DeclKind::Parm, std::move(Name), std::move(Loc), Ty, Annots),
        Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Parm; }

private:
  unsigned Index;
};

/// A function declaration or definition.
class FunctionDecl : public Decl {
public:
  FunctionDecl(std::string Name, SourceLocation Loc, QualType ReturnTy,
               Annotations ReturnAnnots, std::vector<ParmVarDecl *> Params,
               bool Variadic, StorageClass SC)
      : Decl(DeclKind::Function, std::move(Name), std::move(Loc)),
        ReturnTy(ReturnTy), ReturnAnnots(ReturnAnnots),
        Params(std::move(Params)), Variadic(Variadic), SC(SC) {}

  QualType returnType() const { return ReturnTy; }

  /// Annotations on the return value (written in the declaration specifiers).
  const Annotations &returnAnnotations() const { return ReturnAnnots; }
  Annotations effectiveReturnAnnotations() const {
    return Annotations::overrideWith(typeAnnotations(ReturnTy), ReturnAnnots);
  }

  const std::vector<ParmVarDecl *> &params() const { return Params; }
  bool isVariadic() const { return Variadic; }
  StorageClass storageClass() const { return SC; }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  bool isDefinition() const { return Body != nullptr; }

  /// Redeclaration support: the first declaration is canonical; later
  /// declarations merge their annotations in and (for the definition)
  /// replace the parameter list so body references resolve to the decls in
  /// scope.
  void setParams(std::vector<ParmVarDecl *> Ps) { Params = std::move(Ps); }
  void mergeReturnAnnotations(const Annotations &Other) {
    ReturnAnnots = Annotations::overrideWith(ReturnAnnots, Other);
  }

  /// Replaces the return annotations wholesale (annotation inference
  /// apply/revert; see VarDecl::setAnnotations).
  void setReturnAnnotations(const Annotations &A) { ReturnAnnots = A; }

  /// True for a null-test function (paper: truenull/falsenull).
  bool isTrueNull() const { return ReturnAnnots.TrueNull; }
  bool isFalseNull() const { return ReturnAnnots.FalseNull; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::Function;
  }

private:
  QualType ReturnTy;
  Annotations ReturnAnnots;
  std::vector<ParmVarDecl *> Params;
  bool Variadic;
  StorageClass SC;
  CompoundStmt *Body = nullptr;
};

/// typedef declaration; may carry annotations constraining all instances.
class TypedefDecl : public Decl {
public:
  TypedefDecl(std::string Name, SourceLocation Loc, QualType Underlying,
              Annotations Annots)
      : Decl(DeclKind::Typedef, std::move(Name), std::move(Loc)),
        Underlying(Underlying), Annots(Annots) {}

  QualType underlying() const { return Underlying; }
  const Annotations &annotations() const { return Annots; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::Typedef;
  }

private:
  QualType Underlying;
  Annotations Annots;
};

/// A field of a struct or union.
class FieldDecl : public Decl {
public:
  FieldDecl(std::string Name, SourceLocation Loc, QualType Ty,
            Annotations Annots, unsigned Index)
      : Decl(DeclKind::Field, std::move(Name), std::move(Loc)), Ty(Ty),
        Annots(Annots), Index(Index) {}

  QualType type() const { return Ty; }
  const Annotations &declAnnotations() const { return Annots; }
  Annotations effectiveAnnotations() const {
    return Annotations::overrideWith(typeAnnotations(Ty), Annots);
  }
  unsigned index() const { return Index; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Field; }

private:
  QualType Ty;
  Annotations Annots;
  unsigned Index;
};

/// struct/union declaration.
class RecordDecl : public Decl {
public:
  RecordDecl(std::string Name, SourceLocation Loc, bool Union)
      : Decl(DeclKind::Record, std::move(Name), std::move(Loc)), Union(Union) {
  }

  bool isUnion() const { return Union; }
  bool isComplete() const { return Complete; }

  const std::vector<FieldDecl *> &fields() const { return Fields; }
  void completeDefinition(std::vector<FieldDecl *> Fs) {
    Fields = std::move(Fs);
    Complete = true;
  }

  /// \returns the field named \p Name, or null.
  FieldDecl *findField(const std::string &Name) const {
    for (FieldDecl *F : Fields)
      if (F->name() == Name)
        return F;
    return nullptr;
  }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Record; }

private:
  bool Union;
  bool Complete = false;
  std::vector<FieldDecl *> Fields;
};

/// One enumerator.
class EnumConstantDecl : public Decl {
public:
  EnumConstantDecl(std::string Name, SourceLocation Loc, long Value)
      : Decl(DeclKind::EnumConstant, std::move(Name), std::move(Loc)),
        Value(Value) {}

  long value() const { return Value; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::EnumConstant;
  }

private:
  long Value;
};

/// enum declaration.
class EnumDecl : public Decl {
public:
  EnumDecl(std::string Name, SourceLocation Loc)
      : Decl(DeclKind::Enum, std::move(Name), std::move(Loc)) {}

  const std::vector<EnumConstantDecl *> &constants() const {
    return Constants;
  }
  void completeDefinition(std::vector<EnumConstantDecl *> Cs) {
    Constants = std::move(Cs);
  }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Enum; }

private:
  std::vector<EnumConstantDecl *> Constants;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class for expressions. Every expression has a type (filled in during
/// parsing/sema) and a location.
class Expr {
public:
  enum class ExprKind {
    IntegerLiteral,
    FloatLiteral,
    CharLiteral,
    StringLiteral,
    DeclRef,
    Unary,
    Binary,
    Call,
    Member,
    ArraySubscript,
    Cast,
    Sizeof,
    Conditional,
    Paren,
    InitList,
  };

  ExprKind kind() const { return Kind; }
  const SourceLocation &loc() const { return Loc; }

  QualType type() const { return Ty; }
  void setType(QualType T) { Ty = T; }

  /// Strips ParenExpr (and nothing else).
  const Expr *ignoreParens() const;
  Expr *ignoreParens() {
    return const_cast<Expr *>(
        static_cast<const Expr *>(this)->ignoreParens());
  }

  virtual ~Expr() = default;

protected:
  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(std::move(Loc)) {}

private:
  const ExprKind Kind;
  SourceLocation Loc;
  QualType Ty;
};

class IntegerLiteralExpr : public Expr {
public:
  IntegerLiteralExpr(SourceLocation Loc, long Value)
      : Expr(ExprKind::IntegerLiteral, std::move(Loc)), Value(Value) {}

  long value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntegerLiteral;
  }

private:
  long Value;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLocation Loc, double Value)
      : Expr(ExprKind::FloatLiteral, std::move(Loc)), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLiteral;
  }

private:
  double Value;
};

class CharLiteralExpr : public Expr {
public:
  CharLiteralExpr(SourceLocation Loc, char Value)
      : Expr(ExprKind::CharLiteral, std::move(Loc)), Value(Value) {}

  char value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::CharLiteral;
  }

private:
  char Value;
};

class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLocation Loc, std::string Value)
      : Expr(ExprKind::StringLiteral, std::move(Loc)),
        Value(std::move(Value)) {}

  const std::string &value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLiteral;
  }

private:
  std::string Value;
};

/// A reference to a named declaration (variable, parameter, function, or
/// enumerator).
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(SourceLocation Loc, std::string Name, Decl *D)
      : Expr(ExprKind::DeclRef, std::move(Loc)), Name(std::move(Name)),
        Referenced(D) {}

  const std::string &name() const { return Name; }
  Decl *decl() const { return Referenced; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DeclRef;
  }

private:
  std::string Name;
  Decl *Referenced;
};

enum class UnaryOp {
  Deref,
  AddrOf,
  Plus,
  Minus,
  Not,
  BitNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOp Op, Expr *Sub)
      : Expr(ExprKind::Unary, std::move(Loc)), Op(Op), Sub(Sub) {}

  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

enum class BinaryOp {
  Mul, Div, Rem, Add, Sub, Shl, Shr,
  LT, GT, LE, GE, EQ, NE,
  And, Xor, Or, LAnd, LOr,
  Assign, MulAssign, DivAssign, RemAssign, AddAssign, SubAssign,
  ShlAssign, ShrAssign, AndAssign, XorAssign, OrAssign,
  Comma,
};

/// \returns true for '=', '+=', etc.
inline bool isAssignmentOp(BinaryOp Op) {
  return Op >= BinaryOp::Assign && Op <= BinaryOp::OrAssign;
}

/// \returns true for '==' and '!='.
inline bool isEqualityOp(BinaryOp Op) {
  return Op == BinaryOp::EQ || Op == BinaryOp::NE;
}

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(ExprKind::Binary, std::move(Loc)), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

class CallExpr : public Expr {
public:
  CallExpr(SourceLocation Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(ExprKind::Call, std::move(Loc)), Callee(Callee),
        Args(std::move(Args)) {}

  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  /// The called function's declaration if the callee is a direct reference.
  FunctionDecl *directCallee() const;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// a.f or a->f. The field declaration is resolved by sema when the record is
/// known.
class MemberExpr : public Expr {
public:
  MemberExpr(SourceLocation Loc, Expr *Base, std::string Member, bool Arrow)
      : Expr(ExprKind::Member, std::move(Loc)), Base(Base),
        Member(std::move(Member)), Arrow(Arrow) {}

  Expr *base() const { return Base; }
  const std::string &member() const { return Member; }
  bool isArrow() const { return Arrow; }

  FieldDecl *field() const { return Field; }
  void setField(FieldDecl *F) { Field = F; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Member; }

private:
  Expr *Base;
  std::string Member;
  bool Arrow;
  FieldDecl *Field = nullptr;
};

class ArraySubscriptExpr : public Expr {
public:
  ArraySubscriptExpr(SourceLocation Loc, Expr *Base, Expr *Index)
      : Expr(ExprKind::ArraySubscript, std::move(Loc)), Base(Base),
        Index(Index) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Index; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArraySubscript;
  }

private:
  Expr *Base;
  Expr *Index;
};

/// Explicit cast "(T) e".
class CastExpr : public Expr {
public:
  CastExpr(SourceLocation Loc, QualType CastTy, Expr *Sub)
      : Expr(ExprKind::Cast, std::move(Loc)), Sub(Sub) {
    setType(CastTy);
  }

  Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cast; }

private:
  Expr *Sub;
};

/// sizeof(T) or sizeof e. The paper notes sizeof is the one operator whose
/// operand is not an rvalue use.
class SizeofExpr : public Expr {
public:
  SizeofExpr(SourceLocation Loc, QualType ArgTy, Expr *ArgExpr)
      : Expr(ExprKind::Sizeof, std::move(Loc)), ArgTy(ArgTy),
        ArgExpr(ArgExpr) {}

  /// Non-null when written as sizeof(type-name).
  QualType argType() const { return ArgTy; }
  /// Non-null when written as sizeof expr.
  Expr *argExpr() const { return ArgExpr; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Sizeof; }

private:
  QualType ArgTy;
  Expr *ArgExpr;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLocation Loc, Expr *Cond, Expr *TrueExpr,
                  Expr *FalseExpr)
      : Expr(ExprKind::Conditional, std::move(Loc)), Cond(Cond),
        TrueE(TrueExpr), FalseE(FalseExpr) {}

  Expr *cond() const { return Cond; }
  Expr *trueExpr() const { return TrueE; }
  Expr *falseExpr() const { return FalseE; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *TrueE;
  Expr *FalseE;
};

class ParenExpr : public Expr {
public:
  ParenExpr(SourceLocation Loc, Expr *Sub)
      : Expr(ExprKind::Paren, std::move(Loc)), Sub(Sub) {}

  Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Paren; }

private:
  Expr *Sub;
};

/// "{ e, e, ... }" aggregate initializer.
class InitListExpr : public Expr {
public:
  InitListExpr(SourceLocation Loc, std::vector<Expr *> Inits)
      : Expr(ExprKind::InitList, std::move(Loc)), Inits(std::move(Inits)) {}

  const std::vector<Expr *> &inits() const { return Inits; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::InitList;
  }

private:
  std::vector<Expr *> Inits;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class StmtKind {
    Compound,
    Decl,
    Expr,
    If,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Null,
  };

  StmtKind kind() const { return Kind; }
  const SourceLocation &loc() const { return Loc; }

  virtual ~Stmt() = default;

protected:
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(std::move(Loc)) {}

private:
  const StmtKind Kind;
  SourceLocation Loc;
};

class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLocation Loc, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound, std::move(Loc)), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }

  /// Location of the closing brace; function-exit anomalies are reported
  /// here (the paper reports "at the exit point").
  const SourceLocation &endLoc() const { return EndLoc; }
  void setEndLoc(SourceLocation Loc) { EndLoc = std::move(Loc); }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Compound;
  }

private:
  std::vector<Stmt *> Body;
  SourceLocation EndLoc;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLocation Loc, std::vector<VarDecl *> Decls)
      : Stmt(StmtKind::Decl, std::move(Loc)), Decls(std::move(Decls)) {}

  const std::vector<VarDecl *> &decls() const { return Decls; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  std::vector<VarDecl *> Decls;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLocation Loc, Expr *E)
      : Stmt(StmtKind::Expr, std::move(Loc)), E(E) {}

  Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  Expr *E;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLocation Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, std::move(Loc)), Cond(Cond), Then(Then),
        Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLocation Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, std::move(Loc)), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoStmt : public Stmt {
public:
  DoStmt(SourceLocation Loc, Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::Do, std::move(Loc)), Body(Body), Cond(Cond) {}

  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Do; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLocation Loc, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(StmtKind::For, std::move(Loc)), Init(Init), Cond(Cond), Inc(Inc),
        Body(Body) {}

  /// Either a DeclStmt, an ExprStmt, or null.
  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *inc() const { return Inc; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, Expr *Value)
      : Stmt(StmtKind::Return, std::move(Loc)), Value(Value) {}

  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc)
      : Stmt(StmtKind::Break, std::move(Loc)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc)
      : Stmt(StmtKind::Continue, std::move(Loc)) {}

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

/// switch, represented as explicit case sections (labels flattened).
/// Fallthrough between sections is preserved.
class SwitchStmt : public Stmt {
public:
  struct CaseSection {
    bool IsDefault = false;
    std::vector<Expr *> Labels; ///< case label constant expressions
    std::vector<Stmt *> Body;
    SourceLocation Loc;
  };

  SwitchStmt(SourceLocation Loc, Expr *Cond,
             std::vector<CaseSection> Sections)
      : Stmt(StmtKind::Switch, std::move(Loc)), Cond(Cond),
        Sections(std::move(Sections)) {}

  Expr *cond() const { return Cond; }
  const std::vector<CaseSection> &sections() const { return Sections; }
  bool hasDefault() const {
    for (const CaseSection &S : Sections)
      if (S.IsDefault)
        return true;
    return false;
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Switch; }

private:
  Expr *Cond;
  std::vector<CaseSection> Sections;
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc)
      : Stmt(StmtKind::Null, std::move(Loc)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Null; }
};

//===----------------------------------------------------------------------===//
// ASTContext and TranslationUnit
//===----------------------------------------------------------------------===//

/// Owns all AST nodes and types; provides canonical builtin types and
/// uniqued derived types.
class ASTContext {
public:
  ASTContext();

  /// Allocates and owns a node of type T.
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Nodes.push_back(std::move(Owned));
    return Raw;
  }

  // Canonical builtins.
  QualType voidTy() const { return VoidTy; }
  QualType charTy() const { return CharTy; }
  QualType intTy() const { return IntTy; }
  QualType unsignedTy() const { return UnsignedTy; }
  QualType longTy() const { return LongTy; }
  QualType unsignedLongTy() const { return UnsignedLongTy; }
  QualType doubleTy() const { return DoubleTy; }
  QualType floatTy() const { return FloatTy; }
  QualType shortTy() const { return ShortTy; }

  QualType builtin(BuiltinType::Kind K);

  /// T* (uniqued on the pointee handle).
  QualType pointerTo(QualType Pointee);
  QualType arrayOf(QualType Element, std::optional<long> Size);
  QualType functionTy(QualType Result, std::vector<QualType> Params,
                      bool Variadic);
  QualType recordTy(RecordDecl *D);
  QualType enumTy(EnumDecl *D);
  QualType typedefTy(TypedefDecl *D);

  /// char* — the type of string literals.
  QualType stringTy() { return pointerTo(charTy()); }

private:
  std::vector<std::shared_ptr<void>> Nodes; // type-erased node ownership
  std::vector<std::unique_ptr<Type>> OwnedTypes;

  template <typename T, typename... Args> const T *createType(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    const T *Raw = Owned.get();
    OwnedTypes.push_back(std::move(Owned));
    return Raw;
  }

  QualType VoidTy, CharTy, IntTy, UnsignedTy, LongTy, UnsignedLongTy,
      DoubleTy, FloatTy, ShortTy;
  std::vector<std::pair<const Type *, const Type *>> PointerCache;
};

/// The parsed program: top-level declarations in source order.
class TranslationUnit {
public:
  explicit TranslationUnit(std::string MainFile)
      : MainFile(std::move(MainFile)) {}

  const std::string &mainFile() const { return MainFile; }

  const std::vector<Decl *> &decls() const { return Decls; }
  void addDecl(Decl *D) { Decls.push_back(D); }

  /// All function definitions in source order.
  std::vector<FunctionDecl *> definedFunctions() const;

  /// All global variables in source order (extern or defined).
  std::vector<VarDecl *> globals() const;

  /// Looks up a top-level function by name (latest declaration wins; a
  /// definition is preferred).
  FunctionDecl *findFunction(const std::string &Name) const;

private:
  std::string MainFile;
  std::vector<Decl *> Decls;
};

} // namespace memlint

#endif // MEMLINT_AST_AST_H
