//===--- ASTPrinter.cpp - Debug dumping of the AST --------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

using namespace memlint;

void ASTPrinter::line(unsigned Indent, const std::string &Text) {
  Out.append(Indent * 2, ' ');
  Out += Text;
  Out += '\n';
}

std::string ASTPrinter::print(const TranslationUnit &TU) {
  Out.clear();
  line(0, "TranslationUnit " + TU.mainFile());
  for (const Decl *D : TU.decls())
    printDecl(D, 1);
  return Out;
}

std::string ASTPrinter::print(const Decl *D) {
  Out.clear();
  printDecl(D, 0);
  return Out;
}

std::string ASTPrinter::print(const Stmt *S) {
  Out.clear();
  printStmt(S, 0);
  return Out;
}

std::string ASTPrinter::print(const Expr *E) {
  Out.clear();
  printExpr(E, 0);
  return Out;
}

static std::string annotSuffix(const Annotations &A) {
  std::string S = A.str();
  return S.empty() ? "" : " " + S;
}

void ASTPrinter::printDecl(const Decl *D, unsigned Indent) {
  switch (D->kind()) {
  case Decl::DeclKind::Var:
  case Decl::DeclKind::Parm: {
    const auto *VD = cast<VarDecl>(D);
    std::string Tag = isa<ParmVarDecl>(D) ? "ParmVarDecl" : "VarDecl";
    line(Indent, Tag + " " + VD->name() + " : " + VD->type().str() +
                     annotSuffix(VD->declAnnotations()));
    if (VD->init())
      printExpr(VD->init(), Indent + 1);
    return;
  }
  case Decl::DeclKind::Function: {
    const auto *FD = cast<FunctionDecl>(D);
    line(Indent, "FunctionDecl " + FD->name() + " : " +
                     FD->returnType().str() +
                     annotSuffix(FD->returnAnnotations()) +
                     (FD->isDefinition() ? "" : " (declaration)"));
    for (const ParmVarDecl *P : FD->params())
      printDecl(P, Indent + 1);
    if (FD->body())
      printStmt(FD->body(), Indent + 1);
    return;
  }
  case Decl::DeclKind::Typedef: {
    const auto *TD = cast<TypedefDecl>(D);
    line(Indent, "TypedefDecl " + TD->name() + " = " +
                     TD->underlying().str() + annotSuffix(TD->annotations()));
    return;
  }
  case Decl::DeclKind::Record: {
    const auto *RD = cast<RecordDecl>(D);
    line(Indent, std::string(RD->isUnion() ? "UnionDecl " : "StructDecl ") +
                     RD->name());
    for (const FieldDecl *F : RD->fields())
      printDecl(F, Indent + 1);
    return;
  }
  case Decl::DeclKind::Field: {
    const auto *F = cast<FieldDecl>(D);
    line(Indent, "FieldDecl " + F->name() + " : " + F->type().str() +
                     annotSuffix(F->declAnnotations()));
    return;
  }
  case Decl::DeclKind::Enum: {
    const auto *ED = cast<EnumDecl>(D);
    line(Indent, "EnumDecl " + ED->name());
    for (const EnumConstantDecl *C : ED->constants())
      printDecl(C, Indent + 1);
    return;
  }
  case Decl::DeclKind::EnumConstant: {
    const auto *EC = cast<EnumConstantDecl>(D);
    line(Indent,
         "EnumConstant " + EC->name() + " = " + std::to_string(EC->value()));
    return;
  }
  }
  // Unknown kinds (future extensions, corrupted nodes) print a placeholder
  // so a debug dump never aborts the process.
  line(Indent, "<unknown decl>");
}

static const char *unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Deref: return "*";
  case UnaryOp::AddrOf: return "&";
  case UnaryOp::Plus: return "+";
  case UnaryOp::Minus: return "-";
  case UnaryOp::Not: return "!";
  case UnaryOp::BitNot: return "~";
  case UnaryOp::PreInc: return "++pre";
  case UnaryOp::PreDec: return "--pre";
  case UnaryOp::PostInc: return "post++";
  case UnaryOp::PostDec: return "post--";
  }
  return "?";
}

static const char *binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Rem: return "%";
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Shl: return "<<";
  case BinaryOp::Shr: return ">>";
  case BinaryOp::LT: return "<";
  case BinaryOp::GT: return ">";
  case BinaryOp::LE: return "<=";
  case BinaryOp::GE: return ">=";
  case BinaryOp::EQ: return "==";
  case BinaryOp::NE: return "!=";
  case BinaryOp::And: return "&";
  case BinaryOp::Xor: return "^";
  case BinaryOp::Or: return "|";
  case BinaryOp::LAnd: return "&&";
  case BinaryOp::LOr: return "||";
  case BinaryOp::Assign: return "=";
  case BinaryOp::MulAssign: return "*=";
  case BinaryOp::DivAssign: return "/=";
  case BinaryOp::RemAssign: return "%=";
  case BinaryOp::AddAssign: return "+=";
  case BinaryOp::SubAssign: return "-=";
  case BinaryOp::ShlAssign: return "<<=";
  case BinaryOp::ShrAssign: return ">>=";
  case BinaryOp::AndAssign: return "&=";
  case BinaryOp::XorAssign: return "^=";
  case BinaryOp::OrAssign: return "|=";
  case BinaryOp::Comma: return ",";
  }
  return "?";
}

void ASTPrinter::printExpr(const Expr *E, unsigned Indent) {
  switch (E->kind()) {
  case Expr::ExprKind::IntegerLiteral:
    line(Indent, "IntegerLiteral " +
                     std::to_string(cast<IntegerLiteralExpr>(E)->value()));
    return;
  case Expr::ExprKind::FloatLiteral:
    line(Indent, "FloatLiteral " +
                     std::to_string(cast<FloatLiteralExpr>(E)->value()));
    return;
  case Expr::ExprKind::CharLiteral:
    line(Indent, std::string("CharLiteral '") +
                     cast<CharLiteralExpr>(E)->value() + "'");
    return;
  case Expr::ExprKind::StringLiteral:
    line(Indent, "StringLiteral \"" + cast<StringLiteralExpr>(E)->value() +
                     "\"");
    return;
  case Expr::ExprKind::DeclRef:
    line(Indent, "DeclRef " + cast<DeclRefExpr>(E)->name());
    return;
  case Expr::ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    line(Indent, std::string("Unary ") + unaryOpName(UE->op()));
    printExpr(UE->sub(), Indent + 1);
    return;
  }
  case Expr::ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    line(Indent, std::string("Binary ") + binaryOpName(BE->op()));
    printExpr(BE->lhs(), Indent + 1);
    printExpr(BE->rhs(), Indent + 1);
    return;
  }
  case Expr::ExprKind::Call: {
    const auto *CE = cast<CallExpr>(E);
    line(Indent, "Call");
    printExpr(CE->callee(), Indent + 1);
    for (const Expr *A : CE->args())
      printExpr(A, Indent + 1);
    return;
  }
  case Expr::ExprKind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    line(Indent, std::string("Member ") + (ME->isArrow() ? "->" : ".") +
                     ME->member());
    printExpr(ME->base(), Indent + 1);
    return;
  }
  case Expr::ExprKind::ArraySubscript: {
    const auto *AE = cast<ArraySubscriptExpr>(E);
    line(Indent, "ArraySubscript");
    printExpr(AE->base(), Indent + 1);
    printExpr(AE->index(), Indent + 1);
    return;
  }
  case Expr::ExprKind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    line(Indent, "Cast (" + CE->type().str() + ")");
    printExpr(CE->sub(), Indent + 1);
    return;
  }
  case Expr::ExprKind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    if (SE->argExpr()) {
      line(Indent, "Sizeof expr");
      printExpr(SE->argExpr(), Indent + 1);
    } else {
      line(Indent, "Sizeof (" + SE->argType().str() + ")");
    }
    return;
  }
  case Expr::ExprKind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    line(Indent, "Conditional");
    printExpr(CE->cond(), Indent + 1);
    printExpr(CE->trueExpr(), Indent + 1);
    printExpr(CE->falseExpr(), Indent + 1);
    return;
  }
  case Expr::ExprKind::Paren:
    printExpr(cast<ParenExpr>(E)->sub(), Indent);
    return;
  case Expr::ExprKind::InitList: {
    const auto *IE = cast<InitListExpr>(E);
    line(Indent, "InitList");
    for (const Expr *I : IE->inits())
      printExpr(I, Indent + 1);
    return;
  }
  }
  line(Indent, "<unknown expr>");
}

void ASTPrinter::printStmt(const Stmt *S, unsigned Indent) {
  switch (S->kind()) {
  case Stmt::StmtKind::Compound: {
    line(Indent, "Compound");
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      printStmt(Sub, Indent + 1);
    return;
  }
  case Stmt::StmtKind::Decl: {
    line(Indent, "DeclStmt");
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls())
      printDecl(VD, Indent + 1);
    return;
  }
  case Stmt::StmtKind::Expr:
    line(Indent, "ExprStmt");
    printExpr(cast<ExprStmt>(S)->expr(), Indent + 1);
    return;
  case Stmt::StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    line(Indent, "If");
    printExpr(IS->cond(), Indent + 1);
    printStmt(IS->thenStmt(), Indent + 1);
    if (IS->elseStmt())
      printStmt(IS->elseStmt(), Indent + 1);
    return;
  }
  case Stmt::StmtKind::While: {
    const auto *WS = cast<WhileStmt>(S);
    line(Indent, "While");
    printExpr(WS->cond(), Indent + 1);
    printStmt(WS->body(), Indent + 1);
    return;
  }
  case Stmt::StmtKind::Do: {
    const auto *DS = cast<DoStmt>(S);
    line(Indent, "Do");
    printStmt(DS->body(), Indent + 1);
    printExpr(DS->cond(), Indent + 1);
    return;
  }
  case Stmt::StmtKind::For: {
    const auto *FS = cast<ForStmt>(S);
    line(Indent, "For");
    if (FS->init())
      printStmt(FS->init(), Indent + 1);
    if (FS->cond())
      printExpr(FS->cond(), Indent + 1);
    if (FS->inc())
      printExpr(FS->inc(), Indent + 1);
    printStmt(FS->body(), Indent + 1);
    return;
  }
  case Stmt::StmtKind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    line(Indent, "Return");
    if (RS->value())
      printExpr(RS->value(), Indent + 1);
    return;
  }
  case Stmt::StmtKind::Break:
    line(Indent, "Break");
    return;
  case Stmt::StmtKind::Continue:
    line(Indent, "Continue");
    return;
  case Stmt::StmtKind::Switch: {
    const auto *SS = cast<SwitchStmt>(S);
    line(Indent, "Switch");
    printExpr(SS->cond(), Indent + 1);
    for (const SwitchStmt::CaseSection &Section : SS->sections()) {
      line(Indent + 1, Section.IsDefault ? "Default" : "Case");
      for (const Expr *L : Section.Labels)
        printExpr(L, Indent + 2);
      for (const Stmt *Sub : Section.Body)
        printStmt(Sub, Indent + 2);
    }
    return;
  }
  case Stmt::StmtKind::Null:
    line(Indent, "NullStmt");
    return;
  }
  line(Indent, "<unknown stmt>");
}

//===----------------------------------------------------------------------===//
// Compact C-syntax expression rendering
//===----------------------------------------------------------------------===//

namespace {

// Depth-capped worker for exprToString. The parser admits expressions
// nested up to limitnesting levels, which is deeper than this recursive
// renderer's stack budget; past the cap the rest collapses to "...".
constexpr unsigned MaxRenderDepth = 100;

std::string exprToStringImpl(const Expr *E, unsigned Depth) {
  if (!E)
    return "";
  if (Depth > MaxRenderDepth)
    return "...";
  switch (E->kind()) {
  case Expr::ExprKind::IntegerLiteral:
    return std::to_string(cast<IntegerLiteralExpr>(E)->value());
  case Expr::ExprKind::FloatLiteral:
    return std::to_string(cast<FloatLiteralExpr>(E)->value());
  case Expr::ExprKind::CharLiteral:
    return std::string("'") + cast<CharLiteralExpr>(E)->value() + "'";
  case Expr::ExprKind::StringLiteral:
    return "\"" + cast<StringLiteralExpr>(E)->value() + "\"";
  case Expr::ExprKind::DeclRef:
    return cast<DeclRefExpr>(E)->name();
  case Expr::ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    std::string Sub = exprToStringImpl(UE->sub(), Depth + 1);
    switch (UE->op()) {
    case UnaryOp::Deref: return "*" + Sub;
    case UnaryOp::AddrOf: return "&" + Sub;
    case UnaryOp::Plus: return "+" + Sub;
    case UnaryOp::Minus: return "-" + Sub;
    case UnaryOp::Not: return "!" + Sub;
    case UnaryOp::BitNot: return "~" + Sub;
    case UnaryOp::PreInc: return "++" + Sub;
    case UnaryOp::PreDec: return "--" + Sub;
    case UnaryOp::PostInc: return Sub + "++";
    case UnaryOp::PostDec: return Sub + "--";
    }
    return Sub;
  }
  case Expr::ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    return exprToStringImpl(BE->lhs(), Depth + 1) + " " + binaryOpName(BE->op()) + " " +
           exprToStringImpl(BE->rhs(), Depth + 1);
  }
  case Expr::ExprKind::Call: {
    const auto *CE = cast<CallExpr>(E);
    std::string Out = exprToStringImpl(CE->callee(), Depth + 1) + "(";
    for (size_t I = 0; I < CE->args().size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprToStringImpl(CE->args()[I], Depth + 1);
    }
    return Out + ")";
  }
  case Expr::ExprKind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    return exprToStringImpl(ME->base(), Depth + 1) + (ME->isArrow() ? "->" : ".") +
           ME->member();
  }
  case Expr::ExprKind::ArraySubscript: {
    const auto *AE = cast<ArraySubscriptExpr>(E);
    return exprToStringImpl(AE->base(), Depth + 1) + "[" + exprToStringImpl(AE->index(), Depth + 1) + "]";
  }
  case Expr::ExprKind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    return "(" + CE->type().str() + ") " + exprToStringImpl(CE->sub(), Depth + 1);
  }
  case Expr::ExprKind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    if (SE->argExpr())
      return "sizeof (" + exprToStringImpl(SE->argExpr(), Depth + 1) + ")";
    return "sizeof (" + SE->argType().str() + ")";
  }
  case Expr::ExprKind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    return exprToStringImpl(CE->cond(), Depth + 1) + " ? " + exprToStringImpl(CE->trueExpr(), Depth + 1) +
           " : " + exprToStringImpl(CE->falseExpr(), Depth + 1);
  }
  case Expr::ExprKind::Paren:
    return "(" + exprToStringImpl(cast<ParenExpr>(E)->sub(), Depth + 1) + ")";
  case Expr::ExprKind::InitList: {
    const auto *IE = cast<InitListExpr>(E);
    std::string Out = "{";
    for (size_t I = 0; I < IE->inits().size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprToStringImpl(IE->inits()[I], Depth + 1);
    }
    return Out + "}";
  }
  }
  return "<expr>";
}

} // namespace

std::string memlint::exprToString(const Expr *E) {
  return exprToStringImpl(E, 0);
}
