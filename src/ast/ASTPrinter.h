//===--- ASTPrinter.h - Debug dumping of the AST ----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_AST_ASTPRINTER_H
#define MEMLINT_AST_ASTPRINTER_H

#include "ast/AST.h"

#include <string>

namespace memlint {

/// Renders a compact, indentation-structured dump of the AST; used by tests
/// to assert parse shapes and by the quickstart example.
class ASTPrinter {
public:
  std::string print(const TranslationUnit &TU);
  std::string print(const Decl *D);
  std::string print(const Stmt *S);
  std::string print(const Expr *E);

private:
  void printDecl(const Decl *D, unsigned Indent);
  void printStmt(const Stmt *S, unsigned Indent);
  void printExpr(const Expr *E, unsigned Indent);
  void line(unsigned Indent, const std::string &Text);

  std::string Out;
};

/// Renders an expression in compact C syntax ("l->next->this = e"). Used in
/// diagnostic messages and CFG labels.
std::string exprToString(const Expr *E);

} // namespace memlint

#endif // MEMLINT_AST_ASTPRINTER_H
