//===--- Annotations.cpp - The paper's interface annotations ---------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/Annotations.h"

using namespace memlint;

namespace {

const char *nullWord(NullAnn V) {
  switch (V) {
  case NullAnn::Unspecified: return "";
  case NullAnn::Null: return "null";
  case NullAnn::NotNull: return "notnull";
  case NullAnn::RelNull: return "relnull";
  }
  return "";
}

const char *defWord(DefAnn V) {
  switch (V) {
  case DefAnn::Unspecified: return "";
  case DefAnn::Out: return "out";
  case DefAnn::In: return "in";
  case DefAnn::Partial: return "partial";
  case DefAnn::RelDef: return "reldef";
  }
  return "";
}

const char *allocWord(AllocAnn V) {
  switch (V) {
  case AllocAnn::Unspecified: return "";
  case AllocAnn::Only: return "only";
  case AllocAnn::Keep: return "keep";
  case AllocAnn::Temp: return "temp";
  case AllocAnn::Owned: return "owned";
  case AllocAnn::Dependent: return "dependent";
  case AllocAnn::Shared: return "shared";
  }
  return "";
}

const char *exposureWord(ExposureAnn V) {
  switch (V) {
  case ExposureAnn::Unspecified: return "";
  case ExposureAnn::Observer: return "observer";
  case ExposureAnn::Exposed: return "exposed";
  }
  return "";
}

} // namespace

bool Annotations::addWord(const std::string &Word, std::string *Existing) {
  auto reject = [&](const char *Occupant) {
    if (Existing)
      *Existing = Occupant;
    return false;
  };
  auto setNull = [&](NullAnn V) {
    if (Null != NullAnn::Unspecified && Null != V)
      return reject(nullWord(Null));
    Null = V;
    return true;
  };
  auto setDef = [&](DefAnn V) {
    if (Def != DefAnn::Unspecified && Def != V)
      return reject(defWord(Def));
    Def = V;
    return true;
  };
  auto setAlloc = [&](AllocAnn V) {
    if (Alloc != AllocAnn::Unspecified && Alloc != V)
      return reject(allocWord(Alloc));
    Alloc = V;
    return true;
  };
  auto setExposure = [&](ExposureAnn V) {
    if (Exposure != ExposureAnn::Unspecified && Exposure != V)
      return reject(exposureWord(Exposure));
    Exposure = V;
    return true;
  };

  if (Word == "null")
    return setNull(NullAnn::Null);
  if (Word == "notnull")
    return setNull(NullAnn::NotNull);
  if (Word == "relnull")
    return setNull(NullAnn::RelNull);
  if (Word == "out")
    return setDef(DefAnn::Out);
  if (Word == "in")
    return setDef(DefAnn::In);
  if (Word == "partial")
    return setDef(DefAnn::Partial);
  if (Word == "reldef")
    return setDef(DefAnn::RelDef);
  if (Word == "only")
    return setAlloc(AllocAnn::Only);
  if (Word == "keep")
    return setAlloc(AllocAnn::Keep);
  if (Word == "temp")
    return setAlloc(AllocAnn::Temp);
  if (Word == "owned")
    return setAlloc(AllocAnn::Owned);
  if (Word == "dependent")
    return setAlloc(AllocAnn::Dependent);
  if (Word == "shared")
    return setAlloc(AllocAnn::Shared);
  if (Word == "observer")
    return setExposure(ExposureAnn::Observer);
  if (Word == "exposed")
    return setExposure(ExposureAnn::Exposed);
  if (Word == "unique") {
    Unique = true;
    return true;
  }
  if (Word == "returned") {
    Returned = true;
    return true;
  }
  if (Word == "truenull") {
    if (FalseNull)
      return reject("falsenull");
    TrueNull = true;
    return true;
  }
  if (Word == "falsenull") {
    if (TrueNull)
      return reject("truenull");
    FalseNull = true;
    return true;
  }
  if (Word == "undef") {
    Undef = true;
    return true;
  }
  if (Word == "killed") {
    Killed = true;
    return true;
  }
  if (Word == "sef") {
    Sef = true;
    return true;
  }
  if (Word == "unused") {
    Unused = true;
    return true;
  }
  if (Word == "exits") {
    Exits = true;
    return true;
  }
  if (Word == "refcounted") {
    RefCounted = true;
    return true;
  }
  if (Word == "newref") {
    if (KillRef || TempRef)
      return reject(KillRef ? "killref" : "tempref");
    NewRef = true;
    return true;
  }
  if (Word == "killref") {
    if (NewRef || TempRef)
      return reject(NewRef ? "newref" : "tempref");
    KillRef = true;
    return true;
  }
  if (Word == "tempref") {
    if (NewRef || KillRef)
      return reject(NewRef ? "newref" : "killref");
    TempRef = true;
    return true;
  }
  if (Word == "refs") {
    Refs = true;
    return true;
  }
  return false; // unknown word; lexer normally filters these out
}

std::vector<std::pair<std::string, std::string>>
Annotations::conflictsBetween(const Annotations &A, const Annotations &B) {
  std::vector<std::pair<std::string, std::string>> Out;
  if (A.Null != NullAnn::Unspecified && B.Null != NullAnn::Unspecified &&
      A.Null != B.Null)
    Out.emplace_back(nullWord(A.Null), nullWord(B.Null));
  if (A.Def != DefAnn::Unspecified && B.Def != DefAnn::Unspecified &&
      A.Def != B.Def)
    Out.emplace_back(defWord(A.Def), defWord(B.Def));
  if (A.Alloc != AllocAnn::Unspecified && B.Alloc != AllocAnn::Unspecified &&
      A.Alloc != B.Alloc)
    Out.emplace_back(allocWord(A.Alloc), allocWord(B.Alloc));
  if (A.Exposure != ExposureAnn::Unspecified &&
      B.Exposure != ExposureAnn::Unspecified && A.Exposure != B.Exposure)
    Out.emplace_back(exposureWord(A.Exposure), exposureWord(B.Exposure));
  // The mutually exclusive booleans: a conflict needs one side to set one
  // word and the other side the incompatible one.
  if ((A.TrueNull && B.FalseNull))
    Out.emplace_back("truenull", "falsenull");
  if ((A.FalseNull && B.TrueNull))
    Out.emplace_back("falsenull", "truenull");
  auto refWord = [](const Annotations &X) -> const char * {
    if (X.NewRef) return "newref";
    if (X.KillRef) return "killref";
    if (X.TempRef) return "tempref";
    return "";
  };
  const char *RA = refWord(A), *RB = refWord(B);
  if (RA[0] != '\0' && RB[0] != '\0' && std::string(RA) != RB)
    Out.emplace_back(RA, RB);
  return Out;
}

Annotations Annotations::overrideWith(const Annotations &FromType,
                                      const Annotations &FromDecl) {
  Annotations Out = FromType;
  if (FromDecl.Null != NullAnn::Unspecified)
    Out.Null = FromDecl.Null;
  if (FromDecl.Def != DefAnn::Unspecified)
    Out.Def = FromDecl.Def;
  if (FromDecl.Alloc != AllocAnn::Unspecified)
    Out.Alloc = FromDecl.Alloc;
  if (FromDecl.Exposure != ExposureAnn::Unspecified)
    Out.Exposure = FromDecl.Exposure;
  Out.Unique |= FromDecl.Unique;
  Out.Returned |= FromDecl.Returned;
  Out.TrueNull |= FromDecl.TrueNull;
  Out.FalseNull |= FromDecl.FalseNull;
  Out.Undef |= FromDecl.Undef;
  Out.Killed |= FromDecl.Killed;
  Out.Sef |= FromDecl.Sef;
  Out.Unused |= FromDecl.Unused;
  Out.Exits |= FromDecl.Exits;
  Out.RefCounted |= FromDecl.RefCounted;
  Out.NewRef |= FromDecl.NewRef;
  Out.KillRef |= FromDecl.KillRef;
  Out.TempRef |= FromDecl.TempRef;
  Out.Refs |= FromDecl.Refs;
  return Out;
}

std::string Annotations::str() const {
  std::string Out;
  auto add = [&](const char *Word) {
    if (!Out.empty())
      Out += ' ';
    Out += "/*@";
    Out += Word;
    Out += "@*/";
  };
  switch (Null) {
  case NullAnn::Unspecified: break;
  case NullAnn::Null: add("null"); break;
  case NullAnn::NotNull: add("notnull"); break;
  case NullAnn::RelNull: add("relnull"); break;
  }
  switch (Def) {
  case DefAnn::Unspecified: break;
  case DefAnn::Out: add("out"); break;
  case DefAnn::In: add("in"); break;
  case DefAnn::Partial: add("partial"); break;
  case DefAnn::RelDef: add("reldef"); break;
  }
  switch (Alloc) {
  case AllocAnn::Unspecified: break;
  case AllocAnn::Only: add("only"); break;
  case AllocAnn::Keep: add("keep"); break;
  case AllocAnn::Temp: add("temp"); break;
  case AllocAnn::Owned: add("owned"); break;
  case AllocAnn::Dependent: add("dependent"); break;
  case AllocAnn::Shared: add("shared"); break;
  }
  switch (Exposure) {
  case ExposureAnn::Unspecified: break;
  case ExposureAnn::Observer: add("observer"); break;
  case ExposureAnn::Exposed: add("exposed"); break;
  }
  if (Unique) add("unique");
  if (Returned) add("returned");
  if (TrueNull) add("truenull");
  if (FalseNull) add("falsenull");
  if (Undef) add("undef");
  if (Killed) add("killed");
  if (Sef) add("sef");
  if (Unused) add("unused");
  if (Exits) add("exits");
  if (RefCounted) add("refcounted");
  if (NewRef) add("newref");
  if (KillRef) add("killref");
  if (TempRef) add("tempref");
  if (Refs) add("refs");
  return Out;
}
