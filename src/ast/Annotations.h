//===--- Annotations.h - The paper's interface annotations ------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-management annotations of Appendix B of the paper, grouped by
/// category. "At most one annotation in any category can be used on a given
/// declaration"; incompatible combinations are static errors.
///
/// Categories:
///   Null pointers:      null, notnull, relnull
///   Definition:         out, in, partial, reldef
///   Allocation:         only, keep, temp, owned, dependent, shared
///   Parameter aliasing: unique
///   Returned refs:      returned
///   Exposure:           observer, exposed
///   Function results:   truenull, falsenull (null-test functions)
///   Globals lists:      undef (may be undefined at call)
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_AST_ANNOTATIONS_H
#define MEMLINT_AST_ANNOTATIONS_H

#include <string>
#include <utility>
#include <vector>

namespace memlint {

/// Null-pointer category (paper Appendix B "Null Pointers").
enum class NullAnn {
  Unspecified, ///< No annotation: interpreted as notnull (paper §6) unless a
               ///< typedef supplies one.
  Null,        ///< May have the value NULL.
  NotNull,     ///< Never NULL; overrides a typedef's null.
  RelNull,     ///< Relaxed: assumed non-null when used, may be assigned NULL.
};

/// Definition category (paper Appendix B "Definition").
enum class DefAnn {
  Unspecified, ///< Completely defined (the "in" default).
  Out,         ///< Allocated but not necessarily defined.
  In,          ///< Completely defined (explicit).
  Partial,     ///< May have undefined fields; no errors on use.
  RelDef,      ///< Relaxed: assumed defined on use, need not be defined.
};

/// Allocation category (paper Appendix B "Allocation").
enum class AllocAnn {
  Unspecified, ///< Policy-dependent default (temp for params, none else).
  Only,        ///< Unshared; confers the obligation to release.
  Keep,        ///< Like only, but caller may still use it after the call.
  Temp,        ///< Callee may not release or create new external aliases.
  Owned,       ///< Has the release obligation; dependents may share.
  Dependent,   ///< Shares owned storage; may not release it.
  Shared,      ///< Arbitrarily shared; never released (GC use).
};

/// Exposure category (paper Appendix B "Exposure").
enum class ExposureAnn {
  Unspecified,
  Observer, ///< Returned storage must not be modified or released by caller.
  Exposed,  ///< Exposed internal storage; may be modified, not released.
};

/// The complete annotation set attachable to one declaration (variable,
/// parameter, return value, field, or typedef).
struct Annotations {
  NullAnn Null = NullAnn::Unspecified;
  DefAnn Def = DefAnn::Unspecified;
  AllocAnn Alloc = AllocAnn::Unspecified;
  ExposureAnn Exposure = ExposureAnn::Unspecified;
  bool Unique = false;    ///< Parameter shares no storage with others.
  bool Returned = false;  ///< Result may alias this parameter.
  bool TrueNull = false;  ///< Function returns true iff argument is null.
  bool FalseNull = false; ///< Function returns false iff argument is null.
  bool Undef = false;     ///< Global may be undefined when function called.
  bool Killed = false;    ///< (accepted, treated as only for free-like params)
  bool Sef = false;       ///< Side-effect free (accepted; used by interp).
  bool Unused = false;    ///< Declared may-be-unused (accepted, no checking).
  bool Exits = false;     ///< Function never returns (exit/abort).
  // Reference counting (the paper's §4 pointer to [3]; LCLint 2.0):
  bool RefCounted = false; ///< Storage managed by a reference count.
  bool NewRef = false;     ///< Result carries a new reference (must be
                           ///< released with a killref).
  bool KillRef = false;    ///< Parameter releases one reference.
  bool TempRef = false;    ///< Parameter uses but does not retain a ref.
  bool Refs = false;       ///< Field holding the reference count.

  /// True if no annotation at all was written.
  bool empty() const {
    return Null == NullAnn::Unspecified && Def == DefAnn::Unspecified &&
           Alloc == AllocAnn::Unspecified &&
           Exposure == ExposureAnn::Unspecified && !Unique && !Returned &&
           !TrueNull && !FalseNull && !Undef && !Killed && !Sef && !Unused &&
           !Exits && !RefCounted && !NewRef && !KillRef && !TempRef && !Refs;
  }

  /// Applies one annotation word ("null", "only", ...).
  /// \returns false if the word conflicts with an already-set annotation in
  /// the same category (the caller reports the error). When it does, and
  /// \p Existing is non-null, *Existing receives the word already occupying
  /// the category (e.g. "only" when "temp" is rejected) so the diagnostic
  /// can name both words and the winner.
  bool addWord(const std::string &Word, std::string *Existing = nullptr);

  /// Per-category disagreements between two annotation sets: each pair is
  /// (word in \p A, word in \p B) where both specify the category but
  /// differ (null vs notnull, only vs temp, truenull vs falsenull, ...).
  /// Used to diagnose declaration/definition annotation mismatches.
  static std::vector<std::pair<std::string, std::string>>
  conflictsBetween(const Annotations &A, const Annotations &B);

  /// Combines typedef-supplied annotations with declaration-level ones;
  /// declaration annotations win within each category (paper: notnull "may
  /// be necessary ... to override null in a type definition").
  static Annotations overrideWith(const Annotations &FromType,
                                  const Annotations &FromDecl);

  /// Renders like "/*@null@*/ /*@only@*/" for printing; empty string if none.
  std::string str() const;

  friend bool operator==(const Annotations &A, const Annotations &B) {
    return A.Null == B.Null && A.Def == B.Def && A.Alloc == B.Alloc &&
           A.Exposure == B.Exposure && A.Unique == B.Unique &&
           A.Returned == B.Returned && A.TrueNull == B.TrueNull &&
           A.FalseNull == B.FalseNull && A.Undef == B.Undef &&
           A.Killed == B.Killed && A.Sef == B.Sef && A.Unused == B.Unused &&
           A.Exits == B.Exits && A.RefCounted == B.RefCounted &&
           A.NewRef == B.NewRef && A.KillRef == B.KillRef &&
           A.TempRef == B.TempRef && A.Refs == B.Refs;
  }
};

} // namespace memlint

#endif // MEMLINT_AST_ANNOTATIONS_H
