//===--- Type.cpp - C types for the checked subset --------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

#include "ast/AST.h"

using namespace memlint;

QualType TypedefType::underlying() const { return TD->underlying(); }

const Type *Type::canonical() const {
  const Type *T = this;
  while (const auto *TT = dyn_cast<TypedefType>(T)) {
    QualType U = TT->underlying();
    if (U.isNull())
      break;
    T = U.type();
  }
  return T;
}

QualType QualType::canonical() const {
  if (!Ty)
    return *this;
  return QualType(Ty->canonical(), Const, Volatile);
}

bool QualType::isPointer() const {
  return Ty && isa<PointerType>(Ty->canonical());
}

bool QualType::isArray() const {
  return Ty && isa<ArrayType>(Ty->canonical());
}

bool QualType::isRecord() const {
  return Ty && isa<RecordType>(Ty->canonical());
}

bool QualType::isFunction() const {
  return Ty && isa<FunctionType>(Ty->canonical());
}

bool QualType::isVoid() const {
  if (!Ty)
    return false;
  const auto *BT = dyn_cast<BuiltinType>(Ty->canonical());
  return BT && BT->isVoid();
}

bool QualType::isArithmetic() const {
  if (!Ty)
    return false;
  const Type *C = Ty->canonical();
  if (const auto *BT = dyn_cast<BuiltinType>(C))
    return !BT->isVoid();
  return isa<EnumType>(C);
}

bool QualType::isInteger() const {
  if (!Ty)
    return false;
  const Type *C = Ty->canonical();
  if (const auto *BT = dyn_cast<BuiltinType>(C))
    return BT->isInteger();
  return isa<EnumType>(C);
}

QualType QualType::pointee() const {
  const Type *C = Ty->canonical();
  if (const auto *PT = dyn_cast<PointerType>(C))
    return PT->pointee();
  if (const auto *AT = dyn_cast<ArrayType>(C))
    return AT->element();
  // Callers probing error-recovery types reach here; a null QualType is the
  // established "unknown type" value throughout the checker.
  return QualType();
}

std::string Type::str() const {
  switch (kind()) {
  case TypeKind::Builtin: {
    switch (cast<BuiltinType>(this)->builtinKind()) {
    case BuiltinType::Kind::Void: return "void";
    case BuiltinType::Kind::Char: return "char";
    case BuiltinType::Kind::SignedChar: return "signed char";
    case BuiltinType::Kind::UnsignedChar: return "unsigned char";
    case BuiltinType::Kind::Short: return "short";
    case BuiltinType::Kind::UnsignedShort: return "unsigned short";
    case BuiltinType::Kind::Int: return "int";
    case BuiltinType::Kind::UnsignedInt: return "unsigned int";
    case BuiltinType::Kind::Long: return "long";
    case BuiltinType::Kind::UnsignedLong: return "unsigned long";
    case BuiltinType::Kind::Float: return "float";
    case BuiltinType::Kind::Double: return "double";
    case BuiltinType::Kind::LongDouble: return "long double";
    }
    return "<builtin>";
  }
  case TypeKind::Pointer:
    return cast<PointerType>(this)->pointee().str() + " *";
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    std::string Out = AT->element().str() + " [";
    if (AT->size())
      Out += std::to_string(*AT->size());
    return Out + "]";
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string Out = FT->result().str() + " (";
    for (size_t I = 0; I < FT->params().size(); ++I) {
      if (I)
        Out += ", ";
      Out += FT->params()[I].str();
    }
    if (FT->isVariadic())
      Out += FT->params().empty() ? "..." : ", ...";
    return Out + ")";
  }
  case TypeKind::Record: {
    const RecordDecl *RD = cast<RecordType>(this)->decl();
    std::string Tag = RD->isUnion() ? "union" : "struct";
    return Tag + " " + (RD->name().empty() ? "<anonymous>" : RD->name());
  }
  case TypeKind::Enum:
    return "enum " + cast<EnumType>(this)->decl()->name();
  case TypeKind::Typedef:
    return cast<TypedefType>(this)->decl()->name();
  }
  return "<type>";
}

std::string QualType::str() const {
  if (!Ty)
    return "<null type>";
  std::string Out;
  if (Const)
    Out += "const ";
  if (Volatile)
    Out += "volatile ";
  return Out + Ty->str();
}

Annotations memlint::typeAnnotations(QualType Ty) {
  // Walk from the innermost typedef outward so outer typedefs override.
  std::vector<const TypedefDecl *> Chain;
  const Type *T = Ty.type();
  while (const auto *TT = dyn_cast_or_null<TypedefType>(T)) {
    Chain.push_back(TT->decl());
    QualType U = TT->decl()->underlying();
    T = U.type();
  }
  Annotations Result;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
    Result = Annotations::overrideWith(Result, (*It)->annotations());
  return Result;
}
