//===--- Type.h - C types for the checked subset ----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system: builtins, pointers, arrays, functions, records, enums
/// and typedef sugar. Typedefs matter to the analysis because the paper lets
/// a type definition carry annotations that constrain every instance of the
/// type (e.g. `typedef /*@null@*/ struct _list *list;`).
///
/// Types are immutable and owned by the ASTContext; QualType is the cheap
/// value handle (type pointer + const/volatile bits).
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_AST_TYPE_H
#define MEMLINT_AST_TYPE_H

#include "ast/Annotations.h"
#include "support/Casting.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

class Type;
class RecordDecl;
class EnumDecl;
class TypedefDecl;

/// A type with const/volatile qualifiers. Passed by value everywhere.
class QualType {
public:
  QualType() = default;
  explicit QualType(const Type *Ty, bool Const = false, bool Volatile = false)
      : Ty(Ty), Const(Const), Volatile(Volatile) {}

  bool isNull() const { return Ty == nullptr; }
  const Type *type() const { return Ty; }
  bool isConst() const { return Const; }
  bool isVolatile() const { return Volatile; }

  QualType withConst() const { return QualType(Ty, true, Volatile); }

  /// The type with typedef sugar stripped (qualifiers preserved).
  QualType canonical() const;

  // Convenience classification (looks through typedefs).
  bool isPointer() const;
  bool isArray() const;
  bool isRecord() const;
  bool isFunction() const;
  bool isVoid() const;
  bool isArithmetic() const;
  bool isInteger() const;

  /// Pointee of a pointer type (or element of an array, which decays).
  /// Asserts isPointer() or isArray().
  QualType pointee() const;

  /// Renders a readable form ("char *", "struct _list *").
  std::string str() const;

  friend bool operator==(QualType A, QualType B) {
    return A.Ty == B.Ty && A.Const == B.Const && A.Volatile == B.Volatile;
  }
  friend bool operator!=(QualType A, QualType B) { return !(A == B); }

private:
  const Type *Ty = nullptr;
  bool Const = false;
  bool Volatile = false;
};

/// Base of the type hierarchy.
class Type {
public:
  enum class TypeKind {
    Builtin,
    Pointer,
    Array,
    Function,
    Record,
    Enum,
    Typedef,
  };

  TypeKind kind() const { return Kind; }
  virtual ~Type() = default;

  /// Strips typedef sugar.
  const Type *canonical() const;

  std::string str() const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

private:
  const TypeKind Kind;
};

/// Builtin scalar types.
class BuiltinType : public Type {
public:
  enum class Kind {
    Void,
    Char,
    SignedChar,
    UnsignedChar,
    Short,
    UnsignedShort,
    Int,
    UnsignedInt,
    Long,
    UnsignedLong,
    Float,
    Double,
    LongDouble,
  };

  explicit BuiltinType(Kind K) : Type(TypeKind::Builtin), K(K) {}

  Kind builtinKind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isFloating() const {
    return K == Kind::Float || K == Kind::Double || K == Kind::LongDouble;
  }
  bool isInteger() const { return !isVoid() && !isFloating(); }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Builtin;
  }

private:
  Kind K;
};

/// T*
class PointerType : public Type {
public:
  explicit PointerType(QualType Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}

  QualType pointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Pointer;
  }

private:
  QualType Pointee;
};

/// T[N] / T[]
class ArrayType : public Type {
public:
  ArrayType(QualType Element, std::optional<long> Size)
      : Type(TypeKind::Array), Element(Element), Size(Size) {}

  QualType element() const { return Element; }
  std::optional<long> size() const { return Size; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Array; }

private:
  QualType Element;
  std::optional<long> Size;
};

/// Function type: result + parameter types. Parameter names and annotations
/// live on the FunctionDecl; the type is structural.
class FunctionType : public Type {
public:
  FunctionType(QualType Result, std::vector<QualType> Params, bool Variadic)
      : Type(TypeKind::Function), Result(Result), Params(std::move(Params)),
        Variadic(Variadic) {}

  QualType result() const { return Result; }
  const std::vector<QualType> &params() const { return Params; }
  bool isVariadic() const { return Variadic; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Function;
  }

private:
  QualType Result;
  std::vector<QualType> Params;
  bool Variadic;
};

/// struct/union type, referring to its declaration.
class RecordType : public Type {
public:
  explicit RecordType(RecordDecl *Decl) : Type(TypeKind::Record), Rec(Decl) {}

  RecordDecl *decl() const { return Rec; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Record; }

private:
  RecordDecl *Rec;
};

/// enum type.
class EnumType : public Type {
public:
  explicit EnumType(EnumDecl *Decl) : Type(TypeKind::Enum), ED(Decl) {}

  EnumDecl *decl() const { return ED; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Enum; }

private:
  EnumDecl *ED;
};

/// Typedef sugar; carries the declaration so annotation lookups can walk the
/// typedef chain.
class TypedefType : public Type {
public:
  explicit TypedefType(TypedefDecl *Decl) : Type(TypeKind::Typedef), TD(Decl) {}

  TypedefDecl *decl() const { return TD; }
  /// The type being named (may itself be sugared).
  QualType underlying() const;

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Typedef;
  }

private:
  TypedefDecl *TD;
};

/// Collects the annotations supplied by the typedef chain of \p Ty (innermost
/// first, outer typedefs overriding inner ones).
Annotations typeAnnotations(QualType Ty);

} // namespace memlint

#endif // MEMLINT_AST_TYPE_H
