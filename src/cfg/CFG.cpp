//===--- CFG.cpp - Control-flow graph under the paper's model --------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include "ast/ASTPrinter.h"

#include <cassert>
#include <functional>
#include <set>

using namespace memlint;

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

class CFG::Builder {
public:
  explicit Builder(CFG &G) : G(G) {}

  void run(const FunctionDecl *FD) {
    G.FD = FD;
    G.Entry = newBlock("Function Entrance");
    G.Exit = newBlock("Function Exit");
    unsigned Last = buildStmt(FD->body(), G.Entry);
    if (Last != Dead)
      addEdge(Last, G.Exit);
  }

private:
  /// Sentinel for "control cannot reach here" (after return/break).
  static constexpr unsigned Dead = ~0u;

  unsigned newBlock(std::string Label, SourceLocation Loc = {}) {
    CFGBlock B;
    B.Id = static_cast<unsigned>(G.Blocks.size());
    B.Label = std::move(Label);
    B.Loc = std::move(Loc);
    G.Blocks.push_back(std::move(B));
    return G.Blocks.back().Id;
  }

  void addEdge(unsigned From, unsigned To) {
    if (From == Dead)
      return;
    G.Blocks[From].Succs.push_back(To);
  }

  void appendStmt(unsigned Block, const Stmt *S, std::string Text) {
    if (Block == Dead)
      return;
    G.Blocks[Block].Stmts.push_back(S);
    G.Blocks[Block].StmtText.push_back(std::move(Text));
  }

  static std::string lineLabel(const SourceLocation &Loc,
                               const std::string &Text) {
    if (!Loc.isValid())
      return Text;
    return std::to_string(Loc.line()) + ": " + Text;
  }

  /// Appends statement \p S starting in block \p Cur; returns the block in
  /// which control continues (or Dead).
  unsigned buildStmt(const Stmt *S, unsigned Cur) {
    if (!S || Cur == Dead)
      return Cur;
    switch (S->kind()) {
    case Stmt::StmtKind::Compound: {
      for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
        Cur = buildStmt(Sub, Cur);
      return Cur;
    }
    case Stmt::StmtKind::Null:
      return Cur;
    case Stmt::StmtKind::Decl: {
      const auto *DS = cast<DeclStmt>(S);
      std::string Names;
      for (const VarDecl *VD : DS->decls()) {
        if (!Names.empty())
          Names += ", ";
        Names += VD->name();
      }
      appendStmt(Cur, S, lineLabel(S->loc(), "decl " + Names));
      return Cur;
    }
    case Stmt::StmtKind::Expr: {
      const auto *ES = cast<ExprStmt>(S);
      appendStmt(Cur, S, lineLabel(S->loc(), exprToString(ES->expr())));
      return Cur;
    }
    case Stmt::StmtKind::Return: {
      const auto *RS = cast<ReturnStmt>(S);
      appendStmt(Cur, S,
                 lineLabel(S->loc(),
                           RS->value()
                               ? "return " + exprToString(RS->value())
                               : std::string("return")));
      addEdge(Cur, G.Exit);
      return Dead;
    }
    case Stmt::StmtKind::Break: {
      appendStmt(Cur, S, lineLabel(S->loc(), "break"));
      assert(!BreakTargets.empty() && "break outside loop/switch");
      if (!BreakTargets.empty())
        addEdge(Cur, BreakTargets.back());
      return Dead;
    }
    case Stmt::StmtKind::Continue: {
      appendStmt(Cur, S, lineLabel(S->loc(), "continue"));
      // No back edges under the paper's model: continue flows to the loop's
      // merge point, like finishing the single modeled iteration.
      assert(!ContinueTargets.empty() && "continue outside loop");
      if (!ContinueTargets.empty())
        addEdge(Cur, ContinueTargets.back());
      return Dead;
    }
    case Stmt::StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      unsigned CondBlock = newBlock(
          lineLabel(S->loc(), "if (" + exprToString(IS->cond()) + ")"),
          S->loc());
      addEdge(Cur, CondBlock);
      unsigned ThenStart = newBlock("then", IS->thenStmt()->loc());
      addEdge(CondBlock, ThenStart);
      unsigned ThenEnd = buildStmt(IS->thenStmt(), ThenStart);
      unsigned Merge = newBlock("merge");
      if (IS->elseStmt()) {
        unsigned ElseStart = newBlock("else", IS->elseStmt()->loc());
        addEdge(CondBlock, ElseStart);
        unsigned ElseEnd = buildStmt(IS->elseStmt(), ElseStart);
        addEdge(ElseEnd, Merge);
      } else {
        addEdge(CondBlock, Merge); // false branch
      }
      addEdge(ThenEnd, Merge);
      return Merge;
    }
    case Stmt::StmtKind::While: {
      const auto *WS = cast<WhileStmt>(S);
      unsigned CondBlock = newBlock(
          lineLabel(S->loc(), "while (" + exprToString(WS->cond()) + ")"),
          S->loc());
      addEdge(Cur, CondBlock);
      unsigned Merge = newBlock("merge");
      unsigned BodyStart = newBlock("loop body", WS->body()->loc());
      addEdge(CondBlock, BodyStart); // execute once
      addEdge(CondBlock, Merge);     // execute zero times
      BreakTargets.push_back(Merge);
      ContinueTargets.push_back(Merge);
      unsigned BodyEnd = buildStmt(WS->body(), BodyStart);
      ContinueTargets.pop_back();
      BreakTargets.pop_back();
      addEdge(BodyEnd, Merge); // no back edge
      return Merge;
    }
    case Stmt::StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      // do-while executes the body at least once; the paper's model runs it
      // exactly once and then evaluates the condition.
      unsigned BodyStart = newBlock("do body", DS->body()->loc());
      addEdge(Cur, BodyStart);
      unsigned Merge = newBlock("merge");
      BreakTargets.push_back(Merge);
      ContinueTargets.push_back(Merge);
      unsigned BodyEnd = buildStmt(DS->body(), BodyStart);
      ContinueTargets.pop_back();
      BreakTargets.pop_back();
      if (BodyEnd != Dead) {
        appendStmt(BodyEnd, S,
                   lineLabel(S->loc(),
                             "while (" + exprToString(DS->cond()) + ")"));
        addEdge(BodyEnd, Merge);
      }
      return Merge;
    }
    case Stmt::StmtKind::For: {
      const auto *FS = cast<ForStmt>(S);
      Cur = buildStmt(FS->init(), Cur);
      unsigned CondBlock = newBlock(
          lineLabel(S->loc(),
                    "for (" +
                        (FS->cond() ? exprToString(FS->cond()) : "") + ")"),
          S->loc());
      addEdge(Cur, CondBlock);
      unsigned Merge = newBlock("merge");
      unsigned BodyStart = newBlock("loop body", FS->body()->loc());
      addEdge(CondBlock, BodyStart);
      addEdge(CondBlock, Merge);
      BreakTargets.push_back(Merge);
      ContinueTargets.push_back(Merge);
      unsigned BodyEnd = buildStmt(FS->body(), BodyStart);
      ContinueTargets.pop_back();
      BreakTargets.pop_back();
      if (BodyEnd != Dead && FS->inc())
        appendStmt(BodyEnd, S, lineLabel(S->loc(), exprToString(FS->inc())));
      addEdge(BodyEnd, Merge);
      return Merge;
    }
    case Stmt::StmtKind::Switch: {
      const auto *SS = cast<SwitchStmt>(S);
      unsigned CondBlock = newBlock(
          lineLabel(S->loc(), "switch (" + exprToString(SS->cond()) + ")"),
          S->loc());
      addEdge(Cur, CondBlock);
      unsigned Merge = newBlock("merge");
      BreakTargets.push_back(Merge);
      unsigned PrevEnd = Dead; // fallthrough from previous section
      bool HasDefault = false;
      for (const SwitchStmt::CaseSection &Section : SS->sections()) {
        if (Section.IsDefault)
          HasDefault = true;
        unsigned SectionStart = newBlock(
            Section.IsDefault ? "default" : "case", Section.Loc);
        addEdge(CondBlock, SectionStart);
        if (PrevEnd != Dead)
          addEdge(PrevEnd, SectionStart); // fallthrough
        unsigned SectionCur = SectionStart;
        for (const Stmt *Sub : Section.Body)
          SectionCur = buildStmt(Sub, SectionCur);
        PrevEnd = SectionCur;
      }
      BreakTargets.pop_back();
      if (PrevEnd != Dead)
        addEdge(PrevEnd, Merge);
      if (!HasDefault)
        addEdge(CondBlock, Merge); // no matching case
      return Merge;
    }
    }
    assert(false && "unknown statement kind");
    return Cur;
  }

  CFG &G;
  std::vector<unsigned> BreakTargets;
  std::vector<unsigned> ContinueTargets;
};

std::unique_ptr<CFG> CFG::build(const FunctionDecl *FD) {
  if (!FD || !FD->body())
    return nullptr;
  auto G = std::unique_ptr<CFG>(new CFG());
  Builder(*G).run(FD);
  return G;
}

//===----------------------------------------------------------------------===//
// Queries and printing
//===----------------------------------------------------------------------===//

bool CFG::isAcyclic() const {
  // DFS three-color cycle check.
  enum class Color { White, Grey, Black };
  std::vector<Color> Colors(Blocks.size(), Color::White);
  std::function<bool(unsigned)> Visit = [&](unsigned Id) {
    Colors[Id] = Color::Grey;
    for (unsigned Succ : Blocks[Id].Succs) {
      if (Colors[Succ] == Color::Grey)
        return false;
      if (Colors[Succ] == Color::White && !Visit(Succ))
        return false;
    }
    Colors[Id] = Color::Black;
    return true;
  };
  for (unsigned I = 0; I < Blocks.size(); ++I)
    if (Colors[I] == Color::White && !Visit(I))
      return false;
  return true;
}

std::vector<unsigned> CFG::topologicalOrder() const {
  std::vector<unsigned> Order;
  std::vector<bool> Visited(Blocks.size(), false);
  std::function<void(unsigned)> Visit = [&](unsigned Id) {
    Visited[Id] = true;
    for (unsigned Succ : Blocks[Id].Succs)
      if (!Visited[Succ])
        Visit(Succ);
    Order.push_back(Id);
  };
  Visit(Entry);
  for (unsigned I = 0; I < Blocks.size(); ++I)
    if (!Visited[I])
      Visit(I);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::string CFG::print() const {
  std::string Out;
  Out += "CFG for " + (FD ? FD->name() : std::string("<null>")) + "\n";
  for (unsigned Id : topologicalOrder()) {
    const CFGBlock &B = Blocks[Id];
    Out += "  (" + std::to_string(Id) + ") " + B.Label + "\n";
    for (const std::string &Text : B.StmtText)
      Out += "        " + Text + "\n";
    Out += "        ->";
    if (B.Succs.empty())
      Out += " (none)";
    for (unsigned Succ : B.Succs)
      Out += " (" + std::to_string(Succ) + ")";
    Out += "\n";
  }
  return Out;
}

std::string CFG::printDot() const {
  std::string Out = "digraph cfg {\n";
  for (const CFGBlock &B : Blocks) {
    std::string Label = B.Label;
    for (const std::string &Text : B.StmtText)
      Label += "\\n" + Text;
    // Escape double quotes.
    std::string Escaped;
    for (char C : Label) {
      if (C == '"')
        Escaped += "\\\"";
      else
        Escaped += C;
    }
    Out += "  n" + std::to_string(B.Id) + " [label=\"" + Escaped + "\"];\n";
  }
  for (const CFGBlock &B : Blocks)
    for (unsigned Succ : B.Succs)
      Out += "  n" + std::to_string(B.Id) + " -> n" + std::to_string(Succ) +
             ";\n";
  return Out + "}\n";
}
