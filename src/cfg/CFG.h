//===--- CFG.h - Control-flow graph under the paper's model -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs built under the paper's simplifying model: "the
/// effects of any while or for loop are identical to those for executing the
/// loop zero or one times", so loops have no back edge and every CFG is
/// acyclic. Figure 6 of the paper shows such a graph for list_addh; the
/// printer here reproduces that figure's structure (numbered execution
/// points, branch and merge edges, loop bodies flowing to the merge point).
///
/// The checker's analysis walks the structured AST directly (equivalent on
/// this acyclic model); the CFG is used for visualization, tests of the
/// control model, and downstream tooling.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_CFG_CFG_H
#define MEMLINT_CFG_CFG_H

#include "ast/AST.h"

#include <memory>
#include <string>
#include <vector>

namespace memlint {

/// A basic block: a label (for entry/exit/branch points), the statements or
/// expressions evaluated in it, and successor edges.
struct CFGBlock {
  unsigned Id = 0;
  std::string Label;                 ///< e.g. "14: if (l != NULL)"
  std::vector<const Stmt *> Stmts;   ///< statements evaluated in this block
  std::vector<std::string> StmtText; ///< rendered per-statement text
  std::vector<unsigned> Succs;
  SourceLocation Loc;
};

/// An acyclic per-function control-flow graph.
class CFG {
public:
  /// Builds the CFG of a function definition. Returns null if \p FD has no
  /// body.
  static std::unique_ptr<CFG> build(const FunctionDecl *FD);

  const std::vector<CFGBlock> &blocks() const { return Blocks; }
  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }
  const FunctionDecl *function() const { return FD; }

  /// True if the graph contains no cycles (always holds under the paper's
  /// model; verified by tests).
  bool isAcyclic() const;

  /// Blocks in a topological order from entry.
  std::vector<unsigned> topologicalOrder() const;

  /// Renders the graph in a Figure 6 style: numbered execution points with
  /// edge lists.
  std::string print() const;

  /// Renders Graphviz dot.
  std::string printDot() const;

private:
  class Builder;

  std::vector<CFGBlock> Blocks;
  unsigned Entry = 0;
  unsigned Exit = 0;
  const FunctionDecl *FD = nullptr;
};

} // namespace memlint

#endif // MEMLINT_CFG_CFG_H
