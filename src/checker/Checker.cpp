//===--- Checker.cpp - Public checking facade -------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include "analysis/AnnotationInfer.h"
#include "analysis/FunctionChecker.h"
#include "analysis/LibrarySpec.h"
#include "lcl/LclReader.h"
#include "ast/AST.h"
#include "parse/Parser.h"
#include "pp/Preprocessor.h"
#include "sema/Sema.h"
#include "support/Journal.h"
#include "support/MonotonicTime.h"

#include <algorithm>
#include <exception>
#include <map>
#include <set>

using namespace memlint;

std::string memlint::checkOptionsFingerprint(const CheckOptions &Options) {
  // frontendCacheVersion() ties journals and persisted service caches to
  // the front-end cache generation: a semantic change to memoization bumps
  // the version, and stale warm results are refused instead of replayed.
  // The FrontendCache/Frontend fields themselves stay out of the
  // fingerprint — cache on/off never changes diagnostics.
  // Inference changes diagnostics (and adds the inferred header to the
  // result), so inferred and plain runs must never share cache entries;
  // the inference version also invalidates caches across rule changes.
  return fnv1aHex({Options.Flags.fingerprint(),
                   Options.IncludePrelude ? "prelude" : "no-prelude",
                   librarySpecVersion(), frontendCacheVersion(),
                   Options.Infer ? AnnotationInfer::version() : "no-infer"});
}

const char *memlint::checkStatusName(CheckStatus S) {
  switch (S) {
  case CheckStatus::Ok:
    return "ok";
  case CheckStatus::Degraded:
    return "degraded";
  case CheckStatus::InternalError:
    return "internal-error";
  }
  return "unknown";
}

unsigned CheckResult::count(CheckId Id) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diagnostics)
    if (D.Id == Id)
      ++N;
  return N;
}

unsigned CheckResult::anomalyCount() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diagnostics)
    if (D.Sev == Severity::Anomaly)
      ++N;
  return N;
}

bool CheckResult::contains(const std::string &Needle) const {
  for (const Diagnostic &D : Diagnostics)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

std::string CheckResult::render() const {
  std::string Out;
  for (const Diagnostic &D : Diagnostics) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

namespace {

/// Degradation reasons are collected in hit order from several sources
/// (budget charges, flood control, cancellation, internal errors); golden
/// output and result comparisons must not depend on that order, so every
/// reason list a CheckResult carries is deduplicated and sorted.
void normalizeReasons(std::vector<std::string> &Reasons) {
  std::sort(Reasons.begin(), Reasons.end());
  Reasons.erase(std::unique(Reasons.begin(), Reasons.end()), Reasons.end());
}

/// Per-file, line-ordered suppression state computed from control comments.
class SuppressionMap {
public:
  SuppressionMap(const std::vector<ControlDirective> &Directives,
                 const FlagSet &Flags)
      : Flags(Flags) {
    for (const ControlDirective &D : Directives)
      PerFile[D.Loc.file()].push_back({D.Loc.line(), D.Text});
    for (auto &KV : PerFile)
      std::stable_sort(KV.second.begin(), KV.second.end(),
                       [](const auto &A, const auto &B) {
                         return A.first < B.first;
                       });
  }

  /// \returns true if the diagnostic should be kept.
  bool keep(const Diagnostic &Diag) const {
    if (Diag.Sev == Severity::Error)
      return true; // parse errors are never suppressed
    const char *FlagName = checkIdFlagName(Diag.Id);
    if (!Flags.get(FlagName))
      return false;

    auto It = PerFile.find(Diag.Loc.file());
    if (It == PerFile.end())
      return true;

    bool Ignoring = false;
    std::map<std::string, bool> Local;
    for (const auto &[Line, Text] : It->second) {
      if (Line > Diag.Loc.line())
        break;
      if (Text == "ignore" || Text == "i") {
        Ignoring = true;
      } else if (Text == "end") {
        Ignoring = false;
      } else if (!Text.empty() && Text[0] == '-') {
        Local[Text.substr(1)] = false;
      } else if (!Text.empty() && Text[0] == '+') {
        Local[Text.substr(1)] = true;
      } else if (!Text.empty() && Text[0] == '=') {
        Local.erase(Text.substr(1));
      }
    }
    if (Ignoring)
      return false;
    auto LIt = Local.find(FlagName);
    if (LIt != Local.end())
      return LIt->second;
    return true;
  }

private:
  const FlagSet &Flags;
  std::map<std::string, std::vector<std::pair<unsigned, std::string>>>
      PerFile;
};

CheckResult runCheck(const VFS &Files, const std::vector<std::string> &Names,
                     const CheckOptions &Options) {
  const ResourceBudget &Limits = Options.Flags.limits();
  BudgetState Budget(Limits);
  Budget.setCancelToken(Options.Cancel);
  Budget.setFaultInjector(Options.Faults);
  DiagnosticEngine Diags;
  Diags.setFloodControl(Limits.MaxDiagsPerClass, Limits.MaxDiagsTotal);
  // One registry per run: batch workers each run their own check, so no
  // synchronization is needed. Null when disabled — every instrumentation
  // point is then a single pointer test.
  MetricsRegistry Registry;
  MetricsRegistry *Metrics = Options.CollectMetrics ? &Registry : nullptr;
  // Token spellings live in this arena for the duration of the run (the
  // AST copies the strings it keeps). With a published shared context the
  // arena resolves spellings against the batch interner lock-free and only
  // interns misses privately; declared before the preprocessor so macro
  // bodies and memo entries never outlive their storage.
  TokenArena Arena;
  if (Options.Frontend) {
    if (Options.Frontend->published())
      Arena.SharedRead = &Options.Frontend->Interner;
    else
      Arena.SharedBuild = &Options.Frontend->Interner;
  }
  Preprocessor PP(Files, Diags, &Budget);
  PP.setMetrics(Metrics);
  PP.setTokenArena(&Arena);
  PP.setFrontend(Options.Frontend);
  PP.setMemoEnabled(Options.FrontendCache);
  PP.setTraceRecorder(Options.Trace);

  // Converts an exception escaping one pipeline stage into a diagnostic so
  // the rest of the run can proceed with partial results.
  auto containError = [&](const std::string &Name, const char *Stage,
                          const std::exception *E) {
    Budget.noteInternalError();
    Diags.report(CheckId::ParseError, SourceLocation(Name, 1, 1),
                 "internal error while " + std::string(Stage) + " '" + Name +
                     "': " + (E ? E->what() : "unknown exception") +
                     "; results are incomplete",
                 Severity::Error);
  };

  const std::string MainName = Names.empty() ? "program" : Names.front();
  ASTContext Ctx;
  std::string InferredHeader;
  // Owns the suppression state for the Diags filter; lives until results
  // are collected, even when cancellation aborts the pipeline early.
  std::optional<SuppressionMap> Suppression;

  // The pipeline proper. A raised CancelToken surfaces here as
  // CancelledError (thrown from a budget checkpoint, passing through the
  // std::exception containment catches by design): checking stops wherever
  // it was, every diagnostic produced so far is kept, and the run reports
  // Degraded with the cancellation reason.
  try {
    // Prelude first, then every user file, concatenated into one program.
    // Each file is preprocessed in isolation: an internal error in one file
    // skips that file only, so multi-file runs still report on the rest.
    std::vector<Token> Program;
    auto appendTokens = [&Program](std::vector<Token> Toks) {
      if (!Toks.empty() && Toks.back().isEof())
        Toks.pop_back();
      Program.insert(Program.end(), Toks.begin(), Toks.end());
    };
    if (Options.IncludePrelude) {
      try {
        appendTokens(
            PP.processSource(libraryPreludeName(), libraryPreludeSource()));
      } catch (const std::exception &E) {
        containError(libraryPreludeName(), "preprocessing", &E);
      }
    }
    for (const std::string &Name : Names) {
      try {
        // LCL specification files are translated to annotated C
        // declarations first (the paper's other annotation vehicle).
        if (Name.size() > 4 &&
            Name.compare(Name.size() - 4, 4, ".lcl") == 0) {
          std::optional<std::string> Spec = Files.read(Name);
          if (!Spec) {
            Diags.report(CheckId::ParseError, SourceLocation(Name, 1, 1),
                         "cannot open file '" + Name + "'", Severity::Error);
            continue;
          }
          appendTokens(
              PP.processSource(Name, translateLclToC(*Spec, Name, Diags)));
          continue;
        }
        appendTokens(PP.process(Name));
      } catch (const std::exception &E) {
        containError(Name, "preprocessing", &E);
      }
    }
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    if (!Program.empty())
      Eof.Loc = Program.back().Loc;
    Program.push_back(Eof);

    // Suppression from control comments + global flags.
    Suppression.emplace(PP.controlDirectives(), Options.Flags);
    Diags.setFilter(
        [&Suppression](const Diagnostic &D) { return Suppression->keep(D); });

    TranslationUnit *TU = nullptr;
    try {
      ScopedTimer T(Metrics, "phase.parse");
      ScopedTraceSpan Span(Options.Trace, "check", "phase.parse");
      Parser P(std::move(Program), Ctx, Diags, &Budget);
      TU = P.parse(MainName);
    } catch (const std::exception &E) {
      containError(MainName, "parsing", &E);
    }

    if (TU) {
      try {
        ScopedTimer T(Metrics, "phase.sema");
        ScopedTraceSpan Span(Options.Trace, "check", "phase.sema");
        Sema S(Diags);
        S.check(*TU);
      } catch (const std::exception &E) {
        containError(MainName, "validating annotations in", &E);
      }

      if (Options.Infer) {
        try {
          ScopedTimer T(Metrics, "phase.infer");
          ScopedTraceSpan Span(Options.Trace, "check", "phase.infer");
          AnnotationInfer Infer(*TU, Options.Flags, &Budget);
          Infer.setMetrics(Metrics);
          InferStats Stats = Infer.run();
          InferredHeader = Infer.renderHeader();
          if (Metrics) {
            Metrics->addCounter("infer.functions", Stats.Functions);
            Metrics->addCounter("infer.sccs", Stats.SCCs);
            Metrics->addCounter("infer.scc.max", Stats.MaxSCCSize);
            Metrics->addCounter("infer.iterations", Stats.Iterations);
            Metrics->addCounter("infer.annotations", Stats.AnnotationsAdded);
            Metrics->addCounter("infer.rejected", Stats.Rejected);
            Metrics->addCounter("infer.errors", Stats.Errors);
          }
        } catch (const std::exception &E) {
          containError(MainName, "inferring annotations in", &E);
        }
      }

      // checkAll contains per-function internal errors itself; this catch
      // is the last resort for errors escaping the loop machinery.
      try {
        ScopedTimer T(Metrics, "phase.check");
        ScopedTraceSpan Span(Options.Trace, "check", "phase.check");
        FunctionChecker FC(*TU, Options.Flags, Diags, &Budget);
        FC.setMetrics(Metrics);
        FC.setTraceRecorder(Options.Trace);
        if (!Options.TraceFunction.empty())
          FC.setTrace(Options.TraceFunction, Options.TraceSink);
        FC.checkAll();
      } catch (const std::exception &E) {
        containError(MainName, "checking", &E);
      }
    }
  } catch (const CancelledError &E) {
    const std::string Reason = E.Reason.empty() ? "cancelled" : E.Reason;
    Budget.noteDegradation(Reason);
    Diags.report(CheckId::ParseError, SourceLocation(MainName, 1, 1),
                 "check run cancelled (" + Reason + "); results are partial",
                 Severity::Note);
  }

  // Deduplicate identical anomalies (several return points can re-detect
  // the same interface violation).
  CheckResult Result;
  std::set<std::string> Seen;
  for (const Diagnostic &D : Diags.diagnostics()) {
    std::string Key = std::to_string(static_cast<int>(D.Id)) + "|" +
                      D.Loc.str() + "|" + D.Message;
    if (!Seen.insert(Key).second)
      continue;
    Result.Diagnostics.push_back(D);
  }
  Result.SuppressedCount = Diags.suppressedCount();
  Result.InferredHeader = std::move(InferredHeader);

  // Flood control: one summary line per capped class, in CheckId order
  // (overflowCounts is an ordered map, so this is deterministic).
  for (const auto &[Id, Dropped] : Diags.overflowCounts()) {
    Diagnostic Summary;
    Summary.Id = Id;
    Summary.Sev = Severity::Note;
    Summary.Loc = SourceLocation(MainName, 1, 1);
    Summary.Message = "further " + std::to_string(Dropped) +
                      " messages of check class '" +
                      checkIdFlagName(Id) + "' suppressed (limitclassdiags=" +
                      std::to_string(Limits.MaxDiagsPerClass) +
                      ", limitdiags=" + std::to_string(Limits.MaxDiagsTotal) +
                      ")";
    Result.Diagnostics.push_back(std::move(Summary));
  }
  if (!Diags.overflowCounts().empty())
    Budget.noteDegradation(limitExhausted(Diags.cappedStoredCount(),
                                          Limits.MaxDiagsTotal)
                               ? "limitdiags"
                               : "limitclassdiags");

  Result.DegradationReasons = Budget.degradationReasons();
  if (Budget.internalError()) {
    Result.Status = CheckStatus::InternalError;
    Result.DegradationReasons.push_back("internal-error");
  } else if (Budget.degraded()) {
    Result.Status = CheckStatus::Degraded;
  }
  normalizeReasons(Result.DegradationReasons);

  if (Metrics) {
    Metrics->addCounter("budget.tokens", Budget.tokensUsed());
    Metrics->addCounter("lex.intern.hit", Arena.SharedHits);
    Metrics->addCounter("lex.intern.miss", Arena.PrivateInterned);
    Metrics->addCounter("diags.stored", Result.Diagnostics.size());
    Metrics->addCounter("diags.suppressed", Result.SuppressedCount);
    unsigned long long Overflow = 0;
    for (const auto &[Id, Dropped] : Diags.overflowCounts())
      Overflow += Dropped;
    Metrics->addCounter("diags.overflow", Overflow);
    Result.Metrics = Registry.takeSnapshot();
  }
  return Result;
}

} // namespace

MetricsSnapshot memlint::warmFrontendContext(FrontendContext &Ctx,
                                             const VFS &Files,
                                             const std::string &Name,
                                             const CheckOptions &Options) {
  MetricsRegistry Registry;
  MetricsRegistry *Metrics = Options.CollectMetrics ? &Registry : nullptr;
  // A private budget copy: warmup charges tokens exactly like a worker run
  // would, so the shared cache only ever contains entries a within-budget
  // run could have produced, but no worker's budget is consumed here.
  // Cancellation and fault injection stay detached — faulted runs never
  // replay from the cache anyway (see Preprocessor::canReplay).
  BudgetState Budget(Options.Flags.limits());
  DiagnosticEngine Scratch;
  Scratch.setFloodControl(Options.Flags.limits().MaxDiagsPerClass,
                          Options.Flags.limits().MaxDiagsTotal);
  TokenArena Arena;
  Arena.SharedBuild = &Ctx.Interner;
  Preprocessor PP(Files, Scratch, &Budget);
  PP.setMetrics(Metrics);
  PP.setTokenArena(&Arena);
  PP.setFrontend(&Ctx);
  try {
    if (Options.IncludePrelude)
      PP.processSource(libraryPreludeName(), libraryPreludeSource());
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".lcl") == 0) {
      std::optional<std::string> Spec = Files.read(Name);
      if (Spec)
        PP.processSource(Name, translateLclToC(*Spec, Name, Scratch));
    } else if (!Name.empty()) {
      PP.process(Name);
    }
  } catch (...) {
    // Best-effort: a contained crash or cancellation mid-warmup leaves a
    // partial cache and workers simply take more live paths.
  }
  if (Metrics) {
    // The warmup interns straight into the shared pool (build role), so
    // every distinct spelling is a "miss" seeding the batch; hits begin
    // with the workers.
    Metrics->addCounter("lex.intern.hit", Arena.SharedHits);
    Metrics->addCounter("lex.intern.miss",
                        Arena.PrivateInterned + Ctx.Interner.size());
    return Registry.takeSnapshot();
  }
  return MetricsSnapshot();
}

CheckResult Checker::checkSource(const std::string &Source,
                                 const CheckOptions &Options,
                                 const std::string &Name) {
  VFS Files;
  Files.add(Name, Source);
  return checkFiles(Files, {Name}, Options);
}

CheckResult Checker::checkFiles(const VFS &Files,
                                const std::vector<std::string> &Names,
                                const CheckOptions &Options) {
  const double StartMs = monotonicNowMs();
  // Last-resort containment: the facade never lets an exception escape to
  // the caller. Anything reaching this point is converted into an
  // internal-error result.
  try {
    CheckResult Result = runCheck(Files, Names, Options);
    Result.WallMs = monotonicNowMs() - StartMs;
    return Result;
  } catch (const std::exception &E) {
    CheckResult Result;
    Result.Status = CheckStatus::InternalError;
    Result.DegradationReasons.push_back("internal-error");
    Diagnostic D;
    D.Id = CheckId::ParseError;
    D.Sev = Severity::Error;
    D.Loc = SourceLocation(Names.empty() ? "program" : Names.front(), 1, 1);
    D.Message = std::string("internal error: ") + E.what() +
                "; check run aborted";
    Result.Diagnostics.push_back(std::move(D));
    Result.WallMs = monotonicNowMs() - StartMs;
    return Result;
  } catch (...) {
    CheckResult Result;
    Result.Status = CheckStatus::InternalError;
    Result.DegradationReasons.push_back("internal-error");
    Diagnostic D;
    D.Id = CheckId::ParseError;
    D.Sev = Severity::Error;
    D.Loc = SourceLocation(Names.empty() ? "program" : Names.front(), 1, 1);
    D.Message = "internal error: unknown exception; check run aborted";
    Result.Diagnostics.push_back(std::move(D));
    Result.WallMs = monotonicNowMs() - StartMs;
    return Result;
  }
}
