//===--- Checker.h - Public checking facade ---------------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. A check run preprocesses the annotated
/// standard-library prelude plus the program sources (multi-file programs
/// are checked as one unit, like LCLint invoked on all sources), parses,
/// validates annotations, and runs the paper's analysis on every function
/// definition. Control comments collected during preprocessing drive local
/// message suppression, mirroring the paper's "spurious messages can be
/// suppressed locally by placing stylized comments around the code".
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_CHECKER_CHECKER_H
#define MEMLINT_CHECKER_CHECKER_H

#include "support/Cancel.h"
#include "support/Diagnostics.h"
#include "support/Flags.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/VFS.h"

#include <functional>
#include <string>
#include <vector>

namespace memlint {

struct FrontendContext;

/// Options controlling a check run.
struct CheckOptions {
  FlagSet Flags;
  /// Parse the annotated standard library ahead of user code.
  bool IncludePrelude = true;
  /// Front-end reuse (DESIGN.md §5c): memoize #include expansions and
  /// whole-file preprocessing within this run (and read from/record into
  /// \c Frontend when attached). Cached and uncached runs produce
  /// byte-identical diagnostics; this is purely a speed toggle, so it is
  /// deliberately not a FlagSet flag and does not contribute to
  /// checkOptionsFingerprint.
  bool FrontendCache = true;
  /// Batch-shared front end built by the driver's warmup pass (expansion
  /// memo, spelling interner, read cache; see pp/FrontendCache.h). Must
  /// outlive the run. Null runs fully self-contained.
  FrontendContext *Frontend = nullptr;
  /// Cooperative cancellation: when set, the run polls this token at every
  /// budget checkpoint and, once it is raised, stops with a Degraded
  /// result whose degradation reasons include the token's cancellation
  /// reason ("deadline", "cancelled", ...). Diagnostics produced before
  /// the cut-off are kept. Null means not cancellable (no overhead).
  CancelToken *Cancel = nullptr;
  /// Deterministic fault injection (see support/FaultInjector.h): when set,
  /// the run's budget checkpoints feed this injector and its armed fault
  /// fires mid-pipeline. Used by the fuzzing harness to prove containment;
  /// null (the default) adds one pointer test per checkpoint.
  FaultInjector *Faults = nullptr;
  /// Collect phase timings ("phase.lex" ... "phase.check") and counters
  /// into CheckResult::Metrics. Off by default: the disabled path performs
  /// no clock reads and no counter updates (see support/Metrics.h).
  bool CollectMetrics = false;
  /// Structured span timeline (see support/Trace.h): when set, the run
  /// records phase spans, per-function check spans, and front-end cache
  /// decision instants into this recorder. Null (the default) is fully
  /// inert — one pointer test per site, no clock reads. Run-scoped
  /// plumbing like CollectMetrics: deliberately not part of
  /// checkOptionsFingerprint.
  TraceRecorder *Trace = nullptr;
  /// When non-empty, the analysis of the function with this name is traced:
  /// every state transition, split, and merge is reported to TraceSink as
  /// one structured event line. Other functions are unaffected.
  std::string TraceFunction;
  /// Receives trace event lines (no trailing newline). Must outlive the
  /// check call. Null discards events even when TraceFunction is set.
  std::function<void(const std::string &)> TraceSink;
  /// Bottom-up annotation inference (DESIGN.md §6h): after Sema and before
  /// checking, infer parameter/return annotations from observed transfer
  /// behavior and treat them as if user-written. The inferred interface is
  /// returned in CheckResult::InferredHeader. Changes diagnostics, so it
  /// contributes to checkOptionsFingerprint (via the inference version).
  bool Infer = false;
};

/// How a check run completed. Ordered by severity: a run that both hit a
/// budget and contained an internal error reports InternalError.
enum class CheckStatus {
  Ok,            ///< Full analysis; nothing was skipped.
  Degraded,      ///< A resource budget was hit; results are partial but
                 ///< every diagnostic emitted before the cut-off is kept.
  InternalError, ///< An internal error was contained; results cover the
                 ///< parts of the program checked before/around it.
};

/// \returns a stable lower-case name for a status ("ok", "degraded",
/// "internal-error").
const char *checkStatusName(CheckStatus S);

/// The outcome of a check run.
struct CheckResult {
  std::vector<Diagnostic> Diagnostics;
  unsigned SuppressedCount = 0;
  CheckStatus Status = CheckStatus::Ok;
  /// Which limits were hit, by flag name ("limittokens", ...), plus
  /// "internal-error" for contained crashes and the cancellation reason
  /// ("deadline", "cancelled") for cancelled runs. Deduplicated and
  /// sorted, so reason lists compare and render independently of the
  /// order in which limits were hit.
  std::vector<std::string> DegradationReasons;
  /// Wall-clock time of this run in milliseconds (monotonic clock).
  double WallMs = 0;
  /// How many times the file was (re)checked to get this result. The
  /// facade always reports 1; the batch driver overwrites it when a
  /// timed-out or crashed file is retried with tightened limits.
  unsigned Attempts = 1;
  /// Phase timings and counters; empty unless CheckOptions::CollectMetrics
  /// was set. Counters are deterministic for a given input and flag set;
  /// timer values are wall-clock and vary run to run.
  MetricsSnapshot Metrics;
  /// The inferred annotated interface (one extern declaration per defined
  /// function); empty unless CheckOptions::Infer was set. Deterministic for
  /// a given input and flag set.
  std::string InferredHeader;

  /// Number of anomalies of a given check class.
  unsigned count(CheckId Id) const;
  /// Number of anomaly-severity diagnostics (parse errors excluded).
  unsigned anomalyCount() const;
  /// True if some diagnostic's message contains \p Needle.
  bool contains(const std::string &Needle) const;
  /// Renders all diagnostics, LCLint style.
  std::string render() const;
};

/// A 16-hex-digit fingerprint of everything in \p Options that can change
/// a check run's output for a fixed input text: the FlagSet (policy flags
/// and resource limits), prelude inclusion, and the LibrarySpec version.
/// This is the policy half of the check service's cache key — two runs
/// over identical content produce byte-identical diagnostics whenever
/// their option fingerprints match — and the value the batch journal
/// records so --resume can refuse to replay results onto a different
/// invocation. Run-scoped plumbing (cancel tokens, fault injectors,
/// metrics collection, tracing) deliberately does not contribute: it
/// never alters the diagnostics of a completed Ok run.
std::string checkOptionsFingerprint(const CheckOptions &Options);

/// The batch driver's single-threaded warmup pass: preprocesses the prelude
/// and the first input \p Name into \p Ctx, populating the expansion memo,
/// spelling interner, and read cache that every worker will share once the
/// driver publishes the context. Diagnostics go to a scratch engine (the
/// worker runs re-produce them; memoized entries are diagnostic-free by
/// construction) and exceptions are contained — warmup is best-effort, a
/// partial cache only means more live fallbacks. \returns the warmup's own
/// metrics when Options.CollectMetrics is set (the driver folds them under
/// a "warmup." prefix), an empty snapshot otherwise.
MetricsSnapshot warmFrontendContext(FrontendContext &Ctx, const VFS &Files,
                                    const std::string &Name,
                                    const CheckOptions &Options);

/// Stateless checking entry points.
class Checker {
public:
  /// Checks a single in-memory source (named "main.c" unless overridden).
  static CheckResult checkSource(const std::string &Source,
                                 const CheckOptions &Options = CheckOptions(),
                                 const std::string &Name = "main.c");

  /// Checks files from a VFS as one program, in the given order. #include
  /// directives resolve against the same VFS.
  static CheckResult checkFiles(const VFS &Files,
                                const std::vector<std::string> &Names,
                                const CheckOptions &Options = CheckOptions());
};

} // namespace memlint

#endif // MEMLINT_CHECKER_CHECKER_H
