//===--- Frontend.cpp - Parse programs into ASTs ----------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "checker/Frontend.h"

#include "analysis/LibrarySpec.h"
#include "lcl/LclReader.h"
#include "lex/Token.h"
#include "parse/Parser.h"

using namespace memlint;

TranslationUnit *Frontend::parseProgram(const VFS &Files,
                                        const std::vector<std::string> &Names,
                                        bool IncludePrelude) {
  // Spellings die with this call (the AST copies every string it keeps);
  // a local arena avoids contending on the process-global interner lock.
  TokenArena Arena;
  Preprocessor PP(Files, Diags);
  PP.setTokenArena(&Arena);
  std::vector<Token> Program;
  auto append = [&Program](std::vector<Token> Toks) {
    if (!Toks.empty() && Toks.back().isEof())
      Toks.pop_back();
    Program.insert(Program.end(), Toks.begin(), Toks.end());
  };
  if (IncludePrelude)
    append(PP.processSource(libraryPreludeName(), libraryPreludeSource()));
  for (const std::string &Name : Names) {
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".lcl") == 0) {
      if (std::optional<std::string> Spec = Files.read(Name)) {
        append(PP.processSource(Name, translateLclToC(*Spec, Name, Diags)));
        continue;
      }
    }
    append(PP.process(Name));
  }
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  if (!Program.empty())
    Eof.Loc = Program.back().Loc;
  Program.push_back(Eof);

  Controls = PP.controlDirectives();

  Parser P(std::move(Program), Ctx, Diags);
  return P.parse(Names.empty() ? "program" : Names.front());
}

TranslationUnit *Frontend::parseSource(const std::string &Source,
                                       const std::string &Name,
                                       bool IncludePrelude) {
  VFS Files;
  Files.add(Name, Source);
  return parseProgram(Files, {Name}, IncludePrelude);
}
