//===--- Frontend.h - Parse programs into ASTs ------------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience wrapper around preprocessor + parser for clients that need
/// the AST itself (the CFG builder, the run-time interpreter, tooling)
/// rather than the end-to-end Checker facade.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_CHECKER_FRONTEND_H
#define MEMLINT_CHECKER_FRONTEND_H

#include "ast/AST.h"
#include "pp/Preprocessor.h"
#include "support/Diagnostics.h"
#include "support/VFS.h"

#include <string>
#include <vector>

namespace memlint {

/// Owns the AST context and diagnostics for one parsed program.
class Frontend {
public:
  /// Parses the given files (in order) as one program, with the annotated
  /// standard-library prelude first unless \p IncludePrelude is false.
  /// \returns the translation unit (never null; parse errors are collected
  /// in diags()).
  TranslationUnit *parseProgram(const VFS &Files,
                                const std::vector<std::string> &Names,
                                bool IncludePrelude = true);

  /// Parses one in-memory source.
  TranslationUnit *parseSource(const std::string &Source,
                               const std::string &Name = "main.c",
                               bool IncludePrelude = true);

  ASTContext &context() { return Ctx; }
  DiagnosticEngine &diags() { return Diags; }

  /// Control comments found while preprocessing (for suppression logic).
  const std::vector<ControlDirective> &controlDirectives() const {
    return Controls;
  }

private:
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::vector<ControlDirective> Controls;
};

} // namespace memlint

#endif // MEMLINT_CHECKER_FRONTEND_H
