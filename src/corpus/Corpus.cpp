//===--- Corpus.cpp - Embedded paper programs and generators ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "support/Rand.h"

#include <cassert>
#include <cctype>

using namespace memlint;
using namespace memlint::corpus;

//===----------------------------------------------------------------------===//
// Figures 1-4: sample.c
//===----------------------------------------------------------------------===//

Program corpus::sampleFigure(int Version) {
  assert(Version >= 1 && Version <= 4 && "sample.c has four variants");
  Program P;
  P.Name = "sample_v" + std::to_string(Version);
  std::string Source;
  switch (Version) {
  case 1:
    Source = R"(extern char *gname;

void setName (char *pname)
{
  gname = pname;
}
)";
    break;
  case 2:
    Source = R"(extern char *gname;

void setName (/*@null@*/ char *pname)
{
  gname = pname;
}
)";
    break;
  case 3:
    Source = R"(extern char *gname;
extern /*@truenull@*/ int isNull (/*@null@*/ char *x);

void setName (/*@null@*/ char *pname)
{
  if (!isNull (pname))
    {
      gname = pname;
    }
}
)";
    break;
  case 4:
    Source = R"(extern /*@only@*/ char *gname;

void setName (/*@temp@*/ char *pname)
{
  gname = pname;
}
)";
    break;
  }
  P.Files.add("sample.c", Source);
  P.MainFiles = {"sample.c"};
  return P;
}

Program corpus::listAddh() {
  Program P;
  P.Name = "list_addh";
  P.Files.add("list.c", R"(typedef /*@null@*/ struct _list
{
  /*@only@*/ char *this;
  /*@null@*/ /*@only@*/ struct _list *next;
} *list;

extern /*@out@*/ /*@only@*/ void *smalloc(size_t);

void list_addh (/*@temp@*/ list l,
                /*@only@*/ char *e)
{
  if (l != NULL)
    {
      while (l->next != NULL)
        {
          l = l->next;
        }

      l->next = (list)
        smalloc (sizeof (*l->next));
      l->next->this = e;
    }
}
)");
  P.MainFiles = {"list.c"};
  return P;
}

//===----------------------------------------------------------------------===//
// Annotation utilities
//===----------------------------------------------------------------------===//

std::string corpus::stripAnnotations(const std::string &Source) {
  std::string Out;
  size_t I = 0;
  while (I < Source.size()) {
    if (Source.compare(I, 3, "/*@") == 0) {
      size_t End = Source.find("@*/", I + 3);
      size_t AltEnd = Source.find("*/", I + 3);
      if (End != std::string::npos) {
        // Also swallow one following space to keep formatting tidy.
        I = End + 3;
        if (I < Source.size() && Source[I] == ' ')
          ++I;
        continue;
      }
      if (AltEnd != std::string::npos) {
        I = AltEnd + 2;
        continue;
      }
    }
    Out += Source[I++];
  }
  return Out;
}

unsigned corpus::countAnnotations(const Program &P) {
  unsigned Count = 0;
  for (const std::string &Name : P.Files.names()) {
    const std::string Text = *P.Files.read(Name);
    size_t Pos = 0;
    while ((Pos = Text.find("/*@", Pos)) != std::string::npos) {
      // Control comments and ignore regions are not annotations.
      char Next = Pos + 3 < Text.size() ? Text[Pos + 3] : '\0';
      if (Next != '-' && Next != '+' && Next != '=' &&
          Text.compare(Pos, 11, "/*@ignore@*") != 0 &&
          Text.compare(Pos, 8, "/*@end@*") != 0)
        ++Count;
      Pos += 3;
    }
  }
  return Count;
}

unsigned corpus::totalLines(const Program &P) {
  unsigned Lines = 0;
  for (const std::string &Name : P.Files.names()) {
    const std::string Text = *P.Files.read(Name);
    for (char C : Text)
      if (C == '\n')
        ++Lines;
  }
  return Lines;
}

//===----------------------------------------------------------------------===//
// Synthetic scaling programs
//===----------------------------------------------------------------------===//

Program corpus::syntheticProgram(const GenOptions &Options) {
  Program P;
  P.Name = "synthetic_m" + std::to_string(Options.Modules) + "_f" +
           std::to_string(Options.FunctionsPerModule);
  // The shared seeded engine (support/Rand.h): the only source of
  // randomness in corpus generation, so one Seed yields byte-identical
  // programs on every platform and the fuzzer's seeds stay addressable.
  SplitMix64 R(Options.Seed);

  // A shared header with a couple of record types.
  std::string Header = R"(#ifndef GEN_H
#define GEN_H
typedef struct _node {
  int value;
  /*@null@*/ /*@only@*/ struct _node *link;
} node;

typedef struct {
  int id;
  int count;
  /*@null@*/ /*@only@*/ node *head;
} box;
#endif
)";
  if (!Options.WithAnnotations)
    Header = stripAnnotations(Header);
  P.Files.add("gen.h", Header);

  // Common headers included by every module: repeated per-translation-unit
  // text, the dominant cost real corpora pay in the front end. Each is
  // self-contained and diagnostic-free, so the batch driver's shared front
  // end can memoize its expansion once and replay it everywhere.
  if (Options.SharedHeaders != 0)
    P.Name += "_h" + std::to_string(Options.SharedHeaders);
  for (unsigned H = 0; H < Options.SharedHeaders; ++H) {
    const std::string N = std::to_string(H);
    std::string Shared =
        "#ifndef GEN_SHARED" + N + "_H\n"
        "#define GEN_SHARED" + N + "_H\n"
        "#define GEN_S" + N + "_LIMIT " + std::to_string(16 + H * 8) + "\n"
        "#define GEN_S" + N + "_SCALE(x) ((x) * " + std::to_string(H + 2) +
        ")\n"
        "#define GEN_S" + N + "_CLAMP(x) ((x) < GEN_S" + N +
        "_LIMIT ? (x) : GEN_S" + N + "_LIMIT)\n"
        "typedef struct _shared" + N + "_range {\n"
        "  int lo;\n"
        "  int hi;\n"
        "  int weight;\n"
        "} shared" + N + "_range;\n"
        "typedef struct _shared" + N + "_probe {\n"
        "  int kind;\n"
        "  int count;\n"
        "  shared" + N + "_range window;\n"
        "} shared" + N + "_probe;\n"
        "extern int shared" + N +
        "_measure(/*@temp@*/ shared" + N + "_range *r, int v);\n"
        "extern int shared" + N +
        "_weigh(/*@temp@*/ shared" + N + "_probe *p);\n"
        "extern /*@null@*/ /*@only@*/ shared" + N +
        "_probe *shared" + N + "_fresh(int kind);\n"
        "extern void shared" + N +
        "_drop(/*@only@*/ /*@null@*/ shared" + N + "_probe *p);\n"
        "extern int shared" + N + "_tally(int a, int b);\n"
        "extern int shared" + N + "_bound(int a);\n"
        "#endif\n";
    if (!Options.WithAnnotations)
      Shared = stripAnnotations(Shared);
    P.Files.add("shared" + N + ".h", Shared);
  }

  for (unsigned M = 0; M < Options.Modules; ++M) {
    std::string ModName = "mod" + std::to_string(M);
    std::string Src = "#include \"gen.h\"\n";
    for (unsigned H = 0; H < Options.SharedHeaders; ++H)
      Src += "#include \"shared" + std::to_string(H) + ".h\"\n";
    Src += "\n";

    for (unsigned F = 0; F < Options.FunctionsPerModule; ++F) {
      std::string Fn = ModName + "_f" + std::to_string(F);
      unsigned Shape = R.below(4);
      switch (Shape) {
      case 0:
        // Allocator: create and initialize a node.
        Src += "/*@only@*/ /*@null@*/ node *" + Fn + "(int v)\n"
               "{\n"
               "  node *n = (node *) malloc(sizeof(node));\n"
               "  if (n == NULL)\n"
               "    {\n"
               "      return NULL;\n"
               "    }\n"
               "  n->value = v;\n"
               "  n->link = NULL;\n"
               "  return n;\n"
               "}\n\n";
        break;
      case 1:
        // Consumer: release a node chain (one-level, loop models once).
        Src += "void " + Fn + "(/*@only@*/ /*@null@*/ node *n)\n"
               "{\n"
               "  if (n != NULL)\n"
               "    {\n"
               "      free((void *) n);\n"
               "    }\n"
               "}\n\n";
        break;
      case 2:
        // Reader: walk and sum values.
        Src += "int " + Fn + "(/*@temp@*/ /*@null@*/ node *n)\n"
               "{\n"
               "  int sum = 0;\n"
               "  while (n != NULL)\n"
               "    {\n"
               "      sum = sum + n->value;\n"
               "      n = n->link;\n"
               "    }\n"
               "  return sum;\n"
               "}\n\n";
        break;
      default:
        // Mutator: update a box in place.
        Src += "void " + Fn + "(/*@temp@*/ box *b, int v)\n"
               "{\n"
               "  b->id = v;\n"
               "  b->count = b->count + 1;\n"
               "  if (b->head != NULL)\n"
               "    {\n"
               "      b->head->value = v;\n"
               "    }\n"
               "}\n\n";
        break;
      }
    }
    if (!Options.WithAnnotations || Options.UnannotatedModules)
      Src = stripAnnotations(Src);
    P.Files.add(ModName + ".c", Src);
    P.MainFiles.push_back(ModName + ".c");
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Seeded bugs
//===----------------------------------------------------------------------===//

const char *corpus::bugKindName(BugKind Kind) {
  switch (Kind) {
  case BugKind::NullDeref: return "null-dereference";
  case BugKind::Leak: return "memory-leak";
  case BugKind::UseAfterFree: return "use-after-free";
  case BugKind::DoubleFree: return "double-free";
  case BugKind::UndefRead: return "undefined-read";
  case BugKind::OffsetFree: return "offset-free";
  case BugKind::StaticFree: return "static-free";
  case BugKind::GlobalLeakAtExit: return "global-leak-at-exit";
  }
  return "?";
}

std::vector<BugKind> corpus::allBugKinds() {
  return {BugKind::NullDeref,  BugKind::Leak,       BugKind::UseAfterFree,
          BugKind::DoubleFree, BugKind::UndefRead,  BugKind::OffsetFree,
          BugKind::StaticFree, BugKind::GlobalLeakAtExit};
}

bool corpus::staticallyDetectable(BugKind Kind) {
  switch (Kind) {
  case BugKind::NullDeref:
  case BugKind::Leak:
  case BugKind::UseAfterFree:
  case BugKind::DoubleFree:
  case BugKind::UndefRead:
    return true;
  // The classes the paper reports the 1996 tool missed: "a few errors
  // involving incorrectly freeing storage resulting from pointer
  // arithmetic, two errors resulting from freeing static storage, ...
  // LCLint cannot detect failures to free global storage before execution
  // terminates."
  case BugKind::OffsetFree:
  case BugKind::StaticFree:
  case BugKind::GlobalLeakAtExit:
    return false;
  }
  return false;
}

bool corpus::dynamicallyDetectable(BugKind Kind) {
  // The run-time baseline catches every class when the buggy path runs.
  (void)Kind;
  return true;
}

unsigned corpus::seededBugVariants() { return 3; }

namespace {

/// Structurally distinct second shapes for each defect class (variant 2).
/// Each preserves the kind's detectability contract: the statically
/// detectable kinds still trip the checker (on a different program shape),
/// and the 1996-missed kinds still check cleanly while failing at run time.
std::string seededBugAltSource(BugKind Kind) {
  switch (Kind) {
  case BugKind::NullDeref:
    // Conditional null return instead of a search miss.
    return R"(/*@null@*/ cell *pick(/*@temp@*/ cell *a, int want)
{
  if (want > 0)
    {
      return a;
    }
  return NULL;
}

int main(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  cell *got;
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 3;
  c->next = NULL;
  got = pick(c, 0);
  got->datum = 4; /* BUG */
  free((void *) c);
  return 0;
}
)";
  case BugKind::Leak:
    // The only reference comes back from a helper and is overwritten.
    return R"(/*@only@*/ cell *fresh(int d)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      exit(1);
    }
  c->datum = d;
  c->next = NULL;
  return c;
}

int main(void)
{
  cell *keep = fresh(1);
  keep = fresh(2); /* BUG */
  free((void *) keep);
  return 0;
}
)";
  case BugKind::UseAfterFree:
    // Ownership handed to a consuming helper, then the caller reads it.
    return R"(void consume(/*@only@*/ cell *c)
{
  free((void *) c);
}

int main(void)
{
  int v;
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 11;
  c->next = NULL;
  consume(c);
  v = c->datum; /* BUG */
  return v - 11;
}
)";
  case BugKind::DoubleFree:
    // The second free goes through an alias, not the original name.
    return R"(int main(void)
{
  cell *a = (cell *) malloc(sizeof(cell));
  cell *b;
  if (a == NULL)
    {
      return 1;
    }
  a->datum = 2;
  a->next = NULL;
  b = a;
  free((void *) a);
  free((void *) b); /* BUG */
  return 0;
}
)";
  case BugKind::UndefRead:
    // The helper returns storage with an undefined field; the checker
    // reports the incomplete definition at the return, the interpreter
    // reports the undefined read in main.
    return R"(/*@only@*/ cell *blank(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      exit(1);
    }
  c->next = NULL;
  return c; /* BUG */
}

int main(void)
{
  int v;
  cell *c = blank();
  v = c->datum;
  free((void *) c);
  return v;
}
)";
  case BugKind::OffsetFree:
    // The offset pointer is a named alias rather than an in-place bump.
    return R"(int main(void)
{
  char *buf = (char *) malloc(8);
  char *mid;
  if (buf == NULL)
    {
      return 1;
    }
  buf[0] = 'x';
  mid = buf;
  mid += 2;
  free((void *) mid); /* BUG */
  return 0;
}
)";
  case BugKind::StaticFree:
    // Freed directly in main via address-of, no helper indirection.
    return R"(static int table;

int main(void)
{
  int *entry = &table;
  table = 3;
  free((void *) entry); /* BUG */
  return 0;
}
)";
  case BugKind::GlobalLeakAtExit:
    // The global cache is populated from main itself.
    return R"(/*@null@*/ /*@only@*/ cell *cache = NULL;

int main(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 8;
  c->next = NULL;
  cache = c; /* BUG: cache still live at exit */
  return 0;
}
)";
  }
  return "";
}

} // namespace

Program corpus::seededBug(BugKind Kind, unsigned Variant) {
  Program P;
  P.Name = std::string("bug_") + bugKindName(Kind) + "_v" +
           std::to_string(Variant);
  std::string Src = R"(typedef struct _cell {
  int datum;
  /*@null@*/ /*@only@*/ struct _cell *next;
} cell;

)";

  if (Variant >= 2) {
    Src += seededBugAltSource(Kind);
    P.Files.add("bug.c", Src);
    P.MainFiles = {"bug.c"};
    return P;
  }

  // A couple of shape variants per kind keep the fleet diverse; the bug is
  // always on the line tagged /* BUG */.
  switch (Kind) {
  case BugKind::NullDeref:
    Src += R"(/*@null@*/ cell *find(/*@null@*/ /*@temp@*/ cell *head, int key)
{
  while (head != NULL)
    {
      if (head->datum == key)
        {
          return head;
        }
      head = head->next;
    }
  return NULL;
}

int main(void)
{
  cell *head = (cell *) malloc(sizeof(cell));
  cell *hit;
  if (head == NULL)
    {
      return 1;
    }
  head->datum = 1;
  head->next = NULL;
  hit = find(head, 2);
  hit->datum = 99; /* BUG */
  free((void *) head);
  return 0;
}
)";
    break;
  case BugKind::Leak:
    Src += R"(int makeTwo(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 1;
  c->next = NULL;
  c = (cell *) malloc(sizeof(cell)); /* BUG */
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 2;
  c->next = NULL;
  free((void *) c);
  return 0;
}

int main(void)
{
  return makeTwo();
}
)";
    break;
  case BugKind::UseAfterFree:
    Src += R"(int useLate(void)
{
  int v;
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 7;
  c->next = NULL;
  free((void *) c);
  v = c->datum; /* BUG */
  return v;
}

int main(void)
{
  return useLate();
}
)";
    break;
  case BugKind::DoubleFree:
    Src += R"(int freeTwice(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->datum = 9;
  c->next = NULL;
  free((void *) c);
  free((void *) c); /* BUG */
  return 0;
}

int main(void)
{
  return freeTwice();
}
)";
    break;
  case BugKind::UndefRead:
    Src += R"(int readFresh(void)
{
  int v;
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return 1;
    }
  c->next = NULL;
  v = c->datum; /* BUG */
  free((void *) c);
  return v;
}

int main(void)
{
  return readFresh();
}
)";
    break;
  case BugKind::OffsetFree:
    Src += R"(int freeMiddle(void)
{
  char *buf = (char *) malloc(16);
  if (buf == NULL)
    {
      return 1;
    }
  buf[0] = 'a';
  buf += 4;
  free((void *) buf); /* BUG */
  return 0;
}

int main(void)
{
  return freeMiddle();
}
)";
    break;
  case BugKind::StaticFree:
    Src += R"(static int slot;

int freeStatic(void)
{
  int *p = &slot;
  free((void *) p); /* BUG */
  return 0;
}

int main(void)
{
  return freeStatic();
}
)";
    break;
  case BugKind::GlobalLeakAtExit:
    Src += R"(/*@null@*/ /*@only@*/ cell *registry = NULL;

void install(void)
{
  cell *c = (cell *) malloc(sizeof(cell));
  if (c == NULL)
    {
      return;
    }
  c->datum = 5;
  c->next = NULL;
  registry = c;
}

int main(void)
{
  install(); /* BUG: registry never released before exit */
  return 0;
}
)";
    break;
  }

  // Variant 1 renames entities so finders cannot memoize exact text.
  if (Variant == 1) {
    std::string Renamed;
    size_t I = 0;
    while (I < Src.size()) {
      if (Src.compare(I, 4, "cell") == 0 &&
          (I + 4 >= Src.size() ||
           !std::isalnum(static_cast<unsigned char>(Src[I + 4])))) {
        Renamed += "unit";
        I += 4;
        continue;
      }
      Renamed += Src[I++];
    }
    Src = std::move(Renamed);
  }

  P.Files.add("bug.c", Src);
  P.MainFiles = {"bug.c"};
  return P;
}
