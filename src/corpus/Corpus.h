//===--- Corpus.h - Embedded paper programs and generators -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation corpus:
///
/// * The paper's figures: sample.c in its four variants (Figures 1-4) and
///   the buggy list_addh (Figure 5).
/// * A faithful reconstruction of the Section 6 employee database (the toy
///   program from [5], ~1000 lines over six modules) in the annotation
///   stages the paper walks through: unannotated, after the null-annotation
///   iteration, after the only-annotation iteration, and fully fixed.
/// * A synthetic program generator for the Section 7 scaling measurements.
/// * A seeded-bug generator producing one known defect per program, used to
///   compare static detection against the run-time baseline (Section 7's
///   static-vs-dynamic experience).
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_CORPUS_CORPUS_H
#define MEMLINT_CORPUS_CORPUS_H

#include "support/VFS.h"

#include <string>
#include <vector>

namespace memlint {
namespace corpus {

/// A checkable (and possibly runnable) program.
struct Program {
  std::string Name;
  VFS Files;
  std::vector<std::string> MainFiles; ///< files to check, in order
};

//===--- paper figures -----------------------------------------------------===//

/// sample.c as in Figures 1-4 (\p Version in 1..4).
Program sampleFigure(int Version);

/// The buggy list_addh of Figure 5.
Program listAddh();

//===--- the Section 6 employee database -----------------------------------===//

/// The annotation stages of Section 6's iterative process.
enum class DbVersion {
  Unannotated, ///< starting point: no annotations, missing frees
  NullAdded,   ///< after the null-pointer iteration (null field + asserts)
  OnlyAdded,   ///< after the allocation iteration (the 13 only + 1 out)
  Fixed,       ///< all annotations + the six driver leaks fixed
};

/// The employee database program at the given stage.
Program employeeDb(DbVersion Version);

/// The fixed database with its interfaces expressed as .lcl specification
/// files instead of annotated headers (the paper's "1000 lines of source
/// code and 300 lines of interface specifications").
Program employeeDbSpecMode();

/// Number of annotation comments in a program's sources (counts /*@...@*/
/// words; used to reproduce the Section 6 "15 annotations" summary).
unsigned countAnnotations(const Program &P);

/// Removes every /*@...@*/ comment from a source text.
std::string stripAnnotations(const std::string &Source);

//===--- synthetic generators ----------------------------------------------===//

/// Options for the scaling-program generator.
struct GenOptions {
  unsigned Modules = 4;            ///< number of generated modules
  unsigned FunctionsPerModule = 25;///< functions in each module
  unsigned Seed = 42;              ///< deterministic seed
  bool WithAnnotations = true;     ///< emit annotated interfaces
  /// Number of extra common headers ("shared0.h" ...) included by every
  /// module, each with macros, record types, and annotated extern
  /// declarations. Models real corpora, where most preprocessed text is
  /// headers repeated per translation unit — the workload the batch
  /// driver's shared front end (DESIGN.md §5c) reuses across files.
  unsigned SharedHeaders = 0;
  /// Strip the /*@...@*/ annotations from the generated module .c files
  /// only, keeping gen.h and the shared headers annotated. This is the
  /// annotation-inference workload (`-gen-unannotated`): field and extern
  /// annotations — outside parameter/return inference's scope — stay, while
  /// every function interface must be recovered by `-infer`. Ignored when
  /// WithAnnotations is false (everything is already stripped).
  bool UnannotatedModules = false;
};

/// Generates a well-formed annotated program of roughly
/// Modules * FunctionsPerModule * ~14 lines. The program checks cleanly.
Program syntheticProgram(const GenOptions &Options);

/// Total source lines of a program (for LOC-based reporting).
unsigned totalLines(const Program &P);

//===--- seeded bugs --------------------------------------------------------===//

/// The defect classes from the paper's experience section. The final four
/// are the classes the 1996 tool missed statically (offset free, static
/// free, storage reachable from globals unfreed at exit, flow-dependent
/// errors), which the run-time baseline catches.
enum class BugKind {
  NullDeref,        ///< possibly-null pointer dereferenced
  Leak,             ///< last reference overwritten without free
  UseAfterFree,     ///< released storage read
  DoubleFree,       ///< released twice
  UndefRead,        ///< allocated-but-undefined field read
  OffsetFree,       ///< free of a pointer into the middle of a block
  StaticFree,       ///< free of static storage
  GlobalLeakAtExit, ///< global-reachable storage never released
};

const char *bugKindName(BugKind Kind);

/// All bug kinds, in declaration order.
std::vector<BugKind> allBugKinds();

/// \returns whether the 1996 checker detects this class statically (with
/// default flags, i.e. without the later illegalfree improvement).
bool staticallyDetectable(BugKind Kind);

/// \returns whether the run-time baseline detects this class when the buggy
/// path executes.
bool dynamicallyDetectable(BugKind Kind);

/// A small annotated program containing exactly one bug of the given kind,
/// with a main() that exercises the buggy path (for the interpreter).
/// \p Variant selects among seededBugVariants() instantiations per kind:
/// variant 0 is the canonical shape, variant 1 renames its entities, and
/// variant 2 is a structurally different program with the same defect
/// class. Every variant preserves the kind's detectability contract
/// (staticallyDetectable / dynamicallyDetectable).
Program seededBug(BugKind Kind, unsigned Variant = 0);

/// Number of distinct seeded-bug variants available per kind.
unsigned seededBugVariants();

} // namespace corpus
} // namespace memlint

#endif // MEMLINT_CORPUS_CORPUS_H
