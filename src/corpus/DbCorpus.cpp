//===--- DbCorpus.cpp - The Section 6 employee database ---------------------===//
//
// Part of memlint. See DESIGN.md.
//
// A reconstruction of the toy employee database program of [5] used in the
// paper's Section 6 (about 1000 lines over six modules). The Fixed stage
// carries exactly the annotations the paper reports adding: one null on a
// structure field (erc's vals), one out on a parameter (employee_sprint's
// buffer), thirteen only annotations, plus the unique annotations from the
// Aliasing subsection. Earlier stages are derived textually: FIX(leak)
// lines are the six driver frees, FIX(null) lines are the defensive
// assertions added during the null iteration.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cassert>

using namespace memlint;
using namespace memlint::corpus;

namespace {

//===----------------------------------------------------------------------===//
// employee: the record type and its operations
//===----------------------------------------------------------------------===//

const char *EmployeeH = R"(#ifndef EMPLOYEE_H
#define EMPLOYEE_H

#define maxEmployeeName 24
#define employeePrintSize 64

typedef enum { MALE, FEMALE, gender_ANY } gender;
typedef enum { MGR, NONMGR, job_ANY } job;

typedef struct {
  int ssNum;
  char name[maxEmployeeName];
  int salary;
  gender gen;
  job j;
} employee;

extern int employee_setName(employee *e, /*@unique@*/ char *na);
extern int employee_equal(/*@temp@*/ employee *e1, /*@temp@*/ employee *e2);
extern void employee_sprint(/*@out@*/ /*@unique@*/ char *s,
                            /*@temp@*/ employee *e);
extern void employee_clear(employee *e);
extern void format_int(char *s, int n);

#endif
)";

const char *EmployeeC = R"(#include "employee.h"

/* Renders a non-negative integer into s (decimal). */
void format_int(char *s, int n)
{
  char digits[16];
  int i;
  int j;

  if (n <= 0)
    {
      s[0] = '0';
      s[1] = '\0';
      return;
    }

  i = 0;
  while (n > 0)
    {
      digits[i] = (char) ('0' + n % 10);
      n = n / 10;
      i = i + 1;
    }

  j = 0;
  /* The checker models loops as running zero or one time, so it cannot see
     that this loop only reads entries the first loop wrote. */
  /*@-usedef@*/
  while (i > 0)
    {
      i = i - 1;
      s[j] = digits[i];
      j = j + 1;
    }
  /*@=usedef@*/
  s[j] = '\0';
}

/* Sets the employee's name; fails (returns FALSE) if it does not fit. */
int employee_setName(employee *e, char *na)
{
  int i;

  i = (int) strlen(na);
  if (i >= maxEmployeeName)
    {
      return FALSE;
    }
  strcpy(e->name, na);
  return TRUE;
}

int employee_equal(employee *e1, employee *e2)
{
  if (e1->ssNum != e2->ssNum)
    {
      return FALSE;
    }
  if (e1->salary != e2->salary)
    {
      return FALSE;
    }
  if (e1->gen != e2->gen)
    {
      return FALSE;
    }
  if (e1->j != e2->j)
    {
      return FALSE;
    }
  return strcmp(e1->name, e2->name) == 0;
}

/* Renders "name ssNum salary" into the caller-allocated buffer s, which
   must hold at least employeePrintSize characters. */
void employee_sprint(char *s, employee *e)
{
  char num[16];

  num[0] = '\0';
  strcpy(s, e->name);
  strcat(s, " ");
  format_int(num, e->ssNum);
  strcat(s, num);
  strcat(s, " ");
  format_int(num, e->salary);
  strcat(s, num);
}

/* Resets an employee record to a defined, empty state. */
void employee_clear(employee *e)
{
  e->ssNum = 0;
  e->name[0] = '\0';
  e->salary = 0;
  e->gen = gender_ANY;
  e->j = job_ANY;
}
)";

//===----------------------------------------------------------------------===//
// eref: employee references backed by a static pool
//===----------------------------------------------------------------------===//

const char *ErefH = R"(#ifndef EREF_H
#define EREF_H

#include "employee.h"

typedef int eref;

#define erefNIL -1

extern void eref_initMod(void);
extern eref eref_alloc(void);
extern void eref_free(eref er);
extern void eref_assign(eref er, /*@temp@*/ employee *e);
extern /*@exposed@*/ employee *eref_get(eref er);

#endif
)";

const char *ErefC = R"(#include "eref.h"

#define erefPoolSize 256

typedef enum { stat_used, stat_avail } eref_status;

static struct
{
  /*@only@*/ employee *conts;
  /*@only@*/ eref_status *status;
  int size;
} eref_pool;

static int eref_needsInit = TRUE;

/* Initialization runs once (guarded by eref_needsInit); the checker cannot
   see the guard, so the pool fields look like unreleased prior storage and
   look incompletely defined at exit (the zero-or-one-iteration loop model
   loses the initializing loop). */
/*@-mustfree@*/ /*@-compdef@*/
void eref_initMod(void)
{
  int i;

  if (eref_needsInit == FALSE)
    {
      return;
    }
  eref_needsInit = FALSE;

  eref_pool.conts =
    (employee *) malloc(erefPoolSize * sizeof(employee));
  eref_pool.status =
    (eref_status *) malloc(erefPoolSize * sizeof(eref_status));
  if (eref_pool.conts == NULL || eref_pool.status == NULL)
    {
      printf("eref_initMod: out of memory\n");
      exit(EXIT_FAILURE);
    }
  eref_pool.size = erefPoolSize;

  i = 0;
  while (i < erefPoolSize)
    {
      eref_pool.status[i] = stat_avail;
      employee_clear(&(eref_pool.conts[i]));
      i = i + 1;
    }
}
/*@=mustfree@*/ /*@=compdef@*/

eref eref_alloc(void)
{
  int i;

  i = 0;
  while (i < eref_pool.size)
    {
      if (eref_pool.status[i] == stat_avail)
        {
          eref_pool.status[i] = stat_used;
          return (eref) i;
        }
      i = i + 1;
    }
  return erefNIL;
}

void eref_free(eref er)
{
  assert(er != erefNIL);
  eref_pool.status[er] = stat_avail;
}

void eref_assign(eref er, employee *e)
{
  assert(er != erefNIL);
  eref_pool.conts[er] = *e;
}

employee *eref_get(eref er)
{
  assert(er != erefNIL);
  return &(eref_pool.conts[er]);
}
)";

//===----------------------------------------------------------------------===//
// erc: collections of employee references (a linked list)
//===----------------------------------------------------------------------===//

const char *ErcH = R"(#ifndef ERC_H
#define ERC_H

#include "eref.h"

typedef /*@null@*/ struct _ercElem {
  eref val;
  struct _ercElem *next;
} *ercElem;

typedef struct {
  /*@null@*/ /*@only@*/ ercElem vals;
  int size;
} *erc;

/* The first element of a non-empty collection. */
#define erc_choose(c) ((c->vals)->val)

extern /*@only@*/ erc erc_create(void);
extern void erc_insert(/*@temp@*/ erc c, eref er);
extern int erc_delete(/*@temp@*/ erc c, eref er);
extern int erc_member(/*@temp@*/ erc c, eref er);
extern int erc_size(/*@temp@*/ erc c);
extern void erc_clear(/*@temp@*/ erc c);
extern /*@only@*/ char *erc_sprint(/*@temp@*/ erc c);
extern void erc_final(/*@only@*/ erc c);

#endif
)";

const char *ErcC = R"(#include "erc.h"

erc erc_create(void)
{
  erc c = (erc) malloc(sizeof(*c));

  if (c == NULL)
    {
      printf("erc_create: malloc returned null\n");
      exit(EXIT_FAILURE);
    }

  c->vals = NULL;
  c->size = 0;
  return c;
}

void erc_insert(erc c, eref er)
{
  ercElem e = (ercElem) malloc(sizeof(*e));

  if (e == NULL)
    {
      printf("erc_insert: malloc returned null\n");
      exit(EXIT_FAILURE);
    }

  e->val = er;
  e->next = c->vals;
  /*@-mustfree@*/
  c->vals = e;
  /*@=mustfree@*/
  c->size = c->size + 1;
}

int erc_delete(erc c, eref er)
{
  ercElem cur;
  ercElem prev;

  prev = NULL;
  cur = c->vals;
  while (cur != NULL)
    {
      if (cur->val == er)
        {
          if (prev == NULL)
            {
              /*@-mustfree@*/
              c->vals = cur->next;
              /*@=mustfree@*/
            }
          else
            {
              prev->next = cur->next;
            }
          /*@-aliastransfer@*/ /*@-branchstate@*/
          free((void *) cur);
          /*@=aliastransfer@*/ /*@=branchstate@*/
          c->size = c->size - 1;
          return TRUE;
        }
      prev = cur;
      cur = cur->next;
    }
  return FALSE;
}

int erc_member(erc c, eref er)
{
  ercElem cur;

  cur = c->vals;
  while (cur != NULL)
    {
      if (cur->val == er)
        {
          return TRUE;
        }
      cur = cur->next;
    }
  return FALSE;
}

int erc_size(erc c)
{
  return c->size;
}

void erc_clear(erc c)
{
  ercElem cur;
  ercElem nxt;

  /* Freeing list cells through the traversal alias makes c->vals look
     released on the loop path only; the list head is reset below. */
  /*@-branchstate@*/
  cur = c->vals;
  while (cur != NULL)
    {
      nxt = cur->next;
      /*@-aliastransfer@*/
      free((void *) cur);
      /*@=aliastransfer@*/
      cur = nxt;
    }
  /*@=branchstate@*/
  c->vals = NULL;
  c->size = 0;
}

char *erc_sprint(erc c)
{
  char *result;
  char one[employeePrintSize];
  ercElem cur;
  int len;

  len = (c->size + 1) * employeePrintSize;
  result = (char *) malloc((size_t) len);
  if (result == NULL)
    {
      printf("erc_sprint: malloc returned null\n");
      exit(EXIT_FAILURE);
    }

  result[0] = '\0';
  cur = c->vals;
  while (cur != NULL)
    {
      employee_sprint(one, eref_get(cur->val));
      strcat(result, one);
      strcat(result, "\n");
      cur = cur->next;
    }
  return result;
}

void erc_final(erc c)
{
  erc_clear(c);
  free((void *) c);
}
)";

//===----------------------------------------------------------------------===//
// empset: sets of employee references, built on erc
//===----------------------------------------------------------------------===//

const char *EmpsetH = R"(#ifndef EMPSET_H
#define EMPSET_H

#include "erc.h"

typedef erc empset;

extern /*@only@*/ empset empset_create(void);
extern void empset_insert(/*@temp@*/ empset s, eref er);
extern int empset_delete(/*@temp@*/ empset s, eref er);
extern int empset_member(/*@temp@*/ empset s, eref er);
extern int empset_size(/*@temp@*/ empset s);
extern eref empset_choose(/*@temp@*/ empset s);
extern int empset_subset(/*@temp@*/ empset s1, /*@temp@*/ empset s2);
extern /*@only@*/ char *empset_sprint(/*@temp@*/ empset s);
extern void empset_final(/*@only@*/ empset s);

#endif
)";

const char *EmpsetC = R"(#include "empset.h"

empset empset_create(void)
{
  return erc_create();
}

void empset_insert(empset s, eref er)
{
  if (erc_member(s, er) == FALSE)
    {
      erc_insert(s, er);
    }
}

int empset_delete(empset s, eref er)
{
  return erc_delete(s, er);
}

int empset_member(empset s, eref er)
{
  return erc_member(s, er);
}

int empset_size(empset s)
{
  return erc_size(s);
}

eref empset_choose(empset s)
{
  assert(s->vals != NULL); /* FIX(null) */
  return erc_choose(s);
}

int empset_subset(empset s1, empset s2)
{
  ercElem cur;

  cur = s1->vals;
  while (cur != NULL)
    {
      if (erc_member(s2, cur->val) == FALSE)
        {
          return FALSE;
        }
      cur = cur->next;
    }
  return TRUE;
}

char *empset_sprint(empset s)
{
  return erc_sprint(s);
}

void empset_final(empset s)
{
  erc_final(s);
}
)";

//===----------------------------------------------------------------------===//
// dbase: the database proper
//===----------------------------------------------------------------------===//

const char *DbaseH = R"(#ifndef DBASE_H
#define DBASE_H

#include "empset.h"

#define db_OK 0
#define db_BADSSNUM 1
#define db_DUPLSSNUM 2
#define db_MISSINGSSNUM 3
#define db_SALARYMISMATCH 4

extern void db_initMod(void);
extern int db_hire(/*@temp@*/ employee *e);
extern void db_uncheckedHire(/*@temp@*/ employee *e);
extern int db_fire(int ssNum);
extern int db_promote(int ssNum);
extern int db_setSalary(int ssNum, int salary);
extern int db_query(gender g, job j, int lo, int hi, /*@temp@*/ empset s);
extern /*@only@*/ char *db_sprint(void);
extern void db_final(void);

#endif
)";

const char *DbaseC = R"(#include "dbase.h"

static /*@only@*/ erc maleMgrs;
static /*@only@*/ erc femaleMgrs;
static /*@only@*/ erc maleNonMgrs, femaleNonMgrs;
static int db_needsInit = TRUE;

/* First-call initialization; the db_needsInit guard is invisible to the
   checker, so the prior (never-allocated) table values look leaked. */
/*@-mustfree@*/
void db_initMod(void)
{
  if (db_needsInit == FALSE)
    {
      return;
    }
  db_needsInit = FALSE;
  eref_initMod();
  maleMgrs = erc_create();
  femaleMgrs = erc_create();
  maleNonMgrs = erc_create();
  femaleNonMgrs = erc_create();
}
/*@=mustfree@*/

/* The table holding an employee of this gender and job. */
static erc db_keyTable(gender g, job j)
{
  if (g == MALE)
    {
      if (j == MGR)
        {
          return maleMgrs;
        }
      return maleNonMgrs;
    }
  if (j == MGR)
    {
      return femaleMgrs;
    }
  return femaleNonMgrs;
}

/* Finds the eref of the employee with this ssNum in one table. */
static eref db_lookupIn(/*@temp@*/ erc table, int ssNum)
{
  ercElem cur;

  cur = table->vals;
  while (cur != NULL)
    {
      if (eref_get(cur->val)->ssNum == ssNum)
        {
          return cur->val;
        }
      cur = cur->next;
    }
  return erefNIL;
}

static eref db_lookup(int ssNum)
{
  eref er;

  er = db_lookupIn(maleMgrs, ssNum);
  if (er != erefNIL)
    {
      return er;
    }
  er = db_lookupIn(femaleMgrs, ssNum);
  if (er != erefNIL)
    {
      return er;
    }
  er = db_lookupIn(maleNonMgrs, ssNum);
  if (er != erefNIL)
    {
      return er;
    }
  return db_lookupIn(femaleNonMgrs, ssNum);
}

void db_uncheckedHire(/*@temp@*/ employee *e)
{
  eref er;

  er = eref_alloc();
  assert(er != erefNIL);
  eref_assign(er, e);
  erc_insert(db_keyTable(e->gen, e->j), er);
}

int db_hire(employee *e)
{
  if (e->ssNum <= 0)
    {
      return db_BADSSNUM;
    }
  if (db_lookup(e->ssNum) != erefNIL)
    {
      return db_DUPLSSNUM;
    }
  db_uncheckedHire(e);
  return db_OK;
}

int db_fire(int ssNum)
{
  eref er;
  employee *e;

  er = db_lookup(ssNum);
  if (er == erefNIL)
    {
      return FALSE;
    }
  e = eref_get(er);
  erc_delete(db_keyTable(e->gen, e->j), er);
  eref_free(er);
  return TRUE;
}

int db_promote(int ssNum)
{
  eref er;
  employee *e;

  er = db_lookup(ssNum);
  if (er == erefNIL)
    {
      return FALSE;
    }
  e = eref_get(er);
  if (e->j == MGR)
    {
      return FALSE;
    }
  erc_delete(db_keyTable(e->gen, e->j), er);
  e->j = MGR;
  erc_insert(db_keyTable(e->gen, MGR), er);
  return TRUE;
}

int db_setSalary(int ssNum, int salary)
{
  eref er;

  er = db_lookup(ssNum);
  if (er == erefNIL)
    {
      return FALSE;
    }
  eref_get(er)->salary = salary;
  return TRUE;
}

/* Adds every employee of gender g and job j with lo <= salary <= hi. */
static int db_queryIn(/*@temp@*/ erc table, int lo, int hi,
                      /*@temp@*/ empset s)
{
  ercElem cur;
  int found;
  int sal;

  found = 0;
  cur = table->vals;
  while (cur != NULL)
    {
      sal = eref_get(cur->val)->salary;
      if (sal >= lo && sal <= hi)
        {
          empset_insert(s, cur->val);
          found = found + 1;
        }
      cur = cur->next;
    }
  return found;
}

int db_query(gender g, job j, int lo, int hi, empset s)
{
  int found;

  found = 0;
  if (g == gender_ANY)
    {
      found = found + db_query(MALE, j, lo, hi, s);
      found = found + db_query(FEMALE, j, lo, hi, s);
      return found;
    }
  if (j == job_ANY)
    {
      found = found + db_queryIn(db_keyTable(g, MGR), lo, hi, s);
      found = found + db_queryIn(db_keyTable(g, NONMGR), lo, hi, s);
      return found;
    }
  return db_queryIn(db_keyTable(g, j), lo, hi, s);
}

char *db_sprint(void)
{
  char *result;
  char *part;

  result = (char *) malloc((size_t) 4096);
  if (result == NULL)
    {
      printf("db_sprint: malloc returned null\n");
      exit(EXIT_FAILURE);
    }
  result[0] = '\0';

  strcat(result, "male managers:\n");
  part = erc_sprint(maleMgrs);
  strcat(result, part);
  free((void *) part);

  strcat(result, "female managers:\n");
  part = erc_sprint(femaleMgrs);
  strcat(result, part);
  free((void *) part);

  strcat(result, "male non-managers:\n");
  part = erc_sprint(maleNonMgrs);
  strcat(result, part);
  free((void *) part);

  strcat(result, "female non-managers:\n");
  part = erc_sprint(femaleNonMgrs);
  strcat(result, part);
  free((void *) part);

  return result;
}

/* Finalization releases the global tables for good; they are rebuilt by
   the next db_initMod, which the checker cannot see. */
/*@-globstate@*/ /*@-usereleased@*/
void db_final(void)
{
  erc_final(maleMgrs);
  erc_final(femaleMgrs);
  erc_final(maleNonMgrs);
  erc_final(femaleNonMgrs);
  db_needsInit = TRUE;
}
/*@=globstate@*/ /*@=usereleased@*/
)";

//===----------------------------------------------------------------------===//
// drive: the test driver (contains the six leak sites of Section 6)
//===----------------------------------------------------------------------===//

const char *DriveC = R"(#include "dbase.h"

static void mkEmployee(employee *e, int ssNum, /*@unique@*/ char *na,
                       int salary, gender g, job j)
{
  employee_clear(e);
  e->ssNum = ssNum;
  if (employee_setName(e, na) == FALSE)
    {
      printf("drive: bad name\n");
      exit(EXIT_FAILURE);
    }
  e->salary = salary;
  e->gen = g;
  e->j = j;
}

int main(void)
{
  employee e;
  empset s1;
  empset s2;
  char *res;
  int n;

  db_initMod();

  mkEmployee(&e, 1001, "Dana", 70000, FEMALE, MGR);
  assert(db_hire(&e) == db_OK);
  mkEmployee(&e, 1002, "Alex", 50000, MALE, NONMGR);
  assert(db_hire(&e) == db_OK);
  mkEmployee(&e, 1003, "Robin", 80000, FEMALE, MGR);
  assert(db_hire(&e) == db_OK);
  mkEmployee(&e, 1004, "Gerry", 40000, MALE, NONMGR);
  assert(db_hire(&e) == db_OK);
  mkEmployee(&e, 1005, "Corey", 60000, MALE, MGR);
  assert(db_hire(&e) == db_OK);
  mkEmployee(&e, 1006, "Jesse", 45000, FEMALE, NONMGR);
  assert(db_hire(&e) == db_OK);

  /* Duplicate and invalid hires are rejected. */
  mkEmployee(&e, 1001, "Dupe", 1, MALE, NONMGR);
  assert(db_hire(&e) == db_DUPLSSNUM);
  mkEmployee(&e, -3, "Bad", 1, MALE, NONMGR);
  assert(db_hire(&e) == db_BADSSNUM);

  res = db_sprint();
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  s1 = empset_create();
  n = db_query(gender_ANY, job_ANY, 45000, 90000, s1);
  printf("query 45000..90000 found %d\n", n);
  res = empset_sprint(s1);
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  s2 = empset_create();
  n = db_query(FEMALE, MGR, 0, 100000, s2);
  printf("female managers: %d\n", n);
  assert(empset_subset(s2, s1) == TRUE);
  res = empset_sprint(s2);
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  assert(db_promote(1002) == TRUE);
  assert(db_setSalary(1002, 55000) == TRUE);
  res = db_sprint();
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  assert(db_fire(1003) == TRUE);
  res = db_sprint();
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  empset_final(s1);
  s1 = empset_create();
  n = db_query(MALE, MGR, 0, 100000, s1);
  printf("male managers: %d\n", n);
  res = empset_sprint(s1);
  printf("%s", res);
  free((void *) res); /* FIX(leak) */

  empset_final(s1);
  empset_final(s2);
  db_final();
  return 0;
}
)";

/// Removes every /*@word@*/ comment whose word is in \p Words.
std::string removeAnnotationWords(const std::string &Source,
                                  const std::vector<std::string> &Words) {
  std::string Out;
  size_t I = 0;
  while (I < Source.size()) {
    bool Matched = false;
    if (Source.compare(I, 3, "/*@") == 0) {
      for (const std::string &W : Words) {
        std::string Pattern = "/*@" + W + "@*/";
        if (Source.compare(I, Pattern.size(), Pattern) == 0) {
          I += Pattern.size();
          if (I < Source.size() && Source[I] == ' ')
            ++I;
          Matched = true;
          break;
        }
      }
    }
    if (!Matched)
      Out += Source[I++];
  }
  return Out;
}

/// Blanks (preserving line numbering) every line containing \p Marker.
std::string removeLinesContaining(const std::string &Source,
                                  const std::string &Marker) {
  std::string Out;
  size_t Start = 0;
  while (Start < Source.size()) {
    size_t End = Source.find('\n', Start);
    if (End == std::string::npos)
      End = Source.size();
    std::string Line = Source.substr(Start, End - Start);
    if (Line.find(Marker) == std::string::npos)
      Out += Line;
    Out += '\n';
    Start = End + 1;
  }
  return Out;
}

} // namespace

Program corpus::employeeDb(DbVersion Version) {
  Program P;
  struct FileEntry {
    const char *Name;
    const char *Text;
    bool IsMain;
  };
  const FileEntry Entries[] = {
      {"employee.h", EmployeeH, false}, {"employee.c", EmployeeC, true},
      {"eref.h", ErefH, false},         {"eref.c", ErefC, true},
      {"erc.h", ErcH, false},           {"erc.c", ErcC, true},
      {"empset.h", EmpsetH, false},     {"empset.c", EmpsetC, true},
      {"dbase.h", DbaseH, false},       {"dbase.c", DbaseC, true},
      {"drive.c", DriveC, true},
  };

  const std::vector<std::string> AllocWords = {"only", "out", "unique",
                                               "keep", "owned", "dependent",
                                               "exposed", "observer"};

  for (const FileEntry &E : Entries) {
    std::string Text = E.Text;
    switch (Version) {
    case DbVersion::Fixed:
      P.Name = "db_fixed";
      break;
    case DbVersion::OnlyAdded:
      P.Name = "db_only";
      Text = removeLinesContaining(Text, "FIX(leak)");
      break;
    case DbVersion::NullAdded:
      P.Name = "db_null";
      Text = removeLinesContaining(Text, "FIX(leak)");
      Text = removeAnnotationWords(Text, AllocWords);
      // Suppressions written during the allocation iteration do not exist
      // yet at this stage.
      Text = removeAnnotationWords(
          Text, {"-mustfree", "=mustfree", "-aliastransfer",
                 "=aliastransfer"});
      break;
    case DbVersion::Unannotated:
      P.Name = "db_bare";
      Text = removeLinesContaining(Text, "FIX(leak)");
      Text = removeLinesContaining(Text, "FIX(null)");
      Text = stripAnnotations(Text);
      break;
    }
    P.Files.add(E.Name, Text);
    if (E.IsMain)
      P.MainFiles.push_back(E.Name);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Specification-mode interfaces (the paper's "300 lines of interface
// specifications"): the same external contracts expressed in minimal LCL,
// with bare annotation words and behavioral clauses the checker skips.
//===----------------------------------------------------------------------===//

namespace {

const char *EmployeeLcl = R"(imports stdlib;

#define maxEmployeeName 24
#define employeePrintSize 64

typedef enum { MALE, FEMALE, gender_ANY } gender;
typedef enum { MGR, NONMGR, job_ANY } job;

typedef struct {
  int ssNum;
  char name[maxEmployeeName];
  int salary;
  gender gen;
  job j;
} employee;

int employee_setName(employee *e, unique char *na) {
  requires nullTerminated(na);
  ensures result = lengthOk(na);
}

int employee_equal(temp employee *e1, temp employee *e2) {
  ensures result = sameContents(e1, e2);
}

void employee_sprint(out unique char *s, temp employee *e) {
  requires maxIndex(s) >= employeePrintSize;
  modifies s;
}

void employee_clear(employee *e) {
  modifies e;
}

void format_int(char *s, int n) {
  requires n >= 0;
  modifies s;
}
)";

const char *ErefLcl = R"(imports employee;

typedef int eref;

#define erefNIL -1

void eref_initMod(void) {
  ensures poolInitialized;
}

eref eref_alloc(void);

void eref_free(eref er) {
  requires validEref(er);
}

void eref_assign(eref er, temp employee *e) {
  requires validEref(er);
  modifies pool;
}

exposed employee *eref_get(eref er) {
  requires validEref(er);
}
)";

const char *ErcLcl = R"(imports eref;

typedef null struct _ercElem {
  eref val;
  struct _ercElem *next;
} *ercElem;

typedef struct {
  null only ercElem vals;
  int size;
} *erc;

#define erc_choose(c) ((c->vals)->val)

only erc erc_create(void) {
  ensures isEmpty(result);
}

void erc_insert(temp erc c, eref er) {
  modifies c;
}

int erc_delete(temp erc c, eref er) {
  modifies c;
}

int erc_member(temp erc c, eref er);

int erc_size(temp erc c);

void erc_clear(temp erc c) {
  modifies c;
}

only char *erc_sprint(temp erc c);

void erc_final(only erc c) {
  modifies c;
}
)";

const char *EmpsetLcl = R"(imports erc;

typedef erc empset;

only empset empset_create(void);

void empset_insert(temp empset s, eref er) {
  modifies s;
}

int empset_delete(temp empset s, eref er) {
  modifies s;
}

int empset_member(temp empset s, eref er);

int empset_size(temp empset s);

eref empset_choose(temp empset s) {
  requires notEmpty(s);
}

int empset_subset(temp empset s1, temp empset s2);

only char *empset_sprint(temp empset s);

void empset_final(only empset s);
)";

const char *DbaseLcl = R"(imports empset;

#define db_OK 0
#define db_BADSSNUM 1
#define db_DUPLSSNUM 2
#define db_MISSINGSSNUM 3
#define db_SALARYMISMATCH 4

void db_initMod(void) {
  ensures tablesInitialized;
}

int db_hire(temp employee *e);

void db_uncheckedHire(temp employee *e) {
  requires validEmployee(e);
}

int db_fire(int ssNum);

int db_promote(int ssNum);

int db_setSalary(int ssNum, int salary);

int db_query(gender g, job j, int lo, int hi, temp empset s) {
  modifies s;
}

only char *db_sprint(void);

void db_final(void);
)";

} // namespace

Program corpus::employeeDbSpecMode() {
  // The fixed implementations, unchanged, with their external interfaces
  // supplied by .lcl specifications instead of annotated headers. The
  // implementations' #include "x.h" lines resolve to nothing (the headers
  // are absent); macros and types flow from the specifications, which are
  // processed first.
  Program P;
  P.Name = "db_specmode";
  const std::pair<const char *, const char *> Specs[] = {
      {"employee.lcl", EmployeeLcl}, {"eref.lcl", ErefLcl},
      {"erc.lcl", ErcLcl},           {"empset.lcl", EmpsetLcl},
      {"dbase.lcl", DbaseLcl},
  };
  for (const auto &[Name, Text] : Specs) {
    P.Files.add(Name, Text);
    P.MainFiles.push_back(Name);
  }
  const std::pair<const char *, const char *> Impls[] = {
      {"employee.c", EmployeeC}, {"eref.c", ErefC},   {"erc.c", ErcC},
      {"empset.c", EmpsetC},     {"dbase.c", DbaseC}, {"drive.c", DriveC},
  };
  for (const auto &[Name, Text] : Impls) {
    P.Files.add(Name, Text);
    P.MainFiles.push_back(Name);
  }
  return P;
}
