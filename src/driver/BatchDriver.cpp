//===--- BatchDriver.cpp - Resilient parallel corpus checking -------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "pp/FrontendCache.h"
#include "support/Journal.h"
#include "support/MonotonicTime.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace memlint;

const char *memlint::fileOutcomeName(FileOutcomeKind Kind) {
  switch (Kind) {
  case FileOutcomeKind::Ok:
    return "ok";
  case FileOutcomeKind::Degraded:
    return "degraded";
  case FileOutcomeKind::Timeout:
    return "timeout";
  case FileOutcomeKind::Crash:
    return "crash";
  }
  return "unknown";
}

void memlint::halveLimits(FlagSet &Flags) {
  // 0 means unlimited and 1 is the floor; both are kept as-is, so repeated
  // halving converges instead of accidentally lifting a limit.
  for (const LimitSpec &Spec : limitSpecs()) {
    unsigned Value = Flags.limits().*(Spec.Field);
    if (Value > 1)
      Flags.limits().*(Spec.Field) = Value / 2;
  }
}

double memlint::watchdogTickMs(unsigned DeadlineMs) {
  const double Tick = static_cast<double>(DeadlineMs) / 8.0;
  // The negated comparison also rejects any non-finite value, so the
  // returned interval is always a sleepable duration.
  if (!(Tick >= 1.0))
    return 1.0;
  return Tick > 50.0 ? 50.0 : Tick;
}

namespace {

/// The deadline watchdog: one background thread that periodically scans
/// the armed (token, deadline) slots and raises overdue tokens with reason
/// "deadline". Deadlines are on the monotonic clock, so wall-clock steps
/// cannot fire (or starve) them. With FileDeadlineMs == 0 the watchdog is
/// fully inert — no thread, arm/disarm are no-ops.
class Watchdog {
public:
  explicit Watchdog(unsigned DeadlineMs) : DeadlineMs(DeadlineMs) {
    if (DeadlineMs != 0)
      Thread = std::thread([this] { loop(); });
  }

  ~Watchdog() { stop(); }

  void stop() {
    if (!Thread.joinable())
      return;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    Cv.notify_all();
    Thread.join();
  }

  /// Starts \p Token's deadline clock. \returns a slot id for disarm().
  unsigned long arm(CancelToken *Token) {
    if (DeadlineMs == 0)
      return 0;
    std::lock_guard<std::mutex> Lock(Mu);
    unsigned long Id = ++NextId;
    Active[Id] = {Token, monotonicNowMs() + DeadlineMs};
    return Id;
  }

  /// Stops tracking a slot. Must be called before the token is destroyed.
  void disarm(unsigned long Id) {
    if (DeadlineMs == 0 || Id == 0)
      return;
    std::lock_guard<std::mutex> Lock(Mu);
    Active.erase(Id);
  }

private:
  struct Slot {
    CancelToken *Token;
    double DeadlineAtMs;
  };

  void loop() {
    // Tick fast enough that overshoot is a small fraction of the deadline,
    // but never busy-spin on very tight deadlines.
    const double TickMs = watchdogTickMs(DeadlineMs);
    std::unique_lock<std::mutex> Lock(Mu);
    while (!Stopping) {
      Cv.wait_for(Lock, std::chrono::duration<double, std::milli>(TickMs));
      if (Stopping)
        break;
      const double NowMs = monotonicNowMs();
      for (auto &[Id, S] : Active)
        if (NowMs >= S.DeadlineAtMs)
          S.Token->cancel("deadline"); // idempotent; slot stays until disarm
    }
  }

  const unsigned DeadlineMs;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  unsigned long NextId = 0;
  std::map<unsigned long, Slot> Active;
  std::thread Thread;
};

bool hasReason(const std::vector<std::string> &Reasons,
               const std::string &Needle) {
  return std::find(Reasons.begin(), Reasons.end(), Needle) != Reasons.end();
}

JournalEntry entryFromOutcome(const FileOutcome &O) {
  JournalEntry E;
  E.File = O.File;
  E.Status = fileOutcomeName(O.Kind);
  E.Reasons = O.Reasons;
  E.Attempts = O.Attempts;
  E.Anomalies = O.Anomalies;
  E.Suppressed = O.Suppressed;
  E.WallMs = O.WallMs;
  E.Diagnostics = O.Diagnostics;
  E.Classes = O.Classes;
  E.Metrics = O.Metrics;
  E.Inferred = O.Inferred;
  return E;
}

std::optional<FileOutcome> outcomeFromEntry(const JournalEntry &E) {
  FileOutcome O;
  if (E.Status == "ok")
    O.Kind = FileOutcomeKind::Ok;
  else if (E.Status == "degraded")
    O.Kind = FileOutcomeKind::Degraded;
  else if (E.Status == "timeout")
    O.Kind = FileOutcomeKind::Timeout;
  else if (E.Status == "crash")
    O.Kind = FileOutcomeKind::Crash;
  else
    return std::nullopt;
  O.File = E.File;
  O.Reasons = E.Reasons;
  O.Attempts = E.Attempts;
  O.Anomalies = E.Anomalies;
  O.Suppressed = E.Suppressed;
  O.WallMs = E.WallMs;
  O.Diagnostics = E.Diagnostics;
  O.Classes = E.Classes;
  O.Metrics = E.Metrics;
  O.Inferred = E.Inferred;
  O.Resumed = true;
  return O;
}

} // namespace

std::string BatchResult::render() const {
  std::string Out;
  for (const FileOutcome &O : Outcomes)
    Out += O.Diagnostics;
  return Out;
}

std::string BatchResult::summary() const {
  std::string Out = std::to_string(Outcomes.size()) + " file(s): " +
                    std::to_string(OkCount) + " ok, " +
                    std::to_string(DegradedCount) + " degraded, " +
                    std::to_string(TimeoutCount) + " timeout, " +
                    std::to_string(CrashCount) + " crash";
  if (ResumedCount != 0 || RetriedCount != 0)
    Out += " (" + std::to_string(ResumedCount) + " resumed, " +
           std::to_string(RetriedCount) + " retried)";
  Out += "; " + std::to_string(TotalAnomalies) + " anomaly(ies), " +
         std::to_string(TotalSuppressed) + " suppressed";
  return Out;
}

BatchResult BatchDriver::run(const VFS &Files,
                             const std::vector<std::string> &Names) {
  const double StartMs = monotonicNowMs();
  const size_t Count = Names.size();

  BatchResult Result;
  Result.Outcomes.resize(Count);

  //===--- journal: recover, verify, compact ------------------------------===//

  const std::string Checksum = fnv1aHex(Names);
  const std::string PolicyFingerprint = checkOptionsFingerprint(Opts.Check);
  std::map<std::string, JournalEntry> Recovered;
  bool JournalOn = !Opts.JournalPath.empty();
  if (JournalOn && Opts.Resume) {
    if (std::optional<std::string> Text = readFileText(Opts.JournalPath)) {
      JournalContents Journal = parseJournal(*Text);
      Result.JournalCorruptLines = Journal.CorruptLines;
      if (!Journal.HeaderValid) {
        // A torn or garbage header is what a kill during the very first
        // write leaves behind: recoverable damage, so degrade to a cold
        // run rather than refusing.
        Result.JournalNote =
            "journal header unreadable; checking from scratch";
      } else if (Journal.Checksum != Checksum) {
        Result.JournalRejected = true;
        Result.JournalNote =
            "--resume rejected: journal '" + Opts.JournalPath +
            "' records corpus " + Journal.Checksum +
            " but this invocation checks corpus " + Checksum +
            "; rerun without --resume to overwrite it";
      } else if (Journal.FlagsFingerprint.empty()) {
        Result.JournalRejected = true;
        Result.JournalNote =
            "--resume rejected: journal '" + Opts.JournalPath +
            "' records no checking-policy fingerprint, so its results "
            "cannot be verified against this invocation's flags; rerun "
            "without --resume to overwrite it";
      } else if (Journal.FlagsFingerprint != PolicyFingerprint) {
        Result.JournalRejected = true;
        Result.JournalNote =
            "--resume rejected: journal '" + Opts.JournalPath +
            "' was written under checking policy " +
            Journal.FlagsFingerprint + " but this invocation uses " +
            PolicyFingerprint +
            "; rerun without --resume to overwrite it";
      } else {
        // Later entries win: a retried file's final record supersedes any
        // earlier one.
        for (JournalEntry &E : Journal.Entries)
          Recovered[E.File] = std::move(E);
      }
    } else {
      Result.JournalNote =
          "cannot read journal '" + Opts.JournalPath + "'; starting fresh";
    }
    if (Result.JournalRejected) {
      // Replaying would be silent reuse of results from a different corpus
      // or policy; checking anyway would clobber a journal the caller
      // explicitly asked to resume. Refuse loudly and touch nothing.
      Result.Outcomes.clear();
      Result.WallMs = monotonicNowMs() - StartMs;
      return Result;
    }
  }
  if (JournalOn) {
    // Compaction: rewrite header + surviving entries before appending, so
    // a trailing partial line left by a kill cannot merge with (and
    // corrupt) the first entry this run appends.
    std::string Text =
        journalHeaderLine(Checksum, Count, PolicyFingerprint) + "\n";
    for (const std::string &Name : Names) {
      auto It = Recovered.find(Name);
      if (It != Recovered.end())
        Text += journalEntryLine(It->second) + "\n";
    }
    if (!writeFileText(Opts.JournalPath, Text)) {
      Result.JournalNote = "cannot write journal '" + Opts.JournalPath +
                           "'; journaling disabled for this run";
      JournalOn = false;
    }
  }

  //===--- shared front end (DESIGN.md §5c) --------------------------------===//

  // One single-threaded warmup pass populates the batch-shared expansion
  // memo, spelling interner, and read cache; publish() then freezes the
  // context and workers read it lock-free for the rest of the batch. The
  // warmup runs unconditionally when enabled — even on resume with the
  // first file already recovered — so collected counters are identical
  // across cold, resumed, and -jN runs. Batches of fewer than two files
  // (the check service's shape) have nothing to share and skip it.
  std::unique_ptr<FrontendContext> Shared;
  MetricsSnapshot WarmupMetrics;
  if (Opts.SharedFrontend && Opts.Check.FrontendCache && Count >= 2) {
    Shared = std::make_unique<FrontendContext>();
    CheckOptions WarmOpts = Opts.Check;
    WarmOpts.CollectMetrics = Opts.CollectMetrics;
    WarmupMetrics =
        warmFrontendContext(*Shared, Files, Names.front(), WarmOpts);
    Shared->publish();
  }

  //===--- shared worker state --------------------------------------------===//

  // Outcomes/Filled/NextFlush are guarded by FlushMu; the journal file by
  // JournalMu (kept separate so slow disk appends never serialize output
  // flushing).
  std::vector<char> Filled(Count, 0);
  std::mutex FlushMu;
  size_t NextFlush = 0;
  std::mutex JournalMu;
  std::atomic<bool> JournalWriteFailed{false};
  std::atomic<size_t> NextIndex{0};
  Watchdog Dog(Opts.FileDeadlineMs);

  // Flushes the maximal ready prefix in input order. Caller holds FlushMu.
  auto flushReadyLocked = [&] {
    while (NextFlush < Count && Filled[NextFlush]) {
      if (Opts.OnFileOutcome)
        Opts.OnFileOutcome(Result.Outcomes[NextFlush]);
      ++NextFlush;
    }
  };

  // Pre-fill outcomes recovered from the journal.
  {
    std::lock_guard<std::mutex> Lock(FlushMu);
    for (size_t I = 0; I < Count; ++I) {
      auto It = Recovered.find(Names[I]);
      if (It == Recovered.end())
        continue;
      if (std::optional<FileOutcome> O = outcomeFromEntry(It->second)) {
        Result.Outcomes[I] = std::move(*O);
        Filled[I] = 1;
      }
    }
    flushReadyLocked();
  }

  //===--- the retry ladder for one file ----------------------------------===//

  auto checkOne = [&](const std::string &Name, unsigned WorkerId) {
    FileOutcome Outcome;
    Outcome.File = Name;
    // One recorder per file attempt (tagged with the worker id); the
    // driver flushes per-file buffers in input order, see tallies below.
    TraceRecorder Recorder;
    Recorder.setTid(WorkerId);
    TraceRecorder *Trace = Opts.CollectTrace ? &Recorder : nullptr;
    CheckOptions Tightened = Opts.Check; // copy; halved on each retry
    Tightened.Frontend = Shared.get();   // null when no shared front end
    if (Opts.CollectMetrics)
      Tightened.CollectMetrics = true;
    Tightened.Trace = Trace;
    const unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
    double SpentMs = 0;
    double FirstStartMs = 0;
    for (unsigned Attempt = 1;; ++Attempt) {
      // Final attempt only, mirroring the metrics discipline below: a
      // retried file's trace describes the run that produced its recorded
      // diagnostics, not the abandoned attempts.
      Recorder.clear();
      CancelToken Token;
      const unsigned long Slot = Dog.arm(&Token);
      const double AttemptStartMs = monotonicNowMs();
      if (Attempt == 1)
        FirstStartMs = AttemptStartMs;
      if (Opts.TestStallMs) {
        if (unsigned StallMs = Opts.TestStallMs(Name))
          std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
      }
      CheckOptions PerAttempt = Tightened;
      PerAttempt.Cancel = &Token;
      if (Opts.OnBeforeAttempt)
        Opts.OnBeforeAttempt(Name, Attempt, PerAttempt);
      CheckResult R = Checker::checkFiles(Files, {Name}, PerAttempt);
      Dog.disarm(Slot);
      SpentMs += monotonicNowMs() - AttemptStartMs;

      const bool TimedOut = hasReason(R.DegradationReasons, "deadline");
      const bool Crashed = R.Status == CheckStatus::InternalError;
      if ((TimedOut || Crashed) && Attempt < MaxAttempts) {
        halveLimits(Tightened.Flags);
        continue;
      }

      Outcome.Kind = TimedOut    ? FileOutcomeKind::Timeout
                     : Crashed   ? FileOutcomeKind::Crash
                     : R.Status == CheckStatus::Degraded
                                 ? FileOutcomeKind::Degraded
                                 : FileOutcomeKind::Ok;
      Outcome.Reasons = R.DegradationReasons;
      Outcome.Attempts = Attempt;
      Outcome.Anomalies = R.anomalyCount();
      Outcome.Suppressed = R.SuppressedCount;
      Outcome.WallMs = SpentMs;
      Outcome.Diagnostics = R.render();
      for (const Diagnostic &D : R.Diagnostics)
        if (D.Sev == Severity::Anomaly)
          ++Outcome.Classes[checkIdFlagName(D.Id)];
      Outcome.Inferred = std::move(R.InferredHeader);
      // Final attempt only: a retried file's metrics describe the run that
      // produced its recorded diagnostics, not the abandoned attempts.
      Outcome.Metrics = std::move(R.Metrics);
      // Per-file batch latency, retries included. Lives on the outcome's
      // snapshot so it is journaled and survives --resume aggregation.
      if (Opts.CollectMetrics)
        Outcome.Metrics.Histograms["hist.batch.file"].record(SpentMs);
      if (Trace) {
        TraceEvent Span;
        Span.Ph = 'X';
        Span.Cat = "batch";
        Span.Name = "file";
        Span.TsMs = FirstStartMs;
        Span.DurMs = SpentMs;
        Span.Args.emplace_back("file", Name);
        Span.Args.emplace_back("outcome", fileOutcomeName(Outcome.Kind));
        Span.Args.emplace_back("attempts", std::to_string(Attempt));
        std::string Reasons;
        for (const std::string &Reason : Outcome.Reasons) {
          if (!Reasons.empty())
            Reasons += ",";
          Reasons += Reason;
        }
        if (!Reasons.empty())
          Span.Args.emplace_back("reasons", Reasons);
        Recorder.record(std::move(Span));
        Outcome.Trace = Recorder.take();
      }
      return Outcome;
    }
  };

  //===--- worker pool -----------------------------------------------------===//

  auto worker = [&](unsigned WorkerId) {
    for (;;) {
      const size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      {
        std::lock_guard<std::mutex> Lock(FlushMu);
        if (Filled[I])
          continue; // recovered from the journal
      }
      FileOutcome Outcome = checkOne(Names[I], WorkerId);
      if (JournalOn) {
        const std::string Line = journalEntryLine(entryFromOutcome(Outcome));
        std::lock_guard<std::mutex> Lock(JournalMu);
        if (!appendJournalLine(Opts.JournalPath, Line))
          JournalWriteFailed.store(true, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> Lock(FlushMu);
      Result.Outcomes[I] = std::move(Outcome);
      Filled[I] = 1;
      flushReadyLocked();
    }
  };

  const size_t ThreadCount =
      std::min<size_t>(std::max(1u, Opts.Jobs), std::max<size_t>(1, Count));
  std::vector<std::thread> Pool;
  Pool.reserve(ThreadCount);
  for (size_t I = 0; I < ThreadCount; ++I)
    Pool.emplace_back(worker, static_cast<unsigned>(I));
  for (std::thread &T : Pool)
    T.join();
  Dog.stop();

  //===--- tallies ---------------------------------------------------------===//

  if (JournalWriteFailed.load() && Result.JournalNote.empty())
    Result.JournalNote = "journal appends to '" + Opts.JournalPath +
                         "' failed; resume coverage is incomplete";
  for (const FileOutcome &O : Result.Outcomes) {
    switch (O.Kind) {
    case FileOutcomeKind::Ok:
      ++Result.OkCount;
      break;
    case FileOutcomeKind::Degraded:
      ++Result.DegradedCount;
      break;
    case FileOutcomeKind::Timeout:
      ++Result.TimeoutCount;
      break;
    case FileOutcomeKind::Crash:
      ++Result.CrashCount;
      break;
    }
    if (O.Resumed)
      ++Result.ResumedCount;
    if (O.Attempts > 1)
      ++Result.RetriedCount;
    Result.TotalAnomalies += O.Anomalies;
    Result.TotalSuppressed += O.Suppressed;
  }
  if (Opts.CollectMetrics) {
    // Fold in input order: the structure (and every counter value) is then
    // identical across job counts, independent of completion order.
    for (const FileOutcome &O : Result.Outcomes)
      Result.Metrics.merge(O.Metrics);
    auto &C = Result.Metrics.Counters;
    // The warmup pass's metrics are kept apart under a "warmup." prefix:
    // per-file counters stay comparable with and without a shared front
    // end, and the warmup's cost stays visible.
    for (const auto &[Key, Value] : WarmupMetrics.Counters)
      C["warmup." + Key] += Value;
    for (const auto &[Key, Value] : WarmupMetrics.TimersMs)
      Result.Metrics.TimersMs["warmup." + Key] += Value;
    C["batch.files"] += Count;
    C["batch.ok"] += Result.OkCount;
    C["batch.degraded"] += Result.DegradedCount;
    C["batch.timeout"] += Result.TimeoutCount;
    C["batch.crash"] += Result.CrashCount;
    C["batch.resumed"] += Result.ResumedCount;
    C["batch.retried"] += Result.RetriedCount;
    C["batch.anomalies"] += Result.TotalAnomalies;
    C["batch.suppressed"] += Result.TotalSuppressed;
    C["journal.skipped"] += Result.JournalCorruptLines;
  }
  if (Opts.CollectTrace) {
    // Same input-order flush as the metrics fold: the merged event
    // sequence is independent of completion order, so a -jN trace carries
    // the same (category, name, args) sequence as -j1.
    for (FileOutcome &O : Result.Outcomes) {
      Result.Trace.insert(Result.Trace.end(),
                          std::make_move_iterator(O.Trace.begin()),
                          std::make_move_iterator(O.Trace.end()));
      O.Trace.clear();
    }
  }
  Result.WallMs = monotonicNowMs() - StartMs;
  return Result;
}
