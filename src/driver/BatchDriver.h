//===--- BatchDriver.h - Resilient parallel corpus checking -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch driver checks a corpus of files on a worker pool, surviving
/// the pathological cases that corpus-scale runs inevitably contain. Its
/// contract, in the order the guarantees compose:
///
/// * Isolation: each file is checked as its own run (prelude included), so
///   one file's state explosion, parse disaster, or crash cannot leak into
///   another file's results.
/// * Deadlines: a monotonic watchdog raises each worker's CancelToken when
///   its per-file wall-clock deadline expires; the pipeline notices at the
///   next budget checkpoint and the run ends Degraded("deadline") — no
///   thread is ever killed.
/// * Retry with degradation: a file that times out or reports
///   CheckStatus::InternalError is retried once with every resource limit
///   halved; if that also fails, the file is recorded as degraded with a
///   "timeout" or "crash" outcome and the batch moves on. Exit status and
///   anomaly totals reflect only real check findings.
/// * Resumability: outcomes are appended to a run journal (JSONL with a
///   corpus-checksum header, see support/Journal.h) as they complete, so a
///   killed batch can be resumed with completed files skipped and their
///   recorded output replayed.
/// * Determinism: workers buffer their per-file diagnostics; the driver
///   flushes them in input order, so output at -j8 is byte-identical to
///   -j1.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_DRIVER_BATCHDRIVER_H
#define MEMLINT_DRIVER_BATCHDRIVER_H

#include "checker/Checker.h"
#include "support/VFS.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace memlint {

/// Final classification of one file in a batch. Ok and Degraded mirror
/// CheckStatus; Timeout and Crash are the retry ladder's terminal rungs
/// (the file failed the same way twice).
enum class FileOutcomeKind {
  Ok,       ///< full analysis
  Degraded, ///< a resource budget was hit; partial results kept
  Timeout,  ///< deadline expired on every attempt; partial results kept
  Crash,    ///< an internal error was contained on every attempt
};

/// \returns a stable lower-case name ("ok", "degraded", "timeout",
/// "crash") — the journal's status vocabulary.
const char *fileOutcomeName(FileOutcomeKind Kind);

/// One file's result in a batch run.
struct FileOutcome {
  std::string File;
  FileOutcomeKind Kind = FileOutcomeKind::Ok;
  /// Degradation reasons of the final attempt, deduplicated and sorted
  /// (includes "deadline" for timeouts, "internal-error" for crashes).
  std::vector<std::string> Reasons;
  unsigned Attempts = 1;  ///< 2 when the retry ladder was used
  unsigned Anomalies = 0; ///< real findings (internal errors excluded)
  unsigned Suppressed = 0;
  double WallMs = 0; ///< wall clock across all attempts (monotonic)
  /// The file's rendered diagnostics, exactly as a sequential run would
  /// print them. Buffered so the driver can flush in input order.
  std::string Diagnostics;
  /// Anomaly counts by check-class flag name ("mustfree", ...), from the
  /// final attempt. Journaled, so resumed differential runs classify
  /// findings per class without re-checking or parsing rendered text.
  std::map<std::string, unsigned> Classes;
  /// Per-file phase timings and counters (the final attempt's); empty
  /// unless BatchOptions::CollectMetrics was set. Journaled, so resumed
  /// outcomes keep their metrics and aggregation stays complete.
  MetricsSnapshot Metrics;
  /// The file's inferred annotated interface (CheckResult::InferredHeader);
  /// empty unless CheckOptions::Infer was set. Journaled, so a resumed
  /// `-infer` batch reassembles a byte-identical combined header.
  std::string Inferred;
  /// The final attempt's trace events (the check pipeline's spans and
  /// instants plus one closing "file" span), tagged with the recording
  /// worker's id; populated only under BatchOptions::CollectTrace, and
  /// moved into BatchResult::Trace when run() returns. Not journaled —
  /// resumed outcomes carry no trace.
  std::vector<TraceEvent> Trace;
  /// True if this outcome was recovered from a resumed journal instead of
  /// being re-checked.
  bool Resumed = false;
};

/// Configuration for one batch run.
struct BatchOptions {
  /// Base options for every per-file check run (flags are copied per
  /// file; the retry ladder halves the copy's limits, never the base).
  CheckOptions Check;
  /// Worker threads. Values < 1 are treated as 1.
  unsigned Jobs = 1;
  /// Build a batch-shared front end (pp/FrontendCache.h): one
  /// single-threaded warmup pass preprocesses the prelude and the first
  /// input, then every worker reuses its memoized #include expansions,
  /// interned spellings, and cached reads lock-free. Requires
  /// Check.FrontendCache; batches of fewer than two files never build one
  /// (nothing to share). Purely a speed toggle — diagnostics and counters
  /// are byte-identical either way except for the warmup.* metrics block
  /// and the cache/interner counters themselves.
  bool SharedFrontend = true;
  /// Per-file wall-clock deadline in milliseconds; 0 disables the
  /// watchdog entirely.
  unsigned FileDeadlineMs = 0;
  /// Total attempts per file (first try + retries). The retry ladder
  /// halves every nonzero resource limit on each retry.
  unsigned MaxAttempts = 2;
  /// Journal file path; empty disables journaling.
  std::string JournalPath;
  /// Load JournalPath first and skip files with valid entries. The
  /// journal is compacted (header + surviving entries rewritten) before
  /// new entries are appended, so trailing damage from a kill cannot
  /// corrupt the resumed run's appends.
  bool Resume = false;
  /// Collect per-file metrics (each worker run gets its own registry) and
  /// aggregate them into BatchResult::Metrics. Off by default.
  bool CollectMetrics = false;
  /// Collect a span timeline (each worker's file attempt records into its
  /// own TraceRecorder; per-file buffers are flushed into
  /// BatchResult::Trace in input order, so the event sequence modulo
  /// timestamps/tids is identical across -jN). Off by default: the
  /// disabled path is the same null-pointer guard as metrics.
  bool CollectTrace = false;
  /// Called right before each per-file check attempt with the attempt's
  /// options (cancel token already attached, limits already tightened by
  /// the retry ladder). The fuzz harness uses it to arm per-file fault
  /// injectors; the installed injector must outlive the attempt. Called
  /// from worker threads — must be thread-safe.
  std::function<void(const std::string &File, unsigned Attempt,
                     CheckOptions &Options)>
      OnBeforeAttempt;
  /// Called once per file in input order as results become flushable;
  /// runs under the driver's flush lock (keep it cheap). Used by the CLI
  /// to stream output while preserving sequential byte-identity.
  std::function<void(const FileOutcome &)> OnFileOutcome;
  /// Test/bench hook: per-file artificial stall in milliseconds, applied
  /// inside the deadline window before checking. Simulates slow I/O (and
  /// lets scaling benches measure driver concurrency independently of
  /// core count); 0 or an unset function means no stall.
  std::function<unsigned(const std::string &File)> TestStallMs;
};

/// Aggregate result of a batch run.
struct BatchResult {
  std::vector<FileOutcome> Outcomes; ///< input order, one per input file
  unsigned OkCount = 0;
  unsigned DegradedCount = 0;
  unsigned TimeoutCount = 0;
  unsigned CrashCount = 0;
  unsigned ResumedCount = 0; ///< outcomes recovered from the journal
  unsigned RetriedCount = 0; ///< files that needed more than one attempt
  unsigned TotalAnomalies = 0;
  unsigned TotalSuppressed = 0;
  double WallMs = 0; ///< whole batch, monotonic
  /// Journal lines discarded as corrupt while resuming (0 for clean runs).
  /// Surfaced as the journal.skipped counter when metrics are collected.
  unsigned JournalCorruptLines = 0;
  /// Non-fatal journal trouble ("journal header mismatch; checking from
  /// scratch", "cannot write journal ..."); empty when all is well.
  std::string JournalNote;
  /// True when --resume refused to run: the journal's header was readable
  /// but records a different corpus checksum or a different checking-policy
  /// fingerprint (see checkOptionsFingerprint). Nothing was checked —
  /// Outcomes is empty — and JournalNote carries the precise mismatch.
  /// Silent reuse of such a journal would replay results that this
  /// invocation could never have produced; an unreadable or torn header,
  /// by contrast, still degrades to checking from scratch.
  bool JournalRejected = false;
  /// Per-file metrics folded in input order, plus batch.* outcome counters;
  /// empty unless BatchOptions::CollectMetrics was set. The fold order is
  /// fixed, so counters are identical across -j1 and -jN (timer values are
  /// wall clock and vary run to run).
  MetricsSnapshot Metrics;
  /// Per-file trace events concatenated in input order; empty unless
  /// BatchOptions::CollectTrace was set. The (category, name, args)
  /// sequence is identical across -j1 and -jN; timestamps, durations, and
  /// worker ids (tid) vary. Render with renderChromeTrace.
  std::vector<TraceEvent> Trace;

  /// Every file's diagnostics concatenated in input order — byte-identical
  /// across job counts.
  std::string render() const;
  /// One-line human summary ("12 files: 10 ok, 1 degraded, 1 timeout...").
  std::string summary() const;
};

/// Checks a corpus of files in parallel. Stateless apart from options;
/// run() may be called repeatedly.
class BatchDriver {
public:
  explicit BatchDriver(BatchOptions Options) : Opts(std::move(Options)) {}

  /// Checks \p Names (resolved against \p Files) and returns per-file
  /// outcomes in input order. Never throws; infrastructure trouble is
  /// reported through outcome kinds and JournalNote.
  BatchResult run(const VFS &Files, const std::vector<std::string> &Names);

private:
  BatchOptions Opts;
};

/// Halves every nonzero resource limit in \p Flags (minimum 1) — the
/// retry ladder's "tightened limits" step. Exposed for tests.
void halveLimits(FlagSet &Flags);

/// The watchdog thread's poll interval for a given per-file deadline:
/// DeadlineMs / 8, hard-clamped to [1, 50] milliseconds. The result is
/// always a sane wait_for interval — never zero, subnormal, or non-finite —
/// even for DeadlineMs values of 0, 1, or UINT_MAX, so the watchdog can
/// neither busy-spin nor sleep past a whole deadline window. Exposed for
/// tests.
double watchdogTickMs(unsigned DeadlineMs);

} // namespace memlint

#endif // MEMLINT_DRIVER_BATCHDRIVER_H
