//===--- Fuzzer.cpp - Differential fuzzing harness ------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "driver/BatchDriver.h"
#include "fuzz/Minimizer.h"
#include "interp/Interpreter.h"
#include "service/ResultCache.h"
#include "support/Journal.h"
#include "support/Json.h"
#include "support/MonotonicTime.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

using namespace memlint;
using namespace memlint::fuzz;
using corpus::BugKind;

//===----------------------------------------------------------------------===//
// Classification maps
//===----------------------------------------------------------------------===//

namespace {

/// Maps a static check-class flag name onto the set of defect classes it
/// witnesses. Classes with no run-time observable (annotation consistency,
/// branch state, ...) map to nothing and stay out of the differential score.
/// "usereleased" witnesses both use-after-free and double-free: the checker
/// reports the second free of dead storage as a use of released storage, so
/// a usereleased report legitimately covers either runtime observation.
std::set<BugKind> staticClassWitnesses(const std::string &Flag) {
  if (Flag == "nullderef" || Flag == "nullpass" || Flag == "nullret")
    return {BugKind::NullDeref};
  if (Flag == "mustfree")
    return {BugKind::Leak};
  if (Flag == "usereleased")
    return {BugKind::UseAfterFree, BugKind::DoubleFree};
  if (Flag == "doublefree")
    return {BugKind::DoubleFree};
  if (Flag == "usedef" || Flag == "compdef")
    return {BugKind::UndefRead};
  return {};
}

/// The oracle's verdict for one program.
struct OracleOutcome {
  bool Refused = false;      ///< degraded parse; run was refused
  bool FrontEndThrew = false;///< front end raised (harness-contained)
  bool InternalTrap = false; ///< interpreter contained an internal error
  bool Completed = false;
  std::set<BugKind> Kinds;   ///< observed defect classes
};

/// Parses and executes \p Source, folding RuntimeErrors into BugKinds.
/// \p ExpectGlobalLeak resolves the LeakAtExit ambiguity (a heap leak and
/// an unreleased global look identical at exit).
OracleOutcome runOracle(const std::string &Source, bool ExpectGlobalLeak,
                        unsigned long MaxSteps) {
  OracleOutcome Out;
  try {
    Frontend FE;
    TranslationUnit *TU = FE.parseSource(Source, "fuzz.c");
    const bool Degraded = frontendDegraded(FE.diags());
    Interpreter I(*TU, Degraded);
    RunResult R = I.run("main", MaxSteps);
    Out.Refused = R.NotExecutable;
    Out.Completed = R.Completed;
    bool SawUseAfterFree = false;
    for (const RuntimeError &E : R.Errors)
      if (E.K == RuntimeError::Kind::UseAfterFree)
        SawUseAfterFree = true;
    for (const RuntimeError &E : R.Errors) {
      switch (E.K) {
      case RuntimeError::Kind::NullDeref:
        Out.Kinds.insert(BugKind::NullDeref);
        break;
      case RuntimeError::Kind::UseAfterFree:
        Out.Kinds.insert(BugKind::UseAfterFree);
        break;
      case RuntimeError::Kind::UndefRead:
        // A read of released storage reports as use-after-free, not as an
        // undefined read — the freed cells are "undefined" only as a
        // side effect of the free.
        if (!SawUseAfterFree)
          Out.Kinds.insert(BugKind::UndefRead);
        break;
      case RuntimeError::Kind::DoubleFree:
        Out.Kinds.insert(BugKind::DoubleFree);
        break;
      case RuntimeError::Kind::OffsetFree:
        Out.Kinds.insert(BugKind::OffsetFree);
        break;
      case RuntimeError::Kind::BadFree:
        Out.Kinds.insert(BugKind::StaticFree);
        break;
      case RuntimeError::Kind::LeakAtExit:
        // Leaks are only meaningful when the program reached its exit; a
        // run aborted by a crash-class error never executed its frees.
        if (R.Completed)
          Out.Kinds.insert(ExpectGlobalLeak ? BugKind::GlobalLeakAtExit
                                            : BugKind::Leak);
        break;
      case RuntimeError::Kind::Trap:
        if (E.Message.compare(0, 34,
                              "interpreter internal error contained") == 0)
          Out.InternalTrap = true;
        break;
      case RuntimeError::Kind::OutOfBounds:
      case RuntimeError::Kind::AssertFailed:
        break; // observable, but not a differential defect class
      }
    }
  } catch (const std::exception &) {
    Out.FrontEndThrew = true;
  }
  return Out;
}

/// Inlines local #include directives so every fuzz program is one file
/// (each batch run checks exactly one name). Headers are included once.
std::string flattenProgram(const corpus::Program &P) {
  std::string Out;
  std::set<std::string> Included;
  for (const std::string &Name : P.MainFiles) {
    const std::optional<std::string> Text = P.Files.read(Name);
    if (!Text)
      continue;
    size_t Start = 0;
    while (Start <= Text->size()) {
      size_t End = Text->find('\n', Start);
      std::string Line = Text->substr(
          Start, End == std::string::npos ? std::string::npos : End - Start);
      Start = End == std::string::npos ? Text->size() + 1 : End + 1;
      if (Line.compare(0, 10, "#include \"") == 0) {
        size_t Close = Line.find('"', 10);
        std::string Header =
            Close == std::string::npos ? "" : Line.substr(10, Close - 10);
        if (std::optional<std::string> H = P.Files.read(Header)) {
          if (Included.insert(Header).second)
            Out += *H;
          continue; // drop the directive either way
        }
      }
      Out += Line;
      Out += '\n';
    }
  }
  return Out;
}

std::string hex16(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Ratio formatting for the ratchet file: exact "1.0"/"0.0" at the
/// endpoints (so jq gates compare cleanly), six decimals in between.
std::string fmtRate(double Rate) {
  if (Rate >= 1.0)
    return "1.0";
  if (Rate <= 0.0)
    return "0.0";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", Rate);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

FuzzProgram fuzz::generateFuzzProgram(std::uint64_t ProgramSeed,
                                      unsigned Index,
                                      const FuzzOptions &Options) {
  FuzzProgram P;
  P.Seed = ProgramSeed;
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "fuzz_%06u_%s.c", Index,
                  hex16(ProgramSeed).c_str());
    P.Name = Buf;
  }
  // Every content decision below consumes only this stream, so the program
  // is a pure function of its seed — the repro contract.
  SplitMix64 R(ProgramSeed);

  if (R.below(100) < 25) {
    // Clean synthetic module + trivial main: ground truth "no defects".
    corpus::GenOptions G;
    G.Modules = 1;
    G.FunctionsPerModule = 1 + static_cast<unsigned>(R.below(6));
    G.Seed = static_cast<unsigned>(R.next());
    P.Source = flattenProgram(corpus::syntheticProgram(G));
    P.Source += "\nint main(void)\n{\n  return 0;\n}\n";
  } else {
    const std::vector<BugKind> Kinds = corpus::allBugKinds();
    P.HasExpectedBug = true;
    P.ExpectedBug = Kinds[R.below(Kinds.size())];
    const unsigned Variant =
        static_cast<unsigned>(R.below(corpus::seededBugVariants()));
    P.Source = flattenProgram(corpus::seededBug(P.ExpectedBug, Variant));
  }

  if (R.chance(Options.MutatedPercent)) {
    P.Mutated = true;
    P.Mutation = pickMutation(R);
    P.Source = applyMutation(P.Source, P.Mutation, R);
  }

  if (Options.FaultEvery != 0 && ProgramSeed % Options.FaultEvery == 0) {
    P.Injected = true;
    const std::uint64_t Pick = R.below(6);
    P.Fault = Pick == 0   ? FaultKind::Alloc
              : Pick == 1 ? FaultKind::Budget
              : Pick == 2 ? FaultKind::Cancel
              : Pick == 3 ? FaultKind::CacheCorrupt
              : Pick == 4 ? FaultKind::CacheTornWrite
                          : FaultKind::StaleEntry;
    if (isCacheFaultKind(P.Fault)) {
      // Cache kinds fire on cache-write events (the post-batch warm/cold
      // differential stores one entry per program), not at pipeline
      // checkpoints.
      P.FireAt = 0;
    } else {
      // Checkpoints tick roughly once per token, so this range spreads
      // fire points from the first prelude tokens deep into analysis.
      P.FireAt = 1 + R.below(3000);
    }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Result accessors
//===----------------------------------------------------------------------===//

double FuzzResult::precision() const {
  unsigned TP = 0, FP = 0;
  for (const auto &[Name, S] : PerKind) {
    TP += S.TP;
    FP += S.FP;
  }
  return TP + FP == 0 ? 1.0 : static_cast<double>(TP) / (TP + FP);
}

double FuzzResult::crashFreedomRate() const {
  const unsigned NonInjected = Programs - Injected;
  if (NonInjected == 0)
    return 1.0;
  return 1.0 -
         static_cast<double>(CrashFreedomViolations) / NonInjected;
}

double FuzzResult::containmentRate() const {
  if (Fired == 0)
    return 1.0;
  return 1.0 - static_cast<double>(ContainmentViolations) / Fired;
}

std::string FuzzResult::summary() const {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "%u program(s): %u scored, %u mutated, %u injected (%u "
                "fired, %u cache); precision %.3f, crash-freedom %.3f, "
                "containment %.3f, warm/cold divergence %u/%u; %s",
                Programs, Scored, Mutated, Injected, Fired, CacheInjected,
                precision(), crashFreedomRate(), containmentRate(),
                WarmColdDivergence, CacheChecked,
                clean() ? "clean"
                        : (std::to_string(Misclassified +
                                          CrashFreedomViolations +
                                          ContainmentViolations +
                                          WarmColdDivergence) +
                           " violation(s)")
                              .c_str());
  return Buf;
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

FuzzResult fuzz::runFuzzCampaign(const FuzzOptions &Options) {
  const double StartMs = monotonicNowMs();
  FuzzResult Result;
  Result.Programs = Options.Count;

  //===--- fleet generation ------------------------------------------------===//

  std::vector<FuzzProgram> Fleet;
  Fleet.reserve(Options.Count);
  VFS Files;
  std::vector<std::string> Names;
  Names.reserve(Options.Count);
  for (unsigned I = 0; I < Options.Count; ++I) {
    Fleet.push_back(
        generateFuzzProgram(mixSeed(Options.Seed, I), I, Options));
    Files.add(Fleet.back().Name, Fleet.back().Source);
    Names.push_back(Fleet.back().Name);
    if (Fleet.back().Mutated)
      ++Result.Mutated;
    if (Fleet.back().Injected)
      ++Result.Injected;
    if (Fleet.back().Injected && isCacheFaultKind(Fleet.back().Fault))
      ++Result.CacheInjected;
  }

  //===--- static side: BatchDriver with fault injection -------------------===//

  std::unordered_map<std::string, std::unique_ptr<FaultInjector>> Injectors;
  for (const FuzzProgram &P : Fleet)
    if (P.Injected)
      Injectors.emplace(P.Name,
                        std::make_unique<FaultInjector>(P.Fault, P.FireAt));

  BatchOptions Batch;
  Batch.Jobs = Options.Jobs;
  Batch.FileDeadlineMs = Options.FileDeadlineMs;
  Batch.JournalPath = Options.JournalPath;
  Batch.Resume = Options.Resume;
  // Attempt 1 runs with the fault armed; the retry (if the fault crashed
  // the attempt) runs clean, so the ladder's healing is itself under test.
  // Cache fault kinds never arm the pipeline — they fire in the post-batch
  // warm/cold cache differential instead.
  Batch.OnBeforeAttempt = [&Injectors](const std::string &File,
                                       unsigned Attempt,
                                       CheckOptions &Check) {
    auto It = Injectors.find(File);
    Check.Faults = (It != Injectors.end() && Attempt == 1 &&
                    !isCacheFaultKind(It->second->kind()))
                       ? It->second.get()
                       : nullptr;
  };

  BatchDriver Driver(Batch);
  BatchResult Static = Driver.run(Files, Names);
  Result.ResumedCount = Static.ResumedCount;

  //===--- cache differential: warm answers must equal cold answers --------===//

  // Every settled outcome is round-tripped through the check service's
  // persisted cache format, entirely in memory: serialize (with the
  // program's cache fault injector, if any, mutating the bytes), reload,
  // look up warm. The gate is two-sided: a fired cache fault must make the
  // lookup miss (cold fallback), and any entry that IS served must be
  // byte-identical to the cold outcome.
  {
    const std::string PolicyKey = checkOptionsFingerprint(Batch.Check);
    auto HashOf =
        [&Files](const std::string &Name) -> std::optional<std::string> {
      std::optional<std::string> Text = Files.read(Name);
      if (!Text)
        return std::nullopt;
      return fnv1aHex({*Text});
    };
    for (size_t I = 0; I < Fleet.size(); ++I) {
      const FuzzProgram &P = Fleet[I];
      const FileOutcome &O = Static.Outcomes[I];
      if (O.Kind != FileOutcomeKind::Ok &&
          O.Kind != FileOutcomeKind::Degraded)
        continue; // the service never caches unsettled outcomes

      CacheEntry E;
      E.File = P.Name;
      E.ContentHash = fnv1aHex({P.Source});
      E.Deps[P.Name] = E.ContentHash;
      E.Status = fileOutcomeName(O.Kind);
      E.Reasons = O.Reasons;
      E.Anomalies = O.Anomalies;
      E.Suppressed = O.Suppressed;
      E.Diagnostics = O.Diagnostics;
      E.Classes = O.Classes;

      FaultInjector *Inj = nullptr;
      if (P.Injected && isCacheFaultKind(P.Fault)) {
        auto It = Injectors.find(P.Name);
        Inj = It != Injectors.end() ? It->second.get() : nullptr;
      }
      const std::string Text = ResultCache::headerLine(PolicyKey) + "\n" +
                               ResultCache::entryLineFaulted(E, Inj) + "\n";
      ResultCache Warm(PolicyKey);
      Warm.loadFromText(Text);
      const CacheEntry *Hit = Warm.lookup(P.Name, HashOf);
      ++Result.CacheChecked;

      const bool CacheFaultFired = Inj && Inj->fired();
      if (CacheFaultFired && Hit) {
        ++Result.ContainmentViolations;
        Result.ViolationNotes.push_back(
            P.Name + ": " + std::string(faultKindName(P.Fault)) +
            " cache fault fired but the warm lookup still served the "
            "entry");
      }
      if (Hit) {
        if (Hit->Diagnostics != O.Diagnostics ||
            Hit->Status != fileOutcomeName(O.Kind) ||
            Hit->Anomalies != O.Anomalies ||
            Hit->Suppressed != O.Suppressed) {
          ++Result.WarmColdDivergence;
          Result.ViolationNotes.push_back(
              P.Name + ": warm cache answer diverges from the cold answer");
        }
      } else if (!CacheFaultFired) {
        // No fault, yet the round trip lost the entry: the warm path
        // would silently re-check everything — correct answers, broken
        // reuse. That is a persistence bug, so it fails the gate too.
        ++Result.WarmColdDivergence;
        Result.ViolationNotes.push_back(
            P.Name + ": cache round trip dropped a clean entry");
      }
    }
  }

  //===--- dynamic side: the interpreter oracle ----------------------------===//

  std::vector<OracleOutcome> Oracle(Options.Count);
  {
    std::atomic<size_t> Next{0};
    auto Worker = [&] {
      for (;;) {
        const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Fleet.size())
          return;
        Oracle[I] = runOracle(
            Fleet[I].Source,
            Fleet[I].HasExpectedBug &&
                Fleet[I].ExpectedBug == BugKind::GlobalLeakAtExit,
            Options.MaxOracleSteps);
      }
    };
    const unsigned Threads = std::max(1u, Options.Jobs);
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  //===--- classification ---------------------------------------------------===//

  struct PendingRegression {
    size_t Index;
    std::string Why;
  };
  std::vector<PendingRegression> Pending;

  for (size_t I = 0; I < Fleet.size(); ++I) {
    const FuzzProgram &P = Fleet[I];
    const FileOutcome &O = Static.Outcomes[I];
    const OracleOutcome &D = Oracle[I];

    switch (O.Kind) {
    case FileOutcomeKind::Ok:
      ++Result.StaticOk;
      break;
    case FileOutcomeKind::Degraded:
      ++Result.StaticDegraded;
      break;
    case FileOutcomeKind::Timeout:
      ++Result.StaticTimeout;
      break;
    case FileOutcomeKind::Crash:
      ++Result.StaticCrash;
      break;
    }
    if (D.Refused || D.FrontEndThrew)
      ++Result.OracleRefused;
    else if (D.InternalTrap)
      ++Result.OracleTrapped;
    else
      ++Result.OracleRan;

    //===--- containment: every fired fault ends contained ---------------===//

    if (P.Injected) {
      if (isCacheFaultKind(P.Fault)) {
        // Cache faults fire in the warm/cold differential above (which
        // runs live even for resumed outcomes); its gate already charged
        // any violation. Here they only count as fired and stay out of
        // the differential score like every injected program.
        auto It = Injectors.find(P.Name);
        if (It != Injectors.end() && It->second->fired())
          ++Result.Fired;
        continue;
      }
      bool Fired;
      if (O.Resumed) {
        // The injector never ran for resumed entries; infer from the
        // journaled record — a fired fault leaves a non-ok status, a
        // retry, or a fault-reason marker.
        Fired = O.Kind != FileOutcomeKind::Ok || O.Attempts > 1 ||
                std::find(O.Reasons.begin(), O.Reasons.end(),
                          "fault-budget") != O.Reasons.end() ||
                std::find(O.Reasons.begin(), O.Reasons.end(),
                          "fault-cancel") != O.Reasons.end();
      } else {
        auto It = Injectors.find(P.Name);
        Fired = It != Injectors.end() && It->second->fired();
      }
      if (Fired) {
        ++Result.Fired;
        // Containment: the faulted first attempt must not have produced a
        // clean Ok. (Ok after a retry means the ladder healed the fault —
        // that is the designed behaviour, not an escape.)
        if (O.Kind == FileOutcomeKind::Ok && O.Attempts == 1) {
          ++Result.ContainmentViolations;
          Result.ViolationNotes.push_back(
              P.Name + ": " + std::string(faultKindName(P.Fault)) +
              " fault fired at checkpoint " + std::to_string(P.FireAt) +
              " but the run reported first-attempt ok");
          Pending.push_back({I, "containment"});
        }
      }
      continue; // injected programs never enter the differential score
    }

    //===--- crash freedom: no tool may crash on any input ----------------===//

    if (O.Kind == FileOutcomeKind::Crash) {
      ++Result.CrashFreedomViolations;
      Result.ViolationNotes.push_back(
          P.Name + ": checker reported a contained internal error on both "
                   "attempts (" +
          O.Diagnostics.substr(0, 120) + ")");
      Pending.push_back({I, "checker-crash"});
    }
    if (D.InternalTrap) {
      ++Result.CrashFreedomViolations;
      Result.ViolationNotes.push_back(
          P.Name + ": interpreter contained an internal error");
      Pending.push_back({I, "oracle-crash"});
    }
    if (D.FrontEndThrew) {
      ++Result.CrashFreedomViolations;
      Result.ViolationNotes.push_back(
          P.Name + ": front end raised an exception outside the checker "
                   "facade");
      Pending.push_back({I, "frontend-crash"});
    }

    //===--- differential score (pristine programs only) -------------------===//

    if (P.Mutated || O.Kind != FileOutcomeKind::Ok || D.Refused ||
        D.FrontEndThrew)
      continue;
    ++Result.Scored;

    std::set<BugKind> StaticKinds; // union of witnessed kinds (TP coverage)
    std::vector<std::set<BugKind>> FlagWitnesses; // per-flag, for FP charging
    for (const auto &[Flag, N] : O.Classes) {
      std::set<BugKind> W = staticClassWitnesses(Flag);
      if (W.empty())
        continue;
      StaticKinds.insert(W.begin(), W.end());
      FlagWitnesses.push_back(std::move(W));
    }

    for (BugKind K : D.Kinds) {
      KindScore &S = Result.PerKind[corpus::bugKindName(K)];
      if (StaticKinds.count(K)) {
        ++S.TP;
      } else {
        ++S.FN;
        if (corpus::staticallyDetectable(K)) {
          ++Result.Misclassified;
          Result.ViolationNotes.push_back(
              P.Name + ": oracle observed " + corpus::bugKindName(K) +
              " but the checker (full analysis, ok status) missed it");
          Pending.push_back(
              {I, std::string("missed-") + corpus::bugKindName(K)});
        }
      }
    }
    // A report is spurious only when none of the kinds it witnesses were
    // observed; charge the false positive to its canonical (first) kind.
    for (const std::set<BugKind> &W : FlagWitnesses) {
      bool Covered = false;
      for (BugKind K : W)
        if (D.Kinds.count(K)) {
          Covered = true;
          break;
        }
      if (!Covered)
        ++Result.PerKind[corpus::bugKindName(*W.begin())].FP;
    }
  }

  //===--- regressions: minimize and write -------------------------------===//

  for (const PendingRegression &PR : Pending) {
    if (Result.Regressions.size() >= Options.MaxRegressions)
      break;
    const FuzzProgram &P = Fleet[PR.Index];
    Regression R;
    R.Name = P.Name;
    R.Seed = P.Seed;
    R.Why = PR.Why;
    // Containment findings are properties of the harness/fault pair, not
    // of the source text; record them unminimized.
    if (PR.Why == "checker-crash") {
      R.Minimized = minimizeSource(
          P.Source,
          [](const std::string &Src) {
            return Checker::checkSource(Src).Status ==
                   CheckStatus::InternalError;
          },
          /*MaxProbes=*/300);
    } else if (PR.Why == "oracle-crash") {
      R.Minimized = minimizeSource(
          P.Source,
          [&](const std::string &Src) {
            return runOracle(Src, false, Options.MaxOracleSteps)
                .InternalTrap;
          },
          /*MaxProbes=*/300);
    } else if (PR.Why.compare(0, 7, "missed-") == 0) {
      const std::string KindName = PR.Why.substr(7);
      R.Minimized = minimizeSource(
          P.Source,
          [&](const std::string &Src) {
            OracleOutcome D = runOracle(
                Src, KindName == corpus::bugKindName(
                                     BugKind::GlobalLeakAtExit),
                Options.MaxOracleSteps);
            if (D.Refused || D.FrontEndThrew)
              return false;
            bool OracleSees = false;
            for (BugKind K : D.Kinds)
              if (KindName == corpus::bugKindName(K))
                OracleSees = true;
            if (!OracleSees)
              return false;
            CheckResult C = Checker::checkSource(Src);
            if (C.Status != CheckStatus::Ok)
              return false;
            for (const Diagnostic &Diag : C.Diagnostics)
              if (Diag.Sev == Severity::Anomaly)
                for (BugKind K :
                     staticClassWitnesses(checkIdFlagName(Diag.Id)))
                  if (KindName == corpus::bugKindName(K))
                    return false; // checker sees it: not the bug anymore
            return true;
          },
          /*MaxProbes=*/300);
    } else {
      R.Minimized = P.Source;
    }
    if (!Options.RegressDir.empty()) {
      std::string Base = P.Name;
      if (Base.size() > 2 && Base.compare(Base.size() - 2, 2, ".c") == 0)
        Base.resize(Base.size() - 2);
      const std::string Path =
          Options.RegressDir + "/" + Base + "_" + PR.Why + ".c";
      std::string Text = "/* fuzz regression: " + PR.Why + "\n   seed 0x" +
                         hex16(P.Seed) +
                         " (regenerate with --fuzz-repro)\n*/\n" +
                         R.Minimized;
      writeFileText(Path, Text);
    }
    Result.Regressions.push_back(std::move(R));
  }

  Result.WallMs = monotonicNowMs() - StartMs;
  return Result;
}

//===----------------------------------------------------------------------===//
// The ratchet file
//===----------------------------------------------------------------------===//

std::string fuzz::renderBenchDifferentialJson(const FuzzResult &Result,
                                              const FuzzOptions &Options) {
  std::string Out = "{\n";
  Out += "  \"memlint_bench\": \"differential\",\n";
  Out += "  \"campaign_seed\": " + std::to_string(Options.Seed) + ",\n";
  Out += "  \"programs\": " + std::to_string(Result.Programs) + ",\n";
  Out += "  \"scored\": " + std::to_string(Result.Scored) + ",\n";
  Out += "  \"mutated\": " + std::to_string(Result.Mutated) + ",\n";
  Out += "  \"injected\": " + std::to_string(Result.Injected) + ",\n";
  Out += "  \"fired\": " + std::to_string(Result.Fired) + ",\n";
  Out += "  \"resumed\": " + std::to_string(Result.ResumedCount) + ",\n";
  Out += "  \"static\": {\"ok\": " + std::to_string(Result.StaticOk) +
         ", \"degraded\": " + std::to_string(Result.StaticDegraded) +
         ", \"timeout\": " + std::to_string(Result.StaticTimeout) +
         ", \"crash\": " + std::to_string(Result.StaticCrash) + "},\n";
  Out += "  \"oracle\": {\"ran\": " + std::to_string(Result.OracleRan) +
         ", \"refused\": " + std::to_string(Result.OracleRefused) +
         ", \"trapped\": " + std::to_string(Result.OracleTrapped) + "},\n";
  Out += "  \"precision\": " + fmtRate(Result.precision()) + ",\n";
  Out += "  \"per_kind\": {\n";
  bool First = true;
  for (const auto &[Name, S] : Result.PerKind) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "    " + jsonString(Name) + ": {\"tp\": " + std::to_string(S.TP) +
           ", \"fn\": " + std::to_string(S.FN) +
           ", \"fp\": " + std::to_string(S.FP) +
           ", \"recall\": " + fmtRate(S.recall()) + "}";
  }
  Out += "\n  },\n";
  Out += "  \"misclassified\": " + std::to_string(Result.Misclassified) +
         ",\n";
  Out += "  \"crash_freedom\": " + fmtRate(Result.crashFreedomRate()) +
         ",\n";
  Out += "  \"crash_freedom_violations\": " +
         std::to_string(Result.CrashFreedomViolations) + ",\n";
  Out += "  \"containment\": " + fmtRate(Result.containmentRate()) + ",\n";
  Out += "  \"containment_violations\": " +
         std::to_string(Result.ContainmentViolations) + ",\n";
  Out += "  \"cache_injected\": " + std::to_string(Result.CacheInjected) +
         ",\n";
  Out += "  \"cache_checked\": " + std::to_string(Result.CacheChecked) +
         ",\n";
  Out += "  \"warm_cold_divergence\": " +
         std::to_string(Result.WarmColdDivergence) + ",\n";
  Out += "  \"wall_ms\": " + jsonMs(Result.WallMs) + "\n";
  Out += "}\n";
  return Out;
}
