//===--- Fuzzer.h - Differential fuzzing harness ----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzing harness: a generator fleet produces tens of
/// thousands of deterministic, seed-addressable programs (clean synthetic
/// modules, seeded-bug programs, and mutants of both), pushes every program
/// through the static checker (on the resilient BatchDriver, inheriting its
/// deadlines, retry ladder, and resumable journal) and through the
/// interpreter oracle, and classifies each (program, BugKind) pair:
///
/// * TP — the oracle observed the class at run time and the checker
///   reported it statically.
/// * FN — the oracle observed it, the checker stayed silent. Expected for
///   the paper's 1996-missed classes (offset free, static free, global
///   storage unfreed at exit); a *misclassification* for every class the
///   detectability table says is statically detectable.
/// * FP — the checker reported a class the oracle did not observe on the
///   executed path.
///
/// Precision/recall are scored only over pristine programs (no mutation,
/// no injected fault) whose static run completed Ok and whose oracle run
/// actually executed — mutants have unknown ground truth and still count
/// toward crash-freedom only.
///
/// A deterministic slice of the fleet additionally runs with a fault
/// injector armed (support/FaultInjector.h): an allocation failure, a
/// forced budget exhaustion, or a cancellation fires mid-pipeline at a
/// seeded checkpoint. The harness verifies containment — every fired fault
/// must end in a Degraded/Timeout/contained-InternalError outcome or be
/// healed by the retry ladder, never reported as a clean first-attempt Ok
/// (and never an abort or hang, which would take the campaign down with
/// it).
///
/// The injected slice also rotates through the cache-write fault kinds
/// (CacheCorrupt, CacheTornWrite, StaleEntry). Those fire during a
/// post-batch warm/cold cache differential: every completed program's
/// outcome is round-tripped through the check service's persisted cache
/// format (service/ResultCache.h) in memory, and the warm answer must be
/// byte-identical to the cold one. A corrupted, torn, or stale entry must
/// be dropped by the load/lookup path (cold fallback) — a fired cache
/// fault whose entry is still served, or any warm/cold byte divergence,
/// is a containment violation.
///
/// The campaign's aggregate — precision, per-kind recall, crash-freedom
/// rate, containment rate — is rendered as BENCH_differential.json and
/// ratcheted in CI; violating programs are greedily minimized
/// (fuzz/Minimizer.h) and written out as regression seeds.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_FUZZ_FUZZER_H
#define MEMLINT_FUZZ_FUZZER_H

#include "corpus/Corpus.h"
#include "fuzz/Mutator.h"
#include "support/FaultInjector.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memlint {
namespace fuzz {

/// Campaign configuration.
struct FuzzOptions {
  unsigned Count = 1000;        ///< fleet size (programs)
  std::uint64_t Seed = 1;       ///< campaign seed; everything derives from it
  unsigned Jobs = 1;            ///< worker threads (checker and oracle)
  unsigned MutatedPercent = 40; ///< share of programs that get one mutation
  /// Arm a deterministic fault in roughly one of FaultEvery programs;
  /// 0 disables injection entirely.
  unsigned FaultEvery = 4;
  unsigned FileDeadlineMs = 5000; ///< per-program static-check deadline
  unsigned long MaxOracleSteps = 200000; ///< interpreter step budget
  std::string JournalPath;      ///< batch journal; empty disables
  bool Resume = false;          ///< resume from JournalPath
  /// Directory for minimized regression seeds; empty disables writing.
  std::string RegressDir;
  /// Upper bound on regressions minimized+written per campaign (the
  /// minimizer re-runs the checker; unbounded minimization of a broken
  /// build would dominate the campaign).
  unsigned MaxRegressions = 10;
};

/// One generated program, reproducible from its seed alone.
struct FuzzProgram {
  std::string Name;        ///< corpus file name ("fuzz_<idx>_<seed>.c")
  std::uint64_t Seed = 0;  ///< per-program seed (mixSeed(campaign, index))
  std::string Source;      ///< the single flattened source file
  bool HasExpectedBug = false;      ///< seeded-bug base (not clean synthetic)
  corpus::BugKind ExpectedBug = corpus::BugKind::NullDeref;
  bool Mutated = false;
  MutationKind Mutation = MutationKind::AnnotationFlip;
  bool Injected = false;   ///< a fault is armed for attempt 1
  FaultKind Fault = FaultKind::Alloc;
  unsigned long FireAt = 0; ///< checkpoint ordinal the fault fires at
};

/// Deterministically generates the program for \p ProgramSeed. \p Index
/// only names the file; every content decision derives from the seed, so
/// a program can be regenerated (byte-identical) from its seed alone —
/// the repro path behind --fuzz-repro.
FuzzProgram generateFuzzProgram(std::uint64_t ProgramSeed, unsigned Index,
                                const FuzzOptions &Options);

/// Per-BugKind differential tallies over the scored population.
struct KindScore {
  unsigned TP = 0, FN = 0, FP = 0;
  double recall() const {
    return TP + FN == 0 ? 1.0 : static_cast<double>(TP) / (TP + FN);
  }
};

/// One finding worth keeping: a violation or misclassification, with its
/// minimized reproducer.
struct Regression {
  std::string Name;      ///< offending program's corpus name
  std::uint64_t Seed;    ///< its seed (regenerate with --fuzz-repro)
  std::string Why;       ///< "crash", "containment", "missed-<kind>", ...
  std::string Minimized; ///< minimized source (empty if minimization off)
};

/// Aggregate campaign outcome.
struct FuzzResult {
  unsigned Programs = 0;
  unsigned Scored = 0;   ///< pristine programs entering precision/recall
  unsigned Mutated = 0;
  unsigned Injected = 0;
  unsigned Fired = 0;    ///< injected faults that actually fired
  unsigned CacheInjected = 0;  ///< injected programs with a cache fault kind
  unsigned CacheChecked = 0;   ///< programs through the warm/cold differential
  unsigned WarmColdDivergence = 0; ///< warm answers not byte-identical to cold
  unsigned StaticOk = 0, StaticDegraded = 0, StaticTimeout = 0,
           StaticCrash = 0;
  unsigned OracleRan = 0, OracleRefused = 0, OracleTrapped = 0;
  std::map<std::string, KindScore> PerKind; ///< by bugKindName
  unsigned Misclassified = 0; ///< unexpected FNs (detectability violated)
  unsigned CrashFreedomViolations = 0; ///< non-injected Crash outcomes
  unsigned ContainmentViolations = 0;  ///< fired fault escaped containment
  std::vector<std::string> ViolationNotes; ///< one human line each
  std::vector<Regression> Regressions;
  unsigned ResumedCount = 0;
  double WallMs = 0;

  double precision() const;
  /// 1.0 when no non-injected program crashed either tool.
  double crashFreedomRate() const;
  /// 1.0 when every fired fault was contained.
  double containmentRate() const;
  /// Campaign-level pass/fail: no crash-freedom, containment,
  /// warm/cold-divergence, or misclassification violations.
  bool clean() const {
    return Misclassified == 0 && CrashFreedomViolations == 0 &&
           ContainmentViolations == 0 && WarmColdDivergence == 0;
  }
  /// One-line human summary.
  std::string summary() const;
};

/// Runs a campaign. Never throws; infrastructure trouble surfaces as
/// violations/notes.
FuzzResult runFuzzCampaign(const FuzzOptions &Options);

/// Renders the ratchet file (BENCH_differential.json): stable key order,
/// newline-terminated.
std::string renderBenchDifferentialJson(const FuzzResult &Result,
                                        const FuzzOptions &Options);

} // namespace fuzz
} // namespace memlint

#endif // MEMLINT_FUZZ_FUZZER_H
