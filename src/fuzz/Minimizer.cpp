//===--- Minimizer.cpp - Greedy test-case minimizer -----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include <vector>

using namespace memlint;
using namespace memlint::fuzz;

namespace {

std::vector<std::string> toLines(const std::string &Src) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Src.size()) {
    size_t End = Src.find('\n', Start);
    if (End == std::string::npos) {
      Lines.push_back(Src.substr(Start));
      break;
    }
    Lines.push_back(Src.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string joinWithout(const std::vector<std::string> &Lines, size_t Begin,
                        size_t End) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I) {
    if (I >= Begin && I < End)
      continue;
    Out += Lines[I];
    Out += '\n';
  }
  return Out;
}

} // namespace

std::string fuzz::minimizeSource(const std::string &Source,
                                 const MinimizePredicate &StillInteresting,
                                 unsigned MaxProbes) {
  unsigned Probes = 0;
  auto Probe = [&](const std::string &Candidate) {
    if (Probes >= MaxProbes)
      return false;
    ++Probes;
    return StillInteresting(Candidate);
  };

  if (!Probe(Source))
    return Source;

  std::vector<std::string> Lines = toLines(Source);
  bool Shrunk = true;
  while (Shrunk && Probes < MaxProbes) {
    Shrunk = false;
    // Chunk sizes from half the file down to single lines; front-to-back
    // within each size. Greedy: any successful deletion restarts the size
    // ladder on the smaller file.
    for (size_t Chunk = Lines.size() / 2; Chunk >= 1; Chunk /= 2) {
      for (size_t Begin = 0; Begin + Chunk <= Lines.size();) {
        std::string Candidate = joinWithout(Lines, Begin, Begin + Chunk);
        if (Probe(Candidate)) {
          Lines.erase(Lines.begin() + static_cast<long>(Begin),
                      Lines.begin() + static_cast<long>(Begin + Chunk));
          Shrunk = true;
          // Keep Begin: the next chunk slid into this position.
        } else {
          Begin += Chunk;
        }
        if (Probes >= MaxProbes)
          break;
      }
      if (Chunk == 1 || Probes >= MaxProbes)
        break;
    }
  }

  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}
