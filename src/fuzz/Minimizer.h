//===--- Minimizer.h - Greedy test-case minimizer ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A greedy delta-debugging minimizer for fuzz findings. Given a source
/// text and an "is this still interesting?" predicate (still crashes,
/// still misclassified, ...), it repeatedly deletes line chunks — halves
/// first, then ever smaller runs, then single lines — keeping any deletion
/// that preserves the predicate, until a fixpoint. The result is a locally
/// minimal reproducer suitable for checking into tests/ as a regression
/// seed.
///
/// The minimizer is deterministic (no randomness: chunk order is fixed)
/// and bounded: the predicate is invoked at most MaxProbes times, so a
/// pathological predicate cannot stall a campaign.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_FUZZ_MINIMIZER_H
#define MEMLINT_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace memlint {
namespace fuzz {

/// \returns true if the candidate source still reproduces the finding.
/// Must be pure (same answer for same text) for minimization to converge.
using MinimizePredicate = std::function<bool(const std::string &)>;

/// Greedily minimizes \p Source under \p StillInteresting, which must hold
/// for \p Source itself (otherwise \p Source is returned unchanged). At
/// most \p MaxProbes predicate evaluations are spent.
std::string minimizeSource(const std::string &Source,
                           const MinimizePredicate &StillInteresting,
                           unsigned MaxProbes = 2000);

} // namespace fuzz
} // namespace memlint

#endif // MEMLINT_FUZZ_MINIMIZER_H
