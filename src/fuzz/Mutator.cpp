//===--- Mutator.cpp - Deterministic source mutation engine ---------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

using namespace memlint;
using namespace memlint::fuzz;

const char *fuzz::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::AnnotationFlip:
    return "annotation-flip";
  case MutationKind::StatementSplice:
    return "statement-splice";
  case MutationKind::AliasPerturb:
    return "alias-perturb";
  case MutationKind::Truncate:
    return "truncate";
  case MutationKind::Corrupt:
    return "corrupt";
  }
  return "unknown";
}

MutationKind fuzz::pickMutation(SplitMix64 &R) {
  // 30/30/20/10/10: most mutants keep a parseable shape so the analysis
  // (not just the front end) stays under test.
  const unsigned Roll = static_cast<unsigned>(R.below(100));
  if (Roll < 30)
    return MutationKind::AnnotationFlip;
  if (Roll < 60)
    return MutationKind::StatementSplice;
  if (Roll < 80)
    return MutationKind::AliasPerturb;
  if (Roll < 90)
    return MutationKind::Truncate;
  return MutationKind::Corrupt;
}

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// [Begin, End) byte ranges of every /*@word@*/ annotation, with the word.
struct AnnotationSite {
  size_t Begin, End;
  std::string Word;
};

std::vector<AnnotationSite> findAnnotations(const std::string &Src) {
  std::vector<AnnotationSite> Out;
  size_t Pos = 0;
  while ((Pos = Src.find("/*@", Pos)) != std::string::npos) {
    size_t Close = Src.find("@*/", Pos + 3);
    if (Close == std::string::npos)
      break;
    std::string Word = Src.substr(Pos + 3, Close - Pos - 3);
    // Only plain one-word annotations; control comments (/*@-...@*/ etc.)
    // stay untouched so suppression semantics are not silently toggled.
    bool Plain = !Word.empty();
    for (char C : Word)
      if (!isIdentChar(C))
        Plain = false;
    if (Plain)
      Out.push_back({Pos, Close + 3, std::move(Word)});
    Pos = Close + 3;
  }
  return Out;
}

std::string flipAnnotation(const std::string &Src, SplitMix64 &R) {
  std::vector<AnnotationSite> Sites = findAnnotations(Src);
  if (Sites.empty())
    return Src;
  const AnnotationSite &S = Sites[R.below(Sites.size())];
  // Either delete the annotation outright or swap in a different word —
  // both make the declared contract lie about the code.
  static const char *const Words[] = {"null",     "only",  "temp",
                                      "observer", "unique"};
  std::string Replacement;
  if (!R.chance(30)) {
    std::string Word = Words[R.below(5)];
    if (Word == S.Word) // ensure a real flip, deterministically
      Word = Word == "null" ? "only" : "null";
    Replacement = "/*@" + Word + "@*/";
  }
  std::string Out = Src.substr(0, S.Begin);
  Out += Replacement;
  Out += Src.substr(S.End);
  return Out;
}

/// Indexes of lines that look like simple statements inside a body: they
/// end in ';' and start indented.
std::vector<size_t> statementLines(const std::vector<std::string> &Lines) {
  std::vector<size_t> Out;
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (L.size() < 4 || L[0] != ' ')
      continue;
    size_t LastNonWs = L.find_last_not_of(" \t");
    if (LastNonWs == std::string::npos || L[LastNonWs] != ';')
      continue;
    // Declarations splice badly (redefinition noise); prefer executable
    // statements, recognizable by not starting with a type keyword.
    size_t FirstNonWs = L.find_first_not_of(" \t");
    if (L.compare(FirstNonWs, 4, "int ") == 0 ||
        L.compare(FirstNonWs, 5, "char ") == 0 ||
        L.compare(FirstNonWs, 5, "cell ") == 0 ||
        L.compare(FirstNonWs, 5, "node ") == 0 ||
        L.compare(FirstNonWs, 7, "return ") == 0)
      continue;
    Out.push_back(I);
  }
  return Out;
}

std::vector<std::string> splitLines(const std::string &Src) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Src.size()) {
    size_t End = Src.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Src.size())
        Lines.push_back(Src.substr(Start));
      break;
    }
    Lines.push_back(Src.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

std::string spliceStatement(const std::string &Src, SplitMix64 &R) {
  std::vector<std::string> Lines = splitLines(Src);
  std::vector<size_t> Stmts = statementLines(Lines);
  if (Stmts.empty())
    return Src;
  const size_t Line = Stmts[R.below(Stmts.size())];
  if (R.chance(50))
    Lines.insert(Lines.begin() + static_cast<long>(Line) + 1, Lines[Line]);
  else
    Lines.erase(Lines.begin() + static_cast<long>(Line));
  return joinLines(Lines);
}

bool isCKeyword(const std::string &Word) {
  static const char *const Keywords[] = {
      "int",    "char",   "void",   "if",     "else",   "while", "for",
      "return", "struct", "typedef", "static", "sizeof", "NULL",  "free",
      "malloc", "calloc", "exit",   "do",     "break",  "continue"};
  for (const char *K : Keywords)
    if (Word == K)
      return true;
  return false;
}

/// Occurrence positions of short variable-like identifiers, keyed by name.
std::map<std::string, std::vector<size_t>>
identifierSites(const std::string &Src) {
  std::map<std::string, std::vector<size_t>> Out;
  size_t I = 0;
  while (I < Src.size()) {
    if (!std::isalpha(static_cast<unsigned char>(Src[I])) && Src[I] != '_') {
      ++I;
      continue;
    }
    size_t Begin = I;
    while (I < Src.size() && isIdentChar(Src[I]))
      ++I;
    std::string Word = Src.substr(Begin, I - Begin);
    // Variable-ish heuristic: short lowercase names, not keywords, not
    // type/struct names from the generators.
    if (Word.size() <= 4 && !isCKeyword(Word) && Word != "cell" &&
        Word != "unit" && Word != "node" && Word != "box" && Word != "main" &&
        std::islower(static_cast<unsigned char>(Word[0])))
      Out[Word].push_back(Begin);
  }
  return Out;
}

std::string perturbAlias(const std::string &Src, SplitMix64 &R) {
  std::map<std::string, std::vector<size_t>> Sites = identifierSites(Src);
  std::vector<std::string> Names;
  for (const auto &[Name, Positions] : Sites)
    if (Positions.size() >= 2)
      Names.push_back(Name);
  if (Names.size() < 2)
    return Src;
  // Replace one occurrence of A (never its first, which is usually the
  // declaration) with B: a read, write, or free now lands on other storage.
  const std::string &A = Names[R.below(Names.size())];
  std::string B = Names[R.below(Names.size())];
  if (B == A)
    B = Names[(std::find(Names.begin(), Names.end(), A) - Names.begin() + 1) %
              Names.size()];
  const std::vector<size_t> &APos = Sites[A];
  size_t Pos = APos[1 + R.below(APos.size() - 1)];
  std::string Out = Src.substr(0, Pos);
  Out += B;
  Out += Src.substr(Pos + A.size());
  return Out;
}

std::string truncateSource(const std::string &Src, SplitMix64 &R) {
  if (Src.size() < 2)
    return Src;
  return Src.substr(0, 1 + R.below(Src.size() - 1));
}

std::string corruptSource(const std::string &Src, SplitMix64 &R) {
  if (Src.empty())
    return Src;
  std::string Out = Src;
  static const char Garbage[] = "{}()@*;\"\'\\\x01\x7f";
  const unsigned Hits = 1 + static_cast<unsigned>(R.below(4));
  for (unsigned I = 0; I < Hits; ++I)
    Out[R.below(Out.size())] =
        Garbage[R.below(sizeof(Garbage) - 1)];
  return Out;
}

} // namespace

std::string fuzz::applyMutation(const std::string &Source, MutationKind Kind,
                                SplitMix64 &R) {
  switch (Kind) {
  case MutationKind::AnnotationFlip:
    return flipAnnotation(Source, R);
  case MutationKind::StatementSplice:
    return spliceStatement(Source, R);
  case MutationKind::AliasPerturb:
    return perturbAlias(Source, R);
  case MutationKind::Truncate:
    return truncateSource(Source, R);
  case MutationKind::Corrupt:
    return corruptSource(Source, R);
  }
  return Source;
}
