//===--- Mutator.h - Deterministic source mutation engine -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing fleet's mutation engine. Each mutation is a small,
/// deterministic source-to-source transform driven entirely by a seeded
/// SplitMix64 stream, so a mutated program is reproducible from its seed
/// alone on every platform. Mutations deliberately span the interesting
/// failure surface:
///
/// * AnnotationFlip — rewrites or deletes one /*@...@*/ annotation, so the
///   checker's assumptions diverge from the program's behaviour.
/// * StatementSplice — duplicates or deletes one statement line (a spliced
///   free() becomes a double free; a deleted free becomes a leak; a deleted
///   initializer becomes an undefined read).
/// * AliasPerturb — substitutes one identifier occurrence with another
///   identifier from the same source, perturbing the alias/def-use graph.
/// * Truncate — cuts the source at an arbitrary byte (torn input).
/// * Corrupt — overwrites a few bytes with garbage (bit-rot input).
///
/// A mutation may be an identity transform on sources that lack its target
/// construct (e.g. AnnotationFlip on an unannotated file); callers must not
/// assume the result differs from the input.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_FUZZ_MUTATOR_H
#define MEMLINT_FUZZ_MUTATOR_H

#include "support/Rand.h"

#include <string>

namespace memlint {
namespace fuzz {

/// The mutation operators, in pick order.
enum class MutationKind {
  AnnotationFlip,
  StatementSplice,
  AliasPerturb,
  Truncate,
  Corrupt,
};

/// \returns a stable lower-case name ("annotation-flip", ...).
const char *mutationKindName(MutationKind Kind);

/// All mutation kinds, in declaration order.
constexpr unsigned NumMutationKinds = 5;

/// Picks a mutation kind from \p R. Parse-destroying mutations (Truncate,
/// Corrupt) are chosen less often than the semantics-preserving-shape ones,
/// so most mutants still exercise the analysis rather than the lexer.
MutationKind pickMutation(SplitMix64 &R);

/// Applies \p Kind to \p Source deterministically, consuming randomness
/// from \p R. Never throws; returns the (possibly identical) mutated text.
std::string applyMutation(const std::string &Source, MutationKind Kind,
                          SplitMix64 &R);

} // namespace fuzz
} // namespace memlint

#endif // MEMLINT_FUZZ_MUTATOR_H
