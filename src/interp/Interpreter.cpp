//===--- Interpreter.cpp - Run-time checking baseline ------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ast/ASTPrinter.h"

#include <cassert>
#include <map>
#include <optional>

using namespace memlint;

const char *memlint::runtimeErrorKindName(RuntimeError::Kind Kind) {
  switch (Kind) {
  case RuntimeError::Kind::NullDeref: return "null-dereference";
  case RuntimeError::Kind::UseAfterFree: return "use-after-free";
  case RuntimeError::Kind::UndefRead: return "undefined-read";
  case RuntimeError::Kind::DoubleFree: return "double-free";
  case RuntimeError::Kind::OffsetFree: return "offset-free";
  case RuntimeError::Kind::BadFree: return "bad-free";
  case RuntimeError::Kind::OutOfBounds: return "out-of-bounds";
  case RuntimeError::Kind::AssertFailed: return "assert-failed";
  case RuntimeError::Kind::LeakAtExit: return "leak-at-exit";
  case RuntimeError::Kind::Trap: return "trap";
  }
  return "?";
}

std::string RuntimeError::str() const {
  return Loc.str() + ": [" + runtimeErrorKindName(K) + "] " + Message;
}

namespace {

/// A typed pointer value: block id plus cell offset. Block 0 is the null
/// block.
struct Ptr {
  unsigned Block = 0;
  long Off = 0;
  bool isNull() const { return Block == 0; }
  friend bool operator==(const Ptr &A, const Ptr &B) {
    return A.Block == B.Block && A.Off == B.Off;
  }
};

/// A scalar runtime value.
struct Value {
  enum class Kind { Int, Fp, Pointer };
  Kind K = Kind::Int;
  long I = 0;
  double D = 0;
  Ptr P;

  static Value intVal(long V) {
    Value Out;
    Out.K = Kind::Int;
    Out.I = V;
    return Out;
  }
  static Value fpVal(double V) {
    Value Out;
    Out.K = Kind::Fp;
    Out.D = V;
    return Out;
  }
  static Value ptrVal(Ptr P) {
    Value Out;
    Out.K = Kind::Pointer;
    Out.P = P;
    return Out;
  }
  static Value nullPtr() { return ptrVal(Ptr()); }

  bool truthy() const {
    switch (K) {
    case Kind::Int: return I != 0;
    case Kind::Fp: return D != 0;
    case Kind::Pointer: return P.Block != 0 || P.Off != 0;
    }
    return false;
  }
  long asInt() const {
    switch (K) {
    case Kind::Int: return I;
    case Kind::Fp: return static_cast<long>(D);
    case Kind::Pointer: return static_cast<long>(P.Block) * 1000003 + P.Off;
    }
    return 0;
  }
  double asFp() const { return K == Kind::Fp ? D : static_cast<double>(I); }
};

struct Cell {
  Value V;
  bool Defined = false;
};

struct MemBlock {
  enum class Kind { Heap, Stack, Static };
  enum class State { Alive, Freed };
  Kind K = Kind::Heap;
  State St = State::Alive;
  std::vector<Cell> Cells;
  SourceLocation AllocLoc;
  std::string Label; ///< for leak reports ("malloc at drive.c:12")
};

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter implementation
//===----------------------------------------------------------------------===//

class Interpreter::Impl {
public:
  Impl(const TranslationUnit &TU, RunResult &Result, unsigned long MaxSteps)
      : TU(TU), Result(Result), MaxSteps(MaxSteps) {
    Blocks.emplace_back(); // block 0: the null block (no cells)
    Blocks[0].K = MemBlock::Kind::Static;
    Blocks[0].Label = "null block";
  }

  void run(const std::string &Entry);

private:
  //===--- control-flow signals --------------------------------------------===//
  enum class Flow { Normal, Break, Continue, Return };

  bool aborted() const { return Aborted || Exited; }

  void reportError(RuntimeError::Kind K, const SourceLocation &Loc,
                   std::string Message, bool Fatal) {
    RuntimeError E;
    E.K = K;
    E.Loc = Loc;
    E.Message = std::move(Message);
    Result.Errors.push_back(std::move(E));
    if (Fatal)
      Aborted = true;
  }

  bool step(const SourceLocation &Loc) {
    if (++Result.Steps > MaxSteps) {
      reportError(RuntimeError::Kind::Trap, Loc, "step limit exceeded",
                  /*Fatal=*/true);
      return false;
    }
    return !aborted();
  }

  //===--- memory ------------------------------------------------------------===//
  unsigned newBlock(MemBlock::Kind K, unsigned Size,
                    const SourceLocation &Loc, std::string Label) {
    MemBlock B;
    B.K = K;
    B.Cells.resize(Size);
    B.AllocLoc = Loc;
    B.Label = std::move(Label);
    Blocks.push_back(std::move(B));
    return static_cast<unsigned>(Blocks.size() - 1);
  }

  /// Validates an access; returns the cell or null after reporting.
  Cell *access(const Ptr &P, const SourceLocation &Loc, const char *What) {
    if (P.isNull()) {
      reportError(RuntimeError::Kind::NullDeref, Loc,
                  std::string(What) + " through null pointer",
                  /*Fatal=*/true);
      return nullptr;
    }
    if (P.Block >= Blocks.size()) {
      reportError(RuntimeError::Kind::Trap, Loc, "wild pointer", true);
      return nullptr;
    }
    MemBlock &B = Blocks[P.Block];
    if (B.St == MemBlock::State::Freed) {
      reportError(RuntimeError::Kind::UseAfterFree, Loc,
                  std::string(What) + " of released storage (" + B.Label +
                      ")",
                  /*Fatal=*/true);
      return nullptr;
    }
    if (P.Off < 0 || P.Off >= static_cast<long>(B.Cells.size())) {
      reportError(RuntimeError::Kind::OutOfBounds, Loc,
                  std::string(What) + " out of bounds (offset " +
                      std::to_string(P.Off) + " of " +
                      std::to_string(B.Cells.size()) + ")",
                  /*Fatal=*/true);
      return nullptr;
    }
    return &B.Cells[P.Off];
  }

  std::optional<Value> load(const Ptr &P, const SourceLocation &Loc) {
    Cell *C = access(P, Loc, "read");
    if (!C)
      return std::nullopt;
    if (!C->Defined) {
      // Report and continue with a zero value (Purify-style).
      reportError(RuntimeError::Kind::UndefRead, Loc,
                  "read of undefined storage", /*Fatal=*/false);
      C->Defined = true;
      C->V = Value::intVal(0);
    }
    return C->V;
  }

  bool store(const Ptr &P, const Value &V, const SourceLocation &Loc) {
    Cell *C = access(P, Loc, "write");
    if (!C)
      return false;
    C->V = V;
    C->Defined = true;
    return true;
  }

  //===--- type layout --------------------------------------------------------===//
  unsigned sizeOf(QualType Ty) {
    if (Ty.isNull())
      return 1;
    const Type *C = Ty.canonical().type();
    switch (C->kind()) {
    case Type::TypeKind::Builtin:
      return cast<BuiltinType>(C)->isVoid() ? 1 : 1;
    case Type::TypeKind::Pointer:
    case Type::TypeKind::Enum:
    case Type::TypeKind::Function:
      return 1;
    case Type::TypeKind::Array: {
      const auto *AT = cast<ArrayType>(C);
      unsigned N = AT->size() ? static_cast<unsigned>(*AT->size()) : 1;
      return N * sizeOf(AT->element());
    }
    case Type::TypeKind::Record: {
      const RecordDecl *RD = cast<RecordType>(C)->decl();
      return recordLayout(RD).Size;
    }
    case Type::TypeKind::Typedef:
      return 1; // canonical() strips typedefs; unreachable
    }
    return 1;
  }

  struct Layout {
    unsigned Size = 1;
    std::map<const FieldDecl *, unsigned> Offsets;
  };

  const Layout &recordLayout(const RecordDecl *RD) {
    auto It = Layouts.find(RD);
    if (It != Layouts.end())
      return It->second;
    Layout L;
    unsigned Off = 0;
    for (const FieldDecl *F : RD->fields()) {
      L.Offsets[F] = RD->isUnion() ? 0 : Off;
      unsigned FS = sizeOf(F->type());
      if (RD->isUnion())
        L.Size = std::max(L.Size, FS);
      else
        Off += FS;
    }
    if (!RD->isUnion())
      L.Size = std::max(1u, Off);
    return Layouts.emplace(RD, std::move(L)).first->second;
  }

  //===--- environments --------------------------------------------------------===//
  struct Frame {
    std::map<const VarDecl *, Ptr> Vars;
    std::vector<unsigned> OwnedBlocks; ///< stack blocks to kill on exit
  };

  Ptr allocVar(const VarDecl *VD, bool Global) {
    unsigned Size = sizeOf(VD->type());
    unsigned Id =
        newBlock(Global ? MemBlock::Kind::Static : MemBlock::Kind::Stack,
                 Size, VD->loc(), VD->name());
    if (Global) {
      // Globals are zero-initialized and defined.
      for (Cell &C : Blocks[Id].Cells) {
        C.Defined = true;
        C.V = VD->type().isPointer() ? Value::nullPtr() : Value::intVal(0);
      }
      GlobalVars[VD] = Ptr{Id, 0};
    } else {
      Frames.back().Vars[VD] = Ptr{Id, 0};
      Frames.back().OwnedBlocks.push_back(Id);
    }
    return Ptr{Id, 0};
  }

  std::optional<Ptr> varLocation(const VarDecl *VD) {
    if (!Frames.empty()) {
      auto It = Frames.back().Vars.find(VD);
      if (It != Frames.back().Vars.end())
        return It->second;
    }
    auto GIt = GlobalVars.find(VD);
    if (GIt != GlobalVars.end())
      return GIt->second;
    // Static local or global first touched now.
    if (VD->isGlobal() || VD->isStaticLocal())
      return allocVar(VD, /*Global=*/true);
    return std::nullopt;
  }

  //===--- string literals ------------------------------------------------------===//
  static std::string decodeEscapes(const std::string &Raw) {
    std::string Out;
    for (size_t I = 0; I < Raw.size(); ++I) {
      if (Raw[I] != '\\' || I + 1 >= Raw.size()) {
        Out += Raw[I];
        continue;
      }
      ++I;
      switch (Raw[I]) {
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case '0': Out += '\0'; break;
      case '\\': Out += '\\'; break;
      case '"': Out += '"'; break;
      case '\'': Out += '\''; break;
      default: Out += Raw[I]; break;
      }
    }
    return Out;
  }

  Ptr stringLiteral(const StringLiteralExpr *E) {
    auto It = StringBlocks.find(E);
    if (It != StringBlocks.end())
      return Ptr{It->second, 0};
    std::string Text = decodeEscapes(E->value());
    unsigned Id = newBlock(MemBlock::Kind::Static,
                           static_cast<unsigned>(Text.size() + 1), E->loc(),
                           "string literal");
    for (size_t I = 0; I < Text.size(); ++I) {
      Blocks[Id].Cells[I].V = Value::intVal(Text[I]);
      Blocks[Id].Cells[I].Defined = true;
    }
    Blocks[Id].Cells[Text.size()].V = Value::intVal(0);
    Blocks[Id].Cells[Text.size()].Defined = true;
    StringBlocks[E] = Id;
    return Ptr{Id, 0};
  }

  /// Reads a NUL-terminated string starting at P.
  std::optional<std::string> readCString(Ptr P, const SourceLocation &Loc) {
    std::string Out;
    for (unsigned Guard = 0; Guard < 1u << 20; ++Guard) {
      std::optional<Value> V = load(P, Loc);
      if (!V)
        return std::nullopt;
      long Ch = V->asInt();
      if (Ch == 0)
        return Out;
      Out += static_cast<char>(Ch);
      ++P.Off;
    }
    reportError(RuntimeError::Kind::Trap, Loc, "unterminated string", true);
    return std::nullopt;
  }

  bool writeCString(Ptr P, const std::string &Text,
                    const SourceLocation &Loc) {
    for (char Ch : Text) {
      if (!store(P, Value::intVal(Ch), Loc))
        return false;
      ++P.Off;
    }
    return store(P, Value::intVal(0), Loc);
  }

  //===--- expression evaluation -------------------------------------------------===//
  std::optional<Value> evalExpr(const Expr *E);
  std::optional<Ptr> evalLValue(const Expr *E);
  std::optional<Value> evalCall(const CallExpr *CE);
  std::optional<Value> callFunction(const FunctionDecl *FD,
                                    std::vector<Value> Args,
                                    const SourceLocation &Loc);
  std::optional<Value> builtinCall(const std::string &Name,
                                   const CallExpr *CE,
                                   std::vector<Value> &Args);
  std::optional<Value> evalBinary(const BinaryExpr *BE);
  bool copyCells(const Ptr &Dst, const Ptr &Src, unsigned N,
                 const SourceLocation &Loc);
  bool assignRecord(const Expr *LHS, const Expr *RHS,
                    const SourceLocation &Loc);

  //===--- statements ---------------------------------------------------------===//
  Flow execStmt(const Stmt *S);
  Flow execCompound(const CompoundStmt *CS);

  //===--- state ---------------------------------------------------------------===//
  friend class Interpreter;
  const TranslationUnit &TU;
  RunResult &Result;
  unsigned long MaxSteps;

  std::vector<MemBlock> Blocks;
  std::map<const VarDecl *, Ptr> GlobalVars;
  std::map<const StringLiteralExpr *, unsigned> StringBlocks;
  std::map<const RecordDecl *, Layout> Layouts;
  std::vector<Frame> Frames;

  bool Aborted = false;
  bool Exited = false;
  Value ReturnValue;
  unsigned CallDepth = 0;

public:
  void scanLeaks();
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Interpreter::Impl::Flow Interpreter::Impl::execStmt(const Stmt *S) {
  if (!S || !step(S->loc()))
    return Flow::Normal;
  switch (S->kind()) {
  case Stmt::StmtKind::Compound:
    return execCompound(cast<CompoundStmt>(S));
  case Stmt::StmtKind::Null:
    return Flow::Normal;
  case Stmt::StmtKind::Decl: {
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls()) {
      if (VD->isStaticLocal()) {
        if (!GlobalVars.count(VD)) {
          allocVar(VD, /*Global=*/true);
          if (VD->init()) {
            std::optional<Value> V = evalExpr(VD->init());
            if (!V)
              return Flow::Normal;
            store(GlobalVars[VD], *V, VD->loc());
          }
        }
        continue;
      }
      Ptr Loc = allocVar(VD, /*Global=*/false);
      if (const Expr *Init = VD->init()) {
        if (const auto *IL = dyn_cast<InitListExpr>(Init)) {
          long Off = 0;
          for (const Expr *Elem : IL->inits()) {
            std::optional<Value> V = evalExpr(Elem);
            if (!V)
              return Flow::Normal;
            store(Ptr{Loc.Block, Off++}, *V, VD->loc());
          }
          continue;
        }
        if (VD->type().isRecord()) {
          // struct x = *p style initialization.
          std::optional<Ptr> Src = evalLValue(Init);
          if (!Src)
            return Flow::Normal;
          copyCells(Loc, *Src, sizeOf(VD->type()), VD->loc());
          continue;
        }
        std::optional<Value> V = evalExpr(Init);
        if (!V)
          return Flow::Normal;
        store(Loc, *V, VD->loc());
      }
    }
    return Flow::Normal;
  }
  case Stmt::StmtKind::Expr:
    evalExpr(cast<ExprStmt>(S)->expr());
    return Flow::Normal;
  case Stmt::StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    std::optional<Value> Cond = evalExpr(IS->cond());
    if (!Cond)
      return Flow::Normal;
    if (Cond->truthy())
      return execStmt(IS->thenStmt());
    if (IS->elseStmt())
      return execStmt(IS->elseStmt());
    return Flow::Normal;
  }
  case Stmt::StmtKind::While: {
    const auto *WS = cast<WhileStmt>(S);
    while (!aborted()) {
      std::optional<Value> Cond = evalExpr(WS->cond());
      if (!Cond || !Cond->truthy())
        break;
      Flow F = execStmt(WS->body());
      if (F == Flow::Break)
        break;
      if (F == Flow::Return)
        return F;
      if (!step(S->loc()))
        break;
    }
    return Flow::Normal;
  }
  case Stmt::StmtKind::Do: {
    const auto *DS = cast<DoStmt>(S);
    while (!aborted()) {
      Flow F = execStmt(DS->body());
      if (F == Flow::Break)
        break;
      if (F == Flow::Return)
        return F;
      std::optional<Value> Cond = evalExpr(DS->cond());
      if (!Cond || !Cond->truthy())
        break;
      if (!step(S->loc()))
        break;
    }
    return Flow::Normal;
  }
  case Stmt::StmtKind::For: {
    const auto *FS = cast<ForStmt>(S);
    if (FS->init())
      execStmt(FS->init());
    while (!aborted()) {
      if (FS->cond()) {
        std::optional<Value> Cond = evalExpr(FS->cond());
        if (!Cond || !Cond->truthy())
          break;
      }
      Flow F = execStmt(FS->body());
      if (F == Flow::Break)
        break;
      if (F == Flow::Return)
        return F;
      if (FS->inc())
        evalExpr(FS->inc());
      if (!step(S->loc()))
        break;
    }
    return Flow::Normal;
  }
  case Stmt::StmtKind::Switch: {
    const auto *SS = cast<SwitchStmt>(S);
    std::optional<Value> Cond = evalExpr(SS->cond());
    if (!Cond)
      return Flow::Normal;
    long Target = Cond->asInt();
    // Find the matching section (or default), then fall through.
    size_t StartIdx = SS->sections().size();
    size_t DefaultIdx = SS->sections().size();
    for (size_t I = 0; I < SS->sections().size(); ++I) {
      const SwitchStmt::CaseSection &Section = SS->sections()[I];
      if (Section.IsDefault)
        DefaultIdx = I;
      for (const Expr *Label : Section.Labels) {
        std::optional<Value> LV = evalExpr(Label);
        if (LV && LV->asInt() == Target && StartIdx == SS->sections().size())
          StartIdx = I;
      }
    }
    if (StartIdx == SS->sections().size())
      StartIdx = DefaultIdx;
    for (size_t I = StartIdx; I < SS->sections().size(); ++I) {
      for (const Stmt *Sub : SS->sections()[I].Body) {
        Flow F = execStmt(Sub);
        if (F == Flow::Break)
          return Flow::Normal;
        if (F == Flow::Return || F == Flow::Continue)
          return F;
        if (aborted())
          return Flow::Normal;
      }
    }
    return Flow::Normal;
  }
  case Stmt::StmtKind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    if (RS->value()) {
      std::optional<Value> V = evalExpr(RS->value());
      ReturnValue = V ? *V : Value::intVal(0);
    } else {
      ReturnValue = Value::intVal(0);
    }
    return Flow::Return;
  }
  case Stmt::StmtKind::Break:
    return Flow::Break;
  case Stmt::StmtKind::Continue:
    return Flow::Continue;
  }
  return Flow::Normal;
}

Interpreter::Impl::Flow Interpreter::Impl::execCompound(const CompoundStmt *CS) {
  for (const Stmt *S : CS->body()) {
    Flow F = execStmt(S);
    if (F != Flow::Normal)
      return F;
    if (aborted())
      break;
  }
  return Flow::Normal;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::optional<Ptr> Interpreter::Impl::evalLValue(const Expr *E) {
  if (!E || !step(E->loc()))
    return std::nullopt;
  E = E->ignoreParens();
  switch (E->kind()) {
  case Expr::ExprKind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    const auto *VD = dyn_cast_or_null<VarDecl>(DRE->decl());
    if (!VD) {
      reportError(RuntimeError::Kind::Trap, E->loc(),
                  "cannot take location of '" + DRE->name() + "'", true);
      return std::nullopt;
    }
    std::optional<Ptr> P = varLocation(VD);
    if (!P)
      reportError(RuntimeError::Kind::Trap, E->loc(),
                  "unbound variable '" + VD->name() + "'", true);
    return P;
  }
  case Expr::ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() != UnaryOp::Deref)
      break;
    std::optional<Value> V = evalExpr(UE->sub());
    if (!V)
      return std::nullopt;
    if (V->K != Value::Kind::Pointer) {
      reportError(RuntimeError::Kind::Trap, E->loc(),
                  "dereference of non-pointer value", true);
      return std::nullopt;
    }
    if (V->P.isNull()) {
      reportError(RuntimeError::Kind::NullDeref, E->loc(),
                  "dereference of null pointer: " + exprToString(E), true);
      return std::nullopt;
    }
    return V->P;
  }
  case Expr::ExprKind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    Ptr Base;
    if (ME->isArrow()) {
      std::optional<Value> V = evalExpr(ME->base());
      if (!V)
        return std::nullopt;
      if (V->K != Value::Kind::Pointer || V->P.isNull()) {
        reportError(RuntimeError::Kind::NullDeref, E->loc(),
                    "arrow access through null pointer: " + exprToString(E),
                    true);
        return std::nullopt;
      }
      Base = V->P;
    } else {
      std::optional<Ptr> P = evalLValue(ME->base());
      if (!P)
        return std::nullopt;
      Base = *P;
    }
    const FieldDecl *FD = ME->field();
    if (!FD) {
      reportError(RuntimeError::Kind::Trap, E->loc(),
                  "unresolved field '" + ME->member() + "'", true);
      return std::nullopt;
    }
    // Offset within the record.
    QualType BaseTy =
        ME->isArrow() ? ME->base()->type().pointee() : ME->base()->type();
    const auto *RT =
        dyn_cast_or_null<RecordType>(BaseTy.canonical().type());
    if (!RT) {
      reportError(RuntimeError::Kind::Trap, E->loc(), "bad member base",
                  true);
      return std::nullopt;
    }
    const Layout &L = recordLayout(RT->decl());
    auto It = L.Offsets.find(FD);
    long FieldOff = It == L.Offsets.end() ? 0 : It->second;
    return Ptr{Base.Block, Base.Off + FieldOff};
  }
  case Expr::ExprKind::ArraySubscript: {
    const auto *AE = cast<ArraySubscriptExpr>(E);
    // Array-typed bases decay to their first element's location; pointer
    // bases are loaded.
    Ptr Base;
    if (AE->base()->type().isArray()) {
      std::optional<Ptr> P = evalLValue(AE->base());
      if (!P)
        return std::nullopt;
      Base = *P;
    } else {
      std::optional<Value> V = evalExpr(AE->base());
      if (!V)
        return std::nullopt;
      if (V->K != Value::Kind::Pointer || V->P.isNull()) {
        reportError(RuntimeError::Kind::NullDeref, E->loc(),
                    "index through null pointer: " + exprToString(E), true);
        return std::nullopt;
      }
      Base = V->P;
    }
    std::optional<Value> Index = evalExpr(AE->index());
    if (!Index)
      return std::nullopt;
    long Scale = sizeOf(E->type());
    return Ptr{Base.Block, Base.Off + Index->asInt() * Scale};
  }
  default:
    break;
  }
  reportError(RuntimeError::Kind::Trap, E->loc(),
              "expression is not an lvalue: " + exprToString(E), true);
  return std::nullopt;
}

bool Interpreter::Impl::copyCells(const Ptr &Dst, const Ptr &Src,
                                  unsigned N, const SourceLocation &Loc) {
  // A whole-record copy moves the definedness flags verbatim: copying
  // uninitialized padding is not a read of undefined storage.
  for (unsigned I = 0; I < N; ++I) {
    Cell *From = access(Ptr{Src.Block, Src.Off + static_cast<long>(I)}, Loc,
                        "read");
    if (!From)
      return false;
    Cell *To = access(Ptr{Dst.Block, Dst.Off + static_cast<long>(I)}, Loc,
                      "write");
    if (!To)
      return false;
    *To = *From;
  }
  return true;
}

bool Interpreter::Impl::assignRecord(const Expr *LHS, const Expr *RHS,
                                     const SourceLocation &Loc) {
  std::optional<Ptr> Src = evalLValue(RHS);
  if (!Src)
    return false;
  std::optional<Ptr> Dst = evalLValue(LHS);
  if (!Dst)
    return false;
  return copyCells(*Dst, *Src, sizeOf(LHS->type()), Loc);
}

std::optional<Value> Interpreter::Impl::evalBinary(const BinaryExpr *BE) {
  BinaryOp Op = BE->op();

  if (Op == BinaryOp::Assign) {
    if (BE->lhs()->type().isRecord()) {
      if (!assignRecord(BE->lhs(), BE->rhs(), BE->loc()))
        return std::nullopt;
      return Value::intVal(0);
    }
    std::optional<Value> V = evalExpr(BE->rhs());
    if (!V)
      return std::nullopt;
    std::optional<Ptr> Loc = evalLValue(BE->lhs());
    if (!Loc || !store(*Loc, *V, BE->loc()))
      return std::nullopt;
    return V;
  }

  if (isAssignmentOp(Op)) {
    // Compound assignment: load, combine, store.
    std::optional<Ptr> Loc = evalLValue(BE->lhs());
    if (!Loc)
      return std::nullopt;
    std::optional<Value> Old = load(*Loc, BE->loc());
    std::optional<Value> RHS = evalExpr(BE->rhs());
    if (!Old || !RHS)
      return std::nullopt;
    Value New;
    if (Old->K == Value::Kind::Pointer) {
      long Scale = sizeOf(BE->lhs()->type().isPointer()
                              ? BE->lhs()->type().pointee()
                              : QualType());
      Ptr P = Old->P;
      long Delta = RHS->asInt() * Scale;
      P.Off += (Op == BinaryOp::SubAssign) ? -Delta : Delta;
      New = Value::ptrVal(P);
    } else {
      long A = Old->asInt(), B = RHS->asInt();
      switch (Op) {
      case BinaryOp::AddAssign: New = Value::intVal(A + B); break;
      case BinaryOp::SubAssign: New = Value::intVal(A - B); break;
      case BinaryOp::MulAssign: New = Value::intVal(A * B); break;
      case BinaryOp::DivAssign:
        New = Value::intVal(B ? A / B : 0);
        break;
      case BinaryOp::RemAssign:
        New = Value::intVal(B ? A % B : 0);
        break;
      case BinaryOp::AndAssign: New = Value::intVal(A & B); break;
      case BinaryOp::OrAssign: New = Value::intVal(A | B); break;
      case BinaryOp::XorAssign: New = Value::intVal(A ^ B); break;
      case BinaryOp::ShlAssign: New = Value::intVal(A << (B & 63)); break;
      case BinaryOp::ShrAssign: New = Value::intVal(A >> (B & 63)); break;
      default: New = Value::intVal(A); break;
      }
    }
    if (!store(*Loc, New, BE->loc()))
      return std::nullopt;
    return New;
  }

  if (Op == BinaryOp::LAnd) {
    std::optional<Value> L = evalExpr(BE->lhs());
    if (!L)
      return std::nullopt;
    if (!L->truthy())
      return Value::intVal(0);
    std::optional<Value> R = evalExpr(BE->rhs());
    if (!R)
      return std::nullopt;
    return Value::intVal(R->truthy() ? 1 : 0);
  }
  if (Op == BinaryOp::LOr) {
    std::optional<Value> L = evalExpr(BE->lhs());
    if (!L)
      return std::nullopt;
    if (L->truthy())
      return Value::intVal(1);
    std::optional<Value> R = evalExpr(BE->rhs());
    if (!R)
      return std::nullopt;
    return Value::intVal(R->truthy() ? 1 : 0);
  }
  if (Op == BinaryOp::Comma) {
    if (!evalExpr(BE->lhs()))
      return std::nullopt;
    return evalExpr(BE->rhs());
  }

  std::optional<Value> L = evalExpr(BE->lhs());
  std::optional<Value> R = evalExpr(BE->rhs());
  if (!L || !R)
    return std::nullopt;

  // Pointer arithmetic and comparisons.
  if (L->K == Value::Kind::Pointer || R->K == Value::Kind::Pointer) {
    switch (Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      const Value &PtrSide = L->K == Value::Kind::Pointer ? *L : *R;
      const Value &IntSide = L->K == Value::Kind::Pointer ? *R : *L;
      if (L->K == Value::Kind::Pointer && R->K == Value::Kind::Pointer) {
        // Pointer difference in elements.
        return Value::intVal(L->P.Off - R->P.Off);
      }
      QualType PtrTy = L->K == Value::Kind::Pointer ? BE->lhs()->type()
                                                    : BE->rhs()->type();
      long Scale =
          (PtrTy.isPointer() || PtrTy.isArray()) ? sizeOf(PtrTy.pointee())
                                                 : 1;
      Ptr P = PtrSide.P;
      long Delta = IntSide.asInt() * Scale;
      P.Off += (Op == BinaryOp::Sub) ? -Delta : Delta;
      return Value::ptrVal(P);
    }
    case BinaryOp::EQ:
    case BinaryOp::NE: {
      bool Equal;
      if (L->K == Value::Kind::Pointer && R->K == Value::Kind::Pointer)
        Equal = L->P == R->P;
      else if (L->K == Value::Kind::Pointer)
        Equal = !L->truthy() && R->asInt() == 0;
      else
        Equal = !R->truthy() && L->asInt() == 0;
      return Value::intVal((Op == BinaryOp::EQ) == Equal ? 1 : 0);
    }
    case BinaryOp::LT: return Value::intVal(L->P.Off < R->P.Off);
    case BinaryOp::GT: return Value::intVal(L->P.Off > R->P.Off);
    case BinaryOp::LE: return Value::intVal(L->P.Off <= R->P.Off);
    case BinaryOp::GE: return Value::intVal(L->P.Off >= R->P.Off);
    default:
      reportError(RuntimeError::Kind::Trap, BE->loc(),
                  "bad pointer arithmetic", true);
      return std::nullopt;
    }
  }

  if (L->K == Value::Kind::Fp || R->K == Value::Kind::Fp) {
    double A = L->asFp(), B = R->asFp();
    switch (Op) {
    case BinaryOp::Add: return Value::fpVal(A + B);
    case BinaryOp::Sub: return Value::fpVal(A - B);
    case BinaryOp::Mul: return Value::fpVal(A * B);
    case BinaryOp::Div: return Value::fpVal(B != 0 ? A / B : 0);
    case BinaryOp::LT: return Value::intVal(A < B);
    case BinaryOp::GT: return Value::intVal(A > B);
    case BinaryOp::LE: return Value::intVal(A <= B);
    case BinaryOp::GE: return Value::intVal(A >= B);
    case BinaryOp::EQ: return Value::intVal(A == B);
    case BinaryOp::NE: return Value::intVal(A != B);
    default: return Value::fpVal(0);
    }
  }

  long A = L->asInt(), B = R->asInt();
  switch (Op) {
  case BinaryOp::Add: return Value::intVal(A + B);
  case BinaryOp::Sub: return Value::intVal(A - B);
  case BinaryOp::Mul: return Value::intVal(A * B);
  case BinaryOp::Div: return Value::intVal(B ? A / B : 0);
  case BinaryOp::Rem: return Value::intVal(B ? A % B : 0);
  case BinaryOp::Shl: return Value::intVal(A << (B & 63));
  case BinaryOp::Shr: return Value::intVal(A >> (B & 63));
  case BinaryOp::LT: return Value::intVal(A < B);
  case BinaryOp::GT: return Value::intVal(A > B);
  case BinaryOp::LE: return Value::intVal(A <= B);
  case BinaryOp::GE: return Value::intVal(A >= B);
  case BinaryOp::EQ: return Value::intVal(A == B);
  case BinaryOp::NE: return Value::intVal(A != B);
  case BinaryOp::And: return Value::intVal(A & B);
  case BinaryOp::Or: return Value::intVal(A | B);
  case BinaryOp::Xor: return Value::intVal(A ^ B);
  default:
    return Value::intVal(0);
  }
}

std::optional<Value> Interpreter::Impl::evalExpr(const Expr *E) {
  if (!E || !step(E->loc()))
    return std::nullopt;
  switch (E->kind()) {
  case Expr::ExprKind::Paren:
    return evalExpr(cast<ParenExpr>(E)->sub());
  case Expr::ExprKind::IntegerLiteral:
    return Value::intVal(cast<IntegerLiteralExpr>(E)->value());
  case Expr::ExprKind::FloatLiteral:
    return Value::fpVal(cast<FloatLiteralExpr>(E)->value());
  case Expr::ExprKind::CharLiteral:
    return Value::intVal(cast<CharLiteralExpr>(E)->value());
  case Expr::ExprKind::StringLiteral:
    return Value::ptrVal(stringLiteral(cast<StringLiteralExpr>(E)));
  case Expr::ExprKind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (const auto *EC = dyn_cast_or_null<EnumConstantDecl>(DRE->decl()))
      return Value::intVal(EC->value());
    if (const auto *VD = dyn_cast_or_null<VarDecl>(DRE->decl())) {
      std::optional<Ptr> P = varLocation(VD);
      if (!P) {
        reportError(RuntimeError::Kind::Trap, E->loc(),
                    "unbound variable '" + VD->name() + "'", true);
        return std::nullopt;
      }
      if (VD->type().isArray())
        return Value::ptrVal(*P); // arrays decay to their first element
      return load(*P, E->loc());
    }
    // A function designator: represent as an int tag (indirect calls are
    // resolved by name through direct callees only).
    return Value::intVal(1);
  }
  case Expr::ExprKind::Member: {
    std::optional<Ptr> P = evalLValue(E);
    if (!P)
      return std::nullopt;
    if (E->type().isArray() || E->type().isRecord())
      return Value::ptrVal(*P);
    return load(*P, E->loc());
  }
  case Expr::ExprKind::ArraySubscript: {
    std::optional<Ptr> P = evalLValue(E);
    if (!P)
      return std::nullopt;
    if (E->type().isArray() || E->type().isRecord())
      return Value::ptrVal(*P);
    return load(*P, E->loc());
  }
  case Expr::ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    switch (UE->op()) {
    case UnaryOp::Deref: {
      std::optional<Ptr> P = evalLValue(E);
      if (!P)
        return std::nullopt;
      if (E->type().isRecord() || E->type().isArray())
        return Value::ptrVal(*P);
      return load(*P, E->loc());
    }
    case UnaryOp::AddrOf: {
      std::optional<Ptr> P = evalLValue(UE->sub());
      if (!P)
        return std::nullopt;
      return Value::ptrVal(*P);
    }
    case UnaryOp::Not: {
      std::optional<Value> V = evalExpr(UE->sub());
      if (!V)
        return std::nullopt;
      return Value::intVal(V->truthy() ? 0 : 1);
    }
    case UnaryOp::BitNot: {
      std::optional<Value> V = evalExpr(UE->sub());
      if (!V)
        return std::nullopt;
      return Value::intVal(~V->asInt());
    }
    case UnaryOp::Plus:
      return evalExpr(UE->sub());
    case UnaryOp::Minus: {
      std::optional<Value> V = evalExpr(UE->sub());
      if (!V)
        return std::nullopt;
      if (V->K == Value::Kind::Fp)
        return Value::fpVal(-V->D);
      return Value::intVal(-V->asInt());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      std::optional<Ptr> Loc = evalLValue(UE->sub());
      if (!Loc)
        return std::nullopt;
      std::optional<Value> Old = load(*Loc, E->loc());
      if (!Old)
        return std::nullopt;
      bool Inc = UE->op() == UnaryOp::PreInc || UE->op() == UnaryOp::PostInc;
      Value New;
      if (Old->K == Value::Kind::Pointer) {
        long Scale = UE->sub()->type().isPointer()
                         ? sizeOf(UE->sub()->type().pointee())
                         : 1;
        Ptr P = Old->P;
        P.Off += Inc ? Scale : -Scale;
        New = Value::ptrVal(P);
      } else {
        New = Value::intVal(Old->asInt() + (Inc ? 1 : -1));
      }
      if (!store(*Loc, New, E->loc()))
        return std::nullopt;
      bool Post =
          UE->op() == UnaryOp::PostInc || UE->op() == UnaryOp::PostDec;
      return Post ? Old : New;
    }
    }
    return std::nullopt;
  }
  case Expr::ExprKind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::ExprKind::Call:
    return evalCall(cast<CallExpr>(E));
  case Expr::ExprKind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    std::optional<Value> V = evalExpr(CE->sub());
    if (!V)
      return std::nullopt;
    QualType Target = CE->type();
    if (Target.isPointer()) {
      if (V->K == Value::Kind::Pointer)
        return V;
      if (V->asInt() == 0)
        return Value::nullPtr();
      reportError(RuntimeError::Kind::Trap, E->loc(),
                  "cast of non-zero integer to pointer", true);
      return std::nullopt;
    }
    if (Target.isInteger() && V->K == Value::Kind::Fp)
      return Value::intVal(static_cast<long>(V->D));
    if (!Target.isInteger() && Target.isArithmetic() &&
        V->K == Value::Kind::Int)
      return Value::fpVal(static_cast<double>(V->I));
    return V;
  }
  case Expr::ExprKind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    QualType Ty = SE->argExpr() ? SE->argExpr()->type() : SE->argType();
    return Value::intVal(sizeOf(Ty));
  }
  case Expr::ExprKind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    std::optional<Value> Cond = evalExpr(CE->cond());
    if (!Cond)
      return std::nullopt;
    return evalExpr(Cond->truthy() ? CE->trueExpr() : CE->falseExpr());
  }
  case Expr::ExprKind::InitList:
    reportError(RuntimeError::Kind::Trap, E->loc(),
                "initializer list in expression context", true);
    return std::nullopt;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Calls and builtins
//===----------------------------------------------------------------------===//

std::optional<Value> Interpreter::Impl::evalCall(const CallExpr *CE) {
  const FunctionDecl *Callee = CE->directCallee();
  if (!Callee) {
    reportError(RuntimeError::Kind::Trap, CE->loc(),
                "indirect calls are not supported", true);
    return std::nullopt;
  }

  std::vector<Value> Args;
  Args.reserve(CE->args().size());
  for (const Expr *A : CE->args()) {
    std::optional<Value> V = evalExpr(A);
    if (!V)
      return std::nullopt;
    Args.push_back(*V);
  }

  // assert() needs the source expression for its message.
  if (Callee->name() == "assert") {
    if (!Args.empty() && !Args[0].truthy())
      reportError(RuntimeError::Kind::AssertFailed, CE->loc(),
                  "assertion failed: " + exprToString(CE->args()[0]), true);
    return Value::intVal(0);
  }

  if (!Callee->isDefinition()) {
    std::optional<Value> Builtin = builtinCall(Callee->name(), CE, Args);
    if (Builtin || aborted())
      return Builtin;
    reportError(RuntimeError::Kind::Trap, CE->loc(),
                "call to undefined function '" + Callee->name() + "'", true);
    return std::nullopt;
  }
  return callFunction(Callee, std::move(Args), CE->loc());
}

std::optional<Value>
Interpreter::Impl::callFunction(const FunctionDecl *FD,
                                std::vector<Value> Args,
                                const SourceLocation &Loc) {
  if (CallDepth > 200) {
    reportError(RuntimeError::Kind::Trap, Loc, "call depth exceeded", true);
    return std::nullopt;
  }
  ++CallDepth;
  Frames.emplace_back();
  const auto &Params = FD->params();
  for (size_t I = 0; I < Params.size(); ++I) {
    Ptr Slot = allocVar(Params[I], /*Global=*/false);
    if (I < Args.size())
      store(Slot, Args[I], Params[I]->loc());
  }

  ReturnValue = Value::intVal(0);
  execCompound(FD->body());

  // Kill the frame's stack blocks so dangling pointers are caught.
  for (unsigned Id : Frames.back().OwnedBlocks)
    Blocks[Id].St = MemBlock::State::Freed;
  Frames.pop_back();
  --CallDepth;
  if (Aborted)
    return std::nullopt;
  return ReturnValue;
}

std::optional<Value> Interpreter::Impl::builtinCall(const std::string &Name,
                                                    const CallExpr *CE,
                                                    std::vector<Value> &Args) {
  const SourceLocation &Loc = CE->loc();
  auto argPtr = [&](size_t I) -> std::optional<Ptr> {
    if (I >= Args.size())
      return std::nullopt;
    if (Args[I].K == Value::Kind::Pointer)
      return Args[I].P;
    if (Args[I].asInt() == 0)
      return Ptr();
    return std::nullopt;
  };

  if (Name == "malloc" || Name == "calloc") {
    long N = Args.empty() ? 0 : Args[0].asInt();
    if (Name == "calloc" && Args.size() >= 2)
      N = Args[0].asInt() * Args[1].asInt();
    if (N <= 0)
      N = 1;
    unsigned Id = newBlock(MemBlock::Kind::Heap, static_cast<unsigned>(N),
                           Loc, "allocated at " + Loc.str());
    if (Name == "calloc")
      for (Cell &C : Blocks[Id].Cells) {
        C.Defined = true;
        C.V = Value::intVal(0);
      }
    return Value::ptrVal(Ptr{Id, 0});
  }

  if (Name == "free") {
    std::optional<Ptr> P = argPtr(0);
    if (!P) {
      reportError(RuntimeError::Kind::BadFree, Loc, "free of non-pointer",
                  true);
      return std::nullopt;
    }
    if (P->isNull())
      return Value::intVal(0); // free(NULL) is allowed
    if (P->Block >= Blocks.size()) {
      reportError(RuntimeError::Kind::BadFree, Loc, "free of wild pointer",
                  true);
      return std::nullopt;
    }
    MemBlock &B = Blocks[P->Block];
    if (B.St == MemBlock::State::Freed) {
      reportError(RuntimeError::Kind::DoubleFree, Loc,
                  "storage released twice (" + B.Label + ")", true);
      return std::nullopt;
    }
    if (B.K != MemBlock::Kind::Heap) {
      reportError(RuntimeError::Kind::BadFree, Loc,
                  "free of non-heap storage (" + B.Label + ")", true);
      return std::nullopt;
    }
    if (P->Off != 0) {
      reportError(RuntimeError::Kind::OffsetFree, Loc,
                  "free of pointer into the middle of a block (offset " +
                      std::to_string(P->Off) + ")",
                  true);
      return std::nullopt;
    }
    B.St = MemBlock::State::Freed;
    return Value::intVal(0);
  }

  if (Name == "exit" || Name == "abort") {
    Exited = true;
    Result.ExitCode = Name == "abort" ? 134 : (Args.empty() ? 0 : Args[0].asInt());
    return Value::intVal(0);
  }

  if (Name == "strlen") {
    std::optional<Ptr> P = argPtr(0);
    if (!P)
      return std::nullopt;
    std::optional<std::string> Text = readCString(*P, Loc);
    if (!Text)
      return std::nullopt;
    return Value::intVal(static_cast<long>(Text->size()));
  }
  if (Name == "strcpy" || Name == "strcat") {
    std::optional<Ptr> Dst = argPtr(0), Src = argPtr(1);
    if (!Dst || !Src)
      return std::nullopt;
    std::optional<std::string> Text = readCString(*Src, Loc);
    if (!Text)
      return std::nullopt;
    Ptr Out = *Dst;
    if (Name == "strcat") {
      std::optional<std::string> Existing = readCString(*Dst, Loc);
      if (!Existing)
        return std::nullopt;
      Out.Off += static_cast<long>(Existing->size());
    }
    if (!writeCString(Out, *Text, Loc))
      return std::nullopt;
    return Value::ptrVal(*Dst);
  }
  if (Name == "strncpy") {
    std::optional<Ptr> Dst = argPtr(0), Src = argPtr(1);
    if (!Dst || !Src || Args.size() < 3)
      return std::nullopt;
    long N = Args[2].asInt();
    Ptr In = *Src, Out = *Dst;
    bool SawNul = false;
    for (long I = 0; I < N; ++I) {
      long Ch = 0;
      if (!SawNul) {
        std::optional<Value> V = load(In, Loc);
        if (!V)
          return std::nullopt;
        Ch = V->asInt();
        if (Ch == 0)
          SawNul = true;
        ++In.Off;
      }
      if (!store(Out, Value::intVal(Ch), Loc))
        return std::nullopt;
      ++Out.Off;
    }
    return Value::ptrVal(*Dst);
  }
  if (Name == "strncmp") {
    std::optional<Ptr> A = argPtr(0), B = argPtr(1);
    if (!A || !B || Args.size() < 3)
      return std::nullopt;
    long N = Args[2].asInt();
    Ptr PA = *A, PB = *B;
    for (long I = 0; I < N; ++I) {
      std::optional<Value> VA = load(PA, Loc);
      std::optional<Value> VB = load(PB, Loc);
      if (!VA || !VB)
        return std::nullopt;
      long CA = VA->asInt(), CB = VB->asInt();
      if (CA != CB)
        return Value::intVal(CA < CB ? -1 : 1);
      if (CA == 0)
        break;
      ++PA.Off;
      ++PB.Off;
    }
    return Value::intVal(0);
  }
  if (Name == "memcmp") {
    std::optional<Ptr> A = argPtr(0), B = argPtr(1);
    if (!A || !B || Args.size() < 3)
      return std::nullopt;
    long N = Args[2].asInt();
    for (long I = 0; I < N; ++I) {
      std::optional<Value> VA = load(Ptr{A->Block, A->Off + I}, Loc);
      std::optional<Value> VB = load(Ptr{B->Block, B->Off + I}, Loc);
      if (!VA || !VB)
        return std::nullopt;
      if (VA->asInt() != VB->asInt())
        return Value::intVal(VA->asInt() < VB->asInt() ? -1 : 1);
    }
    return Value::intVal(0);
  }
  if (Name == "realloc") {
    std::optional<Ptr> P = argPtr(0);
    if (!P || Args.size() < 2)
      return std::nullopt;
    long N = Args[1].asInt();
    if (N <= 0)
      N = 1;
    unsigned Id = newBlock(MemBlock::Kind::Heap, static_cast<unsigned>(N),
                           Loc, "realloc at " + Loc.str());
    if (!P->isNull()) {
      if (P->Block >= Blocks.size() ||
          Blocks[P->Block].St == MemBlock::State::Freed) {
        reportError(RuntimeError::Kind::UseAfterFree, Loc,
                    "realloc of released storage", true);
        return std::nullopt;
      }
      MemBlock &Old = Blocks[P->Block];
      for (size_t I = 0; I < Old.Cells.size() &&
                         I < Blocks[Id].Cells.size();
           ++I)
        Blocks[Id].Cells[I] = Old.Cells[I];
      Old.St = MemBlock::State::Freed;
    }
    return Value::ptrVal(Ptr{Id, 0});
  }
  if (Name == "strcmp") {
    std::optional<Ptr> A = argPtr(0), B = argPtr(1);
    if (!A || !B)
      return std::nullopt;
    std::optional<std::string> SA = readCString(*A, Loc);
    std::optional<std::string> SB = readCString(*B, Loc);
    if (!SA || !SB)
      return std::nullopt;
    return Value::intVal(SA->compare(*SB));
  }
  if (Name == "strdup") {
    std::optional<Ptr> P = argPtr(0);
    if (!P)
      return std::nullopt;
    std::optional<std::string> Text = readCString(*P, Loc);
    if (!Text)
      return std::nullopt;
    unsigned Id =
        newBlock(MemBlock::Kind::Heap,
                 static_cast<unsigned>(Text->size() + 1), Loc,
                 "strdup at " + Loc.str());
    writeCString(Ptr{Id, 0}, *Text, Loc);
    return Value::ptrVal(Ptr{Id, 0});
  }
  if (Name == "memset") {
    std::optional<Ptr> P = argPtr(0);
    if (!P || Args.size() < 3)
      return std::nullopt;
    long N = Args[2].asInt();
    for (long I = 0; I < N; ++I)
      if (!store(Ptr{P->Block, P->Off + I}, Value::intVal(Args[1].asInt()),
                 Loc))
        return std::nullopt;
    return Value::ptrVal(*P);
  }
  if (Name == "memcpy") {
    std::optional<Ptr> Dst = argPtr(0), Src = argPtr(1);
    if (!Dst || !Src || Args.size() < 3)
      return std::nullopt;
    long N = Args[2].asInt();
    for (long I = 0; I < N; ++I) {
      std::optional<Value> V = load(Ptr{Src->Block, Src->Off + I}, Loc);
      if (!V || !store(Ptr{Dst->Block, Dst->Off + I}, *V, Loc))
        return std::nullopt;
    }
    return Value::ptrVal(*Dst);
  }

  if (Name == "printf" || Name == "puts" || Name == "putchar") {
    if (Name == "putchar") {
      if (!Args.empty())
        Result.Output += static_cast<char>(Args[0].asInt());
      return Value::intVal(0);
    }
    std::optional<Ptr> Fmt = argPtr(0);
    if (!Fmt)
      return std::nullopt;
    std::optional<std::string> Text = readCString(*Fmt, Loc);
    if (!Text)
      return std::nullopt;
    if (Name == "puts") {
      Result.Output += *Text;
      Result.Output += '\n';
      return Value::intVal(0);
    }
    size_t ArgIdx = 1;
    for (size_t I = 0; I < Text->size(); ++I) {
      char Ch = (*Text)[I];
      if (Ch != '%' || I + 1 >= Text->size()) {
        Result.Output += Ch;
        continue;
      }
      ++I;
      char Spec = (*Text)[I];
      if (Spec == 'l' && I + 1 < Text->size())
        Spec = (*Text)[++I];
      switch (Spec) {
      case '%':
        Result.Output += '%';
        break;
      case 'd':
      case 'u':
      case 'x':
        if (ArgIdx < Args.size())
          Result.Output += std::to_string(Args[ArgIdx++].asInt());
        break;
      case 'c':
        if (ArgIdx < Args.size())
          Result.Output += static_cast<char>(Args[ArgIdx++].asInt());
        break;
      case 'f':
      case 'g':
        if (ArgIdx < Args.size())
          Result.Output += std::to_string(Args[ArgIdx++].asFp());
        break;
      case 's': {
        if (ArgIdx >= Args.size())
          break;
        if (Args[ArgIdx].K != Value::Kind::Pointer) {
          ++ArgIdx;
          break;
        }
        std::optional<std::string> Str =
            readCString(Args[ArgIdx++].P, Loc);
        if (!Str)
          return std::nullopt;
        Result.Output += *Str;
        break;
      }
      default:
        Result.Output += Spec;
        break;
      }
    }
    return Value::intVal(0);
  }

  // Unknown external: harmless no-op returning 0 keeps partially-linked
  // programs runnable (like stubbing in a test harness).
  if (Name == "error" || Name == "getchar" || Name == "isalpha" ||
      Name == "isdigit" || Name == "isspace" || Name == "toupper" ||
      Name == "tolower")
    return Value::intVal(0);

  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Entry
//===----------------------------------------------------------------------===//

void Interpreter::Impl::run(const std::string &Entry) {
  // Materialize globals with initializers, in declaration order.
  for (const Decl *D : TU.decls()) {
    const auto *VD = dyn_cast<VarDecl>(D);
    if (!VD || !VD->isGlobal())
      continue;
    Ptr P = GlobalVars.count(VD) ? GlobalVars[VD] : allocVar(VD, true);
    if (const Expr *Init = VD->init()) {
      if (const auto *IL = dyn_cast<InitListExpr>(Init)) {
        long Off = 0;
        for (const Expr *Elem : IL->inits()) {
          std::optional<Value> V = evalExpr(Elem);
          if (!V)
            return;
          store(Ptr{P.Block, Off++}, *V, VD->loc());
        }
        continue;
      }
      std::optional<Value> V = evalExpr(Init);
      if (!V)
        return;
      store(P, *V, VD->loc());
    }
  }

  FunctionDecl *Main = TU.findFunction(Entry);
  if (!Main || !Main->isDefinition()) {
    reportError(RuntimeError::Kind::Trap, SourceLocation(),
                "entry function '" + Entry + "' not found", true);
    return;
  }
  std::optional<Value> Ret = callFunction(Main, {}, Main->loc());
  if (Aborted)
    return;
  Result.Completed = true;
  if (!Exited && Ret)
    Result.ExitCode = Ret->asInt();
}

void Interpreter::Impl::scanLeaks() {
  for (const MemBlock &B : Blocks) {
    if (B.K == MemBlock::Kind::Heap && B.St == MemBlock::State::Alive) {
      RuntimeError E;
      E.K = RuntimeError::Kind::LeakAtExit;
      E.Loc = B.AllocLoc;
      E.Message = "heap block never released (" + B.Label + ")";
      Result.Errors.push_back(std::move(E));
    }
  }
}

bool memlint::frontendDegraded(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Sev == Severity::Error)
      return true;
  return false;
}

RunResult Interpreter::run(const std::string &Entry,
                           unsigned long MaxSteps) {
  RunResult Result;
  if (ParseDegraded) {
    // A degraded parse can legally hand us statements with missing
    // children or declarations cut off mid-recovery; executing those would
    // read nodes that were never fully built. Refuse with structure
    // instead: exactly one Trap error, Completed false, nothing executed.
    Result.NotExecutable = true;
    RuntimeError E;
    E.K = RuntimeError::Kind::Trap;
    E.Message = "program not executable: parse was degraded "
                "(partial AST); run refused";
    Result.Errors.push_back(std::move(E));
    return Result;
  }
  Impl I(TU, Result, MaxSteps);
  // Last-resort containment: the walker's own guards (null-child checks,
  // the step limit, the abort flag) should make this unreachable, but a
  // fuzzer-built AST that slips past them must surface as a structured
  // Trap, never an escaping exception or a process abort.
  try {
    I.run(Entry);
    I.scanLeaks();
  } catch (const std::exception &E) {
    RuntimeError Err;
    Err.K = RuntimeError::Kind::Trap;
    Err.Message = std::string("interpreter internal error contained: ") +
                  E.what();
    Result.Errors.push_back(std::move(Err));
    Result.Completed = false;
  }
  return Result;
}
