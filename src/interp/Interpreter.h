//===--- Interpreter.h - Run-time checking baseline -------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter with a tracking heap — the repository's
/// substitute for the run-time tools the paper compares against (dmalloc,
/// mprof, Purify). It executes the same AST the static checker analyzes and
/// reports, at run time: null dereferences, uses of released storage,
/// reads of undefined storage, double frees, frees of offset or non-heap
/// pointers, and heap blocks never released before exit.
///
/// The memory model is cell-based: every scalar occupies one abstract cell,
/// sizeof(T) yields T's size in cells, and pointers are (block, offset)
/// pairs — so all the error classes are detected exactly, not
/// probabilistically.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_INTERP_INTERPRETER_H
#define MEMLINT_INTERP_INTERPRETER_H

#include "ast/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace memlint {

/// One run-time error detected by the tracking machinery.
struct RuntimeError {
  enum class Kind {
    NullDeref,
    UseAfterFree,
    UndefRead,
    DoubleFree,
    OffsetFree,   ///< free of a pointer into the middle of a block
    BadFree,      ///< free of stack/static storage
    OutOfBounds,
    AssertFailed,
    LeakAtExit,   ///< heap block alive when the program ends
    Trap,         ///< unsupported construct or interpreter limit
  };

  Kind K = Kind::Trap;
  SourceLocation Loc;
  std::string Message;

  std::string str() const;
};

const char *runtimeErrorKindName(RuntimeError::Kind Kind);

/// The outcome of a program run.
struct RunResult {
  std::vector<RuntimeError> Errors;
  std::string Output;   ///< captured stdout (printf/puts/putchar)
  long ExitCode = 0;
  bool Completed = false; ///< ran to completion (possibly via exit())
  /// True when the program was never executed at all: its parse was
  /// degraded (torn input, contained front-end failure), so the AST may be
  /// structurally incomplete and running it would mean interpreting nodes
  /// that were never fully built. The run carries exactly one Trap error
  /// explaining why, Completed stays false, and no cells were touched —
  /// a structured refusal, not a crash.
  bool NotExecutable = false;
  unsigned long Steps = 0;

  bool hasError(RuntimeError::Kind Kind) const {
    for (const RuntimeError &E : Errors)
      if (E.K == Kind)
        return true;
    return false;
  }
};

/// Executes a translation unit starting from an entry function.
class Interpreter {
public:
  /// \p ParseDegraded declares that the front end did not finish cleanly
  /// for this unit (parse errors, contained internal errors, budget
  /// exhaustion mid-parse). The interpreter then refuses to execute —
  /// run() returns a structured not-executable result instead of walking a
  /// possibly-incomplete AST. Callers that parse via Frontend should pass
  /// frontendDegraded(FE.diags()).
  explicit Interpreter(const TranslationUnit &TU, bool ParseDegraded = false)
      : TU(TU), ParseDegraded(ParseDegraded) {}

  /// Runs \p Entry (default "main"). Execution stops at the first
  /// crash-class error; undefined reads are recorded and execution
  /// continues (like Purify). After the run, live heap blocks are reported
  /// as leaks. Never throws and never asserts on malformed input: a
  /// degraded parse yields a not-executable result, and any internal error
  /// escaping the tree walk is contained as a Trap error.
  RunResult run(const std::string &Entry = "main",
                unsigned long MaxSteps = 2'000'000);

private:
  class Impl;
  const TranslationUnit &TU;
  bool ParseDegraded;
};

/// \returns true if \p Diags contains an error-severity diagnostic — the
/// Frontend's signal that its AST may be partial and must not be executed.
bool frontendDegraded(const DiagnosticEngine &Diags);

} // namespace memlint

#endif // MEMLINT_INTERP_INTERPRETER_H
