//===--- LclReader.cpp - Minimal LCL specification reader -------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "lcl/LclReader.h"

#include "lex/Lexer.h"

#include <cctype>

using namespace memlint;

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Blanks [Begin, End) in place, preserving newlines so later diagnostics
/// keep their line numbers.
void blankRange(std::string &Text, size_t Begin, size_t End) {
  for (size_t I = Begin; I < End && I < Text.size(); ++I)
    if (Text[I] != '\n')
      Text[I] = ' ';
}

/// \returns the index just past the matching close brace (Text[Open] must
/// be '{'), or npos when unbalanced.
size_t matchBrace(const std::string &Text, size_t Open) {
  int Depth = 0;
  for (size_t I = Open; I < Text.size(); ++I) {
    if (Text[I] == '{')
      ++Depth;
    else if (Text[I] == '}' && --Depth == 0)
      return I + 1;
  }
  return std::string::npos;
}

} // namespace

std::string memlint::translateLclToC(const std::string &LclSource,
                                     const std::string &FileName,
                                     DiagnosticEngine &Diags) {
  std::string Text = LclSource;

  // Pass 1: structural elements the checker does not interpret.
  static const char *const LineDirectives[] = {"imports", "uses", "spec",
                                               "constant", "typedef_import"};
  static const char *const ClauseWords[] = {"requires", "ensures",
                                            "modifies", "checks", "let",
                                            "claims"};

  size_t I = 0;
  unsigned Line = 1;
  while (I < Text.size()) {
    char C = Text[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (!isIdentChar(C) || (I > 0 && isIdentChar(Text[I - 1]))) {
      ++I;
      continue;
    }
    size_t WordEnd = I;
    while (WordEnd < Text.size() && isIdentChar(Text[WordEnd]))
      ++WordEnd;
    std::string Word = Text.substr(I, WordEnd - I);

    bool Handled = false;
    for (const char *D : LineDirectives) {
      if (Word != D)
        continue;
      size_t Semi = Text.find(';', I);
      if (Semi == std::string::npos) {
        Diags.report(CheckId::ParseError, SourceLocation(FileName, Line, 1),
                     "unterminated LCL '" + Word + "' directive",
                     Severity::Error);
        Semi = Text.size() - 1;
      }
      blankRange(Text, I, Semi + 1);
      I = Semi + 1;
      Handled = true;
      break;
    }
    if (Handled)
      continue;
    for (const char *W : ClauseWords) {
      if (Word != W)
        continue;
      // A clause runs to the ';' ending it (clauses do not nest braces).
      size_t Semi = Text.find(';', I);
      size_t Close = Text.find('}', I);
      size_t End = std::min(Semi == std::string::npos ? Text.size() : Semi + 1,
                            Close == std::string::npos ? Text.size() : Close);
      blankRange(Text, I, End);
      I = End;
      Handled = true;
      break;
    }
    if (Handled)
      continue;
    I = WordEnd;
  }

  // Pass 2: function spec bodies "decl(...) { clauses }" become ";".
  // After pass 1 the braces contain only blanks.
  I = 0;
  while ((I = Text.find('{', I)) != std::string::npos) {
    size_t End = matchBrace(Text, I);
    if (End == std::string::npos)
      break;
    bool OnlyBlank = true;
    for (size_t J = I + 1; J + 1 < End; ++J)
      if (Text[J] != ' ' && Text[J] != '\n' && Text[J] != '\t' &&
          Text[J] != ';')
        OnlyBlank = false;
    if (OnlyBlank) {
      Text[I] = ';';
      blankRange(Text, I + 1, End);
    }
    I = End;
  }

  // Pass 3: bare annotation words become /*@word@*/ comments. In LCL the
  // annotation names are reserved, so every occurrence converts.
  std::string Out;
  Out.reserve(Text.size() + 64);
  I = 0;
  while (I < Text.size()) {
    char C = Text[I];
    if (isIdentChar(C) && (I == 0 || !isIdentChar(Text[I - 1]))) {
      size_t WordEnd = I;
      while (WordEnd < Text.size() && isIdentChar(Text[WordEnd]))
        ++WordEnd;
      std::string Word = Text.substr(I, WordEnd - I);
      if (Lexer::isAnnotationWord(Word)) {
        Out += "/*@" + Word + "@*/";
        I = WordEnd;
        continue;
      }
    }
    Out += C;
    ++I;
  }
  return Out;
}
