//===--- LclReader.h - Minimal LCL specification reader ---------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "We can use annotations in LCL specifications, or directly in the source
/// code as syntactic comments." This module supports the first vehicle for
/// the subset of LCL the paper actually uses: interface declarations in
/// which annotation words appear bare, e.g.
///
///   only erc erc_create(void);
///   void free(null out only void *ptr);
///   char *strcpy(out returned unique char *s1, char *s2);
///
/// The reader translates a .lcl specification into annotated C declarations
/// (annotation words become /*@word@*/ comments) that are parsed ahead of
/// the implementation, so specification-borne annotations flow through the
/// same machinery as source annotations. LCL behavioral clauses the checker
/// does not interpret ("The requires clause is not interpreted by LCLint")
/// are skipped: requires / ensures / modifies / let clauses, imports and
/// uses lines, and spec blocks.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_LCL_LCLREADER_H
#define MEMLINT_LCL_LCLREADER_H

#include "support/Diagnostics.h"

#include <string>

namespace memlint {

/// Translates a minimal LCL specification into annotated C declaration
/// text. Annotation words (Appendix B) appearing in declarations become
/// /*@word@*/ comments; requires/ensures/modifies clauses and
/// imports/uses/constant lines are dropped (with a note when malformed).
std::string translateLclToC(const std::string &LclSource,
                            const std::string &FileName,
                            DiagnosticEngine &Diags);

} // namespace memlint

#endif // MEMLINT_LCL_LCLREADER_H
