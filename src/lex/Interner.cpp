//===--- Interner.cpp - Token spelling interning ----------------------------===//
//
// Part of memlint. See DESIGN.md §5c.
//
//===----------------------------------------------------------------------===//

#include "lex/Interner.h"

#include <mutex>

using namespace memlint;

const std::string &Spelling::emptyString() {
  static const std::string Empty;
  return Empty;
}

const std::string *StringInterner::intern(std::string_view S) {
  auto It = Index.find(S);
  if (It != Index.end())
    return It->second;
  Arena.emplace_back(S);
  const std::string *Stored = &Arena.back();
  Index.emplace(std::string_view(*Stored), Stored);
  Bytes += Stored->size();
  return Stored;
}

const std::string *StringInterner::lookup(std::string_view S) const {
  auto It = Index.find(S);
  return It == Index.end() ? nullptr : It->second;
}

const std::string *memlint::internGlobalSpelling(std::string_view S) {
  // Immortal on purpose: tokens interned here (bare Lexer uses in tests,
  // predefined macros) must never dangle, whatever their lifetime.
  static std::mutex Mu;
  static StringInterner *Global = new StringInterner();
  std::lock_guard<std::mutex> Lock(Mu);
  return Global->intern(S);
}
