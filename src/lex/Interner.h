//===--- Interner.h - Token spelling interning ------------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §5c.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena-backed token spellings. A Token no longer owns its text: it holds a
/// Spelling — a pointer into an interning arena — so copying tokens (the
/// preprocessor's dominant operation: raw stream -> expansion -> program
/// stream -> parser) copies one pointer instead of a std::string, and every
/// occurrence of an identifier in a batch shares one allocation.
///
/// Three arena scopes compose (see TokenArena):
///
/// * SharedInterner — one per batch, populated single-threaded during the
///   driver's warmup pass and then frozen by publish(). After the publish
///   barrier it is read-only, so worker threads look spellings up without
///   any lock.
/// * a private StringInterner — one per check run; catches everything the
///   shared pool does not contain. Tokens interned here die with the run.
/// * a process-global fallback (internGlobalSpelling) — used by clients
///   that construct a bare Lexer without an arena (tests, predefines).
///   Mutex-guarded and immortal, so such tokens can never dangle.
///
/// Correctness never depends on which arena served a spelling: lookups
/// compare by content, and a miss in the shared pool simply falls through
/// to private interning.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_LEX_INTERNER_H
#define MEMLINT_LEX_INTERNER_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace memlint {

/// An interned token spelling: a pointer to a string owned by some arena
/// that outlives every token referencing it. Converts implicitly to
/// const std::string& so existing call sites (map lookups, concatenation
/// into diagnostics, copies into the AST) keep working; the explicit
/// operator overloads below exist because std::string's own operators are
/// templates and would not consider the implicit conversion.
class Spelling {
public:
  Spelling() : S(&emptyString()) {}
  explicit Spelling(const std::string *Interned)
      : S(Interned ? Interned : &emptyString()) {}

  const std::string &str() const { return *S; }
  operator const std::string &() const { return *S; }

  const char *c_str() const { return S->c_str(); }
  std::size_t size() const { return S->size(); }
  bool empty() const { return S->empty(); }

private:
  static const std::string &emptyString();
  const std::string *S;
};

inline bool operator==(const Spelling &A, const Spelling &B) {
  return &A.str() == &B.str() || A.str() == B.str();
}
inline bool operator==(const Spelling &A, const std::string &B) {
  return A.str() == B;
}
inline bool operator==(const std::string &A, const Spelling &B) {
  return A == B.str();
}
inline bool operator==(const Spelling &A, const char *B) {
  return A.str() == B;
}
inline bool operator==(const char *A, const Spelling &B) {
  return B.str() == A;
}
template <typename T> bool operator!=(const Spelling &A, const T &B) {
  return !(A == B);
}
inline bool operator!=(const std::string &A, const Spelling &B) {
  return !(A == B);
}
inline bool operator!=(const char *A, const Spelling &B) { return !(A == B); }

inline std::string operator+(const char *A, const Spelling &B) {
  return A + B.str();
}
inline std::string operator+(const Spelling &A, const char *B) {
  return A.str() + B;
}
inline std::string operator+(const std::string &A, const Spelling &B) {
  return A + B.str();
}
inline std::string operator+(const Spelling &A, const std::string &B) {
  return A.str() + B;
}
inline std::string operator+(std::string &&A, const Spelling &B) {
  return std::move(A) + B.str();
}

inline std::ostream &operator<<(std::ostream &OS, const Spelling &S) {
  return OS << S.str();
}

/// A deduplicating string arena. Strings live in a deque (stable addresses
/// under growth) with an unordered index over them. Not thread-safe; each
/// scope above wraps it appropriately.
class StringInterner {
public:
  /// \returns a pointer, stable for this interner's lifetime, to a string
  /// equal to \p S.
  const std::string *intern(std::string_view S);

  /// \returns the interned string equal to \p S, or null if absent. Safe
  /// for concurrent callers only while no intern() can run (the published
  /// state).
  const std::string *lookup(std::string_view S) const;

  std::size_t size() const { return Arena.size(); }
  std::size_t bytes() const { return Bytes; }

private:
  std::deque<std::string> Arena;
  std::unordered_map<std::string_view, const std::string *> Index;
  std::size_t Bytes = 0;
};

/// The batch-wide spelling pool: build single-threaded, publish once, then
/// read from any number of workers without locking. publish() is a release
/// barrier paired with the acquire in published(); in practice the driver
/// also publishes before spawning workers, so thread creation itself
/// orders the memory.
class SharedInterner {
public:
  /// Pre-publish only (single-threaded build phase).
  const std::string *intern(std::string_view S) {
    return Pool.intern(S);
  }

  /// Lock-free content lookup; valid only after publish().
  const std::string *lookup(std::string_view S) const {
    return Pool.lookup(S);
  }

  void publish() { Published.store(true, std::memory_order_release); }
  bool published() const {
    return Published.load(std::memory_order_acquire);
  }

  std::size_t size() const { return Pool.size(); }
  std::size_t bytes() const { return Pool.bytes(); }

private:
  StringInterner Pool;
  std::atomic<bool> Published{false};
};

/// Interns into the process-global fallback arena (mutex-guarded,
/// immortal). For Lexer clients without an arena of their own.
const std::string *internGlobalSpelling(std::string_view S);

/// One check run's interning view: a shared pool in exactly one of two
/// roles, plus a private overflow arena.
///
/// * Build role (warmup): SharedBuild set — everything interns straight
///   into the shared pool, growing it.
/// * Read role (worker): SharedRead set — lock-free lookup first, misses
///   intern privately. The counters record the split for metrics.
struct TokenArena {
  SharedInterner *SharedBuild = nullptr;
  const SharedInterner *SharedRead = nullptr;
  StringInterner Private;
  unsigned long long SharedHits = 0;
  unsigned long long PrivateInterned = 0;

  const std::string *intern(std::string_view S) {
    if (SharedBuild)
      return SharedBuild->intern(S);
    if (SharedRead) {
      if (const std::string *Hit = SharedRead->lookup(S)) {
        ++SharedHits;
        return Hit;
      }
    }
    ++PrivateInterned;
    return Private.intern(S);
  }
};

} // namespace memlint

#endif // MEMLINT_LEX_INTERNER_H
