//===--- Lexer.cpp - C lexer with annotation comments ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace memlint;

const char *memlint::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntegerLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "float literal";
  case TokenKind::CharLiteral: return "character literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::Annotation: return "annotation";
  case TokenKind::ControlComment: return "control comment";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwChar: return "'char'";
  case TokenKind::KwShort: return "'short'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwLong: return "'long'";
  case TokenKind::KwFloat: return "'float'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwSigned: return "'signed'";
  case TokenKind::KwUnsigned: return "'unsigned'";
  case TokenKind::KwStruct: return "'struct'";
  case TokenKind::KwUnion: return "'union'";
  case TokenKind::KwEnum: return "'enum'";
  case TokenKind::KwTypedef: return "'typedef'";
  case TokenKind::KwExtern: return "'extern'";
  case TokenKind::KwStatic: return "'static'";
  case TokenKind::KwAuto: return "'auto'";
  case TokenKind::KwRegister: return "'register'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwVolatile: return "'volatile'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwDo: return "'do'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwSwitch: return "'switch'";
  case TokenKind::KwCase: return "'case'";
  case TokenKind::KwDefault: return "'default'";
  case TokenKind::KwSizeof: return "'sizeof'";
  case TokenKind::KwGoto: return "'goto'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Period: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::Ellipsis: return "'...'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Exclaim: return "'!'";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::ExclaimEqual: return "'!='";
  case TokenKind::LessLess: return "'<<'";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::Equal: return "'='";
  case TokenKind::PlusEqual: return "'+='";
  case TokenKind::MinusEqual: return "'-='";
  case TokenKind::StarEqual: return "'*='";
  case TokenKind::SlashEqual: return "'/='";
  case TokenKind::PercentEqual: return "'%='";
  case TokenKind::AmpEqual: return "'&='";
  case TokenKind::PipeEqual: return "'|='";
  case TokenKind::CaretEqual: return "'^='";
  case TokenKind::LessLessEqual: return "'<<='";
  case TokenKind::GreaterGreaterEqual: return "'>>='";
  case TokenKind::Hash: return "'#'";
  case TokenKind::HashHash: return "'##'";
  }
  // Out-of-range kinds (corrupted tokens) degrade to a recognizable
  // placeholder instead of aborting a diagnostic render.
  return "unknown token";
}

bool Lexer::isAnnotationWord(const std::string &Word) {
  static const char *const Words[] = {
      "null",   "notnull",   "relnull", "out",      "in",       "partial",
      "reldef", "only",      "keep",    "temp",     "owned",    "dependent",
      "shared", "unique",    "returned", "observer", "exposed", "truenull",
      "falsenull", "undef",  "killed",  "special",  "unused",   "sef",
      "exits",  "refcounted", "newref",  "killref",  "tempref",  "refs",
  };
  for (const char *W : Words)
    if (Word == W)
      return true;
  return false;
}

char Lexer::advance() {
  assert(Pos < Buffer.size());
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
    AtLineStart = true;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

Token Lexer::make(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = std::move(Loc);
  Tok.Text = Spelling(Arena ? Arena->intern(Text) : internGlobalSpelling(Text));
  return Tok;
}

std::vector<Token> Lexer::lex() {
  std::vector<Token> Out;
  bool PendingLineStart = true;
  while (Pos < Buffer.size()) {
    char C = peek();
    if (C == '\n') {
      advance();
      PendingLineStart = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      lexLineComment();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      // Either an annotation comment /*@...@*/ or an ordinary comment.
      size_t Before = Out.size();
      lexBlockComment(Out);
      // Annotation tokens inherit the line-start flag conservatively.
      for (size_t I = Before; I < Out.size(); ++I)
        Out[I].StartOfLine = false;
      continue;
    }

    SourceLocation Start = here();
    Token Tok;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      Tok = lexIdentifierOrKeyword(Start);
    else if (std::isdigit(static_cast<unsigned char>(C)) ||
             (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
      Tok = lexNumber(Start);
    else if (C == '"')
      Tok = lexString(Start);
    else if (C == '\'')
      Tok = lexChar(Start);
    else
      Tok = lexPunctuation(Start);

    if (Tok.isEof() && Tok.Text == "<error>")
      continue; // Lexical error already reported; skip the character.

    Tok.StartOfLine = PendingLineStart;
    PendingLineStart = false;
    Out.push_back(std::move(Tok));
  }
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Loc = here();
  Eof.StartOfLine = true;
  Out.push_back(std::move(Eof));
  return Out;
}

void Lexer::lexLineComment() {
  while (Pos < Buffer.size() && peek() != '\n')
    advance();
}

void Lexer::lexBlockComment(std::vector<Token> &Out) {
  SourceLocation Start = here();
  advance(); // '/'
  advance(); // '*'
  if (peek() == '@') {
    advance(); // '@'
    lexAnnotationComment(Out, Start);
    return;
  }
  // Ordinary comment: skip to "*/".
  while (Pos < Buffer.size()) {
    if (peek() == '*' && peek(1) == '/') {
      advance();
      advance();
      return;
    }
    advance();
  }
  Diags.report(CheckId::ParseError, Start, "unterminated comment",
               Severity::Error);
}

void Lexer::lexAnnotationComment(std::vector<Token> &Out,
                                 SourceLocation Start) {
  // Collect the comment body up to "@*/" (LCLint also accepts "*/").
  std::string Body;
  SourceLocation BodyLoc = here();
  while (Pos < Buffer.size()) {
    if (peek() == '@' && peek(1) == '*' && peek(2) == '/') {
      advance();
      advance();
      advance();
      break;
    }
    if (peek() == '*' && peek(1) == '/') {
      advance();
      advance();
      break;
    }
    Body += advance();
  }

  // Control comments: flag settings and ignore/end regions.
  if (!Body.empty() && (Body[0] == '-' || Body[0] == '+' || Body[0] == '=')) {
    Token Tok = make(TokenKind::ControlComment, Start, Body);
    Out.push_back(std::move(Tok));
    return;
  }
  if (Body == "ignore" || Body == "end" || Body == "i") {
    Out.push_back(make(TokenKind::ControlComment, Start, Body));
    return;
  }

  // Otherwise: whitespace-separated annotation words.
  size_t I = 0;
  while (I < Body.size()) {
    while (I < Body.size() &&
           std::isspace(static_cast<unsigned char>(Body[I])))
      ++I;
    size_t WordStart = I;
    while (I < Body.size() &&
           !std::isspace(static_cast<unsigned char>(Body[I])))
      ++I;
    if (WordStart == I)
      break;
    std::string Word = Body.substr(WordStart, I - WordStart);
    if (!isAnnotationWord(Word)) {
      Diags.report(CheckId::AnnotationError, BodyLoc,
                   "unrecognized annotation '" + Word + "'");
      continue;
    }
    Out.push_back(make(TokenKind::Annotation, Start, Word));
  }
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Start) {
  std::string Text;
  while (Pos < Buffer.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    Text += advance();

  static const std::map<std::string, TokenKind> Keywords = {
      {"void", TokenKind::KwVoid},         {"char", TokenKind::KwChar},
      {"short", TokenKind::KwShort},       {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},         {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},     {"signed", TokenKind::KwSigned},
      {"unsigned", TokenKind::KwUnsigned}, {"struct", TokenKind::KwStruct},
      {"union", TokenKind::KwUnion},       {"enum", TokenKind::KwEnum},
      {"typedef", TokenKind::KwTypedef},   {"extern", TokenKind::KwExtern},
      {"static", TokenKind::KwStatic},     {"auto", TokenKind::KwAuto},
      {"register", TokenKind::KwRegister}, {"const", TokenKind::KwConst},
      {"volatile", TokenKind::KwVolatile}, {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},         {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},           {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},     {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},         {"default", TokenKind::KwDefault},
      {"sizeof", TokenKind::KwSizeof},     {"goto", TokenKind::KwGoto},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return make(It->second, Start, Text);
  return make(TokenKind::Identifier, Start, Text);
}

Token Lexer::lexNumber(SourceLocation Start) {
  std::string Text;
  bool IsFloat = false;
  // Hex.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Text += advance();
    Text += advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      Text += advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    if (peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Next)) || Next == '+' ||
          Next == '-') {
        IsFloat = true;
        Text += advance();
        if (peek() == '+' || peek() == '-')
          Text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
    }
  }
  // Suffixes.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
         (IsFloat && (peek() == 'f' || peek() == 'F')))
    Text += advance();
  return make(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntegerLiteral,
              Start, Text);
}

Token Lexer::lexString(SourceLocation Start) {
  std::string Text;
  advance(); // opening quote
  while (Pos < Buffer.size() && peek() != '"') {
    if (peek() == '\\' && Pos + 1 < Buffer.size()) {
      Text += advance();
      Text += advance();
      continue;
    }
    if (peek() == '\n') {
      Diags.report(CheckId::ParseError, Start, "unterminated string literal",
                   Severity::Error);
      return make(TokenKind::StringLiteral, Start, Text);
    }
    Text += advance();
  }
  if (Pos < Buffer.size())
    advance(); // closing quote
  return make(TokenKind::StringLiteral, Start, Text);
}

Token Lexer::lexChar(SourceLocation Start) {
  std::string Text;
  advance(); // opening quote
  while (Pos < Buffer.size() && peek() != '\'') {
    if (peek() == '\\' && Pos + 1 < Buffer.size()) {
      Text += advance();
      Text += advance();
      continue;
    }
    Text += advance();
  }
  if (Pos < Buffer.size())
    advance(); // closing quote
  return make(TokenKind::CharLiteral, Start, Text);
}

Token Lexer::lexPunctuation(SourceLocation Start) {
  char C = advance();
  switch (C) {
  case '(': return make(TokenKind::LParen, Start, "(");
  case ')': return make(TokenKind::RParen, Start, ")");
  case '{': return make(TokenKind::LBrace, Start, "{");
  case '}': return make(TokenKind::RBrace, Start, "}");
  case '[': return make(TokenKind::LBracket, Start, "[");
  case ']': return make(TokenKind::RBracket, Start, "]");
  case ';': return make(TokenKind::Semi, Start, ";");
  case ',': return make(TokenKind::Comma, Start, ",");
  case '~': return make(TokenKind::Tilde, Start, "~");
  case '?': return make(TokenKind::Question, Start, "?");
  case ':': return make(TokenKind::Colon, Start, ":");
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return make(TokenKind::Ellipsis, Start, "...");
    }
    return make(TokenKind::Period, Start, ".");
  case '+':
    if (match('+')) return make(TokenKind::PlusPlus, Start, "++");
    if (match('=')) return make(TokenKind::PlusEqual, Start, "+=");
    return make(TokenKind::Plus, Start, "+");
  case '-':
    if (match('-')) return make(TokenKind::MinusMinus, Start, "--");
    if (match('=')) return make(TokenKind::MinusEqual, Start, "-=");
    if (match('>')) return make(TokenKind::Arrow, Start, "->");
    return make(TokenKind::Minus, Start, "-");
  case '*':
    if (match('=')) return make(TokenKind::StarEqual, Start, "*=");
    return make(TokenKind::Star, Start, "*");
  case '/':
    if (match('=')) return make(TokenKind::SlashEqual, Start, "/=");
    return make(TokenKind::Slash, Start, "/");
  case '%':
    if (match('=')) return make(TokenKind::PercentEqual, Start, "%=");
    return make(TokenKind::Percent, Start, "%");
  case '&':
    if (match('&')) return make(TokenKind::AmpAmp, Start, "&&");
    if (match('=')) return make(TokenKind::AmpEqual, Start, "&=");
    return make(TokenKind::Amp, Start, "&");
  case '|':
    if (match('|')) return make(TokenKind::PipePipe, Start, "||");
    if (match('=')) return make(TokenKind::PipeEqual, Start, "|=");
    return make(TokenKind::Pipe, Start, "|");
  case '^':
    if (match('=')) return make(TokenKind::CaretEqual, Start, "^=");
    return make(TokenKind::Caret, Start, "^");
  case '!':
    if (match('=')) return make(TokenKind::ExclaimEqual, Start, "!=");
    return make(TokenKind::Exclaim, Start, "!");
  case '=':
    if (match('=')) return make(TokenKind::EqualEqual, Start, "==");
    return make(TokenKind::Equal, Start, "=");
  case '<':
    if (peek() == '<' && peek(1) == '=') {
      advance();
      advance();
      return make(TokenKind::LessLessEqual, Start, "<<=");
    }
    if (match('<')) return make(TokenKind::LessLess, Start, "<<");
    if (match('=')) return make(TokenKind::LessEqual, Start, "<=");
    return make(TokenKind::Less, Start, "<");
  case '>':
    if (peek() == '>' && peek(1) == '=') {
      advance();
      advance();
      return make(TokenKind::GreaterGreaterEqual, Start, ">>=");
    }
    if (match('>')) return make(TokenKind::GreaterGreater, Start, ">>");
    if (match('=')) return make(TokenKind::GreaterEqual, Start, ">=");
    return make(TokenKind::Greater, Start, ">");
  case '#':
    if (match('#')) return make(TokenKind::HashHash, Start, "##");
    return make(TokenKind::Hash, Start, "#");
  default:
    Diags.report(CheckId::ParseError, Start,
                 std::string("unexpected character '") + C + "'",
                 Severity::Error);
    return make(TokenKind::Eof, Start, "<error>");
  }
}
