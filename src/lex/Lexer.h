//===--- Lexer.h - C lexer with annotation comments -------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_LEX_LEXER_H
#define MEMLINT_LEX_LEXER_H

#include "lex/Interner.h"
#include "lex/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace memlint {

/// Lexes one source buffer into a token vector (terminated by an Eof token).
///
/// The lexer understands ordinary C89 tokens, // and /* */ comments, and the
/// paper's stylized comments: /*@...@*/ annotation comments become Annotation
/// or ControlComment tokens (see Token.h). Preprocessor directives are left
/// in the stream as Hash tokens + following tokens; the pp/ module interprets
/// them.
class Lexer {
public:
  /// \p Arena, when given, receives every token spelling (shared-pool
  /// lookup with private fallback; see lex/Interner.h) and must outlive the
  /// returned tokens. Null falls back to the immortal process-global
  /// arena, so bare Lexer uses stay safe without ceremony.
  Lexer(const std::string &FileName, std::string Buffer,
        DiagnosticEngine &Diags, TokenArena *Arena = nullptr)
      : FileName(internSourceFileName(FileName)), Buffer(std::move(Buffer)),
        Diags(Diags), Arena(Arena) {}

  /// Lexes the whole buffer. Always returns a vector ending with Eof; lexical
  /// errors are reported to the diagnostic engine and skipped.
  std::vector<Token> lex();

  /// \returns true if \p Word is one of the paper's annotation keywords
  /// (Appendix B plus truenull/falsenull/undef/killed).
  static bool isAnnotationWord(const std::string &Word);

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  // FileName is interned once at construction, so stamping a location on
  // every token is a three-word copy.
  SourceLocation here() const { return {FileName, Line, Column}; }

  void lexLineComment();
  void lexBlockComment(std::vector<Token> &Out);
  void lexAnnotationComment(std::vector<Token> &Out, SourceLocation Start);
  Token lexIdentifierOrKeyword(SourceLocation Start);
  Token lexNumber(SourceLocation Start);
  Token lexString(SourceLocation Start);
  Token lexChar(SourceLocation Start);
  Token lexPunctuation(SourceLocation Start);

  Token make(TokenKind Kind, SourceLocation Loc, std::string Text);

  const std::string *FileName;
  std::string Buffer;
  DiagnosticEngine &Diags;
  TokenArena *Arena = nullptr;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  bool AtLineStart = true;
};

} // namespace memlint

#endif // MEMLINT_LEX_LEXER_H
