//===--- Token.h - Lexical tokens for the C subset --------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions. Besides ordinary C tokens, the stream carries the
/// paper's syntactic-comment annotations as first-class tokens:
///
///   /*@null@*/        -> one Annotation token with text "null"
///   /*@out only@*/    -> two Annotation tokens
///   /*@-mustfree@*/   -> ControlComment token ("-mustfree"); also
///                        "+flag" (set), "=flag" (restore), "ignore", "end"
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_LEX_TOKEN_H
#define MEMLINT_LEX_TOKEN_H

#include "lex/Interner.h"
#include "support/SourceLocation.h"

#include <string>

namespace memlint {

enum class TokenKind {
  Eof,
  Identifier,
  IntegerLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  Annotation,     ///< One word from a /*@...@*/ comment.
  ControlComment, ///< A flag or ignore/end control comment.

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble, KwSigned,
  KwUnsigned, KwStruct, KwUnion, KwEnum, KwTypedef, KwExtern, KwStatic,
  KwAuto, KwRegister, KwConst, KwVolatile, KwIf, KwElse, KwWhile, KwFor,
  KwDo, KwReturn, KwBreak, KwContinue, KwSwitch, KwCase, KwDefault,
  KwSizeof, KwGoto,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma,
  Period, Arrow, Ellipsis,
  Amp, AmpAmp, Pipe, PipePipe, Caret, Tilde, Exclaim, Question, Colon,
  Plus, PlusPlus, Minus, MinusMinus, Star, Slash, Percent,
  Less, LessEqual, Greater, GreaterEqual, EqualEqual, ExclaimEqual,
  LessLess, GreaterGreater,
  Equal, PlusEqual, MinusEqual, StarEqual, SlashEqual, PercentEqual,
  AmpEqual, PipeEqual, CaretEqual, LessLessEqual, GreaterGreaterEqual,
  Hash, HashHash,
};

/// \returns a human-readable spelling for diagnostics ("';'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A single lexed token. Copying a token is cheap: the spelling is a
/// pointer into an interning arena (see lex/Interner.h), so the batch-wide
/// front-end cache can replay token ranges by value without duplicating
/// text.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  Spelling Text;       ///< Raw spelling (identifier name, literal text, ...).
  SourceLocation Loc;
  bool StartOfLine = false; ///< True for the first token on a physical line
                            ///< (used for preprocessor directive detection).

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isEof() const { return Kind == TokenKind::Eof; }

  /// True for tokens that can begin a declaration specifier.
  bool isTypeSpecifierKeyword() const {
    switch (Kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned:
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
    case TokenKind::KwEnum:
      return true;
    default:
      return false;
    }
  }
};

} // namespace memlint

#endif // MEMLINT_LEX_TOKEN_H
