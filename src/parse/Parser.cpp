//===--- Parser.cpp - Recursive-descent parser for the C subset ------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdlib>

using namespace memlint;

//===----------------------------------------------------------------------===//
// Token plumbing and recovery
//===----------------------------------------------------------------------===//

bool Parser::expect(TokenKind K, const char *Context) {
  if (consume(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(cur().Kind));
  return false;
}

void Parser::error(const std::string &Message) {
  errorAt(cur().Loc, Message);
}

void Parser::errorAt(const SourceLocation &Loc, const std::string &Message) {
  ++ErrorCount;
  if (ErrorCount <= 50)
    Diags.report(CheckId::ParseError, Loc, Message, Severity::Error);
}

Parser::ParsedInt Parser::parseIntLiteral(const Token &Tok) {
  ParsedInt Result;
  const char *Begin = Tok.Text.c_str();
  char *End = nullptr;
  errno = 0;
  Result.Value = std::strtol(Begin, &End, 0);
  bool Malformed = End == Begin;
  for (; !Malformed && *End; ++End)
    if (*End != 'u' && *End != 'U' && *End != 'l' && *End != 'L')
      Malformed = true;
  if (errno == ERANGE) {
    // strtol already clamped Value to LONG_MIN/LONG_MAX; keep that as the
    // recovery sentinel so downstream arithmetic stays well-defined.
    Result.Valid = false;
    errorAt(Tok.Loc, "integer literal '" + Tok.Text +
                         "' is out of range; using " +
                         std::to_string(Result.Value));
  } else if (Malformed) {
    Result.Value = 0;
    Result.Valid = false;
    errorAt(Tok.Loc, "malformed integer literal '" + Tok.Text + "'");
  }
  return Result;
}

void Parser::noteTooDeep() {
  if (Budget)
    Budget->noteDegradation("limitnesting");
  if (TooDeepNoticed)
    return;
  TooDeepNoticed = true;
  Diags.report(CheckId::ParseError, cur().Loc,
               "nesting too deep (limitnesting=" + std::to_string(MaxDepth) +
                   "); construct not parsed",
               Severity::Error);
}

void Parser::synchronize() {
  unsigned Depth = 0;
  while (!cur().isEof()) {
    if (at(TokenKind::LBrace))
      ++Depth;
    if (at(TokenKind::RBrace)) {
      if (Depth == 0) {
        take();
        return;
      }
      --Depth;
    }
    if (at(TokenKind::Semi) && Depth == 0) {
      take();
      return;
    }
    take();
  }
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

Decl *Parser::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

bool Parser::isTypedefName(const std::string &Name) const {
  Decl *D = lookup(Name);
  return D && isa<TypedefDecl>(D);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

TranslationUnit *Parser::parse(const std::string &MainFile) {
  TU = Ctx.create<TranslationUnit>(MainFile);
  pushScope();
  while (!cur().isEof()) {
    size_t Before = Index;
    parseTopLevel(*TU);
    if (Index == Before) {
      // No progress: skip the offending token to guarantee termination.
      error("unexpected token at top level");
      take();
    }
  }
  popScope();
  return TU;
}

void Parser::parseTopLevel(TranslationUnit &TU) {
  if (consume(TokenKind::Semi))
    return;
  if (!startsDeclaration()) {
    error("expected declaration");
    synchronize();
    return;
  }
  DeclSpec DS = parseDeclSpecs();
  if (!DS.Valid) {
    synchronize();
    return;
  }
  if (consume(TokenKind::Semi))
    return; // tag-only declaration like "struct foo { ... };"
  parseTopLevelDeclarators(TU, DS);
}

bool Parser::isDeclSpecToken(const Token &Tok) const {
  if (Tok.isTypeSpecifierKeyword())
    return true;
  switch (Tok.Kind) {
  case TokenKind::KwTypedef:
  case TokenKind::KwExtern:
  case TokenKind::KwStatic:
  case TokenKind::KwAuto:
  case TokenKind::KwRegister:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
  case TokenKind::Annotation:
    return true;
  case TokenKind::Identifier:
    return isTypedefName(Tok.Text);
  default:
    return false;
  }
}

bool Parser::startsDeclaration() const { return isDeclSpecToken(cur()); }

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

Parser::DeclSpec Parser::parseDeclSpecs() {
  DeclSpec DS;
  DS.Loc = cur().Loc;

  enum class Base { None, Void, Char, Int, Float, Double, Other };
  Base B = Base::None;
  int LongCount = 0;
  bool Short = false, Signed = false, Unsigned = false;
  QualType OtherTy;

  while (true) {
    const Token &Tok = cur();
    switch (Tok.Kind) {
    case TokenKind::KwTypedef:
      DS.IsTypedef = true;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwExtern:
      DS.SC = StorageClass::Extern;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwStatic:
      DS.SC = StorageClass::Static;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwAuto:
    case TokenKind::KwRegister:
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwConst:
      DS.Const = true;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwVolatile:
      DS.Volatile = true;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::Annotation: {
      std::string Existing;
      if (!DS.Annots.addWord(Tok.Text, &Existing))
        Diags.report(CheckId::AnnotationError, Tok.Loc,
                     "annotation '" + Tok.Text +
                         "' conflicts with earlier annotation '" + Existing +
                         "' in the same category; keeping '" + Existing +
                         "'");
      DS.Valid = true;
      take();
      continue;
    }
    case TokenKind::KwVoid:
      B = Base::Void;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwChar:
      B = Base::Char;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwInt:
      if (B == Base::None)
        B = Base::Int;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwFloat:
      B = Base::Float;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwDouble:
      B = Base::Double;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwShort:
      Short = true;
      if (B == Base::None)
        B = Base::Int;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwLong:
      ++LongCount;
      if (B == Base::None)
        B = Base::Int;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwSigned:
      Signed = true;
      if (B == Base::None)
        B = Base::Int;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwUnsigned:
      Unsigned = true;
      if (B == Base::None)
        B = Base::Int;
      DS.Valid = true;
      take();
      continue;
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
      OtherTy = parseStructOrUnion();
      B = Base::Other;
      DS.Valid = true;
      continue;
    case TokenKind::KwEnum:
      OtherTy = parseEnum();
      B = Base::Other;
      DS.Valid = true;
      continue;
    case TokenKind::Identifier:
      if (B == Base::None && OtherTy.isNull() && isTypedefName(Tok.Text)) {
        auto *TD = cast<TypedefDecl>(lookup(Tok.Text));
        OtherTy = Ctx.typedefTy(TD);
        B = Base::Other;
        DS.Valid = true;
        take();
        continue;
      }
      break;
    default:
      break;
    }
    break;
  }

  if (!DS.Valid)
    return DS;

  switch (B) {
  case Base::None:
    DS.BaseTy = Ctx.intTy(); // implicit int (storage class only)
    break;
  case Base::Void:
    DS.BaseTy = Ctx.voidTy();
    break;
  case Base::Char:
    DS.BaseTy = Unsigned ? Ctx.builtin(BuiltinType::Kind::UnsignedChar)
               : Signed  ? Ctx.builtin(BuiltinType::Kind::SignedChar)
                         : Ctx.charTy();
    break;
  case Base::Int:
    if (Short)
      DS.BaseTy = Unsigned ? Ctx.builtin(BuiltinType::Kind::UnsignedShort)
                           : Ctx.shortTy();
    else if (LongCount > 0)
      DS.BaseTy = Unsigned ? Ctx.unsignedLongTy() : Ctx.longTy();
    else
      DS.BaseTy = Unsigned ? Ctx.unsignedTy() : Ctx.intTy();
    break;
  case Base::Float:
    DS.BaseTy = Ctx.floatTy();
    break;
  case Base::Double:
    DS.BaseTy = LongCount ? Ctx.builtin(BuiltinType::Kind::LongDouble)
                          : Ctx.doubleTy();
    break;
  case Base::Other:
    DS.BaseTy = OtherTy;
    break;
  }
  if (DS.Const)
    DS.BaseTy = QualType(DS.BaseTy.type(), true, DS.Volatile);
  return DS;
}

QualType Parser::parseStructOrUnion() {
  bool IsUnion = at(TokenKind::KwUnion);
  SourceLocation Loc = take().Loc; // struct/union
  DepthGuard Guard(*this);
  if (!Guard.entered()) {
    // The keyword is consumed, so the specifier loop still makes progress;
    // the member list (if any) is skipped by normal error recovery.
    return QualType();
  }

  std::string Tag;
  if (at(TokenKind::Identifier))
    Tag = take().Text;

  RecordDecl *RD = nullptr;
  std::string Key = (IsUnion ? "union " : "struct ") + Tag;
  if (!Tag.empty()) {
    auto It = Tags.find(Key);
    if (It != Tags.end())
      RD = dyn_cast<RecordDecl>(It->second);
  }
  if (!RD) {
    RD = Ctx.create<RecordDecl>(Tag, Loc, IsUnion);
    if (!Tag.empty())
      Tags[Key] = RD;
  }

  if (consume(TokenKind::LBrace)) {
    std::vector<FieldDecl *> Fields;
    while (!at(TokenKind::RBrace) && !cur().isEof()) {
      DeclSpec FieldDS = parseDeclSpecs();
      if (!FieldDS.Valid) {
        error("expected field declaration");
        synchronize();
        break;
      }
      // Field declarators.
      do {
        Declarator D = parseDeclarator(FieldDS, /*Abstract=*/false);
        // Bit-fields: accept and ignore the width.
        if (consume(TokenKind::Colon))
          parseConditional();
        Annotations FieldAnnots =
            Annotations::overrideWith(FieldDS.Annots, D.Annots);
        auto *FD = Ctx.create<FieldDecl>(D.Name, D.Loc, D.Ty, FieldAnnots,
                                         static_cast<unsigned>(Fields.size()));
        Fields.push_back(FD);
      } while (consume(TokenKind::Comma));
      expect(TokenKind::Semi, "after field declaration");
    }
    expect(TokenKind::RBrace, "to close struct body");
    RD->completeDefinition(std::move(Fields));
  }
  return Ctx.recordTy(RD);
}

QualType Parser::parseEnum() {
  SourceLocation Loc = take().Loc; // enum
  std::string Tag;
  if (at(TokenKind::Identifier))
    Tag = take().Text;

  EnumDecl *ED = nullptr;
  std::string Key = "enum " + Tag;
  if (!Tag.empty()) {
    auto It = Tags.find(Key);
    if (It != Tags.end())
      ED = dyn_cast<EnumDecl>(It->second);
  }
  if (!ED) {
    ED = Ctx.create<EnumDecl>(Tag, Loc);
    if (!Tag.empty())
      Tags[Key] = ED;
  }

  if (consume(TokenKind::LBrace)) {
    std::vector<EnumConstantDecl *> Constants;
    long Next = 0;
    while (!at(TokenKind::RBrace) && !cur().isEof()) {
      if (!at(TokenKind::Identifier)) {
        error("expected enumerator name");
        break;
      }
      Token Name = take();
      long Value = Next;
      if (consume(TokenKind::Equal)) {
        // Constant expression: integer literal, optionally negated, or a
        // previously declared enumerator.
        bool Negate = consume(TokenKind::Minus);
        if (at(TokenKind::IntegerLiteral)) {
          Value = parseIntLiteral(take()).Value;
        } else if (at(TokenKind::Identifier)) {
          Decl *Prev = lookup(cur().Text);
          if (auto *EC = dyn_cast_or_null<EnumConstantDecl>(Prev))
            Value = EC->value();
          else
            error("expected constant expression for enumerator");
          take();
        } else {
          error("expected constant expression for enumerator");
        }
        if (Negate)
          Value = Value == LONG_MIN ? LONG_MAX : -Value;
      }
      auto *EC = Ctx.create<EnumConstantDecl>(Name.Text, Name.Loc, Value);
      declare(Name.Text, EC);
      Constants.push_back(EC);
      // Saturate: an overflow-clamped enumerator must not wrap the next
      // implicit value around to LONG_MIN.
      Next = Value == LONG_MAX ? Value : Value + 1;
      if (!consume(TokenKind::Comma))
        break;
    }
    expect(TokenKind::RBrace, "to close enum body");
    ED->completeDefinition(std::move(Constants));
  }
  return Ctx.enumTy(ED);
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

Parser::Declarator Parser::parseDeclarator(const DeclSpec &DS, bool Abstract) {
  Declarator D;
  D.Ty = DS.BaseTy;
  D.Loc = cur().Loc;
  DepthGuard Guard(*this);
  if (!Guard.entered())
    return D;

  // Pointer prefix. Annotations written among the stars attach to the
  // declaration (outer level only, per the paper).
  while (true) {
    if (consume(TokenKind::Star)) {
      D.Ty = Ctx.pointerTo(D.Ty);
      continue;
    }
    if (at(TokenKind::KwConst) || at(TokenKind::KwVolatile)) {
      bool IsConst = at(TokenKind::KwConst);
      take();
      if (IsConst)
        D.Ty = QualType(D.Ty.type(), true, D.Ty.isVolatile());
      continue;
    }
    if (at(TokenKind::Annotation)) {
      std::string Existing;
      if (!D.Annots.addWord(cur().Text, &Existing))
        Diags.report(CheckId::AnnotationError, cur().Loc,
                     "annotation '" + cur().Text +
                         "' conflicts with earlier annotation '" + Existing +
                         "' in the same category; keeping '" + Existing +
                         "'");
      take();
      continue;
    }
    break;
  }

  // Parenthesized declarator: the common function-pointer form
  // "(*name)(params)" or "(*name)[size]".
  if (at(TokenKind::LParen) &&
      (ahead().is(TokenKind::Star) ||
       (ahead().is(TokenKind::Identifier) && !isTypedefName(ahead().Text)))) {
    take(); // '('
    unsigned InnerStars = 0;
    while (consume(TokenKind::Star))
      ++InnerStars;
    if (at(TokenKind::Identifier)) {
      D.Name = cur().Text;
      D.Loc = cur().Loc;
      take();
    }
    expect(TokenKind::RParen, "to close parenthesized declarator");
    // Outer suffix applies to the pointee: T (*p)(args) / T (*p)[n].
    if (at(TokenKind::LParen)) {
      bool Variadic = false;
      pushScope();
      std::vector<ParmVarDecl *> Params = parseParamList(Variadic);
      popScope();
      std::vector<QualType> ParamTys;
      ParamTys.reserve(Params.size());
      for (ParmVarDecl *P : Params)
        ParamTys.push_back(P->type());
      D.Ty = Ctx.functionTy(D.Ty, std::move(ParamTys), Variadic);
    } else if (consume(TokenKind::LBracket)) {
      std::optional<long> Size;
      if (at(TokenKind::IntegerLiteral)) {
        // An overflowed size stays "unknown": bounds checks downstream must
        // not trust a clamped sentinel.
        if (ParsedInt PI = parseIntLiteral(take()); PI.Valid)
          Size = PI.Value;
      }
      expect(TokenKind::RBracket, "to close array declarator");
      D.Ty = Ctx.arrayOf(D.Ty, Size);
    }
    for (unsigned I = 0; I < InnerStars; ++I)
      D.Ty = Ctx.pointerTo(D.Ty);
    parseDeclaratorSuffix(D);
    return D;
  }

  if (at(TokenKind::Identifier) && !isTypedefName(cur().Text)) {
    D.Name = cur().Text;
    D.Loc = cur().Loc;
    take();
  } else if (!Abstract) {
    // Allow a typedef name to be redeclared as an ordinary identifier in an
    // inner declaration context only when directly followed by a declarator
    // terminator; otherwise this is an error.
    if (at(TokenKind::Identifier) &&
        (ahead().is(TokenKind::Semi) || ahead().is(TokenKind::Comma) ||
         ahead().is(TokenKind::Equal) || ahead().is(TokenKind::RParen) ||
         ahead().is(TokenKind::LBracket))) {
      D.Name = cur().Text;
      D.Loc = cur().Loc;
      take();
    } else {
      error("expected declarator name");
    }
  }

  parseDeclaratorSuffix(D);
  return D;
}

void Parser::parseDeclaratorSuffix(Declarator &D) {
  // Collect array sizes so multi-dimensional arrays nest correctly.
  std::vector<std::optional<long>> ArraySizes;
  while (true) {
    if (at(TokenKind::LBracket)) {
      take();
      std::optional<long> Size;
      if (at(TokenKind::IntegerLiteral)) {
        if (ParsedInt PI = parseIntLiteral(take()); PI.Valid)
          Size = PI.Value;
      } else if (at(TokenKind::Identifier)) {
        if (auto *EC = dyn_cast_or_null<EnumConstantDecl>(lookup(cur().Text)))
          Size = EC->value();
        take();
      }
      expect(TokenKind::RBracket, "to close array declarator");
      ArraySizes.push_back(Size);
      continue;
    }
    if (at(TokenKind::LParen) && !D.IsFunction) {
      take();
      D.IsFunction = true;
      pushScope();
      // parseParamList expects to be called after '('.
      bool Variadic = false;
      // Empty parameter list "()" or "(void)".
      if (at(TokenKind::KwVoid) && ahead().is(TokenKind::RParen)) {
        take();
        take();
      } else if (consume(TokenKind::RParen)) {
        // () - unspecified parameters; treat as none.
      } else {
        while (true) {
          if (consume(TokenKind::Ellipsis)) {
            Variadic = true;
            break;
          }
          DeclSpec ParamDS = parseDeclSpecs();
          if (!ParamDS.Valid) {
            error("expected parameter declaration");
            break;
          }
          Declarator PD = parseDeclarator(ParamDS, /*Abstract=*/true);
          QualType ParamTy = PD.Ty;
          // Array and function parameters decay to pointers.
          if (ParamTy.isArray())
            ParamTy = Ctx.pointerTo(ParamTy.pointee());
          else if (ParamTy.isFunction())
            ParamTy = Ctx.pointerTo(ParamTy);
          Annotations ParamAnnots =
              Annotations::overrideWith(ParamDS.Annots, PD.Annots);
          auto *P = Ctx.create<ParmVarDecl>(
              PD.Name, PD.Loc.isValid() ? PD.Loc : ParamDS.Loc, ParamTy,
              ParamAnnots, static_cast<unsigned>(D.Params.size()));
          D.Params.push_back(P);
          if (!consume(TokenKind::Comma))
            break;
        }
        expect(TokenKind::RParen, "to close parameter list");
      }
      popScope();
      D.Variadic = Variadic;
      std::vector<QualType> ParamTys;
      ParamTys.reserve(D.Params.size());
      for (ParmVarDecl *P : D.Params)
        ParamTys.push_back(P->type());
      D.Ty = Ctx.functionTy(D.Ty, std::move(ParamTys), Variadic);
      continue;
    }
    break;
  }
  for (auto It = ArraySizes.rbegin(); It != ArraySizes.rend(); ++It)
    D.Ty = Ctx.arrayOf(D.Ty, *It);
}

std::vector<ParmVarDecl *> Parser::parseParamList(bool &Variadic) {
  // Helper used only for the parenthesized-declarator path; consumes from
  // '(' to ')'.
  std::vector<ParmVarDecl *> Params;
  Variadic = false;
  expect(TokenKind::LParen, "to begin parameter list");
  if (at(TokenKind::KwVoid) && ahead().is(TokenKind::RParen)) {
    take();
    take();
    return Params;
  }
  if (consume(TokenKind::RParen))
    return Params;
  while (true) {
    if (consume(TokenKind::Ellipsis)) {
      Variadic = true;
      break;
    }
    DeclSpec ParamDS = parseDeclSpecs();
    if (!ParamDS.Valid) {
      error("expected parameter declaration");
      break;
    }
    Declarator PD = parseDeclarator(ParamDS, /*Abstract=*/true);
    QualType ParamTy = PD.Ty;
    if (ParamTy.isArray())
      ParamTy = Ctx.pointerTo(ParamTy.pointee());
    Annotations ParamAnnots =
        Annotations::overrideWith(ParamDS.Annots, PD.Annots);
    auto *P = Ctx.create<ParmVarDecl>(PD.Name, PD.Loc, ParamTy, ParamAnnots,
                                      static_cast<unsigned>(Params.size()));
    Params.push_back(P);
    if (!consume(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "to close parameter list");
  return Params;
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

void Parser::parseTopLevelDeclarators(TranslationUnit &TU,
                                      const DeclSpec &DS) {
  bool First = true;
  do {
    Declarator D = parseDeclarator(DS, /*Abstract=*/false);

    if (DS.IsTypedef) {
      Annotations All = Annotations::overrideWith(DS.Annots, D.Annots);
      auto *TD = Ctx.create<TypedefDecl>(D.Name, D.Loc, D.Ty, All);
      declare(D.Name, TD);
      TU.addDecl(TD);
      First = false;
      continue;
    }

    if (D.IsFunction && D.Ty.isFunction()) {
      FunctionDecl *FD = actOnFunction(DS, D);
      if (First && at(TokenKind::LBrace)) {
        // Function definition.
        pushScope();
        for (ParmVarDecl *P : FD->params())
          if (!P->name().empty())
            declare(P->name(), P);
        CompoundStmt *Body = parseCompound();
        popScope();
        FD->setBody(Body);
        return; // no ';' after a function body
      }
      First = false;
      continue;
    }

    VarDecl *VD = actOnGlobalVar(DS, D);
    if (consume(TokenKind::Equal)) {
      if (at(TokenKind::LBrace)) {
        SourceLocation Loc = take().Loc;
        std::vector<Expr *> Inits;
        while (!at(TokenKind::RBrace) && !cur().isEof()) {
          Inits.push_back(parseAssignment());
          if (!consume(TokenKind::Comma))
            break;
        }
        expect(TokenKind::RBrace, "to close initializer list");
        VD->setInit(Ctx.create<InitListExpr>(Loc, std::move(Inits)));
      } else {
        VD->setInit(parseAssignment());
      }
    }
    First = false;
  } while (consume(TokenKind::Comma));
  expect(TokenKind::Semi, "after declaration");
}

FunctionDecl *Parser::actOnFunction(const DeclSpec &DS, Declarator &D) {
  const auto *FT = cast<FunctionType>(D.Ty.canonical().type());
  QualType ReturnTy = FT->result();
  Annotations ReturnAnnots = Annotations::overrideWith(DS.Annots, D.Annots);

  auto It = Functions.find(D.Name);
  if (It != Functions.end()) {
    FunctionDecl *Canonical = It->second;
    // A redeclaration may not silently change the established interface: a
    // per-category disagreement is diagnosed and the first-seen annotation
    // wins (uniform for return, parameters, and globals).
    for (const auto &C : Annotations::conflictsBetween(
             Canonical->returnAnnotations(), ReturnAnnots))
      Diags.report(CheckId::AnnotationError, D.Loc,
                   "return annotation '" + C.second +
                       "' on redeclaration of '" + D.Name +
                       "' conflicts with earlier '" + C.first +
                       "'; keeping '" + C.first + "'");
    Canonical->mergeReturnAnnotations(Annotations::overrideWith(
        ReturnAnnots, Canonical->returnAnnotations()));
    // Merge parameter annotations positionally.
    if (Canonical->params().size() == D.Params.size()) {
      for (size_t I = 0; I < D.Params.size(); ++I) {
        for (const auto &C : Annotations::conflictsBetween(
                 Canonical->params()[I]->declAnnotations(),
                 D.Params[I]->declAnnotations()))
          Diags.report(CheckId::AnnotationError, D.Params[I]->loc(),
                       "annotation '" + C.second + "' on parameter " +
                           std::to_string(I + 1) + " of '" + D.Name +
                           "' conflicts with an earlier declaration's '" +
                           C.first + "'; keeping '" + C.first + "'");
        // New decls inherit annotations already established and vice versa
        // (in this order, the earlier declaration wins disagreements).
        D.Params[I]->mergeAnnotations(
            Canonical->params()[I]->declAnnotations());
        Canonical->params()[I]->mergeAnnotations(
            D.Params[I]->declAnnotations());
      }
    }
    // For definitions, the new parameter decls become the function's (they
    // are the ones visible in the body).
    if (at(TokenKind::LBrace))
      Canonical->setParams(D.Params);
    return Canonical;
  }

  auto *FD = Ctx.create<FunctionDecl>(D.Name, D.Loc, ReturnTy, ReturnAnnots,
                                      D.Params, D.Variadic, DS.SC);
  Functions[D.Name] = FD;
  declare(D.Name, FD);
  TU->addDecl(FD);
  return FD;
}

VarDecl *Parser::actOnGlobalVar(const DeclSpec &DS, const Declarator &D) {
  Annotations All = Annotations::overrideWith(DS.Annots, D.Annots);
  auto It = GlobalVars.find(D.Name);
  if (It != GlobalVars.end()) {
    for (const auto &C : Annotations::conflictsBetween(
             It->second->declAnnotations(), All))
      Diags.report(CheckId::AnnotationError, D.Loc,
                   "annotation '" + C.second + "' on redeclaration of '" +
                       D.Name + "' conflicts with earlier '" + C.first +
                       "'; keeping '" + C.first + "'");
    It->second->mergeAnnotations(
        Annotations::overrideWith(All, It->second->declAnnotations()));
    return It->second;
  }
  auto *VD = Ctx.create<VarDecl>(D.Name, D.Loc, D.Ty, All, DS.SC,
                                 /*Global=*/true);
  GlobalVars[D.Name] = VD;
  declare(D.Name, VD);
  TU->addDecl(VD);
  return VD;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseStmt() {
  DepthGuard Guard(*this);
  if (!Guard.entered()) {
    // Too deeply nested to parse safely; skip to a recovery point and
    // substitute an empty statement so enclosing constructs stay intact.
    SourceLocation Loc = cur().Loc;
    synchronize();
    return Ctx.create<NullStmt>(Loc);
  }
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwReturn: {
    SourceLocation Loc = take().Loc;
    Expr *Value = nullptr;
    if (!at(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return statement");
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwBreak: {
    SourceLocation Loc = take().Loc;
    expect(TokenKind::Semi, "after break");
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLocation Loc = take().Loc;
    expect(TokenKind::Semi, "after continue");
    return Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::KwGoto: {
    error("goto is not supported by the checked subset");
    synchronize();
    return Ctx.create<NullStmt>(cur().Loc);
  }
  case TokenKind::Semi:
    return Ctx.create<NullStmt>(take().Loc);
  default:
    break;
  }
  if (startsDeclaration())
    return parseDeclStmt();
  SourceLocation Loc = cur().Loc;
  Expr *E = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  return Ctx.create<ExprStmt>(Loc, E);
}

CompoundStmt *Parser::parseCompound() {
  SourceLocation Loc = cur().Loc;
  expect(TokenKind::LBrace, "to begin block");
  pushScope();
  std::vector<Stmt *> Body;
  while (!at(TokenKind::RBrace) && !cur().isEof()) {
    size_t Before = Index;
    Body.push_back(parseStmt());
    if (Index == Before)
      take(); // ensure progress on malformed input
  }
  popScope();
  SourceLocation EndLoc = cur().Loc;
  expect(TokenKind::RBrace, "to close block");
  auto *CS = Ctx.create<CompoundStmt>(Loc, std::move(Body));
  CS->setEndLoc(EndLoc);
  return CS;
}

Stmt *Parser::parseIf() {
  SourceLocation Loc = take().Loc; // if
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (consume(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLocation Loc = take().Loc; // while
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStmt();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDo() {
  SourceLocation Loc = take().Loc; // do
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while");
  return Ctx.create<DoStmt>(Loc, Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLocation Loc = take().Loc; // for
  expect(TokenKind::LParen, "after 'for'");
  pushScope();
  Stmt *Init = nullptr;
  if (!at(TokenKind::Semi)) {
    if (startsDeclaration())
      Init = parseDeclStmt(); // consumes ';'
    else {
      SourceLocation ExprLoc = cur().Loc;
      Expr *E = parseExpr();
      Init = Ctx.create<ExprStmt>(ExprLoc, E);
      expect(TokenKind::Semi, "after for initializer");
    }
  } else {
    take(); // ';'
  }
  Expr *Cond = nullptr;
  if (!at(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for condition");
  Expr *Inc = nullptr;
  if (!at(TokenKind::RParen))
    Inc = parseExpr();
  expect(TokenKind::RParen, "after for increment");
  Stmt *Body = parseStmt();
  popScope();
  return Ctx.create<ForStmt>(Loc, Init, Cond, Inc, Body);
}

Stmt *Parser::parseSwitch() {
  SourceLocation Loc = take().Loc; // switch
  expect(TokenKind::LParen, "after 'switch'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after switch condition");
  expect(TokenKind::LBrace, "to begin switch body");
  pushScope();

  std::vector<SwitchStmt::CaseSection> Sections;
  while (!at(TokenKind::RBrace) && !cur().isEof()) {
    if (!at(TokenKind::KwCase) && !at(TokenKind::KwDefault)) {
      error("expected 'case' or 'default' in switch body");
      synchronize();
      break;
    }
    SwitchStmt::CaseSection Section;
    Section.Loc = cur().Loc;
    while (at(TokenKind::KwCase) || at(TokenKind::KwDefault)) {
      if (consume(TokenKind::KwDefault)) {
        Section.IsDefault = true;
      } else {
        take(); // case
        Section.Labels.push_back(parseConditional());
      }
      expect(TokenKind::Colon, "after case label");
    }
    while (!at(TokenKind::KwCase) && !at(TokenKind::KwDefault) &&
           !at(TokenKind::RBrace) && !cur().isEof()) {
      size_t Before = Index;
      Section.Body.push_back(parseStmt());
      if (Index == Before)
        take();
    }
    Sections.push_back(std::move(Section));
  }
  popScope();
  expect(TokenKind::RBrace, "to close switch body");
  return Ctx.create<SwitchStmt>(Loc, Cond, std::move(Sections));
}

Stmt *Parser::parseDeclStmt() {
  SourceLocation Loc = cur().Loc;
  DeclSpec DS = parseDeclSpecs();
  if (!DS.Valid) {
    error("expected declaration");
    synchronize();
    return Ctx.create<NullStmt>(Loc);
  }
  if (consume(TokenKind::Semi)) // local tag declaration
    return Ctx.create<NullStmt>(Loc);

  std::vector<VarDecl *> Decls;
  do {
    Declarator D = parseDeclarator(DS, /*Abstract=*/false);
    if (DS.IsTypedef) {
      Annotations All = Annotations::overrideWith(DS.Annots, D.Annots);
      auto *TD = Ctx.create<TypedefDecl>(D.Name, D.Loc, D.Ty, All);
      declare(D.Name, TD);
      continue;
    }
    if (D.IsFunction) {
      // Local function prototype.
      actOnFunction(DS, D);
      continue;
    }
    Annotations All = Annotations::overrideWith(DS.Annots, D.Annots);
    auto *VD = Ctx.create<VarDecl>(D.Name, D.Loc, D.Ty, All, DS.SC,
                                   /*Global=*/false);
    declare(D.Name, VD);
    if (consume(TokenKind::Equal)) {
      if (at(TokenKind::LBrace)) {
        SourceLocation BLoc = take().Loc;
        std::vector<Expr *> Inits;
        while (!at(TokenKind::RBrace) && !cur().isEof()) {
          Inits.push_back(parseAssignment());
          if (!consume(TokenKind::Comma))
            break;
        }
        expect(TokenKind::RBrace, "to close initializer list");
        VD->setInit(Ctx.create<InitListExpr>(BLoc, std::move(Inits)));
      } else {
        VD->setInit(parseAssignment());
      }
    }
    Decls.push_back(VD);
  } while (consume(TokenKind::Comma));
  expect(TokenKind::Semi, "after declaration");
  return Ctx.create<DeclStmt>(Loc, std::move(Decls));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::makeError(SourceLocation Loc) {
  auto *E = Ctx.create<IntegerLiteralExpr>(Loc, 0);
  E->setType(Ctx.intTy());
  return E;
}

Expr *Parser::parseExpr() {
  Expr *LHS = parseAssignment();
  while (at(TokenKind::Comma)) {
    SourceLocation Loc = take().Loc;
    Expr *RHS = parseAssignment();
    auto *BE = Ctx.create<BinaryExpr>(Loc, BinaryOp::Comma, LHS, RHS);
    BE->setType(RHS->type());
    LHS = BE;
  }
  return LHS;
}

static std::optional<BinaryOp> assignmentOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::Equal: return BinaryOp::Assign;
  case TokenKind::PlusEqual: return BinaryOp::AddAssign;
  case TokenKind::MinusEqual: return BinaryOp::SubAssign;
  case TokenKind::StarEqual: return BinaryOp::MulAssign;
  case TokenKind::SlashEqual: return BinaryOp::DivAssign;
  case TokenKind::PercentEqual: return BinaryOp::RemAssign;
  case TokenKind::AmpEqual: return BinaryOp::AndAssign;
  case TokenKind::PipeEqual: return BinaryOp::OrAssign;
  case TokenKind::CaretEqual: return BinaryOp::XorAssign;
  case TokenKind::LessLessEqual: return BinaryOp::ShlAssign;
  case TokenKind::GreaterGreaterEqual: return BinaryOp::ShrAssign;
  default: return std::nullopt;
  }
}

Expr *Parser::parseAssignment() {
  Expr *LHS = parseConditional();
  std::optional<BinaryOp> Op = assignmentOpFor(cur().Kind);
  if (!Op)
    return LHS;
  SourceLocation Loc = take().Loc;
  Expr *RHS = parseAssignment(); // right associative
  auto *BE = Ctx.create<BinaryExpr>(Loc, *Op, LHS, RHS);
  BE->setType(LHS->type());
  return BE;
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinaryRHS(parseCast(), 1);
  if (!at(TokenKind::Question))
    return Cond;
  SourceLocation Loc = take().Loc;
  Expr *TrueE = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseE = parseConditional();
  auto *CE = Ctx.create<ConditionalExpr>(Loc, Cond, TrueE, FalseE);
  CE->setType(TrueE->type().isPointer() ? TrueE->type() : FalseE->type());
  return CE;
}

namespace {

struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};

std::optional<BinOpInfo> binOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::Star: return BinOpInfo{BinaryOp::Mul, 10};
  case TokenKind::Slash: return BinOpInfo{BinaryOp::Div, 10};
  case TokenKind::Percent: return BinOpInfo{BinaryOp::Rem, 10};
  case TokenKind::Plus: return BinOpInfo{BinaryOp::Add, 9};
  case TokenKind::Minus: return BinOpInfo{BinaryOp::Sub, 9};
  case TokenKind::LessLess: return BinOpInfo{BinaryOp::Shl, 8};
  case TokenKind::GreaterGreater: return BinOpInfo{BinaryOp::Shr, 8};
  case TokenKind::Less: return BinOpInfo{BinaryOp::LT, 7};
  case TokenKind::Greater: return BinOpInfo{BinaryOp::GT, 7};
  case TokenKind::LessEqual: return BinOpInfo{BinaryOp::LE, 7};
  case TokenKind::GreaterEqual: return BinOpInfo{BinaryOp::GE, 7};
  case TokenKind::EqualEqual: return BinOpInfo{BinaryOp::EQ, 6};
  case TokenKind::ExclaimEqual: return BinOpInfo{BinaryOp::NE, 6};
  case TokenKind::Amp: return BinOpInfo{BinaryOp::And, 5};
  case TokenKind::Caret: return BinOpInfo{BinaryOp::Xor, 4};
  case TokenKind::Pipe: return BinOpInfo{BinaryOp::Or, 3};
  case TokenKind::AmpAmp: return BinOpInfo{BinaryOp::LAnd, 2};
  case TokenKind::PipePipe: return BinOpInfo{BinaryOp::LOr, 1};
  default: return std::nullopt;
  }
}

} // namespace

QualType Parser::usualArithmetic(QualType A, QualType B) {
  if (A.isPointer())
    return A;
  if (B.isPointer())
    return B;
  auto isFloating = [](QualType T) {
    const auto *BT = dyn_cast_or_null<BuiltinType>(
        T.isNull() ? nullptr : T.canonical().type());
    return BT && BT->isFloating();
  };
  if (isFloating(A) || isFloating(B))
    return Ctx.doubleTy();
  return Ctx.intTy();
}

Expr *Parser::parseBinaryRHS(Expr *LHS, int MinPrec) {
  while (true) {
    std::optional<BinOpInfo> Info = binOpFor(cur().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLocation Loc = take().Loc;
    Expr *RHS = parseCast();
    // Bind tighter operators to the right first.
    while (true) {
      std::optional<BinOpInfo> Next = binOpFor(cur().Kind);
      if (!Next || Next->Prec <= Info->Prec)
        break;
      RHS = parseBinaryRHS(RHS, Info->Prec + 1);
    }
    auto *BE = Ctx.create<BinaryExpr>(Loc, Info->Op, LHS, RHS);
    switch (Info->Op) {
    case BinaryOp::LT:
    case BinaryOp::GT:
    case BinaryOp::LE:
    case BinaryOp::GE:
    case BinaryOp::EQ:
    case BinaryOp::NE:
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      BE->setType(Ctx.intTy());
      break;
    default:
      BE->setType(usualArithmetic(LHS->type(), RHS->type()));
      break;
    }
    LHS = BE;
  }
}

bool Parser::isStartOfTypeName(const Token &Tok) const {
  if (Tok.isTypeSpecifierKeyword() || Tok.is(TokenKind::KwConst) ||
      Tok.is(TokenKind::KwVolatile) || Tok.is(TokenKind::Annotation))
    return true;
  return Tok.is(TokenKind::Identifier) && isTypedefName(Tok.Text);
}

QualType Parser::parseTypeName() {
  DeclSpec DS = parseDeclSpecs();
  Declarator D = parseDeclarator(DS, /*Abstract=*/true);
  return D.Ty;
}

Expr *Parser::parseCast() {
  DepthGuard Guard(*this);
  if (!Guard.entered())
    return makeError(cur().Loc);
  if (at(TokenKind::LParen) && isStartOfTypeName(ahead())) {
    SourceLocation Loc = take().Loc; // '('
    QualType Ty = parseTypeName();
    expect(TokenKind::RParen, "after type name in cast");
    Expr *Sub = parseCast();
    return Ctx.create<CastExpr>(Loc, Ty, Sub);
  }
  return parseUnary();
}

Expr *Parser::parseUnary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    UnaryOp Op = at(TokenKind::PlusPlus) ? UnaryOp::PreInc : UnaryOp::PreDec;
    take();
    Expr *Sub = parseUnary();
    auto *UE = Ctx.create<UnaryExpr>(Loc, Op, Sub);
    UE->setType(Sub->type());
    return UE;
  }
  case TokenKind::Star: {
    take();
    Expr *Sub = parseCast();
    auto *UE = Ctx.create<UnaryExpr>(Loc, UnaryOp::Deref, Sub);
    if (Sub->type().isPointer() || Sub->type().isArray())
      UE->setType(Sub->type().pointee());
    else
      UE->setType(Ctx.intTy());
    return UE;
  }
  case TokenKind::Amp: {
    take();
    Expr *Sub = parseCast();
    auto *UE = Ctx.create<UnaryExpr>(Loc, UnaryOp::AddrOf, Sub);
    UE->setType(Ctx.pointerTo(Sub->type()));
    return UE;
  }
  case TokenKind::Plus:
  case TokenKind::Minus: {
    UnaryOp Op = at(TokenKind::Plus) ? UnaryOp::Plus : UnaryOp::Minus;
    take();
    Expr *Sub = parseCast();
    auto *UE = Ctx.create<UnaryExpr>(Loc, Op, Sub);
    UE->setType(Sub->type());
    return UE;
  }
  case TokenKind::Exclaim: {
    take();
    Expr *Sub = parseCast();
    auto *UE = Ctx.create<UnaryExpr>(Loc, UnaryOp::Not, Sub);
    UE->setType(Ctx.intTy());
    return UE;
  }
  case TokenKind::Tilde: {
    take();
    Expr *Sub = parseCast();
    auto *UE = Ctx.create<UnaryExpr>(Loc, UnaryOp::BitNot, Sub);
    UE->setType(Sub->type());
    return UE;
  }
  case TokenKind::KwSizeof: {
    take();
    if (at(TokenKind::LParen) && isStartOfTypeName(ahead())) {
      take(); // '('
      QualType Ty = parseTypeName();
      expect(TokenKind::RParen, "after sizeof type");
      auto *SE = Ctx.create<SizeofExpr>(Loc, Ty, nullptr);
      SE->setType(Ctx.unsignedLongTy());
      return SE;
    }
    Expr *Sub = parseUnary();
    auto *SE = Ctx.create<SizeofExpr>(Loc, QualType(), Sub);
    SE->setType(Ctx.unsignedLongTy());
    return SE;
  }
  default:
    return parsePostfix(parsePrimary());
  }
}

Expr *Parser::parsePostfix(Expr *Base) {
  while (true) {
    SourceLocation Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::LParen: {
      take();
      std::vector<Expr *> Args;
      if (!at(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssignment());
        } while (consume(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call arguments");
      auto *CE = Ctx.create<CallExpr>(Loc, Base, std::move(Args));
      // Result type: direct callee, or through a function (pointer) type.
      if (FunctionDecl *FD = CE->directCallee()) {
        CE->setType(FD->returnType());
      } else {
        QualType CalleeTy = Base->type().canonical();
        if (CalleeTy.isPointer())
          CalleeTy = CalleeTy.pointee().canonical();
        if (const auto *FT =
                dyn_cast_or_null<FunctionType>(CalleeTy.type()))
          CE->setType(FT->result());
        else
          CE->setType(Ctx.intTy());
      }
      Base = CE;
      continue;
    }
    case TokenKind::LBracket: {
      take();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "to close subscript");
      auto *AE = Ctx.create<ArraySubscriptExpr>(Loc, Base, Index);
      if (Base->type().isPointer() || Base->type().isArray())
        AE->setType(Base->type().pointee());
      else if (Index->type().isPointer() || Index->type().isArray())
        AE->setType(Index->type().pointee());
      else
        AE->setType(Ctx.intTy());
      Base = AE;
      continue;
    }
    case TokenKind::Period:
    case TokenKind::Arrow: {
      bool Arrow = at(TokenKind::Arrow);
      take();
      if (!at(TokenKind::Identifier)) {
        error("expected member name");
        return Base;
      }
      std::string Member = take().Text;
      auto *ME = Ctx.create<MemberExpr>(Loc, Base, Member, Arrow);
      ME->setType(typeOfMember(Base, Member, Arrow, ME));
      Base = ME;
      continue;
    }
    case TokenKind::PlusPlus:
    case TokenKind::MinusMinus: {
      UnaryOp Op =
          at(TokenKind::PlusPlus) ? UnaryOp::PostInc : UnaryOp::PostDec;
      take();
      auto *UE = Ctx.create<UnaryExpr>(Loc, Op, Base);
      UE->setType(Base->type());
      Base = UE;
      continue;
    }
    default:
      return Base;
    }
  }
}

QualType Parser::typeOfMember(Expr *Base, const std::string &Member,
                              bool Arrow, MemberExpr *ME) {
  QualType BaseTy = Base->type();
  if (Arrow) {
    if (!BaseTy.isPointer() && !BaseTy.isArray())
      return QualType();
    BaseTy = BaseTy.pointee();
  }
  const auto *RT = dyn_cast_or_null<RecordType>(
      BaseTy.isNull() ? nullptr : BaseTy.canonical().type());
  if (!RT)
    return QualType();
  FieldDecl *FD = RT->decl()->findField(Member);
  if (!FD) {
    if (RT->decl()->isComplete())
      error("no member named '" + Member + "' in " +
            QualType(RT).str());
    return QualType();
  }
  ME->setField(FD);
  return FD->type();
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntegerLiteral: {
    long Value = parseIntLiteral(take()).Value;
    auto *E = Ctx.create<IntegerLiteralExpr>(Loc, Value);
    E->setType(Ctx.intTy());
    return E;
  }
  case TokenKind::FloatLiteral: {
    std::string Text = take().Text;
    auto *E = Ctx.create<FloatLiteralExpr>(Loc, std::strtod(Text.c_str(),
                                                            nullptr));
    E->setType(Ctx.doubleTy());
    return E;
  }
  case TokenKind::CharLiteral: {
    std::string Text = take().Text;
    char Value = 0;
    if (Text.size() >= 2 && Text[0] == '\\') {
      switch (Text[1]) {
      case 'n': Value = '\n'; break;
      case 't': Value = '\t'; break;
      case 'r': Value = '\r'; break;
      case '0': Value = '\0'; break;
      case '\\': Value = '\\'; break;
      case '\'': Value = '\''; break;
      default: Value = Text[1]; break;
      }
    } else if (!Text.empty()) {
      Value = Text[0];
    }
    auto *E = Ctx.create<CharLiteralExpr>(Loc, Value);
    E->setType(Ctx.charTy());
    return E;
  }
  case TokenKind::StringLiteral: {
    std::string Text = take().Text;
    // Adjacent string literals concatenate.
    while (at(TokenKind::StringLiteral))
      Text += take().Text;
    auto *E = Ctx.create<StringLiteralExpr>(Loc, Text);
    E->setType(Ctx.stringTy());
    return E;
  }
  case TokenKind::Identifier: {
    std::string Name = take().Text;
    Decl *D = lookup(Name);
    if (!D && Name == "NULL") {
      // NULL is ordinarily a macro; treat a bare NULL as the null pointer
      // constant so unpreprocessed snippets work too.
      auto *E = Ctx.create<IntegerLiteralExpr>(Loc, 0);
      E->setType(Ctx.pointerTo(Ctx.voidTy()));
      return E;
    }
    if (!D && at(TokenKind::LParen)) {
      // Implicit function declaration (C89). Declared as int f().
      auto *FD = Ctx.create<FunctionDecl>(
          Name, Loc, Ctx.intTy(), Annotations(),
          std::vector<ParmVarDecl *>(), /*Variadic=*/true,
          StorageClass::Extern);
      Functions[Name] = FD;
      Scopes.front()[Name] = FD;
      TU->addDecl(FD);
      D = FD;
    }
    if (!D) {
      error("use of undeclared identifier '" + Name + "'");
      return makeError(Loc);
    }
    auto *DRE = Ctx.create<DeclRefExpr>(Loc, Name, D);
    if (auto *VD = dyn_cast<VarDecl>(D))
      DRE->setType(VD->type());
    else if (auto *FD = dyn_cast<FunctionDecl>(D))
      DRE->setType(Ctx.functionTy(FD->returnType(), {}, FD->isVariadic()));
    else if (isa<EnumConstantDecl>(D))
      DRE->setType(Ctx.intTy());
    else if (isa<TypedefDecl>(D)) {
      error("unexpected type name '" + Name + "' in expression");
      return makeError(Loc);
    }
    return DRE;
  }
  case TokenKind::LParen: {
    take();
    Expr *Sub = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    auto *PE = Ctx.create<ParenExpr>(Loc, Sub);
    PE->setType(Sub->type());
    return PE;
  }
  default:
    error(std::string("expected expression, found ") +
          tokenKindName(cur().Kind));
    take();
    return makeError(Loc);
  }
}
