//===--- Parser.h - Recursive-descent parser for the C subset ---*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the preprocessed token stream into an AST. Name resolution and
/// basic type computation happen inline (the classic C approach: typedef
/// names feed back into the grammar), so the produced AST is already
/// resolved; sema/ adds annotation placement validation on top.
///
/// Supported subset: C89 declarations (typedef, struct/union/enum, pointers,
/// arrays, function pointers in the common form), full expression grammar,
/// and all structured statements. goto/labels are rejected (the paper's
/// analysis is defined over structured control flow).
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_PARSE_PARSER_H
#define MEMLINT_PARSE_PARSER_H

#include "ast/AST.h"
#include "lex/Token.h"
#include "support/Diagnostics.h"
#include "support/Limits.h"

#include <map>
#include <string>
#include <vector>

namespace memlint {

class Parser {
public:
  /// \p Budget, when given, supplies the recursion-depth limit and records
  /// degradation when it is hit; without one the default ResourceBudget
  /// depth still guards the stack.
  Parser(std::vector<Token> Toks, ASTContext &Ctx, DiagnosticEngine &Diags,
         BudgetState *Budget = nullptr)
      : Toks(std::move(Toks)), Ctx(Ctx), Diags(Diags), Budget(Budget),
        MaxDepth(Budget ? Budget->budget().MaxNestingDepth
                        : ResourceBudget().MaxNestingDepth) {}

  /// Parses the whole stream. Errors are reported to the diagnostic engine;
  /// parsing recovers at statement/declaration boundaries. Never returns
  /// null.
  TranslationUnit *parse(const std::string &MainFile);

private:
  //===--- token plumbing -------------------------------------------------===//
  const Token &cur() const { return Toks[Index]; }
  const Token &ahead(unsigned N = 1) const {
    size_t I = Index + N;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &take() {
    // Consuming a token is the parser's budget/cancellation checkpoint: a
    // raised CancelToken aborts within one token of pathological input.
    if (Budget)
      Budget->checkCancelled();
    return Toks[Index < Toks.size() - 1 ? Index++ : Index];
  }
  bool at(TokenKind K) const { return cur().is(K); }
  bool consume(TokenKind K) {
    if (!at(K))
      return false;
    take();
    return true;
  }
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Message);
  void errorAt(const SourceLocation &Loc, const std::string &Message);
  /// Skips tokens until a likely recovery point (';', '}' or EOF).
  void synchronize();

  //===--- literal parsing ------------------------------------------------===//
  /// An integer-literal token's numeric value plus whether it was usable.
  /// On overflow, Value is strtol's clamped LONG_MIN/LONG_MAX sentinel;
  /// on a malformed literal it is 0. Either way a diagnostic was emitted
  /// and Valid is false, so contexts that must not guess (array sizes) can
  /// fall back to "unknown" instead of a silently wrong number.
  struct ParsedInt {
    long Value = 0;
    bool Valid = true;
  };
  /// Evaluates an IntegerLiteral token with full errno/end-pointer
  /// checking (the lexer keeps [uUlL] suffixes in the token text).
  ParsedInt parseIntLiteral(const Token &Tok);

  //===--- recursion containment ------------------------------------------===//
  /// RAII depth counter placed at every recursion choke point. When the
  /// nesting budget is exceeded, entered() is false and the caller bails
  /// out with a recoverable "nesting too deep" diagnostic instead of
  /// smashing the stack.
  class DepthGuard {
  public:
    explicit DepthGuard(Parser &P) : P(P) {
      Ok = P.MaxDepth == 0 || ++P.Depth <= P.MaxDepth;
      if (!Ok)
        P.noteTooDeep();
    }
    ~DepthGuard() { --P.Depth; }
    DepthGuard(const DepthGuard &) = delete;
    /// True if the recursion budget admits this level.
    bool entered() const { return Ok; }

  private:
    Parser &P;
    bool Ok;
  };
  /// Reports the (single) "nesting too deep" diagnostic and records
  /// degradation.
  void noteTooDeep();

  //===--- scopes ---------------------------------------------------------===//
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  Decl *lookup(const std::string &Name) const;
  void declare(const std::string &Name, Decl *D) {
    Scopes.back()[Name] = D;
  }
  bool isTypedefName(const std::string &Name) const;

  //===--- declarations ---------------------------------------------------===//
  struct DeclSpec {
    QualType BaseTy;
    StorageClass SC = StorageClass::None;
    bool IsTypedef = false;
    bool Const = false;
    bool Volatile = false;
    Annotations Annots;
    SourceLocation Loc;
    bool Valid = false; ///< true if at least one specifier was seen
  };

  struct Declarator {
    std::string Name;
    SourceLocation Loc;
    QualType Ty;
    Annotations Annots; ///< annotations attached within the declarator
    /// Set when the declarator is a function: parameter declarations.
    bool IsFunction = false;
    std::vector<ParmVarDecl *> Params;
    bool Variadic = false;
  };

  /// True if the upcoming tokens begin a declaration.
  bool startsDeclaration() const;
  bool isDeclSpecToken(const Token &Tok) const;

  DeclSpec parseDeclSpecs();
  QualType parseStructOrUnion();
  QualType parseEnum();
  Declarator parseDeclarator(const DeclSpec &DS, bool Abstract);
  void parseDeclaratorSuffix(Declarator &D);
  std::vector<ParmVarDecl *> parseParamList(bool &Variadic);

  void parseTopLevel(TranslationUnit &TU);
  /// Parses declarators after specifiers at file scope.
  void parseTopLevelDeclarators(TranslationUnit &TU, const DeclSpec &DS);
  FunctionDecl *actOnFunction(const DeclSpec &DS, Declarator &D);
  VarDecl *actOnGlobalVar(const DeclSpec &DS, const Declarator &D);

  //===--- statements -----------------------------------------------------===//
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDo();
  Stmt *parseFor();
  Stmt *parseSwitch();
  Stmt *parseDeclStmt();

  //===--- expressions ----------------------------------------------------===//
  Expr *parseExpr(); // includes comma
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinaryRHS(Expr *LHS, int MinPrec);
  Expr *parseCast();
  Expr *parseUnary();
  Expr *parsePostfix(Expr *Base);
  Expr *parsePrimary();
  /// True if '(' at current position starts a type name (cast / sizeof).
  bool isStartOfTypeName(const Token &Tok) const;
  QualType parseTypeName();

  //===--- types of expressions -------------------------------------------===//
  QualType typeOfMember(Expr *Base, const std::string &Member, bool Arrow,
                        MemberExpr *ME);
  QualType usualArithmetic(QualType A, QualType B);

  Expr *makeError(SourceLocation Loc);

  std::vector<Token> Toks;
  size_t Index = 0;
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  BudgetState *Budget = nullptr;
  unsigned Depth = 0;
  unsigned MaxDepth = 0;
  bool TooDeepNoticed = false;
  TranslationUnit *TU = nullptr;

  std::vector<std::map<std::string, Decl *>> Scopes;
  std::map<std::string, Decl *> Tags; ///< struct/union/enum tag namespace
  std::map<std::string, FunctionDecl *> Functions; ///< canonical functions
  std::map<std::string, VarDecl *> GlobalVars;     ///< canonical globals
  unsigned ErrorCount = 0;
};

} // namespace memlint

#endif // MEMLINT_PARSE_PARSER_H
