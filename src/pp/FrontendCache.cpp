//===--- FrontendCache.cpp - Batch-shared front-end reuse -----------------===//
//
// Part of memlint. See DESIGN.md §5c.
//
//===----------------------------------------------------------------------===//

#include "pp/FrontendCache.h"

using namespace memlint;

std::uint64_t MacroTable::defHash(const std::string &Name,
                                  const MacroDef &Def) {
  std::uint64_t H = fnvInit64();
  H = fnvStep64(H, Name);
  H = fnvStepInt64(H, Def.FunctionLike ? 1 : 0);
  H = fnvStepInt64(H, Def.Params.size());
  for (const std::string &P : Def.Params)
    H = fnvStep64(H, P);
  H = fnvStepInt64(H, Def.Body.size());
  for (const Token &T : Def.Body) {
    H = fnvStepInt64(H, static_cast<std::uint64_t>(T.Kind));
    H = fnvStep64(H, T.Text.str());
    // Body tokens keep definition-site locations through expansion, and
    // those locations appear verbatim in diagnostics — two textually
    // identical defines at different locations are distinct macro states.
    H = fnvStep64(H, T.Loc.file());
    H = fnvStepInt64(H, T.Loc.line());
    H = fnvStepInt64(H, T.Loc.column());
    H = fnvStepInt64(H, T.StartOfLine ? 1 : 0);
  }
  return mix64(H);
}

void MacroTable::define(const std::string &Name, MacroDef Def) {
  auto It = Table.find(Name);
  if (It != Table.end()) {
    FpXor ^= It->second.second; // retract the old definition's contribution
    It->second.first = std::move(Def);
    It->second.second = defHash(Name, It->second.first);
    FpXor ^= It->second.second;
    return;
  }
  std::uint64_t H = defHash(Name, Def);
  Table.emplace(Name, std::make_pair(std::move(Def), H));
  FpXor ^= H;
}

bool MacroTable::undef(const std::string &Name) {
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  FpXor ^= It->second.second;
  Table.erase(It);
  return true;
}
