//===--- FrontendCache.h - Batch-shared front-end reuse ---------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §5c.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared front end. The paper's modular checking model re-lexes and
/// re-preprocesses every header once per translation unit, so batch cost
/// scales with total text instead of unique text. This file holds the data
/// model that breaks that: a memo of #include expansions keyed by
///
///   (file name, content hash, incoming macro-state fingerprint)
///
/// An ExpansionEntry records everything one expansion did to the
/// preprocessor — the tokens it emitted, plus every macro definition,
/// #undef, and control comment at its exact position in the emitted
/// stream — so replaying the entry is state-for-state identical to
/// reprocessing the text, including diagnostics (entries with any
/// diagnostic activity are never recorded) and budget charging (replay
/// emits token by token through the same budget checkpoints).
///
/// MacroTable wraps the preprocessor's macro map and maintains an
/// incremental order-independent fingerprint of the complete macro state —
/// names, bodies, parameter lists, and the body tokens' source locations
/// (macro-expanded tokens keep definition-site locations, so two textually
/// identical defines at different locations are different states).
///
/// FrontendContext bundles the batch-scoped pieces: the expansion memo,
/// the spelling interner (lex/Interner.h), and a read cache of file
/// contents with precomputed hashes. The batch driver populates it on a
/// single-threaded warmup pass over the first input, calls publish(), and
/// every worker then reads it without locks; post-publish misses fall back
/// to per-run private state, so correctness never depends on what the
/// warmup happened to cover.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_PP_FRONTENDCACHE_H
#define MEMLINT_PP_FRONTENDCACHE_H

#include "lex/Interner.h"
#include "lex/Token.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace memlint {

/// A control comment extracted from the stream, in source order.
struct ControlDirective {
  SourceLocation Loc;
  std::string Text; ///< e.g. "-mustfree", "=mustfree", "ignore", "end".
};

//===--- hashing ----------------------------------------------------------===//

inline std::uint64_t fnvInit64() { return 1469598103934665603ull; }

inline std::uint64_t fnvStep64(std::uint64_t H, std::string_view S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

inline std::uint64_t fnvStepInt64(std::uint64_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<unsigned char>(V >> (I * 8));
    H *= 1099511628211ull;
  }
  return H;
}

/// SplitMix64 finalizer: spreads FNV output so the macro fingerprint's
/// XOR accumulation cannot cancel structured inputs.
inline std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Content hash used for memo keys and the read cache.
inline std::uint64_t hashContents(std::string_view S) {
  return mix64(fnvStep64(fnvInit64(), S));
}

//===--- macro state ------------------------------------------------------===//

/// One macro definition (object- or function-like).
struct MacroDef {
  bool FunctionLike = false;
  std::vector<std::string> Params;
  std::vector<Token> Body;
};

/// The preprocessor's macro map, wrapped to maintain an incremental
/// fingerprint of the complete macro state. define/undef cost O(definition
/// size) extra; fingerprint() is O(1). The fingerprint is an XOR of mixed
/// per-definition hashes (order-independent, matching map semantics) folded
/// with the table size.
class MacroTable {
public:
  const MacroDef *lookup(const std::string &Name) const {
    auto It = Table.find(Name);
    return It == Table.end() ? nullptr : &It->second.first;
  }
  bool contains(const std::string &Name) const {
    return Table.count(Name) != 0;
  }

  void define(const std::string &Name, MacroDef Def);
  /// \returns true if \p Name was defined (and is now removed).
  bool undef(const std::string &Name);

  std::uint64_t fingerprint() const {
    return mix64(FpXor ^ (Table.size() * 0x9e3779b97f4a7c15ull));
  }
  std::size_t size() const { return Table.size(); }

private:
  static std::uint64_t defHash(const std::string &Name, const MacroDef &Def);

  std::map<std::string, std::pair<MacroDef, std::uint64_t>> Table;
  std::uint64_t FpXor = 0;
};

//===--- expansion memo ---------------------------------------------------===//

/// One replayable side effect of an expansion, positioned in its emitted
/// token stream: \c At tokens were emitted before this op took effect, so
/// replay applies it at exactly that point. This keeps mixed streams
/// (tokens / #define / tokens / #undef) state-identical under replay even
/// though replay never re-scans directives.
struct ReplayOp {
  enum class Kind { Control, Define, Undef };
  Kind K = Kind::Control;
  std::size_t At = 0;
  SourceLocation Loc; ///< Control only
  std::string Text;   ///< Control text, or the macro name for Define/Undef
  MacroDef Def;       ///< Define only
};

/// A memoized expansion: the complete effect of preprocessing one file's
/// text under one macro state. Recorded only for side-effect-clean
/// expansions (no diagnostics, no budget truncation, no include-cycle
/// break, balanced conditionals), so replay is byte-identical by
/// construction.
struct ExpansionEntry {
  std::string File;
  std::uint64_t ContentHash = 0;
  std::uint64_t MacroFp = 0; ///< macro-state fingerprint on entry
  std::vector<Token> Tokens; ///< emitted stream (no Eof)
  std::vector<ReplayOp> Ops; ///< positioned side effects
  /// Every file name #included (directly or transitively) while recording.
  /// Replay requires none of them on the current include stack — a name on
  /// the stack would have cycle-broken the live expansion into different
  /// tokens.
  std::vector<std::string> IncludedNames;
  /// Deepest nested include depth reached, relative to the entry's own
  /// processing depth. Replay at base B requires B + MaxRelDepth within
  /// the nesting limit.
  unsigned MaxRelDepth = 0;
  /// Source bytes (this file plus nested includes) a replay avoids
  /// re-lexing; feeds pp.include_cache.bytes_saved.
  std::size_t SourceBytes = 0;
  /// Top-level entries only: the location the caller stamps on the
  /// terminating Eof token (the last raw token's location live).
  SourceLocation EofLoc;
};

/// The expansion memo. Mutated only before publish() (the driver's
/// single-threaded warmup); afterwards the map is frozen and lookups are
/// lock-free from any thread.
class FrontendCache {
public:
  const ExpansionEntry *lookup(const std::string &File,
                               std::uint64_t ContentHash,
                               std::uint64_t MacroFp) const {
    auto It = Entries.find(Key(File, ContentHash, MacroFp));
    return It == Entries.end() ? nullptr : &It->second;
  }

  /// Pre-publish only; inserts after publish() are ignored (the caller
  /// falls back to its private memo instead).
  void insert(ExpansionEntry Entry) {
    if (published())
      return;
    Key K(Entry.File, Entry.ContentHash, Entry.MacroFp);
    Entries.emplace(std::move(K), std::move(Entry));
  }

  void publish() { Published.store(true, std::memory_order_release); }
  bool published() const {
    return Published.load(std::memory_order_acquire);
  }
  std::size_t size() const { return Entries.size(); }

private:
  using Key = std::tuple<std::string, std::uint64_t, std::uint64_t>;
  std::map<Key, ExpansionEntry> Entries;
  std::atomic<bool> Published{false};
};

//===--- read cache -------------------------------------------------------===//

/// A file's contents with its precomputed content hash.
struct CachedFile {
  std::string Text;
  std::uint64_t Hash = 0;
};

/// Batch-scoped cache of VFS reads by path: the same header is read (and
/// hashed) once per batch instead of once per translation unit. Same
/// publish discipline as FrontendCache. Note that reads served from this
/// cache bypass the VFS's read observer — the check service, whose result
/// cache depends on that observer for dependency tracking, runs one-file
/// batches and never attaches a shared context.
class ReadCache {
public:
  const CachedFile *lookup(const std::string &Name) const {
    auto It = Files.find(Name);
    return It == Files.end() ? nullptr : &It->second;
  }

  /// Pre-publish only. \returns the stored file (or null after publish).
  const CachedFile *insert(const std::string &Name, std::string Text,
                           std::uint64_t Hash) {
    if (published())
      return nullptr;
    CachedFile &Slot = Files[Name];
    Slot.Text = std::move(Text);
    Slot.Hash = Hash;
    return &Slot;
  }

  void publish() { Published.store(true, std::memory_order_release); }
  bool published() const {
    return Published.load(std::memory_order_acquire);
  }
  std::size_t size() const { return Files.size(); }

private:
  std::map<std::string, CachedFile> Files;
  std::atomic<bool> Published{false};
};

//===--- the batch-scoped bundle ------------------------------------------===//

/// Everything one batch shares across its workers. Lifetime: created by
/// the driver, populated by the warmup pass, published before the worker
/// pool starts, destroyed after every worker has joined — so tokens
/// pointing into Interner and entries in Cache outlive every run that can
/// observe them.
struct FrontendContext {
  FrontendCache Cache;
  SharedInterner Interner;
  ReadCache Reads;

  void publish() {
    Cache.publish();
    Reads.publish();
    Interner.publish();
  }
  bool published() const { return Interner.published(); }
};

/// Version stamp of the front-end cache's semantics, folded into
/// checkOptionsFingerprint: journals and persisted service caches written
/// under a different pp-cache generation are refused/discarded instead of
/// replayed, so warm results always come from the same front-end
/// semantics that a cold run would use.
inline const char *frontendCacheVersion() { return "pp-cache-v1"; }

} // namespace memlint

#endif // MEMLINT_PP_FRONTENDCACHE_H
