//===--- Preprocessor.cpp - Preprocessor-lite -------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "pp/Preprocessor.h"

#include "lex/Lexer.h"

#include <cassert>
#include <stdexcept>

using namespace memlint;

void Preprocessor::predefine(const std::string &Name,
                             const std::string &Value) {
  DiagnosticEngine Scratch;
  Lexer Lex("<predefined>", Value, Scratch);
  std::vector<Token> Body = Lex.lex();
  assert(!Body.empty());
  Body.pop_back(); // drop Eof
  Macro M;
  M.FunctionLike = false;
  M.Body = std::move(Body);
  Macros[Name] = std::move(M);
}

std::vector<Token> Preprocessor::process(const std::string &MainFile) {
  std::optional<std::string> Contents = Files.read(MainFile);
  if (!Contents) {
    Diags.report(CheckId::ParseError, SourceLocation(MainFile, 1, 1),
                 "cannot open file '" + MainFile + "'", Severity::Error);
    std::vector<Token> Out;
    Token Eof;
    Eof.Loc = SourceLocation(MainFile, 1, 1);
    Out.push_back(Eof);
    return Out;
  }
  return processSource(MainFile, *Contents);
}

std::vector<Token> Preprocessor::processSource(const std::string &Name,
                                               const std::string &Source) {
  Lexer Lex(Name, Source, Diags);
  std::vector<Token> Raw;
  {
    ScopedTimer T(Metrics, "phase.lex");
    Raw = Lex.lex();
  }
  if (Metrics)
    Metrics->addCounter("lex.tokens", Raw.size());
  std::vector<Token> Out;
  IncludeStack.insert(Name);
  {
    ScopedTimer T(Metrics, "phase.pp");
    processTokens(Raw, Out, /*Depth=*/0);
  }
  if (Metrics)
    Metrics->addCounter("pp.tokens", Out.size());
  IncludeStack.erase(Name);
  if (Out.empty() || !Out.back().isEof()) {
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    Eof.Loc = Raw.empty() ? SourceLocation(Name, 1, 1) : Raw.back().Loc;
    Out.push_back(Eof);
  }
  return Out;
}

bool Preprocessor::emit(const Token &Tok, std::vector<Token> &Out) {
  if (Budget && !Budget->takeToken()) {
    if (!BudgetNoticed) {
      BudgetNoticed = true;
      Diags.report(CheckId::ParseError, Tok.Loc,
                   "token budget exceeded (limittokens=" +
                       std::to_string(Budget->budget().MaxTokens) +
                       "); remaining input not processed",
                   Severity::Note);
    }
    return false;
  }
  Out.push_back(Tok);
  return true;
}

size_t Preprocessor::directiveEnd(const std::vector<Token> &Toks, size_t I) {
  // The directive covers tokens on the same physical line as the '#'.
  const std::string &File = Toks[I].Loc.file();
  unsigned Line = Toks[I].Loc.line();
  size_t J = I;
  while (J < Toks.size() && !Toks[J].isEof() &&
         Toks[J].Loc.file() == File && Toks[J].Loc.line() == Line)
    ++J;
  return J;
}

void Preprocessor::processTokens(const std::vector<Token> &Toks,
                                 std::vector<Token> &Out, unsigned Depth) {
  if (Depth > 32) {
    Diags.report(CheckId::ParseError,
                 Toks.empty() ? SourceLocation() : Toks.front().Loc,
                 "#include nesting too deep", Severity::Error);
    return;
  }
  std::set<std::string> Active;
  size_t I = 0;
  size_t CondBase = Conds.size();
  while (I < Toks.size()) {
    const Token &Tok = Toks[I];
    if (Tok.isEof())
      break;
    if (Tok.is(TokenKind::Hash) && Tok.StartOfLine) {
      I = handleDirective(Toks, I, Out, Depth);
      continue;
    }
    if (!taking()) {
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::ControlComment)) {
      Controls.push_back({Tok.Loc, Tok.Text});
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::Identifier) && Macros.count(Tok.Text)) {
      I = expandMacro(Toks, I, Out, Active);
      if (overBudget())
        break;
      continue;
    }
    if (!emit(Tok, Out))
      break;
    ++I;
  }
  // Unterminated conditionals opened in this file.
  if (Conds.size() > CondBase) {
    Diags.report(CheckId::ParseError,
                 Toks.empty() ? SourceLocation() : Toks.back().Loc,
                 "unterminated conditional directive", Severity::Error);
    Conds.resize(CondBase);
  }
}

size_t Preprocessor::handleDirective(const std::vector<Token> &Toks, size_t I,
                                     std::vector<Token> &Out, unsigned Depth) {
  size_t End = directiveEnd(Toks, I);
  size_t J = I + 1; // token after '#'
  if (J >= End)
    return End; // null directive "#"

  const Token &Name = Toks[J];
  std::string Directive = Name.Text;
  ++J;

  auto lineHas = [&](size_t K) { return K < End; };

  if (Directive == "endif") {
    if (Conds.empty())
      Diags.report(CheckId::ParseError, Name.Loc, "#endif without #if",
                   Severity::Error);
    else
      Conds.pop_back();
    return End;
  }
  if (Directive == "else") {
    if (Conds.empty()) {
      Diags.report(CheckId::ParseError, Name.Loc, "#else without #if",
                   Severity::Error);
      return End;
    }
    CondState &C = Conds.back();
    C.Taking = !C.TakenAnyBranch;
    C.TakenAnyBranch = true;
    return End;
  }
  if (Directive == "ifdef" || Directive == "ifndef") {
    bool Defined = lineHas(J) && Macros.count(Toks[J].Text) != 0;
    bool Take = (Directive == "ifdef") ? Defined : !Defined;
    if (!taking())
      Take = false; // nested in a skipped region: never take
    Conds.push_back({Take, Take});
    return End;
  }
  if (Directive == "if") {
    // Supported forms: integer constant, defined(NAME), !defined(NAME).
    bool Value = false;
    if (lineHas(J)) {
      bool Negate = false;
      size_t K = J;
      if (Toks[K].is(TokenKind::Exclaim)) {
        Negate = true;
        ++K;
      }
      if (lineHas(K) && Toks[K].is(TokenKind::IntegerLiteral)) {
        Value = std::stol(Toks[K].Text, nullptr, 0) != 0;
      } else if (lineHas(K) && Toks[K].Text == "defined") {
        size_t L = K + 1;
        if (lineHas(L) && Toks[L].is(TokenKind::LParen))
          ++L;
        if (lineHas(L) && Toks[L].is(TokenKind::Identifier))
          Value = Macros.count(Toks[L].Text) != 0;
      } else {
        Diags.report(CheckId::ParseError, Name.Loc,
                     "unsupported #if expression", Severity::Error);
      }
      if (Negate)
        Value = !Value;
    }
    if (!taking())
      Value = false;
    Conds.push_back({Value, Value});
    return End;
  }

  if (!taking())
    return End; // other directives in skipped regions are ignored

  if (Directive == "define") {
    if (!lineHas(J) || !Toks[J].is(TokenKind::Identifier)) {
      Diags.report(CheckId::ParseError, Name.Loc,
                   "macro name missing in #define", Severity::Error);
      return End;
    }
    const Token &MacroName = Toks[J];
    ++J;
    Macro M;
    // Function-like iff '(' immediately follows the name (no whitespace).
    if (lineHas(J) && Toks[J].is(TokenKind::LParen) &&
        Toks[J].Loc.line() == MacroName.Loc.line() &&
        Toks[J].Loc.column() ==
            MacroName.Loc.column() + MacroName.Text.size()) {
      M.FunctionLike = true;
      ++J; // '('
      while (lineHas(J) && !Toks[J].is(TokenKind::RParen)) {
        if (Toks[J].is(TokenKind::Identifier))
          M.Params.push_back(Toks[J].Text);
        ++J; // identifier or comma
      }
      if (lineHas(J))
        ++J; // ')'
    }
    for (; J < End; ++J) {
      if (Toks[J].is(TokenKind::ControlComment)) {
        Controls.push_back({Toks[J].Loc, Toks[J].Text});
        continue;
      }
      M.Body.push_back(Toks[J]);
    }
    Macros[MacroName.Text] = std::move(M);
    return End;
  }
  if (Directive == "undef") {
    if (lineHas(J))
      Macros.erase(Toks[J].Text);
    return End;
  }
  if (Directive == "include") {
    std::string IncludeName;
    if (lineHas(J) && Toks[J].is(TokenKind::StringLiteral)) {
      IncludeName = Toks[J].Text;
    } else if (lineHas(J) && Toks[J].is(TokenKind::Less)) {
      for (size_t K = J + 1; K < End && !Toks[K].is(TokenKind::Greater); ++K)
        IncludeName += Toks[K].Text;
    }
    if (IncludeName.empty()) {
      Diags.report(CheckId::ParseError, Name.Loc, "malformed #include",
                   Severity::Error);
      return End;
    }
    if (IncludeStack.count(IncludeName))
      return End; // already being included; break the cycle silently
    std::optional<std::string> Contents = Files.read(IncludeName);
    if (!Contents) {
      // Unknown headers (e.g. <stdio.h>) are tolerated: the annotated
      // standard library specs are built in (analysis/LibrarySpec).
      return End;
    }
    Lexer Lex(IncludeName, *Contents, Diags);
    std::vector<Token> Raw = Lex.lex();
    IncludeStack.insert(IncludeName);
    processTokens(Raw, Out, Depth + 1);
    IncludeStack.erase(IncludeName);
    return End;
  }
  if (Directive == "pragma" || Directive == "error" || Directive == "line") {
    // "#pragma memlint crash" is a deliberate internal-error injection hook
    // (like clang's "#pragma clang __debug crash"): it exercises the
    // facade's last-resort containment in tests without corrupting state.
    if (Directive == "pragma" && lineHas(J) && Toks[J].Text == "memlint" &&
        lineHas(J + 1) && Toks[J + 1].Text == "crash")
      throw std::runtime_error("deliberate internal error (#pragma memlint "
                               "crash) at " +
                               Name.Loc.str());
    return End;
  }

  Diags.report(CheckId::ParseError, Name.Loc,
               "unknown preprocessing directive '#" + Directive + "'",
               Severity::Error);
  return End;
}

size_t Preprocessor::expandMacro(const std::vector<Token> &Toks, size_t I,
                                 std::vector<Token> &Out,
                                 std::set<std::string> &Active) {
  const Token &Name = Toks[I];
  assert(Macros.count(Name.Text));
  if (Active.count(Name.Text)) {
    emit(Name, Out);
    return I + 1;
  }
  const Macro &M = Macros[Name.Text];

  if (!M.FunctionLike) {
    Active.insert(Name.Text);
    expandTokenList(M.Body, Out, Active);
    Active.erase(Name.Text);
    return I + 1;
  }

  // Function-like: need '(' next, otherwise it is a plain identifier.
  size_t J = I + 1;
  if (J >= Toks.size() || !Toks[J].is(TokenKind::LParen)) {
    emit(Name, Out);
    return I + 1;
  }
  ++J; // '('
  std::vector<std::vector<Token>> Args;
  std::vector<Token> Current;
  int Depth = 1;
  while (J < Toks.size() && !Toks[J].isEof()) {
    const Token &Tok = Toks[J];
    if (Tok.is(TokenKind::LParen))
      ++Depth;
    if (Tok.is(TokenKind::RParen)) {
      --Depth;
      if (Depth == 0) {
        ++J;
        break;
      }
    }
    if (Tok.is(TokenKind::Comma) && Depth == 1) {
      Args.push_back(std::move(Current));
      Current.clear();
      ++J;
      continue;
    }
    Current.push_back(Tok);
    ++J;
  }
  if (!Current.empty() || !Args.empty() || !M.Params.empty())
    Args.push_back(std::move(Current));

  if (Args.size() != M.Params.size()) {
    Diags.report(CheckId::ParseError, Name.Loc,
                 "macro '" + Name.Text + "' expects " +
                     std::to_string(M.Params.size()) + " arguments, got " +
                     std::to_string(Args.size()),
                 Severity::Error);
    return J;
  }

  // Substitute parameters, keeping body-token locations (definition site).
  std::vector<Token> Substituted;
  for (const Token &BodyTok : M.Body) {
    if (BodyTok.is(TokenKind::Identifier)) {
      bool WasParam = false;
      for (size_t P = 0; P < M.Params.size(); ++P) {
        if (BodyTok.Text == M.Params[P]) {
          for (const Token &ArgTok : Args[P])
            Substituted.push_back(ArgTok);
          WasParam = true;
          break;
        }
      }
      if (WasParam)
        continue;
    }
    Substituted.push_back(BodyTok);
  }

  Active.insert(Name.Text);
  expandTokenList(Substituted, Out, Active);
  Active.erase(Name.Text);
  return J;
}

void Preprocessor::expandTokenList(const std::vector<Token> &Toks,
                                   std::vector<Token> &Out,
                                   std::set<std::string> &Active) {
  size_t I = 0;
  while (I < Toks.size()) {
    const Token &Tok = Toks[I];
    if (Tok.is(TokenKind::ControlComment)) {
      Controls.push_back({Tok.Loc, Tok.Text});
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::Identifier) && Macros.count(Tok.Text) &&
        !Active.count(Tok.Text)) {
      I = expandMacro(Toks, I, Out, Active);
      if (overBudget())
        return;
      continue;
    }
    if (!emit(Tok, Out))
      return;
    ++I;
  }
}
