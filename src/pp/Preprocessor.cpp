//===--- Preprocessor.cpp - Preprocessor-lite -------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "pp/Preprocessor.h"

#include "lex/Lexer.h"
#include "support/MonotonicTime.h"

#include <cassert>
#include <stdexcept>

using namespace memlint;

namespace {
/// Exception-safe include-stack entry: a thrown containment error (e.g.
/// "#pragma memlint crash") must not leave the file marked as in-progress
/// for later process calls on the same preprocessor.
struct IncludeStackGuard {
  std::set<std::string> &Stack;
  std::string Name;
  bool Inserted;
  IncludeStackGuard(std::set<std::string> &Stack, std::string Name)
      : Stack(Stack), Name(std::move(Name)) {
    Inserted = this->Stack.insert(this->Name).second;
  }
  ~IncludeStackGuard() {
    if (Inserted)
      Stack.erase(Name);
  }
};
} // namespace

/// RAII bracket around one expansion recording. The destructor always pops
/// the recording; only a recording whose scope reached commit() — i.e.
/// returned normally — may be stored, so an exception anywhere inside the
/// expansion (deliberate crash pragma, injected fault, cancellation)
/// discards the candidate instead of memoizing a half-recorded entry.
class Preprocessor::RecordScope {
public:
  RecordScope(Preprocessor &PP, bool Enable, const std::string &Name,
              std::uint64_t Hash, std::uint64_t Fp, unsigned Base,
              std::size_t OwnBytes)
      : PP(PP), Active(Enable) {
    if (Active)
      PP.beginRecording(Name, Hash, Fp, Base, OwnBytes);
  }
  RecordScope(const RecordScope &) = delete;
  RecordScope &operator=(const RecordScope &) = delete;
  ~RecordScope() {
    if (Active)
      PP.finishRecording(Committed);
  }

  /// Top-level entries carry the Eof location the caller will stamp.
  void setEofLoc(SourceLocation Loc) {
    if (Active)
      PP.Recordings.back().Entry.EofLoc = std::move(Loc);
  }
  void commit() { Committed = true; }

private:
  Preprocessor &PP;
  bool Active;
  bool Committed = false;
};

void Preprocessor::predefine(const std::string &Name,
                             const std::string &Value) {
  DiagnosticEngine Scratch;
  Lexer Lex("<predefined>", Value, Scratch, Arena);
  std::vector<Token> Body = Lex.lex();
  assert(!Body.empty());
  Body.pop_back(); // drop Eof
  MacroDef M;
  M.FunctionLike = false;
  M.Body = std::move(Body);
  defineMacro(Name, std::move(M));
}

std::vector<Token> Preprocessor::process(const std::string &MainFile) {
  std::optional<FileRef> FR = readFile(MainFile);
  if (!FR) {
    Diags.report(CheckId::ParseError, SourceLocation(MainFile, 1, 1),
                 "cannot open file '" + MainFile + "'", Severity::Error);
    std::vector<Token> Out;
    Token Eof;
    Eof.Loc = SourceLocation(MainFile, 1, 1);
    Out.push_back(Eof);
    return Out;
  }
  return processSource(MainFile, *FR->Text);
}

std::vector<Token> Preprocessor::processSource(const std::string &Name,
                                               const std::string &Source) {
  std::vector<Token> Out;
  RecOut = &Out;
  NestedLexMs = 0;
  ScopedTraceSpan PpSpan(Trace, "frontend", "phase.pp");
  PpSpan.arg("file", Name);

  // Top-level memo: in a batch with shared headers the dominant repeated
  // text is the prelude itself, processed once per translation unit.
  std::uint64_t Hash = 0;
  std::uint64_t Fp = 0;
  if (MemoOn) {
    Hash = hashContents(Source);
    Fp = Macros.fingerprint();
    const ExpansionEntry *E = nullptr;
    {
      ScopedLatency L(Metrics, "pp.include_cache.lookup",
                      "hist.pp.include_cache.lookup");
      E = lookupEntry(Name, Hash, Fp);
    }
    if (E && canReplay(*E, /*Base=*/0)) {
      countMemo(true, E->SourceBytes, Name);
      {
        ScopedTimer T(Metrics, "phase.pp");
        replayEntry(*E, Out);
      }
      if (Metrics)
        Metrics->addCounter("pp.tokens", Out.size());
      if (Out.empty() || !Out.back().isEof()) {
        Token Eof;
        Eof.Kind = TokenKind::Eof;
        Eof.Loc = E->EofLoc.isValid() ? E->EofLoc : SourceLocation(Name, 1, 1);
        Out.push_back(Eof);
      }
      RecOut = nullptr;
      return Out;
    }
    countMemo(false, 0, Name);
  }

  // Record the top-level expansion only into the shared cache (the driver's
  // warmup pass); a private top-level entry could never hit again within
  // one run.
  const bool RecordTop =
      MemoOn && Ctx && !Ctx->published() && Arena && Arena->SharedBuild;

  const double LexStart = Metrics ? monotonicNowMs() : 0;
  double PpStart = 0;
  std::vector<Token> Raw;
  {
    RecordScope Rec(*this, RecordTop, Name, Hash, Fp, /*Base=*/0,
                    Source.size());
    Lexer Lex(Name, Source, Diags, Arena);
    Raw = Lex.lex();
    if (Metrics) {
      PpStart = monotonicNowMs();
      Metrics->addCounter("lex.tokens", Raw.size());
    }
    IncludeStackGuard G(IncludeStack, Name);
    processTokens(Raw, Out, /*Depth=*/0);
    Rec.setEofLoc(Raw.empty() ? SourceLocation(Name, 1, 1) : Raw.back().Loc);
    Rec.commit();
  }
  if (Metrics) {
    const double End = monotonicNowMs();
    // Nested include lexing happens inside processTokens but is lexing:
    // re-attribute it from phase.pp to phase.lex (addTimeMs clamps at 0).
    Metrics->addTimeMs("phase.lex", (PpStart - LexStart) + NestedLexMs);
    Metrics->addTimeMs("phase.pp", (End - PpStart) - NestedLexMs);
    Metrics->addCounter("pp.tokens", Out.size());
  }
  if (Out.empty() || !Out.back().isEof()) {
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    Eof.Loc = Raw.empty() ? SourceLocation(Name, 1, 1) : Raw.back().Loc;
    Out.push_back(Eof);
  }
  RecOut = nullptr;
  return Out;
}

//===--- front-end reuse (DESIGN.md §5c) ----------------------------------===//

std::optional<Preprocessor::FileRef>
Preprocessor::readFile(const std::string &Name) {
  if (Ctx) {
    if (const CachedFile *C = Ctx->Reads.lookup(Name)) {
      if (Metrics)
        Metrics->addCounter("vfs.read.hit");
      return FileRef{&C->Text, C->Hash};
    }
  }
  auto It = PrivateReads.find(Name);
  if (It != PrivateReads.end()) {
    if (Metrics)
      Metrics->addCounter("vfs.read.hit");
    return FileRef{&It->second.Text, It->second.Hash};
  }
  // First real read: the VFS's OnRead observer fires here (and only here),
  // once per unique path per run — dependency tracking keys on the set of
  // paths, so collapsing repeat reads preserves it.
  std::optional<std::string> Contents = Files.read(Name);
  if (Metrics)
    Metrics->addCounter("vfs.read.miss");
  if (!Contents)
    return std::nullopt;
  const std::uint64_t Hash = hashContents(*Contents);
  if (Ctx && !Ctx->published())
    if (const CachedFile *C =
            Ctx->Reads.insert(Name, std::move(*Contents), Hash))
      return FileRef{&C->Text, C->Hash};
  CachedFile &Slot = PrivateReads[Name];
  Slot.Text = std::move(*Contents);
  Slot.Hash = Hash;
  return FileRef{&Slot.Text, Slot.Hash};
}

const ExpansionEntry *Preprocessor::lookupEntry(const std::string &Name,
                                                std::uint64_t Hash,
                                                std::uint64_t Fp) {
  if (Ctx)
    if (const ExpansionEntry *E = Ctx->Cache.lookup(Name, Hash, Fp))
      return E;
  auto It = PrivateMemo.find(std::make_tuple(Name, Hash, Fp));
  return It == PrivateMemo.end() ? nullptr : &It->second;
}

bool Preprocessor::canReplay(const ExpansionEntry &E, unsigned Base) const {
  if (Budget) {
    // A fault injector counts checkpoints deterministically and may stop
    // the stream at any token; keep every checkpoint on the live path.
    if (Budget->faultInjector())
      return false;
    // Replay only when every token fits: budget truncation then always
    // happens live, with its exact mid-stream notice and partial output.
    if (Budget->tokensRemaining() < E.Tokens.size())
      return false;
  }
  if (Base + E.MaxRelDepth > 32)
    return false;
  // A dependency already being included would have cycle-broken the live
  // expansion into different tokens.
  for (const std::string &N : E.IncludedNames)
    if (IncludeStack.count(N))
      return false;
  return true;
}

void Preprocessor::replayEntry(const ExpansionEntry &E,
                               std::vector<Token> &Out) {
  std::size_t Op = 0;
  const std::size_t N = E.Tokens.size();
  for (std::size_t I = 0; I <= N; ++I) {
    // Ops recorded after I emitted tokens apply before token I.
    while (Op < E.Ops.size() && E.Ops[Op].At <= I)
      applyOp(E.Ops[Op++]);
    if (I == N)
      break;
    if (!emit(E.Tokens[I], Out))
      return; // unreachable given canReplay's pre-checks; defensive
  }
}

void Preprocessor::applyOp(const ReplayOp &Op) {
  // Route through the mutation funnels so a replay nested inside an outer
  // recording is captured by that recording too.
  switch (Op.K) {
  case ReplayOp::Kind::Control:
    addControl(Op.Loc, Op.Text);
    break;
  case ReplayOp::Kind::Define:
    defineMacro(Op.Text, Op.Def);
    break;
  case ReplayOp::Kind::Undef:
    undefMacro(Op.Text);
    break;
  }
}

void Preprocessor::defineMacro(const std::string &Name, MacroDef Def) {
  for (Recording &R : Recordings) {
    ReplayOp Op;
    Op.K = ReplayOp::Kind::Define;
    Op.At = RecOut->size() - R.OutStart;
    Op.Text = Name;
    Op.Def = Def;
    R.Entry.Ops.push_back(std::move(Op));
  }
  Macros.define(Name, std::move(Def));
}

void Preprocessor::undefMacro(const std::string &Name) {
  Macros.undef(Name); // absent names are a no-op, live and replayed alike
  for (Recording &R : Recordings) {
    ReplayOp Op;
    Op.K = ReplayOp::Kind::Undef;
    Op.At = RecOut->size() - R.OutStart;
    Op.Text = Name;
    R.Entry.Ops.push_back(std::move(Op));
  }
}

void Preprocessor::addControl(SourceLocation Loc, const std::string &Text) {
  for (Recording &R : Recordings) {
    ReplayOp Op;
    Op.K = ReplayOp::Kind::Control;
    Op.At = RecOut->size() - R.OutStart;
    Op.Loc = Loc;
    Op.Text = Text;
    R.Entry.Ops.push_back(std::move(Op));
  }
  Controls.push_back({std::move(Loc), Text});
}

void Preprocessor::notePoison() {
  // The instant marks a real memoization loss: something replay-hostile
  // happened while at least one expansion was being recorded.
  if (Trace && !Recordings.empty())
    Trace->instant("frontend", "pp.include_cache.poison");
  for (Recording &R : Recordings)
    R.Poisoned = true;
}

void Preprocessor::noteLiveInclude(const std::string &Name, unsigned Base,
                                   std::size_t Bytes) {
  for (Recording &R : Recordings) {
    R.Entry.IncludedNames.push_back(Name);
    const unsigned Rel = Base - R.BaseDepth;
    if (Rel > R.Entry.MaxRelDepth)
      R.Entry.MaxRelDepth = Rel;
    R.Entry.SourceBytes += Bytes;
  }
}

void Preprocessor::noteReplayedInclude(const ExpansionEntry &E,
                                       unsigned Base) {
  for (Recording &R : Recordings) {
    R.Entry.IncludedNames.push_back(E.File);
    R.Entry.IncludedNames.insert(R.Entry.IncludedNames.end(),
                                 E.IncludedNames.begin(),
                                 E.IncludedNames.end());
    const unsigned Rel = Base - R.BaseDepth + E.MaxRelDepth;
    if (Rel > R.Entry.MaxRelDepth)
      R.Entry.MaxRelDepth = Rel;
    R.Entry.SourceBytes += E.SourceBytes;
  }
}

void Preprocessor::beginRecording(const std::string &Name, std::uint64_t Hash,
                                  std::uint64_t Fp, unsigned Base,
                                  std::size_t OwnBytes) {
  Recording R;
  R.Entry.File = Name;
  R.Entry.ContentHash = Hash;
  R.Entry.MacroFp = Fp;
  R.Entry.SourceBytes = OwnBytes;
  R.OutStart = RecOut->size();
  R.DiagsStart = Diags.reportedCount();
  R.CondBase = Conds.size();
  R.BaseDepth = Base;
  Recordings.push_back(std::move(R));
}

void Preprocessor::finishRecording(bool Commit) {
  Recording R = std::move(Recordings.back());
  Recordings.pop_back();
  if (!Commit || R.Poisoned)
    return;
  // Any reporting activity — even a filtered or flood-dropped diagnostic,
  // even from the nested lexer — makes the expansion context-dependent:
  // replaying it elsewhere would swallow the report.
  if (Diags.reportedCount() != R.DiagsStart)
    return;
  // A truncated stream is not the expansion of this file.
  if (overBudget())
    return;
  // Conditionals must balance exactly: a surplus is caught above via the
  // "unterminated conditional" diagnostic, and pops below the base poison
  // eagerly — this catches a pop/push pair that nets to zero.
  if (Conds.size() != R.CondBase)
    return;
  R.Entry.Tokens.assign(RecOut->begin() +
                            static_cast<std::ptrdiff_t>(R.OutStart),
                        RecOut->end());
  const bool Shared = Ctx && !Ctx->published() && Arena && Arena->SharedBuild;
  if (Shared) {
    // Warmup: spellings were interned into the shared arena, so the entry
    // is safe to hand to any worker.
    Ctx->Cache.insert(std::move(R.Entry));
    return;
  }
  std::tuple<std::string, std::uint64_t, std::uint64_t> Key(
      R.Entry.File, R.Entry.ContentHash, R.Entry.MacroFp);
  PrivateMemo.emplace(std::move(Key), std::move(R.Entry));
}

void Preprocessor::countMemo(bool Hit, std::size_t Bytes,
                             const std::string &Name) {
  if (Trace)
    Trace->instant("frontend",
                   Hit ? "pp.include_cache.hit" : "pp.include_cache.miss",
                   {{"file", Name}});
  if (!Metrics)
    return;
  if (Hit) {
    Metrics->addCounter("pp.include_cache.hit");
    Metrics->addCounter("pp.include_cache.bytes_saved", Bytes);
  } else {
    Metrics->addCounter("pp.include_cache.miss");
  }
}

//===--- token emission and directive processing --------------------------===//

bool Preprocessor::emit(const Token &Tok, std::vector<Token> &Out) {
  if (Budget && !Budget->takeToken()) {
    if (!BudgetNoticed) {
      BudgetNoticed = true;
      Diags.report(CheckId::ParseError, Tok.Loc,
                   "token budget exceeded (limittokens=" +
                       std::to_string(Budget->budget().MaxTokens) +
                       "); remaining input not processed",
                   Severity::Note);
    }
    return false;
  }
  Out.push_back(Tok);
  return true;
}

size_t Preprocessor::directiveEnd(const std::vector<Token> &Toks, size_t I) {
  // The directive covers tokens on the same physical line as the '#'.
  const std::string &File = Toks[I].Loc.file();
  unsigned Line = Toks[I].Loc.line();
  size_t J = I;
  while (J < Toks.size() && !Toks[J].isEof() &&
         Toks[J].Loc.file() == File && Toks[J].Loc.line() == Line)
    ++J;
  return J;
}

void Preprocessor::processTokens(const std::vector<Token> &Toks,
                                 std::vector<Token> &Out, unsigned Depth) {
  if (Depth > 32) {
    Diags.report(CheckId::ParseError,
                 Toks.empty() ? SourceLocation() : Toks.front().Loc,
                 "#include nesting too deep", Severity::Error);
    return;
  }
  std::set<std::string> Active;
  size_t I = 0;
  size_t CondBase = Conds.size();
  while (I < Toks.size()) {
    const Token &Tok = Toks[I];
    if (Tok.isEof())
      break;
    if (Tok.is(TokenKind::Hash) && Tok.StartOfLine) {
      I = handleDirective(Toks, I, Out, Depth);
      continue;
    }
    if (!taking()) {
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::ControlComment)) {
      addControl(Tok.Loc, Tok.Text);
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::Identifier) && Macros.contains(Tok.Text)) {
      I = expandMacro(Toks, I, Out, Active);
      if (overBudget())
        break;
      continue;
    }
    if (!emit(Tok, Out))
      break;
    ++I;
  }
  // Unterminated conditionals opened in this file.
  if (Conds.size() > CondBase) {
    Diags.report(CheckId::ParseError,
                 Toks.empty() ? SourceLocation() : Toks.back().Loc,
                 "unterminated conditional directive", Severity::Error);
    Conds.resize(CondBase);
  }
}

size_t Preprocessor::handleDirective(const std::vector<Token> &Toks, size_t I,
                                     std::vector<Token> &Out, unsigned Depth) {
  size_t End = directiveEnd(Toks, I);
  size_t J = I + 1; // token after '#'
  if (J >= End)
    return End; // null directive "#"

  const Token &Name = Toks[J];
  std::string Directive = Name.Text;
  ++J;

  auto lineHas = [&](size_t K) { return K < End; };
  // A conditional touched below a recording's base belongs to an enclosing
  // file; replay would not reproduce the change, so the candidate dies.
  auto poisonOuterCondTouch = [&] {
    for (Recording &R : Recordings)
      if (Conds.size() <= R.CondBase)
        R.Poisoned = true;
  };

  if (Directive == "endif") {
    if (Conds.empty())
      Diags.report(CheckId::ParseError, Name.Loc, "#endif without #if",
                   Severity::Error);
    else {
      poisonOuterCondTouch();
      Conds.pop_back();
    }
    return End;
  }
  if (Directive == "else") {
    if (Conds.empty()) {
      Diags.report(CheckId::ParseError, Name.Loc, "#else without #if",
                   Severity::Error);
      return End;
    }
    poisonOuterCondTouch();
    CondState &C = Conds.back();
    C.Taking = !C.TakenAnyBranch;
    C.TakenAnyBranch = true;
    return End;
  }
  if (Directive == "ifdef" || Directive == "ifndef") {
    bool Defined = lineHas(J) && Macros.contains(Toks[J].Text);
    bool Take = (Directive == "ifdef") ? Defined : !Defined;
    if (!taking())
      Take = false; // nested in a skipped region: never take
    Conds.push_back({Take, Take});
    return End;
  }
  if (Directive == "if") {
    // Supported forms: integer constant, defined(NAME), !defined(NAME).
    bool Value = false;
    if (lineHas(J)) {
      bool Negate = false;
      size_t K = J;
      if (Toks[K].is(TokenKind::Exclaim)) {
        Negate = true;
        ++K;
      }
      if (lineHas(K) && Toks[K].is(TokenKind::IntegerLiteral)) {
        Value = std::stol(Toks[K].Text, nullptr, 0) != 0;
      } else if (lineHas(K) && Toks[K].Text == "defined") {
        size_t L = K + 1;
        if (lineHas(L) && Toks[L].is(TokenKind::LParen))
          ++L;
        if (lineHas(L) && Toks[L].is(TokenKind::Identifier))
          Value = Macros.contains(Toks[L].Text);
      } else {
        Diags.report(CheckId::ParseError, Name.Loc,
                     "unsupported #if expression", Severity::Error);
      }
      if (Negate)
        Value = !Value;
    }
    if (!taking())
      Value = false;
    Conds.push_back({Value, Value});
    return End;
  }

  if (!taking())
    return End; // other directives in skipped regions are ignored

  if (Directive == "define") {
    if (!lineHas(J) || !Toks[J].is(TokenKind::Identifier)) {
      Diags.report(CheckId::ParseError, Name.Loc,
                   "macro name missing in #define", Severity::Error);
      return End;
    }
    const Token &MacroName = Toks[J];
    ++J;
    MacroDef M;
    // Function-like iff '(' immediately follows the name (no whitespace).
    if (lineHas(J) && Toks[J].is(TokenKind::LParen) &&
        Toks[J].Loc.line() == MacroName.Loc.line() &&
        Toks[J].Loc.column() ==
            MacroName.Loc.column() + MacroName.Text.size()) {
      M.FunctionLike = true;
      ++J; // '('
      while (lineHas(J) && !Toks[J].is(TokenKind::RParen)) {
        if (Toks[J].is(TokenKind::Identifier))
          M.Params.push_back(Toks[J].Text);
        ++J; // identifier or comma
      }
      if (lineHas(J))
        ++J; // ')'
    }
    for (; J < End; ++J) {
      if (Toks[J].is(TokenKind::ControlComment)) {
        addControl(Toks[J].Loc, Toks[J].Text);
        continue;
      }
      M.Body.push_back(Toks[J]);
    }
    defineMacro(MacroName.Text, std::move(M));
    return End;
  }
  if (Directive == "undef") {
    if (lineHas(J))
      undefMacro(Toks[J].Text);
    return End;
  }
  if (Directive == "include") {
    std::string IncludeName;
    if (lineHas(J) && Toks[J].is(TokenKind::StringLiteral)) {
      IncludeName = Toks[J].Text;
    } else if (lineHas(J) && Toks[J].is(TokenKind::Less)) {
      for (size_t K = J + 1; K < End && !Toks[K].is(TokenKind::Greater); ++K)
        IncludeName += Toks[K].Text;
    }
    if (IncludeName.empty()) {
      Diags.report(CheckId::ParseError, Name.Loc, "malformed #include",
                   Severity::Error);
      return End;
    }
    if (IncludeStack.count(IncludeName)) {
      // Already being included; break the cycle silently. The tokens any
      // enclosing expansion emits now depend on the active stack, so it
      // must not be memoized.
      notePoison();
      return End;
    }
    std::optional<FileRef> FR = readFile(IncludeName);
    if (!FR) {
      // Unknown headers (e.g. <stdio.h>) are tolerated: the annotated
      // standard library specs are built in (analysis/LibrarySpec).
      return End;
    }
    const unsigned Base = Depth + 1;
    std::uint64_t Fp = 0;
    if (MemoOn) {
      Fp = Macros.fingerprint();
      const ExpansionEntry *E = nullptr;
      {
        ScopedLatency L(Metrics, "pp.include_cache.lookup",
                        "hist.pp.include_cache.lookup");
        E = lookupEntry(IncludeName, FR->Hash, Fp);
      }
      if (E && canReplay(*E, Base)) {
        countMemo(true, E->SourceBytes, IncludeName);
        noteReplayedInclude(*E, Base);
        replayEntry(*E, Out);
        return End;
      }
      countMemo(false, 0, IncludeName);
    }
    noteLiveInclude(IncludeName, Base, FR->Text->size());
    RecordScope Rec(*this, MemoOn, IncludeName, FR->Hash, Fp, Base,
                    FR->Text->size());
    const double LexStart = Metrics ? monotonicNowMs() : 0;
    Lexer Lex(IncludeName, *FR->Text, Diags, Arena);
    std::vector<Token> Raw = Lex.lex();
    if (Metrics) {
      NestedLexMs += monotonicNowMs() - LexStart;
      Metrics->addCounter("lex.tokens", Raw.size());
    }
    IncludeStackGuard G(IncludeStack, IncludeName);
    processTokens(Raw, Out, Base);
    Rec.commit();
    return End;
  }
  if (Directive == "pragma" || Directive == "error" || Directive == "line") {
    // "#pragma memlint crash" is a deliberate internal-error injection hook
    // (like clang's "#pragma clang __debug crash"): it exercises the
    // facade's last-resort containment in tests without corrupting state.
    if (Directive == "pragma" && lineHas(J) && Toks[J].Text == "memlint" &&
        lineHas(J + 1) && Toks[J + 1].Text == "crash")
      throw std::runtime_error("deliberate internal error (#pragma memlint "
                               "crash) at " +
                               Name.Loc.str());
    return End;
  }

  Diags.report(CheckId::ParseError, Name.Loc,
               "unknown preprocessing directive '#" + Directive + "'",
               Severity::Error);
  return End;
}

size_t Preprocessor::expandMacro(const std::vector<Token> &Toks, size_t I,
                                 std::vector<Token> &Out,
                                 std::set<std::string> &Active) {
  const Token &Name = Toks[I];
  assert(Macros.contains(Name.Text));
  if (Active.count(Name.Text)) {
    emit(Name, Out);
    return I + 1;
  }
  const MacroDef &M = *Macros.lookup(Name.Text);

  if (!M.FunctionLike) {
    Active.insert(Name.Text);
    expandTokenList(M.Body, Out, Active);
    Active.erase(Name.Text);
    return I + 1;
  }

  // Function-like: need '(' next, otherwise it is a plain identifier.
  size_t J = I + 1;
  if (J >= Toks.size() || !Toks[J].is(TokenKind::LParen)) {
    emit(Name, Out);
    return I + 1;
  }
  ++J; // '('
  std::vector<std::vector<Token>> Args;
  std::vector<Token> Current;
  int Depth = 1;
  while (J < Toks.size() && !Toks[J].isEof()) {
    const Token &Tok = Toks[J];
    if (Tok.is(TokenKind::LParen))
      ++Depth;
    if (Tok.is(TokenKind::RParen)) {
      --Depth;
      if (Depth == 0) {
        ++J;
        break;
      }
    }
    if (Tok.is(TokenKind::Comma) && Depth == 1) {
      Args.push_back(std::move(Current));
      Current.clear();
      ++J;
      continue;
    }
    Current.push_back(Tok);
    ++J;
  }
  if (!Current.empty() || !Args.empty() || !M.Params.empty())
    Args.push_back(std::move(Current));

  if (Args.size() != M.Params.size()) {
    Diags.report(CheckId::ParseError, Name.Loc,
                 "macro '" + Name.Text + "' expects " +
                     std::to_string(M.Params.size()) + " arguments, got " +
                     std::to_string(Args.size()),
                 Severity::Error);
    return J;
  }

  // Substitute parameters, keeping body-token locations (definition site).
  std::vector<Token> Substituted;
  for (const Token &BodyTok : M.Body) {
    if (BodyTok.is(TokenKind::Identifier)) {
      bool WasParam = false;
      for (size_t P = 0; P < M.Params.size(); ++P) {
        if (BodyTok.Text == M.Params[P]) {
          for (const Token &ArgTok : Args[P])
            Substituted.push_back(ArgTok);
          WasParam = true;
          break;
        }
      }
      if (WasParam)
        continue;
    }
    Substituted.push_back(BodyTok);
  }

  Active.insert(Name.Text);
  expandTokenList(Substituted, Out, Active);
  Active.erase(Name.Text);
  return J;
}

void Preprocessor::expandTokenList(const std::vector<Token> &Toks,
                                   std::vector<Token> &Out,
                                   std::set<std::string> &Active) {
  size_t I = 0;
  while (I < Toks.size()) {
    const Token &Tok = Toks[I];
    if (Tok.is(TokenKind::ControlComment)) {
      addControl(Tok.Loc, Tok.Text);
      ++I;
      continue;
    }
    if (Tok.is(TokenKind::Identifier) && Macros.contains(Tok.Text) &&
        !Active.count(Tok.Text)) {
      I = expandMacro(Toks, I, Out, Active);
      if (overBudget())
        return;
      continue;
    }
    if (!emit(Tok, Out))
      return;
    ++I;
  }
}
