//===--- Preprocessor.h - Preprocessor-lite for the C subset ----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small C preprocessor sufficient for the paper's corpus programs:
/// object-like and function-like #define, #undef, #include (resolved against
/// a VFS), #ifdef/#ifndef/#if <int>/#if defined(X)/#else/#endif. Tokens
/// substituted from a macro body keep the body's source locations, so
/// anomalies detected inside macro expansions are reported at the macro
/// definition — matching the paper's "erc.h:14: Arrow access from possibly
/// null pointer" message for the erc_choose macro.
///
/// Control comments (/*@-flag@*/ etc.) are pulled out of the token stream
/// into an ordered side list consumed by the checker's suppression machinery.
///
/// Front-end reuse (DESIGN.md §5c): every #include expansion — and the
/// top-level expansion of a whole source — can be memoized under the key
/// (file name, content hash, incoming macro-state fingerprint) and replayed
/// as a recorded token stream plus positioned macro/control side effects.
/// Recording poisons itself on anything that makes an expansion
/// non-replayable (diagnostics, budget truncation, include-cycle breaks,
/// unbalanced conditionals, exceptions), and replay falls back to the live
/// path whenever the current run could diverge mid-stream (token budget too
/// low for the whole entry, fault injector armed, nesting too deep, an
/// entry dependency already on the include stack). Together these keep
/// cached output byte-identical to uncached processing. Entries live either
/// in a batch-shared FrontendContext (written during the driver's warmup,
/// read lock-free after publish) or in this preprocessor's private memo.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_PP_PREPROCESSOR_H
#define MEMLINT_PP_PREPROCESSOR_H

#include "lex/Interner.h"
#include "lex/Token.h"
#include "pp/FrontendCache.h"
#include "support/Diagnostics.h"
#include "support/Limits.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/VFS.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace memlint {

/// Expands one main file into a flat token stream.
class Preprocessor {
public:
  /// \p Budget, when given, caps the number of tokens this preprocessor may
  /// produce across all process calls (containment for runaway macro
  /// expansion and oversized inputs); exhausting it truncates the stream
  /// with a single notice rather than failing.
  Preprocessor(const VFS &Files, DiagnosticEngine &Diags,
               BudgetState *Budget = nullptr)
      : Files(Files), Diags(Diags), Budget(Budget) {}

  /// Processes a file from the VFS. \returns the expanded token stream
  /// (always Eof-terminated).
  std::vector<Token> process(const std::string &MainFile);

  /// Processes an in-memory buffer under the given name. #include still
  /// resolves against the VFS.
  std::vector<Token> processSource(const std::string &Name,
                                   const std::string &Source);

  /// Control comments found during processing, in source order.
  const std::vector<ControlDirective> &controlDirectives() const {
    return Controls;
  }

  /// Predefines an object-like macro (like -D on a compiler command line).
  void predefine(const std::string &Name, const std::string &Value);

  /// Attaches a metrics registry: processSource then records "phase.lex" /
  /// "phase.pp" timings (nested include lexing is charged to phase.lex, not
  /// phase.pp), "lex.tokens" / "pp.tokens" counters, and the front-end
  /// reuse counters "pp.include_cache.{hit,miss,bytes_saved}" and
  /// "vfs.read.{hit,miss}". Null (the default) keeps the hot path free of
  /// clock reads.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

  /// Attaches the batch-shared front end (expansion memo + interner + read
  /// cache). Pre-publish (single-threaded warmup) this preprocessor records
  /// into it; post-publish it only reads, falling back to private state on
  /// miss. The context must outlive this preprocessor.
  void setFrontend(FrontendContext *C) { Ctx = C; }

  /// Attaches the token arena spellings are interned into. Must outlive
  /// this preprocessor (macro bodies and memo entries hold interned
  /// spellings). Null falls back to the process-global interner.
  void setTokenArena(TokenArena *A) { Arena = A; }

  /// Turns expansion memoization on or off (on by default). Off disables
  /// both lookup and recording; the read cache and interner still work.
  void setMemoEnabled(bool On) { MemoOn = On; }

  /// Attaches a span recorder (see support/Trace.h): preprocessing then
  /// records one "phase.pp" span per processed source and instant events
  /// for front-end memo decisions ("pp.include_cache.hit" / ".miss" /
  /// ".poison"). Null (the default) is fully inert.
  void setTraceRecorder(TraceRecorder *R) { Trace = R; }

private:
  class RecordScope;
  friend class RecordScope;

  /// A file's contents as served by the read caches (stable storage).
  struct FileRef {
    const std::string *Text = nullptr;
    std::uint64_t Hash = 0;
  };

  /// One in-progress expansion recording. Recordings nest (a recorded
  /// header that includes another header records both entries); every
  /// mutation funnel appends to all active recordings with positions
  /// relative to each one's own start.
  struct Recording {
    ExpansionEntry Entry;
    std::size_t OutStart = 0;            ///< RecOut->size() at start
    unsigned long long DiagsStart = 0;   ///< Diags.reportedCount() at start
    std::size_t CondBase = 0;            ///< Conds.size() at start
    unsigned BaseDepth = 0;              ///< processing depth of the entry
    bool Poisoned = false;
  };

  void processTokens(const std::vector<Token> &Toks, std::vector<Token> &Out,
                     unsigned Depth);
  /// Handles the directive whose '#' is at Toks[I]; returns the index of the
  /// first token after the directive line.
  size_t handleDirective(const std::vector<Token> &Toks, size_t I,
                         std::vector<Token> &Out, unsigned Depth);
  /// Expands Toks[I] (an identifier naming a macro); appends expansion to
  /// Out; returns index after the consumed tokens.
  size_t expandMacro(const std::vector<Token> &Toks, size_t I,
                     std::vector<Token> &Out, std::set<std::string> &Active);
  void expandTokenList(const std::vector<Token> &Toks, std::vector<Token> &Out,
                       std::set<std::string> &Active);

  /// Collects indices [I, end) of tokens on the same directive line.
  static size_t directiveEnd(const std::vector<Token> &Toks, size_t I);

  /// Appends \p Tok to \p Out, charging the token budget. On the first
  /// over-budget token, reports a truncation notice; afterwards drops
  /// silently. \returns false once the budget is exhausted.
  bool emit(const Token &Tok, std::vector<Token> &Out);
  /// True when the token budget is exhausted (processing should stop).
  bool overBudget() const { return Budget && Budget->tokensExhausted(); }

  //===--- front-end reuse (DESIGN.md §5c) --------------------------------===//

  /// Reads \p Name through the batch read cache, then the private one, then
  /// the VFS (counting vfs.read.{hit,miss}). \returns nullopt if the VFS
  /// has no such file. The referenced text is stable for this
  /// preprocessor's lifetime.
  std::optional<FileRef> readFile(const std::string &Name);

  /// Finds a memo entry in the shared cache, then the private memo.
  const ExpansionEntry *lookupEntry(const std::string &Name,
                                    std::uint64_t Hash, std::uint64_t Fp);
  /// True when replaying \p E at processing depth \p Base is guaranteed to
  /// run to completion exactly like the live expansion would.
  bool canReplay(const ExpansionEntry &E, unsigned Base) const;
  /// Emits \p E's tokens through emit() (same budget checkpoints as live),
  /// applying its positioned side effects through the mutation funnels.
  void replayEntry(const ExpansionEntry &E, std::vector<Token> &Out);
  void applyOp(const ReplayOp &Op);

  /// Mutation funnels: every macro-table and control-list change goes
  /// through these so (a) the table fingerprint stays incremental and
  /// (b) all active recordings capture the op at its emitted-stream
  /// position — including ops produced by replaying a nested entry.
  void defineMacro(const std::string &Name, MacroDef Def);
  void undefMacro(const std::string &Name);
  void addControl(SourceLocation Loc, const std::string &Text);
  /// Marks every active recording non-memoizable.
  void notePoison();
  /// Bookkeeping on entering a live nested include at depth \p Base:
  /// active recordings gain the dependency name, depth reach, and bytes.
  void noteLiveInclude(const std::string &Name, unsigned Base,
                       std::size_t Bytes);
  /// Same, for a nested include satisfied by replaying \p E at \p Base.
  void noteReplayedInclude(const ExpansionEntry &E, unsigned Base);

  void beginRecording(const std::string &Name, std::uint64_t Hash,
                      std::uint64_t Fp, unsigned Base, std::size_t OwnBytes);
  /// Pops the innermost recording; when \p Commit is set and the recording
  /// stayed clean (no diagnostics, budget truncation, or conditional
  /// imbalance), stores it in the shared cache (pre-publish) or the
  /// private memo.
  void finishRecording(bool Commit);

  void countMemo(bool Hit, std::size_t Bytes, const std::string &Name);

  const VFS &Files;
  DiagnosticEngine &Diags;
  BudgetState *Budget = nullptr;
  MetricsRegistry *Metrics = nullptr;
  TraceRecorder *Trace = nullptr;
  bool BudgetNoticed = false;
  MacroTable Macros;
  std::vector<ControlDirective> Controls;
  std::set<std::string> IncludeStack; ///< cycle protection
  /// Conditional-inclusion state: each entry is "currently taking this
  /// branch". Directives in skipped regions are still tracked for nesting.
  struct CondState {
    bool Taking;
    bool TakenAnyBranch;
  };
  std::vector<CondState> Conds;

  bool taking() const {
    for (const CondState &C : Conds)
      if (!C.Taking)
        return false;
    return true;
  }

  FrontendContext *Ctx = nullptr;
  TokenArena *Arena = nullptr;
  bool MemoOn = true;
  /// Per-preprocessor fallback memo and read cache for misses against the
  /// published shared context (or when no context is attached). std::map:
  /// node stability keeps FileRef/entry pointers valid across inserts.
  std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>,
           ExpansionEntry>
      PrivateMemo;
  std::map<std::string, CachedFile> PrivateReads;
  std::vector<Recording> Recordings;
  /// The output vector all active recordings index into (one processSource
  /// tree writes a single Out, threaded through every nesting level).
  std::vector<Token> *RecOut = nullptr;
  /// Wall-clock spent lexing nested includes during the current
  /// processSource, re-attributed from phase.pp to phase.lex.
  double NestedLexMs = 0;
};

} // namespace memlint

#endif // MEMLINT_PP_PREPROCESSOR_H
