//===--- Preprocessor.h - Preprocessor-lite for the C subset ----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small C preprocessor sufficient for the paper's corpus programs:
/// object-like and function-like #define, #undef, #include (resolved against
/// a VFS), #ifdef/#ifndef/#if <int>/#if defined(X)/#else/#endif. Tokens
/// substituted from a macro body keep the body's source locations, so
/// anomalies detected inside macro expansions are reported at the macro
/// definition — matching the paper's "erc.h:14: Arrow access from possibly
/// null pointer" message for the erc_choose macro.
///
/// Control comments (/*@-flag@*/ etc.) are pulled out of the token stream
/// into an ordered side list consumed by the checker's suppression machinery.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_PP_PREPROCESSOR_H
#define MEMLINT_PP_PREPROCESSOR_H

#include "lex/Token.h"
#include "support/Diagnostics.h"
#include "support/Limits.h"
#include "support/Metrics.h"
#include "support/VFS.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace memlint {

/// A control comment extracted from the stream, in source order.
struct ControlDirective {
  SourceLocation Loc;
  std::string Text; ///< e.g. "-mustfree", "=mustfree", "ignore", "end".
};

/// Expands one main file into a flat token stream.
class Preprocessor {
public:
  /// \p Budget, when given, caps the number of tokens this preprocessor may
  /// produce across all process calls (containment for runaway macro
  /// expansion and oversized inputs); exhausting it truncates the stream
  /// with a single notice rather than failing.
  Preprocessor(const VFS &Files, DiagnosticEngine &Diags,
               BudgetState *Budget = nullptr)
      : Files(Files), Diags(Diags), Budget(Budget) {}

  /// Processes a file from the VFS. \returns the expanded token stream
  /// (always Eof-terminated).
  std::vector<Token> process(const std::string &MainFile);

  /// Processes an in-memory buffer under the given name. #include still
  /// resolves against the VFS.
  std::vector<Token> processSource(const std::string &Name,
                                   const std::string &Source);

  /// Control comments found during processing, in source order.
  const std::vector<ControlDirective> &controlDirectives() const {
    return Controls;
  }

  /// Predefines an object-like macro (like -D on a compiler command line).
  void predefine(const std::string &Name, const std::string &Value);

  /// Attaches a metrics registry: processSource then records "phase.lex" /
  /// "phase.pp" timings and "lex.tokens" / "pp.tokens" counters. Null (the
  /// default) keeps the hot path free of clock reads.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

private:
  struct Macro {
    bool FunctionLike = false;
    std::vector<std::string> Params;
    std::vector<Token> Body;
  };

  void processTokens(const std::vector<Token> &Toks, std::vector<Token> &Out,
                     unsigned Depth);
  /// Handles the directive whose '#' is at Toks[I]; returns the index of the
  /// first token after the directive line.
  size_t handleDirective(const std::vector<Token> &Toks, size_t I,
                         std::vector<Token> &Out, unsigned Depth);
  /// Expands Toks[I] (an identifier naming a macro); appends expansion to
  /// Out; returns index after the consumed tokens.
  size_t expandMacro(const std::vector<Token> &Toks, size_t I,
                     std::vector<Token> &Out, std::set<std::string> &Active);
  void expandTokenList(const std::vector<Token> &Toks, std::vector<Token> &Out,
                       std::set<std::string> &Active);

  /// Collects indices [I, end) of tokens on the same directive line.
  static size_t directiveEnd(const std::vector<Token> &Toks, size_t I);

  /// Appends \p Tok to \p Out, charging the token budget. On the first
  /// over-budget token, reports a truncation notice; afterwards drops
  /// silently. \returns false once the budget is exhausted.
  bool emit(const Token &Tok, std::vector<Token> &Out);
  /// True when the token budget is exhausted (processing should stop).
  bool overBudget() const { return Budget && Budget->tokensExhausted(); }

  const VFS &Files;
  DiagnosticEngine &Diags;
  BudgetState *Budget = nullptr;
  MetricsRegistry *Metrics = nullptr;
  bool BudgetNoticed = false;
  std::map<std::string, Macro> Macros;
  std::vector<ControlDirective> Controls;
  std::set<std::string> IncludeStack; ///< cycle protection
  /// Conditional-inclusion state: each entry is "currently taking this
  /// branch". Directives in skipped regions are still tracked for nesting.
  struct CondState {
    bool Taking;
    bool TakenAnyBranch;
  };
  std::vector<CondState> Conds;

  bool taking() const {
    for (const CondState &C : Conds)
      if (!C.Taking)
        return false;
    return true;
  }
};

} // namespace memlint

#endif // MEMLINT_PP_PREPROCESSOR_H
