//===--- Sema.cpp - Annotation placement validation -------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

using namespace memlint;

const char *Sema::positionName(Position P) {
  switch (P) {
  case Position::Global: return "global variable";
  case Position::Local: return "local variable";
  case Position::Parameter: return "parameter";
  case Position::Return: return "return value";
  case Position::Field: return "structure field";
  case Position::Typedef: return "type definition";
  }
  return "declaration";
}

void Sema::checkAnnotations(const Annotations &A, QualType Ty, Position Pos,
                            const SourceLocation &Loc,
                            const std::string &Name) {
  auto report = [&](const std::string &Msg) {
    Diags.report(CheckId::AnnotationError, Loc, Msg + " (" + Name + ")");
  };

  bool IsPointerish = Ty.isPointer() || Ty.isArray() ||
                      Ty.isRecord() /* records may contain pointers */;

  if (A.Null != NullAnn::Unspecified && !Ty.isPointer() && !Ty.isNull() &&
      !Ty.isArray() && Pos != Position::Typedef)
    report("null annotation on non-pointer " + std::string(positionName(Pos)));

  if (A.Alloc != AllocAnn::Unspecified && !IsPointerish && !Ty.isNull() &&
      Pos != Position::Typedef && !Ty.isVoid())
    report("allocation annotation on non-pointer " +
           std::string(positionName(Pos)));

  switch (A.Alloc) {
  case AllocAnn::Keep:
  case AllocAnn::Temp:
    if (Pos != Position::Parameter && Pos != Position::Typedef)
      report(std::string(A.Alloc == AllocAnn::Keep ? "keep" : "temp") +
             " may only be used on function parameters");
    break;
  default:
    break;
  }

  if (A.Unique && Pos != Position::Parameter)
    report("unique may only be used on function parameters");
  if (A.Returned && Pos != Position::Parameter)
    report("returned may only be used on function parameters");
  if (A.Exposure == ExposureAnn::Observer && Pos != Position::Return &&
      Pos != Position::Parameter)
    report("observer may only be used on return values");
  if (A.Undef && Pos != Position::Global)
    report("undef may only be used on global variables");
  if ((A.TrueNull || A.FalseNull) && Pos != Position::Return)
    report("truenull/falsenull may only be used on function results");
  if (A.NewRef && Pos != Position::Return)
    report("newref may only be used on function results");
  if ((A.KillRef || A.TempRef) && Pos != Position::Parameter)
    report("killref/tempref may only be used on function parameters");
  if (A.Refs && Pos != Position::Field)
    report("refs may only be used on structure fields");

  // Category-incompatible combinations that addWord cannot see.
  if (A.Exposure == ExposureAnn::Observer && A.Alloc == AllocAnn::Only)
    report("observer storage cannot also be only");
  if (A.Alloc == AllocAnn::Shared && A.Exposure == ExposureAnn::Exposed)
    report("shared storage cannot be exposed");
}

void Sema::check(const TranslationUnit &TU) {
  for (const Decl *D : TU.decls()) {
    if (const auto *VD = dyn_cast<VarDecl>(D)) {
      checkAnnotations(VD->declAnnotations(), VD->type(), Position::Global,
                       VD->loc(), VD->name());
      continue;
    }
    if (const auto *TD = dyn_cast<TypedefDecl>(D)) {
      checkAnnotations(TD->annotations(), TD->underlying(), Position::Typedef,
                       TD->loc(), TD->name());
      continue;
    }
    if (const auto *FD = dyn_cast<FunctionDecl>(D)) {
      checkFunction(FD);
      continue;
    }
    if (const auto *RD = dyn_cast<RecordDecl>(D)) {
      for (const FieldDecl *F : RD->fields())
        checkAnnotations(F->declAnnotations(), F->type(), Position::Field,
                         F->loc(), F->name());
      continue;
    }
  }
}

void Sema::checkFunction(const FunctionDecl *FD) {
  // Return annotations.
  Annotations Ret = FD->returnAnnotations();
  // truenull/falsenull require a single pointer parameter to test.
  if ((Ret.TrueNull || Ret.FalseNull)) {
    bool HasPointerParam = false;
    for (const ParmVarDecl *P : FD->params())
      if (P->type().isPointer())
        HasPointerParam = true;
    if (!HasPointerParam)
      Diags.report(CheckId::AnnotationError, FD->loc(),
                   "truenull/falsenull function '" + FD->name() +
                       "' has no pointer parameter to test");
  }
  checkAnnotations(Ret, FD->returnType(), Position::Return, FD->loc(),
                   FD->name() + " result");

  for (const ParmVarDecl *P : FD->params())
    checkAnnotations(P->declAnnotations(), P->type(), Position::Parameter,
                     P->loc(), P->name().empty() ? "<unnamed>" : P->name());

  if (FD->body())
    checkStmt(FD->body());
}

void Sema::checkStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      checkStmt(Sub);
    return;
  case Stmt::StmtKind::Decl:
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls())
      checkAnnotations(VD->declAnnotations(), VD->type(), Position::Local,
                       VD->loc(), VD->name());
    return;
  case Stmt::StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    checkStmt(IS->thenStmt());
    checkStmt(IS->elseStmt());
    return;
  }
  case Stmt::StmtKind::While:
    checkStmt(cast<WhileStmt>(S)->body());
    return;
  case Stmt::StmtKind::Do:
    checkStmt(cast<DoStmt>(S)->body());
    return;
  case Stmt::StmtKind::For: {
    const auto *FS = cast<ForStmt>(S);
    checkStmt(FS->init());
    checkStmt(FS->body());
    return;
  }
  case Stmt::StmtKind::Switch:
    for (const SwitchStmt::CaseSection &Section :
         cast<SwitchStmt>(S)->sections())
      for (const Stmt *Sub : Section.Body)
        checkStmt(Sub);
    return;
  default:
    return;
  }
}
