//===--- Sema.h - Annotation placement validation ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-parse semantic validation of annotations. The paper: "More than one
/// annotation may be used with a given declaration, although certain
/// combinations of annotations are incompatible and will produce static
/// errors", and Appendix B restricts several annotations to specific
/// declaration positions (keep/temp/unique/returned: parameters only;
/// observer: return values only; undef: globals).
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SEMA_SEMA_H
#define MEMLINT_SEMA_SEMA_H

#include "ast/AST.h"
#include "support/Diagnostics.h"

namespace memlint {

/// Validates annotation placement and combinations over a parsed TU.
class Sema {
public:
  Sema(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Runs all validations. Diagnostics go to the engine; the AST is not
  /// modified.
  void check(const TranslationUnit &TU);

private:
  enum class Position { Global, Local, Parameter, Return, Field, Typedef };
  static const char *positionName(Position P);

  void checkAnnotations(const Annotations &A, QualType Ty, Position Pos,
                        const SourceLocation &Loc, const std::string &Name);
  void checkFunction(const FunctionDecl *FD);
  void checkStmt(const Stmt *S);

  DiagnosticEngine &Diags;
};

} // namespace memlint

#endif // MEMLINT_SEMA_SEMA_H
