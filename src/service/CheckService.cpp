//===--- CheckService.cpp - Long-lived check service ----------------------===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//

#include "service/CheckService.h"

#include "driver/BatchDriver.h"
#include "support/Journal.h"
#include "support/Json.h"

#include <set>

using namespace memlint;

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

static const char *requestOpName(ServiceRequestKind Kind) {
  switch (Kind) {
  case ServiceRequestKind::Check:
    return "check";
  case ServiceRequestKind::Invalidate:
    return "invalidate";
  case ServiceRequestKind::Stats:
    return "stats";
  case ServiceRequestKind::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

std::string memlint::serviceRequestLine(const ServiceRequest &Request) {
  std::string Out =
      "{\"op\":" + jsonString(requestOpName(Request.Kind));
  if (!Request.File.empty())
    Out += ",\"file\":" + jsonString(Request.File);
  return Out + "}";
}

bool memlint::parseServiceRequestLine(const std::string &Line,
                                      ServiceRequest &Out) {
  ServiceRequest R;
  bool SawOp = false;
  JsonLineParser P(Line);
  bool Parsed = P.parseObject(
      [&](const std::string &Key, const JsonLineParser::Value &V) {
        if (Key == "op") {
          SawOp = true;
          if (V.Str == "check")
            R.Kind = ServiceRequestKind::Check;
          else if (V.Str == "invalidate")
            R.Kind = ServiceRequestKind::Invalidate;
          else if (V.Str == "stats")
            R.Kind = ServiceRequestKind::Stats;
          else if (V.Str == "shutdown")
            R.Kind = ServiceRequestKind::Shutdown;
          else
            SawOp = false;
        } else if (Key == "file") {
          R.File = V.Str;
        }
      });
  if (!Parsed || !SawOp)
    return false;
  Out = std::move(R);
  return true;
}

std::string memlint::serviceReplyLine(const ServiceReply &Reply) {
  return "{\"status\":" + jsonString(Reply.Status) +
         ",\"cache_hit\":" + (Reply.CacheHit ? std::string("1") : "0") +
         ",\"anomalies\":" + std::to_string(Reply.Anomalies) +
         ",\"suppressed\":" + std::to_string(Reply.Suppressed) +
         ",\"diags\":" + jsonString(Reply.Diagnostics) +
         ",\"note\":" + jsonString(Reply.Note) + "}";
}

bool memlint::parseServiceReplyLine(const std::string &Line,
                                    ServiceReply &Out) {
  ServiceReply R;
  bool SawStatus = false;
  JsonLineParser P(Line);
  bool Parsed = P.parseObject(
      [&](const std::string &Key, const JsonLineParser::Value &V) {
        if (Key == "status") {
          R.Status = V.Str;
          SawStatus = !V.Str.empty();
        } else if (Key == "cache_hit") {
          R.CacheHit = V.Num == 1;
        } else if (Key == "anomalies") {
          R.Anomalies = static_cast<unsigned>(V.Num);
        } else if (Key == "suppressed") {
          R.Suppressed = static_cast<unsigned>(V.Num);
        } else if (Key == "diags") {
          R.Diagnostics = V.Str;
        } else if (Key == "note") {
          R.Note = V.Str;
        }
      });
  if (!Parsed || !SawStatus)
    return false;
  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

CheckService::CheckService(ServiceOptions Options)
    : Opts(std::move(Options)),
      Cache(checkOptionsFingerprint(Opts.Check), Opts.CacheMaxEntries) {
  if (!Opts.FileSource)
    Opts.FileSource = [](const std::string &Name) {
      return readFileText(Name);
    };
  if (!Opts.CachePath.empty())
    CacheClean = Cache.attachFile(Opts.CachePath);
  StartMs = monotonicNowMs();
  Worker = std::thread([this] {
    const bool Observing = Opts.CollectMetrics || Opts.CollectTrace;
    for (;;) {
      Pending P;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained
        P = std::move(Queue.front());
        Queue.pop_front();
      }
      // Processing happens outside the lock: a slow cold check must not
      // block submit() (and with it the socket accept loop) — intake stays
      // responsive and the queue can actually fill up to its shedding
      // bound while a check is in flight.
      const double DequeuedMs = Observing ? monotonicNowMs() : 0;
      ServiceReply Reply = process(P.Request);
      if (Observing) {
        // The request lifecycle, split where the ISSUE's evaluation needs
        // it: time spent waiting in the queue vs. time spent checking.
        const double DoneMs = monotonicNowMs();
        const char *Op = requestOpName(P.Request.Kind);
        std::lock_guard<std::mutex> Lock(Mu);
        if (Opts.CollectMetrics) {
          Folded.Histograms["hist.service.queue_wait"].record(DequeuedMs -
                                                              P.EnqueuedMs);
          if (P.Request.Kind == ServiceRequestKind::Check)
            Folded.Histograms["hist.service.check"].record(DoneMs -
                                                           DequeuedMs);
        }
        if (Opts.CollectTrace) {
          TraceEvent Wait;
          Wait.Ph = 'X';
          Wait.Cat = "service";
          Wait.Name = "service.queue_wait";
          Wait.TsMs = P.EnqueuedMs;
          Wait.DurMs = DequeuedMs - P.EnqueuedMs;
          Wait.Args.emplace_back("op", Op);
          Recorder.record(std::move(Wait));
          TraceEvent Span;
          Span.Ph = 'X';
          Span.Cat = "service";
          Span.Name = "service.request";
          Span.TsMs = DequeuedMs;
          Span.DurMs = DoneMs - DequeuedMs;
          Span.Args.emplace_back("op", Op);
          if (!P.Request.File.empty())
            Span.Args.emplace_back("file", P.Request.File);
          Span.Args.emplace_back("status", Reply.Status);
          if (P.Request.Kind == ServiceRequestKind::Check)
            Span.Args.emplace_back("source", Reply.CacheHit ? "warm" : "cold");
          Recorder.record(std::move(Span));
        }
      }
      if (P.Done)
        P.Done(Reply);
    }
  });
}

bool CheckService::submit(ServiceRequest Request,
                          std::function<void(const ServiceReply &)> Done) {
  ServiceReply Shed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    const size_t Limit = std::max<size_t>(1, Opts.QueueLimit);
    if (Stopping) {
      ++ShedRequests;
      Shed.Status = "stopping";
      Shed.Note = "service is draining; request not accepted";
    } else if (Queue.size() >= Limit) {
      ++ShedRequests;
      Shed.Status = "overloaded";
      Shed.Note = "request shed: queue holds " + std::to_string(Limit) +
                  " pending requests; retry later";
    } else {
      Pending P;
      P.EnqueuedMs = Opts.CollectMetrics || Opts.CollectTrace
                         ? monotonicNowMs()
                         : 0;
      P.Request = std::move(Request);
      P.Done = std::move(Done);
      if (Opts.CollectTrace)
        Recorder.instant("service", "service.enqueue",
                         {{"op", requestOpName(P.Request.Kind)}});
      Queue.push_back(std::move(P));
      Cv.notify_one();
      return true;
    }
    if (Opts.CollectTrace)
      Recorder.instant("service", "service.shed",
                       {{"op", requestOpName(Request.Kind)},
                        {"status", Shed.Status}});
  }
  // Deterministic load shedding: the reply is immediate and explicit, in
  // the caller's thread — an overloaded service never silently queues
  // without bound and never hangs the client.
  if (Done)
    Done(Shed);
  return false;
}

ServiceReply CheckService::handle(const ServiceRequest &Request) {
  // Direct calls bypass the queue, so there is no queue-wait to observe;
  // check time still feeds the distribution.
  const bool Observe =
      Opts.CollectMetrics && Request.Kind == ServiceRequestKind::Check;
  const double T0 = Observe ? monotonicNowMs() : 0;
  ServiceReply R = process(Request);
  if (Observe) {
    const double Ms = monotonicNowMs() - T0;
    std::lock_guard<std::mutex> Lock(Mu);
    Folded.Histograms["hist.service.check"].record(Ms);
  }
  return R;
}

ServiceReply CheckService::process(const ServiceRequest &Request) {
  ServiceReply R;
  switch (Request.Kind) {
  case ServiceRequestKind::Check:
    if (Request.File.empty()) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Requests;
      R.Status = "error";
      R.Note = "check request names no file";
      return R;
    }
    return checkFile(Request.File);
  case ServiceRequestKind::Invalidate: {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
    if (Request.File.empty()) {
      R.Status = "error";
      R.Note = "invalidate request names no file";
      return R;
    }
    R.Status = Cache.invalidate(Request.File) ? "invalidated" : "absent";
    R.Note = Request.File;
    return R;
  }
  case ServiceRequestKind::Stats: {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
    return statsReplyLocked();
  }
  case ServiceRequestKind::Shutdown: {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
    Stopping = true;
    Cv.notify_all();
    R.Status = "stopping";
    return R;
  }
  }
  R.Status = "error";
  R.Note = "unknown request";
  return R;
}

ServiceReply CheckService::checkFile(const std::string &File) {
  ServiceReply R;
  auto HashOf =
      [this](const std::string &Name) -> std::optional<std::string> {
    std::optional<std::string> Text = Opts.FileSource(Name);
    if (!Text)
      return std::nullopt;
    return fnv1aHex({*Text});
  };

  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
    if (const CacheEntry *E = Cache.lookup(File, HashOf)) {
      R.Status = E->Status;
      R.CacheHit = true;
      R.Anomalies = E->Anomalies;
      R.Suppressed = E->Suppressed;
      R.Diagnostics = E->Diagnostics;
      if (Opts.CollectMetrics)
        // The hit replays the producing run's metrics, so aggregate
        // check.* counters match a cold run of the same sequence
        // (cache.*/service.* counters are where warm and cold
        // legitimately differ).
        Folded.merge(E->Metrics);
      return R;
    }
  }

  // From here on the lock is dropped: the cold check below can take
  // seconds, and intake must stay responsive while it runs.
  std::optional<std::string> Main = Opts.FileSource(File);
  if (!Main) {
    R.Status = "error";
    R.Note = "cannot read '" + File + "'";
    return R;
  }

  // Cold path: a one-file batch, so the per-request deadline, watchdog,
  // cancellation, and retry-with-halved-limits ladder are the batch
  // driver's own, not a reimplementation.
  VFS Files;
  Files.add(File, *Main);
  Files.setLoader(Opts.FileSource);
  std::set<std::string> ReadNames;
  Files.setReadObserver(
      [&ReadNames](const std::string &Name) { ReadNames.insert(Name); });

  BatchOptions Batch;
  Batch.Check = Opts.Check;
  Batch.Jobs = 1;
  Batch.FileDeadlineMs = Opts.RequestDeadlineMs;
  Batch.MaxAttempts = Opts.MaxAttempts;
  Batch.CollectMetrics = Opts.CollectMetrics;
  BatchResult Result = BatchDriver(Batch).run(Files, {File});
  if (Result.Outcomes.size() != 1) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++ColdChecks;
    R.Status = "error";
    R.Note = "internal: batch produced " +
             std::to_string(Result.Outcomes.size()) + " outcomes for 1 file";
    return R;
  }
  const FileOutcome &O = Result.Outcomes[0];
  R.Status = fileOutcomeName(O.Kind);
  R.Anomalies = O.Anomalies;
  R.Suppressed = O.Suppressed;
  R.Diagnostics = O.Diagnostics;

  std::lock_guard<std::mutex> Lock(Mu);
  ++ColdChecks;
  if (Opts.CollectMetrics)
    Folded.merge(O.Metrics);

  // Cache only settled outcomes. Timeouts and crashes are wall-clock- and
  // environment-dependent; replaying them would freeze a transient failure
  // into a permanent answer.
  if (O.Kind == FileOutcomeKind::Ok || O.Kind == FileOutcomeKind::Degraded) {
    CacheEntry E;
    E.File = File;
    E.ContentHash = fnv1aHex({*Main});
    ReadNames.insert(File);
    for (const std::string &Name : ReadNames)
      if (std::optional<std::string> Text = Files.read(Name))
        E.Deps[Name] = fnv1aHex({*Text});
    E.Status = R.Status;
    E.Reasons = O.Reasons;
    E.Anomalies = O.Anomalies;
    E.Suppressed = O.Suppressed;
    E.Diagnostics = O.Diagnostics;
    E.Classes = O.Classes;
    E.Metrics = O.Metrics;
    Cache.store(std::move(E), Opts.Faults);
  }
  return R;
}

namespace {

/// The stats exposition: one line, compact counters (same rendering as
/// metricsJsonCompact so existing consumers keep matching), histograms in
/// full (exact buckets + derived quantiles), then timers.
std::string statsJson(const MetricsSnapshot &Snap) {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Snap.Counters) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" +
           std::to_string(Value);
    First = false;
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, Hist] : Snap.Histograms) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" +
           histogramStatsJson(Hist);
    First = false;
  }
  Out += "},\"timers_ms\":{";
  First = true;
  for (const auto &[Name, Ms] : Snap.TimersMs) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" + jsonMs(Ms);
    First = false;
  }
  return Out + "}}";
}

} // namespace

ServiceReply CheckService::statsReplyLocked() {
  MetricsSnapshot Snap = Folded;
  Cache.foldStats(Snap);
  auto &C = Snap.Counters;
  C["service.requests"] += Requests;
  C["service.cold_checks"] += ColdChecks;
  C["service.shed_requests"] += ShedRequests;
  // Point-in-time gauges, folded in as counters so the exposition stays
  // one flat, sorted section. These are deliberately stats-only: the
  // metrics() fold stays deterministic for a given request sequence.
  C["service.queue_depth"] += Queue.size();
  C["service.uptime_ms"] +=
      static_cast<unsigned long long>(monotonicNowMs() - StartMs);
  C["mem.peak_rss_kb"] += peakRssKb();
  ServiceReply R;
  R.Status = "stats";
  R.Note = statsJson(Snap);
  return R;
}

void CheckService::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  if (Worker.joinable())
    Worker.join();
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Flushed) {
    // The graceful-shutdown flush: a compacted snapshot, so the next
    // start loads without replaying appends or trailing damage.
    Cache.flush();
    Flushed = true;
  }
}

bool CheckService::stopping() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stopping;
}

MetricsSnapshot CheckService::metrics() const {
  std::lock_guard<std::mutex> Lock(Mu);
  MetricsSnapshot Snap = Folded;
  Cache.foldStats(Snap);
  auto &C = Snap.Counters;
  C["service.requests"] += Requests;
  C["service.cold_checks"] += ColdChecks;
  C["service.shed_requests"] += ShedRequests;
  return Snap;
}

std::vector<TraceEvent> CheckService::trace() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Recorder.events();
}
