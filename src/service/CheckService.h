//===--- CheckService.h - Long-lived check service --------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent check service: a long-lived front end that answers
/// check/invalidate/stats/shutdown requests, backed by the content-hash
/// result cache (service/ResultCache.h). The contract, in order:
///
/// * Warm answers are byte-identical to cold answers. A cache hit replays
///   the rendered diagnostics the producing cold run would have printed;
///   every doubt about an entry (CRC, staleness, policy) falls back to a
///   cold re-check. The differential fuzz harness enforces this gate.
/// * Cold checks reuse the batch driver's resilience machinery verbatim —
///   per-request deadline via the watchdog/CancelToken, retry ladder with
///   halved limits — by running each miss as a one-file batch.
/// * Bounded intake. Requests queue up to a fixed limit; beyond it the
///   service sheds deterministically with an "overloaded" reply, never a
///   hang or an unbounded queue.
/// * Graceful drain. stop() (wired to SIGTERM by the CLI) finishes queued
///   requests, flushes the cache compacted to disk, and joins the worker.
///   A kill -9 instead loses at most the in-flight append; the next start
///   truncates the torn tail and re-checks cold.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SERVICE_CHECKSERVICE_H
#define MEMLINT_SERVICE_CHECKSERVICE_H

#include "checker/Checker.h"
#include "service/ResultCache.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace memlint {

/// Configuration for a service instance.
struct ServiceOptions {
  /// Base options for every cold check (the cache policy key is derived
  /// from these via checkOptionsFingerprint).
  CheckOptions Check;
  /// Per-request wall-clock deadline in milliseconds (0 = none); enforced
  /// by the batch driver's watchdog on the cold path.
  unsigned RequestDeadlineMs = 0;
  /// Retry attempts per cold check (the batch driver's ladder).
  unsigned MaxAttempts = 2;
  /// Pending-request limit; submissions beyond it are shed. Values < 1
  /// are treated as 1.
  size_t QueueLimit = 64;
  /// Result-cache entry bound (0 = unbounded), LRU-evicted.
  size_t CacheMaxEntries = 0;
  /// Cache persistence path; empty keeps the cache in memory only.
  std::string CachePath;
  /// Collect per-check metrics and fold them (plus service.*/cache.*
  /// counters) into metrics(). Also records the service latency
  /// distributions ("hist.service.queue_wait" enqueue->dequeue,
  /// "hist.service.check" per check request) exposed by stats replies.
  bool CollectMetrics = false;
  /// Record the request lifecycle (enqueue instant, queue-wait span,
  /// request span with warm/cold + status args) into trace(). Off by
  /// default; same near-zero disabled cost as CollectMetrics.
  bool CollectTrace = false;
  /// Cache-write fault injection (fuzz harness); must outlive the service.
  FaultInjector *Faults = nullptr;
  /// Resolves a file name to its contents. Requests and their #includes
  /// are read through this on every check, so edits between requests are
  /// always observed. Defaults to reading the real file system.
  std::function<std::optional<std::string>(const std::string &)> FileSource;
};

/// What a client asked for.
enum class ServiceRequestKind { Check, Invalidate, Stats, Shutdown };

struct ServiceRequest {
  ServiceRequestKind Kind = ServiceRequestKind::Check;
  std::string File; ///< Check/Invalidate target
};

/// What the service answers. Status vocabulary: the batch outcome names
/// ("ok", "degraded", "timeout", "crash") for checks, plus "overloaded"
/// (shed), "invalidated"/"absent" (invalidate), "stats", "stopping", and
/// "error" (malformed request).
struct ServiceReply {
  std::string Status;
  bool CacheHit = false;
  unsigned Anomalies = 0;
  unsigned Suppressed = 0;
  /// Rendered diagnostics, byte-identical whether served warm or cold.
  std::string Diagnostics;
  /// Human/machine-readable extra: the precise shed or error message, or
  /// the stats JSON.
  std::string Note;
};

/// The request/reply wire codec (one JSON object per line), shared by the
/// socket server and the CLI client so both ends always agree.
std::string serviceRequestLine(const ServiceRequest &Request);
bool parseServiceRequestLine(const std::string &Line, ServiceRequest &Out);
std::string serviceReplyLine(const ServiceReply &Reply);
bool parseServiceReplyLine(const std::string &Line, ServiceReply &Out);

/// A running check service: one worker thread draining a bounded queue.
/// handle() is also callable directly (synchronously) for tests and
/// single-shot embedding; direct calls bypass the queue and therefore the
/// shedding policy, but share the cache and counters.
class CheckService {
public:
  explicit CheckService(ServiceOptions Options);
  ~CheckService() { stop(); }

  CheckService(const CheckService &) = delete;
  CheckService &operator=(const CheckService &) = delete;

  /// Enqueues \p Request; \p Done receives the reply from the worker
  /// thread. When the queue is full (or the service is stopping) the
  /// request is shed: Done is called immediately, in the caller's thread,
  /// with an "overloaded" ("stopping") reply. \returns false iff shed.
  bool submit(ServiceRequest Request,
              std::function<void(const ServiceReply &)> Done);

  /// Synchronous request processing. Thread-safe: cache and counter access
  /// is internally locked; the cold check itself runs unlocked so a slow
  /// file never blocks submit() or the accept loop.
  ServiceReply handle(const ServiceRequest &Request);

  /// Graceful drain: completes queued requests, flushes the cache to its
  /// backing file (compacted), joins the worker. Idempotent.
  void stop();

  /// True once Shutdown was requested (or stop() called): the socket
  /// accept loop uses this to exit.
  bool stopping() const;

  /// Aggregate metrics: per-check metrics folded in completion order plus
  /// service.* and cache.* counters. Counters are deterministic for a
  /// given request sequence.
  MetricsSnapshot metrics() const;

  /// The request-lifecycle trace recorded so far (ServiceOptions::
  /// CollectTrace); events are in completion order. Render with
  /// renderChromeTrace.
  std::vector<TraceEvent> trace() const;

  /// True when the persisted cache attached cleanly (always true without
  /// a CachePath). A false value means the service started cold.
  bool cacheLoadedClean() const { return CacheClean; }

private:
  ServiceReply process(const ServiceRequest &Request);
  ServiceReply checkFile(const std::string &File);
  ServiceReply statsReplyLocked(); ///< call with Mu held

  ServiceOptions Opts;
  ResultCache Cache;
  bool CacheClean = true;

  mutable std::mutex Mu; ///< guards everything below + Cache
  std::condition_variable Cv;
  struct Pending {
    ServiceRequest Request;
    std::function<void(const ServiceReply &)> Done;
    double EnqueuedMs = 0; ///< stamped by submit() when observability is on
  };
  std::deque<Pending> Queue;
  bool Stopping = false;
  bool Flushed = false;
  MetricsSnapshot Folded; ///< per-check metrics, folded in completion order
  TraceRecorder Recorder; ///< request-lifecycle events (CollectTrace)
  unsigned long long Requests = 0;
  unsigned long long ColdChecks = 0;
  unsigned long long ShedRequests = 0;
  double StartMs = 0; ///< construction time, for the uptime gauge
  std::thread Worker;
};

} // namespace memlint

#endif // MEMLINT_SERVICE_CHECKSERVICE_H
