//===--- ResultCache.cpp - Persistent per-file result cache ---------------===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "support/Journal.h"
#include "support/Json.h"

using namespace memlint;

/// Bumped whenever the entry byte format changes; a persisted cache with a
/// different stamp is discarded wholesale (cold start beats misparsing).
static constexpr int CacheFormatVersion = 1;

//===----------------------------------------------------------------------===//
// Line format
//===----------------------------------------------------------------------===//

std::string ResultCache::headerLine(const std::string &PolicyKey) {
  return "{\"memlint_cache\":1,\"format\":" +
         std::to_string(CacheFormatVersion) +
         ",\"policy\":" + jsonString(PolicyKey) + "}";
}

namespace {

/// The entry's payload object — everything except the CRC stamp.
std::string entryPayload(const CacheEntry &E) {
  std::string Out = "{\"file\":" + jsonString(E.File) +
                    ",\"content\":" + jsonString(E.ContentHash) + ",\"deps\":{";
  bool First = true;
  for (const auto &[Name, Hash] : E.Deps) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" + jsonString(Hash);
    First = false;
  }
  Out += "},\"status\":" + jsonString(E.Status) + ",\"reasons\":[";
  First = true;
  for (const std::string &R : E.Reasons) {
    Out += (First ? "" : ",") + jsonString(R);
    First = false;
  }
  Out += "],\"anomalies\":" + std::to_string(E.Anomalies) +
         ",\"suppressed\":" + std::to_string(E.Suppressed) +
         ",\"diags\":" + jsonString(E.Diagnostics);
  if (!E.Classes.empty()) {
    Out += ",\"classes\":{";
    First = true;
    for (const auto &[Name, N] : E.Classes) {
      Out += (First ? "" : ",") + jsonString(Name) + ":" + std::to_string(N);
      First = false;
    }
    Out += "}";
  }
  if (!E.Metrics.empty())
    Out += ",\"metrics\":" + metricsJsonCompact(E.Metrics);
  return Out + "}";
}

/// Stamps \p Payload's CRC into the persisted line form. The CRC covers
/// the complete payload object, so any byte flip inside it — including in
/// escaped diagnostics text — is caught on load.
std::string stampCrc(const std::string &Payload) {
  std::string Line = Payload;
  Line.pop_back(); // reopen the object for the crc field
  return Line + ",\"crc\":\"" + crc32Hex(Payload) + "\"}";
}

} // namespace

std::string ResultCache::entryLine(const CacheEntry &Entry) {
  return stampCrc(entryPayload(Entry));
}

std::string ResultCache::entryLineFaulted(const CacheEntry &Entry,
                                          FaultInjector *Faults) {
  std::string Payload = entryPayload(Entry);
  if (Faults)
    Faults->onCachePayload(Payload);
  std::string Line = stampCrc(Payload);
  if (Faults)
    Faults->onCacheLine(Line);
  return Line;
}

bool ResultCache::parseEntryLine(const std::string &Line, CacheEntry &Out) {
  // Split off the trailing CRC stamp and verify it against the
  // reconstructed payload before any JSON parsing: a line whose checksum
  // disagrees is untrusted bytes, full stop.
  static const std::string Marker = ",\"crc\":\"";
  const size_t At = Line.rfind(Marker);
  if (At == std::string::npos)
    return false;
  const std::string Stamp = Line.substr(At + Marker.size());
  if (Stamp.size() != 10 || Stamp.substr(8) != "\"}")
    return false;
  const std::string Payload = Line.substr(0, At) + "}";
  if (crc32Hex(Payload) != Stamp.substr(0, 8))
    return false;

  CacheEntry E;
  bool SawFile = false, SawContent = false, SawStatus = false;
  JsonLineParser P(Payload);
  bool Parsed = P.parseObject(
      [&](const std::string &Key, const JsonLineParser::Value &V) {
        if (Key == "file") {
          E.File = V.Str;
          SawFile = !V.Str.empty();
        } else if (Key == "content") {
          E.ContentHash = V.Str;
          SawContent = !V.Str.empty();
        } else if (Key == "deps") {
          if (V.K == JsonLineParser::Value::Object)
            for (const auto &[Name, Sub] : V.Fields)
              if (Sub.K == JsonLineParser::Value::String)
                E.Deps[Name] = Sub.Str;
        } else if (Key == "status") {
          E.Status = V.Str;
          SawStatus = V.Str == "ok" || V.Str == "degraded";
        } else if (Key == "reasons") {
          E.Reasons = V.Array;
        } else if (Key == "anomalies") {
          E.Anomalies = static_cast<unsigned>(V.Num);
        } else if (Key == "suppressed") {
          E.Suppressed = static_cast<unsigned>(V.Num);
        } else if (Key == "diags") {
          E.Diagnostics = V.Str;
        } else if (Key == "classes") {
          if (V.K == JsonLineParser::Value::Object)
            for (const auto &[Name, Sub] : V.Fields)
              if (Sub.K == JsonLineParser::Value::Number && Sub.Num >= 0)
                E.Classes[Name] = static_cast<unsigned>(Sub.Num);
        } else if (Key == "metrics") {
          metricsFromJsonValue(V, E.Metrics);
        }
      });
  if (!Parsed || !SawFile || !SawContent || !SawStatus)
    return false;
  Out = std::move(E);
  return true;
}

//===----------------------------------------------------------------------===//
// In-memory LRU
//===----------------------------------------------------------------------===//

void ResultCache::touch(const std::string &File) {
  auto It = Entries.find(File);
  if (It != Entries.end())
    Lru.splice(Lru.end(), Lru, It->second); // move to MRU tail
}

void ResultCache::evictIfNeeded() {
  while (MaxEntries != 0 && Entries.size() > MaxEntries && !Lru.empty()) {
    Entries.erase(Lru.front().File);
    Lru.pop_front();
    ++Stats.Evictions;
  }
}

const CacheEntry *ResultCache::lookup(
    const std::string &File,
    const std::function<std::optional<std::string>(const std::string &)>
        &HashOf) {
  auto It = Entries.find(File);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  // Re-verify the recorded main-file hash and then the whole dependency
  // closure. One changed or unreadable file anywhere in it makes the
  // recorded diagnostics unreproducible, so the entry is dropped, not
  // served. The explicit ContentHash check is not redundant with Deps: a
  // stale or tampered entry can carry a self-consistent Deps map while
  // its recorded main-file identity no longer matches reality.
  auto Drop = [&] {
    Lru.erase(It->second);
    Entries.erase(It);
    ++Stats.StaleDropped;
    ++Stats.Misses;
  };
  std::optional<std::string> MainNow = HashOf(File);
  if (!MainNow || *MainNow != It->second->ContentHash) {
    Drop();
    return nullptr;
  }
  for (const auto &[Name, Hash] : It->second->Deps) {
    std::optional<std::string> Now = HashOf(Name);
    if (!Now || *Now != Hash) {
      Drop();
      return nullptr;
    }
  }
  touch(File);
  ++Stats.Hits;
  return &*It->second;
}

void ResultCache::store(CacheEntry Entry, FaultInjector *Faults) {
  std::string Persisted;
  if (!BackingPath.empty())
    // Build the line before the in-memory insert so an injected fault
    // mutates only the persisted bytes — the in-memory entry (and the
    // reply built from it) stays truthful, mirroring real corruption
    // which happens to the disk, not the process.
    Persisted = entryLineFaulted(Entry, Faults);
  auto It = Entries.find(Entry.File);
  if (It != Entries.end()) {
    Lru.erase(It->second);
    Entries.erase(It);
  }
  Lru.push_back(std::move(Entry));
  Entries[Lru.back().File] = std::prev(Lru.end());
  evictIfNeeded();
  if (!Persisted.empty())
    appendJournalLine(BackingPath, Persisted);
}

bool ResultCache::invalidate(const std::string &File) {
  auto It = Entries.find(File);
  if (It == Entries.end())
    return false;
  Lru.erase(It->second);
  Entries.erase(It);
  ++Stats.Invalidations;
  return true;
}

void ResultCache::foldStats(MetricsSnapshot &Out) const {
  auto &C = Out.Counters;
  C["cache.hits"] += Stats.Hits;
  C["cache.misses"] += Stats.Misses;
  C["cache.evictions"] += Stats.Evictions;
  C["cache.corrupt_recovered"] += Stats.CorruptRecovered;
  C["cache.stale_dropped"] += Stats.StaleDropped;
  C["cache.invalidations"] += Stats.Invalidations;
  C["cache.entries"] += Entries.size();
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

std::string ResultCache::serialize() const {
  std::string Out = headerLine(PolicyKey) + "\n";
  for (const CacheEntry &E : Lru)
    Out += entryLine(E) + "\n";
  return Out;
}

bool ResultCache::loadFromText(const std::string &Text) {
  size_t LineStart = 0;
  bool SawHeader = false;
  while (LineStart <= Text.size()) {
    size_t LineEnd = Text.find('\n', LineStart);
    std::string Line = Text.substr(LineStart, LineEnd == std::string::npos
                                                  ? std::string::npos
                                                  : LineEnd - LineStart);
    LineStart = LineEnd == std::string::npos ? Text.size() + 1 : LineEnd + 1;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;

    if (!SawHeader) {
      // The header is all-or-nothing: a cache written by a different
      // format version or under a different checking policy holds entries
      // this invocation must never serve, so the whole file is discarded.
      bool Magic = false;
      double Format = 0;
      std::string Policy;
      JsonLineParser P(Line);
      bool Parsed = P.parseObject(
          [&](const std::string &Key, const JsonLineParser::Value &V) {
            if (Key == "memlint_cache")
              Magic = V.Num == 1;
            else if (Key == "format")
              Format = V.Num;
            else if (Key == "policy")
              Policy = V.Str;
          });
      if (!Parsed || !Magic || Format != CacheFormatVersion ||
          Policy != PolicyKey)
        return false;
      SawHeader = true;
      continue;
    }

    CacheEntry E;
    if (parseEntryLine(Line, E)) {
      // Later entries win, as with journal replay.
      auto It = Entries.find(E.File);
      if (It != Entries.end()) {
        Lru.erase(It->second);
        Entries.erase(It);
      }
      Lru.push_back(std::move(E));
      Entries[Lru.back().File] = std::prev(Lru.end());
      evictIfNeeded();
    } else {
      ++Stats.CorruptRecovered;
    }
  }
  return SawHeader;
}

bool ResultCache::attachFile(const std::string &Path) {
  BackingPath = Path;
  bool LoadedClean = true;
  if (std::optional<std::string> Text = readFileText(Path))
    LoadedClean = loadFromText(*Text);
  // Compact immediately: this truncates any torn tail and drops corrupt
  // or foreign-policy bytes, so every later append lands after a clean,
  // current-format prefix.
  flush();
  return LoadedClean;
}

bool ResultCache::flush() const {
  if (BackingPath.empty())
    return true;
  return writeFileText(BackingPath, serialize());
}
