//===--- ResultCache.h - Persistent per-file result cache -------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check service's content-addressed result cache. One entry records
/// the complete, replayable outcome of checking one main file: its rendered
/// diagnostics (byte-identical to what a cold run prints), finding counts,
/// per-class totals, optional metrics, and — the key part — the content
/// hash of every file the check actually read (the main file plus its
/// #include closure). A lookup re-hashes those dependencies; the entry is
/// served only when every hash still matches, so editing any file in the
/// closure invalidates exactly the entries that consumed it.
///
/// An entry is valid only under the checking policy it was produced by:
/// the cache carries a policy key (checkOptionsFingerprint — FlagSet,
/// prelude inclusion, LibrarySpec version) and a persisted cache whose key
/// differs is discarded wholesale on load.
///
/// Persistence reuses the journal's JSONL discipline (support/Journal.h):
/// a header line with a format-version stamp, then one self-contained
/// entry per line, appended with a flush as results are produced. On top
/// of the journal's per-line salvage, every entry line carries a CRC-32 of
/// its payload, stamped at write time and verified on load, so silent bit
/// rot — not just torn tails — degrades to a cold re-check instead of
/// replaying damaged diagnostics. The failure direction is fixed: any
/// doubt about an entry drops the entry, never serves it.
///
/// The cache itself is not thread-safe; the check service serializes all
/// access through its single worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SERVICE_RESULTCACHE_H
#define MEMLINT_SERVICE_RESULTCACHE_H

#include "support/FaultInjector.h"
#include "support/Metrics.h"

#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

/// One cached check outcome, replayable without re-checking.
struct CacheEntry {
  std::string File;        ///< the request's main file (the cache key)
  std::string ContentHash; ///< fnv1aHex of the main file's contents
  /// Content hash of every file the check read, keyed by name (includes
  /// the main file). The entry is served only while all of them match.
  std::map<std::string, std::string> Deps;
  std::string Status; ///< "ok" | "degraded" (others are never cached)
  std::vector<std::string> Reasons;
  unsigned Anomalies = 0;
  unsigned Suppressed = 0;
  std::string Diagnostics; ///< rendered; byte-identical to a cold run
  std::map<std::string, unsigned> Classes;
  MetricsSnapshot Metrics; ///< the producing run's metrics, for S6 folds
};

/// Counters describing a cache's lifetime, surfaced as cache.* metrics.
struct CacheStats {
  unsigned long long Hits = 0;
  unsigned long long Misses = 0;
  unsigned long long Evictions = 0;
  /// Entries dropped instead of served: CRC failures and unparsable lines
  /// on load, plus stale entries whose dependency hashes no longer match.
  unsigned long long CorruptRecovered = 0;
  unsigned long long StaleDropped = 0;
  unsigned long long Invalidations = 0;
};

/// In-memory LRU cache of check results with JSONL persistence.
class ResultCache {
public:
  /// \p PolicyKey is the checkOptionsFingerprint all entries are valid
  /// under; \p MaxEntries bounds the cache (0 = unbounded), evicting the
  /// least recently used entry on overflow.
  explicit ResultCache(std::string PolicyKey, size_t MaxEntries = 0)
      : PolicyKey(std::move(PolicyKey)), MaxEntries(MaxEntries) {}

  /// Looks up \p File. \p HashOf maps a dependency name to the current
  /// content hash of that file (nullopt if it cannot be read). The entry
  /// is returned only when every recorded dependency hash still matches;
  /// a mismatch drops the entry (StaleDropped) and reports a miss. The
  /// returned pointer is valid until the next mutating call.
  const CacheEntry *
  lookup(const std::string &File,
         const std::function<std::optional<std::string>(const std::string &)>
             &HashOf);

  /// Inserts (or replaces) an entry, evicting the LRU entry if full. When
  /// a backing path is attached the entry is also appended to it, with
  /// \p Faults (may be null) given its cache-write hooks — the fuzz
  /// harness's corruption surface.
  void store(CacheEntry Entry, FaultInjector *Faults = nullptr);

  /// Drops \p File's entry. \returns true if one was present.
  bool invalidate(const std::string &File);

  size_t size() const { return Entries.size(); }
  const CacheStats &stats() const { return Stats; }
  const std::string &policyKey() const { return PolicyKey; }

  /// Folds the cache.* counters into \p Out.
  void foldStats(MetricsSnapshot &Out) const;

  //===--- persistence ------------------------------------------------------===//

  /// Serializes header + all entries (LRU order, oldest first) as JSONL.
  std::string serialize() const;

  /// Loads entries from serialized text into an empty-or-not cache.
  /// A missing/mismatched header (wrong magic, format version, or policy
  /// key) discards the whole text and returns false — the caller starts
  /// cold. Individual entries failing CRC or parse are dropped and counted
  /// (CorruptRecovered); a torn final line is just another dropped entry.
  bool loadFromText(const std::string &Text);

  /// Attaches a backing file: loads it (tolerating damage per
  /// loadFromText) and makes store() append to it. \returns false when the
  /// file existed but was discarded (policy/format mismatch or unreadable
  /// header) — the service still runs, cold.
  bool attachFile(const std::string &Path);

  /// Rewrites the backing file as a compacted snapshot (header + live
  /// entries). The graceful-shutdown flush. No-op without a backing file;
  /// \returns false on I/O failure.
  bool flush() const;

  /// Renders one entry as its persisted line: payload JSON plus a
  /// trailing "crc" field over the payload. Exposed for tests.
  static std::string entryLine(const CacheEntry &Entry);

  /// entryLine with \p Faults (may be null) given its cache-write hooks:
  /// payload mutation before the CRC is stamped (StaleEntry), line
  /// mutation after (CacheCorrupt, CacheTornWrite). The store() path and
  /// the fuzz harness's in-memory warm/cold differential share this, so
  /// the corruption surface under test is exactly the persisted one.
  static std::string entryLineFaulted(const CacheEntry &Entry,
                                      FaultInjector *Faults);

  /// Parses a persisted line, verifying its CRC. \returns false on any
  /// damage. Exposed for tests.
  static bool parseEntryLine(const std::string &Line, CacheEntry &Out);

  /// The cache file's header line for \p PolicyKey (format-version
  /// stamped). Exposed for tests.
  static std::string headerLine(const std::string &PolicyKey);

private:
  void touch(const std::string &File); // move to MRU position
  void evictIfNeeded();

  std::string PolicyKey;
  size_t MaxEntries;
  std::string BackingPath; ///< empty = in-memory only

  /// LRU list (front = oldest) + index. The list owns the entries.
  std::list<CacheEntry> Lru;
  std::map<std::string, std::list<CacheEntry>::iterator> Entries;
  CacheStats Stats;
};

} // namespace memlint

#endif // MEMLINT_SERVICE_RESULTCACHE_H
