//===--- ServiceSocket.cpp - Unix-socket service front end ----------------===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceSocket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace memlint;

namespace {

/// Writes all of \p Text, retrying short writes. \returns false on error.
bool writeAll(int Fd, const std::string &Text) {
  size_t Off = 0;
  while (Off < Text.size()) {
    ssize_t N = ::write(Fd, Text.data() + Off, Text.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Reads until a newline (dropped) or EOF, with a hard size cap so a
/// hostile peer cannot balloon the server. \returns false on error or cap.
bool readLine(int Fd, std::string &Out) {
  // Requests are one small JSON object; 1 MiB is orders of magnitude of
  // headroom while still bounding memory per connection.
  constexpr size_t MaxLine = 1 << 20;
  Out.clear();
  char C;
  for (;;) {
    ssize_t N = ::read(Fd, &C, 1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return !Out.empty(); // EOF: accept an unterminated final line
    if (C == '\n')
      return true;
    if (Out.size() >= MaxLine)
      return false;
    Out += C;
  }
}

} // namespace

bool ServiceSocket::listenOn(const std::string &Path, std::string &Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Path + "'";
    return false;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Path.c_str()); // a stale socket file from a killed daemon
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "bind '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Error = "listen '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    ::unlink(Path.c_str());
    return false;
  }
  BoundPath = Path;
  return true;
}

unsigned long ServiceSocket::serve(CheckService &Service,
                                   const std::atomic<bool> &Stop) {
  unsigned long Served = 0;
  while (Fd >= 0 && !Stop.load(std::memory_order_relaxed) &&
         !Service.stopping()) {
    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, /*timeout ms=*/100);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue; // tick: re-check the stop conditions
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0)
      continue;
    ++Served;

    std::string Line;
    ServiceRequest Request;
    if (!readLine(Client, Line) || !parseServiceRequestLine(Line, Request)) {
      ServiceReply Bad;
      Bad.Status = "error";
      Bad.Note = "malformed request line";
      writeAll(Client, serviceReplyLine(Bad) + "\n");
      ::close(Client);
      continue;
    }

    // Submit through the bounded queue so socket clients are subject to
    // the same shedding policy as embedded callers. The reply callback
    // owns the client fd; it runs either immediately (shed) or on the
    // worker thread (served).
    const bool Queued =
        Service.submit(Request, [Client](const ServiceReply &Reply) {
          writeAll(Client, serviceReplyLine(Reply) + "\n");
          ::close(Client);
        });
    (void)Queued; // the callback replied either way
  }
  return Served;
}

void ServiceSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!BoundPath.empty()) {
    ::unlink(BoundPath.c_str());
    BoundPath.clear();
  }
}

std::optional<std::string>
memlint::serviceRoundTrip(const std::string &Path,
                          const std::string &RequestLine, std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Path + "'";
    return std::nullopt;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return std::nullopt;
  }
  if (!writeAll(Fd, RequestLine + "\n")) {
    Error = "write: " + std::string(std::strerror(errno));
    ::close(Fd);
    return std::nullopt;
  }
  ::shutdown(Fd, SHUT_WR);
  std::string Reply;
  bool Ok = readLine(Fd, Reply);
  ::close(Fd);
  if (!Ok) {
    Error = "no reply from '" + Path + "'";
    return std::nullopt;
  }
  return Reply;
}
