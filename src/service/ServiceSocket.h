//===--- ServiceSocket.h - Unix-socket service front end --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §6f.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check service's wire front end: a Unix domain stream socket
/// speaking one JSON request line in, one JSON reply line out, per
/// connection (see CheckService.h for the codec). The server loop is
/// deliberately dumb — parse a line, submit to the service's bounded
/// queue, write whatever reply comes back — so every robustness property
/// (shedding, deadlines, drain) lives in CheckService where it is unit
/// tested, not in socket plumbing.
///
/// The accept loop polls with a short tick so a stop flag (SIGTERM, or a
/// client shutdown request) is honored within one tick even when no
/// connection ever arrives.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SERVICE_SERVICESOCKET_H
#define MEMLINT_SERVICE_SERVICESOCKET_H

#include "service/CheckService.h"

#include <atomic>
#include <optional>
#include <string>

namespace memlint {

/// A listening Unix-socket server bound to a filesystem path.
class ServiceSocket {
public:
  ServiceSocket() = default;
  ~ServiceSocket() { close(); }
  ServiceSocket(const ServiceSocket &) = delete;
  ServiceSocket &operator=(const ServiceSocket &) = delete;

  /// Binds and listens on \p Path (unlinking any stale socket file first).
  /// \returns false with \p Error set on failure.
  bool listenOn(const std::string &Path, std::string &Error);

  /// Serves until \p Stop becomes true or \p Service starts stopping.
  /// Each connection: read one request line, submit to the service's
  /// bounded queue (shed replies included), write the reply line, close.
  /// Returns the number of connections served.
  unsigned long serve(CheckService &Service, const std::atomic<bool> &Stop);

  /// Closes the listening socket and removes the socket file.
  void close();

  const std::string &path() const { return BoundPath; }

private:
  int Fd = -1;
  std::string BoundPath;
};

/// Client helper: connects to \p Path, sends \p RequestLine, reads the
/// reply line. \returns nullopt with \p Error set on connection or I/O
/// failure.
std::optional<std::string> serviceRoundTrip(const std::string &Path,
                                            const std::string &RequestLine,
                                            std::string &Error);

} // namespace memlint

#endif // MEMLINT_SERVICE_SERVICESOCKET_H
