//===--- Cancel.h - Cooperative cancellation for check runs -----*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation. A CancelToken is a thread-safe flag that a
/// supervisor (the batch driver's watchdog, a signal handler, a test) raises
/// to abandon an in-flight check run. The pipeline polls the token at the
/// same checkpoints where resource budgets are charged (every preprocessed
/// token, every parsed token, every abstractly executed statement, every
/// environment split), so a pathological translation unit is abandoned
/// within microseconds of the flag being raised, without killing threads.
///
/// Observing a raised token throws CancelledError. CancelledError is
/// deliberately NOT derived from std::exception: the fault-containment
/// layer converts escaping std::exceptions into InternalError results, and
/// a deadline expiry must not be misreported as a crash. Instead the
/// checking facade catches CancelledError itself and produces a Degraded
/// result whose degradation reason is the token's cancellation reason
/// ("deadline", "cancelled", ...), keeping every diagnostic found before
/// the cut-off.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_CANCEL_H
#define MEMLINT_SUPPORT_CANCEL_H

#include <atomic>
#include <mutex>
#include <string>

namespace memlint {

/// Thrown by budget checkpoints when their CancelToken has been raised.
/// Intentionally not a std::exception (see file comment).
struct CancelledError {
  std::string Reason; ///< the token's cancellation reason, e.g. "deadline"
};

/// A thread-safe one-shot cancellation flag shared between the thread
/// running a check and the supervisor that may abandon it.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Raises the flag. The first caller's \p Reason wins; later calls are
  /// no-ops, so a watchdog and a signal handler can race benignly.
  void cancel(const std::string &Reason = "cancelled") {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Flag.load(std::memory_order_relaxed))
        return;
      CancelReason = Reason;
    }
    Flag.store(true, std::memory_order_release);
  }

  bool cancelled() const { return Flag.load(std::memory_order_acquire); }

  /// The reason passed to cancel(), or "" if not cancelled.
  std::string reason() const {
    if (!cancelled())
      return std::string();
    std::lock_guard<std::mutex> Lock(Mu);
    return CancelReason;
  }

  /// Deterministic auto-cancellation for tests: the token raises itself
  /// with \p Reason once check() has been called \p Checkpoints times.
  /// Call before the run starts; 0 cancels at the very first checkpoint.
  void cancelAfterCheckpoints(unsigned long Checkpoints,
                              const std::string &Reason = "cancelled") {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      AutoReason = Reason;
    }
    CancelAt.store(static_cast<long long>(Checkpoints),
                   std::memory_order_relaxed);
  }

  /// One checkpoint poll: counts toward any cancelAfterCheckpoints()
  /// countdown and \returns whether the token is raised. Cheap enough for
  /// per-token call sites (two relaxed atomic ops on the fast path).
  bool check() {
    unsigned long long Seen = Checks.fetch_add(1, std::memory_order_relaxed);
    long long At = CancelAt.load(std::memory_order_relaxed);
    if (At >= 0 && Seen >= static_cast<unsigned long long>(At)) {
      std::string Reason;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        Reason = AutoReason;
      }
      cancel(Reason);
    }
    return cancelled();
  }

  /// Number of checkpoint polls observed so far (test introspection).
  unsigned long long checkpoints() const {
    return Checks.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Flag{false};
  std::atomic<long long> CancelAt{-1}; ///< -1 = no auto-cancellation
  std::atomic<unsigned long long> Checks{0};
  mutable std::mutex Mu;
  std::string CancelReason; ///< guarded by Mu until Flag is set
  std::string AutoReason = "cancelled"; ///< guarded by Mu
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_CANCEL_H
