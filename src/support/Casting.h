//===--- Casting.h - LLVM-style isa/cast/dyn_cast ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class opts in by providing
/// `static bool classof(const Base *)`. No exceptions, no dynamic_cast.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_CASTING_H
#define MEMLINT_SUPPORT_CASTING_H

#include <cassert>

namespace memlint {

/// \returns true if \p Val (non-null) is an instance of To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace memlint

#endif // MEMLINT_SUPPORT_CASTING_H
