//===--- Diagnostics.cpp - Anomaly reporting engine -----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace memlint;

const char *memlint::checkIdFlagName(CheckId Id) {
  switch (Id) {
  case CheckId::ParseError:
    return "syntax";
  case CheckId::AnnotationError:
    return "annot";
  case CheckId::NullDeref:
    return "nullderef";
  case CheckId::NullPass:
    return "nullpass";
  case CheckId::NullReturn:
    return "nullret";
  case CheckId::UseUndefined:
    return "usedef";
  case CheckId::CompleteDefine:
    return "compdef";
  case CheckId::MustFree:
    return "mustfree";
  case CheckId::UseReleased:
    return "usereleased";
  case CheckId::DoubleFree:
    return "doublefree";
  case CheckId::AliasTransfer:
    return "aliastransfer";
  case CheckId::BranchState:
    return "branchstate";
  case CheckId::UniqueAlias:
    return "unique";
  case CheckId::Observer:
    return "observer";
  case CheckId::GlobalState:
    return "globstate";
  case CheckId::InterfaceDefine:
    return "interfacedef";
  }
  // Out-of-range ids (corrupted input, future extensions) degrade to a
  // recognizable placeholder instead of undefined behavior.
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = Loc.str() + ": " + Message;
  for (const Note &N : Notes)
    Out += "\n   " + N.Loc.str() + ": " + N.Message;
  return Out;
}

void DiagnosticEngine::commit(Diagnostic Diag) {
  ++Reported;
  if (Filt && !Filt(Diag)) {
    ++Suppressed;
    return;
  }
  // Notes are advisory (budget notices, +stats blocks, cancellation
  // markers): they neither charge the caps nor count toward them, so a run
  // that emits many notes cannot crowd real findings out of flood control
  // — and conversely a capped class still gets its notices through.
  if (Diag.Sev == Severity::Note) {
    Diags.push_back(std::move(Diag));
    return;
  }
  // Flood control: count, but do not store, diagnostics beyond the caps.
  // Stored diagnostics are never displaced by later ones.
  unsigned &ClassCount = ClassCounts[Diag.Id];
  if ((PerClassCap != 0 && ClassCount >= PerClassCap) ||
      (TotalCap != 0 && CapChargedCount >= TotalCap)) {
    ++Overflow[Diag.Id];
    return;
  }
  ++ClassCount;
  ++CapChargedCount;
  Diags.push_back(std::move(Diag));
}

unsigned DiagnosticEngine::count(CheckId Id) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Id == Id)
      ++N;
  return N;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
