//===--- Diagnostics.h - Anomaly reporting engine ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic engine. The paper calls reported problems "anomalies":
/// each has a primary location, a message, and zero or more indented
/// sub-locations explaining where a state became what it is, e.g.
///
///   sample.c:6: Function returns with non-null global gname referencing
///               null storage
///      sample.c:5: Storage gname may become null
///
/// Every anomaly belongs to a check class (CheckId) that is individually
/// suppressible via flags or control comments.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_DIAGNOSTICS_H
#define MEMLINT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace memlint {

/// Identifies the class of check that produced an anomaly. Each id maps to a
/// user-visible flag name (see checkIdFlagName) so individual checks can be
/// turned off globally or locally, mirroring LCLint's flag system.
enum class CheckId {
  ParseError,       ///< Source could not be parsed.
  AnnotationError,  ///< Incompatible or misplaced annotations.
  NullDeref,        ///< Possibly-null pointer dereferenced.
  NullPass,         ///< Possibly-null value passed/assigned where non-null
                    ///< expected.
  NullReturn,       ///< Function returns possibly-null where non-null
                    ///< expected (incl. globals at exit, Fig. 2).
  UseUndefined,     ///< Undefined or allocated-but-undefined storage used as
                    ///< an rvalue.
  CompleteDefine,   ///< Storage not completely defined at an interface point.
  MustFree,         ///< Obligation to release storage was lost (leak).
  UseReleased,      ///< Dead (released) storage used.
  DoubleFree,       ///< Released storage released again.
  AliasTransfer,    ///< Inconsistent allocation-state transfer (e.g. temp
                    ///< assigned to only, Fig. 4).
  BranchState,      ///< Inconsistent storage states at a confluence (Fig. 5).
  UniqueAlias,      ///< unique parameter aliased by another argument/global
                    ///< (Fig. 8).
  Observer,         ///< Observer (read-only) storage modified or released.
  GlobalState,      ///< Global variable state violates its annotation at an
                    ///< interface point.
  InterfaceDefine,  ///< Parameter/return definition annotation violated.
};

/// \returns the stable flag name used to enable/disable a check class.
const char *checkIdFlagName(CheckId Id);

/// Severity of a diagnostic. The paper's tool reports everything as an
/// anomaly; we distinguish hard errors (parse failures) for tooling.
enum class Severity { Error, Anomaly, Note };

/// A single reported anomaly.
struct Diagnostic {
  CheckId Id = CheckId::ParseError;
  Severity Sev = Severity::Anomaly;
  SourceLocation Loc;
  std::string Message;

  /// Indented sub-locations ("Storage gname may become null").
  struct Note {
    SourceLocation Loc;
    std::string Message;
  };
  std::vector<Note> Notes;

  /// Renders in LCLint style: "file.c:5: Message" plus indented notes.
  std::string str() const;
};

/// Collects anomalies produced during a check run.
///
/// Suppression: clients may install a filter (used for control comments like
/// /*@-null@*/ regions); filtered diagnostics are counted but not stored.
///
/// Flood control: clients may install per-class and overall caps on the
/// number of stored diagnostics (see setFloodControl). Once a cap is
/// reached, further diagnostics of that class are counted in overflow
/// tallies instead of stored; the facade renders each tally as a single
/// "further N messages suppressed" summary line. Previously stored
/// diagnostics are never displaced.
class DiagnosticEngine {
public:
  /// Filter callback: return false to suppress the diagnostic.
  using Filter = std::function<bool(const Diagnostic &)>;

  /// Begins a diagnostic; returns a builder-like handle. The diagnostic is
  /// committed on destruction of the handle.
  class Builder {
  public:
    Builder(DiagnosticEngine &Engine, Diagnostic Diag)
        : Engine(Engine), Diag(std::move(Diag)) {}
    Builder(Builder &&) = delete;
    ~Builder() { Engine.commit(std::move(Diag)); }

    Builder &note(SourceLocation Loc, std::string Message) {
      Diag.Notes.push_back({std::move(Loc), std::move(Message)});
      return *this;
    }

  private:
    DiagnosticEngine &Engine;
    Diagnostic Diag;
  };

  Builder report(CheckId Id, SourceLocation Loc, std::string Message,
                 Severity Sev = Severity::Anomaly) {
    Diagnostic Diag;
    Diag.Id = Id;
    Diag.Sev = Sev;
    Diag.Loc = std::move(Loc);
    Diag.Message = std::move(Message);
    return Builder(*this, std::move(Diag));
  }

  void setFilter(Filter F) { Filt = std::move(F); }

  /// Installs storage caps: at most \p PerClass stored diagnostics per
  /// check class and \p Total overall (0 = unlimited). Excess diagnostics
  /// are tallied per class in overflowCounts() instead of stored.
  void setFloodControl(unsigned PerClass, unsigned Total) {
    PerClassCap = PerClass;
    TotalCap = Total;
  }

  /// Diagnostics dropped by flood control, tallied per check class.
  const std::map<CheckId, unsigned> &overflowCounts() const {
    return Overflow;
  }

  /// Stored diagnostics that charged the flood-control caps. Notes are
  /// exempt (they are advisory and never displace findings), so this can
  /// be less than diagnostics().size().
  unsigned cappedStoredCount() const { return CapChargedCount; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned suppressedCount() const { return Suppressed; }

  /// Monotonic count of every report() commit, including diagnostics later
  /// dropped by the filter or flood control. Never reset by clear(). The
  /// front-end cache compares this across an #include expansion to decide
  /// whether the expansion is side-effect-free enough to memoize: any
  /// reporting activity at all poisons the candidate entry.
  unsigned long long reportedCount() const { return Reported; }

  /// Number of stored diagnostics of the given class.
  unsigned count(CheckId Id) const;

  bool empty() const { return Diags.empty(); }
  void clear() {
    Diags.clear();
    Overflow.clear();
    ClassCounts.clear();
    Suppressed = 0;
    CapChargedCount = 0;
  }

  /// Renders all stored diagnostics, one per paragraph.
  std::string str() const;

private:
  friend class Builder;
  void commit(Diagnostic Diag);

  std::vector<Diagnostic> Diags;
  Filter Filt;
  unsigned long long Reported = 0;
  unsigned Suppressed = 0;
  unsigned PerClassCap = 0; ///< 0 = unlimited
  unsigned TotalCap = 0;    ///< 0 = unlimited
  unsigned CapChargedCount = 0; ///< stored non-note diagnostics
  std::map<CheckId, unsigned> ClassCounts;
  std::map<CheckId, unsigned> Overflow;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_DIAGNOSTICS_H
