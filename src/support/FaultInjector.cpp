//===--- FaultInjector.cpp - Deterministic fault injection ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Limits.h"

using namespace memlint;

const char *memlint::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Alloc:
    return "alloc";
  case FaultKind::Budget:
    return "budget";
  case FaultKind::Cancel:
    return "cancel";
  case FaultKind::CacheCorrupt:
    return "cache-corrupt";
  case FaultKind::CacheTornWrite:
    return "cache-torn-write";
  case FaultKind::StaleEntry:
    return "stale-entry";
  }
  return "unknown";
}

bool memlint::isCacheFaultKind(FaultKind Kind) {
  return Kind == FaultKind::CacheCorrupt ||
         Kind == FaultKind::CacheTornWrite || Kind == FaultKind::StaleEntry;
}

const char *memlint::faultReason(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Alloc:
    return "internal-error";
  case FaultKind::Budget:
    return "fault-budget";
  case FaultKind::Cancel:
    return "fault-cancel";
  case FaultKind::CacheCorrupt:
  case FaultKind::CacheTornWrite:
  case FaultKind::StaleEntry:
    return "cache-cold-fallback";
  }
  return "unknown";
}

void FaultInjector::onCheckpoint(BudgetState &S) {
  if (isCacheFaultKind(Kind))
    return; // cache kinds trigger on cache writes, not pipeline checkpoints
  const unsigned long long At = Seen.fetch_add(1, std::memory_order_relaxed);
  if (Fired.load(std::memory_order_relaxed) || At < FireAt)
    return;
  Fired.store(true, std::memory_order_release);
  switch (Kind) {
  case FaultKind::Alloc:
    // Simulated allocation failure at this exact checkpoint. The pipeline's
    // std::exception containment must turn this into a contained internal
    // error; throwing from here proves it can happen anywhere a budget is
    // charged.
    throw InjectedAllocFailure();
  case FaultKind::Budget:
    // Simulated exhaustion of every remaining budget: the run continues,
    // but each later budget query reports empty, driving the ordinary
    // graceful-degradation paths (skipped statements, stopped token
    // consumption). The "fault-budget" reason marks the run Degraded even
    // if no later charge point happens to ask.
    S.forceBudgetExhausted("fault-budget");
    return;
  case FaultKind::Cancel: {
    // Simulated watchdog expiry. Raising the attached token lets the very
    // next token poll (typically this same checkpoint) take the standard
    // cancellation exit; runs without a token take it directly.
    if (CancelToken *Token = S.cancelToken()) {
      Token->cancel("fault-cancel");
      return;
    }
    S.noteDegradation("fault-cancel");
    throw CancelledError{"fault-cancel"};
  }
  default:
    return; // unreachable: cache kinds filtered above
  }
}

void FaultInjector::onCachePayload(std::string &Payload) {
  if (!isCacheFaultKind(Kind))
    return;
  const unsigned long long At = Seen.fetch_add(1, std::memory_order_relaxed);
  if (Fired.load(std::memory_order_relaxed) || At < FireAt)
    return;
  Fired.store(true, std::memory_order_release);
  FiringThisWrite = true;
  if (Kind != FaultKind::StaleEntry)
    return;
  // Re-key the entry to a content hash nothing hashes to. The CRC stamped
  // after this mutation is valid for the stale bytes, so only the lookup
  // path's key comparison can catch it — exactly the staleness contract
  // under test.
  const std::string Needle = "\"content\":\"";
  size_t At2 = Payload.find(Needle);
  if (At2 == std::string::npos)
    return;
  At2 += Needle.size();
  const std::string Bogus = "0000000000000000";
  for (size_t I = 0; I < Bogus.size() && At2 + I < Payload.size() &&
                     Payload[At2 + I] != '"';
       ++I)
    Payload[At2 + I] = Bogus[I];
}

void FaultInjector::onCacheLine(std::string &Line) {
  if (!FiringThisWrite)
    return;
  FiringThisWrite = false;
  switch (Kind) {
  case FaultKind::CacheCorrupt:
    // One flipped payload byte after the CRC was stamped: classic bit rot.
    // Flipping bit 5 keeps the byte printable but always changes it, so
    // the CRC check — not JSON parsing luck — is what must catch this.
    if (!Line.empty())
      Line[Line.size() / 2] ^= 0x20;
    return;
  case FaultKind::CacheTornWrite:
    // The write dies mid-line: keep an unparsable prefix.
    Line.resize(Line.size() / 2);
    return;
  default:
    return; // StaleEntry mutated the payload; pipeline kinds never fire here
  }
}
