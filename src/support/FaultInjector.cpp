//===--- FaultInjector.cpp - Deterministic fault injection ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Limits.h"

using namespace memlint;

const char *memlint::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Alloc:
    return "alloc";
  case FaultKind::Budget:
    return "budget";
  case FaultKind::Cancel:
    return "cancel";
  }
  return "unknown";
}

const char *memlint::faultReason(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Alloc:
    return "internal-error";
  case FaultKind::Budget:
    return "fault-budget";
  case FaultKind::Cancel:
    return "fault-cancel";
  }
  return "unknown";
}

void FaultInjector::onCheckpoint(BudgetState &S) {
  const unsigned long long At = Seen.fetch_add(1, std::memory_order_relaxed);
  if (Fired.load(std::memory_order_relaxed) || At < FireAt)
    return;
  Fired.store(true, std::memory_order_release);
  switch (Kind) {
  case FaultKind::Alloc:
    // Simulated allocation failure at this exact checkpoint. The pipeline's
    // std::exception containment must turn this into a contained internal
    // error; throwing from here proves it can happen anywhere a budget is
    // charged.
    throw InjectedAllocFailure();
  case FaultKind::Budget:
    // Simulated exhaustion of every remaining budget: the run continues,
    // but each later budget query reports empty, driving the ordinary
    // graceful-degradation paths (skipped statements, stopped token
    // consumption). The "fault-budget" reason marks the run Degraded even
    // if no later charge point happens to ask.
    S.forceBudgetExhausted("fault-budget");
    return;
  case FaultKind::Cancel: {
    // Simulated watchdog expiry. Raising the attached token lets the very
    // next token poll (typically this same checkpoint) take the standard
    // cancellation exit; runs without a token take it directly.
    if (CancelToken *Token = S.cancelToken()) {
      Token->cancel("fault-cancel");
      return;
    }
    S.noteDegradation("fault-cancel");
    throw CancelledError{"fault-cancel"};
  }
  }
}
