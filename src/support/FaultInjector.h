//===--- FaultInjector.h - Deterministic fault injection --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for resilience testing. A FaultInjector is
/// armed with one fault (kind + checkpoint index) and attached to a check
/// run's BudgetState; every budget/cancellation checkpoint the pipeline
/// passes (each preprocessed token, parsed token, abstractly executed
/// statement, environment split) counts toward the trigger, and at exactly
/// the armed checkpoint the fault fires. Because checkpoints are the same
/// on every platform for a given input, the same (input, fault) pair fails
/// at the same pipeline instruction everywhere — the fuzzer's containment
/// findings are seed-addressable just like its generated programs.
///
/// The fault taxonomy covers the three ways the real world interrupts a
/// check run:
///
/// * Alloc — a simulated allocation failure: throws an exception derived
///   from std::bad_alloc. The containment layer must convert it into a
///   contained internal error (CheckStatus::InternalError), never an abort.
/// * Budget — simulated resource exhaustion: every remaining budget
///   dimension reports itself exhausted from this checkpoint on, driving
///   the run down the graceful-degradation path (CheckStatus::Degraded
///   with the ordinary "limit*" reasons plus "fault-budget").
/// * Cancel — the CancelToken fires as if a watchdog hit its deadline:
///   the run must end Degraded with reason "fault-cancel".
///
/// The injector records whether it fired so a harness can verify the
/// contract: fired fault => Degraded or InternalError, never Ok and never
/// an escape.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_FAULTINJECTOR_H
#define MEMLINT_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <new>

namespace memlint {

class BudgetState;

/// The classes of failure the injector can simulate.
enum class FaultKind {
  Alloc,  ///< allocation failure (throws InjectedAllocFailure)
  Budget, ///< resource exhaustion (forces every budget to report empty)
  Cancel, ///< deadline/cancellation (raises the run's CancelToken)
};

/// \returns a stable lower-case name ("alloc", "budget", "cancel").
const char *faultKindName(FaultKind Kind);

/// The degradation reason an injected fault of the given kind must leave in
/// the run's reason list ("fault-budget", "fault-cancel"); Alloc faults are
/// reported through the internal-error channel instead and return
/// "internal-error".
const char *faultReason(FaultKind Kind);

/// The exception an Alloc fault throws. Derives from std::bad_alloc so the
/// pipeline's containment layer treats it exactly like a real allocation
/// failure, but carries a recognizable message for harness assertions.
struct InjectedAllocFailure : std::bad_alloc {
  const char *what() const noexcept override {
    return "injected allocation failure";
  }
};

/// One armed fault. Thread-compatible with the batch driver: a single check
/// run (one worker thread) drives onCheckpoint(); fired() may be read from
/// another thread after the run completes.
class FaultInjector {
public:
  /// Arms a fault of \p Kind to fire at the \p FireAtCheckpoint-th
  /// checkpoint (0 fires at the very first one).
  FaultInjector(FaultKind Kind, unsigned long FireAtCheckpoint)
      : Kind(Kind), FireAt(FireAtCheckpoint) {}

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Called by BudgetState at every checkpoint. Fires at most once; after
  /// firing, Budget faults keep the budget-exhausted flag raised via \p S
  /// while Alloc/Cancel faults are spent.
  void onCheckpoint(BudgetState &S);

  FaultKind kind() const { return Kind; }
  unsigned long fireAt() const { return FireAt; }

  /// True once the armed checkpoint was reached and the fault fired.
  bool fired() const { return Fired.load(std::memory_order_acquire); }

  /// Checkpoints observed so far (harness introspection).
  unsigned long long seen() const {
    return Seen.load(std::memory_order_relaxed);
  }

private:
  const FaultKind Kind;
  const unsigned long FireAt;
  std::atomic<unsigned long long> Seen{0};
  std::atomic<bool> Fired{false};
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_FAULTINJECTOR_H
