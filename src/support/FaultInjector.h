//===--- FaultInjector.h - Deterministic fault injection --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for resilience testing. A FaultInjector is
/// armed with one fault (kind + trigger index) and attached either to a
/// check run's BudgetState or to the check service's result cache; the
/// pipeline's budget/cancellation checkpoints (each preprocessed token,
/// parsed token, abstractly executed statement, environment split) — or the
/// cache's entry writes — count toward the trigger, and at exactly the
/// armed index the fault fires. Because checkpoints are the same on every
/// platform for a given input, the same (input, fault) pair fails at the
/// same pipeline instruction everywhere — the fuzzer's containment findings
/// are seed-addressable just like its generated programs.
///
/// The pipeline fault taxonomy covers the three ways the real world
/// interrupts a check run:
///
/// * Alloc — a simulated allocation failure: throws an exception derived
///   from std::bad_alloc. The containment layer must convert it into a
///   contained internal error (CheckStatus::InternalError), never an abort.
/// * Budget — simulated resource exhaustion: every remaining budget
///   dimension reports itself exhausted from this checkpoint on, driving
///   the run down the graceful-degradation path (CheckStatus::Degraded
///   with the ordinary "limit*" reasons plus "fault-budget").
/// * Cancel — the CancelToken fires as if a watchdog hit its deadline:
///   the run must end Degraded with reason "fault-cancel".
///
/// The cache fault taxonomy covers the three ways a persisted result cache
/// goes bad under crashes and bit rot (see service/ResultCache.h):
///
/// * CacheCorrupt — a stored entry's bytes rot after the CRC was stamped:
///   one payload byte is flipped, so CRC validation must reject the entry
///   on load and the service must fall back to a cold re-check.
/// * CacheTornWrite — the process dies mid-append: the serialized line is
///   truncated, so line-level parsing must discard the tail and every
///   surviving entry must still load.
/// * StaleEntry — an entry claims a content hash its payload was never
///   computed for (CRC still valid): the key lookup must miss, never
///   replay the stale diagnostics.
///
/// The injector records whether it fired so a harness can verify the
/// contract: a fired pipeline fault => Degraded or InternalError, never Ok
/// and never an escape; a fired cache fault => warm-path answers stay
/// byte-identical to cold-path answers.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_FAULTINJECTOR_H
#define MEMLINT_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <new>
#include <string>

namespace memlint {

class BudgetState;

/// The classes of failure the injector can simulate.
enum class FaultKind {
  Alloc,          ///< allocation failure (throws InjectedAllocFailure)
  Budget,         ///< resource exhaustion (every budget reports empty)
  Cancel,         ///< deadline/cancellation (raises the run's CancelToken)
  CacheCorrupt,   ///< persisted cache entry bit-rots after CRC stamping
  CacheTornWrite, ///< cache append truncated mid-line (kill mid-write)
  StaleEntry,     ///< cache entry keyed to a content hash it never had
};

/// \returns a stable lower-case name ("alloc", "budget", "cancel",
/// "cache-corrupt", "cache-torn-write", "stale-entry").
const char *faultKindName(FaultKind Kind);

/// True for the cache-layer kinds, which fire on result-cache writes
/// instead of budget checkpoints.
bool isCacheFaultKind(FaultKind Kind);

/// The degradation reason an injected fault of the given kind must leave in
/// the run's reason list ("fault-budget", "fault-cancel"); Alloc faults are
/// reported through the internal-error channel instead and return
/// "internal-error". Cache kinds leave no degradation reason — recovery is
/// a silent cold re-check — and return "cache-cold-fallback" for harness
/// messages only.
const char *faultReason(FaultKind Kind);

/// The exception an Alloc fault throws. Derives from std::bad_alloc so the
/// pipeline's containment layer treats it exactly like a real allocation
/// failure, but carries a recognizable message for harness assertions.
struct InjectedAllocFailure : std::bad_alloc {
  const char *what() const noexcept override {
    return "injected allocation failure";
  }
};

/// One armed fault. Thread-compatible with the batch driver: a single check
/// run (one worker thread) drives onCheckpoint()/onCacheWrite(); fired()
/// may be read from another thread after the run completes.
class FaultInjector {
public:
  /// Arms a fault of \p Kind to fire at the \p FireAtCheckpoint-th
  /// checkpoint — budget checkpoint for pipeline kinds, cache entry write
  /// for cache kinds (0 fires at the very first one).
  FaultInjector(FaultKind Kind, unsigned long FireAtCheckpoint)
      : Kind(Kind), FireAt(FireAtCheckpoint) {}

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Called by BudgetState at every checkpoint. Fires at most once; after
  /// firing, Budget faults keep the budget-exhausted flag raised via \p S
  /// while Alloc/Cancel faults are spent. Cache kinds never fire here.
  void onCheckpoint(BudgetState &S);

  /// Called by ResultCache::store with the entry's serialized payload
  /// before the CRC is stamped. Counts one cache-write event; a firing
  /// StaleEntry fault rewrites the payload's content hash here (so the
  /// stamped CRC is valid for the stale bytes — exactly the failure the
  /// lookup path must catch by key, not checksum).
  void onCachePayload(std::string &Payload);

  /// Called by ResultCache::store with the final line after the CRC is
  /// stamped. A CacheCorrupt fault that fired at this write flips one
  /// payload byte (breaking the CRC); a CacheTornWrite fault truncates the
  /// line mid-byte. Pipeline kinds never mutate cache writes.
  void onCacheLine(std::string &Line);

  FaultKind kind() const { return Kind; }
  unsigned long fireAt() const { return FireAt; }

  /// True once the armed trigger was reached and the fault fired.
  bool fired() const { return Fired.load(std::memory_order_acquire); }

  /// Trigger events observed so far (harness introspection).
  unsigned long long seen() const {
    return Seen.load(std::memory_order_relaxed);
  }

private:
  const FaultKind Kind;
  const unsigned long FireAt;
  std::atomic<unsigned long long> Seen{0};
  std::atomic<bool> Fired{false};
  /// Set by onCachePayload when this write is the armed one, consumed by
  /// onCacheLine (same thread, same store() call).
  bool FiringThisWrite = false;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_FAULTINJECTOR_H
