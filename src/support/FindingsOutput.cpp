//===--- FindingsOutput.cpp - Structured findings emitters ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/FindingsOutput.h"

#include "support/Json.h"

#include <map>

using namespace memlint;

const char *memlint::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Error:
    return "error";
  case Severity::Anomaly:
    return "anomaly";
  case Severity::Note:
    return "note";
  }
  return "unknown";
}

namespace {

/// One-line rule descriptions for SARIF reportingDescriptors, matching the
/// check classes in Diagnostics.h.
const char *checkIdDescription(CheckId Id) {
  switch (Id) {
  case CheckId::ParseError:
    return "Source could not be parsed";
  case CheckId::AnnotationError:
    return "Incompatible or misplaced annotations";
  case CheckId::NullDeref:
    return "Possibly-null pointer dereferenced";
  case CheckId::NullPass:
    return "Possibly-null value passed or assigned where non-null expected";
  case CheckId::NullReturn:
    return "Function returns possibly-null where non-null expected";
  case CheckId::UseUndefined:
    return "Undefined or allocated-but-undefined storage used";
  case CheckId::CompleteDefine:
    return "Storage not completely defined at an interface point";
  case CheckId::MustFree:
    return "Obligation to release storage was lost (leak)";
  case CheckId::UseReleased:
    return "Dead (released) storage used";
  case CheckId::DoubleFree:
    return "Released storage released again";
  case CheckId::AliasTransfer:
    return "Inconsistent allocation-state transfer";
  case CheckId::BranchState:
    return "Inconsistent storage states at a confluence";
  case CheckId::UniqueAlias:
    return "Unique parameter aliased by another argument or global";
  case CheckId::Observer:
    return "Observer (read-only) storage modified or released";
  case CheckId::GlobalState:
    return "Global variable state violates its annotation";
  case CheckId::InterfaceDefine:
    return "Parameter or return definition annotation violated";
  }
  return "Unknown check class";
}

/// SARIF result levels: parse errors are "error", anomalies "warning"
/// (they are the tool's findings, possibly spurious per the paper), notes
/// "note".
const char *sarifLevel(Severity Sev) {
  switch (Sev) {
  case Severity::Error:
    return "error";
  case Severity::Anomaly:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "none";
}

/// Renders a SARIF physicalLocation object, or "" for invalid locations
/// (SARIF regions require startLine >= 1; fabricating one would be worse
/// than omitting the location).
std::string sarifPhysicalLocation(const SourceLocation &Loc) {
  if (!Loc.isValid())
    return "";
  std::string Out = "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": " +
                    jsonString(Loc.file()) +
                    "}, \"region\": {\"startLine\": " +
                    std::to_string(Loc.line());
  if (Loc.column() != 0)
    Out += ", \"startColumn\": " + std::to_string(Loc.column());
  return Out + "}}}";
}

std::string jsonlLocationFields(const SourceLocation &Loc) {
  return "\"file\":" + jsonString(Loc.file()) +
         ",\"line\":" + std::to_string(Loc.line()) +
         ",\"column\":" + std::to_string(Loc.column());
}

} // namespace

std::string memlint::renderSarif(const std::vector<Diagnostic> &Diags) {
  // Rules: one reportingDescriptor per check class that fired, indexed in
  // first-appearance order so ruleIndex values are stable.
  std::map<CheckId, unsigned> RuleIndex;
  std::vector<CheckId> Rules;
  for (const Diagnostic &D : Diags)
    if (RuleIndex.emplace(D.Id, static_cast<unsigned>(Rules.size())).second)
      Rules.push_back(D.Id);

  std::string Out;
  Out += "{\n";
  Out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Out += "  \"version\": \"2.1.0\",\n";
  Out += "  \"runs\": [\n";
  Out += "    {\n";
  Out += "      \"tool\": {\n";
  Out += "        \"driver\": {\n";
  Out += "          \"name\": \"memlint\",\n";
  Out += "          \"informationUri\": "
         "\"https://doi.org/10.1145/231379.231389\",\n";
  Out += "          \"rules\": [";
  for (size_t I = 0; I < Rules.size(); ++I) {
    Out += I == 0 ? "\n" : ",\n";
    Out += "            {\"id\": " +
           jsonString(checkIdFlagName(Rules[I])) +
           ", \"shortDescription\": {\"text\": " +
           jsonString(checkIdDescription(Rules[I])) + "}}";
  }
  Out += Rules.empty() ? "]\n" : "\n          ]\n";
  Out += "        }\n";
  Out += "      },\n";
  Out += "      \"results\": [";
  for (size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += "        {\n";
    Out += "          \"ruleId\": " + jsonString(checkIdFlagName(D.Id)) +
           ",\n";
    Out += "          \"ruleIndex\": " + std::to_string(RuleIndex[D.Id]) +
           ",\n";
    Out += "          \"level\": " + jsonString(sarifLevel(D.Sev)) + ",\n";
    Out += "          \"message\": {\"text\": " + jsonString(D.Message) +
           "}";
    if (std::string Loc = sarifPhysicalLocation(D.Loc); !Loc.empty())
      Out += ",\n          \"locations\": [" + Loc + "]";
    if (!D.Notes.empty()) {
      Out += ",\n          \"relatedLocations\": [";
      bool FirstNote = true;
      for (const Diagnostic::Note &N : D.Notes) {
        std::string Loc = sarifPhysicalLocation(N.Loc);
        if (Loc.empty())
          continue;
        // Splice the note message into the physicalLocation object.
        Loc.insert(Loc.size() - 1,
                   ", \"message\": {\"text\": " + jsonString(N.Message) +
                       "}");
        Out += (FirstNote ? "" : ", ") + Loc;
        FirstNote = false;
      }
      Out += "]";
    }
    Out += "\n        }";
  }
  Out += Diags.empty() ? "]\n" : "\n      ]\n";
  Out += "    }\n";
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

std::string memlint::renderJsonl(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += "{" + jsonlLocationFields(D.Loc) +
           ",\"check\":" + jsonString(checkIdFlagName(D.Id)) +
           ",\"severity\":" + jsonString(severityName(D.Sev)) +
           ",\"message\":" + jsonString(D.Message) + ",\"notes\":[";
    for (size_t I = 0; I < D.Notes.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += "{" + jsonlLocationFields(D.Notes[I].Loc) +
             ",\"message\":" + jsonString(D.Notes[I].Message) + "}";
    }
    Out += "]}\n";
  }
  return Out;
}
