//===--- FindingsOutput.h - Structured findings emitters --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable renderings of a check run's diagnostics. The paper's
/// evaluation is about triaging tool output at scale, and downstream
/// consumers (result viewers, CI annotation, learned triage models) want
/// findings as structured data rather than the LCLint-style text.
///
/// Two formats, both driven from the same Diagnostic values the text
/// renderer consumes — the default text output stays byte-identical:
///
/// * SARIF 2.1.0 (renderSarif): one run, the "memlint" tool driver, one
///   reportingDescriptor per check class that actually fired, one result
///   per diagnostic with the paper's indented sub-locations mapped to
///   relatedLocations. Valid against the SARIF 2.1.0 schema subset we
///   emit; suitable for code-scanning UIs.
/// * JSONL (renderJsonl): one self-contained JSON object per line per
///   diagnostic — the shape batch pipelines grep, sort, and diff.
///
/// Ordering is the diagnostic order of the run in both formats, so
/// structured output is as deterministic as the text output.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_FINDINGSOUTPUT_H
#define MEMLINT_SUPPORT_FINDINGSOUTPUT_H

#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace memlint {

/// \returns the stable lower-case name of a severity ("error", "anomaly",
/// "note") — the vocabulary of the JSONL "severity" field.
const char *severityName(Severity Sev);

/// Renders diagnostics as a complete SARIF 2.1.0 document (pretty-printed,
/// trailing newline). Diagnostics with invalid locations are emitted
/// without a region, never with a fabricated line 0.
std::string renderSarif(const std::vector<Diagnostic> &Diags);

/// Renders diagnostics as JSON Lines: one object per diagnostic with
/// file/line/column, check class, severity, message, and notes. Every line
/// is a complete JSON object (trailing newline per line).
std::string renderJsonl(const std::vector<Diagnostic> &Diags);

} // namespace memlint

#endif // MEMLINT_SUPPORT_FINDINGSOUTPUT_H
