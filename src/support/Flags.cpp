//===--- Flags.cpp - Check-control flag registry --------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Flags.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace memlint;

namespace {

struct FlagDefault {
  const char *Name;
  bool Value;
};

// Policy flags; check-class flags are added programmatically below.
const FlagDefault PolicyFlags[] = {
    {"gcmode", false},           {"implicitonlyret", false},
    {"implicitonlyglob", false}, {"implicitonlyfield", false},
    {"impliedtempparams", true}, {"strictindexalias", true},
    {"deepdefcheck", true},
    // Off by default: the 1996 tool missed frees of offset pointers and
    // static storage ("LCLint has since been improved to detect freeing
    // offset pointers and static storage"); enabling this flag is that
    // later improvement.
    {"illegalfree", false},
};

const CheckId AllCheckIds[] = {
    CheckId::ParseError,     CheckId::AnnotationError, CheckId::NullDeref,
    CheckId::NullPass,       CheckId::NullReturn,      CheckId::UseUndefined,
    CheckId::CompleteDefine, CheckId::MustFree,        CheckId::UseReleased,
    CheckId::DoubleFree,     CheckId::AliasTransfer,   CheckId::BranchState,
    CheckId::UniqueAlias,    CheckId::Observer,        CheckId::GlobalState,
    CheckId::InterfaceDefine,
};

} // namespace

FlagSet::FlagSet() {
  for (const FlagDefault &F : PolicyFlags)
    Values[F.Name] = F.Value;
  // All check classes are enabled by default.
  for (CheckId Id : AllCheckIds)
    Values[checkIdFlagName(Id)] = true;
}

bool FlagSet::isKnown(const std::string &Name) const {
  return Values.count(Name) != 0;
}

bool FlagSet::get(const std::string &Name) const {
  auto It = Values.find(Name);
  assert(It != Values.end() && "querying unregistered flag");
  if (It == Values.end())
    return false;
  return It->second;
}

bool FlagSet::set(const std::string &Name, bool Value) {
  auto It = Values.find(Name);
  if (It == Values.end())
    return false;
  It->second = Value;
  return true;
}

bool FlagSet::parse(const std::string &Spec) {
  if (Spec.size() < 2)
    return false;
  if (Spec[0] == '+')
    return set(Spec.substr(1), true);
  if (Spec[0] == '-')
    return set(Spec.substr(1), false);
  return false;
}

void FlagSet::save() { Saved.push_back(Values); }

void FlagSet::restore() {
  assert(!Saved.empty() && "restore without save");
  Values = Saved.back();
  Saved.pop_back();
}

std::vector<std::string> FlagSet::knownFlags() const {
  std::vector<std::string> Names;
  Names.reserve(Values.size());
  for (const auto &KV : Values)
    Names.push_back(KV.first);
  return Names;
}
