//===--- Flags.cpp - Check-control flag registry --------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Flags.h"

#include "support/Diagnostics.h"
#include "support/Journal.h"

#include <algorithm>
#include <cassert>

using namespace memlint;

namespace {

struct FlagDefault {
  const char *Name;
  bool Value;
};

// Policy flags; check-class flags are added programmatically below.
const FlagDefault PolicyFlags[] = {
    {"gcmode", false},           {"implicitonlyret", false},
    {"implicitonlyglob", false}, {"implicitonlyfield", false},
    {"impliedtempparams", true}, {"strictindexalias", true},
    {"deepdefcheck", true},
    // Off by default: the 1996 tool missed frees of offset pointers and
    // static storage ("LCLint has since been improved to detect freeing
    // offset pointers and static storage"); enabling this flag is that
    // later improvement.
    {"illegalfree", false},
    // Opt-in (+stats): per-function environment hot-path counters emitted
    // as notes through the diagnostics engine.
    {"stats", false},
};

const CheckId AllCheckIds[] = {
    CheckId::ParseError,     CheckId::AnnotationError, CheckId::NullDeref,
    CheckId::NullPass,       CheckId::NullReturn,      CheckId::UseUndefined,
    CheckId::CompleteDefine, CheckId::MustFree,        CheckId::UseReleased,
    CheckId::DoubleFree,     CheckId::AliasTransfer,   CheckId::BranchState,
    CheckId::UniqueAlias,    CheckId::Observer,        CheckId::GlobalState,
    CheckId::InterfaceDefine,
};

} // namespace

FlagSet::FlagSet() {
  for (const FlagDefault &F : PolicyFlags)
    Values[F.Name] = F.Value;
  // All check classes are enabled by default.
  for (CheckId Id : AllCheckIds)
    Values[checkIdFlagName(Id)] = true;
}

bool FlagSet::isKnown(const std::string &Name) const {
  return Values.count(Name) != 0 || isLimit(Name);
}

bool FlagSet::get(const std::string &Name) const {
  auto It = Values.find(Name);
  assert(It != Values.end() && "querying unregistered flag");
  if (It == Values.end())
    return false;
  return It->second;
}

bool FlagSet::set(const std::string &Name, bool Value) {
  auto It = Values.find(Name);
  if (It == Values.end())
    return false;
  It->second = Value;
  return true;
}

bool FlagSet::parse(const std::string &Spec) {
  std::string Ignored;
  return parse(Spec, Ignored);
}

bool FlagSet::parse(const std::string &Spec, std::string &Error) {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  if (Spec.size() < 2 || (Spec[0] != '+' && Spec[0] != '-'))
    return Fail("malformed flag '" + Spec +
                "': expected '+name', '-name', or '-limitname=value'");
  std::string Body = Spec.substr(1);

  // Limit flags take "-name=value" form. The value is validated as a
  // whole: any non-digit character, an empty value, or an out-of-range
  // number rejects the spec outright — never a silent partial parse.
  size_t Eq = Body.find('=');
  if (Eq != std::string::npos) {
    std::string Name = Body.substr(0, Eq);
    std::string ValueText = Body.substr(Eq + 1);
    if (!isLimit(Name)) {
      if (Values.count(Name) != 0)
        return Fail("flag '" + Name +
                    "' is an on/off toggle and takes no value (use '+" +
                    Name + "' or '-" + Name + "')");
      return Fail("unknown resource limit '" + Name + "' (try --flags)");
    }
    if (ValueText.empty())
      return Fail("missing value for '-" + Name + "': expected '-" + Name +
                  "=N' (0 means unlimited)");
    unsigned long Value = 0;
    for (char C : ValueText) {
      if (C < '0' || C > '9')
        return Fail("malformed value '" + ValueText + "' for '-" + Name +
                    "': expected a non-negative integer (0 means unlimited)");
      Value = Value * 10 + static_cast<unsigned long>(C - '0');
      if (Value > 0xFFFFFFFFul)
        return Fail("value '" + ValueText + "' for '-" + Name +
                    "' is out of range (maximum 4294967295)");
    }
    setLimit(Name, static_cast<unsigned>(Value));
    return true;
  }

  if (!set(Body, Spec[0] == '+')) {
    if (isLimit(Body))
      return Fail("resource limit '" + Body + "' needs a value: '-" + Body +
                  "=N'");
    return Fail("unknown flag '" + Body + "' (try --flags)");
  }
  return true;
}

void FlagSet::save() { Saved.emplace_back(Values, Limits); }

void FlagSet::restore() {
  assert(!Saved.empty() && "restore without save");
  if (Saved.empty())
    return;
  Values = Saved.back().first;
  Limits = Saved.back().second;
  Saved.pop_back();
}

std::vector<std::string> FlagSet::knownFlags() const {
  std::vector<std::string> Names;
  Names.reserve(Values.size() + limitSpecs().size());
  for (const auto &KV : Values)
    Names.push_back(KV.first);
  for (const LimitSpec &Spec : limitSpecs())
    Names.push_back(Spec.Name);
  std::sort(Names.begin(), Names.end());
  return Names;
}

std::string FlagSet::fingerprint() const {
  // Name=value pairs in registry (map/spec) order: any flag or limit edit
  // — including registering a new flag with a non-default value semantics —
  // changes the digest, so cached results can never outlive the policy
  // that produced them.
  std::vector<std::string> Parts;
  Parts.reserve(Values.size() + limitSpecs().size());
  for (const auto &[Name, Value] : Values)
    Parts.push_back(Name + "=" + (Value ? "1" : "0"));
  for (const LimitSpec &Spec : limitSpecs())
    Parts.push_back(std::string(Spec.Name) + "=" +
                    std::to_string(Limits.*(Spec.Field)));
  return fnv1aHex(Parts);
}

bool FlagSet::isLimit(const std::string &Name) const {
  return findLimitSpec(Name) != nullptr;
}

unsigned FlagSet::getLimit(const std::string &Name) const {
  if (const LimitSpec *Spec = findLimitSpec(Name))
    return Limits.*(Spec->Field);
  return 0;
}

bool FlagSet::setLimit(const std::string &Name, unsigned Value) {
  const LimitSpec *Spec = findLimitSpec(Name);
  if (!Spec)
    return false;
  Limits.*(Spec->Field) = Value;
  return true;
}
