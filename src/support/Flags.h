//===--- Flags.h - Check-control flag registry ------------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LCLint exposes its checking policy as named boolean flags, settable on the
/// command line ("+name" / "-name") and locally in source via control
/// comments ("/*@-name@*/ ... /*@=name@*/"). FlagSet models that: a mapping
/// from registered flag names to values, with save/restore for local
/// overrides and defaults mirroring the paper's choices.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_FLAGS_H
#define MEMLINT_SUPPORT_FLAGS_H

#include <map>
#include <string>
#include <vector>

namespace memlint {

/// A set of named boolean checking flags.
///
/// Registered flags (all check-class flags from CheckId, plus policy flags):
///   gcmode            - checking adjusted for a garbage collector: release
///                       obligations are not enforced (paper §3).
///   implicitonlyret   - unannotated function results of pointer type are
///                       implicitly only (paper §6, default off; see
///                       DESIGN.md on the -allimponly ambiguity).
///   implicitonlyglob  - likewise for globals.
///   implicitonlyfield - likewise for structure fields.
///   impliedtempparams - unannotated pointer parameters are temp (paper §6,
///                       default on).
///   strictindexalias  - compile-time-unknown indexes denote the same
///                       element (on) or independent elements (off) (§2).
///   deepdefcheck      - completeness checking recurses through tracked
///                       derived references (on).
class FlagSet {
public:
  /// Creates a FlagSet with every known flag at its default value.
  FlagSet();

  /// \returns true if \p Name is a registered flag.
  bool isKnown(const std::string &Name) const;

  /// Reads a flag value. Asserts that the flag is registered.
  bool get(const std::string &Name) const;

  /// Sets a flag value. \returns false (and changes nothing) for unknown
  /// flags so callers can report bad control comments.
  bool set(const std::string &Name, bool Value);

  /// Parses a command-line style spec: "+name" enables, "-name" disables.
  /// \returns false on malformed input or unknown flag.
  bool parse(const std::string &Spec);

  /// Pushes the current values; restore() pops them. Used for control
  /// comments that scope a flag change.
  void save();
  void restore();

  /// All registered flag names, sorted (for --help style listings).
  std::vector<std::string> knownFlags() const;

private:
  std::map<std::string, bool> Values;
  std::vector<std::map<std::string, bool>> Saved;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_FLAGS_H
