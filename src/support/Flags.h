//===--- Flags.h - Check-control flag registry ------------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LCLint exposes its checking policy as named boolean flags, settable on the
/// command line ("+name" / "-name") and locally in source via control
/// comments ("/*@-name@*/ ... /*@=name@*/"). FlagSet models that: a mapping
/// from registered flag names to values, with save/restore for local
/// overrides and defaults mirroring the paper's choices.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_FLAGS_H
#define MEMLINT_SUPPORT_FLAGS_H

#include "support/Limits.h"

#include <map>
#include <string>
#include <vector>

namespace memlint {

/// A set of named boolean checking flags.
///
/// Registered flags (all check-class flags from CheckId, plus policy flags):
///   gcmode            - checking adjusted for a garbage collector: release
///                       obligations are not enforced (paper §3).
///   implicitonlyret   - unannotated function results of pointer type are
///                       implicitly only (paper §6, default off; see
///                       DESIGN.md on the -allimponly ambiguity).
///   implicitonlyglob  - likewise for globals.
///   implicitonlyfield - likewise for structure fields.
///   impliedtempparams - unannotated pointer parameters are temp (paper §6,
///                       default on).
///   strictindexalias  - compile-time-unknown indexes denote the same
///                       element (on) or independent elements (off) (§2).
///   deepdefcheck      - completeness checking recurses through tracked
///                       derived references (on).
class FlagSet {
public:
  /// Creates a FlagSet with every known flag at its default value.
  FlagSet();

  /// \returns true if \p Name is a registered flag.
  bool isKnown(const std::string &Name) const;

  /// Reads a flag value. Asserts that the flag is registered.
  bool get(const std::string &Name) const;

  /// Sets a flag value. \returns false (and changes nothing) for unknown
  /// flags so callers can report bad control comments.
  bool set(const std::string &Name, bool Value);

  /// Parses a command-line style spec: "+name" enables, "-name" disables.
  /// Resource limits are set with "-name=value" (or "+name=value"), e.g.
  /// "-limittokens=50000". \returns false on malformed input or unknown
  /// flag.
  bool parse(const std::string &Spec);

  /// Like parse(Spec), but on failure stores a user-facing diagnostic in
  /// \p Error explaining exactly what was wrong ("malformed value '12abc'
  /// for '-limittokens': expected a non-negative integer", "unknown flag
  /// ...", ...). Limit values are validated strictly: the whole value must
  /// be a decimal non-negative integer in range; nothing is silently
  /// truncated or partially parsed. On success \p Error is untouched.
  bool parse(const std::string &Spec, std::string &Error);

  /// Pushes the current values; restore() pops them. Used for control
  /// comments that scope a flag change.
  void save();
  void restore();

  /// All registered flag names (boolean flags and -limit* flags), sorted
  /// (for --help style listings).
  std::vector<std::string> knownFlags() const;

  /// A 16-hex-digit FNV-1a fingerprint of the complete checking policy:
  /// every boolean flag's value and every resource limit, in registry
  /// order. Two FlagSets fingerprint equally iff a check run would behave
  /// identically under them. This is the policy component of the check
  /// service's cache key and the journal header's "flags" field — results
  /// computed under one fingerprint are never replayed under another.
  std::string fingerprint() const;

  //===--- resource limits (-limit* flags) --------------------------------===//

  /// The resource budget carried alongside the boolean flags. Checking
  /// entry points read their limits from here, so "-limitX=n" on the string
  /// API and writing limits() through CheckOptions are equivalent.
  ResourceBudget &limits() { return Limits; }
  const ResourceBudget &limits() const { return Limits; }

  /// \returns true if \p Name is a registered -limit* flag.
  bool isLimit(const std::string &Name) const;

  /// Reads a limit value. \returns 0 (unlimited) for unknown names.
  unsigned getLimit(const std::string &Name) const;

  /// Sets a limit value. \returns false (and changes nothing) for names
  /// that are not registered limit flags.
  bool setLimit(const std::string &Name, unsigned Value);

private:
  std::map<std::string, bool> Values;
  ResourceBudget Limits;
  std::vector<std::pair<std::map<std::string, bool>, ResourceBudget>> Saved;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_FLAGS_H
