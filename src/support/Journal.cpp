//===--- Journal.cpp - Resumable batch-run journal ------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Journal.h"

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace memlint;

//===----------------------------------------------------------------------===//
// Checksums
//===----------------------------------------------------------------------===//

std::string memlint::fnv1aHex(const std::vector<std::string> &Parts) {
  unsigned long long Hash = 14695981039346656037ull;
  auto Mix = [&Hash](unsigned char C) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  };
  for (const std::string &Part : Parts) {
    for (char C : Part)
      Mix(static_cast<unsigned char>(C));
    Mix(0); // separator: {"ab","c"} != {"a","bc"}
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", Hash);
  return Buf;
}

std::string memlint::crc32Hex(const std::string &Text) {
  // Bitwise CRC-32 (reflected IEEE 802.3). The cache validates a few
  // hundred lines per load, so a table is not worth its cache footprint.
  unsigned long Crc = 0xFFFFFFFFul;
  for (char C : Text) {
    Crc ^= static_cast<unsigned char>(C);
    for (int Bit = 0; Bit < 8; ++Bit)
      Crc = (Crc >> 1) ^ (0xEDB88320ul & (0ul - (Crc & 1ul)));
  }
  Crc ^= 0xFFFFFFFFul;
  char Buf[9];
  std::snprintf(Buf, sizeof(Buf), "%08lx", Crc & 0xFFFFFFFFul);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Emission
//===----------------------------------------------------------------------===//

std::string memlint::journalHeaderLine(const std::string &CorpusChecksum,
                                       unsigned long FileCount,
                                       const std::string &FlagsFingerprint) {
  std::string Out = "{\"memlint_journal\":1,\"corpus\":" +
                    jsonString(CorpusChecksum) +
                    ",\"files\":" + std::to_string(FileCount);
  if (!FlagsFingerprint.empty())
    Out += ",\"flags\":" + jsonString(FlagsFingerprint);
  return Out + "}";
}

std::string memlint::metricsJsonCompact(const MetricsSnapshot &Snapshot) {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Snapshot.Counters) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" +
           std::to_string(Value);
    First = false;
  }
  // Histograms ride as one wire string per name (histogramToWire) so the
  // object stays within JsonLineParser's nesting budget; omitted when
  // empty to preserve the historical byte format.
  if (!Snapshot.Histograms.empty()) {
    Out += "},\"histograms\":{";
    First = true;
    for (const auto &[Name, Hist] : Snapshot.Histograms) {
      Out += (First ? "" : ",") + jsonString(Name) + ":" +
             jsonString(histogramToWire(Hist));
      First = false;
    }
  }
  Out += "},\"timers_ms\":{";
  First = true;
  for (const auto &[Name, Ms] : Snapshot.TimersMs) {
    Out += (First ? "" : ",") + jsonString(Name) + ":" + jsonMs(Ms);
    First = false;
  }
  return Out + "}}";
}

std::string memlint::journalEntryLine(const JournalEntry &Entry) {
  std::string Reasons = "[";
  for (const std::string &R : Entry.Reasons) {
    if (Reasons.size() > 1)
      Reasons += ",";
    Reasons += jsonString(R);
  }
  Reasons += "]";
  std::string Out = "{\"file\":" + jsonString(Entry.File) +
                    ",\"status\":" + jsonString(Entry.Status) +
                    ",\"attempts\":" + std::to_string(Entry.Attempts) +
                    ",\"anomalies\":" + std::to_string(Entry.Anomalies) +
                    ",\"suppressed\":" + std::to_string(Entry.Suppressed) +
                    ",\"wall_ms\":" + jsonMs(Entry.WallMs) +
                    ",\"reasons\":" + Reasons +
                    ",\"diags\":" + jsonString(Entry.Diagnostics);
  // Classes are emitted only when present (differential runs), so plain
  // batch journals keep the historical byte format.
  if (!Entry.Classes.empty()) {
    Out += ",\"classes\":{";
    bool First = true;
    for (const auto &[Name, N] : Entry.Classes) {
      Out += (First ? "" : ",") + jsonString(Name) + ":" + std::to_string(N);
      First = false;
    }
    Out += "}";
  }
  // Metrics are emitted only when collected, so journals from runs without
  // --metrics-out keep the historical byte format.
  if (!Entry.Metrics.empty())
    Out += ",\"metrics\":" + metricsJsonCompact(Entry.Metrics);
  // Likewise the inferred interface rides only on -infer runs.
  if (!Entry.Inferred.empty())
    Out += ",\"inferred\":" + jsonString(Entry.Inferred);
  return Out + "}";
}

//===----------------------------------------------------------------------===//
// Line scanning
//===----------------------------------------------------------------------===//

bool JsonLineParser::parseObject(
    const std::function<void(const std::string &, const Value &)> &OnField) {
  skipSpace();
  if (!eat('{'))
    return false;
  skipSpace();
  if (eat('}'))
    return atEnd();
  for (;;) {
    std::string Key;
    if (!parseString(Key))
      return false;
    skipSpace();
    if (!eat(':'))
      return false;
    skipSpace();
    Value V;
    if (!parseValue(V, /*Depth=*/1))
      return false;
    OnField(Key, V);
    skipSpace();
    if (eat(',')) {
      skipSpace();
      continue;
    }
    if (eat('}'))
      return atEnd();
    return false;
  }
}

bool JsonLineParser::parseValue(Value &V, unsigned Depth) {
  if (Pos < Text.size() && Text[Pos] == '"') {
    V.K = Value::String;
    return parseString(V.Str);
  }
  if (Pos < Text.size() && Text[Pos] == '[') {
    V.K = Value::StringArray;
    ++Pos;
    skipSpace();
    if (!eat(']')) {
      for (;;) {
        std::string Elem;
        if (!parseString(Elem))
          return false;
        V.Array.push_back(std::move(Elem));
        skipSpace();
        if (eat(',')) {
          skipSpace();
          continue;
        }
        if (eat(']'))
          break;
        return false;
      }
    }
    return true;
  }
  if (Pos < Text.size() && Text[Pos] == '{') {
    if (Depth >= MaxObjectDepth)
      return false;
    V.K = Value::Object;
    ++Pos;
    skipSpace();
    if (eat('}'))
      return true;
    for (;;) {
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (!eat(':'))
        return false;
      skipSpace();
      Value Sub;
      if (!parseValue(Sub, Depth + 1))
        return false;
      V.Fields.emplace_back(std::move(Key), std::move(Sub));
      skipSpace();
      if (eat(',')) {
        skipSpace();
        continue;
      }
      if (eat('}'))
        return true;
      return false;
    }
  }
  V.K = Value::Number;
  return parseNumber(V.Num);
}

bool JsonLineParser::parseString(std::string &Out) {
  if (!eat('"'))
    return false;
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (Pos >= Text.size())
      return false;
    char E = Text[Pos++];
    switch (E) {
    case '"':
      Out += '"';
      break;
    case '\\':
      Out += '\\';
      break;
    case '/':
      Out += '/';
      break;
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (Pos + 4 > Text.size())
        return false;
      unsigned Code = 0;
      for (int I = 0; I < 4; ++I) {
        char H = Text[Pos++];
        Code <<= 4;
        if (H >= '0' && H <= '9')
          Code |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          Code |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          Code |= static_cast<unsigned>(H - 'A' + 10);
        else
          return false;
      }
      // We only ever emit \u00xx for control bytes; anything else is
      // preserved as a literal '?' rather than attempting UTF-8.
      Out += Code < 0x100 ? static_cast<char>(Code) : '?';
      break;
    }
    default:
      return false;
    }
  }
  return false; // unterminated
}

bool JsonLineParser::parseNumber(double &Out) {
  size_t Start = Pos;
  if (Pos < Text.size() && Text[Pos] == '-')
    ++Pos;
  while (Pos < Text.size() &&
         ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
          Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
          Text[Pos] == '-'))
    ++Pos;
  if (Pos == Start)
    return false;
  std::string Num = Text.substr(Start, Pos - Start);
  char *End = nullptr;
  Out = std::strtod(Num.c_str(), &End);
  return End && *End == '\0';
}

void JsonLineParser::skipSpace() {
  while (Pos < Text.size() &&
         (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\r'))
    ++Pos;
}

bool JsonLineParser::eat(char C) {
  if (Pos < Text.size() && Text[Pos] == C) {
    ++Pos;
    return true;
  }
  return false;
}

bool JsonLineParser::atEnd() {
  skipSpace();
  return Pos == Text.size();
}

void memlint::metricsFromJsonValue(const JsonLineParser::Value &V,
                                   MetricsSnapshot &Out) {
  if (V.K != JsonLineParser::Value::Object)
    return;
  if (const JsonLineParser::Value *Counters = V.field("counters"))
    for (const auto &[Name, Sub] : Counters->Fields)
      if (Sub.K == JsonLineParser::Value::Number && Sub.Num >= 0)
        Out.Counters[Name] = static_cast<unsigned long long>(Sub.Num);
  if (const JsonLineParser::Value *Timers = V.field("timers_ms"))
    for (const auto &[Name, Sub] : Timers->Fields)
      if (Sub.K == JsonLineParser::Value::Number && Sub.Num >= 0)
        Out.TimersMs[Name] = Sub.Num;
  if (const JsonLineParser::Value *Hists = V.field("histograms"))
    for (const auto &[Name, Sub] : Hists->Fields) {
      MetricsHistogram H;
      // A malformed wire string drops just that histogram (shape-tolerant,
      // like the numeric leaves above).
      if (Sub.K == JsonLineParser::Value::String &&
          histogramFromWire(Sub.Str, H))
        Out.Histograms[Name] = H;
    }
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

JournalContents memlint::parseJournal(const std::string &Text) {
  JournalContents Out;
  size_t LineStart = 0;
  bool First = true;
  while (LineStart <= Text.size()) {
    size_t LineEnd = Text.find('\n', LineStart);
    std::string Line = Text.substr(LineStart, LineEnd == std::string::npos
                                                  ? std::string::npos
                                                  : LineEnd - LineStart);
    LineStart = LineEnd == std::string::npos ? Text.size() + 1 : LineEnd + 1;

    bool Blank = Line.find_first_not_of(" \t\r") == std::string::npos;
    if (Blank)
      continue;

    if (First) {
      First = false;
      bool SawMagic = false;
      JournalContents Header;
      JsonLineParser P(Line);
      bool Parsed = P.parseObject(
          [&](const std::string &Key, const JsonLineParser::Value &V) {
            if (Key == "memlint_journal")
              SawMagic = V.Num == 1;
            else if (Key == "corpus")
              Header.Checksum = V.Str;
            else if (Key == "flags")
              Header.FlagsFingerprint = V.Str;
            else if (Key == "files")
              Header.FileCount = static_cast<unsigned long>(V.Num);
          });
      if (Parsed && SawMagic && !Header.Checksum.empty()) {
        Out.HeaderValid = true;
        Out.Checksum = Header.Checksum;
        Out.FlagsFingerprint = Header.FlagsFingerprint;
        Out.FileCount = Header.FileCount;
      } else {
        ++Out.CorruptLines;
      }
      continue;
    }

    JournalEntry Entry;
    bool SawFile = false, SawStatus = false;
    JsonLineParser P(Line);
    bool Parsed = P.parseObject(
        [&](const std::string &Key, const JsonLineParser::Value &V) {
          if (Key == "file") {
            Entry.File = V.Str;
            SawFile = !V.Str.empty();
          } else if (Key == "status") {
            Entry.Status = V.Str;
            SawStatus = V.Str == "ok" || V.Str == "degraded" ||
                        V.Str == "timeout" || V.Str == "crash";
          } else if (Key == "attempts") {
            Entry.Attempts = static_cast<unsigned>(V.Num);
          } else if (Key == "anomalies") {
            Entry.Anomalies = static_cast<unsigned>(V.Num);
          } else if (Key == "suppressed") {
            Entry.Suppressed = static_cast<unsigned>(V.Num);
          } else if (Key == "wall_ms") {
            Entry.WallMs = V.Num;
          } else if (Key == "reasons") {
            Entry.Reasons = V.Array;
          } else if (Key == "diags") {
            Entry.Diagnostics = V.Str;
          } else if (Key == "classes") {
            if (V.K == JsonLineParser::Value::Object)
              for (const auto &[Name, Sub] : V.Fields)
                if (Sub.K == JsonLineParser::Value::Number && Sub.Num >= 0)
                  Entry.Classes[Name] = static_cast<unsigned>(Sub.Num);
          } else if (Key == "metrics") {
            metricsFromJsonValue(V, Entry.Metrics);
          } else if (Key == "inferred") {
            Entry.Inferred = V.Str;
          }
        });
    if (Parsed && SawFile && SawStatus)
      Out.Entries.push_back(std::move(Entry));
    else
      ++Out.CorruptLines;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// File I/O
//===----------------------------------------------------------------------===//

std::optional<std::string> memlint::readFileText(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Failed = std::ferror(F) != 0;
  std::fclose(F);
  if (Failed)
    return std::nullopt;
  return Out;
}

bool memlint::writeFileText(const std::string &Path,
                            const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fflush(F) == 0 && Ok;
  std::fclose(F);
  return Ok;
}

bool memlint::writeFileTextAtomic(const std::string &Path,
                                  const std::string &Text) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
#else
  const std::string Tmp = Path + ".tmp";
#endif
  if (!writeFileText(Tmp, Text))
    return false;
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool memlint::preflightWritePath(const std::string &Path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string Probe = Path + ".preflight." + std::to_string(::getpid());
#else
  const std::string Probe = Path + ".preflight";
#endif
  std::FILE *F = std::fopen(Probe.c_str(), "wb");
  if (!F)
    return false;
  std::fclose(F);
  std::remove(Probe.c_str());
  return true;
}

bool memlint::appendJournalLine(const std::string &Path,
                                const std::string &Line) {
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  if (!F)
    return false;
  std::string WithNl = Line + "\n";
  bool Ok = std::fwrite(WithNl.data(), 1, WithNl.size(), F) == WithNl.size();
  Ok = std::fflush(F) == 0 && Ok;
  std::fclose(F);
  return Ok;
}
