//===--- Journal.h - Resumable batch-run journal ----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch driver's crash-/kill-resumable run journal: an append-only
/// JSONL file recording one line per completed file, preceded by a header
/// line carrying a checksum of the corpus (the ordered list of input
/// names). A later `--resume` run re-reads the journal, verifies the
/// checksum so results are never replayed onto a different corpus, and
/// skips files that already have a valid entry.
///
/// Robustness model: a run can be killed at any byte. Lines are written
/// with a single flushed append each, so at most the final line can be
/// truncated; parsing is therefore strict per line (a line either parses
/// completely or is discarded and counted) and tolerant across lines.
/// Resume compacts the journal — header plus surviving entries are
/// rewritten before new entries are appended — so a trailing partial line
/// can never corrupt the first appended entry of the resumed run.
///
/// Format (one JSON object per line, no pretty-printing):
///
///   {"memlint_journal":1,"corpus":"<fnv1a64 hex>","files":12}
///   {"file":"a.c","status":"ok","attempts":1,"anomalies":2,
///    "suppressed":0,"wall_ms":1.25,"reasons":[],"diags":"a.c:3: ...\n",
///    "classes":{"mustfree":1,"nullderef":1},
///    "metrics":{"counters":{"check.functions":3},"timers_ms":{...}}}
///
/// "status" is one of "ok", "degraded", "timeout", "crash" (see
/// driver/BatchDriver.h). "diags" carries the file's rendered diagnostics
/// so a resumed run can replay output without re-checking. "metrics" is
/// present only when the run collected metrics (see support/Metrics.h); it
/// carries the file's counters and phase timings so a resumed run can
/// still aggregate a complete --metrics-out summary.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_JOURNAL_H
#define MEMLINT_SUPPORT_JOURNAL_H

#include "support/Metrics.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

/// One completed file's outcome as recorded in (or loaded from) a journal.
struct JournalEntry {
  std::string File;
  std::string Status; ///< "ok" | "degraded" | "timeout" | "crash"
  std::vector<std::string> Reasons; ///< degradation reasons, sorted
  unsigned Attempts = 1;
  unsigned Anomalies = 0;
  unsigned Suppressed = 0;
  double WallMs = 0;
  std::string Diagnostics;  ///< rendered diagnostic text
  /// Anomaly counts by check-class flag name ("mustfree", "usereleased",
  /// ...). Journaled so a resumed differential run can still classify each
  /// file's findings per class without re-parsing rendered text. Emitted
  /// only when non-empty, preserving the historical byte format.
  std::map<std::string, unsigned> Classes;
  MetricsSnapshot Metrics;  ///< per-file metrics; empty when not collected
};

/// Everything recovered from a journal file, however damaged.
struct JournalContents {
  bool HeaderValid = false; ///< first line parsed as a journal header
  std::string Checksum;     ///< the header's corpus checksum
  unsigned long FileCount = 0; ///< the header's file count
  std::vector<JournalEntry> Entries; ///< entry lines that parsed completely
  unsigned CorruptLines = 0; ///< non-empty lines discarded as unparsable
};

/// FNV-1a 64-bit over every string (each terminated by an NUL separator so
/// {"ab","c"} and {"a","bc"} differ), rendered as 16 hex digits. Used to
/// fingerprint the corpus in the journal header.
std::string fnv1aHex(const std::vector<std::string> &Parts);

/// Renders the journal header line (no trailing newline).
std::string journalHeaderLine(const std::string &CorpusChecksum,
                              unsigned long FileCount);

/// Renders one entry line (no trailing newline).
std::string journalEntryLine(const JournalEntry &Entry);

/// Parses journal text, salvaging every intact line. Never throws; damage
/// is reported via HeaderValid/CorruptLines.
JournalContents parseJournal(const std::string &Text);

/// Reads a whole file. \returns nullopt if it cannot be opened.
std::optional<std::string> readFileText(const std::string &Path);

/// Replaces a file's contents. \returns false on I/O failure.
bool writeFileText(const std::string &Path, const std::string &Text);

/// Appends \p Line plus a newline and flushes, so a kill after the call
/// loses at most in-flight lines of other writers. \returns false on I/O
/// failure.
bool appendJournalLine(const std::string &Path, const std::string &Line);

} // namespace memlint

#endif // MEMLINT_SUPPORT_JOURNAL_H
